// Workload correctness: every policy must compute the identical result for
// every workload (the evaluation's validity rests on this), plus per-workload
// sanity checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/policies.h"
#include "core/fault_manager.h"
#include "workloads/registry.h"

namespace dpg {
namespace {

using baseline::CapabilityPolicy;
using baseline::GuardedNoPoolPolicy;
using baseline::GuardedPolicy;
using baseline::MemcheckPolicy;
using baseline::NativePolicy;
using baseline::PaDummySyscallPolicy;
using baseline::PaPolicy;

constexpr double kTestScale = 0.04;

std::vector<std::string> all_workloads() {
  std::vector<std::string> names;
  for (const auto& group :
       {workloads::utility_names(), workloads::interactive_names(),
        workloads::server_names(), workloads::olden_names()}) {
    names.insert(names.end(), group.begin(), group.end());
  }
  return names;
}

class WorkloadEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadEquivalence, AllPoliciesComputeIdenticalChecksums) {
  const std::string& name = GetParam();
  const std::uint64_t expected =
      workloads::run_workload<NativePolicy>(name, kTestScale);
  EXPECT_EQ(workloads::run_workload<PaPolicy>(name, kTestScale), expected)
      << "PA diverged";
  EXPECT_EQ(workloads::run_workload<PaDummySyscallPolicy>(name, kTestScale),
            expected)
      << "PA+dummy diverged";
  EXPECT_EQ(workloads::run_workload<GuardedPolicy>(name, kTestScale), expected)
      << "dpguard diverged";
  EXPECT_EQ(workloads::run_workload<CapabilityPolicy>(name, kTestScale),
            expected)
      << "capability diverged";
  EXPECT_EQ(workloads::run_workload<MemcheckPolicy>(name, kTestScale),
            expected)
      << "memcheck diverged";
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadEquivalence,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto& test_info) { return test_info.param; });

class WorkloadDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadDeterminism, RepeatRunsAreIdentical) {
  const std::string& name = GetParam();
  const std::uint64_t a =
      workloads::run_workload<GuardedPolicy>(name, kTestScale);
  const std::uint64_t b =
      workloads::run_workload<GuardedPolicy>(name, kTestScale);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadDeterminism,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto& test_info) { return test_info.param; });

TEST(WorkloadSanity, BisortActuallySorts) {
  EXPECT_TRUE(workloads::olden::Bisort<NativePolicy>::sorts_correctly(8));
  EXPECT_TRUE(workloads::olden::Bisort<GuardedPolicy>::sorts_correctly(8));
}

TEST(WorkloadSanity, ScaleChangesWork) {
  const std::uint64_t small =
      workloads::run_workload<NativePolicy>("jwhois", 0.02);
  const std::uint64_t large =
      workloads::run_workload<NativePolicy>("jwhois", 0.08);
  EXPECT_NE(small, large);
}

TEST(WorkloadSanity, UnknownWorkloadThrows) {
  EXPECT_THROW(workloads::run_workload<NativePolicy>("nonesuch", 1.0),
               std::invalid_argument);
}

TEST(WorkloadSanity, GuardedNoPoolAlsoAgrees) {
  // The binary-only configuration must also compute identical results.
  for (const char* name : {"jwhois", "treeadd", "ghttpd"}) {
    EXPECT_EQ(workloads::run_workload<GuardedNoPoolPolicy>(name, kTestScale),
              workloads::run_workload<NativePolicy>(name, kTestScale))
        << name;
  }
}

TEST(WorkloadBugInjection, DanglingUseInWorkloadStyleCodeIsCaught) {
  // A "forgotten" free inside pool-scoped code, dereferenced later: the
  // CVS/MIT-Kerberos class of bug the paper motivates with.
  using P = GuardedPolicy;
  struct Session {
    std::uint64_t token;
  };
  Session* stale = nullptr;
  {
    typename P::Scope connection;
    auto* s = P::template make<Session>();
    s->token = 0x5EC2E7;
    stale = s;
    P::dispose(s);  // freed while a reference escapes
    const auto report = core::catch_dangling([&] {
      volatile std::uint64_t t = stale->token;
      (void)t;
    });
    EXPECT_TRUE(report.has_value()) << "use-after-free inside connection";
  }
}

}  // namespace
}  // namespace dpg
