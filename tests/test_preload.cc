// End-to-end tests of the LD_PRELOAD interposition: run an uninstrumented
// victim binary under libdpg_preload.so and assert on exit status + report
// text — the paper's "directly applied on the binaries" mode, verified the
// way a user would actually deploy it.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef DPG_PRELOAD_SO
#error "DPG_PRELOAD_SO must be defined by the build"
#endif
#ifndef DPG_VICTIM_BIN
#error "DPG_VICTIM_BIN must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;        // -1 when killed by a signal
  int term_signal = 0;
  std::string output;        // combined stdout+stderr

  // popen reports the shell's status: a signal-killed child surfaces as
  // exit code 128+sig.
  [[nodiscard]] bool aborted() const {
    return term_signal == SIGABRT || exit_code == 128 + SIGABRT;
  }
};

RunResult run_victim(const std::string& mode, bool preload,
                     const std::string& env = {}) {
  std::string cmd;
  if (!env.empty()) cmd += env + " ";
  if (preload) cmd += "LD_PRELOAD=" DPG_PRELOAD_SO " ";
  cmd += DPG_VICTIM_BIN " " + mode + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

TEST(Preload, VictimIsSaneWithoutPreload) {
  const RunResult r = run_victim("clean", false);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Without the guard every planted bug slips through — and each scenario
  // reports its own documented exit code, so a wrong code here means the
  // victim ran a different path than the preload tests think they exercise.
  const RunResult uaf = run_victim("uaf", false);
  EXPECT_EQ(uaf.exit_code, 10) << uaf.output;
  EXPECT_NE(uaf.output.find("BUG NOT DETECTED"), std::string::npos);
  const RunResult uafw = run_victim("uaf-w", false);
  EXPECT_EQ(uafw.exit_code, 11) << uafw.output;
  const RunResult df = run_victim("df", false);
  // glibc may itself abort on the double free; undetected is exit 12.
  EXPECT_TRUE(df.exit_code == 12 || df.aborted())
      << df.exit_code << " " << df.output;
  const RunResult sr = run_victim("stale-realloc", false);
  EXPECT_TRUE(sr.exit_code == 13 || sr.exit_code == 14)
      << sr.exit_code << " " << sr.output;
  const RunResult unknown = run_victim("no-such-mode", false);
  EXPECT_EQ(unknown.exit_code, 2) << unknown.output;
}

TEST(Preload, CleanProgramRunsToCompletion) {
  const RunResult r = run_victim("clean", true);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean ok"), std::string::npos) << r.output;
}

TEST(Preload, DanglingReadAbortsWithReport) {
  const RunResult r = run_victim("uaf", true);
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  EXPECT_NE(r.output.find("dangling pointer read detected"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("BUG NOT DETECTED"), std::string::npos);
}

TEST(Preload, DanglingWriteAbortsWithReport) {
  const RunResult r = run_victim("uaf-w", true);
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  EXPECT_NE(r.output.find("dangling pointer write detected"),
            std::string::npos)
      << r.output;
}

TEST(Preload, DoubleFreeAbortsWithReport) {
  const RunResult r = run_victim("df", true);
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  EXPECT_NE(r.output.find("double-free detected"), std::string::npos)
      << r.output;
}

TEST(Preload, StaleReallocAliasAborts) {
  const RunResult r = run_victim("stale-realloc", true);
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  EXPECT_NE(r.output.find("dangling pointer"), std::string::npos) << r.output;
}

// Reads "name":value out of the JSON-lines metrics dump (largest value wins:
// the file may hold several snapshots and counters are monotonic).
long metric_value(const std::string& json, const std::string& name) {
  long best = -1;
  const std::string key = "\"" + name + "\":";
  std::string::size_type at = 0;
  while ((at = json.find(key, at)) != std::string::npos) {
    at += key.size();
    best = std::max(best, std::atol(json.c_str() + at));
  }
  return best;
}

// The robustness acceptance run: persistent mmap ENOMEM injected mid-workload
// must leave the victim alive (exit 0) with the governor reporting a
// degraded-mode transition — never crash the host server.
TEST(Preload, SurvivesInjectedMmapExhaustionDegraded) {
  char path_tmpl[] = "/tmp/dpg_metrics_XXXXXX";
  const int fd = mkstemp(path_tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string env =
      std::string("DPG_FAULT_INJECT=mmap:errno=ENOMEM:after=40 ") +
      "DPG_METRICS_PATH=" + path_tmpl;
  const RunResult r = run_victim("churn", true, env);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("churn ok"), std::string::npos) << r.output;

  std::string json;
  if (FILE* f = fopen(path_tmpl, "r")) {
    std::array<char, 512> buf;
    while (fgets(buf.data(), buf.size(), f) != nullptr) json += buf.data();
    fclose(f);
  }
  unlink(path_tmpl);
  EXPECT_GE(metric_value(json, "dpg_degrade_transitions"), 1) << json;
  // The first rung off full-guard is sampled: most allocations take the
  // unguarded fast path (dpg_sampled_allocs). Only if the pressure persists
  // past the widening ceiling do quarantine-only/unguarded allocations
  // (dpg_degraded_allocs) appear — either proves the ladder engaged.
  EXPECT_GE(metric_value(json, "dpg_sampled_allocs") +
                metric_value(json, "dpg_degraded_allocs"),
            1)
      << json;
}

// With no injection the same workload must finish with the ladder untouched.
TEST(Preload, NoDegradationWithoutInjection) {
  char path_tmpl[] = "/tmp/dpg_metrics_XXXXXX";
  const int fd = mkstemp(path_tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const RunResult r = run_victim("churn", true,
                                 std::string("DPG_METRICS_PATH=") + path_tmpl);
  EXPECT_EQ(r.exit_code, 0) << r.output;

  std::string json;
  if (FILE* f = fopen(path_tmpl, "r")) {
    std::array<char, 512> buf;
    while (fgets(buf.data(), buf.size(), f) != nullptr) json += buf.data();
    fclose(f);
  }
  unlink(path_tmpl);
  EXPECT_EQ(metric_value(json, "dpg_degrade_transitions"), 0) << json;
  EXPECT_EQ(metric_value(json, "dpg_guard_errors"), 0) << json;
}

}  // namespace
