// Victim binary for the LD_PRELOAD interposition tests. Knows nothing about
// dpguard: plain malloc/free C++ with selectable bugs.
//
//   preload_victim clean    exercise malloc/calloc/realloc/free correctly
//   preload_victim churn    sustained varied-size malloc/free (a server-ish
//                           workload; used for degraded-mode smoke runs)
//   preload_victim uaf      read through a dangling pointer
//   preload_victim uaf-w    write through a dangling pointer
//   preload_victim df       double free
//   preload_victim stale-realloc   use the pre-realloc pointer
//
// Exit codes (each scenario outcome is distinct so the harness can tell
// *which* bug slipped through, not merely that one did):
//    0  scenario completed as intended (clean/churn ok)
//    2  unknown mode on the command line
//    3  clean: calloc memory was not zeroed
//    4  churn: malloc returned nullptr
//   10  uaf: dangling read went undetected
//   11  uaf-w: dangling write went undetected
//   12  df: double free went undetected
//   13  stale-realloc: stale pre-realloc alias read went undetected
//   14  stale-realloc: realloc did not move the block (inconclusive)
// Under the preload the bug modes never reach their exit — the guard aborts
// the process first (SIGABRT), which is what the tests assert.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

// Every bug below is deliberate — the binary exists to trigger them under
// the interposer — so the compiler's (correct) UAF diagnosis is noise here.
#pragma GCC diagnostic ignored "-Wuse-after-free"

namespace {

// The optimizer is entitled to delete UB (a store to freed memory is a dead
// store; a second free of the same pointer may be folded). Launder the
// pointer so each bug actually reaches the allocator/MMU at -O2.
template <typename T>
T* launder_ptr(T* p) {
  asm volatile("" : "+r"(p));
  return p;
}

int run_clean() {
  std::vector<char*> blocks;
  for (int i = 0; i < 200; ++i) {
    auto* p = static_cast<char*>(std::malloc(static_cast<std::size_t>(16 + i)));
    std::snprintf(p, 16, "block-%d", i);
    blocks.push_back(p);
  }
  auto* z = static_cast<int*>(std::calloc(64, sizeof(int)));
  for (int i = 0; i < 64; ++i) {
    if (z[i] != 0) return 3;
  }
  z = static_cast<int*>(std::realloc(z, 128 * sizeof(int)));
  z[100] = 7;
  std::free(z);
  long checksum = 0;
  for (char* p : blocks) {
    checksum += p[0];
    std::free(p);
  }
  std::printf("clean ok %ld\n", checksum);
  return 0;
}

// A few thousand correct allocations across the size classes with staggered
// frees — the shape of a request-serving process. Used with DPG_FAULT_INJECT
// to prove the host keeps running when the kernel refuses guard syscalls.
int run_churn() {
  std::vector<char*> live;
  long checksum = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t size = static_cast<std::size_t>(16 + (i * 37) % 3000);
    auto* p = static_cast<char*>(std::malloc(size));
    if (p == nullptr) return 4;
    p[0] = static_cast<char>('a' + i % 26);
    p[size - 1] = p[0];
    live.push_back(p);
    if (live.size() > 64) {
      char* victim = live.front();
      live.erase(live.begin());
      checksum += victim[0];
      std::free(victim);
    }
  }
  for (char* p : live) {
    checksum += p[0];
    std::free(p);
  }
  std::printf("churn ok %ld\n", checksum);
  return 0;
}

int run_uaf(bool write) {
  auto* p = static_cast<char*>(std::malloc(64));
  std::strcpy(p, "session-token");
  std::free(p);
  if (write) {
    launder_ptr(p)[0] = 'X';  // dangling write
    asm volatile("" ::: "memory");
  } else {
    volatile char c = launder_ptr(p)[0];  // dangling read
    (void)c;
  }
  std::printf("BUG NOT DETECTED\n");
  return write ? 11 : 10;
}

int run_df() {
  void* p = std::malloc(48);
  std::free(p);
  std::free(launder_ptr(p));  // double free
  std::printf("BUG NOT DETECTED\n");
  return 12;
}

int run_stale_realloc() {
  auto* p = static_cast<char*>(std::malloc(32));
  std::strcpy(p, "old");
  auto* q = static_cast<char*>(std::realloc(p, 4096));
  if (p != q) {
    volatile char c = launder_ptr(p)[0];  // stale pre-realloc alias
    (void)c;
    std::printf("BUG NOT DETECTED\n");
    return 13;
  }
  std::free(q);
  std::printf("realloc did not move; inconclusive\n");
  return 14;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "clean";
  if (mode == "clean") return run_clean();
  if (mode == "churn") return run_churn();
  if (mode == "uaf") return run_uaf(false);
  if (mode == "uaf-w") return run_uaf(true);
  if (mode == "df") return run_df();
  if (mode == "stale-realloc") return run_stale_realloc();
  std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
  return 2;
}
