// Shared PIR programs used across compiler tests.
#pragma once

namespace dpg::testing {

// The paper's running example (Figure 1): f() calls g(); g builds a 10-node
// list hanging off the head p, then frees all but the head; back in f the
// reference p->next->val is a dangling use.
inline constexpr const char* kFigure1 = R"(
func main() {
  call f()
  ret
}
func f() {
  p = malloc 2        # struct s { next, val }
  call g(p)
  q = getfield p, 0   # p->next, freed inside g
  v = getfield q, 1   # p->next->val  -- DANGLING
  out v
  ret
}
func g(p) {
  i = const 0
  n = const 9
  cur = copy p
loop:
  c = lt i, n
  cbr c, body, done
body:
  node = malloc 2
  setfield cur, 0, node
  setfield node, 1, i
  cur = copy node
  one = const 1
  i = add i, one
  br loop
done:
  zero = const 0
  t = getfield p, 0
inner:
  nz = eq t, zero
  cbr nz, end, freeit
freeit:
  nxt = getfield t, 0
  free t
  t = copy nxt
  br inner
end:
  ret
}
)";

// Same structure but well-behaved: g frees all nodes including the chain,
// and f never touches them afterwards.
inline constexpr const char* kFigure1Fixed = R"(
func main() {
  r = call f()
  out r
  ret
}
func f() {
  p = malloc 2
  call g(p)
  v = getfield p, 1
  free p
  ret v
}
func g(p) {
  i = const 0
  n = const 9
  cur = copy p
loop:
  c = lt i, n
  cbr c, body, done
body:
  node = malloc 2
  setfield cur, 0, node
  setfield node, 1, i
  cur = copy node
  one = const 1
  i = add i, one
  br loop
done:
  zero = const 0
  t = getfield p, 0
  setfield p, 0, zero
inner:
  nz = eq t, zero
  cbr nz, end, freeit
freeit:
  nxt = getfield t, 0
  free t
  t = copy nxt
  br inner
end:
  sum = const 123
  setfield p, 1, sum
  ret
}
)";

// Heap data escaping through a global: must land in a main-scoped pool.
inline constexpr const char* kGlobalEscape = R"(
global cache
func main() {
  call worker()
  p = loadg cache
  v = getfield p, 0
  out v
  ret
}
func worker() {
  p = malloc 1
  seven = const 7
  setfield p, 0, seven
  storeg cache, p
  ret
}
)";

// A node that never escapes leaf(): pool belongs in leaf.
inline constexpr const char* kLocalPool = R"(
func main() {
  i = const 0
  n = const 5
loop:
  c = lt i, n
  cbr c, body, done
body:
  call leaf()
  one = const 1
  i = add i, one
  br loop
done:
  ret
}
func leaf() {
  p = malloc 4
  x = const 11
  setfield p, 0, x
  y = getfield p, 0
  out y
  free p
  ret
}
)";

// Recursive builder: the SCC {build} cannot host the pool; it must move to
// the trivial caller main.
inline constexpr const char* kRecursive = R"(
func main() {
  d = const 6
  t = call build(d)
  s = call total(t)
  out s
  ret
}
func build(d) {
  zero = const 0
  z = eq d, zero
  cbr z, leafcase, inner
leafcase:
  nil = const 0
  ret nil
inner:
  p = malloc 3
  one = const 1
  dm = sub d, one
  l = call build(dm)
  r = call build(dm)
  setfield p, 0, l
  setfield p, 1, r
  setfield p, 2, d
  ret p
}
func total(t) {
  zero = const 0
  z = eq t, zero
  cbr z, basecase, walk
basecase:
  ret zero
walk:
  l = getfield t, 0
  r = getfield t, 1
  v = getfield t, 2
  sl = call total(l)
  sr = call total(r)
  s = add sl, sr
  s = add s, v
  ret s
}
)";

// Two independent structures with different lifetimes: two pools, homed in
// different functions.
inline constexpr const char* kTwoPools = R"(
func main() {
  keeper = malloc 2
  one = const 1
  setfield keeper, 0, one
  call scratchwork()
  v = getfield keeper, 0
  out v
  free keeper
  ret
}
func scratchwork() {
  tmp = malloc 8
  five = const 5
  setfield tmp, 3, five
  w = getfield tmp, 3
  out w
  free tmp
  ret
}
)";

}  // namespace dpg::testing
