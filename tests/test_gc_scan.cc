// Tests for the §3.4 conservative scanner: reclaim freed shadow spans whose
// addresses are no longer stored anywhere, keep the ones still referenced.
#include <gtest/gtest.h>

#include <vector>

#include "core/fault_manager.h"
#include "core/gc_scan.h"
#include "core/guarded_heap.h"

namespace dpg::core {
namespace {

class GcScanTest : public ::testing::Test {
 protected:
  vm::PhysArena arena_{1u << 26};
  GuardedHeap heap_{arena_};
  ConservativeScanner scanner_;

  ShadowEngine* engines_[1] = {&heap_.engine()};
};

TEST_F(GcScanTest, UnreferencedFreedSpanIsReclaimed) {
  auto* p = static_cast<char*>(heap_.malloc(16));
  heap_.free(p);
  p = nullptr;  // no root holds it
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.freed_candidates, 1u);
  EXPECT_EQ(result.reclaimed, 1u);
  EXPECT_EQ(result.retained, 0u);
  EXPECT_GT(result.bytes_reclaimed, 0u);
}

TEST_F(GcScanTest, RootReferencedSpanIsRetainedAndStillTraps) {
  static char* dangling;  // a "global" root
  dangling = static_cast<char*>(heap_.malloc(16));
  heap_.free(dangling);
  scanner_.add_root(&dangling, sizeof(dangling));
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.retained, 1u);
  EXPECT_EQ(result.reclaimed, 0u);
  // Detection preserved for exactly the pointer that might still be used.
  const auto report = catch_dangling([&] {
    volatile char c = *dangling;
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
  dangling = nullptr;
  (void)scanner_.collect(engines_);  // now reclaimable
}

TEST_F(GcScanTest, InteriorPointerRetains) {
  static char* mid;
  auto* p = static_cast<char*>(heap_.malloc(100));
  mid = p + 50;
  heap_.free(p);
  scanner_.add_root(&mid, sizeof(mid));
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.retained, 1u);
  mid = nullptr;
}

TEST_F(GcScanTest, PointerInsideLiveObjectRetains) {
  struct Holder {
    char* stale;
  };
  auto* holder = static_cast<Holder*>(heap_.malloc(sizeof(Holder)));
  auto* victim = static_cast<char*>(heap_.malloc(16));
  holder->stale = victim;
  heap_.free(victim);
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.retained, 1u);
  EXPECT_EQ(result.reclaimed, 0u);
  holder->stale = nullptr;
  const auto again = scanner_.collect(engines_);
  EXPECT_EQ(again.reclaimed, 1u);
  heap_.free(holder);
}

TEST_F(GcScanTest, MixedReclaimAndRetain) {
  static std::uintptr_t keep_word;
  std::vector<char*> victims;
  for (int i = 0; i < 10; ++i) {
    victims.push_back(static_cast<char*>(heap_.malloc(16)));
  }
  for (char* v : victims) heap_.free(v);
  keep_word = vm::addr(victims[3]);
  scanner_.add_root(&keep_word, sizeof(keep_word));
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.freed_candidates, 10u);
  EXPECT_EQ(result.retained, 1u);
  EXPECT_EQ(result.reclaimed, 9u);
  keep_word = 0;
}

TEST_F(GcScanTest, CollectOnEmptyEnginesIsNoop) {
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.freed_candidates, 0u);
  EXPECT_EQ(result.reclaimed, 0u);
}

TEST_F(GcScanTest, LiveObjectsAreNeverReclaimed) {
  auto* live = static_cast<char*>(heap_.malloc(16));
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.freed_candidates, 0u);
  live[0] = 'x';  // still usable
  heap_.free(live);
}

TEST_F(GcScanTest, ReclaimedSpansReenterTheFreeList) {
  const std::size_t before = heap_.shadow_freelist().bytes();
  auto* p = static_cast<char*>(heap_.malloc(16));
  heap_.free(p);
  (void)scanner_.collect(engines_);
  EXPECT_GT(heap_.shadow_freelist().bytes(), before);
}

TEST_F(GcScanTest, ClearRootsForgetsRegistrations) {
  static char* root_ptr;
  root_ptr = static_cast<char*>(heap_.malloc(16));
  heap_.free(root_ptr);
  scanner_.add_root(&root_ptr, sizeof(root_ptr));
  scanner_.clear_roots();
  const auto result = scanner_.collect(engines_);
  EXPECT_EQ(result.reclaimed, 1u);
  root_ptr = nullptr;
}

}  // namespace
}  // namespace dpg::core
