// Whole-pipeline tests on richer PIR programs: parse -> points-to -> escape
// -> transform -> verify -> execute, comparing native and guarded outputs
// and checking pool behaviour. These are the "application programs" of the
// compiler substrate.
#include <gtest/gtest.h>

#include "compiler/interp.h"
#include "compiler/parser.h"
#include "compiler/pool_transform.h"
#include "compiler/verify.h"
#include "core/fault_manager.h"

namespace dpg::compiler {
namespace {

// A FIFO queue server: enqueue N jobs, process them in arrival order,
// freeing each after processing. Two data structures (queue cells and job
// payloads) with different shapes.
constexpr const char* kQueueServer = R"(
func main() {
  n = const 40
  call serve(n)
  ret
}
# NOTE: serve emits its result with `out` instead of returning it. Returning
# `total` would conservatively escape the queue node: the field-insensitive
# unification analysis merges integers loaded from the heap with the heap
# node's pointers (PIR, like post-cast C, has no int/pointer distinction),
# so the returned sum would count as a live outside pointer and the pool
# would be pushed up to main — sound, but not the placement this test pins.
func serve(n) {
  head = const 0
  tail = const 0
  i = const 0
enqueue:
  c = lt i, n
  cbr c, push, drain
push:
  job = malloc 2
  setfield job, 0, i
  i3 = mul i, i
  setfield job, 1, i3
  cell = malloc 2
  setfield cell, 0, job
  zero = const 0
  setfield cell, 1, zero
  hz = eq head, zero
  cbr hz, firstcell, linkcell
firstcell:
  head = copy cell
  tail = copy cell
  br bump
linkcell:
  setfield tail, 1, cell
  tail = copy cell
bump:
  one = const 1
  i = add i, one
  br enqueue
drain:
  total = const 0
  zero2 = const 0
loop:
  hz2 = eq head, zero2
  cbr hz2, done, work
work:
  job2 = getfield head, 0
  v = getfield job2, 1
  total = add total, v
  free job2
  nxt = getfield head, 1
  free head
  head = copy nxt
  br loop
done:
  out total
  ret
}
)";

// A separate-chaining hash table: insert keys, look some up, tear down.
constexpr const char* kHashTable = R"(
func main() {
  t = call build()
  hits = call probe(t)
  out hits
  call destroy(t)
  ret
}
func build() {
  eight = const 8
  t = malloc eight
  i = const 0
  n = const 64
loop:
  c = lt i, n
  cbr c, ins, done
ins:
  call insert(t, i)
  one = const 1
  i = add i, one
  br loop
done:
  ret t
}
func insert(t, key) {
  e = malloc 2
  setfield e, 0, key
  seven = const 7
  b = mul key, seven
  eight = const 8
  bb = call mod8(b)
  old = getfieldv t, bb
  setfield e, 1, old
  setfieldv t, bb, e
  ret
}
func mod8(x) {
  eight = const 8
  q = const 0
loop:
  c = lt x, eight
  cbr c, done, sub8
sub8:
  x = sub x, eight
  br loop
done:
  ret x
}
func probe(t) {
  hits = const 0
  i = const 0
  n = const 64
  two = const 2
loop:
  c = lt i, n
  cbr c, look, done
look:
  seven = const 7
  b = mul i, seven
  bb = call mod8(b)
  e = getfieldv t, bb
  zero = const 0
walk:
  ez = eq e, zero
  cbr ez, next, cmp
cmp:
  k = getfield e, 0
  hit = eq k, i
  cbr hit, found, chase
chase:
  e = getfield e, 1
  br walk
found:
  one = const 1
  hits = add hits, one
next:
  i = add i, two
  br loop
done:
  ret hits
}
func destroy(t) {
  b = const 0
  eight = const 8
  zero = const 0
buckets:
  c = lt b, eight
  cbr c, chain, done
chain:
  e = getfieldv t, b
drainloop:
  ez = eq e, zero
  cbr ez, nextbucket, freecell
freecell:
  nxt = getfield e, 1
  free e
  e = copy nxt
  br drainloop
nextbucket:
  one = const 1
  b = add b, one
  br buckets
done:
  free t
  ret
}
)";

// A double-free lurking behind a conditional: the error path frees, the
// common path frees again (the CVS exploit shape, in PIR).
constexpr const char* kConditionalDoubleFree = R"(
func main() {
  bad = const 1
  call handle(bad)
  ret
}
func handle(flag) {
  buf = malloc 4
  one = const 1
  iserr = eq flag, one
  cbr iserr, errpath, okpath
errpath:
  free buf
  br cleanup
okpath:
  x = getfield buf, 0
  out x
  br cleanup
cleanup:
  free buf
  ret
}
)";

struct Pipeline {
  TransformResult transformed;
  explicit Pipeline(const char* src) : transformed(pool_allocate(parse_module(src))) {}
};

TEST(Pipeline, QueueServerNativeVsGuarded) {
  Interpreter native(parse_module(kQueueServer), {.backend = Backend::kNative});
  Pipeline p(kQueueServer);
  Interpreter guarded(p.transformed.module, {.backend = Backend::kGuarded});
  const auto a = native.run();
  const auto b = guarded.run();
  EXPECT_EQ(a.output, b.output);
  // sum of i^2 for i in [0, 40), emitted from inside serve()
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 40; ++i) expect += i * i;
  ASSERT_EQ(a.output.size(), 1u);
  EXPECT_EQ(a.output[0], expect);
}

TEST(Pipeline, QueueServerPoolsRecycleEverything) {
  Pipeline p(kQueueServer);
  EXPECT_TRUE(verify_module(p.transformed.module).empty());
  Interpreter interp(p.transformed.module, {.backend = Backend::kGuarded});
  (void)interp.run();
  EXPECT_EQ(interp.live_pools(), 0u);
  EXPECT_GT(interp.context()->recyclable_shadow_bytes(), 0u);
}

TEST(Pipeline, QueueServerPoolHomedInServe) {
  // The whole queue never escapes serve(): its pool belongs there, not main.
  Pipeline p(kQueueServer);
  bool found_in_serve = false;
  for (const auto& pool : p.transformed.placement.pools) {
    const std::string& home =
        p.transformed.module
            .functions[static_cast<std::size_t>(pool.home_function)]
            .name;
    found_in_serve |= home == "serve";
    EXPECT_NE(home, "main") << "queue data wrongly homed in main";
  }
  EXPECT_TRUE(found_in_serve);
}

TEST(Pipeline, HashTableNativeVsGuarded) {
  Interpreter native(parse_module(kHashTable), {.backend = Backend::kNative});
  Pipeline p(kHashTable);
  Interpreter guarded(p.transformed.module, {.backend = Backend::kGuarded});
  const auto a = native.run();
  const auto b = guarded.run();
  EXPECT_EQ(a.output, b.output);
  ASSERT_EQ(a.output.size(), 1u);
  EXPECT_EQ(a.output[0], 32u);  // probes every even key in [0, 64)
}

TEST(Pipeline, HashTableTransformVerifies) {
  Pipeline p(kHashTable);
  const auto problems = verify_module(p.transformed.module);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Pipeline, HashTableRunsRepeatedlyWithoutGrowth) {
  Pipeline p(kHashTable);
  Interpreter interp(p.transformed.module, {.backend = Backend::kGuarded});
  (void)interp.run();
  const std::size_t phys = interp.context()->arena().physical_bytes();
  for (int i = 0; i < 5; ++i) (void)interp.run();
  EXPECT_EQ(interp.context()->arena().physical_bytes(), phys);
}

TEST(Pipeline, ConditionalDoubleFreeCaught) {
  Pipeline p(kConditionalDoubleFree);
  Interpreter interp(p.transformed.module, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, core::AccessKind::kFree);
}

TEST(Pipeline, ConditionalDoubleFreeCleanOnGoodPath) {
  // flag != 1 takes the ok path: exactly one free, no report.
  Module m = parse_module(kConditionalDoubleFree);
  // Flip the flag constant.
  for (Instr& ins : m.find("main")->body) {
    if (ins.op == Op::kConst) ins.imm = 0;
  }
  const TransformResult t = pool_allocate(m);
  Interpreter interp(t.module, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  EXPECT_FALSE(report.has_value());
}

}  // namespace
}  // namespace dpg::compiler
