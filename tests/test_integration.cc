// Cross-module integration tests: end-to-end server scenarios with injected
// temporal bugs, the §3.4 mitigation strategies working together, and the
// compiler pipeline feeding the runtime.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baseline/policies.h"
#include "compiler/interp.h"
#include "compiler/parser.h"
#include "compiler/pool_transform.h"
#include "core/fault_manager.h"
#include "core/gc_scan.h"
#include "core/guarded_pool.h"
#include "pir_programs.h"
#include "workloads/registry.h"

namespace dpg {
namespace {

// --- Security scenarios the paper motivates with (double-free exploits) ----

TEST(Integration, CvsStyleDoubleFreeCaught) {
  // CVS server double-free (bugtraq 2003): an error path frees a buffer the
  // success path later frees again.
  core::GuardedPoolContext ctx;
  core::GuardedPool pool(ctx);
  auto* dirname = static_cast<char*>(pool.alloc(256, 100));
  std::strcpy(dirname, "/repo/module");
  const bool error_path = true;
  if (error_path) pool.free(dirname, 101);
  // ... later, common cleanup:
  const auto report = core::catch_dangling([&] { pool.free(dirname, 102); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, core::AccessKind::kFree);
}

TEST(Integration, StaleSessionPointerAcrossRequestsCaught) {
  // A server caches a pointer into per-connection state; the next request
  // uses it after the connection pool freed the object.
  core::GuardedPoolContext ctx;
  char* cached = nullptr;
  {
    core::PoolScope request1(ctx);
    cached = static_cast<char*>(request1.pool().alloc(64, 1));
    std::strcpy(cached, "auth-token");
    request1.pool().free(cached, 2);
    // Within the connection lifetime, the stale pointer traps:
    const auto report = core::catch_dangling([&] {
      volatile char c = cached[0];
      (void)c;
    });
    EXPECT_TRUE(report.has_value());
  }
}

TEST(Integration, WriteThroughDanglingPointerCannotCorruptReusedMemory) {
  // The exploit scenario: attacker writes through a dangling pointer to
  // corrupt whatever reused the memory. Here the physical block is reused by
  // `fresh`, but the stale write traps instead of corrupting it.
  vm::PhysArena arena(1u << 26);
  core::GuardedHeap heap(arena);
  auto* victim = static_cast<char*>(heap.malloc(64));
  heap.free(victim);
  auto* fresh = static_cast<char*>(heap.malloc(64));
  std::strcpy(fresh, "credentials=admin");
  const auto report = core::catch_dangling([&] { victim[0] = 'X'; });
  ASSERT_TRUE(report.has_value());
  EXPECT_STREQ(fresh, "credentials=admin") << "memory was corrupted!";
  heap.free(fresh);
}

// --- §3.4 strategies in concert --------------------------------------------

TEST(Integration, LongLivedPoolWithBudgetAndGc) {
  core::GuardedPoolContext ctx({.freed_va_budget = 0});
  core::GuardedPool global_pool(ctx);  // lives "forever"
  core::ConservativeScanner scanner;
  core::ShadowEngine* engines[] = {&global_pool.engine()};

  static char* held;  // root-visible stale pointer
  std::vector<char*> strays;
  for (int i = 0; i < 200; ++i) {
    auto* p = static_cast<char*>(global_pool.alloc(32));
    global_pool.free(p);
    if (i == 50) {
      held = p;
    } else {
      strays.push_back(p);
    }
  }
  scanner.add_root(&held, sizeof(held));
  const auto result = scanner.collect(engines);
  EXPECT_EQ(result.retained, 1u);
  EXPECT_EQ(result.reclaimed, 199u);
  // The retained one still traps; the reclaimed ones gave back their VA.
  const auto report = core::catch_dangling([&] {
    volatile char c = held[0];
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
  EXPECT_GT(ctx.recyclable_shadow_bytes(), 0u);
  held = nullptr;
}

TEST(Integration, BudgetKeepsLongRunningServerBounded) {
  // A "connection handler" that leaks protected spans would exhaust VA /
  // page-table entries over days; the budget strategy bounds it.
  core::GuardedPoolContext ctx({.freed_va_budget = 128 * vm::kPageSize});
  core::GuardedPool pool(ctx);
  for (int request = 0; request < 5000; ++request) {
    void* p = pool.alloc(48);
    pool.free(p);
  }
  EXPECT_LE(pool.stats().guarded_bytes,
            128 * vm::kPageSize + 2 * vm::kPageSize);
  EXPECT_GT(pool.stats().shadow_pages_reused, 0u);
}

// --- compiler pipeline feeding the runtime ----------------------------------

TEST(Integration, CompilerPipelineEndToEnd) {
  // parse -> analyze -> transform -> execute on guarded runtime -> trap.
  const compiler::Module m = compiler::parse_module(dpg::testing::kFigure1);
  const compiler::TransformResult t = compiler::pool_allocate(m);
  compiler::Interpreter interp(t.module,
                               {.backend = compiler::Backend::kGuarded});
  const std::uint64_t detections_before =
      core::FaultManager::instance().detections();
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(core::FaultManager::instance().detections(), detections_before + 1);
}

TEST(Integration, TransformedProgramsRecycleAcrossRepeatedRuns) {
  const compiler::Module m = compiler::parse_module(dpg::testing::kLocalPool);
  const compiler::TransformResult t = compiler::pool_allocate(m);
  compiler::Interpreter interp(t.module,
                               {.backend = compiler::Backend::kGuarded});
  (void)interp.run();
  const std::size_t phys = interp.context()->arena().physical_bytes();
  const std::size_t recyclable = interp.context()->recyclable_shadow_bytes();
  for (int i = 0; i < 5; ++i) (void)interp.run();
  EXPECT_EQ(interp.context()->arena().physical_bytes(), phys);
  EXPECT_EQ(interp.context()->recyclable_shadow_bytes(), recyclable);
}

// --- workloads under guard with fault accounting -----------------------------

TEST(Integration, ServerWorkloadsRunCleanUnderGuard) {
  const std::uint64_t before = core::FaultManager::instance().detections();
  for (const std::string& name : workloads::server_names()) {
    (void)workloads::run_workload<baseline::GuardedPolicy>(name, 0.03);
  }
  EXPECT_EQ(core::FaultManager::instance().detections(), before)
      << "clean workloads must not trigger detections";
}

TEST(Integration, GhttpdConnectionsRecycleAllPages) {
  // §4.3: "there is no virtual memory wastage" for ghttpd — every connection
  // returns its pages. Measure: repeated batches do not grow the arena.
  (void)workloads::run_workload<baseline::GuardedPolicy>("ghttpd", 0.05);
  auto& ctx = baseline::GuardedPolicy::context();
  const std::size_t phys = ctx.arena().physical_bytes();
  (void)workloads::run_workload<baseline::GuardedPolicy>("ghttpd", 0.05);
  EXPECT_EQ(ctx.arena().physical_bytes(), phys);
}

TEST(Integration, MixedPoliciesCoexistInOneProcess) {
  // Different schemes in one process (e.g. debugging one library while the
  // rest runs native) must not interfere.
  const std::uint64_t native =
      workloads::run_workload<baseline::NativePolicy>("patch", 0.03);
  const std::uint64_t guarded =
      workloads::run_workload<baseline::GuardedPolicy>("patch", 0.03);
  const std::uint64_t efence_ok =
      workloads::run_workload<baseline::NativePolicy>("jwhois", 0.03);
  EXPECT_EQ(native, guarded);
  (void)efence_ok;
}

}  // namespace
}  // namespace dpg
