// Tests for the PIR module verifier.
#include <gtest/gtest.h>

#include "compiler/parser.h"
#include "compiler/pool_transform.h"
#include "compiler/verify.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

TEST(Verify, AllSampleProgramsAreWellFormed) {
  for (const char* src :
       {dpg::testing::kFigure1, dpg::testing::kFigure1Fixed,
        dpg::testing::kGlobalEscape, dpg::testing::kLocalPool,
        dpg::testing::kRecursive, dpg::testing::kTwoPools}) {
    EXPECT_TRUE(verify_module(parse_module(src)).empty());
  }
}

TEST(Verify, TransformedModulesStayWellFormed) {
  // The key regression guard: the transformation's surgery (instruction
  // insertion, target renumbering, parameter appending, call rewrites) must
  // preserve every structural invariant.
  for (const char* src :
       {dpg::testing::kFigure1, dpg::testing::kFigure1Fixed,
        dpg::testing::kGlobalEscape, dpg::testing::kLocalPool,
        dpg::testing::kRecursive, dpg::testing::kTwoPools}) {
    const TransformResult result = pool_allocate(parse_module(src));
    const auto problems = verify_module(result.module);
    EXPECT_TRUE(problems.empty())
        << src << ": " << (problems.empty() ? "" : problems.front());
  }
}

TEST(Verify, DetectsBadBranchTarget) {
  Module m = parse_module("func main() { x = const 1\n ret }");
  Instr br;
  br.op = Op::kBr;
  br.target = 99;
  m.functions[0].body.push_back(br);
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("branch target"), std::string::npos);
}

TEST(Verify, DetectsBadRegister) {
  Module m = parse_module("func main() { x = const 1\n out x\n ret }");
  m.functions[0].body[1].a = 42;  // register out of range
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("operand"), std::string::npos);
}

TEST(Verify, DetectsUnknownCallee) {
  const Module m = parse_module("func main() { call ghost()\n ret }");
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("unknown function"), std::string::npos);
}

TEST(Verify, DetectsArityMismatch) {
  Module m = parse_module(R"(
func two(a, b) { ret a }
func main() {
  x = const 1
  call two(x, x)
  ret
}
)");
  // Drop one argument after the fact.
  for (Instr& ins : m.find("main")->body) {
    if (ins.op == Op::kCall) ins.args.pop_back();
  }
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("arity"), std::string::npos);
}

TEST(Verify, DetectsDuplicateSiteIds) {
  Module m = parse_module(R"(
func main() {
  p = malloc 1
  q = malloc 1
  free p
  free q
  ret
}
)");
  // Clone a site id.
  Function& fn = *m.find("main");
  for (Instr& ins : fn.body) {
    if (ins.op == Op::kMalloc) ins.site = 7;
  }
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("duplicate site"), std::string::npos);
}

TEST(Verify, DetectsGlobalIndexOutOfRange) {
  Module m = parse_module("global g\nfunc main() { x = loadg g\n out x\n ret }");
  m.functions[0].body[0].imm = 5;
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("global index"), std::string::npos);
}

TEST(Verify, DetectsBrokenFunctionIndex) {
  Module m = parse_module("func main() { ret }\nfunc other() { ret }");
  m.function_index["main"] = 1;
  m.function_index["other"] = 0;
  EXPECT_FALSE(verify_module(m).empty());
}

TEST(Verify, DetectsMissingSiteOnPoolOps) {
  Module m = parse_module("func main() { ret }");
  Function& fn = *m.find("main");
  Instr init;
  init.op = Op::kPoolInit;
  init.dst = static_cast<int>(fn.reg_names.size());
  fn.reg_names.push_back("__pool0");
  Instr alloc;
  alloc.op = Op::kPoolAlloc;
  alloc.dst = init.dst;
  alloc.a = init.dst;
  alloc.b = init.dst;
  alloc.site = 0;  // missing
  fn.body.insert(fn.body.begin(), alloc);
  fn.body.insert(fn.body.begin(), init);
  const auto problems = verify_module(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("site id missing"), std::string::npos);
}

TEST(Verify, CleanModuleProducesNoDiagnostics) {
  EXPECT_TRUE(verify_module(parse_module("func main() { ret }")).empty());
}

// --- SiteScheme table (the scheme-selection contract, DESIGN.md §14) ------

bool has_problem(const std::vector<std::string>& problems,
                 const char* needle) {
  for (const std::string& p : problems) {
    if (p.find(needle) != std::string::npos) return true;
  }
  return false;
}

// kFigure1 transformed: MAY-UAF, so its sites carry kPageGuard schemes.
Module transformed_figure1() {
  Module m = pool_allocate(parse_module(dpg::testing::kFigure1)).module;
  EXPECT_FALSE(m.site_scheme.empty());
  return m;
}

TEST(Verify, SchemeTableRejectsUnknownVersion) {
  Module m = transformed_figure1();
  m.site_scheme_version = kSiteSchemeVersion + 1;
  EXPECT_TRUE(has_problem(verify_module(m),
                          "unsupported site_scheme table version"));
}

TEST(Verify, SchemeTableRejectsDuplicateEntry) {
  Module m = transformed_figure1();
  m.site_scheme.push_back(m.site_scheme.front());
  EXPECT_TRUE(
      has_problem(verify_module(m), "conflicting duplicate site entry"));
}

TEST(Verify, SchemeTableRejectsPhantomSite) {
  Module m = transformed_figure1();
  SiteSchemeEntry ghost = m.site_scheme.front();
  ghost.site = 9999;
  m.site_scheme.push_back(ghost);
  EXPECT_TRUE(
      has_problem(verify_module(m), "site does not exist in the module"));
}

TEST(Verify, SchemeTableRejectsKindDisagreement) {
  Module m = transformed_figure1();
  m.site_scheme.front().is_free = !m.site_scheme.front().is_free;
  EXPECT_TRUE(has_problem(verify_module(m),
                          "alloc/free kind disagrees with the instruction"));
}

TEST(Verify, SchemeTableRejectsMissingSite) {
  Module m = transformed_figure1();
  m.site_scheme.pop_back();
  EXPECT_TRUE(has_problem(verify_module(m),
                          "alloc/free site missing from the scheme table"));
}

TEST(Verify, SchemeTableRejectsNodeMixingSchemes) {
  Module m = transformed_figure1();
  // Flip one page-guard entry to the tag lane while its node partners stay:
  // a tagged pointer would reach the page-guard free path.
  m.site_scheme.front().scheme = SiteScheme::kLockAndKey;
  EXPECT_TRUE(has_problem(verify_module(m), "node mixes detection schemes"));
}

TEST(Verify, SchemeTableRejectsUnguardedOnUnprovenSite) {
  Module m = transformed_figure1();
  for (SiteSchemeEntry& entry : m.site_scheme) {
    entry.scheme = SiteScheme::kUnguarded;  // uniform, so no mixing noise
  }
  EXPECT_TRUE(has_problem(verify_module(m),
                          "unguarded scheme on a site not proven SAFE"));
}

TEST(Verify, SchemeTableRejectsTagLaneOnElidedSite) {
  // kTwoPools is SAFE end to end: every site is elided and kUnguarded.
  Module m = pool_allocate(parse_module(dpg::testing::kTwoPools)).module;
  ASSERT_FALSE(m.site_scheme.empty());
  ASSERT_TRUE(m.site_scheme.front().scheme == SiteScheme::kUnguarded);
  for (SiteSchemeEntry& entry : m.site_scheme) {
    entry.scheme = SiteScheme::kLockAndKey;
  }
  EXPECT_TRUE(has_problem(verify_module(m),
                          "lock-and-key lane on a SAFE-elided site"));
}

}  // namespace
}  // namespace dpg::compiler
