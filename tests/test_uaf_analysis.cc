// Tests for the static use-after-free analysis and its guard-elision
// contract (SiteSafety table consumed by the transform, verifier, interp).
#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/interp.h"
#include "compiler/parser.h"
#include "compiler/points_to.h"
#include "compiler/pool_transform.h"
#include "compiler/uaf_analysis.h"
#include "compiler/verify.h"
#include "core/fault_manager.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

// Straight-line intraprocedural dangling dereference (the minimal shape of
// the paper's motivating bug): alloc, free, then use of the same object.
constexpr const char* kStraightLineUaf = R"(
func main() {
  p = malloc 2
  x = const 5
  setfield p, 0, x
  free p
  v = getfield p, 0
  out v
  ret
}
)";

// Loop-carried: the back edge brings a FREED state into the loop header, so
// the dereference (and the re-execution of the free) are MAY, not MUST —
// the first iteration is fine.
constexpr const char* kLoopCarriedFree = R"(
func main() {
  p = malloc 1
  i = const 0
  n = const 3
loop:
  c = lt i, n
  cbr c, body, done
body:
  v = getfield p, 0
  free p
  one = const 1
  i = add i, one
  br loop
done:
  ret
}
)";

// Interprocedural: the callee frees its argument; the caller dereferences
// afterwards. The callee's may-free summary is applied strongly at the call
// site, so this classifies as MUST.
constexpr const char* kFreeInCallee = R"(
func main() {
  p = malloc 1
  call takefree(p)
  v = getfield p, 0
  out v
  ret
}
func takefree(p) {
  free p
  ret
}
)";

constexpr const char* kDoubleFreeStraight = R"(
func main() {
  p = malloc 1
  free p
  free p
  ret
}
)";

UafAnalysis analyze(const char* src) {
  const Module m = parse_module(src);
  EXPECT_TRUE(verify_module(m).empty());
  const PointsToAnalysis pta(m);
  return UafAnalysis(m, pta);
}

bool has_role(const Finding& f, const char* role) {
  return std::any_of(f.witness.begin(), f.witness.end(),
                     [&](const WitnessStep& s) {
                       return std::string(s.role) == role;
                     });
}

TEST(UafAnalysis, StraightLineUseAfterFreeIsMust) {
  const UafAnalysis uaf = analyze(kStraightLineUaf);
  ASSERT_FALSE(uaf.findings().empty());
  const Finding& f = uaf.findings().front();
  EXPECT_EQ(f.kind, FindingKind::kUseAfterFree);
  EXPECT_EQ(f.certainty, Certainty::kMust);
  // The witness names the allocation, the free, and the use.
  EXPECT_TRUE(has_role(f, "alloc"));
  EXPECT_TRUE(has_role(f, "free"));
  EXPECT_TRUE(has_role(f, "use"));
  // The (alloc, free) pair is reported MUST-UAF and the site is unsafe.
  ASSERT_EQ(uaf.pairs().size(), 1u);
  EXPECT_EQ(uaf.pairs()[0].cls, PairClass::kMustUaf);
  EXPECT_FALSE(uaf.site_safe(uaf.pairs()[0].alloc_site));
}

TEST(UafAnalysis, Figure1DanglingDereferenceIsMust) {
  const UafAnalysis uaf = analyze(dpg::testing::kFigure1);
  const auto must = std::count_if(
      uaf.findings().begin(), uaf.findings().end(), [](const Finding& f) {
        return f.kind == FindingKind::kUseAfterFree &&
               f.certainty == Certainty::kMust;
      });
  EXPECT_GE(must, 1) << "p->next->val after g() freed the chain";
  // Every MUST finding carries a full witness path.
  for (const Finding& f : uaf.findings()) {
    if (f.certainty != Certainty::kMust) continue;
    EXPECT_TRUE(has_role(f, "free")) << f.describe(parse_module(
        dpg::testing::kFigure1));
    EXPECT_TRUE(has_role(f, "use"));
  }
  // Figure 1's list is one merged points-to node; nothing on it is safe.
  EXPECT_FALSE(uaf.unsafe_nodes().empty());
}

TEST(UafAnalysis, LoopCarriedFreeIsMayNotMust) {
  const UafAnalysis uaf = analyze(kLoopCarriedFree);
  ASSERT_FALSE(uaf.findings().empty());
  bool saw_may_use = false;
  for (const Finding& f : uaf.findings()) {
    EXPECT_EQ(f.certainty, Certainty::kMay)
        << "first iteration is clean, so nothing here is MUST: "
        << f.describe(parse_module(kLoopCarriedFree));
    if (f.kind == FindingKind::kUseAfterFree) saw_may_use = true;
  }
  EXPECT_TRUE(saw_may_use);
}

TEST(UafAnalysis, FreeInCalleeUseInCallerIsInterprocedural) {
  const UafAnalysis uaf = analyze(kFreeInCallee);
  ASSERT_FALSE(uaf.findings().empty());
  const auto it = std::find_if(
      uaf.findings().begin(), uaf.findings().end(), [](const Finding& f) {
        return f.kind == FindingKind::kUseAfterFree;
      });
  ASSERT_NE(it, uaf.findings().end());
  EXPECT_EQ(it->certainty, Certainty::kMust);
  // The witness routes through the call that performed the free.
  EXPECT_TRUE(has_role(*it, "call"));
}

TEST(UafAnalysis, DoubleFreeDetected) {
  const UafAnalysis uaf = analyze(kDoubleFreeStraight);
  const auto it = std::find_if(
      uaf.findings().begin(), uaf.findings().end(), [](const Finding& f) {
        return f.kind == FindingKind::kDoubleFree;
      });
  ASSERT_NE(it, uaf.findings().end());
  EXPECT_EQ(it->certainty, Certainty::kMust);
  ASSERT_FALSE(uaf.pairs().empty());
  EXPECT_TRUE(std::any_of(uaf.pairs().begin(), uaf.pairs().end(),
                          [](const SitePair& p) {
                            return p.cls == PairClass::kDoubleFree;
                          }));
}

TEST(UafAnalysis, SafeProgramsHaveZeroFindingsAndFullElision) {
  for (const char* src :
       {dpg::testing::kLocalPool, dpg::testing::kTwoPools}) {
    const Module m = parse_module(src);
    const PointsToAnalysis pta(m);
    const UafAnalysis uaf(m, pta);
    EXPECT_TRUE(uaf.findings().empty()) << uaf.findings().front().describe(m);
    EXPECT_TRUE(uaf.unsafe_nodes().empty());
    for (const SitePair& pair : uaf.pairs()) {
      EXPECT_EQ(pair.cls, PairClass::kSafe);
      EXPECT_TRUE(uaf.site_safe(pair.alloc_site));
      EXPECT_TRUE(uaf.site_safe(pair.free_site));
    }
  }
}

// --- guard-elision contract -------------------------------------------------

TEST(GuardElision, TransformAttachesConsistentSafetyTable) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const TransformResult tr = pool_allocate(m);
  ASSERT_FALSE(tr.module.site_safety.empty());
  EXPECT_TRUE(verify_module(tr.module).empty());
  // Both structures in kTwoPools are provably safe: every site elided.
  for (const SiteSafetyEntry& e : tr.module.site_safety) {
    EXPECT_TRUE(e.elided) << "site " << e.site;
  }
}

TEST(GuardElision, VerifierRejectsMixedNode) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  TransformResult tr = pool_allocate(m);
  ASSERT_GE(tr.module.site_safety.size(), 2u);
  // Flip one entry: its node now mixes elided and guarded sites.
  tr.module.site_safety.front().elided =
      !tr.module.site_safety.front().elided;
  const std::vector<std::string> problems = verify_module(tr.module);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("mixes elided and guarded"),
            std::string::npos)
      << problems.front();
}

TEST(GuardElision, SafeWorkloadRunsUnguardedAndCountsElisions) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const TransformResult tr = pool_allocate(m);
  Interpreter interp(tr.module, {.backend = Backend::kGuarded});
  const InterpResult result = interp.run();
  ASSERT_EQ(result.output.size(), 2u);
  EXPECT_EQ(result.output[0], 5u);
  EXPECT_EQ(result.output[1], 1u);
  EXPECT_GT(interp.guards_elided(), 0u);
}

TEST(GuardElision, HonorSafetyOffForcesFullGuarding) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const TransformResult tr = pool_allocate(m);
  Interpreter interp(tr.module,
                     {.backend = Backend::kGuarded, .honor_safety = false});
  const InterpResult result = interp.run();
  EXPECT_EQ(result.output.size(), 2u);
  EXPECT_EQ(interp.guards_elided(), 0u);
}

TEST(GuardElision, UnsafeSitesStayGuardedAndStillTrap) {
  // Figure 1 keeps its merged list node unsafe, so the transformed program
  // must still take a real MMU trap on the dangling dereference even with
  // elision enabled.
  const Module m = parse_module(dpg::testing::kFigure1);
  const TransformResult tr = pool_allocate(m);
  for (const SiteSafetyEntry& e : tr.module.site_safety) {
    EXPECT_FALSE(e.elided) << "site " << e.site;
  }
  Interpreter interp(tr.module, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(interp.guards_elided(), 0u);
}

}  // namespace
}  // namespace dpg::compiler
