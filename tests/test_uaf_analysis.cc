// Tests for the static use-after-free analysis and its guard-elision
// contract (SiteSafety table consumed by the transform, verifier, interp).
#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/interp.h"
#include "compiler/parser.h"
#include "compiler/points_to.h"
#include "compiler/pool_transform.h"
#include "compiler/uaf_analysis.h"
#include "compiler/verify.h"
#include "core/fault_manager.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

// Straight-line intraprocedural dangling dereference (the minimal shape of
// the paper's motivating bug): alloc, free, then use of the same object.
constexpr const char* kStraightLineUaf = R"(
func main() {
  p = malloc 2
  x = const 5
  setfield p, 0, x
  free p
  v = getfield p, 0
  out v
  ret
}
)";

// Loop-carried: the back edge brings a FREED state into the loop header, so
// the dereference (and the re-execution of the free) are MAY, not MUST —
// the first iteration is fine.
constexpr const char* kLoopCarriedFree = R"(
func main() {
  p = malloc 1
  i = const 0
  n = const 3
loop:
  c = lt i, n
  cbr c, body, done
body:
  v = getfield p, 0
  free p
  one = const 1
  i = add i, one
  br loop
done:
  ret
}
)";

// Interprocedural: the callee frees its argument; the caller dereferences
// afterwards. The callee's may-free summary is applied strongly at the call
// site, so this classifies as MUST.
constexpr const char* kFreeInCallee = R"(
func main() {
  p = malloc 1
  call takefree(p)
  v = getfield p, 0
  out v
  ret
}
func takefree(p) {
  free p
  ret
}
)";

constexpr const char* kDoubleFreeStraight = R"(
func main() {
  p = malloc 1
  free p
  free p
  ret
}
)";

// The scheme chooser's sweet spot: a MAY-UAF object (conditionally freed
// before its last use) of small const size, allocated inside the hot loop's
// callee. The policy routes this to the lock-and-key lane — paying the page
// guard here is the paper's conceded allocation-intensive worst case.
constexpr const char* kMayHotTagLane = R"(
func main() {
  i = const 0
  n = const 4
loop:
  c = lt i, n
  cbr c, body, done
body:
  call work(i)
  one = const 1
  i = add i, one
  br loop
done:
  ret
}
func work(flag) {
  p = malloc 2
  setfield p, 0, flag
  cbr flag, dofree, keep
dofree:
  free p
  br join
keep:
  br join
join:
  v = getfield p, 0
  out v
  ret
}
)";

UafAnalysis analyze(const char* src) {
  const Module m = parse_module(src);
  EXPECT_TRUE(verify_module(m).empty());
  const PointsToAnalysis pta(m);
  return UafAnalysis(m, pta);
}

bool has_role(const Finding& f, const char* role) {
  return std::any_of(f.witness.begin(), f.witness.end(),
                     [&](const WitnessStep& s) {
                       return std::string(s.role) == role;
                     });
}

TEST(UafAnalysis, StraightLineUseAfterFreeIsMust) {
  const UafAnalysis uaf = analyze(kStraightLineUaf);
  ASSERT_FALSE(uaf.findings().empty());
  const Finding& f = uaf.findings().front();
  EXPECT_EQ(f.kind, FindingKind::kUseAfterFree);
  EXPECT_EQ(f.certainty, Certainty::kMust);
  // The witness names the allocation, the free, and the use.
  EXPECT_TRUE(has_role(f, "alloc"));
  EXPECT_TRUE(has_role(f, "free"));
  EXPECT_TRUE(has_role(f, "use"));
  // The (alloc, free) pair is reported MUST-UAF and the site is unsafe.
  ASSERT_EQ(uaf.pairs().size(), 1u);
  EXPECT_EQ(uaf.pairs()[0].cls, PairClass::kMustUaf);
  EXPECT_FALSE(uaf.site_safe(uaf.pairs()[0].alloc_site));
}

TEST(UafAnalysis, Figure1DanglingDereferenceIsMust) {
  const UafAnalysis uaf = analyze(dpg::testing::kFigure1);
  const auto must = std::count_if(
      uaf.findings().begin(), uaf.findings().end(), [](const Finding& f) {
        return f.kind == FindingKind::kUseAfterFree &&
               f.certainty == Certainty::kMust;
      });
  EXPECT_GE(must, 1) << "p->next->val after g() freed the chain";
  // Every MUST finding carries a full witness path.
  for (const Finding& f : uaf.findings()) {
    if (f.certainty != Certainty::kMust) continue;
    EXPECT_TRUE(has_role(f, "free")) << f.describe(parse_module(
        dpg::testing::kFigure1));
    EXPECT_TRUE(has_role(f, "use"));
  }
  // Figure 1's list is one merged points-to node; nothing on it is safe.
  EXPECT_FALSE(uaf.unsafe_nodes().empty());
}

TEST(UafAnalysis, LoopCarriedFreeIsMayNotMust) {
  const UafAnalysis uaf = analyze(kLoopCarriedFree);
  ASSERT_FALSE(uaf.findings().empty());
  bool saw_may_use = false;
  for (const Finding& f : uaf.findings()) {
    EXPECT_EQ(f.certainty, Certainty::kMay)
        << "first iteration is clean, so nothing here is MUST: "
        << f.describe(parse_module(kLoopCarriedFree));
    if (f.kind == FindingKind::kUseAfterFree) saw_may_use = true;
  }
  EXPECT_TRUE(saw_may_use);
}

TEST(UafAnalysis, FreeInCalleeUseInCallerIsInterprocedural) {
  const UafAnalysis uaf = analyze(kFreeInCallee);
  ASSERT_FALSE(uaf.findings().empty());
  const auto it = std::find_if(
      uaf.findings().begin(), uaf.findings().end(), [](const Finding& f) {
        return f.kind == FindingKind::kUseAfterFree;
      });
  ASSERT_NE(it, uaf.findings().end());
  EXPECT_EQ(it->certainty, Certainty::kMust);
  // The witness routes through the call that performed the free.
  EXPECT_TRUE(has_role(*it, "call"));
}

TEST(UafAnalysis, DoubleFreeDetected) {
  const UafAnalysis uaf = analyze(kDoubleFreeStraight);
  const auto it = std::find_if(
      uaf.findings().begin(), uaf.findings().end(), [](const Finding& f) {
        return f.kind == FindingKind::kDoubleFree;
      });
  ASSERT_NE(it, uaf.findings().end());
  EXPECT_EQ(it->certainty, Certainty::kMust);
  ASSERT_FALSE(uaf.pairs().empty());
  EXPECT_TRUE(std::any_of(uaf.pairs().begin(), uaf.pairs().end(),
                          [](const SitePair& p) {
                            return p.cls == PairClass::kDoubleFree;
                          }));
}

TEST(UafAnalysis, SafeProgramsHaveZeroFindingsAndFullElision) {
  for (const char* src :
       {dpg::testing::kLocalPool, dpg::testing::kTwoPools}) {
    const Module m = parse_module(src);
    const PointsToAnalysis pta(m);
    const UafAnalysis uaf(m, pta);
    EXPECT_TRUE(uaf.findings().empty()) << uaf.findings().front().describe(m);
    EXPECT_TRUE(uaf.unsafe_nodes().empty());
    for (const SitePair& pair : uaf.pairs()) {
      EXPECT_EQ(pair.cls, PairClass::kSafe);
      EXPECT_TRUE(uaf.site_safe(pair.alloc_site));
      EXPECT_TRUE(uaf.site_safe(pair.free_site));
    }
  }
}

// --- guard-elision contract -------------------------------------------------

TEST(GuardElision, TransformAttachesConsistentSafetyTable) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const TransformResult tr = pool_allocate(m);
  ASSERT_FALSE(tr.module.site_safety.empty());
  EXPECT_TRUE(verify_module(tr.module).empty());
  // Both structures in kTwoPools are provably safe: every site elided.
  for (const SiteSafetyEntry& e : tr.module.site_safety) {
    EXPECT_TRUE(e.elided) << "site " << e.site;
  }
}

TEST(GuardElision, VerifierRejectsMixedNode) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  TransformResult tr = pool_allocate(m);
  ASSERT_GE(tr.module.site_safety.size(), 2u);
  // Flip one entry: its node now mixes elided and guarded sites.
  tr.module.site_safety.front().elided =
      !tr.module.site_safety.front().elided;
  const std::vector<std::string> problems = verify_module(tr.module);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("mixes elided and guarded"),
            std::string::npos)
      << problems.front();
}

TEST(GuardElision, SafeWorkloadRunsUnguardedAndCountsElisions) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const TransformResult tr = pool_allocate(m);
  Interpreter interp(tr.module, {.backend = Backend::kGuarded});
  const InterpResult result = interp.run();
  ASSERT_EQ(result.output.size(), 2u);
  EXPECT_EQ(result.output[0], 5u);
  EXPECT_EQ(result.output[1], 1u);
  EXPECT_GT(interp.guards_elided(), 0u);
}

TEST(GuardElision, HonorSafetyOffForcesFullGuarding) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const TransformResult tr = pool_allocate(m);
  Interpreter interp(tr.module,
                     {.backend = Backend::kGuarded, .honor_safety = false});
  const InterpResult result = interp.run();
  EXPECT_EQ(result.output.size(), 2u);
  EXPECT_EQ(interp.guards_elided(), 0u);
}

TEST(GuardElision, UnsafeSitesStayGuardedAndStillTrap) {
  // Figure 1 keeps its merged list node unsafe, so the transformed program
  // must still take a real MMU trap on the dangling dereference even with
  // elision enabled.
  const Module m = parse_module(dpg::testing::kFigure1);
  const TransformResult tr = pool_allocate(m);
  for (const SiteSafetyEntry& e : tr.module.site_safety) {
    EXPECT_FALSE(e.elided) << "site " << e.site;
  }
  Interpreter interp(tr.module, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(interp.guards_elided(), 0u);
}

// --- per-site scheme chooser (DESIGN.md §14) --------------------------------

TEST(SchemeChooser, SafeNodeIsUnguarded) {
  const UafAnalysis uaf = analyze(dpg::testing::kTwoPools);
  ASSERT_FALSE(uaf.site_schemes().empty());
  for (const auto& [site, decision] : uaf.site_schemes()) {
    EXPECT_EQ(decision.scheme, SiteScheme::kUnguarded) << "site " << site;
    EXPECT_EQ(decision.cls, PairClass::kSafe);
  }
}

TEST(SchemeChooser, MustUafKeepsTheExactPageGuard) {
  // A site the analysis *expects* to fault deserves the lane with no
  // precision hole, even though the object is small.
  const UafAnalysis uaf = analyze(kStraightLineUaf);
  ASSERT_FALSE(uaf.pairs().empty());
  const SchemeDecision d = uaf.scheme_of(uaf.pairs()[0].alloc_site);
  EXPECT_EQ(d.scheme, SiteScheme::kPageGuard);
  EXPECT_EQ(d.cls, PairClass::kMustUaf);
}

TEST(SchemeChooser, HotSmallMayUafTakesTheTagLane) {
  const UafAnalysis uaf = analyze(kMayHotTagLane);
  ASSERT_FALSE(uaf.pairs().empty());
  const SitePair& pair = uaf.pairs()[0];
  EXPECT_EQ(pair.cls, PairClass::kMayUaf);
  const SchemeDecision d = uaf.scheme_of(pair.alloc_site);
  EXPECT_EQ(d.scheme, SiteScheme::kLockAndKey);
  EXPECT_TRUE(d.hot) << "work() is called from main's loop";
  EXPECT_GE(d.size_bytes, 0);
  EXPECT_LE(d.size_bytes, kTagLaneMaxBytes);
  // Alloc and free site carry the same node-level verdict.
  EXPECT_EQ(uaf.scheme_of(pair.free_site).scheme, SiteScheme::kLockAndKey);
}

TEST(SchemeChooser, ColdMayUafStaysOnThePageGuard) {
  // Same conditional-free shape as kMayHotTagLane's work(), but with no loop
  // anywhere: MAY-UAF yet not allocation-hot, so the per-lifetime syscall
  // cost amortizes and the exact lane wins.
  const UafAnalysis uaf = analyze(R"(
func main() {
  p = malloc 2
  flag = const 1
  cbr flag, dofree, keep
dofree:
  free p
  br join
keep:
  br join
join:
  v = getfield p, 0
  out v
  ret
}
)");
  ASSERT_FALSE(uaf.pairs().empty());
  const SchemeDecision d = uaf.scheme_of(uaf.pairs()[0].alloc_site);
  EXPECT_EQ(d.cls, PairClass::kMayUaf);
  EXPECT_FALSE(d.hot);
  EXPECT_EQ(d.scheme, SiteScheme::kPageGuard);
}

TEST(SchemeChooser, TransformEmitsVersionedTableMatchingTheAnalysis) {
  const Module m = parse_module(kMayHotTagLane);
  const TransformResult tr = pool_allocate(m);
  EXPECT_EQ(tr.module.site_scheme_version, kSiteSchemeVersion);
  ASSERT_FALSE(tr.module.site_scheme.empty());
  EXPECT_TRUE(verify_module(tr.module).empty());
  bool saw_tagged = false;
  for (const SiteSchemeEntry& e : tr.module.site_scheme) {
    if (e.scheme == SiteScheme::kLockAndKey) saw_tagged = true;
  }
  EXPECT_TRUE(saw_tagged);
}

// --- tag lane end to end (interp honors the scheme table) -------------------

TEST(SchemeChooser, TagLaneCatchesTheDanglingUseAtRuntime) {
  const Module m = parse_module(kMayHotTagLane);
  const TransformResult tr = pool_allocate(m);
  Interpreter interp(tr.module, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, core::AccessKind::kTagMismatch);
  EXPECT_GT(interp.tag_lane_allocs(), 0u);
}

TEST(SchemeChooser, HonorSchemesOffFallsBackToThePageGuard) {
  // The all-page-guard half of the A/B: same program, schemes ignored — the
  // dangling use is still caught, as a real MMU trap instead of a key check.
  const Module m = parse_module(kMayHotTagLane);
  const TransformResult tr = pool_allocate(m);
  Interpreter interp(tr.module,
                     {.backend = Backend::kGuarded, .honor_schemes = false});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_NE(report->kind, core::AccessKind::kTagMismatch);
  EXPECT_EQ(interp.tag_lane_allocs(), 0u);
}

}  // namespace
}  // namespace dpg::compiler
