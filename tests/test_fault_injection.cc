// Robustness suite (ctest label: robustness): the syscall fault-injection
// shim (vm/sys.h) driving the degradation governor (core/degrade.h) and the
// hardened fault manager. The contract under test is ISSUE/DESIGN.md §10:
// when the kernel refuses guard syscalls, the host application keeps running
// — detection is suspended, never falsified — and the ladder climbs back up
// once the pressure clears.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/degrade.h"
#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vm/page.h"
#include "vm/revoke.h"
#include "vm/phys_arena.h"
#include "vm/sys.h"
#include "vm/va_freelist.h"
#include "vm/vm_stats.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPG_TSAN 1
#endif
#endif
#if !defined(DPG_TSAN) && defined(__SANITIZE_THREAD__)
#define DPG_TSAN 1
#endif

namespace dpg::core {
namespace {

// The optimizer may fold a deliberate dangling use; force the pointer
// through a register so the access reaches the MMU.
template <typename T>
T* launder_ptr(T* p) {
  asm volatile("" : "+r"(p));
  return p;
}

// Every test disarms the global plan on exit so a failing assertion cannot
// leak injected faults into the rest of the binary.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { vm::sys::clear_fault_plan(); }
};

// --- plan grammar ----------------------------------------------------------

TEST_F(FaultInjectionTest, SpecGrammarAcceptsValidPlans) {
  EXPECT_TRUE(vm::sys::set_fault_plan("mmap"));
  EXPECT_TRUE(vm::sys::fault_plan_active());
  EXPECT_TRUE(vm::sys::set_fault_plan("mmap:errno=ENOMEM:after=40"));
  EXPECT_TRUE(vm::sys::set_fault_plan("mprotect:errno=EACCES:nth=3"));
  EXPECT_TRUE(vm::sys::set_fault_plan("ftruncate:errno=12:every=2:count=5"));
  EXPECT_TRUE(vm::sys::set_fault_plan("mmap:prob=0.25:seed=7,munmap:nth=1"));
  EXPECT_TRUE(vm::sys::set_fault_plan("memfd:errno=EMFILE"));
  EXPECT_TRUE(vm::sys::set_fault_plan(""));  // empty spec = disarm
  EXPECT_FALSE(vm::sys::fault_plan_active());
}

TEST_F(FaultInjectionTest, SpecGrammarRejectsMalformedPlansAtomically) {
  EXPECT_FALSE(vm::sys::set_fault_plan("open:errno=ENOMEM"));   // unknown call
  EXPECT_FALSE(vm::sys::set_fault_plan("mmap:errno=EBOGUS"));   // unknown errno
  EXPECT_FALSE(vm::sys::set_fault_plan("mmap:nth=0"));          // nth is 1-based
  EXPECT_FALSE(vm::sys::set_fault_plan("mmap:prob=2.0"));       // p > 1
  EXPECT_FALSE(vm::sys::set_fault_plan("mmap:bogus=1"));        // unknown option
  // A plan is all-or-nothing: the valid clause before the bad one must not
  // have armed anything.
  EXPECT_FALSE(vm::sys::set_fault_plan("mmap:errno=ENOMEM,junk"));
  EXPECT_FALSE(vm::sys::fault_plan_active());
}

// --- shim-level behaviour --------------------------------------------------

TEST_F(FaultInjectionTest, InjectedEintrIsRetriedTransparently) {
  vm::PhysArena arena(1u << 24);
  const std::uint64_t retries_before = vm::sys::eintr_retries();
  ASSERT_TRUE(vm::sys::set_fault_plan("ftruncate:errno=EINTR:nth=1"));
  void* p = nullptr;
  EXPECT_NO_THROW(p = arena.extend(vm::kPageSize));  // retried inside the shim
  EXPECT_NE(p, nullptr);
  EXPECT_GE(vm::sys::eintr_retries(), retries_before + 1);
}

TEST_F(FaultInjectionTest, ExtendSurvivesEnomemWhenReliefFreesSpans) {
  vm::PhysArena arena(1u << 24);
  // Park a recyclable shadow span in a registered relief list: the ENOMEM
  // retry only runs when relief actually handed something back (retrying an
  // identical call against a genuinely exhausted kernel would be pointless).
  void* canon = arena.extend(vm::kPageSize);
  void* shadow = arena.map_shadow(canon, vm::kPageSize);
  vm::VaFreeList relief;
  relief.put(vm::PageRange{vm::addr(shadow), vm::kPageSize});
  arena.add_relief_source(&relief);
  const std::uint64_t injected_before =
      vm::sys::injected_failures(vm::sys::Call::kFtruncate);
  ASSERT_TRUE(vm::sys::set_fault_plan("ftruncate:errno=ENOMEM:nth=1"));
  void* p = nullptr;
  EXPECT_NO_THROW(p = arena.extend(vm::kPageSize));  // relief + single retry
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(relief.bytes(), 0u);  // the span was released to the kernel
  EXPECT_GE(vm::sys::injected_failures(vm::sys::Call::kFtruncate),
            injected_before + 1);
  arena.remove_relief_source(&relief);
}

TEST_F(FaultInjectionTest, FreelistReleaseCoalescesAdjacentRanges) {
  vm::PhysArena arena(1u << 24);
  void* canon = arena.extend(2 * vm::kPageSize);
  void* shadow = arena.map_shadow(canon, 2 * vm::kPageSize);
  vm::VaFreeList fl;
  // Donate the span as two touching single-page ranges: release must merge
  // them back into one munmap.
  fl.put(vm::PageRange{vm::addr(shadow), vm::kPageSize});
  fl.put(vm::PageRange{vm::addr(shadow) + vm::kPageSize, vm::kPageSize});
  const std::uint64_t munmaps_before = vm::syscall_counters().munmap.load();
  EXPECT_EQ(fl.release_all(), 2 * vm::kPageSize);
  EXPECT_EQ(fl.bytes(), 0u);
  EXPECT_EQ(vm::syscall_counters().munmap.load(), munmaps_before + 1);
}

// --- governor state machine (unit) ----------------------------------------

TEST_F(FaultInjectionTest, GovernorVmaPressureDemotesAndRecoversWithBackoff) {
  GovernorConfig cfg;
  cfg.vma_budget = 100;  // high mark 85, low mark 50
  cfg.recover_after = 4;
  DegradationGovernor gov(cfg);
  EXPECT_EQ(gov.mode(), GuardMode::kFullGuard);

  gov.add_vmas(90);
  // The first rung off full guarding is sampled, at the base rate.
  EXPECT_EQ(gov.on_alloc(), GuardMode::kSampled);  // pressure demotion
  EXPECT_EQ(gov.counters().transitions.load(), 1u);
  EXPECT_EQ(gov.sample_rate(), cfg.sample_rate);

  gov.add_vmas(-60);  // estimate 30, below the low-water mark
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gov.on_alloc(), GuardMode::kSampled);  // streak 1..3
  }
  // N is already at the base rate, so the streak promotes a real rung.
  EXPECT_EQ(gov.on_alloc(), GuardMode::kFullGuard);  // streak 4 => promote
  EXPECT_EQ(gov.counters().recoveries.load(), 1u);

  // A relapse doubles the required streak (exponential backoff).
  gov.on_syscall_failure("test", ENOMEM);
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(gov.on_alloc(), GuardMode::kSampled);  // streak 1..7 < 8
  }
  EXPECT_EQ(gov.on_alloc(), GuardMode::kFullGuard);  // streak 8 == 4 * 2
  EXPECT_EQ(gov.counters().recoveries.load(), 2u);
}

TEST_F(FaultInjectionTest, GovernorSampledRungWidensUnderPressureAndRetightens) {
  GovernorConfig cfg;
  cfg.vma_budget = 100;
  cfg.recover_after = 1;    // every clean+low-water alloc is a relief step
  cfg.sample_rate = 4;      // base 1-in-4
  cfg.sample_rate_max = 16; // two doublings of headroom
  DegradationGovernor gov(cfg);

  gov.add_vmas(90);
  EXPECT_EQ(gov.on_alloc(), GuardMode::kSampled);
  EXPECT_EQ(gov.sample_rate(), 4u);

  // Sustained pressure on the sampled rung widens N one doubling per
  // pressure interval instead of conceding the rung.
  for (int i = 0; i < 64; ++i) (void)gov.on_alloc();
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);
  EXPECT_EQ(gov.sample_rate(), 8u);
  EXPECT_EQ(gov.counters().sample_widens.load(), 1u);
  for (int i = 0; i < 64; ++i) (void)gov.on_alloc();
  EXPECT_EQ(gov.sample_rate(), 16u);

  // At the ceiling the next full interval demotes past the rung.
  for (int i = 0; i < 64; ++i) (void)gov.on_alloc();
  EXPECT_EQ(gov.mode(), GuardMode::kQuarantineOnly);

  // Relief: promote back onto the sampled rung (the widened N survives the
  // promotion), then re-tighten step by step before full guarding returns.
  gov.add_vmas(-80);  // estimate 10, below the low-water mark
  (void)gov.on_alloc();
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);
  EXPECT_EQ(gov.sample_rate(), 16u);
  (void)gov.on_alloc();
  EXPECT_EQ(gov.sample_rate(), 8u);
  (void)gov.on_alloc();
  EXPECT_EQ(gov.sample_rate(), 4u);
  EXPECT_EQ(gov.counters().sample_tightens.load(), 2u);
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);  // N back at base, rung held
  (void)gov.on_alloc();                        // next relief step: promote
  EXPECT_EQ(gov.mode(), GuardMode::kFullGuard);
}

TEST_F(FaultInjectionTest, GovernorRungResidencyIsMonotone) {
  GovernorConfig cfg;
  cfg.vma_budget = 100;
  cfg.recover_after = 0;
  DegradationGovernor gov(cfg);
  const std::uint64_t full0 = gov.residency_ns(GuardMode::kFullGuard);
  gov.on_syscall_failure("test", ENOMEM);  // full -> sampled
  const std::uint64_t full1 = gov.residency_ns(GuardMode::kFullGuard);
  EXPECT_GE(full1, full0);
  const std::uint64_t samp0 = gov.residency_ns(GuardMode::kSampled);
  // The in-progress stay accrues without further transitions, and a settled
  // rung's clock never runs backwards.
  const std::uint64_t samp1 = gov.residency_ns(GuardMode::kSampled);
  EXPECT_GE(samp1, samp0);
  EXPECT_GE(gov.residency_ns(GuardMode::kFullGuard), full1);
  EXPECT_EQ(gov.residency_ns(GuardMode::kUnguarded), 0u);
}

TEST_F(FaultInjectionTest, GovernorForceModeAndStickyDegradation) {
  GovernorConfig cfg;
  cfg.vma_budget = 100;
  cfg.recover_after = 0;  // recovery disabled: demotions are sticky
  DegradationGovernor gov(cfg);
  gov.on_syscall_failure("test", ENOMEM);
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);
  for (int i = 0; i < 10000; ++i) (void)gov.on_alloc();
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);
  EXPECT_EQ(gov.counters().recoveries.load(), 0u);
  EXPECT_EQ(gov.counters().sample_tightens.load(), 0u);

  gov.force_mode(GuardMode::kUnguarded);
  EXPECT_EQ(gov.mode(), GuardMode::kUnguarded);
  gov.force_mode(GuardMode::kFullGuard);
  EXPECT_EQ(gov.mode(), GuardMode::kFullGuard);
}

// --- engine integration ----------------------------------------------------

TEST_F(FaultInjectionTest, ShadowAliasEnomemDegradesButServesAllocation) {
  DegradationGovernor gov;
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena, {.governor = &gov});
  ASSERT_TRUE(vm::sys::set_fault_plan("mmap:errno=ENOMEM"));
  auto* p = static_cast<char*>(heap.malloc(100));
  ASSERT_NE(p, nullptr);  // never fail the host for a guard-layer refusal
  p[0] = 'x';
  p[99] = 'y';  // the unguarded pointer is fully usable
  // One refusal moves one rung: full-guard -> sampled. The refused
  // allocation re-serves on the sampled fast path (ledgered, no VMA).
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);
  EXPECT_GE(gov.counters().transitions.load(), 1u);
  EXPECT_GE(gov.counters().syscall_failures.load(), 1u);
  EXPECT_GE(heap.stats().sampled_allocs, 1u);
  vm::sys::clear_fault_plan();
  heap.free(p);  // ledgered free: quarantined, no report, no crash
  EXPECT_GE(heap.stats().sampled_frees, 1u);
}

TEST_F(FaultInjectionTest, MprotectRefusalQuarantinesButKeepsDoubleFreeExact) {
  DegradationGovernor gov;
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena, {.governor = &gov});
  auto* p = static_cast<char*>(heap.malloc(64));
  p[0] = 'a';
  ASSERT_TRUE(vm::sys::set_fault_plan("mprotect:errno=EACCES"));
  EXPECT_NO_THROW(heap.free(p));  // revocation refused: park, don't throw
  EXPECT_GE(heap.stats().guard_failures, 1u);
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);  // one refusal, one rung
  vm::sys::clear_fault_plan();
  // The record stays registered, so the second free is still an exact
  // double-free report — degradation suspended revocation, not bookkeeping.
  const auto report = catch_dangling([&] { heap.free(p); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kFree);
}

TEST_F(FaultInjectionTest, MidBatchDemotionQuarantinesQueuedRevocations) {
  // The degradation-ladder x batched-revocation corner: frees sitting in the
  // revocation queue when the governor demotes must land in quarantine, never
  // be revoked-then-reused. A queued free has NOT protected its shadow span
  // yet, so recycling its canonical block would leak the next owner's bytes
  // through the stale alias — the one interleaving where batching could
  // silently weaken the ladder's "suspended, never falsified" contract.
  DegradationGovernor gov;
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena, {.protect_batch = 8, .governor = &gov});

  constexpr int kObjs = 4;  // strictly mid-batch: 4 queued frees < batch of 8
  constexpr std::size_t kSize = 96;
  char* objs[kObjs];
  for (int i = 0; i < kObjs; ++i) {
    objs[i] = static_cast<char*>(heap.malloc(kSize));
    std::memset(objs[i], 'A' + i, kSize);
  }
  for (char* p : objs) heap.free(p);
  ASSERT_GE(heap.engine().pending_revocations(),
            static_cast<std::size_t>(kObjs));

  // The kernel refuses mprotect exactly when the queue drains: the batched
  // call and every per-record fallback fail, and the governor demotes.
  ASSERT_TRUE(vm::sys::set_fault_plan("mprotect:errno=EACCES"));
  EXPECT_NO_THROW(heap.engine().flush_protections());
  vm::sys::clear_fault_plan();
  EXPECT_EQ(heap.engine().pending_revocations(), 0u);
  EXPECT_GE(heap.stats().guard_failures, static_cast<std::uint64_t>(kObjs));
  // One rung down per failed merged run: adjacent spans coalesce to one run
  // (quarantine-only), a scattered layout to several (unguarded). Either way
  // the ladder left full guarding — the quarantine contract below is the
  // same on both rungs.
  EXPECT_NE(gov.mode(), GuardMode::kFullGuard);

  // Same-size churn in the demoted mode: if any parked canonical block were
  // recycled, one of these fills would shine through a stale alias below.
  std::vector<char*> churn;
  for (int i = 0; i < 64; ++i) {
    auto* p = static_cast<char*>(heap.malloc(kSize));
    ASSERT_NE(p, nullptr);
    std::memset(p, 'z', kSize);
    churn.push_back(p);
  }

  // Every queued-then-demoted pointer reads its own fill or traps — it never
  // observes another owner's bytes.
  for (int i = 0; i < kObjs; ++i) {
    char* p = objs[i];
    char v = 0;
    const auto report = catch_dangling([&] { v = *launder_ptr(p); });
    if (!report.has_value()) {
      EXPECT_EQ(v, static_cast<char>('A' + i))
          << "object " << i << " was reused while its alias stayed readable";
    }
  }

  // The records stayed registered, so a second free is still an exact
  // double-free report — mid-batch demotion suspended revocation only.
  const auto report = catch_dangling([&] { heap.free(launder_ptr(objs[0])); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kFree);

  for (char* p : churn) heap.free(p);
}

TEST_F(FaultInjectionTest, LadderWalksToUnguardedUnderPersistentRefusal) {
  // No widening headroom (max == base) and N == 1, so every sampled-rung
  // allocation attempts a guard and every refusal costs a whole rung: the
  // shortest path that still walks every rung of the 4-step ladder.
  GovernorConfig cfg;
  cfg.sample_rate = 1;
  cfg.sample_rate_max = 1;
  DegradationGovernor gov(cfg);
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena, {.governor = &gov});
  auto* a = static_cast<char*>(heap.malloc(32));  // guarded while healthy
  ASSERT_TRUE(
      vm::sys::set_fault_plan("mmap:errno=ENOMEM,mprotect:errno=EINVAL"));
  auto* b = static_cast<char*>(heap.malloc(32));  // alias refused: rung 1 down
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(gov.mode(), GuardMode::kSampled);
  auto* c = static_cast<char*>(heap.malloc(32));  // sampled guard refused too
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(gov.mode(), GuardMode::kQuarantineOnly);  // rung 2 down
  heap.free(a);  // revocation refused: rung 3 down
  EXPECT_EQ(gov.mode(), GuardMode::kUnguarded);
  EXPECT_EQ(gov.counters().transitions.load(), 3u);
  heap.free(b);  // unguarded passthrough still works
  heap.free(c);
  vm::sys::clear_fault_plan();
}

TEST_F(FaultInjectionTest, HysteresisRecoveryRestoresDetection) {
  GovernorConfig cfg;
  cfg.recover_after = 8;
  DegradationGovernor gov(cfg);
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena, {.governor = &gov});
  // One failure credit: the first alias attempt fails (the freelist is empty
  // so no relief retry happens) and the refusal then clears — transient
  // pressure, exactly what hysteresis recovery exists for.
  ASSERT_TRUE(vm::sys::set_fault_plan("mmap:errno=ENOMEM:count=1"));
  auto* p = static_cast<char*>(heap.malloc(40));
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(gov.mode(), GuardMode::kSampled);
  void* scratch[10] = {};
  for (auto*& s : scratch) s = heap.malloc(16);  // clean streak, 10 >= 8
  EXPECT_EQ(gov.mode(), GuardMode::kFullGuard);
  EXPECT_EQ(gov.counters().recoveries.load(), 1u);
  // Post-recovery allocations are guarded again: detection is live.
  auto* g = static_cast<char*>(heap.malloc(24));
  heap.free(g);
  const auto report = catch_dangling([&] {
    volatile char c = *launder_ptr(g);
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
  for (auto* s : scratch) heap.free(s);
  heap.free(p);
}

TEST_F(FaultInjectionTest, DegradedFreeNeverRaisesAFalsePositive) {
  DegradationGovernor gov;
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena, {.governor = &gov});
  ASSERT_TRUE(vm::sys::set_fault_plan("mmap:errno=ENOMEM"));
  auto* p = static_cast<char*>(heap.malloc(80));  // refusal: lands on sampled
  ASSERT_NE(p, nullptr);
  // Force the ladder below the sampled rung so q is a true degraded pointer
  // (canonical handed out, no ledger entry, no registry record).
  gov.force_mode(GuardMode::kQuarantineOnly);
  auto* q = static_cast<char*>(heap.malloc(48));
  ASSERT_NE(q, nullptr);
  vm::sys::clear_fault_plan();
  // Freeing unguarded (canonical) pointers must not be mistaken for invalid
  // frees: detection in degraded modes is suspended, never wrong. The
  // sampled-fast pointer resolves through the ledger, the degraded one
  // through the quarantine disposition.
  const auto r1 = catch_dangling([&] { heap.free(launder_ptr(p)); });
  EXPECT_FALSE(r1.has_value());
  const auto r2 = catch_dangling([&] { heap.free(launder_ptr(q)); });
  EXPECT_FALSE(r2.has_value());
  EXPECT_GE(heap.stats().sampled_frees, 1u);
  EXPECT_GE(heap.stats().quarantined_frees, 1u);
}

// --- pkey backend fallback (DESIGN.md §16) ---------------------------------

TEST_F(FaultInjectionTest, SpecGrammarAcceptsPkeyCalls) {
  EXPECT_TRUE(vm::sys::set_fault_plan("pkey_alloc:errno=ENOSYS:nth=1"));
  EXPECT_TRUE(vm::sys::set_fault_plan("pkey_alloc:errno=ENOSPC"));
  EXPECT_TRUE(vm::sys::set_fault_plan("pkey_mprotect:errno=EACCES:every=3"));
  EXPECT_TRUE(vm::sys::set_fault_plan("pkey_free:errno=EINVAL"));
  EXPECT_TRUE(vm::sys::set_fault_plan(""));
}

// The Revoker's fallback contract, end to end: a refused pkey_alloc is not an
// error. The heap comes up on the batched mprotect backend, the governor logs
// the event without surrendering a rung, and detection stays exact. The
// refusal is injected, so this runs identically on MPK and non-MPK hosts.
void expect_pkey_fallback_to_batched(const char* plan, int want_errno) {
  obs::set_trace_enabled(true);  // the flight-recorder assertion needs a ring
  GovernorConfig gcfg;
  gcfg.recover_after = 0;
  DegradationGovernor gov(gcfg);
  vm::PhysArena arena(1u << 24);
  vm::Revoker revoker;
  ASSERT_TRUE(vm::sys::set_fault_plan(plan));
  GuardedHeap heap(arena, {.governor = &gov,
                           .revoke_backend = vm::RevokeBackend::kPkey,
                           .revoker = &revoker});
  vm::sys::clear_fault_plan();

  // The seam resolved to the fallback, once, without touching the ladder.
  EXPECT_EQ(revoker.active(), vm::RevokeBackend::kBatched);
  EXPECT_EQ(gov.mode(), GuardMode::kFullGuard);
  EXPECT_EQ(gov.counters().pkey_fallbacks.load(), 1u);
  EXPECT_EQ(gov.counters().transitions.load(), 0u);

  // The refusal is postmortem-visible: a from==to LadderRecord and a
  // flight-recorder event carrying the errno.
  LadderRecord recs[16];
  const std::size_t n = gov.history(recs, 16);
  bool ladder_seen = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::strcmp(recs[i].reason, "pkey-fallback") == 0) {
      EXPECT_EQ(recs[i].from_mode, recs[i].to_mode);
      ladder_seen = true;
    }
  }
  EXPECT_TRUE(ladder_seen);
  obs::TraceEvent evs[obs::TraceRing::kCapacity];
  const std::size_t ne = obs::capture_recent(evs, obs::TraceRing::kCapacity);
  bool event_seen = false;
  for (std::size_t i = 0; i < ne; ++i) {
    if (evs[i].kind == static_cast<std::uint16_t>(obs::EventKind::kPkeyFallback) &&
        evs[i].addr == static_cast<std::uint64_t>(want_errno)) {
      event_seen = true;
    }
  }
  EXPECT_TRUE(event_seen);

  // Full detection through the fallback: clean frees stay silent (no false
  // positives), and a dangling use still traps once the batch drains.
  auto* p = static_cast<char*>(heap.malloc(48));
  ASSERT_NE(p, nullptr);
  std::memset(p, 'k', 48);
  const auto clean = catch_dangling([&] { heap.free(launder_ptr(p)); });
  EXPECT_FALSE(clean.has_value());
  heap.engine().flush_protections();
  const auto report = catch_dangling([&] {
    volatile char c = *launder_ptr(p);
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
  EXPECT_EQ(heap.stats().guard_failures, 0u);
  EXPECT_EQ(heap.stats().pkey_revocations, 0u);  // fallback, not pkey
  obs::set_trace_enabled(false);
}

TEST_F(FaultInjectionTest, PkeyAllocEnosysFallsBackToBatched) {
  expect_pkey_fallback_to_batched("pkey_alloc:errno=ENOSYS:nth=1", ENOSYS);
}

TEST_F(FaultInjectionTest, PkeyAllocEnospcFallsBackToBatched) {
  expect_pkey_fallback_to_batched("pkey_alloc:errno=ENOSPC:nth=1", ENOSPC);
}

TEST_F(FaultInjectionTest, PkeyBackendActivatesOnMpkHardware) {
  if (!vm::Revoker::mpk_supported()) {
    GTEST_SKIP() << "no MPK on this host; the fallback tests cover the seam";
  }
  DegradationGovernor gov;
  vm::PhysArena arena(1u << 24);
  vm::Revoker revoker;
  GuardedHeap heap(arena, {.governor = &gov,
                           .revoke_backend = vm::RevokeBackend::kPkey,
                           .revoker = &revoker});
  EXPECT_EQ(revoker.active(), vm::RevokeBackend::kPkey);
  EXPECT_GE(revoker.revoked_key(), 1);
  EXPECT_EQ(gov.counters().pkey_fallbacks.load(), 0u);
  const std::uint64_t mprotects_before =
      vm::syscall_counters().mprotect.load();
  auto* p = static_cast<char*>(heap.malloc(64));
  heap.free(p);
  heap.engine().flush_protections();
  EXPECT_GE(heap.stats().pkey_revocations, 1u);
  // The revocation went through pkey_mprotect: the mprotect counter did not
  // move for this free.
  EXPECT_EQ(vm::syscall_counters().mprotect.load(), mprotects_before);
  const auto report = catch_dangling([&] {
    volatile char c = *launder_ptr(p);
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
}

// --- fault-manager hardening ----------------------------------------------

GuardedHeap* g_alt_heap = nullptr;
char* g_alt_stack_low = nullptr;
bool g_alt_survived = false;

__attribute__((noinline)) void trap_near_stack_edge() {
  auto* p = static_cast<char*>(g_alt_heap->malloc(24, 91));
  g_alt_heap->free(p, 92);
  const auto report = catch_dangling([&] {
    volatile char c = *launder_ptr(p);
    (void)c;
  });
  g_alt_survived = report.has_value() && report->alloc_site == 91;
}

// Recurses until less than `leave` bytes of the thread stack remain, then
// takes a guarded trap there. Without SA_ONSTACK + sigaltstack the handler's
// ~12 KiB of report/metrics frames would not reliably fit.
__attribute__((noinline)) void burn_stack_then_trap(std::size_t leave) {
  volatile char pad[2048];
  pad[0] = 1;
  pad[sizeof pad - 1] = 1;
  char probe;
  if (static_cast<std::size_t>(&probe - g_alt_stack_low) > leave) {
    burn_stack_then_trap(leave);
  } else {
    trap_near_stack_edge();
  }
  asm volatile("" : : "r"(&pad[0]) : "memory");
}

void* altstack_thread_main(void*) {
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return nullptr;
  void* low = nullptr;
  std::size_t size = 0;
  pthread_attr_getstack(&attr, &low, &size);
  pthread_attr_destroy(&attr);
  g_alt_stack_low = static_cast<char*>(low);
  burn_stack_then_trap(20 * 1024);
  return nullptr;
}

TEST_F(FaultInjectionTest, HandlerSurvivesNearExhaustedThreadStack) {
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena);
  g_alt_heap = &heap;
  g_alt_survived = false;
  pthread_attr_t attr;
  ASSERT_EQ(pthread_attr_init(&attr), 0);
  ASSERT_EQ(pthread_attr_setstacksize(&attr, 256 * 1024), 0);
  pthread_t tid;
  ASSERT_EQ(pthread_create(&tid, &attr, altstack_thread_main, nullptr), 0);
  pthread_attr_destroy(&attr);
  pthread_join(tid, nullptr);
  g_alt_heap = nullptr;
  EXPECT_TRUE(g_alt_survived);
}

TEST_F(FaultInjectionTest, NestedFaultInHandlerExitsWithMinimalReport) {
#ifdef DPG_TSAN
  // TSan's signal interception owns nested-SIGSEGV delivery inside a handler,
  // so the reentrancy bail-out never runs; the plain build covers this path.
  GTEST_SKIP() << "signal-in-signal delivery differs under TSan interception";
#endif
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        // A user callback that itself faults: the reentrancy guard must turn
        // the would-be recursion into a minimal report and _exit(134).
        FaultManager::instance().set_callback(+[](const DanglingReport&) {
          volatile int* wild = nullptr;
          *launder_ptr(const_cast<int*>(wild)) = 1;
        });
        vm::PhysArena arena(1u << 24);
        GuardedHeap heap(arena);
        auto* p = static_cast<char*>(heap.malloc(16));
        heap.free(p);
        volatile char c = *launder_ptr(p);
        (void)c;
      },
      ::testing::ExitedWithCode(134), "fault inside the fault handler");
}

void previous_owner_handler(int) {
  static const char msg[] = "previous-owner-handler\n";
  [[maybe_unused]] ssize_t rc = write(STDERR_FILENO, msg, sizeof msg - 1);
  _exit(7);
}

TEST_F(FaultInjectionTest, ForeignFaultChainsToPreviousHandler) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        // Install a classic handler, then put ours back on top: a fault on a
        // non-guarded address must be handed to the previous owner, not
        // swallowed or force-crashed.
        struct sigaction sa{};
        sa.sa_handler = previous_owner_handler;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGSEGV, &sa, nullptr);
        FaultManager::instance().reinstall_for_testing();
        volatile int* wild = nullptr;
        *launder_ptr(const_cast<int*>(wild)) = 1;
      },
      ::testing::ExitedWithCode(7), "previous-owner-handler");
}

}  // namespace
}  // namespace dpg::core
