// Tests for fault handling: the abort path (death tests), the callback hook,
// probe recovery, detection counting, and non-dpguard faults crashing as
// usual.
#include <gtest/gtest.h>

#include <csignal>

#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "core/runtime.h"

namespace dpg::core {
namespace {

using GuardedDeathTest = ::testing::Test;

TEST(GuardedDeathTest, UnhandledDanglingUseAbortsWithReport) {
  EXPECT_DEATH(
      {
        vm::PhysArena arena(1u << 24);
        GuardedHeap heap(arena);
        auto* p = static_cast<volatile char*>(heap.malloc(16, 41));
        heap.free(const_cast<char*>(p), 42);
        (void)p[0];  // production disposition: report + abort
      },
      "dangling pointer (read|access) detected");
}

TEST(GuardedDeathTest, ReportNamesSites) {
  EXPECT_DEATH(
      {
        vm::PhysArena arena(1u << 24);
        GuardedHeap heap(arena);
        auto* p = static_cast<volatile char*>(heap.malloc(16, 41));
        heap.free(const_cast<char*>(p), 42);
        (void)p[0];
      },
      "alloc site: 41[^0-9]*[\r\n]+[^0-9]*free site:  42");
}

TEST(GuardedDeathTest, DoubleFreeAbortsWithReport) {
  EXPECT_DEATH(
      {
        vm::PhysArena arena(1u << 24);
        GuardedHeap heap(arena);
        void* p = heap.malloc(16);
        heap.free(p);
        heap.free(p);
      },
      "double-free detected");
}

TEST(GuardedDeathTest, ForeignSegfaultStillCrashes) {
  EXPECT_DEATH(
      {
        FaultManager::instance().install();
        volatile int* null_ptr = nullptr;
        *null_ptr = 1;  // not a guarded page: handler must re-raise SIGSEGV
      },
      "");
}

TEST(FaultManagerTest, ProbeRecoversAndCapturesReport) {
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena);
  auto* p = static_cast<char*>(heap.malloc(8, 5));
  heap.free(p, 6);
  bool reached_after_fault = false;
  const auto report = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
    reached_after_fault = true;  // never: the fault unwinds
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(reached_after_fault);
  EXPECT_EQ(report->alloc_site, 5u);
}

TEST(FaultManagerTest, ProbeReturnsNulloptOnCleanBody) {
  const auto report = catch_dangling([] {});
  EXPECT_FALSE(report.has_value());
}

TEST(FaultManagerTest, DetectionsCounterIncrements) {
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena);
  const std::uint64_t before = FaultManager::instance().detections();
  auto* p = static_cast<char*>(heap.malloc(8));
  heap.free(p);
  for (int i = 0; i < 3; ++i) {
    (void)catch_dangling([&] {
      volatile char c = *p;
      (void)c;
    });
  }
  EXPECT_EQ(FaultManager::instance().detections(), before + 3);
}

TEST(FaultManagerTest, SequentialProbesAreIndependent) {
  vm::PhysArena arena(1u << 24);
  GuardedHeap heap(arena);
  auto* a = static_cast<char*>(heap.malloc(8, 1));
  auto* b = static_cast<char*>(heap.malloc(8, 2));
  heap.free(a);
  heap.free(b);
  const auto ra = catch_dangling([&] {
    volatile char c = *a;
    (void)c;
  });
  const auto rb = catch_dangling([&] {
    volatile char c = *b;
    (void)c;
  });
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->alloc_site, 1u);
  EXPECT_EQ(rb->alloc_site, 2u);
}

TEST(FaultManagerTest, DescribeFormatsReport) {
  DanglingReport report;
  report.kind = AccessKind::kWrite;
  report.fault_address = 0x1234;
  report.object_base = 0x1230;
  report.object_size = 64;
  report.alloc_site = 3;
  report.free_site = 9;
  const std::string text = report.describe();
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_NE(text.find("64"), std::string::npos);
  EXPECT_NE(text.find("site 3"), std::string::npos);
}

TEST(FaultManagerTest, AccessKindNames) {
  EXPECT_STREQ(to_string(AccessKind::kRead), "read");
  EXPECT_STREQ(to_string(AccessKind::kWrite), "write");
  EXPECT_STREQ(to_string(AccessKind::kFree), "double-free");
  EXPECT_STREQ(to_string(AccessKind::kInvalidFree), "invalid-free");
  EXPECT_STREQ(to_string(AccessKind::kUnknown), "access");
}

}  // namespace
}  // namespace dpg::core
