// Unit tests for the from-scratch segregated-fit heap allocator.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "alloc/heap.h"
#include "workloads/common.h"

namespace dpg::alloc {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  vm::PhysArena arena_{1u << 26};
  ArenaSource source_{arena_};
  SegregatedHeap heap_{source_};
};

TEST_F(HeapTest, BasicAllocFree) {
  void* p = heap_.malloc(32);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 32);
  EXPECT_EQ(heap_.size_of(p), 32u);
  heap_.free(p);
}

TEST_F(HeapTest, ZeroSizeBecomesOneByte) {
  void* p = heap_.malloc(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(heap_.size_of(p), 1u);
  heap_.free(p);
}

TEST_F(HeapTest, DistinctLiveAllocationsDoNotOverlap) {
  std::vector<void*> ptrs;
  for (int i = 0; i < 200; ++i) {
    void* p = heap_.malloc(48);
    std::memset(p, i, 48);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 200; ++i) {
    const auto* bytes = static_cast<const unsigned char*>(ptrs[static_cast<std::size_t>(i)]);
    for (int b = 0; b < 48; ++b) EXPECT_EQ(bytes[b], i) << "i=" << i;
  }
  for (void* p : ptrs) heap_.free(p);
}

TEST_F(HeapTest, FreedBlockIsReused) {
  void* p = heap_.malloc(64);
  heap_.free(p);
  void* q = heap_.malloc(64);
  EXPECT_EQ(p, q);  // LIFO free list of the same class
  heap_.free(q);
}

TEST_F(HeapTest, SizeOfReflectsRequestNotClass) {
  void* p = heap_.malloc(33);  // lands in the 48-byte class
  EXPECT_EQ(heap_.size_of(p), 33u);
  heap_.free(p);
}

TEST_F(HeapTest, LargeAllocationsWork) {
  const std::size_t size = 3 * vm::kPageSize + 17;
  auto* p = static_cast<char*>(heap_.malloc(size));
  ASSERT_NE(p, nullptr);
  p[0] = 'a';
  p[size - 1] = 'z';
  EXPECT_EQ(heap_.size_of(p), size);
  heap_.free(p);
}

TEST_F(HeapTest, LargeRunsAreCachedAndReused) {
  void* p = heap_.malloc(2 * vm::kPageSize);
  heap_.free(p);
  void* q = heap_.malloc(2 * vm::kPageSize);
  EXPECT_EQ(p, q);
  heap_.free(q);
}

TEST_F(HeapTest, DoubleFreeThrows) {
  void* p = heap_.malloc(16);
  heap_.free(p);
  EXPECT_THROW(heap_.free(p), std::logic_error);
}

TEST_F(HeapTest, FreeNullIsNoop) {
  EXPECT_NO_THROW(heap_.free(nullptr));
}

TEST_F(HeapTest, StatsTrackAllocationsAndFrees) {
  void* a = heap_.malloc(10);
  void* b = heap_.malloc(20);
  heap_.free(a);
  const HeapStats stats = heap_.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_EQ(stats.frees, 1u);
  EXPECT_EQ(stats.live_objects, 1u);
  EXPECT_EQ(stats.bytes_requested, 30u);
  heap_.free(b);
}

TEST_F(HeapTest, ManySizesStress) {
  workloads::Rng rng(42);
  std::map<void*, std::pair<std::size_t, unsigned char>> live;
  for (int round = 0; round < 5000; ++round) {
    if (live.size() < 100 || rng.below(2) == 0) {
      const std::size_t size = 1 + rng.below(6000);
      auto* p = static_cast<unsigned char*>(heap_.malloc(size));
      const auto fill = static_cast<unsigned char>(rng.below(256));
      std::memset(p, fill, size);
      ASSERT_TRUE(live.emplace(p, std::make_pair(size, fill)).second)
          << "allocator returned a live pointer";
      EXPECT_EQ(heap_.size_of(p), size);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      const auto [size, fill] = it->second;
      const auto* bytes = static_cast<const unsigned char*>(it->first);
      // Contents must be intact: no overlap with any other allocation.
      EXPECT_EQ(bytes[0], fill);
      EXPECT_EQ(bytes[size - 1], fill);
      heap_.free(it->first);
      live.erase(it);
    }
  }
  for (auto& [p, meta] : live) heap_.free(p);
  EXPECT_EQ(heap_.stats().live_objects, 0u);
}

TEST_F(HeapTest, PhysicalFootprintStaysBoundedUnderReuse) {
  // Allocate/free the same size in a loop: the arena must not grow per
  // iteration (physical reuse through the class free list).
  void* warm = heap_.malloc(128);
  heap_.free(warm);
  const std::size_t before = arena_.physical_bytes();
  for (int i = 0; i < 10000; ++i) {
    void* p = heap_.malloc(128);
    heap_.free(p);
  }
  EXPECT_EQ(arena_.physical_bytes(), before);
}

TEST(HeapClassBoundaries, EveryBoundarySizeRoundTrips) {
  vm::PhysArena arena(1u << 26);
  ArenaSource source(arena);
  SegregatedHeap heap(source);
  for (std::size_t size :
       {1u, 15u, 16u, 17u, 31u, 32u, 48u, 64u, 96u, 128u, 192u, 256u, 384u,
        512u, 768u, 1024u, 1520u, 1521u, 2032u, 2033u, 4080u, 4081u, 8192u}) {
    auto* p = static_cast<unsigned char*>(heap.malloc(size));
    ASSERT_NE(p, nullptr) << size;
    p[0] = 1;
    p[size - 1] = 2;
    EXPECT_EQ(heap.size_of(p), size);
    heap.free(p);
  }
}

TEST(MmapSourceTest, ObtainsAndRecyclesRanges) {
  MmapSource source;
  const vm::PageRange a = source.obtain(vm::kPageSize);
  EXPECT_EQ(a.length, vm::kPageSize);
  auto* p = reinterpret_cast<char*>(a.base);
  p[0] = 'x';  // writable
  source.recycle(a);
  const vm::PageRange b = source.obtain(vm::kPageSize);
  EXPECT_EQ(b.base, a.base);  // recycled
}

}  // namespace
}  // namespace dpg::alloc
