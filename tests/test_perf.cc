// Correctness of the performance layers (DESIGN.md §11): thread-sharded
// engines with cross-shard remote frees, slot magazines, and batched
// revocation. Everything here is about *detection guarantees surviving the
// fast paths* — throughput itself is bench_mt's job.
//
// Labelled `perf` so the TSan preset exercises the remote-free MPSC list and
// the shard routing under the race detector (see CMakePresets.json).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/degrade.h"
#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "core/sharded_heap.h"
#include "vm/phys_arena.h"

namespace dpg::core {
namespace {

// A worker thread that frees `p` through the heap. With >= 2 shards a fresh
// thread's home shard often differs from the allocator's, making the free a
// remote one; the tests that *require* the remote path spawn two workers so
// at least one takes it (consecutive round-robin tokens cannot both match
// the same single home shard when shards == 2).
void free_on_other_thread(ShardedHeap& heap, void* p, SiteId site = 0) {
  std::thread t([&heap, p, site] { heap.free(p, site); });
  t.join();
}

TEST(ShardedHeap, CrossThreadFreeTrapsAfterDrain) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.magazine_slots = 64;
  cfg.protect_batch = 8;
  ShardedHeap heap(arena, cfg, 2);

  char* p = static_cast<char*>(heap.malloc(256, /*site=*/11));
  ASSERT_NE(p, nullptr);
  p[0] = 'x';
  free_on_other_thread(heap, p, /*site=*/22);
  // Whether the free was routed remotely or hit the owner directly, after a
  // full flush the span must be PROT_NONE.
  heap.flush_all();
  auto rep = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
  });
  ASSERT_TRUE(rep.has_value()) << "dangling read after cross-thread free";
  EXPECT_EQ(rep->kind, AccessKind::kRead);
  EXPECT_EQ(rep->object_base, vm::addr(p));
  EXPECT_EQ(rep->object_size, 256u);
  EXPECT_EQ(rep->alloc_site, 11u);
  EXPECT_EQ(rep->free_site, 22u);
}

TEST(ShardedHeap, RemoteFreePathIsTakenAndDrained) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  ShardedHeap heap(arena, cfg, 2);

  // Two fresh threads have consecutive home-shard tokens: with two shards,
  // at least one of them differs from this thread's home shard, so at least
  // one of these frees must take free_remote.
  void* a = heap.malloc(128);
  void* b = heap.malloc(128);
  free_on_other_thread(heap, a);
  free_on_other_thread(heap, b);

  GuardStats s = heap.stats();
  EXPECT_GE(s.remote_frees, 1u);
  EXPECT_EQ(s.frees, 2u);

  heap.flush_all();
  for (std::size_t i = 0; i < heap.shards(); ++i) {
    EXPECT_EQ(heap.engine(i).remote_pending(), 0u);
    EXPECT_EQ(heap.engine(i).pending_revocations(), 0u);
  }
  s = heap.stats();
  EXPECT_EQ(s.revoked_spans, 2u) << "every routed free reached PROT_NONE";
}

TEST(ShardedHeap, CrossThreadDoubleFreeIsExact) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.protect_batch = 64;  // keep the revocation queued: the CAS must detect
  ShardedHeap heap(arena, cfg, 2);

  void* p = heap.malloc(512, /*site=*/5);
  free_on_other_thread(heap, p, /*site=*/6);

  // Second free (this thread, possibly a different shard than the freer's):
  // must raise an exact double-free report even though the revocation may
  // still sit in the owner's queue or remote list.
  auto rep = catch_dangling([&] { heap.free(p, /*site=*/7); });
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->kind, AccessKind::kFree);
  EXPECT_EQ(rep->object_base, vm::addr(p));
  EXPECT_EQ(rep->alloc_site, 5u);
  EXPECT_EQ(rep->free_site, 6u) << "report carries the first free's site";
  EXPECT_EQ(heap.stats().double_frees, 1u);
}

TEST(ShardedHeap, RacingFreesProduceExactlyOneDoubleFreeReport) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.protect_batch = 64;
  ShardedHeap heap(arena, cfg, 2);

  constexpr int kRounds = 64;
  for (int round = 0; round < kRounds; ++round) {
    void* p = heap.malloc(64);
    ASSERT_NE(p, nullptr);
    std::atomic<int> reports{0};
    std::atomic<bool> go{false};
    auto racer = [&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      auto rep = catch_dangling([&] { heap.free(p); });
      if (rep.has_value()) {
        EXPECT_EQ(rep->kind, AccessKind::kFree);
        reports.fetch_add(1);
      }
    };
    std::thread t1(racer), t2(racer);
    go.store(true, std::memory_order_release);
    t1.join();
    t2.join();
    // The kLive->kFreed CAS admits exactly one winner; the loser reports.
    EXPECT_EQ(reports.load(), 1) << "round " << round;
  }
  EXPECT_EQ(heap.stats().double_frees, static_cast<std::uint64_t>(kRounds));
  heap.flush_all();
  EXPECT_EQ(heap.stats().revoked_spans, static_cast<std::uint64_t>(kRounds));
}

// TSan target: four threads hammer the heap while handing half their frees
// to a sibling thread. Checks the MPSC remote list drains completely and no
// free is lost, under concurrent allocation on every shard.
TEST(ShardedHeap, RemoteQueueDrainsUnderConcurrentChurn) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.magazine_slots = 32;
  cfg.protect_batch = 16;
  ShardedHeap heap(arena, cfg, 4);

  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::vector<void*>> handoff(kThreads);
  for (auto& v : handoff) v.resize(kIters, nullptr);
  std::vector<std::atomic<int>> published(kThreads);
  for (auto& c : published) c.store(0);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      FaultManager::ensure_altstack();
      const int sibling = (t + 1) % kThreads;
      int consumed = 0;
      for (int i = 0; i < kIters; ++i) {
        void* p = heap.malloc(64 + (i % 7) * 256);
        ASSERT_NE(p, nullptr);
        std::memset(p, t, 64);
        if ((i & 1) != 0) {
          heap.free(p);
        } else {
          handoff[t][i] = p;
          published[t].store(i + 1, std::memory_order_release);
        }
        // Consume whatever the sibling has published so far. Consumed slots
        // are nulled (single consumer per producer) so the post-join sweep
        // below can free what this thread never got to.
        const int avail = published[sibling].load(std::memory_order_acquire);
        for (; consumed < avail; ++consumed) {
          if (void* q = handoff[sibling][consumed]) {
            handoff[sibling][consumed] = nullptr;
            heap.free(q);  // cross-thread: owner is the sibling's home shard
          }
        }
      }
      const int avail = published[sibling].load(std::memory_order_acquire);
      for (; consumed < avail; ++consumed) {
        if (void* q = handoff[sibling][consumed]) {
          handoff[sibling][consumed] = nullptr;
          heap.free(q);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // A producer can publish after its consumer's final drain; join ordered
  // those writes before these reads, so the leftovers are freed here.
  for (auto& v : handoff) {
    for (void*& q : v) {
      if (q != nullptr) heap.free(q);
    }
  }

  heap.flush_all();
  const GuardStats s = heap.stats();
  EXPECT_EQ(s.allocations, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.frees, s.allocations) << "every allocation was freed";
  EXPECT_EQ(s.double_frees, 0u);
  EXPECT_EQ(s.invalid_frees, 0u);
  EXPECT_EQ(s.guard_failures, 0u);
  EXPECT_EQ(s.revoked_spans, s.frees) << "no revocation was lost";
  for (std::size_t i = 0; i < heap.shards(); ++i) {
    EXPECT_EQ(heap.engine(i).remote_pending(), 0u);
    EXPECT_EQ(heap.engine(i).pending_revocations(), 0u);
  }
}

// The batching window is real but bounded: a freed-not-yet-flushed object
// reads stale data undetected (documented trade), a double free is caught
// immediately, and the flush closes the window. protect_batch=0 shrinks the
// window to zero (the paper's immediate mode).
TEST(BatchedRevocation, WindowSemanticsMidBatchAndPostFlush) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.protect_batch = 1024;  // nothing flushes on its own in this test
  GuardedHeap heap(arena, cfg);

  char* p = static_cast<char*>(heap.malloc(64));
  p[0] = 'a';
  heap.free(p);
  EXPECT_EQ(heap.engine().pending_revocations(), 1u);

  // Mid-batch: the span is still readable (bounded detection delay)...
  auto rep = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
  });
  EXPECT_FALSE(rep.has_value()) << "mid-batch reads are the documented window";
  // ...but the canonical block was NOT handed back to the allocator, so the
  // stale read above saw stale-but-unreused memory, never a new owner's data.

  // Double free mid-batch: exact, via the record state.
  rep = catch_dangling([&] { heap.free(p); });
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->kind, AccessKind::kFree);

  heap.engine().flush_protections();
  rep = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
  });
  ASSERT_TRUE(rep.has_value()) << "flush closes the window";
  EXPECT_EQ(rep->kind, AccessKind::kRead);

  // Immediate mode: batch disabled, the free itself revokes.
  GuardConfig imm;
  imm.governor = &gov;
  GuardedHeap heap2(arena, imm);
  char* q = static_cast<char*>(heap2.malloc(64));
  heap2.free(q);
  rep = catch_dangling([&] {
    volatile char c = *q;
    (void)c;
  });
  ASSERT_TRUE(rep.has_value()) << "protect_batch=0 keeps detection immediate";
}

// A batch in flight when the governor demotes to quarantine-only: the queued
// revocations still land (no false positives on live objects, the freed span
// still traps after flush), and a double free of the queued object stays
// exact. This is the degradation-ladder interaction the revocation queue
// must not break.
TEST(BatchedRevocation, SurvivesGovernorDemotionMidBatch) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.protect_batch = 256;
  cfg.magazine_slots = 32;
  ShardedHeap heap(arena, cfg, 2);

  char* freed = static_cast<char*>(heap.malloc(256));
  char* live = static_cast<char*>(heap.malloc(256));
  heap.free(freed);  // queued, not yet protected

  gov.force_mode(GuardMode::kQuarantineOnly);

  // New allocations are degraded (canonical pointers) but must still work.
  char* degraded = static_cast<char*>(heap.malloc(256));
  ASSERT_NE(degraded, nullptr);
  auto rep = catch_dangling([&] {
    live[0] = 'l';
    degraded[0] = 'd';
  });
  EXPECT_FALSE(rep.has_value()) << "no false positive on live objects";

  rep = catch_dangling([&] { heap.free(freed); });
  ASSERT_TRUE(rep.has_value()) << "double free stays exact mid-demotion";
  EXPECT_EQ(rep->kind, AccessKind::kFree);

  heap.flush_all();
  rep = catch_dangling([&] {
    volatile char c = *freed;
    (void)c;
  });
  ASSERT_TRUE(rep.has_value()) << "queued revocation landed despite demotion";

  // Degraded pointers take the degraded free path (registry miss) — no
  // invalid-free report, and the quarantine parks the block.
  rep = catch_dangling([&] { heap.free(degraded); });
  EXPECT_FALSE(rep.has_value());
  const GuardStats s = heap.stats();
  EXPECT_EQ(s.invalid_frees, 0u);
  EXPECT_GE(s.quarantined_frees, 1u);

  gov.force_mode(GuardMode::kFullGuard);
  rep = catch_dangling([&] {
    live[0] = 'm';
  });
  EXPECT_FALSE(rep.has_value());
  heap.free(live);
}

// Magazines: allocations carve shadow pages from bulk-aliased windows, and
// detection is byte-for-byte identical to the per-object path — across
// generation retirement and canonical reuse.
TEST(Magazines, DetectionAcrossGenerationsAndReuse) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.magazine_slots = 16;  // small window: exercises retirement quickly
  GuardedHeap heap(arena, cfg);  // no batching: frees revoke immediately

  constexpr int kRounds = 6;
  constexpr int kPerRound = 12;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<char*> ptrs;
    for (int i = 0; i < kPerRound; ++i) {
      char* p = static_cast<char*>(heap.malloc(4096));
      ASSERT_NE(p, nullptr);
      std::memset(p, round, 4096);
      ptrs.push_back(p);
    }
    for (char* p : ptrs) {
      heap.free(p);
      auto rep = catch_dangling([&] {
        volatile char c = *p;
        (void)c;
      });
      ASSERT_TRUE(rep.has_value())
          << "magazine-carved span must trap immediately after free";
      EXPECT_EQ(rep->object_base, vm::addr(p));
    }
  }
  const GuardStats s = heap.stats();
  EXPECT_GT(s.magazine_hits, 0u) << "the magazine path was exercised";
  EXPECT_GT(s.magazine_maps, 0u);
  EXPECT_EQ(s.frees, s.revoked_spans);
  EXPECT_EQ(s.guard_failures, 0u);
}

TEST(Magazines, SlotsRecycledOnRetirement) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.magazine_slots = 16;
  {
    GuardedHeap heap(arena, cfg);
    // Force collisions: churn page-sized objects so canonical pages recycle
    // into partially-claimed generations, which then retire.
    for (int i = 0; i < 200; ++i) {
      void* p = heap.malloc(4096);
      ASSERT_NE(p, nullptr);
      heap.free(p);
    }
    const GuardStats s = heap.stats();
    EXPECT_GT(s.magazine_slots_recycled, 0u)
        << "retired generations recycle their never-claimed slots";
    EXPECT_EQ(s.frees, s.revoked_spans);
  }  // teardown with magazines live: release_all must drop them cleanly
}

TEST(ShardedHeap, ReallocAndCallocRouteAcrossShards) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.magazine_slots = 32;
  ShardedHeap heap(arena, cfg, 2);

  char* p = static_cast<char*>(heap.calloc(4, 64));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(p[i], 0) << "calloc zeroes";
  std::memset(p, 7, 256);

  // realloc from another thread: the whole call routes to the owner shard.
  char* grown = nullptr;
  std::thread t([&] { grown = static_cast<char*>(heap.realloc(p, 1024)); });
  t.join();
  ASSERT_NE(grown, nullptr);
  EXPECT_EQ(grown[255], 7) << "contents moved";
  heap.flush_all();
  auto rep = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
  });
  ASSERT_TRUE(rep.has_value()) << "stale pre-realloc pointer traps";
  heap.free(grown);
}

TEST(ShardedHeap, StatsRollupIsCoherentAfterFlush) {
  vm::PhysArena arena;
  DegradationGovernor gov;
  GuardConfig cfg;
  cfg.governor = &gov;
  cfg.magazine_slots = 32;
  cfg.protect_batch = 8;
  ShardedHeap heap(arena, cfg, 3);

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        void* p = heap.malloc(512);
        ASSERT_NE(p, nullptr);
        heap.free(p);
      }
    });
  }
  for (auto& w : workers) w.join();
  heap.flush_all();

  const GuardStats s = heap.stats();
  EXPECT_EQ(s.allocations, 300u);
  EXPECT_EQ(s.frees, 300u);
  EXPECT_EQ(s.revoked_spans, 300u);
  EXPECT_EQ(s.protect_calls + s.protect_calls_saved, 300u)
      << "every free either issued or amortized exactly one mprotect";
}

}  // namespace
}  // namespace dpg::core
