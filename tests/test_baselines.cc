// Tests for the comparison systems: Electric Fence, the capability store,
// and memcheck-lite — including the *failure modes* the paper attributes to
// each (efence's physical blow-up, memcheck's heuristic hole).
#include <gtest/gtest.h>

#include <cstring>

#include "baseline/capability.h"
#include "baseline/efence.h"
#include "baseline/memcheck.h"
#include "core/fault_manager.h"
#include "vm/page.h"

namespace dpg::baseline {
namespace {

// --- Electric Fence --------------------------------------------------------

TEST(Efence, AllocationsAreUsable) {
  EfenceAllocator ef;
  auto* p = static_cast<char*>(ef.malloc(100));
  std::memset(p, 'e', 100);
  EXPECT_EQ(p[99], 'e');
  ef.free(p);
}

TEST(Efence, DanglingReadDetected) {
  EfenceAllocator ef;
  auto* p = static_cast<char*>(ef.malloc(24, 1));
  ef.free(p, 2);
  const auto report = core::catch_dangling([&] {
    volatile char c = p[0];
    (void)c;
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->alloc_site, 1u);
  EXPECT_EQ(report->free_site, 2u);
}

TEST(Efence, DoubleFreeDetected) {
  EfenceAllocator ef;
  void* p = ef.malloc(16);
  ef.free(p);
  const auto report = core::catch_dangling([&] { ef.free(p); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, core::AccessKind::kFree);
}

TEST(Efence, InvalidFreeDetected) {
  EfenceAllocator ef;
  int local = 0;
  const auto report = core::catch_dangling([&] { ef.free(&local); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, core::AccessKind::kInvalidFree);
}

TEST(Efence, OnePhysicalPagePerObject) {
  // The paper's §5.3 criticism, measured: N small objects cost N pages.
  EfenceAllocator ef;
  const std::size_t before = ef.stats().mapped_bytes;
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) ptrs.push_back(ef.malloc(16));
  EXPECT_EQ(ef.stats().mapped_bytes - before, 100 * vm::kPageSize);
  for (void* p : ptrs) ef.free(p);
  // Freed pages stay pinned: never reused.
  EXPECT_EQ(ef.stats().protected_bytes, 100 * vm::kPageSize);
}

TEST(Efence, ObjectPlacedAtEndOfPage) {
  EfenceAllocator ef;
  auto* p = static_cast<char*>(ef.malloc(24));
  EXPECT_GE(vm::page_offset(vm::addr(p)), vm::kPageSize - 32);
  ef.free(p);
}

// --- Capability store -------------------------------------------------------

TEST(Capability, StoreIssueRevokeLifecycle) {
  CapabilityStore store(64);
  const std::uint64_t cap = store.issue();
  EXPECT_TRUE(store.live(cap));
  EXPECT_TRUE(store.revoke(cap));
  EXPECT_FALSE(store.live(cap));
  EXPECT_FALSE(store.revoke(cap));  // already revoked
}

TEST(Capability, StoreGrowsBeyondInitialCapacity) {
  CapabilityStore store(8);
  std::vector<std::uint64_t> caps;
  for (int i = 0; i < 1000; ++i) caps.push_back(store.issue());
  for (const std::uint64_t cap : caps) EXPECT_TRUE(store.live(cap));
  EXPECT_EQ(store.size(), 1000u);
  for (const std::uint64_t cap : caps) EXPECT_TRUE(store.revoke(cap));
  EXPECT_EQ(store.size(), 0u);
}

TEST(Capability, CapabilitiesAreNeverReused) {
  CapabilityStore store(64);
  const std::uint64_t a = store.issue();
  store.revoke(a);
  const std::uint64_t b = store.issue();
  EXPECT_NE(a, b);
}

TEST(Capability, PointerDerefChecksStore) {
  auto p = CapAllocator::alloc_array<int>(4);
  p[0] = 42;
  EXPECT_EQ(*p, 42);
  CapAllocator::deallocate(p.raw());
  const auto report = core::catch_dangling([&] {
    volatile int v = p[0];
    (void)v;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(Capability, InteriorPointerSharesCapability) {
  auto p = CapAllocator::alloc_array<int>(8);
  auto q = p + 4;
  *q = 7;
  EXPECT_EQ(p[4], 7);
  CapAllocator::deallocate(p.raw());
  const auto report = core::catch_dangling([&] {
    volatile int v = *q;  // stale via the interior pointer too
    (void)v;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(Capability, CopiedPointersShareFate) {
  auto p = CapAllocator::alloc_array<long>(2);
  auto copy = p;
  *p = 9;
  EXPECT_EQ(*copy, 9);
  CapAllocator::deallocate(p.raw());
  const auto report = core::catch_dangling([&] {
    volatile long v = *copy;
    (void)v;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(Capability, DoubleFreeDetected) {
  auto p = CapAllocator::alloc_array<char>(16);
  CapAllocator::deallocate(p.raw());
  const auto report =
      core::catch_dangling([&] { CapAllocator::deallocate(p.raw()); });
  EXPECT_TRUE(report.has_value());
}

TEST(Capability, StoreBytesGrowWithLiveObjects) {
  CapabilityStore store(8);
  const std::size_t before = store.store_bytes();
  for (int i = 0; i < 100; ++i) (void)store.issue();
  EXPECT_GT(store.store_bytes(), before);  // the paper's GCS memory overhead
}

// --- memcheck-lite -----------------------------------------------------------

TEST(Memcheck, BitmapMarksAndChecks) {
  ShadowBitmap bitmap;
  bitmap.mark(0x5000, 16, true);
  EXPECT_TRUE(bitmap.readable(0x5000, 16));
  EXPECT_TRUE(bitmap.readable(0x5008, 8));
  EXPECT_FALSE(bitmap.readable(0x5000, 17));
  EXPECT_FALSE(bitmap.readable(0x4FFF, 1));
  bitmap.mark(0x5000, 16, false);
  EXPECT_FALSE(bitmap.readable(0x5000, 1));
}

TEST(Memcheck, BitmapSpansChunkBoundary) {
  ShadowBitmap bitmap;
  const std::uintptr_t boundary = ShadowBitmap::kChunkBytes;
  bitmap.mark(boundary - 8, 16, true);
  EXPECT_TRUE(bitmap.readable(boundary - 8, 16));
  EXPECT_FALSE(bitmap.readable(boundary + 8, 1));
}

TEST(Memcheck, UseAfterFreeDetectedWhileQuarantined) {
  auto& ctx = MemcheckContext::global();
  auto* p = static_cast<char*>(ctx.allocate(64));
  p[0] = 'm';
  ctx.deallocate(p);
  const auto report = core::catch_dangling([&] {
    ctx.check(p, 1, core::AccessKind::kRead);
  });
  EXPECT_TRUE(report.has_value());
}

TEST(Memcheck, PointerWrapperChecksEveryAccess) {
  auto& ctx = MemcheckContext::global();
  mc_ptr<int> p(static_cast<int*>(ctx.allocate(sizeof(int) * 4)));
  p[2] = 5;
  EXPECT_EQ(p[2], 5);
  const std::uint64_t checks_before = ctx.stats().checks;
  (void)p[0];
  (void)p[1];
  EXPECT_GE(ctx.stats().checks, checks_before + 2);
  ctx.deallocate(p.raw());
}

TEST(Memcheck, DoubleFreeDetected) {
  auto& ctx = MemcheckContext::global();
  void* p = ctx.allocate(32);
  ctx.deallocate(p);
  const auto report = core::catch_dangling([&] { ctx.deallocate(p); });
  EXPECT_TRUE(report.has_value());
}

TEST(Memcheck, HeuristicHoleAfterQuarantineEviction) {
  // The paper §5.1: heuristic tools "can detect dangling memory errors only
  // as long as the freed memory is not reused". Flood the quarantine so the
  // victim block is really freed, then re-allocate until glibc hands the
  // same address back: the stale access now goes UNDETECTED.
  auto& ctx = MemcheckContext::global();
  auto* victim = static_cast<char*>(ctx.allocate(48));
  ctx.deallocate(victim);
  // Evict: push > kQuarantineLimit bytes through the quarantine.
  for (int i = 0; i < 40; ++i) {
    void* big = ctx.allocate(1u << 20);
    ctx.deallocate(big);
  }
  // Reallocate until the victim address is reused (glibc tcache makes this
  // quick); give up gracefully if the allocator never returns it.
  std::vector<void*> reallocs;
  bool reused = false;
  for (int i = 0; i < 512 && !reused; ++i) {
    void* p = ctx.allocate(48);
    reallocs.push_back(p);
    reused = p == victim;
  }
  if (reused) {
    const auto report = core::catch_dangling([&] {
      ctx.check(victim, 1, core::AccessKind::kRead);
    });
    EXPECT_FALSE(report.has_value()) << "heuristic should miss after reuse";
  }
  for (void* p : reallocs) ctx.deallocate(p);
}

TEST(Memcheck, ShadowBytesGrowWithFootprint) {
  auto& ctx = MemcheckContext::global();
  EXPECT_GT(ctx.shadow_bytes(), 0u);  // prior tests touched memory
}

}  // namespace
}  // namespace dpg::baseline
