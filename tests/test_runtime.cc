// Tests for the Runtime facade, drop-in entry points, and the §3.4
// address-space arithmetic.
#include <gtest/gtest.h>

#include <cstring>

#include "core/fault_manager.h"
#include "core/runtime.h"

namespace dpg::core {
namespace {

TEST(Runtime, InstanceIsSingleton) {
  Runtime& a = Runtime::instance();
  Runtime& b = Runtime::instance();
  EXPECT_EQ(&a, &b);
}

TEST(Runtime, DropInMallocFreeWork) {
  auto* p = static_cast<char*>(dpg_malloc(128));
  ASSERT_NE(p, nullptr);
  std::strcpy(p, "drop-in");
  EXPECT_STREQ(p, "drop-in");
  dpg_free(p);
  const auto report = catch_dangling([&] {
    volatile char c = p[0];
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(Runtime, DropInDetectsDoubleFree) {
  void* p = dpg_malloc(16);
  dpg_free(p);
  const auto report = catch_dangling([&] { dpg_free(p); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kFree);
}

TEST(Runtime, VaExhaustionArithmeticMatchesPaper) {
  // "even an extreme program that allocates a new 4K-page-size object every
  //  microsecond, with no reuse of these pages, can operate for 9 hours
  //  before running out of virtual pages (2^47 / (2^12 * 10^6 * 86,400))".
  const double seconds = Runtime::seconds_until_va_exhaustion(1e6, 47);
  const double hours = seconds / 3600.0;
  EXPECT_NEAR(hours, 9.54, 0.1);  // 2^47 / (4096 * 1e6) seconds = 9.54 h
  EXPECT_GT(hours, 9.0);          // the paper's "at least 9 hours"
}

TEST(Runtime, VaExhaustionScalesWithRate) {
  const double fast = Runtime::seconds_until_va_exhaustion(1e6, 47);
  const double slow = Runtime::seconds_until_va_exhaustion(1e3, 47);
  EXPECT_NEAR(slow / fast, 1000.0, 1e-6);
  // A typical server (say 100 allocations/second) runs for a decade+.
  const double typical = Runtime::seconds_until_va_exhaustion(100, 47);
  EXPECT_GT(typical / (3600.0 * 24 * 365), 10.0);
}

TEST(Runtime, HeapStatsAccumulate) {
  Runtime& rt = Runtime::instance();
  const GuardStats before = rt.heap().stats();
  void* p = rt.heap().malloc(64);
  rt.heap().free(p);
  const GuardStats after = rt.heap().stats();
  EXPECT_EQ(after.allocations, before.allocations + 1);
  EXPECT_EQ(after.frees, before.frees + 1);
}

}  // namespace
}  // namespace dpg::core
