// Tests for the PIR interpreter.
#include <gtest/gtest.h>

#include "compiler/interp.h"
#include "compiler/parser.h"
#include "core/fault_manager.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

std::vector<std::uint64_t> run_guarded(const char* src,
                                       std::vector<std::uint64_t> args = {}) {
  const Module m = parse_module(src);
  Interpreter interp(m, {.backend = Backend::kGuarded});
  return interp.run(args).output;
}

TEST(Interp, ArithmeticAndOut) {
  const auto out = run_guarded(R"(
func main() {
  a = const 6
  b = const 7
  c = mul a, b
  out c
  d = sub c, a
  out d
  ret
}
)");
  EXPECT_EQ(out, (std::vector<std::uint64_t>{42, 36}));
}

TEST(Interp, ComparisonsAndBranches) {
  const auto out = run_guarded(R"(
func main() {
  a = const 3
  b = const 5
  c = lt a, b
  out c
  d = eq a, b
  out d
  e = eq a, a
  out e
  ret
}
)");
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 0, 1}));
}

TEST(Interp, LoopSumsToHundred) {
  const auto out = run_guarded(R"(
func main() {
  i = const 0
  sum = const 0
loop:
  hundred = const 100
  c = lt i, hundred
  cbr c, body, done
body:
  sum = add sum, i
  one = const 1
  i = add i, one
  br loop
done:
  out sum
  ret
}
)");
  EXPECT_EQ(out, (std::vector<std::uint64_t>{4950}));
}

TEST(Interp, CallsPassArgsAndReturn) {
  const auto out = run_guarded(R"(
func add3(a, b, c) {
  s = add a, b
  s = add s, c
  ret s
}
func main() {
  x = const 1
  y = const 2
  z = const 3
  r = call add3(x, y, z)
  out r
  ret
}
)");
  EXPECT_EQ(out, (std::vector<std::uint64_t>{6}));
}

TEST(Interp, MainArgsBind) {
  const Module m = parse_module(R"(
func main(a, b) {
  s = add a, b
  out s
  ret
}
)");
  Interpreter interp(m, {.backend = Backend::kGuarded});
  EXPECT_EQ(interp.run({40, 2}).output, (std::vector<std::uint64_t>{42}));
}

TEST(Interp, HeapFieldsReadBackWhatWasStored) {
  const auto out = run_guarded(R"(
func main() {
  p = malloc 3
  a = const 10
  b = const 20
  setfield p, 0, a
  setfield p, 2, b
  x = getfield p, 0
  y = getfield p, 2
  out x
  out y
  free p
  ret
}
)");
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 20}));
}

TEST(Interp, FreshAllocationsAreZeroed) {
  const auto out = run_guarded(R"(
func main() {
  p = malloc 2
  v = getfield p, 1
  out v
  free p
  ret
}
)");
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0}));
}

TEST(Interp, NativeAndGuardedAgreeOnCleanPrograms) {
  for (const char* src :
       {dpg::testing::kFigure1Fixed, dpg::testing::kLocalPool,
        dpg::testing::kRecursive, dpg::testing::kTwoPools}) {
    const Module m1 = parse_module(src);
    const Module m2 = parse_module(src);
    Interpreter native(m1, {.backend = Backend::kNative});
    Interpreter guarded(m2, {.backend = Backend::kGuarded});
    EXPECT_EQ(native.run().output, guarded.run().output);
  }
}

TEST(Interp, DanglingUseUnderGuardedBackendTraps) {
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  free p
  v = getfield p, 0
  out v
  ret
}
)");
  Interpreter interp(m, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  EXPECT_TRUE(report.has_value());
}

TEST(Interp, DoubleFreeUnderGuardedBackendReported) {
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  free p
  free p
  ret
}
)");
  Interpreter interp(m, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, core::AccessKind::kFree);
}

// --rung/--sample-rate A/B knobs: by default the interpreter rides the
// process-wide adaptive ladder (no private governor); pinning a rung gives
// the run its own sticky governor.
TEST(Interp, DefaultOptionsUseNoPrivateGovernor) {
  const Module m = parse_module("func main() { ret }\n");
  Interpreter interp(m, {.backend = Backend::kGuarded});
  EXPECT_EQ(interp.governor(), nullptr);
}

TEST(Interp, ForcedSampledRateOneStillTrapsDangling) {
  // N=1 on the sampled rung guards every allocation, so detection stays
  // exact even though the run is pinned below full-guard.
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  free p
  v = getfield p, 0
  out v
  ret
}
)");
  Interpreter interp(m, {.backend = Backend::kGuarded,
                         .forced_rung = 1,
                         .sample_rate = 1});
  ASSERT_NE(interp.governor(), nullptr);
  EXPECT_EQ(interp.governor()->mode(), core::GuardMode::kSampled);
  EXPECT_EQ(interp.governor()->sample_rate(), 1u);
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  EXPECT_TRUE(report.has_value());
}

TEST(Interp, ForcedQuarantineRungTradesDetectionForCompletion) {
  // Same dangling program, pinned to quarantine-only: the free parks the
  // block (still mapped, never recycled while quarantined), so the dangling
  // read returns stale data instead of trapping — the rung's documented
  // detection sacrifice.
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  free p
  v = getfield p, 0
  out v
  ret
}
)");
  Interpreter interp(m, {.backend = Backend::kGuarded, .forced_rung = 2});
  ASSERT_NE(interp.governor(), nullptr);
  EXPECT_EQ(interp.governor()->mode(), core::GuardMode::kQuarantineOnly);
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  EXPECT_FALSE(report.has_value());
  // The pinned rung never drifts, even after the run.
  EXPECT_EQ(interp.governor()->mode(), core::GuardMode::kQuarantineOnly);
}

TEST(Interp, SampleRateAloneKeepsAdaptiveLadderAtBaseRate) {
  const Module m = parse_module("func main() { ret }\n");
  Interpreter interp(m, {.backend = Backend::kGuarded, .sample_rate = 16});
  ASSERT_NE(interp.governor(), nullptr);
  EXPECT_EQ(interp.governor()->mode(), core::GuardMode::kFullGuard);
  EXPECT_EQ(interp.governor()->sample_rate(), 16u);
}

TEST(Interp, MissingMainThrows) {
  const Module m = parse_module("func helper() { ret }");
  Interpreter interp(m, {.backend = Backend::kGuarded});
  EXPECT_THROW((void)interp.run(), InterpError);
}

TEST(Interp, UnknownCalleeRejectedByVerifier) {
  const Module m = parse_module("func main() { call ghost()\n ret }");
  EXPECT_THROW(Interpreter(m, {.backend = Backend::kGuarded}), InterpError);
}

TEST(Interp, UnknownCalleeThrowsAtRunWhenUnverified) {
  const Module m = parse_module("func main() { call ghost()\n ret }");
  Interpreter interp(m, {.backend = Backend::kGuarded, .verify = false});
  EXPECT_THROW((void)interp.run(), InterpError);
}

TEST(Interp, StepBudgetStopsRunaways) {
  const Module m = parse_module(R"(
func main() {
spin:
  br spin
}
)");
  Interpreter interp(m, {.backend = Backend::kGuarded, .max_steps = 1000});
  EXPECT_THROW((void)interp.run(), InterpError);
}

TEST(Interp, DepthLimitStopsInfiniteRecursion) {
  const Module m = parse_module(R"(
func main() {
  call main()
  ret
}
)");
  Interpreter interp(m, {.backend = Backend::kGuarded, .max_depth = 50});
  EXPECT_THROW((void)interp.run(), InterpError);
}

TEST(Interp, NativeDoubleFreeReportedAsError) {
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  free p
  free p
  ret
}
)");
  Interpreter interp(m, {.backend = Backend::kNative});
  EXPECT_THROW((void)interp.run(), InterpError);
}

TEST(Interp, FallOffEndReturnsZero) {
  const auto out = run_guarded(R"(
func sub() {
  x = const 5
  out x
}
func main() {
  r = call sub()
  out r
  ret
}
)");
  EXPECT_EQ(out, (std::vector<std::uint64_t>{5, 0}));
}

TEST(Interp, RunTwiceIsRepeatable) {
  const Module m = parse_module(dpg::testing::kLocalPool);
  Interpreter interp(m, {.backend = Backend::kGuarded});
  const auto first = interp.run().output;
  const auto second = interp.run().output;
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dpg::compiler
