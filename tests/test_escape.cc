// Tests for escape analysis + pool placement.
#include <gtest/gtest.h>

#include "compiler/escape.h"
#include "compiler/parser.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

const PoolPlacement& only_pool(const EscapeResult& r) {
  EXPECT_EQ(r.pools.size(), 1u);
  return r.pools.front();
}

std::string home_name(const Module& m, const PoolPlacement& p) {
  return m.functions[static_cast<std::size_t>(p.home_function)].name;
}

TEST(Escape, Figure1PoolHomedInF) {
  // The paper: "the data structure pointed to by p never escapes the
  // function f(), so the transformation inserts code to create a pool PP
  // within f".
  const Module m = parse_module(dpg::testing::kFigure1);
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  const PoolPlacement& pool = only_pool(result);
  EXPECT_EQ(home_name(m, pool), "f");
  EXPECT_FALSE(pool.global_lifetime);
  // g uses the pool but cannot own it (the node escapes via g's parameter).
  EXPECT_TRUE(pool.users.count(m.function_index.at("g")) > 0);
}

TEST(Escape, GlobalEscapeForcesMainPool) {
  const Module m = parse_module(dpg::testing::kGlobalEscape);
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  const PoolPlacement& pool = only_pool(result);
  EXPECT_EQ(home_name(m, pool), "main");
  EXPECT_TRUE(pool.global_lifetime);
}

TEST(Escape, NonEscapingNodePooledInLeaf) {
  const Module m = parse_module(dpg::testing::kLocalPool);
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  const PoolPlacement& pool = only_pool(result);
  EXPECT_EQ(home_name(m, pool), "leaf");
  EXPECT_FALSE(pool.global_lifetime);
}

TEST(Escape, RecursionPushesPoolAboveScc) {
  const Module m = parse_module(dpg::testing::kRecursive);
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  const PoolPlacement& pool = only_pool(result);
  // build() is recursive (non-trivial SCC): the pool must live in main.
  EXPECT_EQ(home_name(m, pool), "main");
}

TEST(Escape, TwoIndependentPoolsGetSeparateHomes) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  ASSERT_EQ(result.pools.size(), 2u);
  std::set<std::string> homes;
  for (const PoolPlacement& pool : result.pools) {
    homes.insert(home_name(m, pool));
  }
  EXPECT_EQ(homes, (std::set<std::string>{"main", "scratchwork"}));
}

TEST(Escape, EscapeThroughReturnMovesPoolUp) {
  const Module m = parse_module(R"(
func maker() {
  p = malloc 1
  ret p
}
func main() {
  q = call maker()
  v = getfield q, 0
  out v
  free q
  ret
}
)");
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  const PoolPlacement& pool = only_pool(result);
  // Escapes maker() via return: home must be main.
  EXPECT_EQ(home_name(m, pool), "main");
}

TEST(Escape, SharedCalleeDiamondPoolsAtJoinPoint) {
  const Module m = parse_module(R"(
func main() {
  call left()
  call right()
  ret
}
func left() {
  p = call shared()
  free p
  ret
}
func right() {
  p = call shared()
  free p
  ret
}
func shared() {
  p = malloc 1
  ret p
}
)");
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  const PoolPlacement& pool = only_pool(result);
  // The node escapes shared() (returned), is used by left and right; the
  // only function whose subtree covers both users without the node escaping
  // its own boundary is main.
  EXPECT_EQ(home_name(m, pool), "main");
}

TEST(Escape, PoolOfNodeLookupWorks) {
  const Module m = parse_module(dpg::testing::kFigure1);
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  const int node = pta.heap_nodes()[0];
  const PoolPlacement* pool = result.pool_of_node(node);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->node, node);
  EXPECT_EQ(result.pool_of_node(123456), nullptr);
}

TEST(Escape, MissingMainThrows) {
  const Module m = parse_module("func notmain() { ret }");
  const PointsToAnalysis pta(m);
  EXPECT_THROW((void)place_pools(m, pta), std::invalid_argument);
}

TEST(Escape, SitesArePartitionedAcrossPools) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const PointsToAnalysis pta(m);
  const EscapeResult result = place_pools(m, pta);
  std::set<std::uint32_t> all_sites;
  for (const PoolPlacement& pool : result.pools) {
    for (const std::uint32_t site : pool.sites) {
      EXPECT_TRUE(all_sites.insert(site).second) << "site in two pools";
    }
  }
  EXPECT_EQ(all_sites.size(), 2u);
}

}  // namespace
}  // namespace dpg::compiler
