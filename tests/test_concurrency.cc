// Multithreaded tests: the engine serializes mutators on a mutex and the
// registry publishes lock-free snapshots for the (per-thread) fault path —
// these suites hammer both from several threads at once.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "core/guarded_pool.h"
#include "core/sharded_heap.h"
#include "vm/revoke.h"
#include "test_seed.h"
#include "workloads/common.h"

namespace dpg::core {
namespace {

constexpr int kThreads = 4;

TEST(Concurrency, ParallelAllocFreeChurn) {
  vm::PhysArena arena(1u << 30);
  GuardedHeap heap(arena, {.freed_va_budget = 16u << 20});
  std::atomic<bool> failed{false};
  const std::uint64_t seed0 = dpg::testing::dpg_test_seed(1);
  DPG_SEED_TRACE(seed0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&heap, &failed, seed0, t] {
      workloads::Rng rng(seed0 + static_cast<std::uint64_t>(t));
      std::vector<std::pair<unsigned char*, unsigned char>> live;
      for (int round = 0; round < 800; ++round) {
        if (live.size() < 20 || rng.below(2) == 0) {
          const std::size_t size = 1 + rng.below(500);
          auto* p = static_cast<unsigned char*>(heap.malloc(size));
          const auto fill = static_cast<unsigned char>((t << 6) | (round & 63));
          p[0] = fill;
          p[size - 1] = fill;
          live.emplace_back(p, fill);
        } else {
          const std::size_t pick = rng.below(live.size());
          if (*live[pick].first != live[pick].second) failed = true;
          heap.free(live[pick].first);
          live[pick] = live.back();
          live.pop_back();
        }
      }
      for (auto& [p, fill] : live) {
        if (*p != fill) failed = true;
        heap.free(p);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(failed.load()) << "cross-thread corruption";
  const GuardStats stats = heap.stats();
  EXPECT_EQ(stats.allocations, stats.frees);
}

TEST(Concurrency, ParallelDanglingProbesEachThreadTraps) {
  // Each thread frees its own object then probes it: the probe machinery
  // (sigsetjmp state) is thread-local, and every thread must detect.
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena);
  std::atomic<int> detections{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&heap, &detections] {
      for (int i = 0; i < 50; ++i) {
        auto* p = static_cast<char*>(heap.malloc(32));
        heap.free(p);
        const auto report = catch_dangling([&] {
          volatile char c = *p;
          (void)c;
        });
        if (report.has_value()) detections.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(detections.load(), kThreads * 50);
}

TEST(Concurrency, RegistryLookupsRaceWithMutation) {
  // Readers (lookup) run lock-free against writers (insert/erase + growth).
  ShadowRegistry reg(64);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  // A stable record always present: readers assert they can always find it.
  ObjectRecord anchor;
  anchor.shadow_base = 0x7600000000;
  anchor.span_length = vm::kPageSize;
  reg.insert(anchor);

  const std::uint64_t writer_seed = dpg::testing::dpg_test_seed(7);
  DPG_SEED_TRACE(writer_seed);
  std::thread writer([&] {
    workloads::Rng rng(writer_seed);
    std::vector<std::unique_ptr<ObjectRecord>> live;
    for (int round = 0; round < 20000; ++round) {
      if (live.size() < 100 || rng.below(2) == 0) {
        auto rec = std::make_unique<ObjectRecord>();
        rec->shadow_base = 0x7700000000 + rng.below(1u << 16) * vm::kPageSize;
        rec->span_length = vm::kPageSize;
        if (reg.lookup(rec->shadow_base) != nullptr) continue;
        reg.insert(*rec);
        live.push_back(std::move(rec));
      } else {
        const std::size_t pick = rng.below(live.size());
        reg.erase(*live[pick]);
        live[pick] = std::move(live.back());
        live.pop_back();
      }
    }
    for (auto& rec : live) reg.erase(*rec);
    stop = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (reg.lookup(0x7600000800) != &anchor) failed = true;
        if (reg.lookup(0x123000) != nullptr) failed = true;
      }
    });
  }
  writer.join();
  for (std::thread& th : readers) th.join();
  EXPECT_FALSE(failed.load());
  reg.erase(anchor);
}

TEST(Concurrency, PoolPerThreadScopes) {
  // PoolScope stacks are thread-local: concurrent scoped connections must
  // not interfere, and the shared context free-lists must stay consistent.
  GuardedPoolContext ctx;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ctx, &failed, t] {
      for (int conn = 0; conn < 60; ++conn) {
        PoolScope scope(ctx);
        if (PoolScope::current() != &scope) failed = true;
        auto* p = static_cast<int*>(scope.pool().alloc(sizeof(int) * 16));
        for (int i = 0; i < 16; ++i) p[i] = t * 1000 + conn;
        for (int i = 0; i < 16; ++i) {
          if (p[i] != t * 1000 + conn) failed = true;
        }
        scope.pool().free(p);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(ctx.recyclable_shadow_bytes(), 0u);
}

TEST(Concurrency, DetectionsCounterIsAtomic) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena);
  const std::uint64_t before = FaultManager::instance().detections();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&heap] {
      for (int i = 0; i < 25; ++i) {
        auto* p = static_cast<char*>(heap.malloc(8));
        heap.free(p);
        (void)catch_dangling([&] {
          volatile char c = *p;
          (void)c;
        });
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(FaultManager::instance().detections(), before + kThreads * 25);
}

TEST(Concurrency, PkeyBackendRemoteFreeStorm) {
  // MPSC storm against the pkey revocation backend: producers allocate on
  // their home shards, one consumer frees everything remotely, so every
  // revocation follows the remote-free drain path under a single shared
  // Revoker (one revoked key across all shards). Detection assertions run on
  // every host — on non-MPK machines the Revoker resolves to its batched
  // fallback and the same storm exercises that; the pkey-native assertions
  // at the end skip (not fail) where the hardware is absent.
  vm::PhysArena arena(1u << 28);
  DegradationGovernor gov;
  vm::Revoker revoker;
  ShardedHeap heap(arena,
                   {.freed_va_budget = 64u << 20,
                    .protect_batch = 16,
                    .governor = &gov,
                    .revoke_backend = vm::RevokeBackend::kPkey,
                    .revoker = &revoker},
                   kThreads);

  constexpr int kPerThread = 400;
  std::mutex mu;
  std::vector<unsigned char*> queue;
  std::atomic<int> producers_left{kThreads};
  std::atomic<bool> failed{false};
  const std::uint64_t seed0 = dpg::testing::dpg_test_seed(11);
  DPG_SEED_TRACE(seed0);

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      workloads::Rng rng(seed0 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t size = 1 + rng.below(256);
        auto* p = static_cast<unsigned char*>(heap.malloc(size));
        if (p == nullptr) {
          failed = true;
          break;
        }
        p[0] = static_cast<unsigned char>(t);
        std::lock_guard lk(mu);
        queue.push_back(p);
      }
      producers_left.fetch_sub(1, std::memory_order_release);
    });
  }
  // The consumer never allocated any of these: every free is a cross-thread
  // (remote) free routed back to the owning shard.
  std::vector<unsigned char*> freed;
  std::thread consumer([&] {
    for (;;) {
      // Order matters: only an empty pop AFTER observing "no producers left"
      // proves the queue is drained (a push can land between an empty pop
      // and the counter check, but not between the check and a later pop).
      const bool done = producers_left.load(std::memory_order_acquire) == 0;
      unsigned char* p = nullptr;
      {
        std::lock_guard lk(mu);
        if (!queue.empty()) {
          p = queue.back();
          queue.pop_back();
        }
      }
      if (p != nullptr) {
        heap.free(p);
        freed.push_back(p);
      } else if (done) {
        break;
      }
    }
  });
  for (std::thread& th : producers) th.join();
  consumer.join();
  heap.flush_all();

  EXPECT_FALSE(failed.load());
  const GuardStats stats = heap.stats();
  EXPECT_EQ(stats.allocations, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.frees, stats.allocations);  // every remote free admitted once
  EXPECT_EQ(stats.revoked_spans, stats.frees);  // flush drained every queue
  EXPECT_EQ(stats.guard_failures, 0u);
  EXPECT_EQ(stats.double_frees, 0u);

  // A second free of a consumed pointer is still an exact double-free report,
  // raised from yet another thread (neither allocator nor consumer).
  ASSERT_FALSE(freed.empty());
  unsigned char* df = freed.back();
  std::thread df_probe([&] {
    const auto report = catch_dangling([&] { heap.free(df); });
    if (!report.has_value() || report->kind != AccessKind::kFree) failed = true;
  });
  df_probe.join();
  EXPECT_FALSE(failed.load()) << "double free after remote-free storm";

  // Per-thread revocation visibility: a fresh thread attaches (first heap
  // touch installs its PKRU denial under pkey; a no-op otherwise) and must
  // trap on every probed revoked span.
  std::atomic<int> traps{0};
  std::thread prober([&] {
    void* warm = heap.malloc(16);
    for (std::size_t i = 0; i < 8 && i < freed.size(); ++i) {
      unsigned char* p = freed[freed.size() - 1 - i];
      const auto report = catch_dangling([&] {
        volatile unsigned char c = *p;
        (void)c;
      });
      if (report.has_value()) traps.fetch_add(1);
    }
    heap.free(warm);
  });
  prober.join();
  EXPECT_EQ(traps.load(), 8);

  if (!vm::Revoker::mpk_supported()) {
    GTEST_SKIP() << "no MPK: storm ran on the batched fallback; "
                    "pkey-native assertions skipped";
  }
  EXPECT_EQ(revoker.active(), vm::RevokeBackend::kPkey);
  EXPECT_GE(revoker.revoked_key(), 1);
  EXPECT_EQ(stats.pkey_revocations, stats.frees);
}

}  // namespace
}  // namespace dpg::core
