// Tests for the policy layer itself: handle semantics, scope routing,
// global-pool routing, and the canonical-source plumbing under it.
#include <gtest/gtest.h>

#include <cstring>

#include "alloc/alloc_iface.h"
#include "baseline/policies.h"
#include "core/fault_manager.h"
#include "workloads/common.h"

namespace dpg {
namespace {

// --- ArenaSource / MmapSource ------------------------------------------------

TEST(ArenaSource, PrefersRecycledExtents) {
  vm::PhysArena arena(1u << 24);
  alloc::ArenaSource source(arena);
  const vm::PageRange a = source.obtain(4 * vm::kPageSize);
  source.recycle(a);
  EXPECT_EQ(source.recyclable_bytes(), 4 * vm::kPageSize);
  const vm::PageRange b = source.obtain(4 * vm::kPageSize);
  EXPECT_EQ(b.base, a.base);
  EXPECT_EQ(source.recyclable_bytes(), 0u);
}

TEST(ArenaSource, GrowsArenaOnlyWhenFreelistEmpty) {
  vm::PhysArena arena(1u << 24);
  alloc::ArenaSource source(arena);
  const vm::PageRange a = source.obtain(vm::kPageSize);
  const std::size_t phys = arena.physical_bytes();
  source.recycle(a);
  (void)source.obtain(vm::kPageSize);
  EXPECT_EQ(arena.physical_bytes(), phys);  // reused, no growth
  (void)source.obtain(vm::kPageSize);
  EXPECT_GT(arena.physical_bytes(), phys);  // freelist empty: grew
}

// --- policy handle semantics ---------------------------------------------------

template <typename P>
void exercise_policy() {
  struct Node {
    std::uint64_t value;
    typename P::template ptr<Node> next;
  };
  // Build a 3-node list, sum it, tear it down.
  auto a = P::template make<Node>();
  auto b = P::template make<Node>();
  auto c = P::template make<Node>();
  a->value = 1;
  b->value = 2;
  c->value = 3;
  a->next = b;
  b->next = c;
  c->next = typename P::template ptr<Node>{};
  std::uint64_t sum = 0;
  for (auto it = a; it != nullptr; it = it->next) sum += it->value;
  EXPECT_EQ(sum, 6u);

  // Array handles.
  auto arr = P::template alloc_array<std::uint64_t>(64);
  for (std::size_t i = 0; i < 64; ++i) arr[i] = i * i;
  EXPECT_EQ(arr[63], 63u * 63u);

  P::dispose(arr);
  P::dispose(c);
  P::dispose(b);
  P::dispose(a);
}

TEST(Policies, NativeHandles) { exercise_policy<baseline::NativePolicy>(); }
TEST(Policies, PaHandles) { exercise_policy<baseline::PaPolicy>(); }
TEST(Policies, PaDummyHandles) {
  exercise_policy<baseline::PaDummySyscallPolicy>();
}
TEST(Policies, GuardedHandles) { exercise_policy<baseline::GuardedPolicy>(); }
TEST(Policies, GuardedNoPoolHandles) {
  exercise_policy<baseline::GuardedNoPoolPolicy>();
}
TEST(Policies, EfenceHandles) { exercise_policy<baseline::EfencePolicy>(); }
TEST(Policies, CapabilityHandles) {
  exercise_policy<baseline::CapabilityPolicy>();
}
TEST(Policies, MemcheckHandles) { exercise_policy<baseline::MemcheckPolicy>(); }

// --- scope routing -------------------------------------------------------------

TEST(Policies, GuardedScopeRoutesToInnermostPool) {
  using P = baseline::GuardedPolicy;
  typename P::Scope outer;
  core::PoolScope* outer_scope = core::PoolScope::current();
  ASSERT_NE(outer_scope, nullptr);
  {
    typename P::Scope inner;
    EXPECT_NE(core::PoolScope::current(), outer_scope);
    auto* p = P::make<int>();
    *p = 42;
    P::dispose(p);
  }
  EXPECT_EQ(core::PoolScope::current(), outer_scope);
}

TEST(Policies, GuardedGlobalAllocationsOutliveScopes) {
  using P = baseline::GuardedPolicy;
  struct Entry {
    std::uint64_t tag;
  };
  Entry* global = nullptr;
  {
    typename P::Scope connection;
    global = workloads::make_global<P, Entry>();
    global->tag = 1;
  }
  // The scope died, but the global-pool object is still live and usable.
  global->tag = 0xABCD;
  EXPECT_EQ(global->tag, 0xABCDu);
  workloads::dispose_global<P>(global);
  // ... and now it is a detectable dangling pointer.
  const auto report = core::catch_dangling([&] {
    volatile std::uint64_t v = global->tag;
    (void)v;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(Policies, GuardedScopeFreesDetectDangling) {
  using P = baseline::GuardedPolicy;
  typename P::Scope scope;
  auto* p = P::make<long>();
  *p = 5;
  P::dispose(p);
  const auto report = core::catch_dangling([&] {
    volatile long v = *p;
    (void)v;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(Policies, PaScopeRecyclesThroughSharedSource) {
  using P = baseline::PaPolicy;
  // Two sequential scopes: the second reuses the first's extents (shared
  // MmapSource free list), so this mustn't crash or leak unbounded memory.
  void* first = nullptr;
  {
    typename P::Scope s;
    first = P::alloc_array<char>(100);
    static_cast<char*>(first)[0] = 'x';
  }
  {
    typename P::Scope s;
    void* second = P::alloc_array<char>(100);
    static_cast<char*>(second)[0] = 'y';
    EXPECT_EQ(second, first);  // same recycled extent, same bump offset
  }
}

TEST(Policies, PolicyCopyRawUsesMemcpySemantics) {
  char dst[16];
  workloads::policy_copy(static_cast<char*>(dst), "hello", 6);
  EXPECT_STREQ(dst, "hello");
}

TEST(Policies, PolicyCopyCheckedPointerChecksEveryByte) {
  using P = baseline::MemcheckPolicy;
  auto buf = P::alloc_array<char>(8);
  const std::uint64_t checks_before =
      baseline::MemcheckContext::global().stats().checks;
  workloads::policy_copy(buf, "abcdefg", 8);
  EXPECT_GE(baseline::MemcheckContext::global().stats().checks,
            checks_before + 8);
  P::dispose(buf);
}

}  // namespace
}  // namespace dpg
