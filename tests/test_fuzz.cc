// Fuzz-infrastructure suite (ctest label: fuzz): the trace language, the
// .dpgf replay format, clean in-process matrix runs, and — via the dpg_fuzz
// binary — the full known-bad workflow: a deliberately broken oracle must
// diverge, shrink to a minimal trace, and reproduce from the written replay
// file in one command. The smoke sweep itself runs as the separate
// `fuzz_smoke` ctest entry (dpg_fuzz --smoke).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/cross_checks.h"
#include "fuzz/harness.h"
#include "test_seed.h"

#ifndef DPG_FUZZ_BIN
#error "DPG_FUZZ_BIN must be defined by the build"
#endif

namespace dpg::fuzz {
namespace {

TEST(FuzzTrace, GeneratorIsDeterministic) {
  GenParams params;
  params.n_ops = 500;
  params.pools = true;
  const std::uint64_t seed = dpg::testing::dpg_test_seed(42);
  DPG_SEED_TRACE(seed);
  const Trace a = generate(seed, params);
  const Trace b = generate(seed, params);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ops.size(), 500u);
  // A different seed must actually change the program.
  const Trace c = generate(seed + 1, params);
  EXPECT_NE(a, c);
}

TEST(FuzzTrace, GeneratorCoversTheOpAlphabet) {
  GenParams params;
  params.n_ops = 4000;
  params.pools = true;
  const std::uint64_t seed = dpg::testing::dpg_test_seed(3);
  DPG_SEED_TRACE(seed);
  const Trace t = generate(seed, params);
  std::array<std::size_t, 12> hist{};
  for (const Op& op : t.ops) ++hist[static_cast<std::size_t>(op.kind)];
  for (const OpKind k :
       {OpKind::kMalloc, OpKind::kFree, OpKind::kRead, OpKind::kWrite,
        OpKind::kRealloc, OpKind::kFlush, OpKind::kUafRead, OpKind::kUafWrite,
        OpKind::kDoubleFree, OpKind::kInvalidFree, OpKind::kPoolCreate,
        OpKind::kPoolDestroy}) {
    EXPECT_GT(hist[static_cast<std::size_t>(k)], 0u) << op_name(k);
  }
}

TEST(FuzzTrace, StaticSubsetStaysInTheStaticAlphabet) {
  GenParams params;
  params.n_ops = 1000;
  params.static_compatible = true;
  const Trace t = generate(dpg::testing::dpg_test_seed(9), params);
  for (const Op& op : t.ops) {
    EXPECT_TRUE(op.kind == OpKind::kMalloc || op.kind == OpKind::kFree ||
                op.kind == OpKind::kRead || op.kind == OpKind::kWrite ||
                op.kind == OpKind::kUafRead || op.kind == OpKind::kUafWrite ||
                op.kind == OpKind::kDoubleFree)
        << op_name(op.kind);
    EXPECT_EQ(op.thread, 0);
  }
}

TEST(FuzzTrace, ReplayRoundTripIsByteIdentical) {
  FuzzConfig cfg;
  cfg.name = "batch16-1shard";
  cfg.protect_batch = 16;
  cfg.revoke_backend = 3;  // backend + recycle fields ride the header too
  cfg.recycle_cap = 32;
  cfg.gen.n_ops = 200;
  const Trace t = generate(dpg::testing::dpg_test_seed(7), cfg.gen);
  const std::string text = to_replay(cfg, t);

  FuzzConfig cfg2;
  Trace t2;
  std::string err;
  ASSERT_TRUE(from_replay(text, &cfg2, &t2, &err)) << err;
  // Generator params are deliberately NOT serialized — the op list is the
  // program; a replay must not depend on re-generation.
  cfg2.gen = cfg.gen;
  EXPECT_EQ(cfg, cfg2);
  EXPECT_EQ(t, t2);
  EXPECT_EQ(to_replay(cfg2, t2), text);
}

TEST(FuzzTrace, ReplayParserRejectsMalformedInput) {
  FuzzConfig cfg;
  Trace t;
  std::string err;
  EXPECT_FALSE(from_replay("", &cfg, &t, &err));
  EXPECT_FALSE(from_replay("not a dpgf file\n", &cfg, &t, &err));
  const std::string good = to_replay(FuzzConfig{}, generate(1, GenParams{}));
  EXPECT_FALSE(from_replay(good + "BOGUS LINE\n", &cfg, &t, &err));
  // revoke_backend is a vm::RevokeBackend value; out-of-range must not
  // silently cast to garbage at SUT construction.
  std::string bad = good;
  const auto pos = bad.find("revoke_backend 0");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 16, "revoke_backend 7");
  EXPECT_FALSE(from_replay(bad, &cfg, &t, &err));
  EXPECT_NE(err.find("revoke_backend"), std::string::npos);
}

// Tiny in-process run of every matrix cell: the differential harness itself
// must hold on each config (the heavier sweep lives in fuzz_smoke).
TEST(FuzzHarness, EveryMatrixCellRunsClean) {
  const std::uint64_t seed = dpg::testing::dpg_test_seed(11);
  DPG_SEED_TRACE(seed);
  for (const FuzzConfig& cfg : matrix(300)) {
    const Trace trace = generate(seed, cfg.gen);
    const RunResult res = run_trace(cfg, trace, nullptr);
    EXPECT_TRUE(res.ok()) << cfg.name << ": " << [&] {
      std::string all;
      for (const Divergence& d : res.divergences) all += d.detail + "\n";
      return all;
    }();
    EXPECT_GT(res.executed, 0u) << cfg.name;
  }
}

// Deeper lockstep sweep of the sampled lane than the matrix smoke above:
// the oracle must track the engine op-for-op at every rate — N=1 (degenerate
// full guard), a small N that mixes lanes heavily, and the production-shaped
// N=64 where almost everything rides the ledgered fast path.
TEST(FuzzHarness, SampledLaneLockstepAcrossRates) {
  const std::uint64_t seed = dpg::testing::dpg_test_seed(31);
  DPG_SEED_TRACE(seed);
  for (const std::size_t n : {std::size_t{1}, std::size_t{4},
                              std::size_t{64}}) {
    FuzzConfig cfg;
    cfg.name = "sampled-lockstep-n" + std::to_string(n);
    cfg.forced_mode = 1;  // core::GuardMode::kSampled
    cfg.sample_rate = n;
    cfg.gen.n_ops = 4000;
    const Trace trace = generate(seed + n, cfg.gen);
    const RunResult res = run_trace(cfg, trace, nullptr);
    EXPECT_TRUE(res.ok()) << cfg.name << ": " << [&] {
      std::string all;
      for (const Divergence& d : res.divergences) all += d.detail + "\n";
      return all;
    }();
    EXPECT_GT(res.executed, 0u) << cfg.name;
  }
}

TEST(FuzzCrossChecks, BaselinesAgreeWithTheTraceModel) {
  const std::uint64_t seed = dpg::testing::dpg_test_seed(21);
  DPG_SEED_TRACE(seed);
  const auto div = baseline_cross_check(seed, 300);
  EXPECT_TRUE(div.empty()) << div.front().detail;
}

TEST(FuzzCrossChecks, StaticAnalyzerAgreesWithTheRuntime) {
  const std::uint64_t seed = dpg::testing::dpg_test_seed(22);
  DPG_SEED_TRACE(seed);
  const auto div = static_cross_check(seed, 200);
  EXPECT_TRUE(div.empty()) << div.front().detail;
}

// --- the known-bad demo, end to end through the CLI ------------------------

struct CliResult {
  int exit_code = -1;
  std::string output;
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string(DPG_FUZZ_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  CliResult r;
  if (pipe == nullptr) return r;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) r.output += buf.data();
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

TEST(FuzzCli, OracleBugShrinksToReplayThatReproduces) {
  char path_tmpl[] = "/tmp/dpg_fuzz_XXXXXX";
  const int fd = mkstemp(path_tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string out = path_tmpl;

  // The deliberately broken oracle predicts queued revocations as already
  // applied: on a batched config an in-window UAF read diverges. Exit 2 =
  // divergence found, shrunk, replay written, seed printed.
  const CliResult found = run_cli(
      "--config batch16-1shard --oracle-bug --seeds 20 --ops 800 --out " + out);
  ASSERT_EQ(found.exit_code, 2) << found.output;
  EXPECT_NE(found.output.find("DIVERGENCE"), std::string::npos) << found.output;
  EXPECT_NE(found.output.find("seed="), std::string::npos) << found.output;
  EXPECT_NE(found.output.find("shrunk to"), std::string::npos) << found.output;
  EXPECT_NE(found.output.find("reproduce with:"), std::string::npos)
      << found.output;

  // The shrunken trace must be genuinely minimal for this defect: one malloc,
  // one free (queued, not yet revoked), one UAF read inside the window.
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  FuzzConfig cfg;
  Trace small;
  std::string err;
  ASSERT_TRUE(from_replay(buf.str(), &cfg, &small, &err)) << err;
  EXPECT_TRUE(cfg.oracle_bug);
  EXPECT_LE(small.ops.size(), 4u) << buf.str();

  // One command reproduces it from the file alone.
  const CliResult replay = run_cli("--replay " + out);
  EXPECT_EQ(replay.exit_code, 2) << replay.output;
  EXPECT_NE(replay.output.find("divergence reproduced"), std::string::npos)
      << replay.output;
  unlink(path_tmpl);
}

TEST(FuzzCli, ListConfigsNamesEveryCell) {
  const CliResult r = run_cli("--list-configs");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  for (const FuzzConfig& cfg : matrix(100)) {
    EXPECT_NE(r.output.find(cfg.name), std::string::npos) << cfg.name;
  }
}

}  // namespace
}  // namespace dpg::fuzz
