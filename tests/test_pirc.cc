// End-to-end tests for the pirc command-line driver.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#ifndef DPG_PIRC_BIN
#error "DPG_PIRC_BIN must be defined by the build"
#endif
#ifndef DPG_PIR_DIR
#error "DPG_PIR_DIR must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // combined stdout+stderr
};

RunResult run_pirc(const std::string& args) {
  const std::string cmd = std::string(DPG_PIRC_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

const std::string kFigure1 = std::string(DPG_PIR_DIR) + "/figure1.pir";
const std::string kSumtree = std::string(DPG_PIR_DIR) + "/sumtree.pir";
const std::string kScratch = std::string(DPG_PIR_DIR) + "/scratch.pir";

TEST(Pirc, Figure1DetectsDanglingAndExits42) {
  const RunResult r = run_pirc(kFigure1);
  EXPECT_EQ(r.exit_code, 42) << r.output;
  EXPECT_NE(r.output.find("dangling read"), std::string::npos) << r.output;
}

TEST(Pirc, Figure1TransformShowsPoolCalls) {
  const RunResult r = run_pirc("--transform " + kFigure1);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("poolinit"), std::string::npos);
  EXPECT_NE(r.output.find("poolalloc"), std::string::npos);
  EXPECT_NE(r.output.find("pooldestroy"), std::string::npos);
}

TEST(Pirc, Figure1PoolsSummary) {
  const RunResult r = run_pirc("--pools " + kFigure1);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("home=f"), std::string::npos) << r.output;
}

TEST(Pirc, SumtreeRunsGuardedWithArgs) {
  const RunResult r = run_pirc(kSumtree + " -- 6");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Depth-6 tree: sum over nodes of their depth label d.
  // levels d=6..1 have 1,2,4,8,16,32 nodes -> sum d*2^(6-d) = 120.
  EXPECT_NE(r.output.find("120"), std::string::npos) << r.output;
}

TEST(Pirc, SumtreeNativeMatchesGuarded) {
  const RunResult guarded = run_pirc(kSumtree + " -- 5");
  const RunResult native = run_pirc("--native " + kSumtree + " -- 5");
  EXPECT_EQ(guarded.exit_code, 0);
  EXPECT_EQ(native.exit_code, 0);
  EXPECT_EQ(guarded.output, native.output);
}

TEST(Pirc, DumpPrintsModule) {
  const RunResult r = run_pirc("--dump " + kSumtree);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("func build"), std::string::npos);
  EXPECT_EQ(r.output.find("poolinit"), std::string::npos);  // untransformed
}

TEST(Pirc, MissingFileFails) {
  const RunResult r = run_pirc("/nonexistent.pir");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Pirc, UsageOnBadFlag) {
  const RunResult r = run_pirc("--bogus " + kSumtree);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

std::string write_temp(const char* name, const char* contents) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(Pirc, ParseFailureExits2) {
  const std::string path = write_temp("pirc_garbage.pir", "banana\n");
  const RunResult r = run_pirc(path);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("parse error"), std::string::npos) << r.output;
}

TEST(Pirc, VerifyFailureExits3) {
  // Parses fine, but calls a function that does not exist.
  const std::string path = write_temp(
      "pirc_badcall.pir", "func main() {\n  call ghost()\n  ret\n}\n");
  const RunResult r = run_pirc(path);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("unknown function"), std::string::npos) << r.output;
}

TEST(Pirc, LintFlagsFigure1AsMustUafExits4) {
  const RunResult r = run_pirc("--lint " + kFigure1);
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("MUST-UAF"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("witness:"), std::string::npos) << r.output;
}

TEST(Pirc, LintCleanProgramExits0) {
  const RunResult r = run_pirc("--lint " + kScratch);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no findings"), std::string::npos) << r.output;
}

TEST(Pirc, LintSumtreeTeardownIsKnownFalsePositive) {
  // Post-order recursive frees defeat the strong may-free summary: the
  // analysis flags teardown() even though the program is clean. Pin the
  // behaviour so a precision change shows up as a diff here.
  const RunResult r = run_pirc("--lint " + kSumtree);
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("teardown"), std::string::npos) << r.output;
}

TEST(Pirc, ScratchRunsCleanWithElision) {
  const RunResult r = run_pirc(kScratch + " -- 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "0\n1\n2\n");
}

TEST(Pirc, LintJsonEmitsFindingsAndPairs) {
  const RunResult r = run_pirc("--lint-json " + kFigure1);
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("\"findings\":["), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"certainty\":\"must\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"pairs\":["), std::string::npos) << r.output;
}

TEST(Pirc, NoElideStillRunsSafePrograms) {
  const RunResult elided = run_pirc(kSumtree + " -- 5");
  const RunResult guarded = run_pirc("--no-elide " + kSumtree + " -- 5");
  EXPECT_EQ(elided.exit_code, 0) << elided.output;
  EXPECT_EQ(guarded.exit_code, 0) << guarded.output;
  EXPECT_EQ(elided.output, guarded.output);
}

// --rung/--sample-rate A/B knobs. Rate 1 on the sampled rung guards every
// allocation, so Figure 1's dangling read still exits 42; the quarantine
// rung parks the freed block instead of revoking it, so the same program
// runs to completion — the overhead-vs-detection trade, visible from the
// exit code alone.
TEST(Pirc, SampledRungRateOneStillDetectsFigure1) {
  const RunResult r = run_pirc("--rung=sampled --sample-rate=1 " + kFigure1);
  EXPECT_EQ(r.exit_code, 42) << r.output;
  EXPECT_NE(r.output.find("dangling read"), std::string::npos) << r.output;
}

TEST(Pirc, QuarantineRungRunsFigure1ToCompletion) {
  const RunResult r = run_pirc("--rung=quarantine " + kFigure1);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Pirc, RungKnobDoesNotChangeCleanProgramOutput) {
  const RunResult full = run_pirc(kSumtree + " -- 5");
  for (const char* rung : {"full", "sampled", "quarantine", "unguarded"}) {
    const RunResult r =
        run_pirc("--rung=" + std::string(rung) + " " + kSumtree + " -- 5");
    EXPECT_EQ(r.exit_code, 0) << rung << ": " << r.output;
    // The governor announces the forced policy shift on stderr; the program
    // output itself must be byte-identical to the full-guard run.
    EXPECT_NE(r.output.find(full.output), std::string::npos) << rung << ": "
                                                             << r.output;
  }
}

TEST(Pirc, BadRungOrSampleRateIsUsageError) {
  for (const char* flag :
       {"--rung=bogus", "--sample-rate=0", "--sample-rate=abc"}) {
    const RunResult r = run_pirc(std::string(flag) + " " + kSumtree);
    EXPECT_EQ(r.exit_code, 1) << flag << ": " << r.output;
    EXPECT_NE(r.output.find("usage"), std::string::npos) << flag;
  }
}

}  // namespace
