// Tests for the PIR parser.
#include <gtest/gtest.h>

#include "compiler/parser.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

TEST(Parser, ParsesFigure1) {
  const Module m = parse_module(dpg::testing::kFigure1);
  EXPECT_EQ(m.functions.size(), 3u);
  ASSERT_NE(m.find("main"), nullptr);
  ASSERT_NE(m.find("f"), nullptr);
  ASSERT_NE(m.find("g"), nullptr);
  EXPECT_EQ(m.find("g")->params.size(), 1u);
}

TEST(Parser, GlobalsAreIndexed) {
  const Module m = parse_module("global a\nglobal b\nfunc main() { ret }");
  EXPECT_EQ(m.globals.size(), 2u);
  EXPECT_EQ(m.global_index("a"), 0);
  EXPECT_EQ(m.global_index("b"), 1);
  EXPECT_EQ(m.global_index("c"), -1);
}

TEST(Parser, CommentsAndWhitespaceIgnored) {
  const Module m = parse_module(R"(
# leading comment
func main() {   # trailing comment
  x = const 5   # another
  out x
  ret
}
)");
  EXPECT_EQ(m.find("main")->body.size(), 3u);
}

TEST(Parser, LiteralMallocMaterializesConst) {
  const Module m = parse_module("func main() { p = malloc 3\n free p\n ret }");
  const Function& fn = *m.find("main");
  ASSERT_EQ(fn.body.size(), 4u);  // const, malloc, free, ret
  EXPECT_EQ(fn.body[0].op, Op::kConst);
  EXPECT_EQ(fn.body[0].imm, 3);
  EXPECT_EQ(fn.body[1].op, Op::kMalloc);
  EXPECT_EQ(fn.body[1].a, fn.body[0].dst);
}

TEST(Parser, RegisterMallocKeepsRegister) {
  const Module m =
      parse_module("func main() { n = const 4\n p = malloc n\n ret }");
  const Function& fn = *m.find("main");
  ASSERT_EQ(fn.body.size(), 3u);
  EXPECT_EQ(fn.body[1].op, Op::kMalloc);
}

TEST(Parser, BranchTargetsResolve) {
  const Module m = parse_module(R"(
func main() {
  i = const 0
top:
  one = const 1
  i = add i, one
  ten = const 10
  c = lt i, ten
  cbr c, top, done
done:
  ret
}
)");
  const Function& fn = *m.find("main");
  const Instr& cbr = fn.body[5];
  ASSERT_EQ(cbr.op, Op::kCbr);
  EXPECT_EQ(cbr.target, 1);   // "top" is instruction index 1
  EXPECT_EQ(cbr.target2, 6);  // "done" is the ret
}

TEST(Parser, RetWithAndWithoutValue) {
  const Module m = parse_module(R"(
func id(x) { ret x }
func main() { v = call id(v0)
  out v
  ret }
)");
  EXPECT_GE(m.find("id")->body.size(), 1u);
  EXPECT_EQ(m.find("id")->body[0].op, Op::kRet);
  EXPECT_GE(m.find("id")->body[0].a, 0);
  const auto& main_body = m.find("main")->body;
  EXPECT_EQ(main_body.back().op, Op::kRet);
  EXPECT_EQ(main_body.back().a, -1);
}

TEST(Parser, BareRetBeforeStatementDoesNotConsumeIt) {
  const Module m = parse_module(R"(
func main() {
  x = const 1
  ret
}
)");
  ASSERT_EQ(m.find("main")->body.size(), 2u);
  EXPECT_EQ(m.find("main")->body[1].op, Op::kRet);
  EXPECT_EQ(m.find("main")->body[1].a, -1);
}

TEST(Parser, CallStatementAndExpression) {
  const Module m = parse_module(R"(
func helper(a, b) { s = add a, b
  ret s }
func main() {
  x = const 1
  y = const 2
  call helper(x, y)
  z = call helper(x, y)
  out z
  ret
}
)");
  const auto& body = m.find("main")->body;
  EXPECT_EQ(body[2].op, Op::kCall);
  EXPECT_EQ(body[2].dst, -1);
  EXPECT_EQ(body[3].op, Op::kCall);
  EXPECT_GE(body[3].dst, 0);
  EXPECT_EQ(body[3].args.size(), 2u);
}

TEST(Parser, SiteIdsAreUniqueAndSequential) {
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  q = malloc 1
  free p
  free q
  ret
}
)");
  const auto& body = m.find("main")->body;
  // body: const, malloc, const, malloc, free, free, ret
  EXPECT_EQ(body[1].site, 1u);
  EXPECT_EQ(body[3].site, 2u);
  EXPECT_EQ(body[4].site, 3u);
  EXPECT_EQ(body[5].site, 4u);
}

TEST(Parser, ErrorOnUnknownOperation) {
  EXPECT_THROW(parse_module("func main() { x = frobnicate y\n ret }"),
               ParseError);
}

TEST(Parser, ErrorOnUndefinedLabel) {
  EXPECT_THROW(parse_module("func main() { br nowhere\n ret }"), ParseError);
}

TEST(Parser, ErrorOnUnknownGlobal) {
  EXPECT_THROW(parse_module("func main() { x = loadg nope\n ret }"),
               ParseError);
}

TEST(Parser, ErrorOnGarbageTopLevel) {
  EXPECT_THROW(parse_module("banana"), ParseError);
}

TEST(Parser, ErrorReportsLineNumber) {
  try {
    static_cast<void>(parse_module("func main() {\n  x = bogus y\n  ret\n}"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Parser, NegativeConstants) {
  const Module m = parse_module("func main() { x = const -5\n out x\n ret }");
  EXPECT_EQ(m.find("main")->body[0].imm, -5);
}

TEST(Parser, DumpContainsStructure) {
  const Module m = parse_module(dpg::testing::kFigure1);
  const std::string text = m.dump();
  EXPECT_NE(text.find("func f()"), std::string::npos);
  EXPECT_NE(text.find("malloc"), std::string::npos);
  EXPECT_NE(text.find("getfield"), std::string::npos);
}

TEST(Parser, AllSampleProgramsParse) {
  for (const char* src :
       {dpg::testing::kFigure1, dpg::testing::kFigure1Fixed,
        dpg::testing::kGlobalEscape, dpg::testing::kLocalPool,
        dpg::testing::kRecursive, dpg::testing::kTwoPools}) {
    EXPECT_NO_THROW((void)parse_module(src));
  }
}

}  // namespace
}  // namespace dpg::compiler
