// Unit tests for the virtual-memory substrate: page math, the memfd arena,
// physical aliasing, page protection, MAP_FIXED reuse, the mremap strategy,
// and the VA free list.
#include <gtest/gtest.h>

#include <cstring>

#include "vm/page.h"
#include "vm/phys_arena.h"
#include "vm/shadow_map.h"
#include "vm/va_freelist.h"
#include "vm/vm_stats.h"

namespace dpg::vm {
namespace {

TEST(PageMath, RoundingAndOffsets) {
  EXPECT_EQ(page_down(0x1234), 0x1000u);
  EXPECT_EQ(page_down(0x1000), 0x1000u);
  EXPECT_EQ(page_up(0x1001), 0x2000u);
  EXPECT_EQ(page_up(0x1000), 0x1000u);
  EXPECT_EQ(page_up(0), 0u);
  EXPECT_EQ(page_offset(0x1234), 0x234u);
  EXPECT_EQ(pages_for(1), 1u);
  EXPECT_EQ(pages_for(4096), 1u);
  EXPECT_EQ(pages_for(4097), 2u);
  EXPECT_EQ(pages_for(0), 0u);
}

TEST(PageRange, ContainsAndEnd) {
  const PageRange r{0x10000, 2 * kPageSize};
  EXPECT_EQ(r.end(), 0x10000u + 2 * kPageSize);
  EXPECT_EQ(r.pages(), 2u);
  EXPECT_TRUE(r.contains(0x10000));
  EXPECT_TRUE(r.contains(0x10000 + 2 * kPageSize - 1));
  EXPECT_FALSE(r.contains(0x10000 + 2 * kPageSize));
  EXPECT_FALSE(r.contains(0xFFFF));
}

TEST(PhysArena, ExtendGrowsPhysicalBytes) {
  PhysArena arena(1u << 24);
  EXPECT_EQ(arena.physical_bytes(), 0u);
  void* a = arena.extend(100);
  EXPECT_EQ(arena.physical_bytes(), kPageSize);
  void* b = arena.extend(2 * kPageSize);
  EXPECT_EQ(arena.physical_bytes(), 3 * kPageSize);
  EXPECT_NE(a, b);
  EXPECT_TRUE(arena.contains_canonical(a));
  EXPECT_TRUE(arena.contains_canonical(b));
}

TEST(PhysArena, ExtentsAreContiguousAndWritable) {
  PhysArena arena(1u << 24);
  auto* a = static_cast<std::byte*>(arena.extend(kPageSize));
  auto* b = static_cast<std::byte*>(arena.extend(kPageSize));
  EXPECT_EQ(a + kPageSize, b);
  std::memset(a, 0x5A, kPageSize);
  std::memset(b, 0xA5, kPageSize);
  EXPECT_EQ(static_cast<unsigned char>(a[kPageSize - 1]), 0x5A);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xA5);
}

TEST(PhysArena, OffsetOfMatchesExtensionOrder) {
  PhysArena arena(1u << 24);
  void* a = arena.extend(kPageSize);
  void* b = arena.extend(kPageSize);
  EXPECT_EQ(arena.offset_of(a), 0u);
  EXPECT_EQ(arena.offset_of(b), kPageSize);
}

TEST(PhysArena, ShadowAliasesPhysicalMemory) {
  PhysArena arena(1u << 24);
  auto* canonical = static_cast<char*>(arena.extend(kPageSize));
  auto* shadow = static_cast<char*>(arena.map_shadow(canonical, kPageSize));
  ASSERT_NE(shadow, nullptr);
  EXPECT_NE(shadow, canonical);

  // Writes through one view are visible through the other: one physical page.
  std::strcpy(canonical, "via canonical");
  EXPECT_STREQ(shadow, "via canonical");
  std::strcpy(shadow + 100, "via shadow");
  EXPECT_STREQ(canonical + 100, "via shadow");
  arena.unmap(shadow, kPageSize);
}

TEST(PhysArena, MultiPageShadowSpan) {
  PhysArena arena(1u << 24);
  auto* canonical = static_cast<char*>(arena.extend(3 * kPageSize));
  auto* shadow = static_cast<char*>(arena.map_shadow(canonical, 3 * kPageSize));
  canonical[3 * kPageSize - 1] = 'z';
  EXPECT_EQ(shadow[3 * kPageSize - 1], 'z');
  arena.unmap(shadow, 3 * kPageSize);
}

TEST(PhysArena, ProtectNoneBlocksShadowButNotCanonical) {
  PhysArena arena(1u << 24);
  auto* canonical = static_cast<char*>(arena.extend(kPageSize));
  auto* shadow = static_cast<char*>(arena.map_shadow(canonical, kPageSize));
  canonical[0] = 'x';
  PhysArena::protect_none(shadow, kPageSize);
  // The canonical view still works even though the shadow is protected.
  canonical[0] = 'y';
  EXPECT_EQ(canonical[0], 'y');
  PhysArena::protect_rw(shadow, kPageSize);
  EXPECT_EQ(shadow[0], 'y');
  arena.unmap(shadow, kPageSize);
}

TEST(PhysArena, MapFixedReplacesOldMapping) {
  PhysArena arena(1u << 24);
  auto* c1 = static_cast<char*>(arena.extend(kPageSize));
  auto* c2 = static_cast<char*>(arena.extend(kPageSize));
  auto* shadow = static_cast<char*>(arena.map_shadow(c1, kPageSize));
  c1[0] = '1';
  c2[0] = '2';
  EXPECT_EQ(shadow[0], '1');
  // Protect, then reuse the same VA for a different canonical page.
  PhysArena::protect_none(shadow, kPageSize);
  auto* again = static_cast<char*>(arena.map_shadow(c2, kPageSize, shadow));
  EXPECT_EQ(again, shadow);
  EXPECT_EQ(shadow[0], '2');  // now aliases c2, and is RW again
  arena.unmap(shadow, kPageSize);
}

TEST(PhysArena, ExhaustionThrowsBadAlloc) {
  PhysArena arena(4 * kPageSize);
  (void)arena.extend(3 * kPageSize);
  EXPECT_THROW((void)arena.extend(2 * kPageSize), std::bad_alloc);
}

TEST(ShadowMapper, MemfdStrategyAliases) {
  PhysArena arena(1u << 24);
  ShadowMapper mapper(arena, AliasStrategy::kMemfd);
  auto* canonical = static_cast<char*>(arena.extend(kPageSize));
  auto* shadow = static_cast<char*>(mapper.alias(canonical, kPageSize));
  canonical[7] = 'q';
  EXPECT_EQ(shadow[7], 'q');
  arena.unmap(shadow, kPageSize);
}

TEST(ShadowMapper, MremapStrategyAliasesWhenSupported) {
  if (!ShadowMapper::mremap_alias_supported()) {
    GTEST_SKIP() << "kernel rejects mremap(old_size=0) duplication";
  }
  PhysArena arena(1u << 24);
  ShadowMapper mapper(arena, AliasStrategy::kMremap);
  const auto mremaps_before =
      syscall_counters().mremap.load(std::memory_order_relaxed);
  auto* canonical = static_cast<char*>(arena.extend(kPageSize));
  auto* shadow = static_cast<char*>(mapper.alias(canonical, kPageSize));
  canonical[3] = 'm';
  EXPECT_EQ(shadow[3], 'm');
  EXPECT_GT(syscall_counters().mremap.load(std::memory_order_relaxed),
            mremaps_before);
  arena.unmap(shadow, kPageSize);
}

TEST(ShadowMapper, AutoPicksSomethingWorkable) {
  PhysArena arena(1u << 24);
  ShadowMapper mapper(arena, AliasStrategy::kAuto);
  EXPECT_NE(mapper.strategy(), AliasStrategy::kAuto);
  auto* canonical = static_cast<char*>(arena.extend(kPageSize));
  auto* shadow = static_cast<char*>(mapper.alias(canonical, kPageSize));
  canonical[0] = 'a';
  EXPECT_EQ(shadow[0], 'a');
  arena.unmap(shadow, kPageSize);
}

TEST(ShadowMapper, FixedPlacementAlwaysUsesMemfd) {
  PhysArena arena(1u << 24);
  ShadowMapper mapper(arena, AliasStrategy::kMremap);
  auto* canonical = static_cast<char*>(arena.extend(kPageSize));
  auto* first = static_cast<char*>(mapper.alias(canonical, kPageSize));
  auto* second = static_cast<char*>(mapper.alias(canonical, kPageSize, first));
  EXPECT_EQ(first, second);
  arena.unmap(first, kPageSize);
}

TEST(VaFreeList, PutTakeExact) {
  VaFreeList list;
  list.put(PageRange{0x100000, kPageSize});
  EXPECT_EQ(list.bytes(), kPageSize);
  EXPECT_EQ(list.ranges(), 1u);
  const auto taken = list.take(kPageSize);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->base, 0x100000u);
  EXPECT_EQ(taken->length, kPageSize);
  EXPECT_EQ(list.bytes(), 0u);
}

TEST(VaFreeList, TakeEmptyReturnsNullopt) {
  VaFreeList list;
  EXPECT_FALSE(list.take(kPageSize).has_value());
}

TEST(VaFreeList, SplitsLargerRange) {
  VaFreeList list;
  list.put(PageRange{0x200000, 4 * kPageSize});
  const auto taken = list.take(kPageSize);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->length, kPageSize);
  EXPECT_EQ(list.bytes(), 3 * kPageSize);
  // The remainder is still usable.
  const auto rest = list.take(3 * kPageSize);
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->length, 3 * kPageSize);
}

TEST(VaFreeList, PrefersExactBucket) {
  VaFreeList list;
  list.put(PageRange{0x300000, 4 * kPageSize});
  list.put(PageRange{0x400000, kPageSize});
  const auto taken = list.take(kPageSize);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->base, 0x400000u);  // exact match, not a split
}

TEST(VaFreeList, TakeTooLargeFails) {
  VaFreeList list;
  list.put(PageRange{0x500000, 2 * kPageSize});
  EXPECT_FALSE(list.take(3 * kPageSize).has_value());
  EXPECT_EQ(list.bytes(), 2 * kPageSize);
}

TEST(VaFreeList, RoundsRequestsUpToPages) {
  VaFreeList list;
  list.put(PageRange{0x600000, 2 * kPageSize});
  const auto taken = list.take(100);  // rounds to one page
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->length, kPageSize);
}

TEST(VaFreeList, DrainVisitsEverything) {
  VaFreeList list;
  list.put(PageRange{0x700000, kPageSize});
  list.put(PageRange{0x800000, 2 * kPageSize});
  std::size_t drained = 0;
  list.drain([&](PageRange r) { drained += r.length; });
  EXPECT_EQ(drained, 3 * kPageSize);
  EXPECT_EQ(list.bytes(), 0u);
  EXPECT_EQ(list.ranges(), 0u);
}

TEST(VaFreeList, ZeroLengthPutIgnored) {
  VaFreeList list;
  list.put(PageRange{0x900000, 0});
  EXPECT_EQ(list.ranges(), 0u);
}

TEST(VaFreeList, TrimHysteresisDampsOscillation) {
  VaFreeList list;
  list.set_trim_limit(4);
  list.set_trim_hysteresis(3);
  std::uintptr_t next = 0x600000;
  // Filling to the limit starts the streak (the 4th put checks over-water);
  // only the 3rd consecutive over-water donation pays the drain.
  for (int i = 0; i < 4; ++i) list.put(PageRange{next += kPageSize, kPageSize});
  EXPECT_EQ(list.trims(), 0u);
  list.put(PageRange{next += kPageSize, kPageSize});  // streak 2
  EXPECT_EQ(list.trims(), 0u);
  EXPECT_EQ(list.ranges(), 5u);
  list.put(PageRange{next += kPageSize, kPageSize});  // streak 3: drain
  EXPECT_EQ(list.trims(), 1u);
  EXPECT_EQ(list.ranges(), 0u);
}

TEST(VaFreeList, TakeResetsTrimStreakOnlyWhenUnderLimit) {
  VaFreeList list;
  list.set_trim_limit(4);
  list.set_trim_hysteresis(3);
  std::uintptr_t next = 0x700000;
  for (int i = 0; i < 5; ++i) list.put(PageRange{next += kPageSize, kPageSize});
  // Streak 2 (the 4th and 5th puts were over-water). A take that leaves the
  // count AT the limit has not relieved the pressure, so it must not restart
  // the streak — the list is still one donation away from the same state.
  (void)list.take(kPageSize);  // count 4 == limit: streak preserved
  list.put(PageRange{next += kPageSize, kPageSize});  // streak 3: drain
  EXPECT_EQ(list.trims(), 1u);
  EXPECT_EQ(list.ranges(), 0u);

  // A take that pulls the count back UNDER the limit does relieve it: the
  // streak restarts and a fresh run of over-water donations is required.
  next = 0xa00000;
  for (int i = 0; i < 5; ++i) list.put(PageRange{next += kPageSize, kPageSize});
  (void)list.take(kPageSize);  // count 4: preserved
  (void)list.take(kPageSize);  // count 3 < limit: streak reset
  list.put(PageRange{next += kPageSize, kPageSize});  // streak 1
  list.put(PageRange{next += kPageSize, kPageSize});  // streak 2
  EXPECT_EQ(list.trims(), 1u);  // not yet
  list.put(PageRange{next += kPageSize, kPageSize});  // streak 3: drain
  EXPECT_EQ(list.trims(), 2u);
}

TEST(SyscallCounters, TotalSumsComponents) {
  SyscallCounters counters;
  counters.mmap = 2;
  counters.mprotect = 3;
  counters.mremap = 4;
  counters.munmap = 1;
  counters.ftruncate = 5;
  EXPECT_EQ(counters.total(), 15u);
  counters.reset();
  EXPECT_EQ(counters.total(), 0u);
}

TEST(SyscallCounters, ArenaOperationsAreCounted) {
  auto& counters = syscall_counters();
  const auto mmap_before = counters.mmap.load(std::memory_order_relaxed);
  const auto ftruncate_before = counters.ftruncate.load(std::memory_order_relaxed);
  PhysArena arena(1u << 22);
  (void)arena.extend(kPageSize);
  EXPECT_GT(counters.mmap.load(std::memory_order_relaxed), mmap_before);
  EXPECT_GT(counters.ftruncate.load(std::memory_order_relaxed), ftruncate_before);
}

// Property sweep: put/take round trips preserve total bytes for varied sizes.
class VaFreeListSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VaFreeListSweep, SplitConservesBytes) {
  const std::size_t donor_pages = GetParam();
  VaFreeList list;
  list.put(PageRange{0x10000000, donor_pages * kPageSize});
  std::size_t taken_total = 0;
  while (auto taken = list.take(kPageSize)) {
    taken_total += taken->length;
  }
  EXPECT_EQ(taken_total, donor_pages * kPageSize);
}

INSTANTIATE_TEST_SUITE_P(Donors, VaFreeListSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64, 257));

}  // namespace
}  // namespace dpg::vm
