// Unit tests for the async-signal-safe shadow registry.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "workloads/common.h"

namespace dpg::core {
namespace {

std::unique_ptr<ObjectRecord> make_record(std::uintptr_t base,
                                           std::size_t pages) {
  auto rec = std::make_unique<ObjectRecord>();
  rec->shadow_base = base;
  rec->span_length = pages * vm::kPageSize;
  rec->user_shadow = base + 8;
  rec->user_size = 24;
  return rec;
}

TEST(Registry, InsertAndLookupSinglePage) {
  ShadowRegistry reg(64);
  auto rec = make_record(0x7000000000, 1);
  reg.insert(*rec);
  EXPECT_EQ(reg.lookup(0x7000000000), rec.get());
  EXPECT_EQ(reg.lookup(0x7000000FFF), rec.get());  // interior address, same page
  EXPECT_EQ(reg.lookup(0x7000001000), nullptr);
  EXPECT_EQ(reg.entries(), 1u);
  reg.erase(*rec);
}

TEST(Registry, MultiPageSpanMapsEveryPage) {
  ShadowRegistry reg(64);
  auto rec = make_record(0x7000010000, 3);
  reg.insert(*rec);
  EXPECT_EQ(reg.lookup(0x7000010000), rec.get());
  EXPECT_EQ(reg.lookup(0x7000011800), rec.get());
  EXPECT_EQ(reg.lookup(0x7000012FFF), rec.get());
  EXPECT_EQ(reg.lookup(0x7000013000), nullptr);
  EXPECT_EQ(reg.entries(), 3u);
  reg.erase(*rec);
  EXPECT_EQ(reg.entries(), 0u);
}

TEST(Registry, EraseRemovesOnlyTargetSpan) {
  ShadowRegistry reg(64);
  auto a = make_record(0x7000020000, 1);
  auto b = make_record(0x7000021000, 1);
  reg.insert(*a);
  reg.insert(*b);
  reg.erase(*a);
  EXPECT_EQ(reg.lookup(0x7000020000), nullptr);
  EXPECT_EQ(reg.lookup(0x7000021000), b.get());
  reg.erase(*b);
}

TEST(Registry, EraseIsIdempotent) {
  ShadowRegistry reg(64);
  auto rec = make_record(0x7000030000, 1);
  reg.insert(*rec);
  reg.erase(*rec);
  EXPECT_NO_FATAL_FAILURE(reg.erase(*rec));
  EXPECT_EQ(reg.lookup(0x7000030000), nullptr);
}

TEST(Registry, ReinsertAfterEraseWorks) {
  ShadowRegistry reg(64);
  auto a = make_record(0x7000040000, 1);
  reg.insert(*a);
  reg.erase(*a);
  auto b = make_record(0x7000040000, 1);  // same page, new record
  reg.insert(*b);
  EXPECT_EQ(reg.lookup(0x7000040000), b.get());
  reg.erase(*b);
}

TEST(Registry, UpdateExistingKeyReplacesValue) {
  ShadowRegistry reg(64);
  auto a = make_record(0x7000050000, 1);
  auto b = make_record(0x7000050000, 1);
  reg.insert(*a);
  reg.insert(*b);  // same page: value replaced
  EXPECT_EQ(reg.lookup(0x7000050000), b.get());
  reg.erase(*b);
}

TEST(Registry, GrowthPreservesAllEntries) {
  ShadowRegistry reg(16);  // tiny: forces many rehashes
  std::vector<std::unique_ptr<ObjectRecord>> records;
  for (std::uintptr_t i = 0; i < 5000; ++i) {
    auto rec = make_record(0x7100000000 + i * vm::kPageSize, 1);
    reg.insert(*rec);
    records.push_back(std::move(rec));
  }
  EXPECT_EQ(reg.entries(), 5000u);
  for (std::uintptr_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(reg.lookup(0x7100000000 + i * vm::kPageSize),
              records[static_cast<std::size_t>(i)].get())
        << i;
  }
  for (auto& rec : records) reg.erase(*rec);
  EXPECT_EQ(reg.entries(), 0u);
}

TEST(Registry, TombstoneChurnDoesNotLoseEntries) {
  ShadowRegistry reg(32);
  workloads::Rng rng(99);
  std::vector<std::unique_ptr<ObjectRecord>> live;
  for (int round = 0; round < 4000; ++round) {
    if (live.size() < 20 || rng.below(2) == 0) {
      auto rec = make_record(
          0x7200000000 + rng.below(1u << 20) * vm::kPageSize, 1);
      // Avoid duplicate pages in this test.
      if (reg.lookup(rec->shadow_base) != nullptr) continue;
      reg.insert(*rec);
      live.push_back(std::move(rec));
    } else {
      const std::size_t pick = rng.below(live.size());
      reg.erase(*live[pick]);
      EXPECT_EQ(reg.lookup(live[pick]->shadow_base), nullptr);
      live[pick] = std::move(live.back());
      live.pop_back();
    }
  }
  for (auto& rec : live) {
    EXPECT_EQ(reg.lookup(rec->shadow_base), rec.get());
    reg.erase(*rec);
  }
}

TEST(Registry, CompactionUnderConcurrentReadersStaysCorrect) {
  // Fresh-key insert/erase churn accumulates tombstones until the table
  // rehashes — often into a SAME-size replacement (a compaction). The old
  // table is freed as soon as the reader epoch drains, so concurrent lookups
  // racing dozens of such swaps must keep resolving hits and misses exactly
  // (this pins the endurance-soak fix: compacted-out tables used to be
  // retired forever, a table-sized leak per compaction).
  ShadowRegistry reg(64);
  auto anchor = make_record(0x7400000000, 1);
  reg.insert(*anchor);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_EQ(reg.lookup(0x7400000000), anchor.get());
        EXPECT_EQ(reg.lookup(0x7F00000000), nullptr);
      }
    });
  }
  // Every insert uses a never-seen page, so tombstones only accumulate and
  // the table compacts repeatedly underneath the readers.
  std::uintptr_t next = 0x7500000000;
  for (int round = 0; round < 300; ++round) {
    std::vector<std::unique_ptr<ObjectRecord>> batch;
    for (int i = 0; i < 64; ++i) {
      auto rec = make_record(next += vm::kPageSize, 1);
      reg.insert(*rec);
      batch.push_back(std::move(rec));
    }
    for (auto& rec : batch) {
      EXPECT_EQ(reg.lookup(rec->shadow_base), rec.get());
      reg.erase(*rec);
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(reg.entries(), 1u);
  reg.erase(*anchor);
}

TEST(Registry, LookupMissOnEmptyRegistry) {
  ShadowRegistry reg(64);
  EXPECT_EQ(reg.lookup(0xDEADBEEF000), nullptr);
}

TEST(Registry, GlobalSingletonIsStable) {
  ShadowRegistry& a = ShadowRegistry::global();
  ShadowRegistry& b = ShadowRegistry::global();
  EXPECT_EQ(&a, &b);
}

TEST(Registry, StateTransitionsVisibleThroughLookup) {
  ShadowRegistry reg(64);
  auto rec = make_record(0x7000060000, 1);
  reg.insert(*rec);
  const ObjectRecord* found = reg.lookup(0x7000060100);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->state.load(), ObjectState::kLive);
  rec->state.store(ObjectState::kFreed);
  EXPECT_EQ(found->state.load(), ObjectState::kFreed);
  reg.erase(*rec);
}

}  // namespace
}  // namespace dpg::core
