// Tests for the observability layer (src/obs): flight recorder, latency
// histograms, counter snapshots under contention, the metrics exporter, and
// the fault-time trace enrichment.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "core/stats.h"
#include "obs/env.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpg {
namespace {

using obs::EventKind;
using obs::LatencyHistogram;
using obs::TraceEvent;
using obs::TraceRing;

// ---------------------------------------------------------------------------
// Flight recorder ring
// ---------------------------------------------------------------------------

TEST(TraceRingTest, CapturesPushedEventsOldestFirst) {
  TraceRing ring;
  ring.push(EventKind::kAlloc, 0x1000, 64, 7, 1, 100);
  ring.push(EventKind::kFree, 0x1000, 64, 8, 1, 200);
  TraceEvent out[4];
  ASSERT_EQ(ring.capture(out, 4), 2u);
  EXPECT_EQ(out[0].kind, static_cast<std::uint16_t>(EventKind::kAlloc));
  EXPECT_EQ(out[0].addr, 0x1000u);
  EXPECT_EQ(out[0].arg, 64u);
  EXPECT_EQ(out[0].site, 7u);
  EXPECT_EQ(out[0].tid, 1u);
  EXPECT_EQ(out[0].ns, 100u);
  EXPECT_EQ(out[1].kind, static_cast<std::uint16_t>(EventKind::kFree));
  EXPECT_EQ(out[1].ns, 200u);
}

TEST(TraceRingTest, WrapAroundKeepsNewestCapacityEvents) {
  TraceRing ring;
  const std::size_t total = TraceRing::kCapacity + 50;
  for (std::size_t i = 0; i < total; ++i) {
    ring.push(EventKind::kAlloc, i, i * 2, 0, 0, /*ns=*/i);
  }
  EXPECT_EQ(ring.pushed(), total);
  std::vector<TraceEvent> out(TraceRing::kCapacity + 8);
  const std::size_t n = ring.capture(out.data(), out.size());
  ASSERT_EQ(n, TraceRing::kCapacity);  // oldest 50 overwritten
  EXPECT_EQ(out[0].ns, 50u);           // oldest surviving event
  EXPECT_EQ(out[n - 1].ns, total - 1);  // newest
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(out[i].ns, out[i - 1].ns + 1);
  }
}

TEST(TraceRingTest, CaptureTruncatesToNewestMax) {
  TraceRing ring;
  for (std::size_t i = 0; i < 40; ++i) {
    ring.push(EventKind::kFree, i, 0, 0, 0, i);
  }
  TraceEvent out[16];
  ASSERT_EQ(ring.capture(out, 16), 16u);
  EXPECT_EQ(out[0].ns, 24u);   // 40 - 16
  EXPECT_EQ(out[15].ns, 39u);  // newest last
}

TEST(TraceRingTest, ConcurrentPushersLoseNoEvents) {
  TraceRing ring;
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    TraceEvent out[TraceRing::kCapacity];
    while (!stop.load(std::memory_order_relaxed)) {
      (void)ring.capture(out, TraceRing::kCapacity);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        ring.push(EventKind::kAlloc, i, i, 0, static_cast<std::uint16_t>(t),
                  i);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  // fetch_add head claims a distinct slot per push: no event is dropped.
  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
  TraceEvent out[TraceRing::kCapacity];
  ASSERT_EQ(ring.capture(out, TraceRing::kCapacity), TraceRing::kCapacity);
  for (const TraceEvent& e : out) {
    EXPECT_EQ(e.kind, static_cast<std::uint16_t>(EventKind::kAlloc));
    EXPECT_LT(static_cast<int>(e.tid), kThreads);
  }
}

// ---------------------------------------------------------------------------
// Latency histogram geometry
// ---------------------------------------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const unsigned i = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(i, static_cast<unsigned>(v));
    EXPECT_EQ(LatencyHistogram::bucket_low(i), v);
    EXPECT_EQ(LatencyHistogram::bucket_high(i), v);
  }
}

TEST(HistogramTest, BucketBoundariesRoundTrip) {
  const std::uint64_t probes[] = {1,    31,         32,         33,
                                  63,   64,         65,         1023,
                                  1024, 4096,       65535,      65536,
                                  1u << 20,         (1u << 20) + 1,
                                  std::uint64_t{1} << 40,
                                  (std::uint64_t{1} << 40) + 12345,
                                  ~std::uint64_t{0}};
  for (std::uint64_t v : probes) {
    const unsigned i = LatencyHistogram::bucket_index(v);
    ASSERT_LT(i, LatencyHistogram::kBuckets) << v;
    EXPECT_LE(LatencyHistogram::bucket_low(i), v) << v;
    EXPECT_GE(LatencyHistogram::bucket_high(i), v) << v;
    // Round trip: both boundary values land back in the same bucket.
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_low(i)),
              i)
        << v;
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_high(i)),
              i)
        << v;
  }
}

TEST(HistogramTest, BucketsArePerfectlyContiguous) {
  // Across the first several octaves, bucket i+1 starts exactly one past
  // bucket i's end — no gaps, no overlaps.
  const unsigned limit = LatencyHistogram::bucket_index(1u << 12);
  for (unsigned i = 0; i < limit; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_high(i) + 1,
              LatencyHistogram::bucket_low(i + 1))
        << "bucket " << i;
  }
}

TEST(HistogramTest, RelativeErrorBoundedByOneOverSubBuckets) {
  // HDR property: reporting bucket_high(v) overstates v by at most 1/32.
  for (std::uint64_t v = LatencyHistogram::kSubBuckets; v < (1u << 16);
       v += 37) {
    const unsigned i = LatencyHistogram::bucket_index(v);
    const std::uint64_t high = LatencyHistogram::bucket_high(i);
    EXPECT_LE((high - v) * LatencyHistogram::kSubBuckets, v) << v;
  }
}

TEST(HistogramTest, PercentilesAndMoments) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(100);
  for (int i = 0; i < 100; ++i) h.record(10000);
  EXPECT_EQ(h.count(), 200u);
  EXPECT_EQ(h.sum(), 100u * 100 + 100u * 10000);
  EXPECT_EQ(h.max_value(), 10000u);
  // p50 falls in the bucket holding 100 (bucket [100, 101]).
  EXPECT_GE(h.percentile(50), 100u);
  EXPECT_LE(h.percentile(50), 101u);
  // p99 falls in the 10000 bucket; clamped to the observed max.
  EXPECT_EQ(h.percentile(99), 10000u);
  EXPECT_EQ(h.percentile(100), 10000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(HistogramTest, ConcurrentRecordersAreExactAfterJoin) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h.percentile(95);
      (void)h.count();
    }
  });
  std::vector<std::thread> writers;
  std::uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(i % 1000);
    });
    for (std::uint64_t i = 0; i < kPerThread; ++i) expect_sum += i % 1000;
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.sum(), expect_sum);
  EXPECT_EQ(h.max_value(), 999u);
  EXPECT_LE(h.percentile(50), 999u);
}

// ---------------------------------------------------------------------------
// GuardCounters snapshot under contention
// ---------------------------------------------------------------------------

TEST(GuardCountersTest, SnapshotUnderContentionIsPerCounterAccurate) {
  core::GuardCounters c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const core::GuardStats s = c.snapshot();
      // A lock-free snapshot is per-counter accurate (never exceeds what was
      // written) but carries cross-counter skew — see the contract in
      // stats.h — so we only bound each counter independently.
      EXPECT_LE(s.allocations, kThreads * kPerThread);
      EXPECT_LE(s.frees, kThreads * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.allocations.fetch_add(1, std::memory_order_relaxed);
        c.guarded_bytes.fetch_add(64, std::memory_order_relaxed);
        c.frees.fetch_add(1, std::memory_order_relaxed);
        c.guarded_bytes.fetch_sub(64, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const core::GuardStats s = c.snapshot();
  EXPECT_EQ(s.allocations, kThreads * kPerThread);
  EXPECT_EQ(s.frees, kThreads * kPerThread);
  EXPECT_EQ(s.guarded_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Env parsing helpers
// ---------------------------------------------------------------------------

TEST(EnvTest, GarbageFallsBackToDefault) {
  setenv("DPG_TEST_LONG", "abc", 1);
  EXPECT_EQ(obs::env_long("DPG_TEST_LONG", 42), 42);
  setenv("DPG_TEST_LONG", "12junk", 1);  // partial parse is rejected too
  EXPECT_EQ(obs::env_long("DPG_TEST_LONG", 42), 42);
  setenv("DPG_TEST_DBL", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(obs::env_double("DPG_TEST_DBL", 1.5, 0.0, 10.0), 1.5);
  setenv("DPG_TEST_FLAG", "maybe", 1);
  EXPECT_TRUE(obs::env_flag("DPG_TEST_FLAG", true));
  EXPECT_FALSE(obs::env_flag("DPG_TEST_FLAG", false));
  unsetenv("DPG_TEST_LONG");
  unsetenv("DPG_TEST_DBL");
  unsetenv("DPG_TEST_FLAG");
}

TEST(EnvTest, ValidValuesParse) {
  setenv("DPG_TEST_LONG", "17", 1);
  EXPECT_EQ(obs::env_long("DPG_TEST_LONG", 42), 17);
  setenv("DPG_TEST_DBL", "2.25", 1);
  EXPECT_DOUBLE_EQ(obs::env_double("DPG_TEST_DBL", 1.0, 0.0, 10.0), 2.25);
  for (const char* yes : {"1", "true", "on", "yes"}) {
    setenv("DPG_TEST_FLAG", yes, 1);
    EXPECT_TRUE(obs::env_flag("DPG_TEST_FLAG", false)) << yes;
  }
  for (const char* no : {"0", "false", "off", "no"}) {
    setenv("DPG_TEST_FLAG", no, 1);
    EXPECT_FALSE(obs::env_flag("DPG_TEST_FLAG", true)) << no;
  }
  unsetenv("DPG_TEST_LONG");
  unsetenv("DPG_TEST_DBL");
  unsetenv("DPG_TEST_FLAG");
}

TEST(EnvTest, OutOfRangeFallsBack) {
  setenv("DPG_TEST_LONG", "100000", 1);
  EXPECT_EQ(obs::env_long("DPG_TEST_LONG", 3, 1, 10000), 3);
  setenv("DPG_TEST_DBL", "1e9", 1);
  EXPECT_DOUBLE_EQ(obs::env_double("DPG_TEST_DBL", 1.0, 1e-4, 1e6), 1.0);
  unsetenv("DPG_TEST_LONG");
  unsetenv("DPG_TEST_DBL");
}

TEST(EnvTest, UnsetAndEmptyAreFallback) {
  unsetenv("DPG_TEST_LONG");
  EXPECT_EQ(obs::env_long("DPG_TEST_LONG", 9), 9);
  EXPECT_EQ(obs::env_str("DPG_TEST_LONG"), nullptr);
  setenv("DPG_TEST_LONG", "", 1);
  EXPECT_EQ(obs::env_str("DPG_TEST_LONG"), nullptr);
  unsetenv("DPG_TEST_LONG");
}

// ---------------------------------------------------------------------------
// Exporter round trip
// ---------------------------------------------------------------------------

// Minimal structural JSON check: balanced {}/[] outside strings, non-empty.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char ch = s[i];
    if (in_str) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_str = false;
      }
      continue;
    }
    if (ch == '"') in_str = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str && !s.empty();
}

std::string slurp(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(ExporterTest, RenderJsonIsStructuredAndComplete) {
  obs::set_trace_enabled(true);
  obs::hist(obs::Hist::kAllocNs).record(1234);
  obs::hist(obs::Hist::kMprotectNs).record(777);
  obs::record_event(EventKind::kAlloc, 0xABC, 64);
  static char buf[64 * 1024];
  const std::size_t n = obs::render_json(buf, sizeof buf, "test");
  ASSERT_GT(n, 0u);
  const std::string s(buf, n);
  EXPECT_TRUE(json_balanced(s)) << s;
  EXPECT_NE(s.find("\"type\":\"dpg_metrics\""), std::string::npos);
  EXPECT_NE(s.find("\"reason\":\"test\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"alloc_ns\""), std::string::npos);
  EXPECT_NE(s.find("\"mprotect_ns\""), std::string::npos);
  EXPECT_NE(s.find("\"p50\""), std::string::npos);
  EXPECT_NE(s.find("\"p95\""), std::string::npos);
  EXPECT_NE(s.find("\"p99\""), std::string::npos);
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"trace\""), std::string::npos);
  obs::set_trace_enabled(false);
}

TEST(ExporterTest, RenderJsonReportsOverflowAsZero) {
  char tiny[16];
  EXPECT_EQ(obs::render_json(tiny, sizeof tiny, "test"), 0u);
}

TEST(ExporterTest, RenderPrometheusExposesQuantiles) {
  obs::set_trace_enabled(true);
  obs::hist(obs::Hist::kFreeNs).record(999);
  static char buf[64 * 1024];
  const std::size_t n = obs::render_prometheus(buf, sizeof buf);
  ASSERT_GT(n, 0u);
  const std::string s(buf, n);
  EXPECT_NE(s.find("# TYPE"), std::string::npos);
  EXPECT_NE(s.find("dpg_free_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(s.find("dpg_free_ns{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(s.find("dpg_free_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(s.find("dpg_free_ns_count"), std::string::npos);
  EXPECT_NE(s.find("dpg_free_ns_sum"), std::string::npos);
  obs::set_trace_enabled(false);
}

TEST(ExporterTest, DumpMetricsAppendsJsonLines) {
  const std::string path =
      ::testing::TempDir() + "dpg_test_metrics.jsonl";
  std::remove(path.c_str());
  obs::set_trace_enabled(true);
  obs::hist(obs::Hist::kAllocNs).record(555);
  obs::set_metrics_path(path.c_str());
  EXPECT_TRUE(obs::dump_metrics("test-a"));
  EXPECT_TRUE(obs::dump_metrics("test-b"));  // appends a second line
  obs::set_metrics_path(nullptr);
  EXPECT_FALSE(obs::dump_metrics("test-c"));  // no sink configured
  obs::set_trace_enabled(false);

  const std::string content = slurp(path.c_str());
  ASSERT_FALSE(content.empty());
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"reason\":\"test-a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"reason\":\"test-b\""), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("{\"type\":\"dpg_metrics\"", 0), 0u);
    EXPECT_TRUE(json_balanced(line)) << line;
  }
  std::remove(path.c_str());
}

TEST(ExporterTest, PrometheusFileIsRewrittenEachDump) {
  const std::string jsonl =
      ::testing::TempDir() + "dpg_test_metrics2.jsonl";
  const std::string prom = ::testing::TempDir() + "dpg_test_metrics.prom";
  std::remove(jsonl.c_str());
  std::remove(prom.c_str());
  obs::set_trace_enabled(true);
  obs::set_metrics_path(jsonl.c_str());
  obs::set_prometheus_path(prom.c_str());
  EXPECT_TRUE(obs::dump_metrics("prom-1"));
  const std::string first = slurp(prom.c_str());
  EXPECT_TRUE(obs::dump_metrics("prom-2"));
  const std::string second = slurp(prom.c_str());
  obs::set_prometheus_path(nullptr);
  obs::set_metrics_path(nullptr);
  obs::set_trace_enabled(false);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  // Truncate-rewrite, not append: one exposition block per file.
  EXPECT_EQ(first.find("# TYPE"), second.find("# TYPE"));
  std::remove(jsonl.c_str());
  std::remove(prom.c_str());
}

// ---------------------------------------------------------------------------
// Guarded-heap integration: trace hooks and fault enrichment
// ---------------------------------------------------------------------------

TEST(ObsIntegration, DisabledPathRecordsNothing) {
  obs::set_trace_enabled(false);
  TraceEvent before_events[TraceRing::kCapacity];
  TraceEvent after_events[TraceRing::kCapacity];
  const std::size_t ring_before =
      obs::capture_recent(before_events, TraceRing::kCapacity);
  const std::uint64_t hist_before = obs::hist(obs::Hist::kAllocNs).count();
  vm::PhysArena arena(1u << 26);
  core::GuardedHeap heap(arena);
  void* p = heap.malloc(64);
  heap.free(p);
  // No histogram samples and no flight-recorder events were added.
  EXPECT_EQ(obs::hist(obs::Hist::kAllocNs).count(), hist_before);
  const std::size_t ring_after =
      obs::capture_recent(after_events, TraceRing::kCapacity);
  EXPECT_EQ(ring_after, ring_before);
  for (std::size_t i = 0; i < ring_after; ++i) {
    EXPECT_EQ(after_events[i].ns, before_events[i].ns);
  }
}

TEST(ObsIntegration, GuardedWorkloadFillsHistogramsAndRing) {
  obs::set_trace_enabled(true);
  const std::uint64_t alloc_before = obs::hist(obs::Hist::kAllocNs).count();
  const std::uint64_t free_before = obs::hist(obs::Hist::kFreeNs).count();
  const std::uint64_t prot_before = obs::hist(obs::Hist::kMprotectNs).count();
  vm::PhysArena arena(1u << 26);
  core::GuardedHeap heap(arena);
  for (int i = 0; i < 32; ++i) {
    void* p = heap.malloc(64);
    heap.free(p);
  }
  obs::set_trace_enabled(false);
  EXPECT_GE(obs::hist(obs::Hist::kAllocNs).count(), alloc_before + 32);
  EXPECT_GE(obs::hist(obs::Hist::kFreeNs).count(), free_before + 32);
  // Every immediate-mode free mprotects its span.
  EXPECT_GE(obs::hist(obs::Hist::kMprotectNs).count(), prot_before + 32);
  EXPECT_GT(obs::hist(obs::Hist::kAllocNs).percentile(99), 0u);
  // The calling thread's ring holds the alloc/free event stream.
  TraceEvent out[TraceRing::kCapacity];
  const std::size_t n = obs::capture_recent(out, TraceRing::kCapacity);
  ASSERT_GE(n, 64u);
  std::size_t allocs = 0, frees = 0;
  for (std::size_t i = 0; i < n; ++i) {
    allocs += out[i].kind == static_cast<std::uint16_t>(EventKind::kAlloc);
    frees += out[i].kind == static_cast<std::uint16_t>(EventKind::kFree);
  }
  EXPECT_GE(allocs, 32u);
  EXPECT_GE(frees, 32u);
}

TEST(ObsIntegration, FaultReportCarriesFlightRecorderTrace) {
  obs::set_trace_enabled(true);
  vm::PhysArena arena(1u << 26);
  core::GuardedHeap heap(arena);
  for (int i = 0; i < 20; ++i) {
    void* q = heap.malloc(48);
    heap.free(q);
  }
  auto* p = static_cast<volatile char*>(heap.malloc(24));
  heap.free(const_cast<char*>(p), /*site=*/5);
  const auto report = core::catch_dangling([&] { (void)p[0]; });
  obs::set_trace_enabled(false);
  ASSERT_TRUE(report.has_value());
  EXPECT_GE(report->trace_count, 16u);
  ASSERT_LE(report->trace_count, core::DanglingReport::kTraceDepth);
  // Newest attached event is the fault itself.
  const TraceEvent& last = report->recent_trace[report->trace_count - 1];
  EXPECT_EQ(last.kind, static_cast<std::uint16_t>(EventKind::kFault));
  EXPECT_EQ(last.addr, report->fault_address);
  // The preceding events include the free of the faulting object.
  bool saw_free = false;
  for (std::size_t i = 0; i + 1 < report->trace_count; ++i) {
    const TraceEvent& e = report->recent_trace[i];
    if (e.kind == static_cast<std::uint16_t>(EventKind::kFree) &&
        e.site == 5u) {
      saw_free = true;
    }
  }
  EXPECT_TRUE(saw_free);
}

}  // namespace
}  // namespace dpg
