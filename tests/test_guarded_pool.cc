// Tests for pool-integrated guarding: VA recycling at pooldestroy (§3.3),
// PoolScope discipline, and the shared free list across pools.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/fault_manager.h"
#include "core/guarded_pool.h"
#include "workloads/common.h"

namespace dpg::core {
namespace {

TEST(GuardedPool, AllocFreeDetectLifecycle) {
  GuardedPoolContext ctx;
  GuardedPool pool(ctx, 32);
  auto* p = static_cast<char*>(pool.alloc(32, 1));
  std::strcpy(p, "pooled");
  EXPECT_STREQ(p, "pooled");
  pool.free(p, 2);
  const auto report = catch_dangling([&] {
    volatile char c = p[0];
    (void)c;
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->alloc_site, 1u);
  EXPECT_EQ(report->free_site, 2u);
}

TEST(GuardedPool, DestroyReleasesShadowAndCanonicalPages) {
  GuardedPoolContext ctx;
  const std::size_t shadow_before = ctx.recyclable_shadow_bytes();
  {
    GuardedPool pool(ctx, 16);
    for (int i = 0; i < 50; ++i) (void)pool.alloc(16);
    // Nothing recyclable while the pool lives.
    EXPECT_EQ(ctx.recyclable_shadow_bytes(), shadow_before);
  }
  // 50 shadow pages + canonical extents released.
  EXPECT_GE(ctx.recyclable_shadow_bytes(), shadow_before + 50 * vm::kPageSize);
}

TEST(GuardedPool, NextPoolReusesReleasedVirtualPages) {
  GuardedPoolContext ctx;
  std::set<std::uintptr_t> first_pages;
  {
    GuardedPool pool(ctx, 16);
    for (int i = 0; i < 20; ++i) {
      first_pages.insert(vm::page_down(vm::addr(pool.alloc(16))));
    }
  }
  std::size_t reused = 0;
  {
    GuardedPool pool(ctx, 16);
    for (int i = 0; i < 20; ++i) {
      if (first_pages.count(vm::page_down(vm::addr(pool.alloc(16)))) > 0) {
        reused++;
      }
    }
    EXPECT_GT(pool.stats().shadow_pages_reused, 0u);
  }
  EXPECT_GT(reused, 0u);
}

TEST(GuardedPool, RepeatedPoolsDoNotGrowVaOrPhysical) {
  // The paper's f() example: "all the virtual pages of the pool will be
  // released to the free list and reused for future allocations (in future
  // invocations of f() or elsewhere)".
  GuardedPoolContext ctx;
  auto one_round = [&ctx] {
    GuardedPool pool(ctx, 24);
    std::vector<void*> ptrs;
    for (int i = 0; i < 100; ++i) ptrs.push_back(pool.alloc(24));
    for (void* p : ptrs) pool.free(p);
  };
  for (int warm = 0; warm < 3; ++warm) one_round();
  const std::size_t phys = ctx.arena().physical_bytes();
  const std::size_t shadow = ctx.recyclable_shadow_bytes();
  std::uint64_t mapped_before = 0;
  {
    GuardedPool probe(ctx);
    mapped_before = probe.stats().shadow_pages_mapped;
  }
  for (int round = 0; round < 20; ++round) one_round();
  EXPECT_EQ(ctx.arena().physical_bytes(), phys);
  EXPECT_EQ(ctx.recyclable_shadow_bytes(), shadow);
  (void)mapped_before;
}

TEST(GuardedPool, DestroyWithLiveObjectsReleasesThem) {
  GuardedPoolContext ctx;
  char* leaked = nullptr;
  {
    GuardedPool pool(ctx);
    leaked = static_cast<char*>(pool.alloc(64));
    std::strcpy(leaked, "leak");
    // No free: pooldestroy reclaims implicitly (the pool-allocation
    // semantics: memory lives exactly as long as its pool).
  }
  // The record is gone from the registry: the page may be reused.
  EXPECT_EQ(ShadowRegistry::global().lookup(vm::addr(leaked)), nullptr);
}

TEST(GuardedPool, DestroyIsIdempotent) {
  GuardedPoolContext ctx;
  GuardedPool pool(ctx);
  (void)pool.alloc(8);
  pool.destroy();
  EXPECT_NO_THROW(pool.destroy());
}

TEST(GuardedPool, TwoLivePoolsAreIndependent) {
  GuardedPoolContext ctx;
  GuardedPool a(ctx, 16);
  GuardedPool b(ctx, 16);
  auto* pa = static_cast<char*>(a.alloc(16));
  auto* pb = static_cast<char*>(b.alloc(16));
  a.free(pa);
  // b's object is unaffected by a's free and by a's destruction.
  std::strcpy(pb, "alive");
  a.destroy();
  EXPECT_STREQ(pb, "alive");
  b.free(pb);
}

TEST(GuardedPool, DanglingAcrossPoolFreeDetectedBeforeDestroy) {
  GuardedPoolContext ctx;
  GuardedPool pool(ctx);
  auto* p = static_cast<char*>(pool.alloc(40));
  pool.free(p);
  // Detected "arbitrarily far in the future" — as long as the pool lives.
  for (int i = 0; i < 3; ++i) {
    const auto report = catch_dangling([&] {
      volatile char c = p[1];
      (void)c;
    });
    EXPECT_TRUE(report.has_value());
  }
}

TEST(PoolScopeTest, CurrentTracksInnermost) {
  GuardedPoolContext ctx;
  EXPECT_EQ(PoolScope::current(), nullptr);
  {
    PoolScope outer(ctx);
    EXPECT_EQ(PoolScope::current(), &outer);
    {
      PoolScope inner(ctx);
      EXPECT_EQ(PoolScope::current(), &inner);
    }
    EXPECT_EQ(PoolScope::current(), &outer);
  }
  EXPECT_EQ(PoolScope::current(), nullptr);
}

TEST(PoolScopeTest, ScopeExitRecyclesPages) {
  GuardedPoolContext ctx;
  const std::size_t before = ctx.recyclable_shadow_bytes();
  {
    PoolScope scope(ctx);
    (void)scope.pool().alloc(16);
  }
  EXPECT_GT(ctx.recyclable_shadow_bytes(), before);
}

TEST(GuardedPool, StatsAggregateAcrossLifecycle) {
  GuardedPoolContext ctx;
  GuardedPool pool(ctx, 32);
  void* a = pool.alloc(32);
  void* b = pool.alloc(32);
  pool.free(a);
  const GuardStats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_EQ(stats.frees, 1u);
  EXPECT_EQ(stats.live_records, 2u);  // freed object still guarded
  (void)b;
}

TEST(GuardedPool, ElemHintPacksCanonicalExtents) {
  GuardedPoolContext ctx;
  GuardedPool pool(ctx, 64);
  for (int i = 0; i < 100; ++i) (void)pool.alloc(64);
  EXPECT_EQ(pool.pool_stats().allocations, 100u);
  EXPECT_EQ(pool.pool_stats().live_objects, 100u);
}

// Parameterized: pooldestroy must fully recycle for any object size,
// including page-spanning ones.
class PoolRecycleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolRecycleSweep, AllSpansRecycledOnDestroy) {
  GuardedPoolContext ctx;
  const std::size_t size = GetParam();
  const std::size_t before = ctx.recyclable_shadow_bytes();
  std::size_t expected_span_bytes = 0;
  {
    GuardedPool pool(ctx);
    for (int i = 0; i < 10; ++i) {
      void* p = pool.alloc(size);
      const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
      ASSERT_NE(rec, nullptr);
      expected_span_bytes += rec->span_length;
    }
  }
  EXPECT_GE(ctx.recyclable_shadow_bytes(), before + expected_span_bytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolRecycleSweep,
                         ::testing::Values(1, 16, 100, 4000, 4096, 5000,
                                           3 * dpg::vm::kPageSize));

}  // namespace
}  // namespace dpg::core
