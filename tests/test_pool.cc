// Unit tests for the pool-allocation runtime (poolinit/alloc/free/destroy).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/pool.h"
#include "workloads/common.h"

namespace dpg::alloc {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  vm::PhysArena arena_{1u << 26};
  ArenaSource source_{arena_};
};

TEST_F(PoolTest, AllocFreeRoundTrip) {
  Pool pool(source_, 32);
  void* p = pool.malloc(32);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 32);
  EXPECT_EQ(pool.size_of(p), 32u);
  pool.free(p);
}

TEST_F(PoolTest, FreedBlockReusedForSameStride) {
  Pool pool(source_, 0);
  void* p = pool.malloc(40);
  pool.free(p);
  void* q = pool.malloc(40);
  EXPECT_EQ(p, q);
  void* r = pool.malloc(33);  // same 16-aligned stride bucket as 40
  EXPECT_NE(r, nullptr);
}

TEST_F(PoolTest, BumpAllocationIsContiguous) {
  Pool pool(source_, 0);
  auto* a = static_cast<std::byte*>(pool.malloc(16));
  auto* b = static_cast<std::byte*>(pool.malloc(16));
  EXPECT_EQ(a + 32, b);  // 16 payload + 16 header stride
}

TEST_F(PoolTest, ElemHintSizesExtents) {
  Pool pool(source_, 64);
  (void)pool.malloc(64);
  EXPECT_GE(pool.stats().extent_bytes, Pool::kMinExtent);
}

TEST_F(PoolTest, DestroyRecyclesExtentsToSource) {
  std::size_t recycled_before = source_.recyclable_bytes();
  {
    Pool pool(source_, 0);
    for (int i = 0; i < 100; ++i) (void)pool.malloc(100);
    pool.destroy();
  }
  EXPECT_GT(source_.recyclable_bytes(), recycled_before);
  // A new pool draws from the recycled extents: physical bytes do not grow.
  const std::size_t phys = arena_.physical_bytes();
  Pool pool2(source_, 0);
  for (int i = 0; i < 100; ++i) (void)pool2.malloc(100);
  EXPECT_EQ(arena_.physical_bytes(), phys);
}

TEST_F(PoolTest, DestroyIsIdempotentAndRunByDtor) {
  Pool pool(source_, 0);
  (void)pool.malloc(8);
  pool.destroy();
  EXPECT_TRUE(pool.destroyed());
  EXPECT_NO_THROW(pool.destroy());
}

TEST_F(PoolTest, UseAfterDestroyThrows) {
  Pool pool(source_, 0);
  void* p = pool.malloc(8);
  pool.destroy();
  EXPECT_THROW((void)pool.malloc(8), std::logic_error);
  EXPECT_THROW(pool.free(p), std::logic_error);
}

TEST_F(PoolTest, DoubleFreeThrows) {
  Pool pool(source_, 0);
  void* p = pool.malloc(24);
  pool.free(p);
  EXPECT_THROW(pool.free(p), std::logic_error);
}

TEST_F(PoolTest, FreeNullIsNoop) {
  Pool pool(source_, 0);
  EXPECT_NO_THROW(pool.free(nullptr));
}

TEST_F(PoolTest, StatsAreAccurate) {
  Pool pool(source_, 16);
  void* a = pool.malloc(16);
  void* b = pool.malloc(16);
  pool.free(a);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_EQ(stats.frees, 1u);
  EXPECT_EQ(stats.live_objects, 1u);
  pool.free(b);
}

TEST_F(PoolTest, LargeObjectsGetDedicatedExtents) {
  Pool pool(source_, 0);
  const std::size_t big = 5 * vm::kPageSize;
  auto* p = static_cast<char*>(pool.malloc(big));
  p[big - 1] = 'e';
  EXPECT_EQ(pool.size_of(p), big);
  pool.free(p);
}

TEST_F(PoolTest, ManyObjectsAcrossExtents) {
  Pool pool(source_, 48);
  std::vector<void*> ptrs;
  for (int i = 0; i < 5000; ++i) {
    auto* p = static_cast<int*>(pool.malloc(48));
    *p = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(*static_cast<int*>(ptrs[static_cast<std::size_t>(i)]), i);
  }
  for (void* p : ptrs) pool.free(p);
  EXPECT_EQ(pool.stats().live_objects, 0u);
}

TEST_F(PoolTest, SequentialPoolsReusePhysicalMemory) {
  // The paper's claim: physical consumption matches the original program
  // because destroyed pools donate extents to the shared source.
  for (int round = 0; round < 3; ++round) {
    Pool pool(source_, 32);
    for (int i = 0; i < 1000; ++i) (void)pool.malloc(32);
    pool.destroy();
  }
  const std::size_t after3 = arena_.physical_bytes();
  for (int round = 0; round < 10; ++round) {
    Pool pool(source_, 32);
    for (int i = 0; i < 1000; ++i) (void)pool.malloc(32);
    pool.destroy();
  }
  EXPECT_EQ(arena_.physical_bytes(), after3);
}

// Parameterized sweep: interleaved alloc/free patterns conserve contents.
class PoolSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSweep, RandomChurnKeepsContentsIntact) {
  vm::PhysArena arena(1u << 26);
  ArenaSource source(arena);
  Pool pool(source, GetParam());
  workloads::Rng rng(GetParam() + 7);
  std::vector<std::pair<unsigned char*, unsigned char>> live;
  for (int round = 0; round < 3000; ++round) {
    if (live.size() < 50 || rng.below(2) == 0) {
      const std::size_t size = 1 + rng.below(300);
      auto* p = static_cast<unsigned char*>(pool.malloc(size));
      const auto fill = static_cast<unsigned char>(rng.below(256));
      std::memset(p, fill, size);
      live.emplace_back(p, fill);
    } else {
      const std::size_t pick = rng.below(live.size());
      EXPECT_EQ(*live[pick].first, live[pick].second);
      pool.free(live[pick].first);
      live[pick] = live.back();
      live.pop_back();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Hints, PoolSweep, ::testing::Values(0, 16, 64, 256));

}  // namespace
}  // namespace dpg::alloc
