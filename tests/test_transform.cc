// Tests for the Automatic Pool Allocation transformation (Figure 1 ->
// Figure 2) and its structural guarantees.
#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/interp.h"
#include "compiler/parser.h"
#include "compiler/pool_transform.h"
#include "core/fault_manager.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

int count_ops(const Function& fn, Op op) {
  return static_cast<int>(
      std::count_if(fn.body.begin(), fn.body.end(),
                    [op](const Instr& i) { return i.op == op; }));
}

TEST(Transform, Figure1MatchesFigure2Structure) {
  const Module m = parse_module(dpg::testing::kFigure1);
  const TransformResult result = pool_allocate(m);
  const Function& f = *result.module.find("f");
  const Function& g = *result.module.find("g");

  // f: poolinit at entry, pooldestroy before ret (paper Figure 2).
  EXPECT_EQ(count_ops(f, Op::kPoolInit), 1);
  EXPECT_EQ(count_ops(f, Op::kPoolDestroy), 1);
  EXPECT_EQ(f.body.front().op, Op::kPoolInit);

  // All mallocs became poolallocs, frees became poolfrees.
  EXPECT_EQ(count_ops(f, Op::kMalloc), 0);
  EXPECT_EQ(count_ops(f, Op::kPoolAlloc), 1);
  EXPECT_EQ(count_ops(g, Op::kMalloc), 0);
  EXPECT_EQ(count_ops(g, Op::kPoolAlloc), 1);
  EXPECT_EQ(count_ops(g, Op::kFree), 0);
  EXPECT_EQ(count_ops(g, Op::kPoolFree), 1);

  // g gained a pool parameter; f's call to g passes it.
  EXPECT_EQ(g.params.size(), 2u);
  const auto call_it =
      std::find_if(f.body.begin(), f.body.end(),
                   [](const Instr& i) { return i.op == Op::kCall; });
  ASSERT_NE(call_it, f.body.end());
  EXPECT_EQ(call_it->args.size(), 2u);
}

TEST(Transform, WellBehavedProgramRunsIdenticallyAfterTransform) {
  const Module original = parse_module(dpg::testing::kFigure1Fixed);
  const TransformResult transformed = pool_allocate(original);

  Interpreter native(original, {.backend = Backend::kNative});
  Interpreter pooled(transformed.module, {.backend = Backend::kGuarded});
  const InterpResult a = native.run();
  const InterpResult b = pooled.run();
  EXPECT_EQ(a.output, b.output);
}

TEST(Transform, Figure1DanglingDetectedUnderGuardedPools) {
  const Module m = parse_module(dpg::testing::kFigure1);
  const TransformResult result = pool_allocate(m);
  Interpreter interp(result.module, {.backend = Backend::kGuarded});
  const auto report = core::catch_dangling([&] { (void)interp.run(); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, core::AccessKind::kRead);
}

TEST(Transform, RepeatedPoolLifetimesRecycleVa) {
  // Calling leaf() in a loop: each call's pool returns its pages. After the
  // program runs, all pool VAs are recyclable and no pools leak. The static
  // analysis proves this program SAFE (its sites would be elided and leave
  // no shadow pages), so force full guarding — VA recycling is the subject.
  const Module m = parse_module(dpg::testing::kLocalPool);
  const TransformResult result = pool_allocate(m);
  Interpreter interp(result.module,
                     {.backend = Backend::kGuarded, .honor_safety = false});
  const InterpResult out = interp.run();
  EXPECT_EQ(out.output.size(), 5u);
  EXPECT_EQ(interp.live_pools(), 0u);
  EXPECT_GT(interp.context()->recyclable_shadow_bytes(), 0u);
}

TEST(Transform, BranchDirectlyToRetStillDestroysPools) {
  const Module m = parse_module(R"(
func main() {
  c = const 1
  cbr c, fast, slow
fast:
  p = malloc 1
  free p
  ret
slow:
  q = malloc 1
  free q
  ret
}
)");
  const TransformResult result = pool_allocate(m);
  Interpreter interp(result.module, {.backend = Backend::kGuarded});
  (void)interp.run();
  EXPECT_EQ(interp.live_pools(), 0u) << "pooldestroy skipped on branch path";
}

TEST(Transform, LoopBackEdgeDoesNotReinitPool) {
  // A loop whose label is instruction 0 must not re-execute poolinit.
  const Module m = parse_module(R"(
func main() {
  i = const 0
loop:
  p = malloc 1
  free p
  one = const 1
  i = add i, one
  ten = const 10
  c = lt i, ten
  cbr c, loop, done
done:
  ret
}
)");
  const TransformResult result = pool_allocate(m);
  Interpreter interp(result.module, {.backend = Backend::kGuarded});
  (void)interp.run();
  // One poolinit total: exactly one pool was ever created.
  EXPECT_EQ(interp.live_pools(), 0u);
  const Function& fn = *result.module.find("main");
  EXPECT_EQ(count_ops(fn, Op::kPoolInit), 1);
}

TEST(Transform, GlobalEscapePoolLivesInMain) {
  const Module m = parse_module(dpg::testing::kGlobalEscape);
  const TransformResult result = pool_allocate(m);
  const Function& main_fn = *result.module.find("main");
  EXPECT_EQ(count_ops(main_fn, Op::kPoolInit), 1);
  // worker() gets the descriptor as a parameter.
  const Function& worker = *result.module.find("worker");
  EXPECT_EQ(worker.params.size(), 1u);
  Interpreter interp(result.module, {.backend = Backend::kGuarded});
  const InterpResult out = interp.run();
  ASSERT_EQ(out.output.size(), 1u);
  EXPECT_EQ(out.output[0], 7u);
}

TEST(Transform, RecursiveProgramRunsCorrectly) {
  const Module m = parse_module(dpg::testing::kRecursive);
  const TransformResult result = pool_allocate(m);
  Interpreter native(parse_module(dpg::testing::kRecursive),
                     {.backend = Backend::kNative});
  Interpreter pooled(result.module, {.backend = Backend::kGuarded});
  EXPECT_EQ(native.run().output, pooled.run().output);
}

TEST(Transform, DescriptorThreadingThroughMiddleman) {
  // middle() holds no pointer to the data but must thread the descriptor.
  const Module m = parse_module(R"(
global sink
func main() {
  call middle()
  p = loadg sink
  v = getfield p, 0
  out v
  ret
}
func middle() {
  call worker()
  ret
}
func worker() {
  p = malloc 1
  nine = const 9
  setfield p, 0, nine
  storeg sink, p
  ret
}
)");
  const TransformResult result = pool_allocate(m);
  const Function& middle = *result.module.find("middle");
  EXPECT_EQ(middle.params.size(), 1u) << "middle must thread the descriptor";
  Interpreter interp(result.module, {.backend = Backend::kGuarded});
  const InterpResult out = interp.run();
  ASSERT_EQ(out.output.size(), 1u);
  EXPECT_EQ(out.output[0], 9u);
}

TEST(Transform, TwoPoolsTransformAndRun) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const TransformResult result = pool_allocate(m);
  EXPECT_EQ(result.placement.pools.size(), 2u);
  Interpreter interp(result.module, {.backend = Backend::kGuarded});
  const InterpResult out = interp.run();
  ASSERT_EQ(out.output.size(), 2u);
  EXPECT_EQ(out.output[0], 5u);
  EXPECT_EQ(out.output[1], 1u);
}

TEST(Transform, PoolInitCarriesInferredElementSize) {
  // Figure 1's list node is `struct s { next, val }` = 2 fields = 16 bytes;
  // both malloc sites agree, so poolinit gets the hint (paper Figure 2:
  // poolinit(&PP, sizeof(struct s))).
  const Module m = parse_module(dpg::testing::kFigure1);
  const TransformResult result = pool_allocate(m);
  const Function& f = *result.module.find("f");
  ASSERT_EQ(f.body.front().op, Op::kPoolInit);
  EXPECT_EQ(f.body.front().imm, 16);
}

TEST(Transform, MixedSizePoolGetsNoHint) {
  // Both mallocs flow into the same variable, so Steensgaard merges them
  // into one node; the sizes disagree, so no element hint is possible.
  const Module m = parse_module(R"(
func main() {
  a = malloc 2
  free a
  a = malloc 5
  free a
  ret
}
)");
  const TransformResult result = pool_allocate(m);
  const Function& main_fn = *result.module.find("main");
  ASSERT_EQ(result.placement.pools.size(), 1u);
  ASSERT_EQ(main_fn.body.front().op, Op::kPoolInit);
  EXPECT_EQ(main_fn.body.front().imm, 0);
}

TEST(Transform, DumpShowsPoolOps) {
  const Module m = parse_module(dpg::testing::kFigure1);
  const TransformResult result = pool_allocate(m);
  const std::string text = result.module.dump();
  EXPECT_NE(text.find("poolinit"), std::string::npos);
  EXPECT_NE(text.find("poolalloc"), std::string::npos);
  EXPECT_NE(text.find("poolfree"), std::string::npos);
  EXPECT_NE(text.find("pooldestroy"), std::string::npos);
}

}  // namespace
}  // namespace dpg::compiler
