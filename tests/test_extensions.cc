// Tests for the §6-extension features: trailing guard pages (spatial
// overflow traps), batched protection (amortized mprotect), and the
// calloc/realloc guarded semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "core/guarded_pool.h"
#include "core/runtime.h"
#include "workloads/common.h"

namespace dpg::core {
namespace {

// --- trailing guard pages ---------------------------------------------------

class GuardPageTest : public ::testing::Test {
 protected:
  vm::PhysArena arena_{1u << 28};
  GuardedHeap heap_{arena_, GuardConfig{.trailing_guard_page = true}};
};

TEST_F(GuardPageTest, LinearOverflowPastSpanTraps) {
  auto* p = static_cast<char*>(heap_.malloc(64, 5));
  std::memset(p, 'a', 64);  // in-bounds writes fine
  // The object ends somewhere inside its last data page; the first byte of
  // the following (guard) page must trap even though the object is LIVE.
  const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->guard_length, vm::kPageSize);
  char* guard_byte = reinterpret_cast<char*>(rec->shadow_base +
                                             rec->span_length -
                                             rec->guard_length);
  const auto report = catch_dangling([&] {
    volatile char c = *guard_byte;
    (void)c;
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kOverflow);
  EXPECT_EQ(report->alloc_site, 5u);
  heap_.free(p);
}

TEST_F(GuardPageTest, PageSizedObjectOverflowByOneTraps) {
  // A 4096-byte object fills its pages exactly (modulo the header offset);
  // running one element past a page-aligned end must hit the guard.
  auto* p = static_cast<char*>(heap_.malloc(2 * vm::kPageSize));
  const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
  char* past_span = reinterpret_cast<char*>(rec->shadow_base +
                                            rec->span_length -
                                            rec->guard_length);
  const auto report = catch_dangling([&] { *past_span = 'x'; });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kOverflow);
  heap_.free(p);
}

TEST_F(GuardPageTest, GuardDoesNotAliasPhysicalMemory) {
  // Guard pages are anonymous PROT_NONE: they never touch the memfd, so the
  // arena's physical length is the same as without guards.
  const std::size_t before = arena_.physical_bytes();
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) ptrs.push_back(heap_.malloc(32));
  EXPECT_LT(arena_.physical_bytes() - before, 20 * vm::kPageSize);
  for (void* p : ptrs) heap_.free(p);
}

TEST_F(GuardPageTest, DanglingDetectionStillWorks) {
  auto* p = static_cast<char*>(heap_.malloc(24));
  heap_.free(p);
  const auto report = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kRead);  // temporal, not overflow
}

TEST_F(GuardPageTest, GuardedSpanRecyclesThroughFreeList) {
  auto* p = static_cast<char*>(heap_.malloc(16));
  const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
  const std::uintptr_t base = rec->shadow_base;
  const std::size_t span = rec->span_length;
  heap_.free(p);
  heap_.engine().reclaim_freed(span);
  EXPECT_GE(heap_.shadow_freelist().bytes(), span);
  // A new allocation reuses the recycled (data+guard) range and re-arms it.
  auto* q = static_cast<char*>(heap_.malloc(16));
  const ObjectRecord* rec2 = ShadowRegistry::global().lookup(vm::addr(q));
  EXPECT_EQ(rec2->shadow_base, base);
  q[0] = 'q';  // data page is RW again
  const auto report = catch_dangling([&] {
    volatile char c = *reinterpret_cast<char*>(rec2->shadow_base +
                                               rec2->span_length -
                                               rec2->guard_length);
    (void)c;
  });
  EXPECT_TRUE(report.has_value());  // guard re-armed after MAP_FIXED reuse
  heap_.free(q);
}

TEST(GuardPagePool, WorksUnderPools) {
  GuardedPoolContext ctx({.trailing_guard_page = true});
  GuardedPool pool(ctx);
  auto* p = static_cast<char*>(pool.alloc(48));
  const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
  ASSERT_EQ(rec->guard_length, vm::kPageSize);
  pool.free(p);
  pool.destroy();
  EXPECT_GT(ctx.recyclable_shadow_bytes(), 0u);
}

// --- batched protection -------------------------------------------------------

TEST(BatchedProtect, FlushProtectsEverything) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena, GuardConfig{.protect_batch = 64});
  std::vector<char*> ptrs;
  for (int i = 0; i < 10; ++i) {
    ptrs.push_back(static_cast<char*>(heap.malloc(16)));
  }
  for (char* p : ptrs) heap.free(p);
  // Below the batch threshold: spans may not be protected yet; flush.
  heap.engine().flush_protections();
  for (char* p : ptrs) {
    const auto report = catch_dangling([&] {
      volatile char c = *p;
      (void)c;
    });
    EXPECT_TRUE(report.has_value());
  }
}

TEST(BatchedProtect, AutoFlushAtThreshold) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena, GuardConfig{.protect_batch = 8});
  std::vector<char*> ptrs;
  for (int i = 0; i < 8; ++i) {
    ptrs.push_back(static_cast<char*>(heap.malloc(16)));
  }
  for (char* p : ptrs) heap.free(p);  // 8th free triggers the flush
  const auto report = catch_dangling([&] {
    volatile char c = *ptrs[0];
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(BatchedProtect, AdjacentSpansMergeIntoFewerCalls) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena, GuardConfig{.protect_batch = 32});
  // Fresh shadow mappings from the kernel are typically address-adjacent;
  // free them all and flush: merged runs mean fewer mprotect calls than
  // frees.
  std::vector<char*> ptrs;
  for (int i = 0; i < 32; ++i) {
    ptrs.push_back(static_cast<char*>(heap.malloc(16)));
  }
  for (char* p : ptrs) heap.free(p);
  const GuardStats stats = heap.stats();
  EXPECT_EQ(stats.frees, 32u);
  EXPECT_GT(stats.protect_calls_saved, 0u);
  EXPECT_LT(stats.protect_calls, 32u);
}

TEST(BatchedProtect, DoubleFreeStillDeterministic) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena, GuardConfig{.protect_batch = 64});
  auto* p = static_cast<char*>(heap.malloc(16));
  heap.free(p);
  // Even while protection is pending, the record state catches the repeat.
  const auto report = catch_dangling([&] { heap.free(p); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kFree);
}

TEST(BatchedProtect, NoReuseBeforeProtection) {
  // Soundness property of the batch design: because the canonical block is
  // returned to the allocator only at flush time, no new allocation can
  // receive the freed object's physical memory while its shadow is still
  // readable.
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena, GuardConfig{.protect_batch = 1000});
  auto* p = static_cast<char*>(heap.malloc(64));
  std::strcpy(p, "old-contents");
  const std::uintptr_t canonical =
      *reinterpret_cast<std::uintptr_t*>(p - ShadowEngine::kGuardHeader);
  heap.free(p);
  // Allocate many same-size objects: none may land on the old canonical.
  for (int i = 0; i < 100; ++i) {
    auto* q = static_cast<char*>(heap.malloc(64));
    const std::uintptr_t q_canonical =
        *reinterpret_cast<std::uintptr_t*>(q - ShadowEngine::kGuardHeader);
    EXPECT_NE(q_canonical, canonical);
  }
  // The stale pointer still reads the *old* contents (bounded window), never
  // another object's data.
  EXPECT_STREQ(p, "old-contents");
  heap.engine().flush_protections();
  const auto report = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(BatchedProtect, ReleaseAllFlushesFirst) {
  GuardedPoolContext ctx({.protect_batch = 128});
  const std::size_t before = ctx.recyclable_shadow_bytes();
  {
    GuardedPool pool(ctx);
    for (int i = 0; i < 10; ++i) pool.free(pool.alloc(16));
    // destroy() with pending protections must not leak canonical blocks.
  }
  EXPECT_GT(ctx.recyclable_shadow_bytes(), before);
}

TEST(BatchedProtect, BudgetInteraction) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena, GuardConfig{.freed_va_budget = 64 * vm::kPageSize,
                                      .protect_batch = 16});
  for (int i = 0; i < 500; ++i) heap.free(heap.malloc(16));
  heap.engine().flush_protections();
  EXPECT_LE(heap.stats().guarded_bytes,
            64 * vm::kPageSize + 17 * vm::kPageSize);
}

// --- calloc / realloc ----------------------------------------------------------

class CallocReallocTest : public ::testing::Test {
 protected:
  vm::PhysArena arena_{1u << 28};
  GuardedHeap heap_{arena_};
};

TEST_F(CallocReallocTest, CallocZeroesRecycledMemory) {
  // Dirty a block, free it, calloc the same size: must come back zeroed
  // even though the physical memory is recycled.
  auto* dirty = static_cast<unsigned char*>(heap_.malloc(256));
  std::memset(dirty, 0xFF, 256);
  heap_.free(dirty);
  auto* p = static_cast<unsigned char*>(heap_.calloc(16, 16));
  for (int i = 0; i < 256; ++i) ASSERT_EQ(p[i], 0u) << i;
  heap_.free(p);
}

TEST_F(CallocReallocTest, CallocOverflowReturnsNull) {
  EXPECT_EQ(heap_.calloc(std::size_t{1} << 33, std::size_t{1} << 33), nullptr);
}

TEST_F(CallocReallocTest, ReallocGrowsAndPreservesContents) {
  auto* p = static_cast<char*>(heap_.malloc(16));
  std::strcpy(p, "fifteen chars!!");
  auto* q = static_cast<char*>(heap_.realloc(p, 1000));
  EXPECT_STREQ(q, "fifteen chars!!");
  EXPECT_EQ(heap_.size_of(q), 1000u);
  heap_.free(q);
}

TEST_F(CallocReallocTest, ReallocShrinksAndPreservesPrefix) {
  auto* p = static_cast<char*>(heap_.malloc(100));
  std::memset(p, 'z', 100);
  auto* q = static_cast<char*>(heap_.realloc(p, 10));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q[i], 'z');
  EXPECT_EQ(heap_.size_of(q), 10u);
  heap_.free(q);
}

TEST_F(CallocReallocTest, StaleAliasAfterReallocTraps) {
  // The bug realloc makes easy: keeping a pre-realloc alias around.
  auto* p = static_cast<char*>(heap_.malloc(32, 1));
  auto* q = static_cast<char*>(heap_.realloc(p, 64, 2));
  ASSERT_NE(p, q);  // moved: new shadow page
  const auto report = catch_dangling([&] {
    volatile char c = *p;  // stale alias
    (void)c;
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->free_site, 2u);
  heap_.free(q);
}

TEST_F(CallocReallocTest, ReallocNullBehavesLikeMalloc) {
  auto* p = static_cast<char*>(heap_.realloc(nullptr, 40));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(heap_.size_of(p), 40u);
  heap_.free(p);
}

TEST_F(CallocReallocTest, ReallocZeroBehavesLikeFree) {
  auto* p = static_cast<char*>(heap_.malloc(16));
  EXPECT_EQ(heap_.realloc(p, 0), nullptr);
  const auto report = catch_dangling([&] { heap_.free(p); });
  EXPECT_TRUE(report.has_value());  // already freed by realloc(p, 0)
}

TEST_F(CallocReallocTest, ReallocOfFreedPointerReported) {
  auto* p = static_cast<char*>(heap_.malloc(16));
  heap_.free(p);
  const auto report = catch_dangling([&] { (void)heap_.realloc(p, 32); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kFree);
}

TEST_F(CallocReallocTest, DropInEntryPoints) {
  auto* p = static_cast<unsigned char*>(dpg_calloc(8, 8));
  for (int i = 0; i < 64; ++i) ASSERT_EQ(p[i], 0u);
  auto* q = static_cast<unsigned char*>(dpg_realloc(p, 128));
  dpg_free(q);
}

}  // namespace
}  // namespace dpg::core
