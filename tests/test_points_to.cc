// Tests for the Steensgaard points-to analysis.
#include <gtest/gtest.h>

#include "compiler/parser.h"
#include "compiler/points_to.h"
#include "pir_programs.h"

namespace dpg::compiler {
namespace {

int fn_index(const Module& m, const char* name) {
  return m.function_index.at(name);
}

int reg_index(const Function& fn, const char* name) {
  for (int r = 0; r < fn.num_regs(); ++r) {
    if (fn.reg_names[static_cast<std::size_t>(r)] == name) return r;
  }
  ADD_FAILURE() << "no register " << name;
  return -1;
}

TEST(PointsTo, ListNodesUnifyIntoOneNode) {
  const Module m = parse_module(dpg::testing::kFigure1);
  const PointsToAnalysis pta(m);
  // Both malloc sites feed the same linked structure: one heap node.
  EXPECT_EQ(pta.heap_nodes().size(), 1u);
  const int node = pta.heap_nodes()[0];
  EXPECT_EQ(pta.sites_of(node).size(), 2u);
}

TEST(PointsTo, IndependentStructuresStayDistinct) {
  const Module m = parse_module(dpg::testing::kTwoPools);
  const PointsToAnalysis pta(m);
  EXPECT_EQ(pta.heap_nodes().size(), 2u);
}

TEST(PointsTo, CopyUnifiesVariables) {
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  q = copy p
  free q
  ret
}
)");
  const PointsToAnalysis pta(m);
  const Function& fn = *m.find("main");
  const int f = fn_index(m, "main");
  const int p = pta.pointee_node(pta.var_element(f, reg_index(fn, "p")));
  const int q = pta.pointee_node(pta.var_element(f, reg_index(fn, "q")));
  ASSERT_GE(p, 0);
  EXPECT_EQ(p, q);
}

TEST(PointsTo, FieldLoadSeesStoredPointer) {
  const Module m = parse_module(R"(
func main() {
  a = malloc 1
  b = malloc 1
  setfield a, 0, b
  c = getfield a, 0
  free c
  free a
  ret
}
)");
  const PointsToAnalysis pta(m);
  const Function& fn = *m.find("main");
  const int f = fn_index(m, "main");
  const int b = pta.pointee_node(pta.var_element(f, reg_index(fn, "b")));
  const int c = pta.pointee_node(pta.var_element(f, reg_index(fn, "c")));
  ASSERT_GE(b, 0);
  EXPECT_EQ(b, c);
  // a and b remain distinct nodes (a's fields point to b's node).
  const int a = pta.pointee_node(pta.var_element(f, reg_index(fn, "a")));
  EXPECT_NE(a, b);
}

TEST(PointsTo, CallBindsArgsAndReturn) {
  const Module m = parse_module(R"(
func mk() {
  p = malloc 1
  ret p
}
func main() {
  q = call mk()
  free q
  ret
}
)");
  const PointsToAnalysis pta(m);
  const int mk = fn_index(m, "mk");
  const int mn = fn_index(m, "main");
  const int p_node = pta.pointee_node(
      pta.var_element(mk, reg_index(*m.find("mk"), "p")));
  const int q_node = pta.pointee_node(
      pta.var_element(mn, reg_index(*m.find("main"), "q")));
  ASSERT_GE(p_node, 0);
  EXPECT_EQ(p_node, q_node);
  // And the return element agrees.
  EXPECT_EQ(pta.pointee_node(pta.ret_element(mk)), p_node);
}

TEST(PointsTo, GlobalEscapeIsVisible) {
  const Module m = parse_module(dpg::testing::kGlobalEscape);
  const PointsToAnalysis pta(m);
  ASSERT_EQ(pta.heap_nodes().size(), 1u);
  EXPECT_TRUE(pta.reachable_from_global(pta.heap_nodes()[0]));
}

TEST(PointsTo, LocalNodeNotGlobalReachable) {
  const Module m = parse_module(dpg::testing::kLocalPool);
  const PointsToAnalysis pta(m);
  ASSERT_EQ(pta.heap_nodes().size(), 1u);
  EXPECT_FALSE(pta.reachable_from_global(pta.heap_nodes()[0]));
}

TEST(PointsTo, NodeOfSiteResolvesEverySite) {
  const Module m = parse_module(dpg::testing::kFigure1);
  const PointsToAnalysis pta(m);
  const int node = pta.heap_nodes()[0];
  for (const std::uint32_t site : pta.sites_of(node)) {
    EXPECT_EQ(pta.node_of_site(site), node);
  }
  EXPECT_EQ(pta.node_of_site(9999), -1);
}

TEST(PointsTo, CollectReachableWalksChains) {
  const Module m = parse_module(R"(
func main() {
  outer = malloc 1
  inner = malloc 1
  setfield outer, 0, inner
  free inner
  free outer
  ret
}
)");
  const PointsToAnalysis pta(m);
  const Function& fn = *m.find("main");
  const int f = fn_index(m, "main");
  std::set<int> reachable;
  pta.collect_reachable(pta.var_element(f, reg_index(fn, "outer")), reachable);
  EXPECT_EQ(reachable.size(), 2u);  // outer's node AND inner's node
}

TEST(PointsTo, ArithmeticPreservesAliasing) {
  const Module m = parse_module(R"(
func main() {
  p = malloc 1
  one = const 1
  q = add p, one
  free p
  ret
}
)");
  const PointsToAnalysis pta(m);
  const Function& fn = *m.find("main");
  const int f = fn_index(m, "main");
  const int p = pta.pointee_node(pta.var_element(f, reg_index(fn, "p")));
  const int q = pta.pointee_node(pta.var_element(f, reg_index(fn, "q")));
  EXPECT_EQ(p, q);
}

TEST(PointsTo, RecursiveStructureTerminates) {
  const Module m = parse_module(dpg::testing::kRecursive);
  const PointsToAnalysis pta(m);
  EXPECT_EQ(pta.heap_nodes().size(), 1u);  // self-referential tree node
}

}  // namespace
}  // namespace dpg::compiler
