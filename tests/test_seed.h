// Seed plumbing for the randomized suites. Every seeded test derives its RNG
// seed through dpg_test_seed(n), where n is the test's historical fixed seed:
//
//   DPG_TEST_SEED unset   -> seeds are the historical values (byte-stable CI)
//   DPG_TEST_SEED=K       -> every seed is rebased by K, so one env var
//                            re-randomizes the whole suite (nightly soak) and
//                            a failure prints the exact seed to replay with.
//
// Replay: DPG_TEST_SEED=<printed base> ctest -R <failing test>.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

namespace dpg::testing {

// The rebase offset from the environment (0 when unset). Read once; the
// value is printed the first time so soak logs always carry it.
inline std::uint64_t test_seed_base() {
  static const std::uint64_t base = [] {
    const char* env = std::getenv("DPG_TEST_SEED");
    if (env == nullptr) return std::uint64_t{0};
    const std::uint64_t v = std::strtoull(env, nullptr, 0);
    ::testing::Test::RecordProperty("dpg_test_seed", std::to_string(v));
    std::fprintf(stderr, "[dpg] DPG_TEST_SEED=%llu (seeds rebased)\n",
                 static_cast<unsigned long long>(v));
    return v;
  }();
  return base;
}

// Derived seed for a test whose historical fixed seed is `n`.
inline std::uint64_t dpg_test_seed(std::uint64_t n) {
  return test_seed_base() + n;
}

}  // namespace dpg::testing

// Attach the effective seed to every assertion in scope, so a failure names
// the one number needed to reproduce it.
#define DPG_SEED_TRACE(seed)                                               \
  SCOPED_TRACE(::testing::Message()                                        \
               << "seed=" << (seed)                                        \
               << " (replay: DPG_TEST_SEED="                               \
               << ::dpg::testing::test_seed_base() << ")")
