// Postmortem crash-dump pipeline, end to end (DESIGN.md §13):
//
//   - a real dangling use under the preload leaves a CRC-valid .dpgcrash
//     that dpg_report symbolizes back to the alloc/free/use sites;
//   - the writer is async-signal-safe under fault injection: an injected
//     openat failure suppresses the dump but never the abort; an injected
//     write failure leaves a truncated file that dpg_report rejects with its
//     distinct corrupt exit code (3);
//   - SIGUSR2 takes a live snapshot dump and chains to a pre-installed
//     handler (no overlap with the SIGUSR1 metrics dump);
//   - --aggregate dedups a directory of crashes into one signature per
//     distinct bug site, ASLR notwithstanding;
//   - histogram encode/decode round-trips every bucket edge.
//
// Anything that crashes runs in a forked child (or a popen'd victim binary):
// the guard aborts the process, and TSan requires forking from a
// single-threaded parent, so each child does its own dpg init after fork.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/dump.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

#ifndef DPG_REPORT_BIN
#error "DPG_REPORT_BIN must be defined by the build"
#endif
#ifndef DPG_RUN_BIN
#error "DPG_RUN_BIN must be defined by the build"
#endif
#ifndef DPG_PRELOAD_SO
#error "DPG_PRELOAD_SO must be defined by the build"
#endif
#ifndef DPG_VICTIM_BIN
#error "DPG_VICTIM_BIN must be defined by the build"
#endif

// LD_PRELOADing the TSan-instrumented interposer into a victim dies in the
// sanitizer runtime before main (same reason test_preload is absent from the
// tsan preset), so the victim-spawning cases skip under TSan; the in-process
// cases — the ones whose lock-free paths TSan can actually judge — still run.
#if defined(__SANITIZE_THREAD__)
#define DPG_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPG_TSAN_BUILD 1
#endif
#endif
#if defined(DPG_TSAN_BUILD)
#define SKIP_VICTIM_UNDER_TSAN() \
  GTEST_SKIP() << "LD_PRELOAD victim runs are unsupported under TSan"
#else
#define SKIP_VICTIM_UNDER_TSAN() (void)0
#endif

namespace {

namespace dump = dpg::obs::dump;

struct RunResult {
  int exit_code = -1;
  int term_signal = 0;
  std::string output;
  [[nodiscard]] bool aborted() const {
    return term_signal == SIGABRT || exit_code == 128 + SIGABRT;
  }
};

RunResult run_cmd(const std::string& cmd) {
  RunResult result;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

// Fresh per-test scratch directory under the build tree.
std::string fresh_dir(const char* tag) {
  static int counter = 0;
  std::string dir = "postmortem-" + std::string(tag) + "-" +
                    std::to_string(getpid()) + "-" + std::to_string(counter++);
  mkdir(dir.c_str(), 0755);
  return dir;
}

std::vector<std::string> list_dumps(const std::string& dir) {
  std::vector<std::string> out;
  DIR* dp = opendir(dir.c_str());
  if (dp == nullptr) return out;
  while (dirent* ent = readdir(dp)) {
    const std::string name = ent->d_name;
    if (name.size() > 9 && name.rfind(".dpgcrash") == name.size() - 9) {
      out.push_back(dir + "/" + name);
    }
  }
  closedir(dp);
  return out;
}

RunResult run_victim(const std::string& mode, const std::string& dir,
                     const std::string& extra_env = {}) {
  std::string cmd = "LD_PRELOAD=" DPG_PRELOAD_SO " DPG_REPORT_DIR=" + dir +
                    " DPG_SITE_DEPTH=8 DPG_TRACE=1 ";
  if (!extra_env.empty()) cmd += extra_env + " ";
  cmd += DPG_VICTIM_BIN " " + mode;
  return run_cmd(cmd);
}

// --- the tentpole: crash -> dump -> symbolized analysis ---------------------

TEST(Postmortem, DanglingUseWritesValidDump) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("uaf");
  const RunResult r = run_victim("uaf", dir);
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  // The stderr report references the dump it just wrote.
  EXPECT_NE(r.output.find("crash dump:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("use stack:"), std::string::npos) << r.output;

  const auto dumps = list_dumps(dir);
  ASSERT_EQ(dumps.size(), 1u) << r.output;
  EXPECT_NE(dumps[0].find("-fault"), std::string::npos) << dumps[0];

  const RunResult rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + dumps[0]);
  EXPECT_EQ(rep.exit_code, 0) << rep.output;
  EXPECT_NE(rep.output.find("reason: fault"), std::string::npos) << rep.output;
  EXPECT_NE(rep.output.find("dangling read"), std::string::npos) << rep.output;
  EXPECT_NE(rep.output.find("signature:"), std::string::npos) << rep.output;
  // Symbolization: the victim binary has symbols, and main (or the inlined
  // run_uaf) must appear in the alloc/use stacks. The stacks themselves must
  // be non-empty.
  EXPECT_NE(rep.output.find("use stack"), std::string::npos) << rep.output;
  const bool symbolized =
      rep.output.find("main") != std::string::npos ||
      rep.output.find("run_uaf") != std::string::npos ||
      rep.output.find("preload_victim") != std::string::npos;
  EXPECT_TRUE(symbolized) << rep.output;
  // The JSON view parses the same dump.
  const RunResult js =
      run_cmd(std::string(DPG_REPORT_BIN) + " --json " + dumps[0]);
  EXPECT_EQ(js.exit_code, 0) << js.output;
  EXPECT_NE(js.output.find("\"kind\":\"read\""), std::string::npos)
      << js.output;
}

TEST(Postmortem, DoubleFreeDumpCarriesBothFreeStacks) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("df");
  const RunResult r = run_victim("df", dir);
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  const auto dumps = list_dumps(dir);
  ASSERT_EQ(dumps.size(), 1u);
  const RunResult rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + dumps[0]);
  EXPECT_EQ(rep.exit_code, 0) << rep.output;
  EXPECT_NE(rep.output.find("double-free"), std::string::npos) << rep.output;
}

TEST(Postmortem, SiteDepthZeroSuppressesStacksNotDumps) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("depth0");
  std::string cmd = "LD_PRELOAD=" DPG_PRELOAD_SO " DPG_REPORT_DIR=" + dir +
                    " DPG_SITE_DEPTH=0 " DPG_VICTIM_BIN " uaf";
  const RunResult r = run_cmd(cmd);
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  const auto dumps = list_dumps(dir);
  ASSERT_EQ(dumps.size(), 1u);
  const RunResult js =
      run_cmd(std::string(DPG_REPORT_BIN) + " --json " + dumps[0]);
  EXPECT_EQ(js.exit_code, 0) << js.output;
  EXPECT_NE(js.output.find("\"site_depth\":0"), std::string::npos)
      << js.output;
  EXPECT_NE(js.output.find("\"use_stack\":[]"), std::string::npos)
      << js.output;
}

// --- async-signal-safety under fault injection ------------------------------

TEST(Postmortem, InjectedOpenFailureSuppressesDumpNotAbort) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("openfail");
  // Every openat attempt fails: the writer gives up cleanly and the fault
  // path still aborts with its stderr report.
  const RunResult r =
      run_victim("uaf", dir, "DPG_FAULT_INJECT=openat:after=0:errno=EACCES");
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  EXPECT_NE(r.output.find("dangling pointer read detected"), std::string::npos)
      << r.output;
  EXPECT_TRUE(list_dumps(dir).empty());
}

TEST(Postmortem, InjectedWriteFailureLeavesRejectedTruncatedDump) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("writefail");
  // Let a few writes through, then fail the rest: the file exists but has no
  // CRC trailer. The victim still aborts; the analyzer must reject the dump
  // with the distinct corrupt exit code.
  const RunResult r =
      run_victim("uaf", dir, "DPG_FAULT_INJECT=write:after=3:errno=EIO");
  EXPECT_TRUE(r.aborted()) << r.exit_code << " " << r.output;
  const auto dumps = list_dumps(dir);
  ASSERT_EQ(dumps.size(), 1u) << r.output;
  const RunResult rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + dumps[0]);
  EXPECT_EQ(rep.exit_code, 3) << rep.exit_code << " " << rep.output;
  EXPECT_NE(rep.output.find("truncated"), std::string::npos) << rep.output;
}

TEST(Postmortem, AnalyzerRejectsGarbageAndFlippedBytes) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("garbage");
  const std::string bad = dir + "/not-a-dump.dpgcrash";
  {
    std::ofstream out(bad, std::ios::binary);
    out << "this is not a crash dump at all";
  }
  RunResult rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + bad);
  EXPECT_EQ(rep.exit_code, 3) << rep.output;

  // A real dump with one payload byte flipped must fail the CRC.
  const RunResult r = run_victim("uaf", dir);
  EXPECT_TRUE(r.aborted());
  auto dumps = list_dumps(dir);
  dumps.erase(std::remove(dumps.begin(), dumps.end(), bad), dumps.end());
  ASSERT_EQ(dumps.size(), 1u);
  std::ifstream in(dumps[0], std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x5A;
  const std::string flipped = dir + "/flipped.dpgcrash";
  {
    std::ofstream out(flipped, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + flipped);
  EXPECT_EQ(rep.exit_code, 3) << rep.output;
  EXPECT_NE(rep.output.find("CRC"), std::string::npos) << rep.output;

  // Missing file is an IO error (1), not corruption (3).
  rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + dir + "/nope.dpgcrash");
  EXPECT_EQ(rep.exit_code, 1) << rep.output;
}

// --- signal handling: snapshots + chaining ----------------------------------

// The child installs its own SIGUSR1/SIGUSR2 handlers *before* dpg arms its
// own, raises both, and exits with a bitmask proving (a) dpg wrote its
// metrics/snapshot work and (b) both pre-existing handlers still ran.
volatile sig_atomic_t g_prev_usr1_ran = 0;
volatile sig_atomic_t g_prev_usr2_ran = 0;
void prev_usr1(int) { g_prev_usr1_ran = 1; }
void prev_usr2(int) { g_prev_usr2_ran = 1; }

TEST(Postmortem, Sigusr2SnapshotChainsAndCoexistsWithSigusr1) {
  const std::string dir = fresh_dir("sigusr2");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Pre-existing handlers the runtime must preserve.
    std::signal(SIGUSR1, prev_usr1);
    std::signal(SIGUSR2, prev_usr2);
    dpg::obs::init_from_env();  // installs the SIGUSR1 metrics handler
    if (!dump::set_report_dir(dir.c_str())) _exit(99);
    raise(SIGUSR2);  // snapshot dump + chain
    raise(SIGUSR1);  // metrics path + chain (no interleaving: distinct locks)
    int code = 0;
    if (dump::dumps_written() == 1) code |= 1;
    if (g_prev_usr2_ran != 0) code |= 2;
    if (g_prev_usr1_ran != 0) code |= 4;
    _exit(code);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 7) << "bit0=dump bit1=usr2-chain bit2=usr1-chain";
  const auto dumps = list_dumps(dir);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].find("-sigusr2"), std::string::npos) << dumps[0];
  const RunResult rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + dumps[0]);
  EXPECT_EQ(rep.exit_code, 0) << rep.output;
  EXPECT_NE(rep.output.find("reason: sigusr2"), std::string::npos)
      << rep.output;
}

// --- fleet aggregation ------------------------------------------------------

// Two distinct crash sites, each hit several times across *separate* victim
// processes (fresh ASLR every run): the aggregate view must fold them into
// exactly two signatures.
TEST(Postmortem, AggregateDedupsAcrossProcesses) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("agg");
  int uaf_runs = 0;
  int df_runs = 0;
  for (int i = 0; i < 6; ++i) {
    if (run_victim("uaf", dir).aborted()) ++uaf_runs;
    if (run_victim("df", dir).aborted()) ++df_runs;
  }
  ASSERT_EQ(uaf_runs, 6);
  ASSERT_EQ(df_runs, 6);
  ASSERT_EQ(list_dumps(dir).size(), 12u);

  const RunResult agg =
      run_cmd(std::string(DPG_REPORT_BIN) + " --aggregate " + dir);
  EXPECT_EQ(agg.exit_code, 0) << agg.output;
  EXPECT_NE(agg.output.find("2 distinct signatures"), std::string::npos)
      << agg.output;
  EXPECT_NE(agg.output.find("x6"), std::string::npos) << agg.output;
  EXPECT_NE(agg.output.find("double-free"), std::string::npos) << agg.output;
  EXPECT_NE(agg.output.find("read"), std::string::npos) << agg.output;

  // Corrupt dumps are skipped and counted, not fatal.
  {
    std::ofstream out(dir + "/zz-corrupt.dpgcrash", std::ios::binary);
    out << "DPGCRSH1 but then garbage";
  }
  const RunResult agg2 =
      run_cmd(std::string(DPG_REPORT_BIN) + " --aggregate " + dir);
  EXPECT_EQ(agg2.exit_code, 0) << agg2.output;
  EXPECT_NE(agg2.output.find("1 corrupt"), std::string::npos) << agg2.output;
  EXPECT_NE(agg2.output.find("2 distinct signatures"), std::string::npos)
      << agg2.output;
}

TEST(Postmortem, AggregateAllCorruptExitsCorrupt) {
  const std::string dir = fresh_dir("allcorrupt");
  for (int i = 0; i < 3; ++i) {
    std::ofstream out(dir + "/bad" + std::to_string(i) + ".dpgcrash");
    out << "nope";
  }
  const RunResult agg =
      run_cmd(std::string(DPG_REPORT_BIN) + " --aggregate " + dir);
  EXPECT_EQ(agg.exit_code, 3) << agg.output;
}

// --- launcher ---------------------------------------------------------------

TEST(Postmortem, DpgRunWrapsCrashAndAnalyzes) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("dpgrun");
  const RunResult r = run_cmd(std::string(DPG_RUN_BIN) + " --report-dir " +
                              dir + " -- " DPG_VICTIM_BIN " uaf");
  // dpg_run propagates 128+SIGABRT.
  EXPECT_EQ(r.exit_code, 128 + SIGABRT) << r.exit_code << " " << r.output;
  EXPECT_NE(r.output.find("dpg_run: analyzing"), std::string::npos)
      << r.output;
  // The inline analysis is the full dpg_report output.
  EXPECT_NE(r.output.find("reason: fault"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("signature:"), std::string::npos) << r.output;
  ASSERT_EQ(list_dumps(dir).size(), 1u);
}

TEST(Postmortem, DpgRunCleanVictimIsTransparent) {
  SKIP_VICTIM_UNDER_TSAN();
  const std::string dir = fresh_dir("dpgrun-clean");
  const RunResult r = run_cmd(std::string(DPG_RUN_BIN) + " --report-dir " +
                              dir + " -- " DPG_VICTIM_BIN " clean");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean ok"), std::string::npos) << r.output;
  EXPECT_TRUE(list_dumps(dir).empty());
}

// --- histogram encoding: every bucket edge round-trips ----------------------

TEST(Postmortem, HistogramEncodeDecodesEveryBucketEdge) {
  using dpg::obs::LatencyHistogram;
  LatencyHistogram h;
  // One sample at the low edge of every bucket, plus one at the high edge of
  // the first few: bucket_index must place each exactly where bucket_low/
  // bucket_high claim.
  for (unsigned b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t lo = LatencyHistogram::bucket_low(b);
    ASSERT_EQ(LatencyHistogram::bucket_index(lo), b) << "low edge of " << b;
    const std::uint64_t hi = LatencyHistogram::bucket_high(b);
    if (hi != UINT64_MAX) {
      ASSERT_EQ(LatencyHistogram::bucket_index(hi), b) << "high edge of " << b;
      ASSERT_EQ(LatencyHistogram::bucket_index(hi + 1), b + 1)
          << "just past " << b;
    }
    h.record(lo);
  }
  // Every one of the ~1.9k buckets has a sample: header + one record each.
  static char buf[sizeof(dump::HistogramHeader) +
                  (LatencyHistogram::kBuckets + 1) *
                      sizeof(dump::HistogramBucket)];
  const std::size_t used = dump::encode_histogram(h, "edges", buf, sizeof buf);
  ASSERT_GT(used, sizeof(dump::HistogramHeader));

  dump::HistogramHeader hdr{};
  std::memcpy(&hdr, buf, sizeof hdr);
  EXPECT_STREQ(hdr.name, "edges");
  EXPECT_EQ(hdr.count, LatencyHistogram::kBuckets);
  EXPECT_EQ(hdr.n_buckets, LatencyHistogram::kBuckets);
  ASSERT_EQ(used, sizeof hdr + hdr.n_buckets * sizeof(dump::HistogramBucket));
  for (std::uint64_t i = 0; i < hdr.n_buckets; ++i) {
    dump::HistogramBucket b{};
    std::memcpy(&b, buf + sizeof hdr + i * sizeof b, sizeof b);
    EXPECT_EQ(b.index, i);
    EXPECT_EQ(b.count, 1u) << "bucket " << i;
    EXPECT_EQ(h.bucket_count(static_cast<unsigned>(b.index)), b.count);
  }
  // Empty histogram encodes to nothing (the writer skips the TLV).
  LatencyHistogram empty;
  EXPECT_EQ(dump::encode_histogram(empty, "empty", buf, sizeof buf), 0u);
  // Capacity too small: refuses rather than truncating.
  EXPECT_EQ(dump::encode_histogram(h, "edges", buf, 16), 0u);
}

// In-process writer sanity: a dump written right here (no crash) has every
// section the analyzer expects, and write_crash_dump honors out_path.
TEST(Postmortem, InProcessSnapshotHasAllSections) {
  const std::string dir = fresh_dir("inproc");
  ASSERT_TRUE(dump::set_report_dir(dir.c_str()));
  ASSERT_TRUE(dump::enabled());
  char name[128] = {0};
  ASSERT_TRUE(dump::write_crash_dump("unit-test", nullptr, name, sizeof name));
  EXPECT_NE(std::strstr(name, "unit-test"), nullptr) << name;
  const std::string path = dir + "/" + name;
  const RunResult rep = run_cmd(std::string(DPG_REPORT_BIN) + " " + path);
  EXPECT_EQ(rep.exit_code, 0) << rep.output;
  EXPECT_NE(rep.output.find("reason: unit-test"), std::string::npos)
      << rep.output;
  EXPECT_NE(rep.output.find("counters:"), std::string::npos) << rep.output;
  EXPECT_NE(rep.output.find("vm:"), std::string::npos) << rep.output;
  const RunResult js = run_cmd(std::string(DPG_REPORT_BIN) + " --json " + path);
  EXPECT_EQ(js.exit_code, 0) << js.output;
  // Snapshot dumps dedup by reason, not stacks.
  EXPECT_NE(js.output.find("\"reason\":\"unit-test\""), std::string::npos)
      << js.output;
  dump::set_report_dir(nullptr);  // disarm for any tests after us
  EXPECT_FALSE(dump::enabled());
}

}  // namespace
