// Tests for the core contribution: GuardedHeap / ShadowEngine (Section 3.2).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "workloads/common.h"

namespace dpg::core {
namespace {

class GuardedHeapTest : public ::testing::Test {
 protected:
  vm::PhysArena arena_{1u << 28};
  GuardedHeap heap_{arena_};
};

TEST_F(GuardedHeapTest, AllocatedMemoryIsUsable) {
  auto* p = static_cast<char*>(heap_.malloc(100));
  ASSERT_NE(p, nullptr);
  std::memset(p, 'x', 100);
  EXPECT_EQ(p[99], 'x');
  EXPECT_EQ(heap_.size_of(p), 100u);
  heap_.free(p);
}

TEST_F(GuardedHeapTest, EachAllocationGetsItsOwnShadowPage) {
  auto* a = static_cast<char*>(heap_.malloc(16));
  auto* b = static_cast<char*>(heap_.malloc(16));
  EXPECT_NE(vm::page_down(vm::addr(a)), vm::page_down(vm::addr(b)));
  heap_.free(a);
  heap_.free(b);
}

TEST_F(GuardedHeapTest, ObjectsShareUnderlyingPhysicalPages) {
  // Many small objects; physical bytes stay near what a plain allocator
  // would use, far below one page per object (the anti-Electric-Fence claim).
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) ptrs.push_back(heap_.malloc(16));
  const std::size_t phys = arena_.physical_bytes();
  // 1000 x (16+8) bytes plus allocator overhead: well under 100 pages
  // (Electric Fence would need 1000 pages).
  EXPECT_LT(phys, 100 * vm::kPageSize);
  for (void* p : ptrs) heap_.free(p);
}

TEST_F(GuardedHeapTest, HeaderWordRecordsCanonicalAddress) {
  auto* p = static_cast<char*>(heap_.malloc(32));
  const std::uintptr_t canonical =
      *reinterpret_cast<std::uintptr_t*>(p - ShadowEngine::kGuardHeader);
  EXPECT_TRUE(arena_.contains_canonical(reinterpret_cast<void*>(canonical)));
  // Same offset within the page (Section 3.2's layout guarantee).
  EXPECT_EQ(vm::page_offset(canonical),
            vm::page_offset(vm::addr(p) - ShadowEngine::kGuardHeader));
  heap_.free(p);
}

TEST_F(GuardedHeapTest, DanglingReadIsDetected) {
  auto* p = static_cast<volatile char*>(heap_.malloc(24));
  p[0] = 'a';
  heap_.free(const_cast<char*>(p), /*site=*/7);
  const auto report = catch_dangling([&] { (void)p[0]; });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kRead);
  EXPECT_EQ(report->fault_address, vm::addr(const_cast<char*>(p)));
  EXPECT_EQ(report->free_site, 7u);
  EXPECT_EQ(report->object_size, 24u);
}

TEST_F(GuardedHeapTest, DanglingWriteIsDetectedAndClassified) {
  auto* p = static_cast<char*>(heap_.malloc(24));
  heap_.free(p);
  const auto report = catch_dangling([&] { p[3] = 'w'; });
  ASSERT_TRUE(report.has_value());
#if defined(__x86_64__)
  EXPECT_EQ(report->kind, AccessKind::kWrite);
#endif
  EXPECT_EQ(report->fault_address, vm::addr(p) + 3);
}

TEST_F(GuardedHeapTest, InteriorDanglingAccessDetected) {
  auto* p = static_cast<char*>(heap_.malloc(2000));
  heap_.free(p);
  const auto report = catch_dangling([&] {
    volatile char c = p[1999];
    (void)c;
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->object_base, vm::addr(p));
}

TEST_F(GuardedHeapTest, MultiPageObjectFullyProtected) {
  auto* p = static_cast<char*>(heap_.malloc(3 * vm::kPageSize));
  p[2 * vm::kPageSize] = 'm';
  heap_.free(p);
  for (std::size_t offset :
       {std::size_t{0}, vm::kPageSize + 5, 3 * vm::kPageSize - 1}) {
    const auto report = catch_dangling([&] {
      volatile char c = p[offset];
      (void)c;
    });
    EXPECT_TRUE(report.has_value()) << "offset " << offset;
  }
}

TEST_F(GuardedHeapTest, DoubleFreeIsDetected) {
  auto* p = static_cast<char*>(heap_.malloc(16));
  heap_.free(p, 11);
  const auto report = catch_dangling([&] { heap_.free(p, 12); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kFree);
  EXPECT_EQ(report->free_site, 11u);  // reports the original free
  EXPECT_EQ(heap_.stats().double_frees, 1u);
}

TEST_F(GuardedHeapTest, InvalidFreeIsDetected) {
  int local = 0;
  const auto report = catch_dangling([&] { heap_.free(&local); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kInvalidFree);
  EXPECT_EQ(heap_.stats().invalid_frees, 1u);
}

TEST_F(GuardedHeapTest, InteriorFreeIsInvalid) {
  auto* p = static_cast<char*>(heap_.malloc(64));
  const auto report = catch_dangling([&] { heap_.free(p + 8); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kInvalidFree);
  heap_.free(p);  // the real pointer still frees fine
}

TEST_F(GuardedHeapTest, FreeNullIsNoop) {
  EXPECT_NO_THROW(heap_.free(nullptr));
}

TEST_F(GuardedHeapTest, PhysicalMemoryIsReusedAfterFree) {
  auto* p = static_cast<char*>(heap_.malloc(64));
  std::strcpy(p, "first");
  heap_.free(p);
  // The canonical block is recycled: a same-size allocation reuses the
  // physical memory through a *different* shadow page.
  auto* q = static_cast<char*>(heap_.malloc(64));
  EXPECT_NE(vm::page_down(vm::addr(q)), vm::page_down(vm::addr(p)));
  std::strcpy(q, "second");
  EXPECT_STREQ(q, "second");
  heap_.free(q);
}

TEST_F(GuardedHeapTest, DetectionSurvivesPhysicalReuse) {
  // The crucial temporal property: after the physical memory is recycled
  // into a new object, the OLD pointer still traps.
  auto* p = static_cast<char*>(heap_.malloc(64));
  heap_.free(p);
  auto* q = static_cast<char*>(heap_.malloc(64));
  std::strcpy(q, "fresh");
  const auto report = catch_dangling([&] {
    volatile char c = p[0];
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
  EXPECT_STREQ(q, "fresh");
  heap_.free(q);
}

TEST_F(GuardedHeapTest, StatsTrackShadowPages) {
  const GuardStats before = heap_.stats();
  auto* p = static_cast<char*>(heap_.malloc(16));
  const GuardStats mid = heap_.stats();
  EXPECT_EQ(mid.allocations, before.allocations + 1);
  EXPECT_GE(mid.shadow_pages_mapped + mid.shadow_pages_reused,
            before.shadow_pages_mapped + before.shadow_pages_reused + 1);
  heap_.free(p);
  EXPECT_EQ(heap_.stats().frees, before.frees + 1);
}

TEST_F(GuardedHeapTest, SizeOfFreedObjectIsZero) {
  auto* p = static_cast<char*>(heap_.malloc(33));
  EXPECT_EQ(heap_.size_of(p), 33u);
  heap_.free(p);
  // Freed: the registry still knows it, but size_of via lookup reports the
  // recorded size; a dangling *free* would be flagged. Contract: size_of on
  // a freed pointer returns the stored size (record retained for detection).
  EXPECT_EQ(heap_.size_of(p), 33u);
}

TEST_F(GuardedHeapTest, ZeroByteAllocationStillGuarded) {
  auto* p = static_cast<char*>(heap_.malloc(0));
  heap_.free(p);
  const auto report = catch_dangling([&] {
    volatile char c = *p;
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(GuardedHeapBatching, ProtectCallsPlusSavedEqualsFrees) {
  // With batching, merged mprotect calls are counted in protect_calls and
  // every merge that elided a call in protect_calls_saved — together they
  // must account for every free, so the batching books always balance.
  vm::PhysArena arena(1u << 28);
  GuardConfig cfg;
  cfg.protect_batch = 8;
  GuardedHeap heap(arena, cfg);
  constexpr int kFrees = 100;  // not a multiple of the batch: tests the tail
  std::vector<void*> ptrs;
  for (int i = 0; i < kFrees; ++i) ptrs.push_back(heap.malloc(32));
  for (void* p : ptrs) heap.free(p);
  heap.engine().flush_protections();
  const GuardStats stats = heap.stats();
  EXPECT_EQ(stats.frees, static_cast<std::uint64_t>(kFrees));
  EXPECT_EQ(stats.protect_calls + stats.protect_calls_saved, stats.frees);
  // Batching must actually merge something at batch size 8.
  EXPECT_GT(stats.protect_calls_saved, 0u);
  EXPECT_LT(stats.protect_calls, stats.frees);
}

TEST(GuardedHeapBudget, FreedVaBudgetTriggersReclamation) {
  vm::PhysArena arena(1u << 28);
  GuardConfig cfg;
  cfg.freed_va_budget = 64 * vm::kPageSize;
  GuardedHeap heap(arena, cfg);
  // Free far more than the budget; guarded_bytes must stay bounded.
  for (int i = 0; i < 1000; ++i) {
    void* p = heap.malloc(16);
    heap.free(p);
  }
  const GuardStats stats = heap.stats();
  EXPECT_GT(stats.va_reclaimed_pages, 0u);
  EXPECT_LE(stats.guarded_bytes, cfg.freed_va_budget + 2 * vm::kPageSize);
  // Reclaimed pages really are reused: shadow reuse counter is nonzero.
  EXPECT_GT(stats.shadow_pages_reused, 0u);
}

TEST(GuardedHeapBudget, ReclaimFreedReleasesOldestFirst) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena);
  auto* oldest = static_cast<char*>(heap.malloc(16));
  auto* newest = static_cast<char*>(heap.malloc(16));
  heap.free(oldest);
  heap.free(newest);
  const std::size_t reclaimed = heap.engine().reclaim_freed(vm::kPageSize);
  EXPECT_EQ(reclaimed, vm::kPageSize);
  // The newest freed object must still be guarded.
  const auto report = catch_dangling([&] {
    volatile char c = newest[0];
    (void)c;
  });
  EXPECT_TRUE(report.has_value());
}

TEST(GuardedHeapStress, RandomChurnWithDanglingProbes) {
  vm::PhysArena arena(1u << 28);
  GuardConfig cfg;
  cfg.freed_va_budget = 4u << 20;  // keep page tables bounded
  GuardedHeap heap(arena, cfg);
  workloads::Rng rng(0x57E55);
  std::vector<std::pair<unsigned char*, std::size_t>> live;
  std::vector<unsigned char*> freed;
  for (int round = 0; round < 3000; ++round) {
    const auto action = rng.below(10);
    if (action < 5 || live.empty()) {
      const std::size_t size = 1 + rng.below(1000);
      auto* p = static_cast<unsigned char*>(heap.malloc(size));
      p[size - 1] = 2;
      p[0] = 1;  // after: size-1 objects end up holding 1
      live.emplace_back(p, size);
    } else if (action < 8) {
      const std::size_t pick = rng.below(live.size());
      EXPECT_EQ(live[pick].first[0], 1);
      heap.free(live[pick].first);
      if (freed.size() < 64) freed.push_back(live[pick].first);
      live[pick] = live.back();
      live.pop_back();
    } else if (!freed.empty()) {
      // Probe a random dangling pointer: must always trap (those kept in
      // `freed` are the first 64 frees; budget reclamation may have recycled
      // some, so only probe ones still registered as freed).
      unsigned char* p = freed[rng.below(freed.size())];
      const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
      if (rec != nullptr && rec->state.load() == ObjectState::kFreed &&
          rec->user_shadow == vm::addr(p)) {
        const auto report = catch_dangling([&] {
          volatile unsigned char c = *p;
          (void)c;
        });
        EXPECT_TRUE(report.has_value());
      }
    }
  }
  for (auto& [p, size] : live) heap.free(p);
}

}  // namespace
}  // namespace dpg::core
