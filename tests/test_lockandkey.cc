// Tests for the lock-and-key detection lane (core/lockandkey.h): tag
// round-trip, stale access/free reports, interior-pointer frees, and the
// generation-wrap reuse window the fuzz oracle mirrors.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "alloc/alloc_iface.h"
#include "alloc/heap.h"
#include "core/fault_manager.h"
#include "core/lockandkey.h"
#include "core/stats.h"

namespace dpg::core {
namespace {

// Fresh allocator stack per test; the lane borrows the engine-style counters.
struct LaneFixture {
  explicit LaneFixture(unsigned tag_bits = LockAndKeyLane::kDefaultTagBits)
      : heap(source), lane(heap, counters, tag_bits) {}
  alloc::MmapSource source;
  alloc::SegregatedHeap heap;
  GuardCounters counters;
  LockAndKeyLane lane;
};

std::uint64_t addr_of(void* p) { return reinterpret_cast<std::uint64_t>(p); }

TEST(LockAndKey, TaggedPointerRoundTrips) {
  LaneFixture fx;
  void* p = fx.lane.alloc(24, /*site=*/7);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(LockAndKeyLane::is_tagged(addr_of(p)));
  // check_access strips the key and hands back the payload for the real
  // load/store — a live pointer must pass without a report.
  void* payload = LockAndKeyLane::check_access(addr_of(p));
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload, LockAndKeyLane::strip(addr_of(p)));
  std::memset(payload, 0xAB, 24);
  EXPECT_EQ(static_cast<unsigned char*>(payload)[23], 0xAB);
  fx.lane.free(p, /*site=*/8);
  const GuardStats st = fx.counters.snapshot();
  EXPECT_EQ(st.tagged_allocs, 1u);
  EXPECT_EQ(st.tagged_frees, 1u);
  EXPECT_EQ(st.tag_mismatches, 0u);
}

TEST(LockAndKey, StaleAccessReportsTagMismatch) {
  LaneFixture fx;
  void* p = fx.lane.alloc(16, 1);
  ASSERT_NE(p, nullptr);
  fx.lane.free(p, 2);
  const std::uint64_t before = LockAndKeyLane::access_mismatches();
  const auto report = catch_dangling([&] {
    (void)LockAndKeyLane::check_access(addr_of(p));
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kTagMismatch);
  // The stale pointer is the report's identity; the slot header belongs to
  // the *current* generation's owner, so sites stay unattributed.
  EXPECT_EQ(report->fault_address, reinterpret_cast<std::uintptr_t>(p));
  EXPECT_EQ(report->object_size, 16u);
  EXPECT_EQ(report->alloc_site, 0u);
  EXPECT_EQ(LockAndKeyLane::access_mismatches(), before + 1);
}

TEST(LockAndKey, StaleFreeReportsTagMismatch) {
  LaneFixture fx;
  void* p = fx.lane.alloc(16, 1);
  ASSERT_NE(p, nullptr);
  fx.lane.free(p, 2);
  const auto report = catch_dangling([&] { fx.lane.free(p, 3); });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kTagMismatch);
  EXPECT_EQ(report->free_site, 3u);
  const GuardStats st = fx.counters.snapshot();
  EXPECT_EQ(st.tag_mismatches, 1u);
  EXPECT_EQ(st.tagged_frees, 1u) << "the stale free must not recycle again";
}

TEST(LockAndKey, InteriorPointerFreeIsInvalidFree) {
  LaneFixture fx;
  void* p = fx.lane.alloc(64, 1);
  ASSERT_NE(p, nullptr);
  // An interior pointer keeps the (valid) key but points past the header's
  // magic word, which the aperiodic constant makes fail deterministically.
  const std::uint64_t interior = addr_of(p) + 8;
  const auto report = catch_dangling([&] {
    fx.lane.free(reinterpret_cast<void*>(interior), 9);
  });
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, AccessKind::kInvalidFree);
  EXPECT_EQ(fx.counters.snapshot().invalid_frees, 1u);
}

TEST(LockAndKey, GenerationWrapOpensTheReuseWindow) {
  // 2-bit generations cycle 1 -> 2 -> 3 -> 1 (0 is never a valid key): after
  // max_gen frees of one slot, the first generation's stale pointer carries
  // a matching key again — the documented precision hole the scheme chooser
  // prices in and the fuzz oracle mirrors via tag_matches().
  LaneFixture fx(/*tag_bits=*/2);
  void* gen1 = fx.lane.alloc(16, 1);
  ASSERT_NE(gen1, nullptr);
  fx.lane.free(gen1, 2);  // lock -> 2
  EXPECT_FALSE(LockAndKeyLane::tag_matches(addr_of(gen1)));

  void* gen2 = fx.lane.alloc(16, 1);  // same slot, key 2
  ASSERT_EQ(LockAndKeyLane::strip(addr_of(gen2)),
            LockAndKeyLane::strip(addr_of(gen1)));
  fx.lane.free(gen2, 2);              // lock -> 3
  void* gen3 = fx.lane.alloc(16, 1);
  fx.lane.free(gen3, 2);              // lock wraps -> 1

  // gen1's key matches the wrapped lock: inside the reuse window the stale
  // pointer is indistinguishable from live — no report, no value promise.
  EXPECT_TRUE(LockAndKeyLane::tag_matches(addr_of(gen1)));
  EXPECT_EQ(LockAndKeyLane::check_access(addr_of(gen1)),
            LockAndKeyLane::strip(addr_of(gen1)));
  // The intermediate generation still mismatches exactly.
  EXPECT_FALSE(LockAndKeyLane::tag_matches(addr_of(gen2)));
}

TEST(LockAndKey, SlotsStayInLaneAcrossReuse) {
  // Per-capacity freelists keep slots (and their locks) inside the lane for
  // its lifetime: every recycle of the slot bumps the generation, and every
  // prior generation's pointer keeps a live lock to disagree with.
  LaneFixture fx;
  void* first = fx.lane.alloc(32, 1);
  ASSERT_NE(first, nullptr);
  fx.lane.free(first, 2);
  for (int i = 0; i < 8; ++i) {
    void* p = fx.lane.alloc(32, 1);
    ASSERT_EQ(LockAndKeyLane::strip(addr_of(p)),
              LockAndKeyLane::strip(addr_of(first)));
    EXPECT_FALSE(LockAndKeyLane::tag_matches(addr_of(first)));
    fx.lane.free(p, 2);
  }
  const GuardStats st = fx.counters.snapshot();
  EXPECT_EQ(st.tagged_allocs, 9u);
  EXPECT_EQ(st.tagged_frees, 9u);
}

}  // namespace
}  // namespace dpg::core
