// Property-based suites over the guard invariants:
//   I1  every access to a live object succeeds and reads back what was written
//   I2  every access through a freed (still-guarded) pointer traps
//   I3  live objects never overlap
//   I4  physical memory stays bounded by live bytes, not by allocation count
//   I5  pooldestroy makes every span of the pool recyclable
// Driven by seeded random alloc/free/access scripts (TEST_P over seeds).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "core/guarded_pool.h"
#include "test_seed.h"
#include "workloads/common.h"

namespace dpg::core {
namespace {

struct LiveObject {
  unsigned char* ptr;
  std::size_t size;
  unsigned char fill;
};

class GuardedHeapProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuardedHeapProperties, RandomScriptMaintainsInvariants) {
  vm::PhysArena arena(1u << 28);
  GuardedHeap heap(arena);
  const std::uint64_t seed = dpg::testing::dpg_test_seed(GetParam());
  DPG_SEED_TRACE(seed);
  workloads::Rng rng(seed);

  std::vector<LiveObject> live;
  std::vector<std::pair<unsigned char*, std::size_t>> freed;
  std::size_t live_bytes = 0;
  std::size_t peak_live_bytes = 0;

  for (int step = 0; step < 2500; ++step) {
    const std::uint64_t action = rng.below(100);
    if (action < 45 || live.empty()) {
      const std::size_t size = 1 + rng.below(2048);
      auto* p = static_cast<unsigned char*>(heap.malloc(size));
      const auto fill = static_cast<unsigned char>(rng.below(255) + 1);
      for (std::size_t i = 0; i < size; i += 64) p[i] = fill;
      p[size - 1] = fill;
      // I3: no overlap with any live object (same shadow page would be the
      // only way, and pages are unique per object).
      for (const LiveObject& other : live) {
        const bool disjoint = p + size <= other.ptr || other.ptr + other.size <= p;
        ASSERT_TRUE(disjoint) << "objects overlap";
      }
      live.push_back(LiveObject{p, size, fill});
      live_bytes += size;
      peak_live_bytes = std::max(peak_live_bytes, live_bytes);
    } else if (action < 75) {
      // I1: read back a live object.
      const LiveObject& obj = live[rng.below(live.size())];
      for (std::size_t i = 0; i < obj.size; i += 64) {
        ASSERT_EQ(obj.ptr[i], obj.fill);
      }
      ASSERT_EQ(obj.ptr[obj.size - 1], obj.fill);
    } else if (action < 90) {
      const std::size_t pick = rng.below(live.size());
      live_bytes -= live[pick].size;
      heap.free(live[pick].ptr);
      if (freed.size() < 200) {
        freed.emplace_back(live[pick].ptr, live[pick].size);
      }
      live[pick] = live.back();
      live.pop_back();
    } else if (!freed.empty()) {
      // I2: every freed pointer traps, at the base and at a random offset.
      const auto [p, size] = freed[rng.below(freed.size())];
      const std::size_t offset = rng.below(size);
      const auto report = catch_dangling([&] {
        volatile unsigned char c = p[offset];
        (void)c;
      });
      ASSERT_TRUE(report.has_value()) << "freed access did not trap";
    }
  }

  // I4: physical bytes bounded by peak live bytes (plus allocator slack),
  // NOT by total allocations (efence would need ~allocations * 4K).
  const std::size_t phys = arena.physical_bytes();
  EXPECT_LT(phys, 4 * peak_live_bytes + (1u << 20));

  for (const LiveObject& obj : live) heap.free(obj.ptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardedHeapProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class GuardedPoolProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuardedPoolProperties, PoolLifecycleConservesVa) {
  GuardedPoolContext ctx;
  const std::uint64_t base_seed = dpg::testing::dpg_test_seed(GetParam());
  DPG_SEED_TRACE(base_seed);
  workloads::Rng rng(base_seed);

  // Warm-up round establishes the steady-state footprint.
  auto run_round = [&](std::uint64_t seed) {
    workloads::Rng local(seed);
    GuardedPool pool(ctx);
    std::vector<std::pair<unsigned char*, unsigned char>> live;
    std::size_t spans = 0;
    for (int step = 0; step < 400; ++step) {
      if (local.below(3) != 0 || live.empty()) {
        const std::size_t size = 1 + local.below(3000);
        auto* p = static_cast<unsigned char*>(pool.alloc(size));
        const auto fill = static_cast<unsigned char>(local.below(256));
        p[0] = fill;
        p[size - 1] = fill;
        live.emplace_back(p, fill);
        const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
        spans += rec->span_length;
      } else {
        const std::size_t pick = local.below(live.size());
        EXPECT_EQ(*live[pick].first, live[pick].second);
        pool.free(live[pick].first);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    return spans;
  };

  (void)run_round(GetParam() * 3 + 1);
  const std::size_t phys_after_warm = ctx.arena().physical_bytes();
  const std::size_t shadow_after_warm = ctx.recyclable_shadow_bytes();

  // I5 + steady state: identical rounds must not grow physical memory, and
  // the recyclable shadow bytes must return to the same level each time.
  for (int round = 0; round < 4; ++round) {
    (void)run_round(GetParam() * 3 + 1);
    EXPECT_EQ(ctx.arena().physical_bytes(), phys_after_warm);
    EXPECT_EQ(ctx.recyclable_shadow_bytes(), shadow_after_warm);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardedPoolProperties,
                         ::testing::Values(7, 11, 19, 42));

class RegistryProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegistryProperties, LookupAgreesWithReferenceMap) {
  ShadowRegistry reg(32);
  const std::uint64_t seed = dpg::testing::dpg_test_seed(GetParam());
  DPG_SEED_TRACE(seed);
  workloads::Rng rng(seed);
  std::map<std::uintptr_t, ObjectRecord*> reference;
  std::vector<std::unique_ptr<ObjectRecord>> storage;

  for (int step = 0; step < 3000; ++step) {
    if (rng.below(3) != 0 || reference.empty()) {
      const std::uintptr_t base =
          0x7300000000 + rng.below(1u << 18) * vm::kPageSize;
      const std::size_t pages = 1 + rng.below(4);
      bool clash = false;
      for (std::size_t i = 0; i < pages; ++i) {
        clash |= reference.count(base + i * vm::kPageSize) > 0;
      }
      if (clash) continue;
      auto rec = std::make_unique<ObjectRecord>();
      rec->shadow_base = base;
      rec->span_length = pages * vm::kPageSize;
      reg.insert(*rec);
      for (std::size_t i = 0; i < pages; ++i) {
        reference[base + i * vm::kPageSize] = rec.get();
      }
      storage.push_back(std::move(rec));
    } else {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.below(reference.size())));
      ObjectRecord* rec = it->second;
      reg.erase(*rec);
      for (std::uintptr_t page = rec->shadow_base;
           page < rec->shadow_base + rec->span_length; page += vm::kPageSize) {
        reference.erase(page);
      }
    }
    // Spot-check agreement on random addresses.
    for (int probe = 0; probe < 4; ++probe) {
      const std::uintptr_t addr =
          0x7300000000 + rng.below(1u << 18) * vm::kPageSize + rng.below(4096);
      const auto it = reference.find(vm::page_down(addr));
      const ObjectRecord* expected = it == reference.end() ? nullptr : it->second;
      ASSERT_EQ(reg.lookup(addr), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryProperties,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace dpg::core
