file(REMOVE_RECURSE
  "CMakeFiles/pirc.dir/pirc.cc.o"
  "CMakeFiles/pirc.dir/pirc.cc.o.d"
  "pirc"
  "pirc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
