# Empty dependencies file for pirc.
# This may be replaced when dependencies are built.
