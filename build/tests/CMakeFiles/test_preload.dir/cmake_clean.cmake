file(REMOVE_RECURSE
  "CMakeFiles/test_preload.dir/test_preload.cc.o"
  "CMakeFiles/test_preload.dir/test_preload.cc.o.d"
  "test_preload"
  "test_preload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
