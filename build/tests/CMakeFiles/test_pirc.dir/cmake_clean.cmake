file(REMOVE_RECURSE
  "CMakeFiles/test_pirc.dir/test_pirc.cc.o"
  "CMakeFiles/test_pirc.dir/test_pirc.cc.o.d"
  "test_pirc"
  "test_pirc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
