# Empty dependencies file for test_pirc.
# This may be replaced when dependencies are built.
