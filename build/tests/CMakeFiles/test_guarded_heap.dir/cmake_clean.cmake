file(REMOVE_RECURSE
  "CMakeFiles/test_guarded_heap.dir/test_guarded_heap.cc.o"
  "CMakeFiles/test_guarded_heap.dir/test_guarded_heap.cc.o.d"
  "test_guarded_heap"
  "test_guarded_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guarded_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
