# Empty dependencies file for test_guarded_heap.
# This may be replaced when dependencies are built.
