# Empty compiler generated dependencies file for test_points_to.
# This may be replaced when dependencies are built.
