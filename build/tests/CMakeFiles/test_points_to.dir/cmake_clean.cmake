file(REMOVE_RECURSE
  "CMakeFiles/test_points_to.dir/test_points_to.cc.o"
  "CMakeFiles/test_points_to.dir/test_points_to.cc.o.d"
  "test_points_to"
  "test_points_to.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_points_to.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
