# Empty compiler generated dependencies file for test_fault_manager.
# This may be replaced when dependencies are built.
