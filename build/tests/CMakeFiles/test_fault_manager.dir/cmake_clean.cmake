file(REMOVE_RECURSE
  "CMakeFiles/test_fault_manager.dir/test_fault_manager.cc.o"
  "CMakeFiles/test_fault_manager.dir/test_fault_manager.cc.o.d"
  "test_fault_manager"
  "test_fault_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
