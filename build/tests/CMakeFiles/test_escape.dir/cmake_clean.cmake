file(REMOVE_RECURSE
  "CMakeFiles/test_escape.dir/test_escape.cc.o"
  "CMakeFiles/test_escape.dir/test_escape.cc.o.d"
  "test_escape"
  "test_escape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_escape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
