file(REMOVE_RECURSE
  "CMakeFiles/test_guarded_pool.dir/test_guarded_pool.cc.o"
  "CMakeFiles/test_guarded_pool.dir/test_guarded_pool.cc.o.d"
  "test_guarded_pool"
  "test_guarded_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guarded_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
