# Empty dependencies file for test_guarded_pool.
# This may be replaced when dependencies are built.
