# Empty dependencies file for test_gc_scan.
# This may be replaced when dependencies are built.
