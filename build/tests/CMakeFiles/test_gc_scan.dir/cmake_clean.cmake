file(REMOVE_RECURSE
  "CMakeFiles/test_gc_scan.dir/test_gc_scan.cc.o"
  "CMakeFiles/test_gc_scan.dir/test_gc_scan.cc.o.d"
  "test_gc_scan"
  "test_gc_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gc_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
