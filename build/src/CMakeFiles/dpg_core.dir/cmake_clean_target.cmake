file(REMOVE_RECURSE
  "libdpg_core.a"
)
