file(REMOVE_RECURSE
  "CMakeFiles/dpg_core.dir/core/fault_manager.cc.o"
  "CMakeFiles/dpg_core.dir/core/fault_manager.cc.o.d"
  "CMakeFiles/dpg_core.dir/core/gc_scan.cc.o"
  "CMakeFiles/dpg_core.dir/core/gc_scan.cc.o.d"
  "CMakeFiles/dpg_core.dir/core/guarded_heap.cc.o"
  "CMakeFiles/dpg_core.dir/core/guarded_heap.cc.o.d"
  "CMakeFiles/dpg_core.dir/core/guarded_pool.cc.o"
  "CMakeFiles/dpg_core.dir/core/guarded_pool.cc.o.d"
  "CMakeFiles/dpg_core.dir/core/registry.cc.o"
  "CMakeFiles/dpg_core.dir/core/registry.cc.o.d"
  "CMakeFiles/dpg_core.dir/core/runtime.cc.o"
  "CMakeFiles/dpg_core.dir/core/runtime.cc.o.d"
  "libdpg_core.a"
  "libdpg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
