
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fault_manager.cc" "src/CMakeFiles/dpg_core.dir/core/fault_manager.cc.o" "gcc" "src/CMakeFiles/dpg_core.dir/core/fault_manager.cc.o.d"
  "/root/repo/src/core/gc_scan.cc" "src/CMakeFiles/dpg_core.dir/core/gc_scan.cc.o" "gcc" "src/CMakeFiles/dpg_core.dir/core/gc_scan.cc.o.d"
  "/root/repo/src/core/guarded_heap.cc" "src/CMakeFiles/dpg_core.dir/core/guarded_heap.cc.o" "gcc" "src/CMakeFiles/dpg_core.dir/core/guarded_heap.cc.o.d"
  "/root/repo/src/core/guarded_pool.cc" "src/CMakeFiles/dpg_core.dir/core/guarded_pool.cc.o" "gcc" "src/CMakeFiles/dpg_core.dir/core/guarded_pool.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/dpg_core.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/dpg_core.dir/core/registry.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/CMakeFiles/dpg_core.dir/core/runtime.cc.o" "gcc" "src/CMakeFiles/dpg_core.dir/core/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpg_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpg_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
