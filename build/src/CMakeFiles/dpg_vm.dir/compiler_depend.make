# Empty compiler generated dependencies file for dpg_vm.
# This may be replaced when dependencies are built.
