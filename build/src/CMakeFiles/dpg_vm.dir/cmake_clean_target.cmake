file(REMOVE_RECURSE
  "libdpg_vm.a"
)
