
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/phys_arena.cc" "src/CMakeFiles/dpg_vm.dir/vm/phys_arena.cc.o" "gcc" "src/CMakeFiles/dpg_vm.dir/vm/phys_arena.cc.o.d"
  "/root/repo/src/vm/shadow_map.cc" "src/CMakeFiles/dpg_vm.dir/vm/shadow_map.cc.o" "gcc" "src/CMakeFiles/dpg_vm.dir/vm/shadow_map.cc.o.d"
  "/root/repo/src/vm/va_freelist.cc" "src/CMakeFiles/dpg_vm.dir/vm/va_freelist.cc.o" "gcc" "src/CMakeFiles/dpg_vm.dir/vm/va_freelist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
