file(REMOVE_RECURSE
  "CMakeFiles/dpg_vm.dir/vm/phys_arena.cc.o"
  "CMakeFiles/dpg_vm.dir/vm/phys_arena.cc.o.d"
  "CMakeFiles/dpg_vm.dir/vm/shadow_map.cc.o"
  "CMakeFiles/dpg_vm.dir/vm/shadow_map.cc.o.d"
  "CMakeFiles/dpg_vm.dir/vm/va_freelist.cc.o"
  "CMakeFiles/dpg_vm.dir/vm/va_freelist.cc.o.d"
  "libdpg_vm.a"
  "libdpg_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
