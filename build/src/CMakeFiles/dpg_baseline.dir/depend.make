# Empty dependencies file for dpg_baseline.
# This may be replaced when dependencies are built.
