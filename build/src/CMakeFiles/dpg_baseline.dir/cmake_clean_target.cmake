file(REMOVE_RECURSE
  "libdpg_baseline.a"
)
