file(REMOVE_RECURSE
  "CMakeFiles/dpg_baseline.dir/baseline/capability.cc.o"
  "CMakeFiles/dpg_baseline.dir/baseline/capability.cc.o.d"
  "CMakeFiles/dpg_baseline.dir/baseline/efence.cc.o"
  "CMakeFiles/dpg_baseline.dir/baseline/efence.cc.o.d"
  "CMakeFiles/dpg_baseline.dir/baseline/memcheck.cc.o"
  "CMakeFiles/dpg_baseline.dir/baseline/memcheck.cc.o.d"
  "libdpg_baseline.a"
  "libdpg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
