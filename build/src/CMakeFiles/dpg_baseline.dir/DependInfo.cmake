
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/capability.cc" "src/CMakeFiles/dpg_baseline.dir/baseline/capability.cc.o" "gcc" "src/CMakeFiles/dpg_baseline.dir/baseline/capability.cc.o.d"
  "/root/repo/src/baseline/efence.cc" "src/CMakeFiles/dpg_baseline.dir/baseline/efence.cc.o" "gcc" "src/CMakeFiles/dpg_baseline.dir/baseline/efence.cc.o.d"
  "/root/repo/src/baseline/memcheck.cc" "src/CMakeFiles/dpg_baseline.dir/baseline/memcheck.cc.o" "gcc" "src/CMakeFiles/dpg_baseline.dir/baseline/memcheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpg_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpg_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
