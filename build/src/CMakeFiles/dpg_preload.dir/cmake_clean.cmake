file(REMOVE_RECURSE
  "CMakeFiles/dpg_preload.dir/interpose/dpg_preload.cc.o"
  "CMakeFiles/dpg_preload.dir/interpose/dpg_preload.cc.o.d"
  "libdpg_preload.pdb"
  "libdpg_preload.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
