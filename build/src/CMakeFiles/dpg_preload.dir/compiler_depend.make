# Empty compiler generated dependencies file for dpg_preload.
# This may be replaced when dependencies are built.
