# Empty compiler generated dependencies file for dpg_alloc.
# This may be replaced when dependencies are built.
