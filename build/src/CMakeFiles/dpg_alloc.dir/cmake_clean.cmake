file(REMOVE_RECURSE
  "CMakeFiles/dpg_alloc.dir/alloc/heap.cc.o"
  "CMakeFiles/dpg_alloc.dir/alloc/heap.cc.o.d"
  "CMakeFiles/dpg_alloc.dir/alloc/pool.cc.o"
  "CMakeFiles/dpg_alloc.dir/alloc/pool.cc.o.d"
  "libdpg_alloc.a"
  "libdpg_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
