file(REMOVE_RECURSE
  "libdpg_alloc.a"
)
