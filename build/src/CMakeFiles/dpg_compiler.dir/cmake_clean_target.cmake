file(REMOVE_RECURSE
  "libdpg_compiler.a"
)
