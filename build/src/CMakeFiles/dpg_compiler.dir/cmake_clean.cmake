file(REMOVE_RECURSE
  "CMakeFiles/dpg_compiler.dir/compiler/escape.cc.o"
  "CMakeFiles/dpg_compiler.dir/compiler/escape.cc.o.d"
  "CMakeFiles/dpg_compiler.dir/compiler/interp.cc.o"
  "CMakeFiles/dpg_compiler.dir/compiler/interp.cc.o.d"
  "CMakeFiles/dpg_compiler.dir/compiler/parser.cc.o"
  "CMakeFiles/dpg_compiler.dir/compiler/parser.cc.o.d"
  "CMakeFiles/dpg_compiler.dir/compiler/points_to.cc.o"
  "CMakeFiles/dpg_compiler.dir/compiler/points_to.cc.o.d"
  "CMakeFiles/dpg_compiler.dir/compiler/pool_transform.cc.o"
  "CMakeFiles/dpg_compiler.dir/compiler/pool_transform.cc.o.d"
  "CMakeFiles/dpg_compiler.dir/compiler/verify.cc.o"
  "CMakeFiles/dpg_compiler.dir/compiler/verify.cc.o.d"
  "libdpg_compiler.a"
  "libdpg_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
