# Empty dependencies file for dpg_compiler.
# This may be replaced when dependencies are built.
