
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/escape.cc" "src/CMakeFiles/dpg_compiler.dir/compiler/escape.cc.o" "gcc" "src/CMakeFiles/dpg_compiler.dir/compiler/escape.cc.o.d"
  "/root/repo/src/compiler/interp.cc" "src/CMakeFiles/dpg_compiler.dir/compiler/interp.cc.o" "gcc" "src/CMakeFiles/dpg_compiler.dir/compiler/interp.cc.o.d"
  "/root/repo/src/compiler/parser.cc" "src/CMakeFiles/dpg_compiler.dir/compiler/parser.cc.o" "gcc" "src/CMakeFiles/dpg_compiler.dir/compiler/parser.cc.o.d"
  "/root/repo/src/compiler/points_to.cc" "src/CMakeFiles/dpg_compiler.dir/compiler/points_to.cc.o" "gcc" "src/CMakeFiles/dpg_compiler.dir/compiler/points_to.cc.o.d"
  "/root/repo/src/compiler/pool_transform.cc" "src/CMakeFiles/dpg_compiler.dir/compiler/pool_transform.cc.o" "gcc" "src/CMakeFiles/dpg_compiler.dir/compiler/pool_transform.cc.o.d"
  "/root/repo/src/compiler/verify.cc" "src/CMakeFiles/dpg_compiler.dir/compiler/verify.cc.o" "gcc" "src/CMakeFiles/dpg_compiler.dir/compiler/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpg_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpg_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
