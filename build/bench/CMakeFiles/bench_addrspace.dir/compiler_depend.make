# Empty compiler generated dependencies file for bench_addrspace.
# This may be replaced when dependencies are built.
