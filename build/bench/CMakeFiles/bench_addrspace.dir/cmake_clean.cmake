file(REMOVE_RECURSE
  "CMakeFiles/bench_addrspace.dir/bench_addrspace.cc.o"
  "CMakeFiles/bench_addrspace.dir/bench_addrspace.cc.o.d"
  "bench_addrspace"
  "bench_addrspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_addrspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
