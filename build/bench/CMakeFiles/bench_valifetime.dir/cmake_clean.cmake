file(REMOVE_RECURSE
  "CMakeFiles/bench_valifetime.dir/bench_valifetime.cc.o"
  "CMakeFiles/bench_valifetime.dir/bench_valifetime.cc.o.d"
  "bench_valifetime"
  "bench_valifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_valifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
