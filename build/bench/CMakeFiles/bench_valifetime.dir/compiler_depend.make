# Empty compiler generated dependencies file for bench_valifetime.
# This may be replaced when dependencies are built.
