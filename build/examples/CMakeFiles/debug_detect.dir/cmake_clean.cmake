file(REMOVE_RECURSE
  "CMakeFiles/debug_detect.dir/debug_detect.cpp.o"
  "CMakeFiles/debug_detect.dir/debug_detect.cpp.o.d"
  "debug_detect"
  "debug_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
