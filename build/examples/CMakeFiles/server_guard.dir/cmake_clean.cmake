file(REMOVE_RECURSE
  "CMakeFiles/server_guard.dir/server_guard.cpp.o"
  "CMakeFiles/server_guard.dir/server_guard.cpp.o.d"
  "server_guard"
  "server_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
