# Empty compiler generated dependencies file for server_guard.
# This may be replaced when dependencies are built.
