file(REMOVE_RECURSE
  "CMakeFiles/longlived_gc.dir/longlived_gc.cpp.o"
  "CMakeFiles/longlived_gc.dir/longlived_gc.cpp.o.d"
  "longlived_gc"
  "longlived_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longlived_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
