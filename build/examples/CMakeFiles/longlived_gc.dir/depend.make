# Empty dependencies file for longlived_gc.
# This may be replaced when dependencies are built.
