# Empty dependencies file for compiler_pools.
# This may be replaced when dependencies are built.
