file(REMOVE_RECURSE
  "CMakeFiles/compiler_pools.dir/compiler_pools.cpp.o"
  "CMakeFiles/compiler_pools.dir/compiler_pools.cpp.o.d"
  "compiler_pools"
  "compiler_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
