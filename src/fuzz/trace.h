// Fuzz traces — the shared language of the differential fuzzer.
//
// A Trace is a deterministic, seed-replayable program over abstract object
// ids: allocate, access, free, plus the bug classes the stack must detect
// (use-after-free reads/writes, double frees, interior-pointer frees) and the
// lifecycle events that stress the scaling layers (realloc churn, explicit
// revocation flushes, pool create/destroy). The same trace is executed
// against the real stack (harness.h) and predicted by the pure reference
// oracle (oracle.h); any disagreement is a divergence.
//
// Op semantics are STATE-DIRECTED, not label-directed: a kDoubleFree on an
// object the model considers live is executed (and predicted) as an ordinary
// free, a kUafRead on a live object as an ordinary read. The labels only bias
// generation. This makes the ddmin shrinker (harness.h) trivially sound —
// deleting the op that freed an object re-interprets later probe ops instead
// of wedging the executor — and keeps every shrunken trace a valid trace.
//
// Replay files (.dpgf) are line-oriented text: a header pinning the config
// and seed, then one op per line. `dpg_fuzz --replay file.dpgf` re-runs a
// divergence from the exact bytes the shrinker wrote.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dpg::fuzz {

enum class OpKind : std::uint8_t {
  kMalloc,       // obj := allocation of `size` bytes on lane `thread`
  kFree,         // free obj (clean: generator believes obj is live)
  kRead,         // read obj[offset] (clean)
  kWrite,        // rewrite obj's fill pattern (clean)
  kRealloc,      // obj2 := realloc(obj, size); obj becomes dangling
  kFlush,        // flush every revocation queue / remote list
  kUafRead,      // read obj[offset] after free — must trap once revoked
  kUafWrite,     // write obj[offset] after free — must trap once revoked
  kDoubleFree,   // free obj again — must report, exactly, in every config
  kInvalidFree,  // free an interior pointer of live obj — must report
  kPoolCreate,   // obj names a fresh pool; subsequent allocs land in it
  kPoolDestroy,  // destroy the innermost pool (obj); its objects die
};

[[nodiscard]] const char* op_name(OpKind k) noexcept;

struct Op {
  OpKind kind{};
  std::uint8_t thread = 0;   // executing lane
  std::uint32_t obj = 0;     // target object id (pool id for pool ops)
  std::uint32_t obj2 = 0;    // kRealloc: replacement object id
  std::uint32_t size = 0;    // kMalloc/kRealloc payload bytes
  std::uint32_t offset = 0;  // access offset (normalized by the executor)

  bool operator==(const Op&) const = default;
};

struct Trace {
  std::uint64_t seed = 0;
  std::uint32_t lanes = 1;  // executor threads (1 = run inline)
  std::vector<Op> ops;

  bool operator==(const Trace&) const = default;
};

struct GenParams {
  std::size_t n_ops = 2000;
  std::uint32_t lanes = 1;
  std::uint32_t max_size = 1024;  // payload bytes per object, >= 1
  std::size_t max_live = 256;     // soft cap on simultaneously live objects
  bool pools = false;             // emit kPoolCreate/kPoolDestroy (lanes == 1)
  // Plant temporal bugs (UAF probes, double frees, interior frees). Off for
  // configs where probing would be unsound (forced kUnguarded: a "double
  // free" would free a recycled live block of the shared canonical heap).
  bool plant_bugs = true;
  // Restrict to the op subset expressible as straight-line PIR for the
  // static-analyzer cross-check: no realloc, no invalid frees, no pools, no
  // flush, lane 0 only, and a bounded object count.
  bool static_compatible = false;

  bool operator==(const GenParams&) const = default;
};

// Deterministic: same (seed, params) -> byte-identical trace, any platform.
[[nodiscard]] Trace generate(std::uint64_t seed, const GenParams& params);

enum class HarnessMode : std::uint8_t { kHeap, kPool };

// One cell of the config matrix. `name` keys the matrix() registry and the
// replay header; every field below it reproduces the cell from scratch.
struct FuzzConfig {
  std::string name = "immediate-1shard";
  HarnessMode mode = HarnessMode::kHeap;
  std::size_t shards = 1;
  std::size_t magazine_slots = 0;
  std::size_t protect_batch = 0;
  std::size_t protect_batch_bytes = 0;
  std::string fault_plan;  // DPG_FAULT_INJECT grammar; "" = none
  int forced_mode = -1;    // core::GuardMode to pin, -1 = ladder off-forced
  // Base 1-in-N guard probability for sampled-rung cells (forced_mode ==
  // kSampled). 0 = governor default. The per-allocation decision is made by
  // the real governor and introspected back (classify_guard), so any N stays
  // exact.
  std::size_t sample_rate = 0;
  // Deliberate oracle defect (predicts queued revocations as already
  // applied): the known-bad seed for the shrink/replay demo.
  bool oracle_bug = false;
  // Lock-and-key lane cell: every heap allocation goes through a
  // core::LockAndKeyLane (generation key in the pointer's high bits, lock
  // word in the slot) instead of the page guard — the runtime half of the
  // scheme chooser's kLockAndKey verdict. The oracle mirrors the lane's
  // exact semantics including the tag reuse window after generation wrap.
  bool tag_lane = false;
  // Generation-counter width for tag-lane cells (clamped to [2, 15] by the
  // lane). Narrow widths force wraps, exercising the reuse-window oracle
  // branch; the default is the full width.
  unsigned tag_bits = 15;
  // Revocation backend (vm::RevokeBackend as int: 0 auto, 1 mprotect,
  // 2 batched, 3 pkey). The pkey cell runs the identical oracle lockstep —
  // which protection mechanism raises the trap is invisible to detection
  // semantics; on non-MPK hosts the backend resolves to its batched fallback
  // and the cell still must agree with the oracle.
  int revoke_backend = 0;
  // GuardConfig::window_recycle_cap for the MAP_FIXED recycle-cache cell.
  std::size_t recycle_cap = 0;
  GenParams gen;

  bool operator==(const FuzzConfig&) const = default;
};

// .dpgf serialization. from_replay returns false and fills `err` on any
// malformed input; to_replay(from_replay(x)) is byte-identical for files the
// fuzzer writes.
[[nodiscard]] std::string to_replay(const FuzzConfig& cfg, const Trace& trace);
[[nodiscard]] bool from_replay(const std::string& text, FuzzConfig* cfg,
                               Trace* trace, std::string* err);

}  // namespace dpg::fuzz
