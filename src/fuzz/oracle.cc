#include "fuzz/oracle.h"

namespace dpg::fuzz {

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::kSilent: return "silent";
    case Outcome::kTrap: return "trap";
    case Outcome::kReportDoubleFree: return "double-free-report";
    case Outcome::kReportInvalidFree: return "invalid-free-report";
    case Outcome::kReportTagMismatch: return "tag-mismatch-report";
    case Outcome::kSkipped: return "skipped";
  }
  return "?";
}

const Oracle::MObj* Oracle::find(std::uint32_t id) const {
  const auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

void Oracle::on_alloc(std::uint32_t id, std::uint32_t size, Guardness g,
                      std::uint32_t pool) {
  MObj o;
  o.phase = Phase::kLive;
  o.guard = g;
  o.size = size;
  o.fill = base_fill(id);
  o.pool = pool;
  objects_[id] = o;
}

void Oracle::on_free(std::uint32_t id) {
  const auto it = objects_.find(id);
  if (it != objects_.end()) it->second.phase = Phase::kFreed;
}

std::uint8_t Oracle::on_write(std::uint32_t id) {
  auto& o = objects_.at(id);
  std::uint8_t next = static_cast<std::uint8_t>(o.fill + 13u);
  if (next == 0) next = 1;
  o.fill = next;
  return next;
}

void Oracle::on_pool_destroyed(std::uint32_t pool) {
  for (auto& [id, o] : objects_) {
    if (o.pool == pool) o.phase = Phase::kReleased;
  }
}

namespace {

Prediction skip(const char* why) {
  Prediction p;
  p.execute = false;
  p.why = why;
  return p;
}

Prediction silent(const char* why, bool check_stale = false) {
  Prediction p;
  p.allow_silent = true;
  p.check_stale = check_stale;
  p.why = why;
  return p;
}

Prediction trap(const char* why) {
  Prediction p;
  p.allow_trap = true;
  p.why = why;
  return p;
}

Prediction report_double_free(const char* why) {
  Prediction p;
  p.allow_double_free = true;
  p.why = why;
  return p;
}

Prediction report_invalid_free(const char* why) {
  Prediction p;
  p.allow_invalid_free = true;
  p.why = why;
  return p;
}

Prediction report_tag_mismatch(const char* why) {
  Prediction p;
  p.allow_tag_mismatch = true;
  p.why = why;
  return p;
}

}  // namespace

Prediction Oracle::predict(const Op& op, bool revocation_applied,
                           bool tag_matches) const {
  switch (op.kind) {
    case OpKind::kMalloc:
    case OpKind::kFlush:
    case OpKind::kPoolCreate:
    case OpKind::kPoolDestroy:
      // Allocation and lifecycle management never report; allocation failure
      // (nullptr) is a harness error, not an outcome.
      return silent("lifecycle op");
    default:
      break;
  }

  const MObj* o = find(op.obj);
  if (o == nullptr) return skip("unknown object (shrunken malloc)");
  if (o->phase == Phase::kReleased) {
    // Pool-destroyed: the shadow VA may already back a new object; touching
    // it proves nothing either way.
    return skip("released object");
  }
  const bool live = o->phase == Phase::kLive;

  // kUafRead on a live object degrades to a clean read, kDoubleFree on a live
  // object to a clean free, etc. — state-directed semantics (trace.h) keep
  // shrunken traces meaningful.
  switch (op.kind) {
    case OpKind::kRead:
    case OpKind::kUafRead:
      if (live) return silent("live read", /*check_stale=*/true);
      switch (o->guard) {
        case Guardness::kGuarded:
          if (cfg_.oracle_bug) {
            // Deliberately broken: claims queued revocations already trap.
            return trap("freed guarded read [buggy oracle]");
          }
          return revocation_applied
                     ? trap("freed guarded read, revocation applied")
                     : silent("freed guarded read inside revocation window",
                              /*check_stale=*/true);
        case Guardness::kQuarantined:
          // Quarantine delays reuse: silent AND stale — never another
          // owner's bytes, never a trap.
          return silent("freed quarantined read", /*check_stale=*/true);
        case Guardness::kSampledFast:
          // The ledger free parked the block in the same delayed-reuse
          // quarantine, so the read is silent AND observes the stale fill.
          return silent("freed sampled fast-path read", /*check_stale=*/true);
        case Guardness::kPassthrough:
          // The block may have been recycled: the read must not trap, but
          // no value is promised.
          return silent("freed unguarded read");
        case Guardness::kTagged:
          // Lock-and-key: a stale key disagrees with the slot's lock — exact
          // synchronous report, no batching window. After a generation wrap
          // the key matches again (tag reuse window): silent, and no value
          // is promised (the slot may hold a new owner's bytes).
          return tag_matches
                     ? silent("freed tagged read inside tag reuse window")
                     : report_tag_mismatch("freed tagged read, stale key");
      }
      break;

    case OpKind::kWrite:
    case OpKind::kUafWrite:
      if (live) return silent("live write");
      switch (o->guard) {
        case Guardness::kGuarded:
          if (cfg_.oracle_bug) return trap("freed guarded write [buggy oracle]");
          return revocation_applied
                     ? trap("freed guarded write, revocation applied")
                     : silent("freed guarded write inside revocation window");
        case Guardness::kQuarantined:
          return silent("freed quarantined write");
        case Guardness::kSampledFast:
          // Quarantined block: writing cannot corrupt a new owner.
          return silent("freed sampled fast-path write");
        case Guardness::kPassthrough:
          // Writing a possibly-recycled block would corrupt a live object.
          return skip("freed unguarded write");
        case Guardness::kTagged:
          // Inside the reuse window the slot may already belong to a new
          // owner — writing would corrupt it, so the probe is skipped.
          return tag_matches
                     ? skip("freed tagged write inside tag reuse window")
                     : report_tag_mismatch("freed tagged write, stale key");
      }
      break;

    case OpKind::kFree:
    case OpKind::kDoubleFree:
      if (live) return silent("live free");
      switch (o->guard) {
        case Guardness::kGuarded:
          // The kLive->kFreed CAS makes this exact in EVERY config: batched,
          // remote, mid-window — the report never waits for the mprotect.
          return report_double_free("guarded double free");
        case Guardness::kQuarantined:
          // Registry miss with degraded allocs present: absorbed silently
          // into quarantine (the allocator's magic check attributes it
          // later, without a user-facing report).
          return silent("degraded double free absorbed");
        case Guardness::kSampledFast:
          // The rung's headline guarantee: the ledger's freed entry makes
          // this double free exact — report, never absorb.
          return report_double_free("sampled fast-path double free");
        case Guardness::kPassthrough:
          return skip("unguarded double free (heap UB)");
        case Guardness::kTagged:
          // A stale free fails the key check exactly; the lane reports one
          // kind (it cannot tell double free from UAF-free). Inside the
          // reuse window the free would pass the check and re-free the
          // slot under its current owner, so it is skipped like heap UB.
          return tag_matches
                     ? skip("freed tagged free inside tag reuse window")
                     : report_tag_mismatch("stale tagged free");
      }
      break;

    case OpKind::kInvalidFree:
      if (!live) return skip("interior free needs a live object");
      if (o->guard == Guardness::kTagged) {
        // Interior pointer: no readable slot header before payload+off, so
        // the magic check fails deterministically.
        return report_invalid_free("interior pointer free (tagged)");
      }
      if (o->guard != Guardness::kGuarded) {
        // A degraded interior pointer is quarantined as garbage (absorbed);
        // exercising that would make quarantine byte-accounting depend on
        // uninitialized header reads, so the fuzzer only probes guarded ones.
        return skip("interior free of unguarded object");
      }
      return report_invalid_free("interior pointer free");

    case OpKind::kRealloc:
      if (!live) return skip("realloc needs a live object");
      return silent("realloc moves");

    default:
      break;
  }
  return skip("unreachable");
}

}  // namespace dpg::fuzz
