#include "fuzz/harness.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "alloc/heap.h"
#include "core/fault_manager.h"
#include "core/guarded_pool.h"
#include "core/lockandkey.h"
#include "core/sharded_heap.h"
#include "fuzz/oracle.h"
#include "obs/metrics.h"
#include "vm/sys.h"

namespace dpg::fuzz {

namespace {

// Process-lifetime fuzz counters, exported through dpg_obs.
std::atomic<std::uint64_t> g_fuzz_runs{0};
std::atomic<std::uint64_t> g_fuzz_ops{0};
std::atomic<std::uint64_t> g_fuzz_reports{0};
std::atomic<std::uint64_t> g_fuzz_divergences{0};

void register_fuzz_counters() {
  static const bool once = [] {
    obs::register_counter("dpg_fuzz_runs", &g_fuzz_runs);
    obs::register_counter("dpg_fuzz_ops", &g_fuzz_ops);
    obs::register_counter("dpg_fuzz_reports", &g_fuzz_reports);
    obs::register_counter("dpg_fuzz_divergences", &g_fuzz_divergences);
    return true;
  }();
  (void)once;
}

// RAII fault plan: armed after SUT construction (so engine setup syscalls are
// not subject to injection — keeps the injected-failure sequence a pure
// function of the trace), cleared before the final flush/sweep.
class FaultPlanGuard {
 public:
  explicit FaultPlanGuard(const std::string& spec) : armed_(!spec.empty()) {
    if (armed_) vm::sys::set_fault_plan(spec.c_str());
  }
  ~FaultPlanGuard() { disarm(); }
  void disarm() {
    if (armed_) {
      vm::sys::clear_fault_plan();
      armed_ = false;
    }
  }

 private:
  bool armed_;
};

// Token scheduler: N persistent worker lanes; the main thread hands each op
// to its lane and blocks until it completes. Fully serialized (deterministic)
// while keeping thread identity real — shard pinning, remote frees, and
// per-thread signal state all behave as in production.
class LaneCrew {
 public:
  explicit LaneCrew(std::uint32_t lanes) {
    states_.reserve(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i) {
      states_.push_back(std::make_unique<LaneState>());
    }
    for (std::uint32_t i = 0; i < lanes; ++i) {
      threads_.emplace_back([this, i] {
        core::FaultManager::ensure_altstack();
        LaneState& st = *states_[i];
        std::unique_lock lk(st.mu);
        for (;;) {
          st.cv.wait(lk, [&] { return st.job != nullptr || st.quit; });
          if (st.quit) return;
          (*st.job)();
          st.job = nullptr;
          st.done = true;
          st.cv.notify_all();
        }
      });
    }
  }

  ~LaneCrew() {
    for (auto& st : states_) {
      std::lock_guard lk(st->mu);
      st->quit = true;
      st->cv.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  // Blocks until `job` has run to completion on `lane`. The mutex handoff
  // sequences every op's effects before the next op, whatever its lane.
  void run(std::uint32_t lane, const std::function<void()>& job) {
    LaneState& st = *states_[lane];
    std::unique_lock lk(st.mu);
    st.done = false;
    st.job = &job;
    st.cv.notify_all();
    st.cv.wait(lk, [&] { return st.done; });
  }

 private:
  struct LaneState {
    std::mutex mu;
    std::condition_variable cv;
    const std::function<void()>* job = nullptr;
    bool done = false;
    bool quit = false;
  };
  std::vector<std::unique_ptr<LaneState>> states_;
  std::vector<std::thread> threads_;
};

// The system under test, behind one interface for both harness modes.
class Sut {
 public:
  virtual ~Sut() = default;
  virtual void* malloc(std::size_t size, core::SiteId site) = 0;
  virtual void free(void* p, core::SiteId site, std::uint32_t pool) = 0;
  virtual void* realloc(void* p, std::size_t size, core::SiteId site,
                        std::uint32_t pool) = 0;
  virtual void flush() = 0;
  virtual bool revocation_applied(const void* p, std::uint32_t pool) = 0;
  virtual core::GuardMode mode() const = 0;
  // Pool id new allocations land in (always 0 for the heap mode).
  virtual std::uint32_t current_pool() const { return 0; }
  virtual bool pool_create(std::uint32_t) { return false; }
  virtual bool pool_destroy(std::uint32_t) { return false; }
  virtual core::GuardStats stats() = 0;
};

core::GuardConfig guard_config(const FuzzConfig& cfg,
                               core::DegradationGovernor* gov) {
  core::GuardConfig gc;
  gc.protect_batch = cfg.protect_batch;
  gc.protect_batch_bytes = cfg.protect_batch_bytes;
  gc.magazine_slots = cfg.magazine_slots;
  gc.revoke_backend = static_cast<vm::RevokeBackend>(cfg.revoke_backend);
  gc.window_recycle_cap = cfg.recycle_cap;
  gc.governor = gov;
  return gc;
}

core::GovernorConfig governor_config(const FuzzConfig& cfg) {
  core::GovernorConfig gc;
  // A forced rung must stay forced: disable the recovery ladder, or 4096
  // clean allocations would quietly promote the run back to full guard.
  if (cfg.forced_mode >= 0) gc.recover_after = 0;
  if (cfg.sample_rate != 0) gc.sample_rate = cfg.sample_rate;
  return gc;
}

class HeapSut final : public Sut {
 public:
  explicit HeapSut(const FuzzConfig& cfg)
      : gov_(governor_config(cfg)),
        heap_(arena_, guard_config(cfg, &gov_), cfg.shards) {
    if (cfg.forced_mode >= 0) {
      gov_.force_mode(static_cast<core::GuardMode>(cfg.forced_mode));
    }
  }

  void* malloc(std::size_t size, core::SiteId site) override {
    return heap_.malloc(size, site);
  }
  void free(void* p, core::SiteId site, std::uint32_t) override {
    heap_.free(p, site);
  }
  void* realloc(void* p, std::size_t size, core::SiteId site,
                std::uint32_t) override {
    return heap_.realloc(p, size, site);
  }
  void flush() override { heap_.flush_all(); }
  bool revocation_applied(const void* p, std::uint32_t) override {
    return heap_.revocation_applied(p);
  }
  core::GuardMode mode() const override { return gov_.mode(); }
  core::GuardStats stats() override { return heap_.stats(); }

 private:
  core::DegradationGovernor gov_;
  vm::PhysArena arena_;
  core::ShardedHeap heap_;
};

// Lock-and-key cell: the whole heap runs on the tag lane — the runtime half
// of a forced --scheme=tag A/B run. No shadow engine, no mprotect, no shadow
// VA; detection is the pointer-key-vs-slot-lock comparison at every mediated
// access and at free. Stats come from a local counter block the lane shares.
class TagHeapSut final : public Sut {
 public:
  explicit TagHeapSut(const FuzzConfig& cfg)
      : heap_(source_), lane_(heap_, counters_, cfg.tag_bits) {}

  void* malloc(std::size_t size, core::SiteId site) override {
    return lane_.alloc(size, site);
  }
  void free(void* p, core::SiteId site, std::uint32_t) override {
    lane_.free(p, site);
  }
  void* realloc(void* p, std::size_t size, core::SiteId site,
                std::uint32_t) override {
    // The lane has no in-place growth: realloc is alloc+free, and the free
    // performs the same stale-key check a plain free would. (The harness
    // refills the new object, so no bytes are copied.)
    void* np = lane_.alloc(size, site);
    if (np == nullptr) return nullptr;
    lane_.free(p, site);
    return np;
  }
  void flush() override {}  // no revocation queues on this lane
  bool revocation_applied(const void*, std::uint32_t) override { return true; }
  core::GuardMode mode() const override { return core::GuardMode::kFullGuard; }
  core::GuardStats stats() override { return counters_.snapshot(); }

 private:
  alloc::MmapSource source_;
  alloc::SegregatedHeap heap_;
  core::GuardCounters counters_;
  core::LockAndKeyLane lane_;
};

class PoolSut final : public Sut {
 public:
  explicit PoolSut(const FuzzConfig& cfg) : gov_(governor_config(cfg)) {
    if (cfg.forced_mode >= 0) {
      gov_.force_mode(static_cast<core::GuardMode>(cfg.forced_mode));
    }
    ctx_ = std::make_unique<core::GuardedPoolContext>(guard_config(cfg, &gov_));
    pools_.emplace_back(0u, std::make_unique<core::GuardedPool>(*ctx_));
  }

  ~PoolSut() override {
    // Destroy pools before the context (they hold its arena/freelist), and
    // fold their final stats in so stats() stays meaningful to the end.
    while (!pools_.empty()) destroy_back();
  }

  void* malloc(std::size_t size, core::SiteId site) override {
    return pools_.back().second->alloc(size, site);
  }
  void free(void* p, core::SiteId site, std::uint32_t pool) override {
    find(pool)->free(p, site);
  }
  void* realloc(void* p, std::size_t size, core::SiteId site,
                std::uint32_t pool) override {
    return find(pool)->realloc(p, size, site);
  }
  void flush() override {
    for (auto& [id, pool] : pools_) pool->engine().flush_protections();
  }
  bool revocation_applied(const void* p, std::uint32_t pool) override {
    return find(pool)->engine().revocation_applied(p);
  }
  core::GuardMode mode() const override { return gov_.mode(); }
  std::uint32_t current_pool() const override { return pools_.back().first; }

  bool pool_create(std::uint32_t id) override {
    pools_.emplace_back(id, std::make_unique<core::GuardedPool>(*ctx_));
    return true;
  }
  bool pool_destroy(std::uint32_t id) override {
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      if (pools_[i].first != id) continue;
      pools_[i].second->destroy();
      retired_ += pools_[i].second->stats();
      pools_.erase(pools_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
    return false;
  }

  core::GuardStats stats() override {
    core::GuardStats s = retired_;
    for (auto& [id, pool] : pools_) s += pool->stats();
    return s;
  }

 private:
  core::GuardedPool* find(std::uint32_t id) {
    for (auto& [pid, pool] : pools_) {
      if (pid == id) return pool.get();
    }
    return pools_.front().second.get();  // base pool backstop (unreachable)
  }
  void destroy_back() {
    pools_.back().second->destroy();
    retired_ += pools_.back().second->stats();
    pools_.pop_back();
  }

  core::DegradationGovernor gov_;
  std::unique_ptr<core::GuardedPoolContext> ctx_;
  // Creation order; back() is the pool new allocations land in.
  std::vector<std::pair<std::uint32_t, std::unique_ptr<core::GuardedPool>>>
      pools_;
  core::GuardStats retired_;
};

Outcome classify_outcome(const std::optional<core::DanglingReport>& rep) {
  if (!rep.has_value()) return Outcome::kSilent;
  switch (rep->kind) {
    case core::AccessKind::kFree: return Outcome::kReportDoubleFree;
    case core::AccessKind::kInvalidFree: return Outcome::kReportInvalidFree;
    case core::AccessKind::kTagMismatch: return Outcome::kReportTagMismatch;
    default: return Outcome::kTrap;
  }
}

Guardness classify_guard(const void* p, core::GuardMode mode) {
  if (core::LockAndKeyLane::is_tagged(reinterpret_cast<std::uint64_t>(p))) {
    return Guardness::kTagged;
  }
  if (core::ShadowEngine::record_of(p) != nullptr) return Guardness::kGuarded;
  // No registry record: the rung at return tells the rest apart. On the
  // sampled rung an unguarded allocation is ledgered (fast path), and a
  // sampled WINNER was already caught by the record_of check above — the
  // per-allocation sampling decision is introspected, never re-modelled.
  switch (mode) {
    case core::GuardMode::kUnguarded: return Guardness::kPassthrough;
    case core::GuardMode::kSampled: return Guardness::kSampledFast;
    default: return Guardness::kQuarantined;
  }
}

// Strips and key-checks a tag-lane pointer before a raw access; pointers
// from the other lanes pass through untouched. Must run inside
// catch_dangling — a stale key raises.
unsigned char* resolve(void* p) {
  const auto a = reinterpret_cast<std::uint64_t>(p);
  if (core::LockAndKeyLane::is_tagged(a)) {
    return static_cast<unsigned char*>(core::LockAndKeyLane::check_access(a));
  }
  return static_cast<unsigned char*>(p);
}

// Executor-side runtime state per object id.
struct ObjRt {
  void* ptr = nullptr;
  std::uint32_t size = 0;
  std::uint32_t pool = 0;
};

struct ExecResult {
  Outcome outcome = Outcome::kSilent;
  core::DanglingReport report{};
  std::uint8_t value = 0;
  void* new_ptr = nullptr;
};

std::unique_ptr<Sut> make_sut(const FuzzConfig& cfg) {
  if (cfg.tag_lane) return std::make_unique<TagHeapSut>(cfg);
  if (cfg.mode == HarnessMode::kPool) return std::make_unique<PoolSut>(cfg);
  return std::make_unique<HeapSut>(cfg);
}

}  // namespace

RunResult run_trace(const FuzzConfig& cfg, const Trace& trace,
                    std::ostream* log) {
  register_fuzz_counters();
  RunResult res;
  Oracle oracle(cfg);
  std::unordered_map<std::uint32_t, ObjRt> rt;
  std::unordered_set<std::uint32_t> active_pools{0};

  auto diverge = [&](std::size_t idx, const std::string& detail) {
    res.divergences.push_back(Divergence{idx, detail});
  };

  // Bookkeeping for the end-of-run invariant cross-checks.
  std::uint64_t guarded_allocs = 0;
  std::uint64_t degraded_allocs = 0;
  std::uint64_t sampled_allocs = 0;
  std::uint64_t guarded_frees = 0;
  std::uint64_t quarantined_frees = 0;
  std::uint64_t sampled_frees = 0;
  std::uint64_t observed_df = 0;
  std::uint64_t observed_if = 0;
  std::uint64_t tagged_allocs = 0;
  std::uint64_t tagged_frees = 0;
  std::uint64_t observed_tm_free = 0;    // stale tagged frees (engine counter)
  std::uint64_t observed_tm_access = 0;  // stale tagged loads/stores (process)

  const std::uint64_t detections_before =
      core::FaultManager::instance().detections();
  const std::uint64_t access_mm_before =
      core::LockAndKeyLane::access_mismatches();

  {
    std::unique_ptr<Sut> sut = make_sut(cfg);
    FaultPlanGuard plan(cfg.fault_plan);
    const std::uint32_t lanes = std::max<std::uint32_t>(trace.lanes, 1);
    std::unique_ptr<LaneCrew> crew;
    if (lanes > 1) crew = std::make_unique<LaneCrew>(lanes);

    auto execute = [&](std::uint8_t lane, const std::function<void()>& job) {
      if (crew != nullptr) {
        crew->run(lane, job);
      } else {
        job();
      }
    };

    auto note_outcome = [&](const ExecResult& r) {
      if (r.outcome != Outcome::kSilent) {
        ++res.reports;
        if (r.outcome == Outcome::kReportDoubleFree) ++observed_df;
        if (r.outcome == Outcome::kReportInvalidFree) ++observed_if;
      }
    };

    // Precision: a report about a guarded object must name the object.
    auto check_precision = [&](std::size_t idx, const Op& op, const ObjRt& o,
                               const ExecResult& r) {
      if (r.outcome == Outcome::kSilent) return;
      if (r.report.alloc_site != 0 && r.report.alloc_site != op.obj) {
        diverge(idx, std::string(op_name(op.kind)) + " obj " +
                         std::to_string(op.obj) +
                         ": report names alloc site " +
                         std::to_string(r.report.alloc_site));
      }
      if (r.report.object_base != 0 &&
          r.report.object_base != reinterpret_cast<std::uintptr_t>(o.ptr)) {
        diverge(idx, std::string(op_name(op.kind)) + " obj " +
                         std::to_string(op.obj) +
                         ": report names a different object base");
      }
    };

    for (std::size_t idx = 0; idx < trace.ops.size(); ++idx) {
      const Op& op = trace.ops[idx];

      // Structural skips the oracle cannot judge (it has no pool/rt tables):
      // pool ops in heap mode, duplicate ids, inactive pools.
      if (op.kind == OpKind::kPoolCreate || op.kind == OpKind::kPoolDestroy) {
        const bool create = op.kind == OpKind::kPoolCreate;
        const bool valid = cfg.mode == HarnessMode::kPool && op.obj != 0 &&
                           (create ? active_pools.count(op.obj) == 0
                                   : active_pools.count(op.obj) != 0);
        if (!valid) {
          ++res.skipped;
          continue;
        }
        ExecResult r;
        const std::function<void()> job = [&] {
          auto rep = core::catch_dangling([&] {
            if (create) {
              sut->pool_create(op.obj);
            } else {
              sut->pool_destroy(op.obj);
            }
          });
          r.outcome = classify_outcome(rep);
          if (rep.has_value()) r.report = *rep;
        };
        execute(op.thread, job);
        ++res.executed;
        note_outcome(r);
        if (r.outcome != Outcome::kSilent) {
          diverge(idx, std::string(op_name(op.kind)) + " pool " +
                           std::to_string(op.obj) + " reported " +
                           outcome_name(r.outcome));
        }
        if (create) {
          active_pools.insert(op.obj);
        } else {
          active_pools.erase(op.obj);
          oracle.on_pool_destroyed(op.obj);
        }
        continue;
      }
      if ((op.kind == OpKind::kMalloc && rt.count(op.obj) != 0) ||
          (op.kind == OpKind::kRealloc && rt.count(op.obj2) != 0)) {
        ++res.skipped;  // malformed replay: duplicate object id
        continue;
      }

      const Oracle::MObj* model = oracle.find(op.obj);
      // Introspect the SUT only where the prediction depends on it: probes
      // of freed guarded objects (revocation state) and freed tagged objects
      // (key-vs-lock state — false exactly when the stale use will report).
      bool revoked = false;
      bool tag_ok = false;
      if (model != nullptr && model->phase == Phase::kFreed) {
        const ObjRt& o = rt.at(op.obj);
        if (model->guard == Guardness::kGuarded) {
          revoked = sut->revocation_applied(o.ptr, o.pool);
        } else if (model->guard == Guardness::kTagged) {
          tag_ok = core::LockAndKeyLane::tag_matches(
              reinterpret_cast<std::uint64_t>(o.ptr));
        }
      }
      const Prediction pred = oracle.predict(op, revoked, tag_ok);
      if (!pred.execute) {
        ++res.skipped;
        continue;
      }

      // Everything a job dereferences must outlive the execute() call below,
      // so the per-op inputs live here, not inside the switch. `tgt` points
      // into `rt`, whose element references are stable across inserts.
      ExecResult r;
      std::function<void()> job;
      const std::uint8_t expect_fill = model != nullptr ? model->fill : 0;
      const ObjRt* tgt = nullptr;
      if (const auto it = rt.find(op.obj); it != rt.end()) tgt = &it->second;
      std::uint32_t off = 0;
      std::uint8_t byte = 0;  // fill byte the job stores (alloc/write ops)
      bool live_write = false;

      auto finish = [&r](const std::optional<core::DanglingReport>& rep) {
        r.outcome = classify_outcome(rep);
        if (rep.has_value()) r.report = *rep;
      };

      switch (op.kind) {
        case OpKind::kMalloc:
          byte = Oracle::base_fill(op.obj);
          job = [&] {
            finish(core::catch_dangling([&] {
              void* p = sut->malloc(op.size, op.obj);
              r.new_ptr = p;
              if (p != nullptr) std::memset(resolve(p), byte, op.size);
            }));
          };
          break;
        case OpKind::kRead:
        case OpKind::kUafRead:
          off = tgt->size != 0 ? op.offset % tgt->size : 0;
          job = [&] {
            finish(core::catch_dangling([&] {
              r.value = *reinterpret_cast<volatile unsigned char*>(
                  resolve(tgt->ptr) + off);
            }));
          };
          break;
        case OpKind::kWrite:
        case OpKind::kUafWrite:
          off = tgt->size != 0 ? op.offset % tgt->size : 0;
          live_write = model->phase == Phase::kLive;
          // Live write: rotate the whole fill. Freed (in-window/quarantine)
          // write: store the byte already there — exercises the MMU write
          // path without perturbing the stale-value model.
          byte = live_write ? oracle.on_write(op.obj) : model->fill;
          job = [&] {
            finish(core::catch_dangling([&] {
              if (live_write) {
                std::memset(resolve(tgt->ptr), byte, tgt->size);
              } else {
                *reinterpret_cast<volatile unsigned char*>(
                    resolve(tgt->ptr) + off) = byte;
              }
            }));
          };
          break;
        case OpKind::kFree:
        case OpKind::kDoubleFree:
          job = [&] {
            finish(core::catch_dangling(
                [&] { sut->free(tgt->ptr, op.obj, tgt->pool); }));
          };
          break;
        case OpKind::kInvalidFree:
          off = tgt->size > 1 ? 1 + (op.offset % (tgt->size - 1)) : 1;
          job = [&] {
            finish(core::catch_dangling([&] {
              sut->free(static_cast<unsigned char*>(tgt->ptr) + off, op.obj,
                        tgt->pool);
            }));
          };
          break;
        case OpKind::kRealloc:
          byte = Oracle::base_fill(op.obj2);
          job = [&] {
            finish(core::catch_dangling([&] {
              void* np = sut->realloc(tgt->ptr, op.size, op.obj2, tgt->pool);
              r.new_ptr = np;
              if (np != nullptr) std::memset(resolve(np), byte, op.size);
            }));
          };
          break;
        case OpKind::kFlush:
          job = [&] { finish(core::catch_dangling([&] { sut->flush(); })); };
          break;
        default:
          ++res.skipped;
          continue;
      }

      execute(op.thread, job);
      ++res.executed;
      note_outcome(r);
      if (r.outcome == Outcome::kReportTagMismatch) {
        // Free-path mismatches land in the engine counter block; access-path
        // ones in the lane's process-wide counter. Track both for the
        // end-of-run invariants.
        if (op.kind == OpKind::kFree || op.kind == OpKind::kDoubleFree) {
          ++observed_tm_free;
        } else {
          ++observed_tm_access;
        }
      }

      // 1. Outcome must be exactly what the oracle permits.
      if (!pred.permits(r.outcome)) {
        std::ostringstream d;
        d << op_name(op.kind) << " obj " << op.obj << ": expected "
          << pred.why << ", got " << outcome_name(r.outcome);
        diverge(idx, d.str());
      } else {
        // 2. Value exactness for silent reads.
        if (r.outcome == Outcome::kSilent && pred.check_stale &&
            (op.kind == OpKind::kRead || op.kind == OpKind::kUafRead) &&
            r.value != expect_fill) {
          std::ostringstream d;
          d << op_name(op.kind) << " obj " << op.obj << " off " << off
            << ": fill mismatch (got 0x" << std::hex << unsigned{r.value}
            << ", want 0x" << unsigned{expect_fill} << ") — " << pred.why;
          diverge(idx, d.str());
        }
        // 3. Report precision. Tag-lane reports carry no alloc site (the
        // slot header describes the current generation's owner, not the
        // stale pointer's), but the object base must still be the probed
        // pointer. Sampled fast-path double-free reports come from the
        // ledger, which recorded both — they are held to the same bar.
        if (rt.count(op.obj) != 0 && model != nullptr &&
            (model->guard == Guardness::kGuarded ||
             model->guard == Guardness::kTagged ||
             model->guard == Guardness::kSampledFast)) {
          check_precision(idx, op, rt.at(op.obj), r);
        }
      }

      // Advance the model.
      switch (op.kind) {
        case OpKind::kMalloc:
          if (r.outcome == Outcome::kSilent) {
            if (r.new_ptr == nullptr) {
              diverge(idx, "malloc obj " + std::to_string(op.obj) +
                               " returned nullptr (arena exhausted?)");
              break;
            }
            const Guardness g = classify_guard(r.new_ptr, sut->mode());
            const std::uint32_t pool = sut->current_pool();
            if (g == Guardness::kGuarded) {
              ++guarded_allocs;
            } else if (g == Guardness::kTagged) {
              ++tagged_allocs;
            } else if (g == Guardness::kSampledFast) {
              ++sampled_allocs;
            } else {
              ++degraded_allocs;
            }
            oracle.on_alloc(op.obj, op.size, g, pool);
            rt[op.obj] = ObjRt{r.new_ptr, op.size, pool};
          }
          break;
        case OpKind::kFree:
        case OpKind::kDoubleFree:
          if (r.outcome == Outcome::kSilent) {
            if (model->guard == Guardness::kGuarded) {
              ++guarded_frees;  // phase was live: the CAS admitted this free
            } else if (model->guard == Guardness::kQuarantined) {
              ++quarantined_frees;  // live free AND absorbed double free
            } else if (model->guard == Guardness::kSampledFast) {
              ++sampled_frees;  // the ledger admitted this free exactly
            } else if (model->guard == Guardness::kTagged) {
              ++tagged_frees;  // the key matched: the lock advanced
            }
            oracle.on_free(op.obj);
          }
          break;
        case OpKind::kRealloc:
          if (r.outcome == Outcome::kSilent) {
            if (r.new_ptr == nullptr) {
              diverge(idx, "realloc obj " + std::to_string(op.obj) +
                               " returned nullptr");
              break;
            }
            if (model->guard == Guardness::kGuarded) {
              ++guarded_frees;
            } else if (model->guard == Guardness::kQuarantined) {
              ++quarantined_frees;
            } else if (model->guard == Guardness::kSampledFast) {
              ++sampled_frees;
            } else if (model->guard == Guardness::kTagged) {
              ++tagged_frees;
            }
            oracle.on_free(op.obj);
            const Guardness g = classify_guard(r.new_ptr, sut->mode());
            const std::uint32_t pool = rt.at(op.obj).pool;
            if (g == Guardness::kGuarded) {
              ++guarded_allocs;
            } else if (g == Guardness::kTagged) {
              ++tagged_allocs;
            } else if (g == Guardness::kSampledFast) {
              ++sampled_allocs;
            } else {
              ++degraded_allocs;
            }
            oracle.on_alloc(op.obj2, op.size, g, pool);
            rt[op.obj2] = ObjRt{r.new_ptr, op.size, pool};
          }
          break;
        default:
          break;
      }
    }

    // End of trace: disarm injection, apply every queued revocation, then
    // audit the paper's claim object by object.
    plan.disarm();
    sut->flush();

    std::vector<std::uint32_t> ids;
    ids.reserve(oracle.objects().size());
    for (const auto& [id, o] : oracle.objects()) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    constexpr std::size_t kSweep = static_cast<std::size_t>(-1);
    for (const std::uint32_t id : ids) {
      const Oracle::MObj& o = oracle.objects().at(id);
      if (o.phase != Phase::kFreed) continue;
      const ObjRt& ro = rt.at(id);
      if (o.guard == Guardness::kGuarded) {
        // Exactness: with all queues flushed, EVERY dangling use must trap.
        if (!sut->revocation_applied(ro.ptr, ro.pool)) {
          diverge(kSweep, "sweep: freed guarded obj " + std::to_string(id) +
                              " still unrevoked after final flush");
          continue;
        }
        ExecResult r;
        auto rep = core::catch_dangling([&] {
          r.value = *reinterpret_cast<volatile unsigned char*>(ro.ptr);
        });
        r.outcome = classify_outcome(rep);
        if (rep.has_value()) r.report = *rep;
        note_outcome(r);
        if (r.outcome != Outcome::kTrap) {
          diverge(kSweep, "sweep: dangling read of obj " + std::to_string(id) +
                              " did not trap (" + outcome_name(r.outcome) +
                              ")");
        }
      } else if (o.guard == Guardness::kTagged) {
        // Exactness modulo the wrap window: a stale key MUST report; a
        // wrapped key is the documented tag reuse window — the one precision
        // hole this lane concedes, so nothing is asserted there.
        if (core::LockAndKeyLane::tag_matches(
                reinterpret_cast<std::uint64_t>(ro.ptr))) {
          continue;
        }
        ExecResult r;
        auto rep = core::catch_dangling([&] {
          r.value = *reinterpret_cast<volatile unsigned char*>(
              resolve(ro.ptr));
        });
        r.outcome = classify_outcome(rep);
        if (rep.has_value()) r.report = *rep;
        note_outcome(r);
        if (r.outcome == Outcome::kReportTagMismatch) {
          ++observed_tm_access;
        } else {
          diverge(kSweep, "sweep: stale tagged read of obj " +
                              std::to_string(id) + " did not report (" +
                              outcome_name(r.outcome) + ")");
        }
      } else if (o.guard == Guardness::kQuarantined ||
                 o.guard == Guardness::kSampledFast) {
        // Suspension, not falsification: the quarantined block still holds
        // the object's last fill — it was never handed to a new owner. The
        // sampled fast path frees through the same quarantine, so it makes
        // the identical promise.
        ExecResult r;
        auto rep = core::catch_dangling([&] {
          r.value = *reinterpret_cast<volatile unsigned char*>(ro.ptr);
        });
        note_outcome(r);
        if (rep.has_value()) {
          diverge(kSweep, "sweep: quarantined obj " + std::to_string(id) +
                              " read reported instead of staying silent");
        } else if (r.value != o.fill) {
          diverge(kSweep, "sweep: quarantined obj " + std::to_string(id) +
                              " lost its stale fill (reused?)");
        }
      }
    }

    // Engine counters must corroborate the model's ledger exactly.
    const core::GuardStats st = sut->stats();
    auto expect_eq = [&](std::uint64_t got, std::uint64_t want,
                         const char* what) {
      if (got != want) {
        diverge(kSweep, std::string("invariant: ") + what + " = " +
                            std::to_string(got) + ", oracle says " +
                            std::to_string(want));
      }
    };
    expect_eq(st.allocations, guarded_allocs, "stats.allocations");
    expect_eq(st.degraded_allocs, degraded_allocs, "stats.degraded_allocs");
    expect_eq(st.frees, guarded_frees, "stats.frees");
    expect_eq(st.double_frees, observed_df, "stats.double_frees");
    expect_eq(st.invalid_frees, observed_if, "stats.invalid_frees");
    expect_eq(st.quarantined_frees, quarantined_frees,
              "stats.quarantined_frees");
    expect_eq(st.sampled_allocs, sampled_allocs, "stats.sampled_allocs");
    expect_eq(st.sampled_frees, sampled_frees, "stats.sampled_frees");
    expect_eq(st.tagged_allocs, tagged_allocs, "stats.tagged_allocs");
    expect_eq(st.tagged_frees, tagged_frees, "stats.tagged_frees");
    expect_eq(st.tag_mismatches, observed_tm_free, "stats.tag_mismatches");
    expect_eq(core::LockAndKeyLane::access_mismatches() - access_mm_before,
              observed_tm_access, "lane access mismatches");
    if (cfg.fault_plan.empty()) {
      // With no injected mprotect/mmap refusals every admitted free ends as
      // a revoked span once the queues are flushed.
      expect_eq(st.revoked_spans, guarded_frees, "stats.revoked_spans");
      expect_eq(st.guard_failures, 0, "stats.guard_failures");
    } else {
      expect_eq(st.revoked_spans, guarded_frees,
                "stats.revoked_spans (mmap-only plan)");
    }

    const std::uint64_t detections_delta =
        core::FaultManager::instance().detections() - detections_before;
    expect_eq(detections_delta, res.reports, "process detections delta");
  }

  g_fuzz_runs.fetch_add(1, std::memory_order_relaxed);
  g_fuzz_ops.fetch_add(res.executed, std::memory_order_relaxed);
  g_fuzz_reports.fetch_add(res.reports, std::memory_order_relaxed);
  g_fuzz_divergences.fetch_add(res.divergences.size(),
                               std::memory_order_relaxed);

  if (log != nullptr) {
    *log << "[" << cfg.name << "] seed=" << trace.seed
         << " ops=" << trace.ops.size() << " executed=" << res.executed
         << " skipped=" << res.skipped << " reports=" << res.reports
         << " divergences=" << res.divergences.size() << "\n";
    for (const Divergence& d : res.divergences) {
      if (d.op_index == static_cast<std::size_t>(-1)) {
        *log << "  [run] " << d.detail << "\n";
      } else {
        *log << "  [op " << d.op_index << "] " << d.detail << "\n";
      }
    }
  }
  return res;
}

std::vector<FuzzConfig> smoke_matrix(std::size_t n_ops) {
  std::vector<FuzzConfig> v;
  auto base = [&](const char* name) {
    FuzzConfig c;
    c.name = name;
    c.gen.n_ops = n_ops;
    return c;
  };
  v.push_back(base("immediate-1shard"));
  {
    FuzzConfig c = base("batch16-1shard");
    c.protect_batch = 16;
    v.push_back(c);
  }
  {
    FuzzConfig c = base("bytes4k-mag64");
    c.protect_batch_bytes = 4096;
    c.magazine_slots = 64;
    v.push_back(c);
  }
  {
    FuzzConfig c = base("batch16-4shard-mt");
    c.shards = 4;
    c.protect_batch = 16;
    c.magazine_slots = 64;
    c.gen.lanes = 4;
    v.push_back(c);
  }
  {
    FuzzConfig c = base("forced-quarantine");
    c.forced_mode = 2;  // core::GuardMode::kQuarantineOnly
    v.push_back(c);
  }
  {
    // Sampled rung, 1-in-4: both lanes of the rung exercised in one run —
    // winners behave like full guard, losers like the ledgered fast path.
    FuzzConfig c = base("sampled-n4");
    c.forced_mode = 1;  // core::GuardMode::kSampled
    c.sample_rate = 4;
    v.push_back(c);
  }
  {
    FuzzConfig c = base("pool-batch16");
    c.mode = HarnessMode::kPool;
    c.protect_batch = 16;
    c.magazine_slots = 64;
    c.gen.pools = true;
    v.push_back(c);
  }
  {
    // Lock-and-key lane at full tag width: stale uses report synchronously,
    // generation wraps essentially never occur.
    FuzzConfig c = base("tag-lane");
    c.tag_lane = true;
    v.push_back(c);
  }
  {
    // MPK revocation backend. Detection semantics are backend-invariant, so
    // the cell runs the identical oracle lockstep on every host: on MPK
    // hardware freed spans retag to the revoked key (SEGV_PKUERR traps), on
    // anything else the Revoker's batched-mprotect fallback engages — and
    // both must agree with the oracle op for op.
    FuzzConfig c = base("pkey-batch16");
    c.revoke_backend = 3;  // vm::RevokeBackend::kPkey
    c.protect_batch = 16;
    v.push_back(c);
  }
  {
    // MAP_FIXED recycle cache (DESIGN.md §16) with a deliberately tiny cap:
    // parked spans coalesce, split, and overflow to the shared freelist all
    // within one run, and none of it may perturb detection.
    FuzzConfig c = base("map-fixed-recycle");
    c.magazine_slots = 64;
    c.protect_batch = 16;
    c.recycle_cap = 32;
    v.push_back(c);
  }
  return v;
}

std::vector<FuzzConfig> matrix(std::size_t n_ops) {
  std::vector<FuzzConfig> v = smoke_matrix(n_ops);
  auto base = [&](const char* name) {
    FuzzConfig c;
    c.name = name;
    c.gen.n_ops = n_ops;
    return c;
  };
  {
    FuzzConfig c = base("mag64-1shard");
    c.magazine_slots = 64;
    v.push_back(c);
  }
  {
    FuzzConfig c = base("immediate-4shard-mt");
    c.shards = 4;
    c.gen.lanes = 4;
    v.push_back(c);
  }
  {
    FuzzConfig c = base("faultplan-mmap");
    c.fault_plan = "mmap:errno=ENOMEM:every=97";
    v.push_back(c);
  }
  {
    FuzzConfig c = base("faultplan-mmap-batch16-mt");
    c.shards = 4;
    c.protect_batch = 16;
    c.gen.lanes = 4;
    c.fault_plan = "mmap:errno=ENOMEM:every=131";
    v.push_back(c);
  }
  {
    FuzzConfig c = base("pool-immediate");
    c.mode = HarnessMode::kPool;
    c.gen.pools = true;
    v.push_back(c);
  }
  {
    FuzzConfig c = base("forced-unguarded");
    c.forced_mode = 3;  // core::GuardMode::kUnguarded
    c.gen.plant_bugs = false;  // probing a plain heap would be UB, not a test
    v.push_back(c);
  }
  {
    // N=1 degenerates to full guard: every allocation samples, so this cell
    // must be indistinguishable from the unforced ladder's top rung.
    FuzzConfig c = base("sampled-n1");
    c.forced_mode = 1;  // core::GuardMode::kSampled
    c.sample_rate = 1;
    v.push_back(c);
  }
  {
    // Production-shaped rate: almost everything takes the ledgered fast
    // path; double frees must still report exactly.
    FuzzConfig c = base("sampled-n64");
    c.forced_mode = 1;  // core::GuardMode::kSampled
    c.sample_rate = 64;
    v.push_back(c);
  }
  {
    // Cross-thread frees of fast-path objects: the router misses the
    // registry and must consult the shared ledger on the home shard.
    FuzzConfig c = base("sampled-n4-4shard-mt");
    c.forced_mode = 1;  // core::GuardMode::kSampled
    c.sample_rate = 4;
    c.shards = 4;
    c.gen.lanes = 4;
    v.push_back(c);
  }
  {
    // 2-bit generations (locks cycle 1..3): slot churn wraps the counter
    // constantly, so stale probes land inside the tag reuse window often —
    // the wrap branch of the oracle is exercised, not just documented.
    FuzzConfig c = base("tag-wrap2");
    c.tag_lane = true;
    c.tag_bits = 2;
    v.push_back(c);
  }
  {
    // pkey backend under cross-thread frees: one shared Revoker (one revoked
    // key) serves all four shards, remote frees retag spans another lane
    // allocated. On non-MPK hosts the same cell exercises the fallback under
    // the identical schedule.
    FuzzConfig c = base("pkey-4shard-mt");
    c.revoke_backend = 3;
    c.shards = 4;
    c.protect_batch = 16;
    c.magazine_slots = 64;
    c.gen.lanes = 4;
    v.push_back(c);
  }
  {
    // Recycle cache under shard-parallel churn: four caches coalescing and
    // splitting independently while remote frees cross shard boundaries.
    FuzzConfig c = base("recycle-4shard-mt");
    c.shards = 4;
    c.protect_batch = 16;
    c.magazine_slots = 64;
    c.recycle_cap = 16;
    c.gen.lanes = 4;
    v.push_back(c);
  }
  return v;
}

Trace shrink(const FuzzConfig& cfg, const Trace& trace, std::size_t max_runs) {
  std::size_t runs = 0;
  auto diverges = [&](const Trace& t) {
    ++runs;
    return !run_trace(cfg, t, nullptr).ok();
  };
  if (!diverges(trace)) return trace;

  Trace cur = trace;
  std::size_t chunk = std::max<std::size_t>(cur.ops.size() / 2, 1);
  while (runs < max_runs) {
    bool removed_any = false;
    for (std::size_t start = 0; start < cur.ops.size() && runs < max_runs;) {
      const std::size_t len = std::min(chunk, cur.ops.size() - start);
      Trace cand = cur;
      cand.ops.erase(cand.ops.begin() + static_cast<std::ptrdiff_t>(start),
                     cand.ops.begin() + static_cast<std::ptrdiff_t>(start + len));
      if (!cand.ops.empty() && diverges(cand)) {
        cur = std::move(cand);  // keep `start`: the next chunk slid into place
        removed_any = true;
      } else {
        start += len;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // 1-minimal: no single op can be removed
    } else {
      chunk = chunk / 2;
    }
  }
  return cur;
}

}  // namespace dpg::fuzz
