// Differential harness — executes a Trace against the real stack and the
// reference oracle simultaneously, one op at a time.
//
// Determinism: multi-lane traces run on persistent worker lanes driven by a
// token scheduler — the main thread hands each op to its lane and waits for
// completion, so execution is fully serialized in trace order while still
// exercising the real cross-thread machinery (thread-pinned shards, the
// lock-free remote-free path, per-thread altstacks). Same (config, trace) in
// a fresh process => same syscall sequence, same outcomes, same divergences.
//
// Every executed op is checked three ways:
//   1. outcome: the observed result (silent / trap / double-free report /
//      invalid-free report) must be the oracle's exact prediction;
//   2. precision: a report on a guarded object must name that object
//      (alloc site == the fuzzer's object id, object base == its pointer);
//   3. value: silent reads must observe the model fill byte — on freed
//      objects this is the revoked-then-reused detector (quarantine and the
//      revocation window must expose stale bytes, never a new owner's).
//
// After the trace: a final flush, then an exactness sweep (every freed
// guarded object MUST now trap; every freed quarantined object MUST still
// hold its stale fill), then stats-invariant cross-checks against the
// engine's own counters and the process detections() delta.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/trace.h"

namespace dpg::fuzz {

// SIZE_MAX-valued op_index marks a run-level check (sweep or invariant), not
// a specific op.
struct Divergence {
  std::size_t op_index = static_cast<std::size_t>(-1);
  std::string detail;
};

struct RunResult {
  std::vector<Divergence> divergences;
  std::size_t executed = 0;
  std::size_t skipped = 0;
  std::uint64_t reports = 0;  // traps + software reports observed in-run
  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }
};

// Runs one (config, trace) cell. `log` (may be null) receives a one-line
// summary plus every divergence.
[[nodiscard]] RunResult run_trace(const FuzzConfig& cfg, const Trace& trace,
                                  std::ostream* log = nullptr);

// The full config matrix (ISSUE 5): magazines on/off x protect_batch
// {0,16,4k-bytes} x 1/4 shards x fault-injection plans x degradation
// forced/off x heap/pool modes x the lock-and-key tag lane (full-width and
// wrap-forcing 2-bit cells). `n_ops` sizes every cell's generator.
[[nodiscard]] std::vector<FuzzConfig> matrix(std::size_t n_ops);

// The bounded 7-config subset the ctest `fuzz` label runs (includes one
// tag-lane cell).
[[nodiscard]] std::vector<FuzzConfig> smoke_matrix(std::size_t n_ops);

// ddmin-style shrinker: returns the smallest subsequence of `trace.ops`
// (order preserved) that still diverges under `cfg`, bounded by `max_runs`
// re-executions. Returns `trace` unchanged when it does not diverge.
[[nodiscard]] Trace shrink(const FuzzConfig& cfg, const Trace& trace,
                           std::size_t max_runs = 400);

}  // namespace dpg::fuzz
