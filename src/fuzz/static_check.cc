#include <cstring>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>

#include "compiler/parser.h"
#include "compiler/points_to.h"
#include "compiler/uaf_analysis.h"
#include "core/fault_manager.h"
#include "core/guarded_heap.h"
#include "fuzz/cross_checks.h"
#include "fuzz/oracle.h"

namespace dpg::fuzz {

namespace {

// Mirror of the executor's state-directed interpretation, restricted to the
// static-compatible op subset: which ops run, and which are temporal bugs.
enum class SPhase { kUnknown, kLive, kFreed };

struct SObj {
  SPhase phase = SPhase::kUnknown;
  std::uint32_t alloc_site = 0;  // PIR site id of the malloc
  bool planted = false;          // a bug op executed against this object
};

}  // namespace

std::vector<Divergence> static_cross_check(std::uint64_t seed,
                                           std::size_t n_ops,
                                           std::ostream* log) {
  std::vector<Divergence> out;
  auto diverge = [&](std::size_t idx, const std::string& detail) {
    out.push_back(Divergence{idx, detail});
  };

  GenParams params;
  params.static_compatible = true;
  params.n_ops = n_ops;
  const Trace trace = generate(seed, params);

  // ---- lower to straight-line PIR, tracking the parser's site numbering:
  // sites start at 1 and are handed out to malloc/free in program order.
  std::ostringstream pir;
  pir << "func main() {\n";
  std::uint32_t next_site = 1;
  std::uint32_t next_tmp = 1;
  std::map<std::uint32_t, SObj> objs;  // ordered: deterministic reporting
  // Ops actually lowered (and thus worth replaying at runtime): index pairs
  // of (trace index, op). Skipped ops (unknown object) stay skipped.
  std::vector<std::pair<std::size_t, Op>> lowered;

  for (std::size_t idx = 0; idx < trace.ops.size(); ++idx) {
    const Op& op = trace.ops[idx];
    const std::string reg = "o" + std::to_string(op.obj);
    const auto it = objs.find(op.obj);
    const bool known = it != objs.end() && it->second.phase != SPhase::kUnknown;
    switch (op.kind) {
      case OpKind::kMalloc: {
        if (it != objs.end()) continue;  // duplicate id: not lowered
        pir << "  " << reg << " = malloc 2\n";
        SObj o;
        o.phase = SPhase::kLive;
        o.alloc_site = next_site++;
        objs[op.obj] = o;
        lowered.emplace_back(idx, op);
        break;
      }
      case OpKind::kFree:
      case OpKind::kDoubleFree: {
        if (!known) continue;
        pir << "  free " << reg << "\n";
        next_site++;
        if (it->second.phase == SPhase::kFreed) it->second.planted = true;
        it->second.phase = SPhase::kFreed;
        lowered.emplace_back(idx, op);
        break;
      }
      case OpKind::kRead:
      case OpKind::kUafRead: {
        if (!known) continue;
        pir << "  t" << next_tmp++ << " = getfield " << reg << ", 0\n";
        if (it->second.phase == SPhase::kFreed) it->second.planted = true;
        lowered.emplace_back(idx, op);
        break;
      }
      case OpKind::kWrite:
      case OpKind::kUafWrite: {
        if (!known) continue;
        // Fresh const register per store: sharing one would unify every
        // object's field node through it and smear UNSAFE across the module.
        pir << "  c" << next_tmp << " = const " << (op.obj % 97) << "\n";
        pir << "  setfield " << reg << ", 1, c" << next_tmp << "\n";
        ++next_tmp;
        if (it->second.phase == SPhase::kFreed) it->second.planted = true;
        lowered.emplace_back(idx, op);
        break;
      }
      default:
        // generate(static_compatible) emits no other kinds; a hand-edited
        // trace's extras are simply not part of the contract.
        continue;
    }
  }
  pir << "  ret\n}\n";

  // ---- static verdicts.
  const compiler::Module module = compiler::parse_module(pir.str());
  const compiler::PointsToAnalysis pta(module);
  const compiler::UafAnalysis analysis(module, pta);

  std::set<std::uint32_t> safe_alloc_sites;
  for (const auto& [id, o] : objs) {
    const bool safe = analysis.site_safe(o.alloc_site);
    if (o.planted && safe) {
      diverge(static_cast<std::size_t>(-1),
              "static: obj " + std::to_string(id) + " (site " +
                  std::to_string(o.alloc_site) +
                  ") has a planted temporal bug but classifies SAFE");
    }
    if (!o.planted && !safe) {
      diverge(static_cast<std::size_t>(-1),
              "static: clean obj " + std::to_string(id) + " (site " +
                  std::to_string(o.alloc_site) + ") classifies UNSAFE");
    }
    if (safe) safe_alloc_sites.insert(o.alloc_site);
  }

  // ---- runtime half: same ops, same site ids, exact single-engine config
  // (immediate revocation), so every planted bug must report at its site.
  {
    vm::PhysArena arena;
    core::DegradationGovernor gov;  // private: keep the process ladder out
    core::GuardConfig cfg;
    cfg.governor = &gov;
    core::GuardedHeap heap(arena, cfg);

    std::unordered_map<std::uint32_t, std::pair<void*, std::uint32_t>> rt;
    std::map<std::uint32_t, std::uint64_t> reports_at_site;

    for (const auto& [idx, op] : lowered) {
      const auto oit = objs.find(op.obj);
      const std::uint32_t site = oit->second.alloc_site;
      std::optional<core::DanglingReport> rep;
      switch (op.kind) {
        case OpKind::kMalloc: {
          void* p = nullptr;
          rep = core::catch_dangling([&] {
            p = heap.malloc(op.size, site);
            if (p != nullptr) {
              std::memset(p, Oracle::base_fill(op.obj), op.size);
            }
          });
          if (p == nullptr && !rep.has_value()) {
            diverge(idx, "static-rt: malloc returned nullptr");
            continue;
          }
          rt[op.obj] = {p, op.size};
          break;
        }
        case OpKind::kFree:
        case OpKind::kDoubleFree:
          rep = core::catch_dangling([&] { heap.free(rt.at(op.obj).first, site); });
          break;
        case OpKind::kRead:
        case OpKind::kUafRead:
          rep = core::catch_dangling([&] {
            (void)*reinterpret_cast<volatile unsigned char*>(
                rt.at(op.obj).first);
          });
          break;
        case OpKind::kWrite:
        case OpKind::kUafWrite:
          rep = core::catch_dangling([&] {
            auto& [p, size] = rt.at(op.obj);
            const std::uint32_t off = size != 0 ? op.offset % size : 0;
            volatile unsigned char* b =
                reinterpret_cast<volatile unsigned char*>(p) + off;
            *b = *b;  // store of the resident byte: value model unperturbed
          });
          break;
        default:
          continue;
      }
      if (rep.has_value()) {
        const std::uint32_t named =
            rep->alloc_site != 0 ? rep->alloc_site : site;
        ++reports_at_site[named];
        if (safe_alloc_sites.count(named) != 0) {
          diverge(idx, "static-rt: runtime report at SAFE site " +
                           std::to_string(named) + " (" + op_name(op.kind) +
                           " obj " + std::to_string(op.obj) +
                           ") — guard elision would have missed a real bug");
        }
      }
    }

    for (const auto& [id, o] : objs) {
      if (o.planted && reports_at_site[o.alloc_site] == 0) {
        diverge(static_cast<std::size_t>(-1),
                "static-rt: planted bug on obj " + std::to_string(id) +
                    " (site " + std::to_string(o.alloc_site) +
                    ") produced no runtime report");
      }
    }
  }

  if (log != nullptr) {
    *log << "[static-check] seed=" << seed << " lowered=" << lowered.size()
         << "/" << trace.ops.size() << " objects=" << objs.size()
         << " findings=" << analysis.findings().size()
         << " divergences=" << out.size() << "\n";
    for (const Divergence& d : out) *log << "  " << d.detail << "\n";
  }
  return out;
}

}  // namespace dpg::fuzz
