// Cross-stack checks tying the fuzzer to the other detection layers.
//
// static_cross_check — the analyzer/runtime agreement contract behind guard
// elision: lower a static-compatible trace to straight-line PIR, run the UAF
// analysis over it, execute the same trace on a GuardedHeap with the PIR site
// ids, and require (a) every planted temporal bug's alloc site classified
// UNSAFE with at least one runtime report naming it, (b) every clean object's
// alloc site classified SAFE, and (c) no runtime report ever naming a
// SAFE site — the property that makes eliding guards at SAFE sites sound.
//
// baseline_cross_check — the same trace against the baseline policies:
// EfenceAllocator (per-object pages, PROT_NONE at free, never reused: every
// dangling use must trap, a re-free must report) and MemcheckContext (shadow
// bitmap + quarantine: checks on freed memory must report while the block
// sits in quarantine). Divergences mean the Table 2 comparison is measuring
// tools that do not do what the paper says they do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "fuzz/harness.h"

namespace dpg::fuzz {

[[nodiscard]] std::vector<Divergence> static_cross_check(std::uint64_t seed,
                                                         std::size_t n_ops,
                                                         std::ostream* log =
                                                             nullptr);

[[nodiscard]] std::vector<Divergence> baseline_cross_check(std::uint64_t seed,
                                                           std::size_t n_ops,
                                                           std::ostream* log =
                                                               nullptr);

}  // namespace dpg::fuzz
