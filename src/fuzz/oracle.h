// Reference oracle — the pure model side of the differential fuzzer.
//
// The oracle maintains the abstract state the paper's exactness claim is
// stated over: every object is live, freed, or released, and carries the
// *guardedness* the real stack gave it at allocation time (guarded with a
// shadow alias / degraded-quarantined / unguarded passthrough — the three
// governor rungs). From that state it predicts, for each trace op, the exact
// set of permitted outcomes:
//
//   rung kFullGuard   a freed object's use MUST trap once its revocation is
//                     applied, MUST silently read the stale (unreused) fill
//                     while the free still sits in a revocation queue or on
//                     a remote-free list; a double free MUST report (the
//                     kLive->kFreed CAS is window-independent); an interior
//                     free of a live object MUST report invalid-free.
//   kSampled          the 1-in-N winners carry a shadow alias and behave
//                     exactly like kFullGuard objects; the unsampled rest
//                     take the ledgered fast path: dangling reads/writes are
//                     silent (the ledger free quarantines the block, so reads
//                     still observe the stale fill) but a double free MUST
//                     report — the ledger keeps that one guarantee exact.
//   kQuarantineOnly   detection suspended, never falsified: uses of a freed
//                     degraded object MUST succeed silently and MUST observe
//                     the stale fill (quarantine delays reuse); frees are
//                     absorbed silently — no reports, no traps.
//   kUnguarded        passthrough: no traps, no reports; reads succeed with
//                     no value guarantee. Probe ops that would be undefined
//                     behaviour on a plain heap (double free, freed write)
//                     are not executed at all.
//   lock-and-key      (tag_lane configs) a freed object's use MUST raise a
//                     tag-mismatch report synchronously — no batching window
//                     exists on this lane — UNLESS the slot's generation has
//                     wrapped back to the pointer's key (the tag reuse
//                     window, introspected via LockAndKeyLane::tag_matches):
//                     then reads are silent with no value promise and
//                     mutating ops are skipped (the slot may belong to a new
//                     owner). This mirrors the lane's documented precision
//                     trade exactly.
//
// Whether a guarded free's revocation has been applied is not modelled — it
// is *introspected* from the real stack (ShadowEngine::revocation_applied)
// at probe time, which is deterministic under the serialized executor. This
// collapses the only may-window in the spec to an exact verdict per op. The
// `oracle_bug` config flag suppresses exactly that collapse (queued
// revocations are predicted as applied), providing the known-bad oracle the
// shrink/replay acceptance demo drives.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "fuzz/trace.h"

namespace dpg::fuzz {

// Guardedness the real stack assigned to an allocation (executor feedback:
// tagged pointer -> kTagged (lock-and-key lane); registry record present ->
// kGuarded; else the governor rung at return).
enum class Guardness : std::uint8_t {
  kGuarded,
  kQuarantined,
  kPassthrough,
  kTagged,
  // Sampled rung, unsampled allocation: canonical pointer + exact double-free
  // ledger (core/sampled.h). The sampled WINNERS classify as kGuarded — the
  // per-allocation decision is introspected from the stack (registry record
  // present), never re-modelled, so the oracle stays exact whatever the
  // sampling pattern was.
  kSampledFast,
};

enum class Phase : std::uint8_t { kLive, kFreed, kReleased };

// What actually happened when the executor ran an op.
enum class Outcome : std::uint8_t {
  kSilent,             // completed, no report
  kTrap,               // hardware trap (or software access report)
  kReportDoubleFree,   // software report, AccessKind::kFree
  kReportInvalidFree,  // software report, AccessKind::kInvalidFree
  kReportTagMismatch,  // software report, AccessKind::kTagMismatch (the
                       // lock-and-key lane's stale access or stale free)
  kSkipped,            // executor did not run the op (predicted.execute=false)
};

[[nodiscard]] const char* outcome_name(Outcome o) noexcept;

// Exact permitted-outcome set for one op. Exactly one of the allow_* flags is
// set for every executed op — the oracle never answers "either way".
struct Prediction {
  bool execute = true;
  bool allow_silent = false;
  bool allow_trap = false;
  bool allow_double_free = false;
  bool allow_invalid_free = false;
  bool allow_tag_mismatch = false;
  // With allow_silent on a read: the byte read MUST equal fill (stale-but-
  // unreused for freed objects — the revoked-then-reused detector).
  bool check_stale = false;
  const char* why = "";

  [[nodiscard]] bool permits(Outcome o) const noexcept {
    switch (o) {
      case Outcome::kSilent: return allow_silent;
      case Outcome::kTrap: return allow_trap;
      case Outcome::kReportDoubleFree: return allow_double_free;
      case Outcome::kReportInvalidFree: return allow_invalid_free;
      case Outcome::kReportTagMismatch: return allow_tag_mismatch;
      case Outcome::kSkipped: return !execute;
    }
    return false;
  }
};

class Oracle {
 public:
  explicit Oracle(const FuzzConfig& cfg) : cfg_(cfg) {}

  struct MObj {
    Phase phase = Phase::kLive;
    Guardness guard = Guardness::kGuarded;
    std::uint32_t size = 0;
    std::uint8_t fill = 0;
    std::uint32_t pool = 0;  // 0 = base pool / heap
  };

  // nullptr when the object was never (successfully) allocated in this run —
  // the executor skips ops on unknown ids (shrinker robustness).
  [[nodiscard]] const MObj* find(std::uint32_t id) const;

  // Every object the model ever saw — the end-of-run exactness sweep walks
  // this (in sorted-id order, for determinism).
  [[nodiscard]] const std::unordered_map<std::uint32_t, MObj>& objects()
      const noexcept {
    return objects_;
  }

  // The exact permitted outcome for `op` given the current model state.
  // `revocation_applied` is the introspected SUT state for the target object
  // (ignored unless the op acts on a freed guarded object). `tag_matches` is
  // the introspected lock-and-key state (LockAndKeyLane::tag_matches) for a
  // freed *tagged* object: false -> the stale use reports exactly; true ->
  // the pointer sits inside the tag reuse window after a generation wrap
  // (the lane's documented precision trade), so reads are silent with no
  // value promise and mutating ops are skipped.
  [[nodiscard]] Prediction predict(const Op& op, bool revocation_applied,
                                   bool tag_matches = false) const;

  // --- state advancement (executor feedback) -------------------------------
  // Registers a successful allocation with the guardedness the stack chose.
  void on_alloc(std::uint32_t id, std::uint32_t size, Guardness g,
                std::uint32_t pool);
  void on_free(std::uint32_t id);          // live -> freed
  std::uint8_t on_write(std::uint32_t id); // rotates and returns the new fill
  void on_pool_destroyed(std::uint32_t pool);  // its objects -> released

  // Deterministic per-object base fill byte (never 0).
  [[nodiscard]] static std::uint8_t base_fill(std::uint32_t id) noexcept {
    return static_cast<std::uint8_t>(0x11 + (id * 37u) % 199u);
  }

 private:
  FuzzConfig cfg_;
  std::unordered_map<std::uint32_t, MObj> objects_;
};

}  // namespace dpg::fuzz
