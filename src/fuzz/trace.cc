#include "fuzz/trace.h"

#include <algorithm>
#include <sstream>

#include "workloads/common.h"

namespace dpg::fuzz {

namespace {

// Token table for the .dpgf op lines (index == OpKind value).
constexpr const char* kOpTokens[] = {
    "M", "F", "R", "W", "RA", "FL", "UR", "UW", "DF", "IF", "PC", "PD",
};
constexpr const char* kOpNames[] = {
    "malloc",     "free",  "read",     "write",      "realloc",
    "flush",      "uaf-r", "uaf-w",    "double-free", "invalid-free",
    "pool-create", "pool-destroy",
};
constexpr std::size_t kNumOps = sizeof(kOpTokens) / sizeof(kOpTokens[0]);

struct GObj {
  std::uint32_t id = 0;
  std::uint32_t size = 0;
  std::uint8_t lane = 0;
  std::uint32_t pool = 0;
};

// Remove-by-swap: order inside the generator's working sets carries no
// meaning, only membership does.
void swap_remove(std::vector<GObj>& v, std::size_t i) {
  v[i] = v.back();
  v.pop_back();
}

}  // namespace

const char* op_name(OpKind k) noexcept {
  const auto i = static_cast<std::size_t>(k);
  return i < kNumOps ? kOpNames[i] : "?";
}

Trace generate(std::uint64_t seed, const GenParams& params) {
  workloads::Rng rng(seed);
  Trace t;
  t.seed = seed;
  t.lanes = std::max<std::uint32_t>(params.lanes, 1);

  const std::uint32_t max_size = std::max<std::uint32_t>(params.max_size, 1);
  // Straight-line PIR must stay small enough for the analyzer to chew
  // through comfortably (one node per object).
  const std::uint32_t max_objects =
      params.static_compatible ? 96 : 0xFFFFFFFFu;

  std::vector<GObj> live;
  std::vector<GObj> freed;          // probeable dangling objects
  std::vector<std::uint32_t> pools; // innermost last; empty = base pool only
  std::uint32_t next_id = 1;
  std::uint32_t next_pool = 1;

  const bool pools_on = params.pools && !params.static_compatible;
  const bool bugs = params.plant_bugs;

  auto lane = [&]() -> std::uint8_t {
    return params.static_compatible
               ? 0
               : static_cast<std::uint8_t>(rng.below(t.lanes));
  };

  t.ops.reserve(params.n_ops);
  while (t.ops.size() < params.n_ops) {
    const std::uint64_t roll = rng.below(100);
    Op op;

    if (roll < 30) {  // malloc
      if (live.size() >= params.max_live || next_id >= max_objects) continue;
      op.kind = OpKind::kMalloc;
      op.thread = lane();
      op.obj = next_id++;
      op.size = static_cast<std::uint32_t>(1 + rng.below(max_size));
      live.push_back(GObj{op.obj, op.size, op.thread,
                          pools.empty() ? 0u : pools.back()});
    } else if (roll < 50) {  // read
      if (live.empty()) continue;
      const GObj& o = live[rng.below(live.size())];
      op.kind = OpKind::kRead;
      op.thread = lane();
      op.obj = o.id;
      op.offset = static_cast<std::uint32_t>(rng.below(o.size));
    } else if (roll < 58) {  // write (re-fill)
      if (live.empty()) continue;
      op.kind = OpKind::kWrite;
      op.thread = lane();
      op.obj = live[rng.below(live.size())].id;
    } else if (roll < 74) {  // free
      if (live.empty()) continue;
      const std::size_t i = rng.below(live.size());
      const GObj o = live[i];
      op.kind = OpKind::kFree;
      // Mostly the allocating lane (same-shard path); sometimes any lane, to
      // drive free_remote.
      op.thread = (params.static_compatible || rng.below(10) < 7)
                      ? o.lane
                      : lane();
      op.obj = o.id;
      swap_remove(live, i);
      freed.push_back(o);
      if (freed.size() > 512) freed.erase(freed.begin());
    } else if (roll < 79) {  // realloc
      if (params.static_compatible || live.empty() ||
          next_id >= max_objects) {
        continue;
      }
      const std::size_t i = rng.below(live.size());
      GObj o = live[i];
      op.kind = OpKind::kRealloc;
      op.thread = o.lane;  // routed to the owner engine anyway
      op.obj = o.id;
      op.obj2 = next_id++;
      op.size = static_cast<std::uint32_t>(1 + rng.below(max_size));
      swap_remove(live, i);
      freed.push_back(o);  // the old id is now a stale-realloc pointer
      live.push_back(GObj{op.obj2, op.size, o.lane, o.pool});
    } else if (roll < 81) {  // flush
      if (params.static_compatible) continue;
      op.kind = OpKind::kFlush;
      op.thread = lane();
    } else if (roll < 87) {  // UAF read probe
      if (!bugs || freed.empty()) continue;
      const GObj& o = freed[rng.below(freed.size())];
      op.kind = OpKind::kUafRead;
      op.thread = lane();
      op.obj = o.id;
      op.offset = static_cast<std::uint32_t>(rng.below(o.size));
    } else if (roll < 90) {  // UAF write probe
      if (!bugs || freed.empty()) continue;
      const GObj& o = freed[rng.below(freed.size())];
      op.kind = OpKind::kUafWrite;
      op.thread = lane();
      op.obj = o.id;
      op.offset = static_cast<std::uint32_t>(rng.below(o.size));
    } else if (roll < 93) {  // double free
      if (!bugs || freed.empty()) continue;
      op.kind = OpKind::kDoubleFree;
      op.thread = lane();
      op.obj = freed[rng.below(freed.size())].id;
    } else if (roll < 95) {  // invalid (interior) free
      if (!bugs || params.static_compatible || live.empty()) continue;
      const GObj& o = live[rng.below(live.size())];
      if (o.size < 2) continue;  // need a distinct interior byte
      op.kind = OpKind::kInvalidFree;
      op.thread = lane();
      op.obj = o.id;
      op.offset = static_cast<std::uint32_t>(1 + rng.below(o.size - 1));
    } else if (roll < 98) {  // pool create
      if (!pools_on || pools.size() >= 4) continue;
      op.kind = OpKind::kPoolCreate;
      op.obj = next_pool++;
      pools.push_back(op.obj);
    } else {  // pool destroy (innermost only: LIFO, like PoolScope)
      if (!pools_on || pools.empty()) continue;
      op.kind = OpKind::kPoolDestroy;
      op.obj = pools.back();
      pools.pop_back();
      // Every object of the destroyed pool is released: no longer a valid
      // free/probe target.
      auto dead = [&](const GObj& o) { return o.pool == op.obj; };
      live.erase(std::remove_if(live.begin(), live.end(), dead), live.end());
      freed.erase(std::remove_if(freed.begin(), freed.end(), dead),
                  freed.end());
    }
    t.ops.push_back(op);
  }
  return t;
}

std::string to_replay(const FuzzConfig& cfg, const Trace& trace) {
  std::ostringstream out;
  out << "dpgf 1\n";
  out << "name " << cfg.name << "\n";
  out << "mode " << (cfg.mode == HarnessMode::kPool ? "pool" : "heap") << "\n";
  out << "shards " << cfg.shards << "\n";
  out << "magazines " << cfg.magazine_slots << "\n";
  out << "batch " << cfg.protect_batch << "\n";
  out << "batch_bytes " << cfg.protect_batch_bytes << "\n";
  out << "fault " << (cfg.fault_plan.empty() ? "-" : cfg.fault_plan) << "\n";
  out << "forced_mode " << cfg.forced_mode << "\n";
  out << "sample_rate " << cfg.sample_rate << "\n";
  out << "oracle_bug " << (cfg.oracle_bug ? 1 : 0) << "\n";
  out << "tag_lane " << (cfg.tag_lane ? 1 : 0) << "\n";
  out << "tag_bits " << cfg.tag_bits << "\n";
  out << "revoke_backend " << cfg.revoke_backend << "\n";
  out << "recycle_cap " << cfg.recycle_cap << "\n";
  out << "seed " << trace.seed << "\n";
  out << "lanes " << trace.lanes << "\n";
  out << "ops " << trace.ops.size() << "\n";
  for (const Op& op : trace.ops) {
    out << kOpTokens[static_cast<std::size_t>(op.kind)] << " "
        << static_cast<unsigned>(op.thread) << " " << op.obj << " " << op.obj2
        << " " << op.size << " " << op.offset << "\n";
  }
  return out.str();
}

bool from_replay(const std::string& text, FuzzConfig* cfg, Trace* trace,
                 std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  std::istringstream in(text);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "dpgf" || version != 1) {
    return fail("not a dpgf v1 file");
  }
  FuzzConfig c;
  Trace t;
  std::size_t n_ops = 0;
  bool saw_ops = false;
  while (!saw_ops && (in >> tag)) {
    if (tag == "name") {
      in >> c.name;
    } else if (tag == "mode") {
      std::string m;
      in >> m;
      if (m == "heap") {
        c.mode = HarnessMode::kHeap;
      } else if (m == "pool") {
        c.mode = HarnessMode::kPool;
      } else {
        return fail("bad mode: " + m);
      }
    } else if (tag == "shards") {
      in >> c.shards;
    } else if (tag == "magazines") {
      in >> c.magazine_slots;
    } else if (tag == "batch") {
      in >> c.protect_batch;
    } else if (tag == "batch_bytes") {
      in >> c.protect_batch_bytes;
    } else if (tag == "fault") {
      in >> c.fault_plan;
      if (c.fault_plan == "-") c.fault_plan.clear();
    } else if (tag == "forced_mode") {
      in >> c.forced_mode;
    } else if (tag == "sample_rate") {
      in >> c.sample_rate;
    } else if (tag == "oracle_bug") {
      int v = 0;
      in >> v;
      c.oracle_bug = v != 0;
    } else if (tag == "tag_lane") {
      int v = 0;
      in >> v;
      c.tag_lane = v != 0;
    } else if (tag == "tag_bits") {
      in >> c.tag_bits;
    } else if (tag == "revoke_backend") {
      in >> c.revoke_backend;
      if (c.revoke_backend < 0 || c.revoke_backend > 3) {
        return fail("bad revoke_backend");
      }
    } else if (tag == "recycle_cap") {
      in >> c.recycle_cap;
    } else if (tag == "seed") {
      in >> t.seed;
    } else if (tag == "lanes") {
      in >> t.lanes;
    } else if (tag == "ops") {
      in >> n_ops;
      saw_ops = true;
    } else {
      return fail("unknown header field: " + tag);
    }
    if (!in) return fail("truncated header after: " + tag);
  }
  if (!saw_ops) return fail("missing ops header");
  if (t.lanes == 0 || t.lanes > 64) return fail("bad lane count");
  if (n_ops > (std::size_t{1} << 24)) return fail("implausible op count");
  t.ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    std::string tok;
    unsigned thread = 0;
    Op op;
    if (!(in >> tok >> thread >> op.obj >> op.obj2 >> op.size >> op.offset)) {
      return fail("truncated op " + std::to_string(i));
    }
    bool known = false;
    for (std::size_t k = 0; k < kNumOps; ++k) {
      if (tok == kOpTokens[k]) {
        op.kind = static_cast<OpKind>(k);
        known = true;
        break;
      }
    }
    if (!known) return fail("unknown op token: " + tok);
    if (thread >= t.lanes) return fail("op lane out of range");
    op.thread = static_cast<std::uint8_t>(thread);
    t.ops.push_back(op);
  }
  std::string trailing;
  if (in >> trailing) return fail("trailing garbage after op list: " + trailing);
  if (cfg != nullptr) *cfg = std::move(c);
  if (trace != nullptr) *trace = std::move(t);
  return true;
}

}  // namespace dpg::fuzz
