#include <cstring>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>

#include "baseline/efence.h"
#include "baseline/memcheck.h"
#include "core/fault_manager.h"
#include "fuzz/cross_checks.h"
#include "fuzz/oracle.h"

namespace dpg::fuzz {

namespace {

struct BObj {
  void* ptr = nullptr;
  std::uint32_t size = 0;
  bool live = false;
};

std::string label(const char* tool, const Op& op, const char* what) {
  return std::string(tool) + ": " + op_name(op.kind) + " obj " +
         std::to_string(op.obj) + " " + what;
}

}  // namespace

std::vector<Divergence> baseline_cross_check(std::uint64_t seed,
                                             std::size_t n_ops,
                                             std::ostream* log) {
  std::vector<Divergence> out;
  auto diverge = [&](std::size_t idx, const std::string& detail) {
    out.push_back(Divergence{idx, detail});
  };

  GenParams params;
  params.static_compatible = true;
  params.n_ops = n_ops;
  const Trace trace = generate(seed, params);

  // ---- Electric Fence / PageHeap: one object per page, PROT_NONE at free,
  // pages never reused — every dangling use must trap, every re-free must
  // report, and live reads must observe the exact fill (no sharing).
  {
    baseline::EfenceAllocator ef;
    std::unordered_map<std::uint32_t, BObj> rt;
    for (std::size_t idx = 0; idx < trace.ops.size(); ++idx) {
      const Op& op = trace.ops[idx];
      const auto it = rt.find(op.obj);
      std::optional<core::DanglingReport> rep;
      switch (op.kind) {
        case OpKind::kMalloc: {
          if (it != rt.end()) continue;
          void* p = nullptr;
          rep = core::catch_dangling([&] {
            p = ef.malloc(op.size, op.obj);
            if (p != nullptr) {
              std::memset(p, Oracle::base_fill(op.obj), op.size);
            }
          });
          if (rep.has_value() || p == nullptr) {
            diverge(idx, label("efence", op, "failed"));
            continue;
          }
          rt[op.obj] = BObj{p, op.size, true};
          break;
        }
        case OpKind::kFree:
        case OpKind::kDoubleFree: {
          if (it == rt.end()) continue;
          rep = core::catch_dangling([&] { ef.free(it->second.ptr, op.obj); });
          if (it->second.live) {
            if (rep.has_value()) {
              diverge(idx, label("efence", op, "clean free reported"));
            }
            it->second.live = false;
          } else if (!rep.has_value() ||
                     rep->kind != core::AccessKind::kFree) {
            diverge(idx, label("efence", op,
                               "re-free did not report a double free"));
          }
          break;
        }
        case OpKind::kRead:
        case OpKind::kUafRead: {
          if (it == rt.end()) continue;
          const std::uint32_t off =
              it->second.size != 0 ? op.offset % it->second.size : 0;
          unsigned char v = 0;
          rep = core::catch_dangling([&] {
            v = *reinterpret_cast<volatile unsigned char*>(
                static_cast<unsigned char*>(it->second.ptr) + off);
          });
          if (it->second.live) {
            if (rep.has_value()) {
              diverge(idx, label("efence", op, "live read trapped"));
            } else if (v != Oracle::base_fill(op.obj)) {
              diverge(idx, label("efence", op, "live read lost its fill"));
            }
          } else if (!rep.has_value()) {
            diverge(idx, label("efence", op, "dangling read did not trap"));
          }
          break;
        }
        case OpKind::kWrite:
        case OpKind::kUafWrite: {
          if (it == rt.end()) continue;
          rep = core::catch_dangling([&] {
            // Store the byte already there: traps on freed, no-op on live.
            volatile unsigned char* b =
                reinterpret_cast<volatile unsigned char*>(it->second.ptr);
            *b = *b;
          });
          if (it->second.live) {
            if (rep.has_value()) {
              diverge(idx, label("efence", op, "live write trapped"));
            }
          } else if (!rep.has_value()) {
            diverge(idx, label("efence", op, "dangling write did not trap"));
          }
          break;
        }
        default:
          continue;
      }
    }

    // Interior-pointer epilogue (the static subset plants none): Electric
    // Fence must call out a free() of an address it never handed out.
    void* p = nullptr;
    auto rep = core::catch_dangling([&] { p = ef.malloc(64, 9001); });
    if (rep.has_value() || p == nullptr) {
      diverge(static_cast<std::size_t>(-1), "efence: epilogue malloc failed");
    } else {
      rep = core::catch_dangling(
          [&] { ef.free(static_cast<unsigned char*>(p) + 1, 9001); });
      if (!rep.has_value() || rep->kind != core::AccessKind::kInvalidFree) {
        diverge(static_cast<std::size_t>(-1),
                "efence: interior free did not report invalid-free");
      }
      rep = core::catch_dangling([&] { ef.free(p, 9001); });
      if (rep.has_value()) {
        diverge(static_cast<std::size_t>(-1),
                "efence: exact free after interior attempt reported");
      }
    }
  }

  // ---- Memcheck-lite: checks against the shadow bitmap must report on
  // freed-but-quarantined memory; clean accesses must pass. The quarantine
  // is 16MB and this trace frees well under that, so no evictions can hide
  // a dangling access (the documented heuristic hole stays out of frame).
  {
    auto& mc = baseline::MemcheckContext::global();
    std::unordered_map<std::uint32_t, BObj> rt;
    for (std::size_t idx = 0; idx < trace.ops.size(); ++idx) {
      const Op& op = trace.ops[idx];
      const auto it = rt.find(op.obj);
      std::optional<core::DanglingReport> rep;
      switch (op.kind) {
        case OpKind::kMalloc: {
          if (it != rt.end()) continue;
          void* p = nullptr;
          rep = core::catch_dangling([&] {
            p = mc.allocate(op.size);
            std::memset(p, Oracle::base_fill(op.obj), op.size);
          });
          if (rep.has_value() || p == nullptr) {
            diverge(idx, label("memcheck", op, "failed"));
            continue;
          }
          rt[op.obj] = BObj{p, op.size, true};
          break;
        }
        case OpKind::kFree:
        case OpKind::kDoubleFree: {
          if (it == rt.end()) continue;
          rep = core::catch_dangling([&] { mc.deallocate(it->second.ptr); });
          if (it->second.live) {
            if (rep.has_value()) {
              diverge(idx, label("memcheck", op, "clean free reported"));
            }
            it->second.live = false;
          } else if (!rep.has_value() ||
                     rep->kind != core::AccessKind::kFree) {
            diverge(idx, label("memcheck", op,
                               "re-free did not report a double free"));
          }
          break;
        }
        case OpKind::kRead:
        case OpKind::kUafRead: {
          if (it == rt.end()) continue;
          const std::uint32_t off =
              it->second.size != 0 ? op.offset % it->second.size : 0;
          const unsigned char* addr =
              static_cast<const unsigned char*>(it->second.ptr) + off;
          rep = core::catch_dangling(
              [&] { mc.check(addr, 1, core::AccessKind::kRead); });
          if (it->second.live) {
            if (rep.has_value()) {
              diverge(idx, label("memcheck", op, "live read reported"));
            } else if (*addr != Oracle::base_fill(op.obj)) {
              diverge(idx, label("memcheck", op, "live read lost its fill"));
            }
          } else if (!rep.has_value()) {
            diverge(idx, label("memcheck", op,
                               "freed-but-quarantined read went unreported"));
          }
          break;
        }
        case OpKind::kWrite:
        case OpKind::kUafWrite: {
          if (it == rt.end()) continue;
          rep = core::catch_dangling([&] {
            mc.check(it->second.ptr, 1, core::AccessKind::kWrite);
          });
          if (it->second.live) {
            if (rep.has_value()) {
              diverge(idx, label("memcheck", op, "live write reported"));
            }
          } else if (!rep.has_value()) {
            diverge(idx, label("memcheck", op,
                               "freed-but-quarantined write went unreported"));
          }
          break;
        }
        default:
          continue;
      }
    }
  }

  if (log != nullptr) {
    *log << "[baseline-check] seed=" << seed << " ops=" << trace.ops.size()
         << " divergences=" << out.size() << "\n";
    for (const Divergence& d : out) *log << "  " << d.detail << "\n";
  }
  return out;
}

}  // namespace dpg::fuzz
