// Bounded frame-pointer site backtraces for the postmortem pipeline.
//
// The paper's §4 diagnosis story is "which allocation, which free, which
// use" — SiteIds carry that for instrumented programs, but the LD_PRELOAD /
// production deployment has no instrumentation, so the guard captures a raw
// return-address backtrace at guarded malloc and free (stored in the shadow
// slot's ObjectRecord) and at the faulting use (from the signal context).
// The offline analyzer (tools/dpg_report) symbolizes them against the dump's
// module table.
//
// Cost model: DPG_SITE_DEPTH=0 reduces every hook to one relaxed load and a
// branch (the bench_ablation site-depth row keeps this honest). Depth N pays
// one cached thread-stack-bounds lookup plus N frame-pointer dereferences —
// no syscalls, no allocation.
//
// Safety: the walker dereferences saved frame pointers, which on a broken
// chain (a frame built without -fno-omit-frame-pointer) can be garbage. Two
// regimes keep that from ever crashing the host:
//   - allocation/free paths walk only inside the calling thread's pthread
//     stack bounds (cached per thread, resolved lazily in normal context);
//     every address in [frame, stack_hi) is mapped, so dereferences cannot
//     fault and a garbage pointer merely ends the walk;
//   - the fault handler (signal context, bounds possibly uncached) walks
//     under the fault manager's walker probe: a nested fault aborts the walk
//     via siglongjmp, and `progress` always reflects the frames completed.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/env.h"

namespace dpg::obs {

// Frames stored per allocation/free site in the slot header (ObjectRecord)
// and the maximum use-site frames a report carries.
inline constexpr std::size_t kMaxSiteFrames = 8;
inline constexpr std::size_t kMaxUseFrames = 16;
inline constexpr std::size_t kDefaultSiteDepth = 8;

namespace detail {
// -1 = env not consulted yet.
inline std::atomic<int> g_site_depth{-1};
}  // namespace detail

// Configured capture depth: DPG_SITE_DEPTH clamped to [0, kMaxSiteFrames],
// default kDefaultSiteDepth. 0 disables capture entirely.
[[nodiscard]] inline std::size_t site_depth() noexcept {
  int d = detail::g_site_depth.load(std::memory_order_relaxed);
  if (d < 0) [[unlikely]] {
    d = static_cast<int>(env_long("DPG_SITE_DEPTH",
                                  static_cast<long>(kDefaultSiteDepth), 0,
                                  static_cast<long>(kMaxSiteFrames)));
    detail::g_site_depth.store(d, std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(d);
}

// Test/bench hook: override DPG_SITE_DEPTH (clamped the same way).
inline void set_site_depth(std::size_t d) noexcept {
  if (d > kMaxSiteFrames) d = kMaxSiteFrames;
  detail::g_site_depth.store(static_cast<int>(d), std::memory_order_relaxed);
}

struct StackBounds {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  [[nodiscard]] bool ok() const noexcept { return hi > lo; }
};

// The calling thread's stack range, cached per thread. NOT async-signal-safe
// on the first call (pthread_getattr_np may allocate); signal-context callers
// must use the probe-guarded walk instead.
[[nodiscard]] inline StackBounds thread_stack_bounds() noexcept {
  thread_local StackBounds bounds = [] {
    StackBounds r;
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
      void* base = nullptr;
      std::size_t size = 0;
      if (pthread_attr_getstack(&attr, &base, &size) == 0) {
        r.lo = reinterpret_cast<std::uintptr_t>(base);
        r.hi = r.lo + size;
      }
      pthread_attr_destroy(&attr);
    }
    return r;
  }();
  return bounds;
}

// Walks an x86-64 frame-pointer chain starting at `fp`, appending return
// addresses to out[*progress..] and bumping *progress after each stored
// frame. Every dereference stays inside [lo, hi); callers whose `hi` may
// overrun the real stack (signal context with unknown bounds) must arrange
// fault recovery — `progress` is kept consistent for a walk aborted by
// siglongjmp at any point.
inline void walk_frame_chain(std::uintptr_t fp, std::uintptr_t lo,
                             std::uintptr_t hi, std::uintptr_t* out,
                             std::size_t max,
                             volatile std::size_t* progress) noexcept {
  // A single frame larger than this is assumed to be chain corruption, not a
  // real alloca; it bounds how far a bogus "next" pointer can take the walk.
  constexpr std::uintptr_t kMaxFrameStride = std::uintptr_t{1} << 20;
  std::size_t n = *progress;
  while (n < max) {
    if (fp < lo || fp + 2 * sizeof(std::uintptr_t) > hi ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret < 0x1000) break;  // below any mapped text: end of chain
    out[n++] = ret;
    *progress = n;
    if (next <= fp || next - fp > kMaxFrameStride) break;
    lo = fp;  // frames must keep growing toward the stack base
    fp = next;
  }
}

// Captures the calling thread's backtrace (deepest caller first), up to
// min(max, site_depth()) frames. Returns 0 when capture is disabled or the
// stack bounds are unknown. Normal-context only (see thread_stack_bounds).
// noinline so the walk reliably starts at the *caller's* frame.
[[gnu::noinline]] inline std::size_t capture_site_stack(
    std::uintptr_t* out, std::size_t max) noexcept {
  const std::size_t depth = site_depth();
  if (depth == 0) return 0;
  if (depth < max) max = depth;
  const StackBounds bounds = thread_stack_bounds();
  if (!bounds.ok()) return 0;
  volatile std::size_t n = 0;
  walk_frame_chain(reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0)),
                   bounds.lo, bounds.hi, out, max, &n);
  return n;
}

}  // namespace dpg::obs
