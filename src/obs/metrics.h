// Observability hub: trace gate, latency histograms, counter registry, and
// the metrics exporter.
//
// Environment knobs (parsed once, via obs/env.h):
//   DPG_TRACE               0/1 — flight recorder + latency histograms.
//                           Disabled, every hook is one relaxed load + branch.
//   DPG_METRICS_PATH        file to append JSON-lines snapshots to; enables
//                           the exporter (atexit + SIGUSR1, and optionally a
//                           periodic dump).
//   DPG_METRICS_PROM        file to (re)write Prometheus-style text into on
//                           every dump — point a node_exporter textfile
//                           collector or a scrape job at it.
//   DPG_METRICS_INTERVAL_MS periodic dump interval; 0 (default) = off.
//
// Every exporter path — including the SIGUSR1 handler — reads only atomics
// and formats with obs/fmt.h, so dumps are async-signal-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace dpg::obs {

namespace detail {
// 0 = uninitialised, 1 = tracing off, 2 = tracing on.
extern std::atomic<int> g_trace_mode;
int init_trace_mode() noexcept;  // resolves env (thread-safe, idempotent)
void record_event_slow(EventKind kind, std::uint64_t addr, std::uint64_t arg,
                       std::uint32_t site) noexcept;
}  // namespace detail

// The single branch every disabled-path hook pays.
[[nodiscard]] inline bool enabled() noexcept {
  const int m = detail::g_trace_mode.load(std::memory_order_relaxed);
  if (m != 0) [[likely]] {
    return m == 2;
  }
  return detail::init_trace_mode() == 2;
}

// Test/override hook: force tracing on or off regardless of DPG_TRACE.
void set_trace_enabled(bool on) noexcept;

// CLOCK_MONOTONIC in nanoseconds. Async-signal-safe (vDSO).
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

// ---------------------------------------------------------------------------
// Flight recorder front end
// ---------------------------------------------------------------------------

// Records one event into the calling thread's ring. No-op when disabled.
inline void record_event(EventKind kind, std::uint64_t addr,
                         std::uint64_t arg, std::uint32_t site = 0) noexcept {
  if (!enabled()) return;
  detail::record_event_slow(kind, addr, arg, site);
}

// Copies up to `max` most-recent events of the *calling thread's* ring into
// `out`, oldest first. Async-signal-safe. Returns the count (0 when the
// thread never recorded or tracing is off).
std::size_t capture_recent(TraceEvent* out, std::size_t max) noexcept;

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

enum class Hist : unsigned {
  kAllocNs = 0,  // guarded malloc/calloc/realloc entry-to-exit
  kFreeNs,       // guarded free entry-to-exit
  kMmapNs,       // vm-layer mmap
  kMprotectNs,   // vm-layer mprotect
  kMunmapNs,     // vm-layer munmap
  kMremapNs,     // vm-layer mremap (alias strategy)
  kCount,
};

[[nodiscard]] const char* hist_name(Hist h) noexcept;  // e.g. "alloc_ns"
[[nodiscard]] LatencyHistogram& hist(Hist h) noexcept;

// RAII latency probe: samples the clock only when tracing is enabled.
class ScopedLatency {
 public:
  explicit ScopedLatency(Hist h) noexcept : h_(h), on_(enabled()) {
    if (on_) t0_ = monotonic_ns();
  }
  ~ScopedLatency() {
    if (on_) hist(h_).record(monotonic_ns() - t0_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Hist h_;
  bool on_;
  std::uint64_t t0_ = 0;
};

// ---------------------------------------------------------------------------
// Counter registry + exporter
// ---------------------------------------------------------------------------

// Registers a process-lifetime atomic counter for export under `name`
// (conventionally "dpg_*"). Both pointers must stay valid forever — callers
// register immortal singletons (SyscallCounters, the Runtime heap's
// GuardCounters). Capacity-bounded; returns false when the table is full.
bool register_counter(const char* name,
                      const std::atomic<std::uint64_t>* value) noexcept;

// Computed-counter registration for sharded subsystems: the exported value is
// `fn(ctx)` evaluated at dump time (e.g. summing per-shard atomics so the
// exporter presents one consistent process-wide series). `fn` runs on every
// dump path INCLUDING the SIGUSR1 handler, so it must be async-signal-safe:
// relaxed atomic loads and arithmetic only — no locks, no allocation. Both
// pointers must stay valid forever, like register_counter.
using CounterFn = std::uint64_t (*)(const void* ctx);
bool register_counter_fn(const char* name, CounterFn fn,
                         const void* ctx) noexcept;

// Parses the env knobs and arms the exporter (atexit hook, SIGUSR1 handler,
// optional periodic thread). Idempotent and cheap after the first call; the
// guard runtime calls it from every engine constructor.
void init_from_env() noexcept;

// Test/override hooks: redirect exporter output without env vars (no signal
// handler or atexit installation). nullptr disables the respective output.
void set_metrics_path(const char* path) noexcept;
void set_prometheus_path(const char* path) noexcept;

// Renders one JSON snapshot object (no trailing newline) of all registered
// counters + histograms into `buf`. Returns bytes written (0 on overflow).
// Async-signal-safe.
std::size_t render_json(char* buf, std::size_t cap, const char* reason) noexcept;

// Renders the Prometheus text exposition of the same snapshot.
std::size_t render_prometheus(char* buf, std::size_t cap) noexcept;

// Appends a JSON-lines snapshot to the metrics path (and rewrites the
// Prometheus file when configured). Returns false when no path is configured
// or a dump is already in flight. Async-signal-safe.
bool dump_metrics(const char* reason) noexcept;

// ---------------------------------------------------------------------------
// Snapshot iteration (crash-dump writer)
// ---------------------------------------------------------------------------
// Read-only, async-signal-safe views over the counter registry and the
// per-thread trace rings, so obs/dump.cc can serialize them into .dpgcrash
// TLVs without reaching into this translation unit's internals.

[[nodiscard]] std::size_t counter_count() noexcept;
[[nodiscard]] const char* counter_name(std::size_t i) noexcept;   // nullptr OOB
[[nodiscard]] std::uint64_t counter_value_at(std::size_t i) noexcept;

// Registered thread rings, in thread-registration order. Slots may be null
// (thread not yet published). Count is clamped to the ring-table capacity.
[[nodiscard]] std::size_t trace_ring_count() noexcept;
[[nodiscard]] const TraceRing* trace_ring_at(std::size_t i) noexcept;

}  // namespace dpg::obs
