// Flight recorder — lock-free per-thread event rings for the guard runtime.
//
// The paper's overhead story lives entirely on the malloc/free/mprotect path;
// when a production process faults on a dangling use, the question is always
// "what led up to this?". Each thread records fixed-size events (alloc, free,
// shadow-map, mprotect-batch, VA-reclaim, fault, pool lifetime) into a small
// ring; the last N events are attached to every DanglingReport and dumped by
// the metrics exporter, so a single crash is self-diagnosing.
//
// Concurrency contract (TSan-clean by construction):
//   - every ring word is a relaxed std::atomic<uint64_t>; the head counter is
//     bumped with fetch_add, so even two threads sharing a ring (the overflow
//     case when more than kMaxRings threads exist) claim distinct slots;
//   - readers (exporter, fault path, another thread) acquire-load the head
//     and read slot words relaxed. A reader racing the writer on the *oldest*
//     slot may observe a half-overwritten record; flight-recorder consumers
//     tolerate one torn record at the tail, and all accesses stay atomic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dpg::obs {

enum class EventKind : std::uint16_t {
  kNone = 0,
  kAlloc,         // addr = user pointer, arg = requested size
  kFree,          // addr = user pointer, arg = object size
  kShadowMap,     // addr = shadow base,  arg = span bytes
  kProtectBatch,  // addr = first span,   arg = frees flushed in the batch
  kVaReclaim,     // addr = span base,    arg = pages recycled
  kFault,         // addr = fault addr,   arg = AccessKind
  kPoolInit,      // addr = pool scope
  kPoolDestroy,   // addr = pool scope
  kDegrade,       // addr = new GuardMode, arg = old GuardMode
  kMagazineMap,   // addr = magazine shadow base, arg = slot pages mapped
  kRemoteDrain,   // addr = shard id, arg = remote frees drained
  kPkeyFallback,  // addr = pkey_alloc errno, arg = 0 (vm/revoke.h fallback)
};

[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kAlloc: return "alloc";
    case EventKind::kFree: return "free";
    case EventKind::kShadowMap: return "shadow-map";
    case EventKind::kProtectBatch: return "protect-batch";
    case EventKind::kVaReclaim: return "va-reclaim";
    case EventKind::kFault: return "fault";
    case EventKind::kPoolInit: return "pool-init";
    case EventKind::kPoolDestroy: return "pool-destroy";
    case EventKind::kDegrade: return "degrade";
    case EventKind::kMagazineMap: return "magazine-map";
    case EventKind::kRemoteDrain: return "remote-drain";
    case EventKind::kPkeyFallback: return "pkey-fallback";
  }
  return "?";
}

// Plain decoded record (what consumers see).
struct TraceEvent {
  std::uint64_t ns = 0;    // CLOCK_MONOTONIC timestamp
  std::uint64_t addr = 0;  // event-specific address (see EventKind)
  std::uint64_t arg = 0;   // event-specific payload (see EventKind)
  std::uint32_t site = 0;  // allocation/free SiteId when known
  std::uint16_t kind = 0;  // EventKind
  std::uint16_t tid = 0;   // small per-process thread index
};

class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 256;  // events; power of two

  void push(EventKind kind, std::uint64_t addr, std::uint64_t arg,
            std::uint32_t site, std::uint16_t tid, std::uint64_t ns) noexcept {
    const std::uint64_t h = head_.fetch_add(1, std::memory_order_relaxed);
    std::atomic<std::uint64_t>* w = &words_[(h & (kCapacity - 1)) * kWords];
    w[0].store(ns, std::memory_order_relaxed);
    w[1].store(addr, std::memory_order_relaxed);
    w[2].store(arg, std::memory_order_relaxed);
    const std::uint64_t meta = (static_cast<std::uint64_t>(site) << 32) |
                               (static_cast<std::uint64_t>(kind) << 16) | tid;
    // Release: a reader that acquire-loads head sees this slot complete.
    w[3].store(meta, std::memory_order_release);
  }

  // Copies up to `max` most-recent events into `out`, oldest first.
  // Async-signal-safe. Returns the number written.
  std::size_t capture(TraceEvent* out, std::size_t max) const noexcept {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t n = h < kCapacity ? h : kCapacity;
    if (n > max) n = max;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t idx = h - n + i;
      const std::atomic<std::uint64_t>* w =
          &words_[(idx & (kCapacity - 1)) * kWords];
      TraceEvent& e = out[i];
      e.ns = w[0].load(std::memory_order_relaxed);
      e.addr = w[1].load(std::memory_order_relaxed);
      e.arg = w[2].load(std::memory_order_relaxed);
      const std::uint64_t meta = w[3].load(std::memory_order_relaxed);
      e.site = static_cast<std::uint32_t>(meta >> 32);
      e.kind = static_cast<std::uint16_t>((meta >> 16) & 0xFFFF);
      e.tid = static_cast<std::uint16_t>(meta & 0xFFFF);
    }
    return static_cast<std::size_t>(n);
  }

  // Total events ever pushed (not clamped to capacity).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kWords = 4;  // one cache-line-friendly record

  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> words_[kCapacity * kWords] = {};
};

}  // namespace dpg::obs
