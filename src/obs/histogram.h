// Log-linear latency histograms (HDR-style) with atomic buckets.
//
// Table 1/3 of the paper decompose overhead into syscall and TLB components;
// these histograms put numbers on the syscall half at runtime: every guarded
// malloc/free and every mmap/mprotect/munmap/mremap the vm layer issues is
// recorded in nanoseconds, and the exporter reports p50/p95/p99/max.
//
// Layout: values 0..kSubBuckets-1 are exact; above that, each power-of-two
// block is split into kSubBuckets linear sub-buckets, bounding the relative
// error of any reported quantile by 1/kSubBuckets (~3%). All mutation is
// relaxed atomic increments — recording never takes a lock, percentile reads
// are async-signal-safe, and concurrent record/snapshot is TSan-clean.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dpg::obs {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 5;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 32
  // Highest representable shift is 63 - kSubBits -> 59 blocks cover all u64.
  static constexpr unsigned kBlocks = 64 - kSubBits + 1;
  static constexpr unsigned kBuckets = kBlocks << kSubBits;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  // Value at or below which `pct` percent of recordings fall, reported as the
  // upper bound of the containing bucket (clamped to the observed maximum).
  // pct in [0, 100]. Async-signal-safe; a concurrent recording may shift the
  // result by at most the in-flight samples.
  [[nodiscard]] std::uint64_t percentile(unsigned pct) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    std::uint64_t target = (total * pct + 99) / 100;
    if (target == 0) target = 1;
    if (target > total) target = total;
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      cum += buckets_[i].load(std::memory_order_relaxed);
      if (cum >= target) {
        const std::uint64_t hi = bucket_high(i);
        const std::uint64_t mx = max_value();
        return hi < mx ? hi : mx;
      }
    }
    return max_value();
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  // Raw bucket count, for snapshot serialization (crash dumps) and tests.
  [[nodiscard]] std::uint64_t bucket_count(unsigned i) const noexcept {
    return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
  }

  // --- bucket geometry (exposed for tests) ---

  [[nodiscard]] static constexpr unsigned bucket_index(
      std::uint64_t v) noexcept {
    if ((v >> kSubBits) == 0) return static_cast<unsigned>(v);
    const unsigned msb = 63 - static_cast<unsigned>(__builtin_clzll(v));
    const unsigned shift = msb - kSubBits;
    const unsigned sub =
        static_cast<unsigned>((v >> shift) & (kSubBuckets - 1));
    return ((shift + 1) << kSubBits) | sub;
  }

  // Smallest value mapping to bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_low(unsigned i) noexcept {
    const unsigned block = i >> kSubBits;
    const std::uint64_t sub = i & (kSubBuckets - 1);
    if (block == 0) return sub;
    const unsigned shift = block - 1;
    return (std::uint64_t{1} << (shift + kSubBits)) + (sub << shift);
  }

  // Largest value mapping to bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_high(
      unsigned i) noexcept {
    const unsigned block = i >> kSubBits;
    const std::uint64_t width = block == 0 ? 1 : std::uint64_t{1} << (block - 1);
    return bucket_low(i) + width - 1;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

}  // namespace dpg::obs
