// Async-signal-safe postmortem crash-dump writer and the .dpgcrash format.
//
// A detection in a production server is worthless if it dies with stderr.
// This module serializes everything the fault path knows — the dangling
// report with its alloc/free/use backtraces, every thread's flight-recorder
// ring, the counter registry, latency-histogram snapshots, the degradation
// ladder history, VM stats, and the /proc/self/maps module table — into a
// self-describing binary file in DPG_REPORT_DIR. The offline analyzer
// (tools/dpg_report) symbolizes and dedups those files fleet-wide.
//
// Format: 16-byte file header (magic "DPGCRSH1", version), then a sequence
// of TLV records (16-byte TlvHeader + payload), terminated by a Tag::kEnd
// record whose payload is the CRC32 (IEEE) of every byte written before the
// kEnd TLV header. A reader that cannot find a valid kEnd record with a
// matching CRC must treat the dump as truncated/corrupt. Unknown tags are
// skippable by construction (length-prefixed). All integers are native-endian
// little-endian x86-64; dumps are analyzed on the same fleet architecture
// that produced them.
//
// Async-signal-safety contract (the writer runs inside a SIGSEGV handler on
// the alternate stack):
//   - no malloc, no stdio: stack buffers + obs/fmt.h only;
//   - the report directory, /proc/self/maps and /proc/self/statm fds are
//     opened once at arm time (set_report_dir) and only read/pread later —
//     the sole crash-time name lookup is openat(dirfd, unique-name) for the
//     dump file itself;
//   - every write is EINTR-retried and short-write-resumed; injected openat/
//     write failures (DPG_FAULT_INJECT via the vm-installed io hook) leave a
//     truncated file that the analyzer rejects by CRC, never a hang or a
//     nested crash;
//   - a single atomic_flag serializes writers. Snapshot-class dumps (SIGUSR2,
//     demotion) skip when busy; the terminal fault path proceeds anyway
//     (`force`) since the process is about to abort and a concurrently
//     abandoned file is caught by its missing kEnd record.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/backtrace.h"
#include "obs/histogram.h"
#include "obs/trace.h"

namespace dpg::obs::dump {

inline constexpr char kMagic[8] = {'D', 'P', 'G', 'C', 'R', 'S', 'H', '1'};
// v2: LadderHeader grew the sampled rung's effective 1-in-N rate.
inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::size_t kMaxPathLen = 512;

enum class Tag : std::uint32_t {
  kMeta = 1,       // MetaSection
  kReport = 2,     // CrashReport
  kCounters = 3,   // CounterEntry[]
  kHistogram = 4,  // HistogramHeader + HistogramBucket[] (nonzero buckets)
  kRing = 5,       // RingHeader + TraceEvent[] (one TLV per thread ring)
  kMaps = 6,       // file-backed /proc/self/maps lines (text), maybe clipped
  kVmStats = 7,    // VmStatsSection
  kLadder = 8,     // LadderHeader + LadderEntry[] (degradation history)
  kEnd = 9,        // EndSection (CRC32 trailer) — always last
};

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
};
static_assert(sizeof(FileHeader) == 16);

struct TlvHeader {
  std::uint32_t tag;
  std::uint32_t reserved;
  std::uint64_t length;  // payload bytes following this header
};
static_assert(sizeof(TlvHeader) == 16);

struct MetaSection {
  std::uint64_t realtime_ns;   // CLOCK_REALTIME at dump time
  std::uint64_t monotonic_ns;  // CLOCK_MONOTONIC at dump time
  std::uint32_t pid;
  std::uint32_t tid;
  std::uint32_t site_depth;  // effective DPG_SITE_DEPTH
  std::uint32_t reserved;
  char reason[32];  // "fault", "sigusr2", "demotion", "oracle-mismatch", ...
};
static_assert(sizeof(MetaSection) == 64);

// Layering note: dpg_obs sits below dpg_core, so this is a plain-data mirror
// of core::DanglingReport (kind values match core::AccessKind) that the fault
// manager fills at dispatch. The analyzer only ever sees this POD.
struct CrashReport {
  std::uint32_t kind;  // core::AccessKind numeric value
  std::uint32_t alloc_site;
  std::uint32_t free_site;
  std::uint32_t reserved;
  std::uint64_t fault_address;
  std::uint64_t object_base;
  std::uint64_t object_size;
  std::uint32_t alloc_stack_depth;
  std::uint32_t free_stack_depth;
  std::uint32_t use_stack_depth;
  std::uint32_t trace_count;
  std::uint64_t alloc_stack[kMaxSiteFrames];
  std::uint64_t free_stack[kMaxSiteFrames];
  std::uint64_t use_stack[kMaxUseFrames];
  TraceEvent recent_trace[32];  // the faulting thread's ring, oldest first
};
static_assert(sizeof(TraceEvent) == 32);
static_assert(sizeof(CrashReport) == 56 + 8 * (8 + 8 + 16) + 32 * 32);

struct CounterEntry {
  char name[40];
  std::uint64_t value;
};
static_assert(sizeof(CounterEntry) == 48);

struct HistogramHeader {
  char name[16];
  std::uint64_t count;
  std::uint64_t sum;
  std::uint64_t max;
  std::uint64_t n_buckets;  // HistogramBucket records following
};
static_assert(sizeof(HistogramHeader) == 48);

struct HistogramBucket {
  std::uint64_t index;
  std::uint64_t count;
};

struct RingHeader {
  std::uint32_t ring_index;  // slot in the obs ring table (thread id order)
  std::uint32_t count;       // TraceEvent records following, oldest first
};

struct VmStatsSection {
  // /proc/self/statm fields, in pages.
  std::uint64_t vm_size_pages;
  std::uint64_t rss_pages;
  std::uint64_t shared_pages;
  std::uint64_t map_lines;          // total VMA count seen in maps
  std::uint64_t modules_truncated;  // 1 if the kMaps payload was clipped
};

struct LadderHeader {
  std::uint32_t current_mode;  // core::GuardMode numeric value at dump time
  std::uint32_t count;         // LadderEntry records following, oldest first
  std::uint32_t sample_rate;   // effective 1-in-N on the sampled rung
  std::uint32_t reserved;
};

struct LadderEntry {
  std::uint64_t monotonic_ns;
  std::uint32_t from_mode;
  std::uint32_t to_mode;
  std::uint32_t recovery;  // 1 = promotion back up the ladder
  char reason[20];
};
static_assert(sizeof(LadderEntry) == 40);

struct EndSection {
  std::uint32_t crc32;  // over bytes [0, offset-of-kEnd-TlvHeader)
  std::uint32_t reserved;
};

// --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) -------------------------
// Table is computed at compile time, so updates are pure arithmetic —
// async-signal-safe by construction. Shared by writer and analyzer.

namespace detail {
struct CrcTable {
  std::uint32_t v[256];
};
constexpr CrcTable make_crc_table() noexcept {
  CrcTable t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t.v[i] = c;
  }
  return t;
}
inline constexpr CrcTable kCrcTable = make_crc_table();
}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                const void* data,
                                                std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = detail::kCrcTable.v[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

[[nodiscard]] inline std::uint32_t crc32_final(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFu;
}

// --- writer API -------------------------------------------------------------

// Parses DPG_REPORT_DIR; when set, arms the writer (pre-opens fds, installs
// the chain-preserving SIGUSR2 snapshot handler). Idempotent.
void init_from_env() noexcept;

// Arms the writer on `dir` (created if missing), pre-opening the directory,
// /proc/self/maps and /proc/self/statm. nullptr disarms. Installs the SIGUSR2
// handler on first successful arm. Returns false when the directory cannot be
// opened. Not async-signal-safe (arm at startup, not in handlers).
bool set_report_dir(const char* dir) noexcept;

// True when a report directory is armed.
[[nodiscard]] bool enabled() noexcept;

// Writes one .dpgcrash dump. `reason` lands in the MetaSection (sanitized
// into the filename); `report` is optional (snapshot dumps pass nullptr).
// When another dump is in flight: returns false unless `force` (the terminal
// fault path), which proceeds regardless. On success copies the dump's path
// into out_path (when non-null, capacity out_path_cap). Async-signal-safe.
bool write_crash_dump(const char* reason, const CrashReport* report,
                      char* out_path = nullptr, std::size_t out_path_cap = 0,
                      bool force = false) noexcept;

// Extra-section registration: higher layers (vm, core) contribute TLVs the
// obs layer cannot know about — e.g. the degradation governor's ladder
// history. `fn` renders the payload into buf (returning bytes used, 0 to
// skip) and must itself be async-signal-safe. Capacity-bounded; returns
// false when full. Both pointers must stay valid forever.
using SectionFn = std::size_t (*)(void* ctx, char* buf, std::size_t cap);
bool register_section(Tag tag, SectionFn fn, void* ctx) noexcept;

// Fault-injection seam: installed by the vm layer (vm/sys.cc) so
// DPG_FAULT_INJECT "openat"/"write" plans reach the dump writer without obs
// depending on vm. The hook returns the errno to inject, or 0 to proceed.
using IoFaultHook = int (*)(bool is_write);
void set_io_fault_hook(IoFaultHook hook) noexcept;

// Diagnostics (exported as dpg_crash_dumps_{written,failed} counters).
[[nodiscard]] std::uint64_t dumps_written() noexcept;
[[nodiscard]] std::uint64_t dumps_failed() noexcept;

// Renders a histogram snapshot (HistogramHeader + nonzero HistogramBucket
// records) into buf. Returns bytes used, 0 when it does not fit or the
// histogram is empty. Async-signal-safe. Exposed for the bucket-edge tests.
std::size_t encode_histogram(const LatencyHistogram& h, const char* name,
                             char* buf, std::size_t cap) noexcept;

}  // namespace dpg::obs::dump
