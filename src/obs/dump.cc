#include "obs/dump.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

#include "obs/env.h"
#include "obs/fmt.h"
#include "obs/metrics.h"

namespace dpg::obs::dump {

namespace {

// --- armed state (written at set_report_dir time, read in handlers) ---------

std::atomic<int> g_dir_fd{-1};
std::atomic<int> g_maps_fd{-1};
std::atomic<int> g_statm_fd{-1};
std::atomic<IoFaultHook> g_io_hook{nullptr};
std::atomic_flag g_dump_lock = ATOMIC_FLAG_INIT;
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_written{0};
std::atomic<std::uint64_t> g_failed{0};

struct Section {
  Tag tag{};
  SectionFn fn = nullptr;
  void* ctx = nullptr;
};
constexpr std::size_t kMaxSections = 8;
Section g_sections[kMaxSections];
std::atomic<unsigned> g_section_count{0};
std::mutex g_section_mu;

struct sigaction g_prev_usr2 {};
bool g_prev_usr2_valid = false;

// Scratch for assembling multi-part TLV payloads (rings, histograms, maps,
// registered sections) before the single tlv() emit. Large enough for a full
// ring (256 events * 32 B = 8 KiB) and a worst-case histogram; sized well
// under the fault manager's 256 KiB alternate stack.
constexpr std::size_t kScratchCap = 48 * 1024;
constexpr std::size_t kMapsCap = 32 * 1024;

int injected_errno(bool is_write) noexcept {
  const IoFaultHook hook = g_io_hook.load(std::memory_order_acquire);
  return hook != nullptr ? hook(is_write) : 0;
}

// EINTR-retrying read of a pre-opened procfs fd from offset 0.
std::size_t pread_all(int fd, char* buf, std::size_t cap) noexcept {
  if (fd < 0) return 0;
  std::size_t at = 0;
  while (at < cap) {
    const ssize_t n = pread(fd, buf + at, cap - at, static_cast<off_t>(at));
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return at;
}

// --- the TLV emitter --------------------------------------------------------

class Writer {
 public:
  explicit Writer(int fd) noexcept : fd_(fd) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint32_t crc() const noexcept { return crc_; }

  bool emit(const void* data, std::size_t len) noexcept {
    if (!ok_) return false;
    crc_ = crc32_update(crc_, data, len);
    const char* p = static_cast<const char*>(data);
    std::size_t done = 0;
    int retries = 0;
    while (done < len) {
      const int inj = injected_errno(/*is_write=*/true);
      if (inj != 0) {
        if (inj == EINTR && retries < kMaxRetries) {
          ++retries;
          continue;
        }
        ok_ = false;
        return false;
      }
      const ssize_t n = write(fd_, p + done, len - done);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR && retries < kMaxRetries) {
        ++retries;
        continue;
      }
      ok_ = false;
      return false;
    }
    return true;
  }

  bool tlv(Tag tag, const void* payload, std::size_t len) noexcept {
    const TlvHeader h{static_cast<std::uint32_t>(tag), 0,
                      static_cast<std::uint64_t>(len)};
    return emit(&h, sizeof h) && (len == 0 || emit(payload, len));
  }

  // The trailer's CRC covers everything before its own TlvHeader.
  bool end() noexcept {
    const EndSection e{crc32_final(crc_), 0};
    return tlv(Tag::kEnd, &e, sizeof e);
  }

 private:
  static constexpr int kMaxRetries = 64;
  int fd_;
  std::uint32_t crc_ = crc32_init();
  bool ok_ = true;
};

// --- payload builders -------------------------------------------------------

std::uint64_t realtime_ns() noexcept {
  struct timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void fill_meta(MetaSection* m, const char* reason) noexcept {
  std::memset(m, 0, sizeof *m);
  m->realtime_ns = realtime_ns();
  m->monotonic_ns = monotonic_ns();
  m->pid = static_cast<std::uint32_t>(getpid());
  m->tid = static_cast<std::uint32_t>(gettid());
  m->site_depth = static_cast<std::uint32_t>(site_depth());
  std::size_t i = 0;
  for (; reason != nullptr && reason[i] != '\0' && i + 1 < sizeof m->reason;
       ++i) {
    m->reason[i] = reason[i];
  }
  m->reason[i] = '\0';
}

bool emit_counters(Writer& w, char* scratch) noexcept {
  const std::size_t n = counter_count();
  if (n == 0) return true;
  auto* entries = reinterpret_cast<CounterEntry*>(scratch);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n && (count + 1) * sizeof(CounterEntry) <=
                                       kScratchCap;
       ++i) {
    const char* name = counter_name(i);
    if (name == nullptr) continue;
    CounterEntry& e = entries[count++];
    std::memset(&e, 0, sizeof e);
    std::size_t k = 0;
    for (; name[k] != '\0' && k + 1 < sizeof e.name; ++k) e.name[k] = name[k];
    e.value = counter_value_at(i);
  }
  return w.tlv(Tag::kCounters, entries, count * sizeof(CounterEntry));
}

bool emit_histograms(Writer& w, char* scratch) noexcept {
  for (unsigned i = 0; i < static_cast<unsigned>(Hist::kCount); ++i) {
    const std::size_t len =
        encode_histogram(hist(static_cast<Hist>(i)),
                         hist_name(static_cast<Hist>(i)), scratch, kScratchCap);
    if (len == 0) continue;  // empty histogram or does not fit: skip
    if (!w.tlv(Tag::kHistogram, scratch, len)) return false;
  }
  return true;
}

bool emit_rings(Writer& w, char* scratch) noexcept {
  const std::size_t rings = trace_ring_count();
  for (std::size_t i = 0; i < rings; ++i) {
    const TraceRing* ring = trace_ring_at(i);
    if (ring == nullptr || ring->pushed() == 0) continue;
    auto* hdr = reinterpret_cast<RingHeader*>(scratch);
    auto* events = reinterpret_cast<TraceEvent*>(scratch + sizeof(RingHeader));
    constexpr std::size_t kMaxEvents =
        (kScratchCap - sizeof(RingHeader)) / sizeof(TraceEvent);
    const std::size_t n =
        ring->capture(events, kMaxEvents < TraceRing::kCapacity
                                  ? kMaxEvents
                                  : TraceRing::kCapacity);
    hdr->ring_index = static_cast<std::uint32_t>(i);
    hdr->count = static_cast<std::uint32_t>(n);
    if (!w.tlv(Tag::kRing, scratch,
               sizeof(RingHeader) + n * sizeof(TraceEvent))) {
      return false;
    }
  }
  return true;
}

// Streams /proc/self/maps (via the pre-opened fd), keeping only file-backed
// module lines for the analyzer's module table, counting every VMA for the
// kVmStats section. Returns the kept-bytes length; sets *map_lines and
// *truncated.
std::size_t build_maps(char* out, std::size_t out_cap, std::uint64_t* map_lines,
                       std::uint64_t* truncated) noexcept {
  *map_lines = 0;
  *truncated = 0;
  const int fd = g_maps_fd.load(std::memory_order_acquire);
  if (fd < 0) return 0;
  char chunk[4096];
  char line[512];
  std::size_t line_len = 0;
  std::size_t out_at = 0;
  off_t off = 0;
  for (;;) {
    ssize_t n = pread(fd, chunk, sizeof chunk, off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    off += n;
    for (ssize_t c = 0; c < n; ++c) {
      const char ch = chunk[c];
      if (ch != '\n') {
        if (line_len + 1 < sizeof line) line[line_len++] = ch;
        continue;
      }
      line[line_len] = '\0';
      ++*map_lines;
      // Module lines have an absolute path (field 6 starts with '/'); skip
      // anonymous VMAs and memfd-backed arenas — the analyzer only needs
      // real, on-disk objects it can run addr2line against.
      const char* slash = std::strchr(line, '/');
      const bool keep =
          slash != nullptr && std::strstr(line, "memfd:") == nullptr;
      if (keep) {
        if (out_at + line_len + 1 < out_cap) {
          std::memcpy(out + out_at, line, line_len);
          out_at += line_len;
          out[out_at++] = '\n';
        } else {
          *truncated = 1;
        }
      }
      line_len = 0;
    }
  }
  return out_at;
}

bool emit_maps_and_vmstats(Writer& w, char* scratch) noexcept {
  VmStatsSection vs{};
  const std::size_t maps_len =
      build_maps(scratch, kMapsCap, &vs.map_lines, &vs.modules_truncated);
  if (!w.tlv(Tag::kMaps, scratch, maps_len)) return false;

  char statm[128];
  const std::size_t n =
      pread_all(g_statm_fd.load(std::memory_order_acquire), statm,
                sizeof statm - 1);
  statm[n] = '\0';
  // /proc/self/statm: "size resident shared text lib data dt" in pages.
  std::uint64_t fields[3] = {0, 0, 0};
  const char* p = statm;
  for (int f = 0; f < 3 && *p != '\0'; ++f) {
    while (*p == ' ') ++p;
    std::uint64_t v = 0;
    while (*p >= '0' && *p <= '9') v = v * 10 + static_cast<std::uint64_t>(*p++ - '0');
    fields[f] = v;
  }
  vs.vm_size_pages = fields[0];
  vs.rss_pages = fields[1];
  vs.shared_pages = fields[2];
  return w.tlv(Tag::kVmStats, &vs, sizeof vs);
}

bool emit_registered_sections(Writer& w, char* scratch) noexcept {
  const unsigned n = g_section_count.load(std::memory_order_acquire);
  for (unsigned i = 0; i < n; ++i) {
    const Section& s = g_sections[i];
    const std::size_t len = s.fn(s.ctx, scratch, kScratchCap);
    if (len == 0 || len > kScratchCap) continue;
    if (!w.tlv(s.tag, scratch, len)) return false;
  }
  return true;
}

// dpg-<pid>-<monotonic_us>-<seq>-<reason>.dpgcrash, reason sanitized to
// [A-Za-z0-9-], at most 16 chars.
void build_name(char* buf, std::size_t cap, const char* reason,
                std::uint64_t seq) noexcept {
  std::size_t at = 0;
  at = fmt::put_str(buf, cap, at, "dpg-");
  at = fmt::put_dec(buf, cap, at, static_cast<std::uint64_t>(getpid()));
  at = fmt::put_str(buf, cap, at, "-");
  at = fmt::put_dec(buf, cap, at, monotonic_ns() / 1000);
  at = fmt::put_str(buf, cap, at, "-");
  at = fmt::put_dec(buf, cap, at, seq);
  at = fmt::put_str(buf, cap, at, "-");
  std::size_t copied = 0;
  for (const char* r = reason; r != nullptr && *r != '\0' && copied < 16; ++r) {
    const char c = *r;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-';
    if (ok && at + 1 < cap) {
      buf[at++] = c;
      ++copied;
    }
  }
  at = fmt::put_str(buf, cap, at, ".dpgcrash");
  buf[at < cap ? at : cap - 1] = '\0';
}

void on_sigusr2(int signo, siginfo_t* info, void* uctx) {
  const int saved_errno = errno;
  write_crash_dump("sigusr2", nullptr);
  errno = saved_errno;
  if (g_prev_usr2_valid) {
    if ((g_prev_usr2.sa_flags & SA_SIGINFO) != 0) {
      if (g_prev_usr2.sa_sigaction != nullptr) {
        g_prev_usr2.sa_sigaction(signo, info, uctx);
      }
    } else if (g_prev_usr2.sa_handler != SIG_IGN &&
               g_prev_usr2.sa_handler != SIG_DFL &&
               g_prev_usr2.sa_handler != nullptr) {
      g_prev_usr2.sa_handler(signo);
    }
  }
}

void install_sigusr2_once() noexcept {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa{};
    sa.sa_sigaction = on_sigusr2;
    sa.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    // Mirror of metrics.cc's SIGUSR1 registration: the two snapshot signals
    // must never interleave (both walk the counter/ring registries).
    sigaddset(&sa.sa_mask, SIGUSR1);
    if (sigaction(SIGUSR2, &sa, &g_prev_usr2) == 0) {
      g_prev_usr2_valid = true;
    }
  });
}

void close_armed_fds() noexcept {
  const int dir = g_dir_fd.exchange(-1, std::memory_order_acq_rel);
  const int maps = g_maps_fd.exchange(-1, std::memory_order_acq_rel);
  const int statm = g_statm_fd.exchange(-1, std::memory_order_acq_rel);
  if (dir >= 0) close(dir);
  if (maps >= 0) close(maps);
  if (statm >= 0) close(statm);
}

}  // namespace

void init_from_env() noexcept {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* dir = env_str("DPG_REPORT_DIR");
    if (dir != nullptr && dir[0] != '\0') set_report_dir(dir);
  });
}

bool set_report_dir(const char* dir) noexcept {
  if (dir == nullptr || dir[0] == '\0') {
    close_armed_fds();
    return true;
  }
  mkdir(dir, 0755);  // best effort; EEXIST is the common case
  const int dfd = open(dir, O_DIRECTORY | O_RDONLY | O_CLOEXEC);
  if (dfd < 0) return false;
  const int maps = open("/proc/self/maps", O_RDONLY | O_CLOEXEC);
  const int statm = open("/proc/self/statm", O_RDONLY | O_CLOEXEC);
  close_armed_fds();
  g_maps_fd.store(maps, std::memory_order_release);
  g_statm_fd.store(statm, std::memory_order_release);
  g_dir_fd.store(dfd, std::memory_order_release);
  install_sigusr2_once();
  // The counters are registered here (not namespace-scope) so they only show
  // up in processes that actually arm the dump writer.
  static std::once_flag counters_once;
  std::call_once(counters_once, [] {
    register_counter("dpg_crash_dumps_written", &g_written);
    register_counter("dpg_crash_dumps_failed", &g_failed);
  });
  return true;
}

bool enabled() noexcept {
  return g_dir_fd.load(std::memory_order_acquire) >= 0;
}

bool register_section(Tag tag, SectionFn fn, void* ctx) noexcept {
  if (fn == nullptr) return false;
  std::lock_guard lock(g_section_mu);
  const unsigned n = g_section_count.load(std::memory_order_relaxed);
  if (n >= kMaxSections) return false;
  g_sections[n].tag = tag;
  g_sections[n].fn = fn;
  g_sections[n].ctx = ctx;
  g_section_count.store(n + 1, std::memory_order_release);
  return true;
}

void set_io_fault_hook(IoFaultHook hook) noexcept {
  g_io_hook.store(hook, std::memory_order_release);
}

std::uint64_t dumps_written() noexcept {
  return g_written.load(std::memory_order_relaxed);
}

std::uint64_t dumps_failed() noexcept {
  return g_failed.load(std::memory_order_relaxed);
}

std::size_t encode_histogram(const LatencyHistogram& h, const char* name,
                             char* buf, std::size_t cap) noexcept {
  if (h.count() == 0 || cap < sizeof(HistogramHeader)) return 0;
  auto* hdr = reinterpret_cast<HistogramHeader*>(buf);
  std::memset(hdr, 0, sizeof *hdr);
  std::size_t k = 0;
  for (; name != nullptr && name[k] != '\0' && k + 1 < sizeof hdr->name; ++k) {
    hdr->name[k] = name[k];
  }
  hdr->count = h.count();
  hdr->sum = h.sum();
  hdr->max = h.max_value();
  std::size_t at = sizeof(HistogramHeader);
  std::uint64_t n_buckets = 0;
  for (unsigned i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t c = h.bucket_count(i);
    if (c == 0) continue;
    if (at + sizeof(HistogramBucket) > cap) return 0;  // does not fit
    HistogramBucket b{i, c};
    std::memcpy(buf + at, &b, sizeof b);
    at += sizeof b;
    ++n_buckets;
  }
  hdr->n_buckets = n_buckets;
  return at;
}

bool write_crash_dump(const char* reason, const CrashReport* report,
                      char* out_path, std::size_t out_path_cap,
                      bool force) noexcept {
  const int dfd = g_dir_fd.load(std::memory_order_acquire);
  if (dfd < 0) return false;

  // Snapshot-class dumps yield to an in-flight writer; the terminal fault
  // path proceeds regardless (the process aborts right after, and a dump it
  // abandoned mid-write fails CRC validation rather than corrupting state —
  // each writer owns its own fd and stack buffers).
  bool owned = true;
  if (g_dump_lock.test_and_set(std::memory_order_acquire)) {
    if (!force) {
      g_failed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    owned = false;
  }

  char name[128];
  int fd = -1;
  for (int attempt = 0; attempt < 4 && fd < 0; ++attempt) {
    const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed);
    build_name(name, sizeof name, reason, seq);
    const int inj = injected_errno(/*is_write=*/false);
    if (inj != 0) {
      if (inj == EINTR) continue;
      break;
    }
    fd = openat(dfd, name, O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0 && errno != EEXIST && errno != EINTR) break;
  }
  if (fd < 0) {
    g_failed.fetch_add(1, std::memory_order_relaxed);
    if (owned) g_dump_lock.clear(std::memory_order_release);
    return false;
  }

  char scratch[kScratchCap];
  Writer w(fd);

  FileHeader fh{};
  std::memcpy(fh.magic, kMagic, sizeof fh.magic);
  fh.version = kVersion;
  w.emit(&fh, sizeof fh);

  MetaSection meta;
  fill_meta(&meta, reason);
  w.tlv(Tag::kMeta, &meta, sizeof meta);

  if (report != nullptr) w.tlv(Tag::kReport, report, sizeof *report);

  emit_counters(w, scratch);
  emit_histograms(w, scratch);
  emit_rings(w, scratch);
  emit_maps_and_vmstats(w, scratch);
  emit_registered_sections(w, scratch);
  w.end();

  close(fd);
  const bool ok = w.ok();
  (ok ? g_written : g_failed).fetch_add(1, std::memory_order_relaxed);
  if (ok && out_path != nullptr && out_path_cap > 0) {
    std::size_t at = 0;
    // Best effort: report the name relative to the armed directory (handlers
    // cannot re-derive the directory path; the analyzer takes either form).
    at = fmt::put_str(out_path, out_path_cap, at, name);
    out_path[at < out_path_cap ? at : out_path_cap - 1] = '\0';
  }
  if (owned) g_dump_lock.clear(std::memory_order_release);
  return ok;
}

}  // namespace dpg::obs::dump
