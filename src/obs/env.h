// Validated environment-variable parsing shared by the observability layer
// and the bench harness.
//
// atoi/atof silently turn garbage ("DPG_BENCH_REPS=abc") into 0, which then
// masquerades as a legitimate configuration. These helpers parse with
// strtol/strtod, require the *entire* value to be consumed, clamp to a
// caller-supplied range, and emit one stderr warning before falling back to
// the default — so a typo'd knob is loud instead of silently wrong.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpg::obs {

// Raw value, or nullptr when unset or empty.
inline const char* env_str(const char* name) noexcept {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

inline long env_long(const char* name, long fallback, long lo = LONG_MIN,
                     long hi = LONG_MAX) noexcept {
  const char* v = env_str(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "dpguard: ignoring %s=\"%s\" (not an integer); using %ld\n",
                 name, v, fallback);
    return fallback;
  }
  if (parsed < lo || parsed > hi) {
    std::fprintf(stderr,
                 "dpguard: %s=%ld out of range [%ld, %ld]; using %ld\n", name,
                 parsed, lo, hi, fallback);
    return fallback;
  }
  return parsed;
}

inline double env_double(const char* name, double fallback, double lo,
                         double hi) noexcept {
  const char* v = env_str(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "dpguard: ignoring %s=\"%s\" (not a number); using %g\n",
                 name, v, fallback);
    return fallback;
  }
  if (parsed < lo || parsed > hi) {
    std::fprintf(stderr, "dpguard: %s=%g out of range [%g, %g]; using %g\n",
                 name, parsed, lo, hi, fallback);
    return fallback;
  }
  return parsed;
}

// Accepts 1/0, true/false, on/off, yes/no (case-sensitive, the common forms).
inline bool env_flag(const char* name, bool fallback) noexcept {
  const char* v = env_str(name);
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
      std::strcmp(v, "on") == 0 || std::strcmp(v, "yes") == 0) {
    return true;
  }
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
      std::strcmp(v, "off") == 0 || std::strcmp(v, "no") == 0) {
    return false;
  }
  std::fprintf(stderr, "dpguard: ignoring %s=\"%s\" (not a flag); using %d\n",
               name, v, fallback ? 1 : 0);
  return fallback;
}

}  // namespace dpg::obs
