// Async-signal-safe string building.
//
// The fault handler and the SIGUSR1 metrics dump both format diagnostics from
// signal context, where snprintf/malloc are off the table. These helpers
// append into a caller-owned buffer, never allocate, never overrun, and
// always leave room for a terminating byte. Each returns the new write
// position.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dpg::obs::fmt {

inline std::size_t put_str(char* out, std::size_t cap, std::size_t at,
                           const char* s) noexcept {
  while (*s != '\0' && at + 1 < cap) out[at++] = *s++;
  return at;
}

inline std::size_t put_hex(char* out, std::size_t cap, std::size_t at,
                           std::uint64_t v) noexcept {
  char digits[18];
  int n = 0;
  do {
    const int d = static_cast<int>(v & 0xF);
    digits[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + d - 10);
    v >>= 4;
  } while (v != 0);
  at = put_str(out, cap, at, "0x");
  while (n > 0 && at + 1 < cap) out[at++] = digits[--n];
  return at;
}

inline std::size_t put_dec(char* out, std::size_t cap, std::size_t at,
                           std::uint64_t v) noexcept {
  char digits[21];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && at + 1 < cap) out[at++] = digits[--n];
  return at;
}

// "key":value — the JSON building block used by the metrics exporter.
inline std::size_t put_json_kv(char* out, std::size_t cap, std::size_t at,
                               const char* key, std::uint64_t v) noexcept {
  at = put_str(out, cap, at, "\"");
  at = put_str(out, cap, at, key);
  at = put_str(out, cap, at, "\":");
  return put_dec(out, cap, at, v);
}

}  // namespace dpg::obs::fmt
