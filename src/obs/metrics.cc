#include "obs/metrics.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/dump.h"
#include "obs/env.h"
#include "obs/fmt.h"

namespace dpg::obs {

namespace detail {
std::atomic<int> g_trace_mode{0};
}  // namespace detail

namespace {

// --- per-thread rings ------------------------------------------------------

constexpr std::size_t kMaxRings = 128;

std::atomic<TraceRing*> g_rings[kMaxRings];
std::atomic<unsigned> g_thread_count{0};

struct ThreadRec {
  TraceRing* ring = nullptr;
  std::uint16_t tid = 0;
};
thread_local ThreadRec t_rec;

TraceRing* this_thread_ring() noexcept {
  if (t_rec.ring == nullptr) {
    const unsigned idx = g_thread_count.fetch_add(1, std::memory_order_relaxed);
    t_rec.tid = static_cast<std::uint16_t>(idx);
    // Rings are immortal: a thread may exit, but its ring stays readable for
    // post-mortem dumps. Beyond kMaxRings threads, rings are private and
    // unregistered (fault capture still works; they are absent from dumps).
    auto* ring = new TraceRing();
    if (idx < kMaxRings) g_rings[idx].store(ring, std::memory_order_release);
    t_rec.ring = ring;
  }
  return t_rec.ring;
}

// --- histograms ------------------------------------------------------------

LatencyHistogram g_hists[static_cast<unsigned>(Hist::kCount)];

constexpr const char* kHistNames[static_cast<unsigned>(Hist::kCount)] = {
    "alloc_ns", "free_ns", "mmap_ns", "mprotect_ns", "munmap_ns", "mremap_ns",
};

// --- counter registry ------------------------------------------------------

constexpr std::size_t kMaxCounters = 96;

struct NamedCounter {
  const char* name = nullptr;
  const std::atomic<std::uint64_t>* value = nullptr;
  CounterFn fn = nullptr;   // when set, the exported value is fn(ctx)
  const void* ctx = nullptr;
};
NamedCounter g_counters[kMaxCounters];

// Exported value of one registered counter. The fn form lets a sharded
// subsystem sum per-shard atomics on read; the callback must stay
// async-signal-safe (relaxed loads + arithmetic, no locks, no allocation)
// because every dump path, including SIGUSR1, goes through here.
std::uint64_t counter_value(const NamedCounter& c) noexcept {
  return c.fn != nullptr ? c.fn(c.ctx)
                         : c.value->load(std::memory_order_relaxed);
}
std::atomic<unsigned> g_counter_count{0};
std::mutex g_register_mu;

// --- exporter state --------------------------------------------------------

constexpr std::size_t kPathCap = 512;
char g_json_path[kPathCap] = {0};
char g_prom_path[kPathCap] = {0};
std::atomic<bool> g_json_path_set{false};
std::atomic<bool> g_prom_path_set{false};
std::atomic_flag g_dump_lock = ATOMIC_FLAG_INIT;
char g_dump_buf[64 * 1024];  // shared by all dump paths, under g_dump_lock

void set_path(char* dst, std::atomic<bool>& flag, const char* src) noexcept {
  if (src == nullptr || src[0] == '\0') {
    flag.store(false, std::memory_order_release);
    return;
  }
  std::strncpy(dst, src, kPathCap - 1);
  dst[kPathCap - 1] = '\0';
  flag.store(true, std::memory_order_release);
}

// Previous SIGUSR1 disposition, chained after our dump so embedding
// applications keep their own handler (audited: before this, sigaction below
// silently dropped it).
struct sigaction g_prev_usr1 {};
bool g_prev_usr1_valid = false;

void on_sigusr1(int signo, siginfo_t* info, void* uctx) {
  const int saved_errno = errno;
  dump_metrics("sigusr1");
  errno = saved_errno;
  if (!g_prev_usr1_valid) return;
  if ((g_prev_usr1.sa_flags & SA_SIGINFO) != 0) {
    if (g_prev_usr1.sa_sigaction != nullptr) {
      g_prev_usr1.sa_sigaction(signo, info, uctx);
    }
  } else if (g_prev_usr1.sa_handler != SIG_IGN &&
             g_prev_usr1.sa_handler != SIG_DFL &&
             g_prev_usr1.sa_handler != nullptr) {
    g_prev_usr1.sa_handler(signo);
  }
}

void dump_at_exit() { dump_metrics("atexit"); }

bool write_file(const char* path, bool append, const char* data,
                std::size_t len) noexcept {
  const int flags =
      O_WRONLY | O_CREAT | O_CLOEXEC | (append ? O_APPEND : O_TRUNC);
  const int fd = open(path, flags, 0644);
  if (fd < 0) return false;
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = write(fd, data + done, len - done);
    if (n <= 0) break;
    done += static_cast<std::size_t>(n);
  }
  close(fd);
  return done == len;
}

std::size_t put_hist_json(char* buf, std::size_t cap, std::size_t at,
                          const LatencyHistogram& h) noexcept {
  at = fmt::put_str(buf, cap, at, "{");
  at = fmt::put_json_kv(buf, cap, at, "count", h.count());
  at = fmt::put_str(buf, cap, at, ",");
  at = fmt::put_json_kv(buf, cap, at, "sum", h.sum());
  at = fmt::put_str(buf, cap, at, ",");
  at = fmt::put_json_kv(buf, cap, at, "p50", h.percentile(50));
  at = fmt::put_str(buf, cap, at, ",");
  at = fmt::put_json_kv(buf, cap, at, "p95", h.percentile(95));
  at = fmt::put_str(buf, cap, at, ",");
  at = fmt::put_json_kv(buf, cap, at, "p99", h.percentile(99));
  at = fmt::put_str(buf, cap, at, ",");
  at = fmt::put_json_kv(buf, cap, at, "max", h.max_value());
  return fmt::put_str(buf, cap, at, "}");
}

}  // namespace

namespace detail {

int init_trace_mode() noexcept {
  init_from_env();
  return g_trace_mode.load(std::memory_order_relaxed);
}

void record_event_slow(EventKind kind, std::uint64_t addr, std::uint64_t arg,
                       std::uint32_t site) noexcept {
  ThreadRec& rec = t_rec;
  TraceRing* ring = rec.ring != nullptr ? rec.ring : this_thread_ring();
  ring->push(kind, addr, arg, site, rec.tid, monotonic_ns());
}

}  // namespace detail

std::uint64_t monotonic_ns() noexcept {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void set_trace_enabled(bool on) noexcept {
  detail::g_trace_mode.store(on ? 2 : 1, std::memory_order_relaxed);
}

std::size_t capture_recent(TraceEvent* out, std::size_t max) noexcept {
  const TraceRing* ring = t_rec.ring;
  if (ring == nullptr) return 0;
  return ring->capture(out, max);
}

const char* hist_name(Hist h) noexcept {
  return kHistNames[static_cast<unsigned>(h)];
}

LatencyHistogram& hist(Hist h) noexcept {
  return g_hists[static_cast<unsigned>(h)];
}

bool register_counter(const char* name,
                      const std::atomic<std::uint64_t>* value) noexcept {
  std::lock_guard lock(g_register_mu);
  const unsigned n = g_counter_count.load(std::memory_order_relaxed);
  if (n >= kMaxCounters) return false;
  g_counters[n].name = name;
  g_counters[n].value = value;
  // Publish after the entry is complete; lock-free readers acquire the count.
  g_counter_count.store(n + 1, std::memory_order_release);
  return true;
}

bool register_counter_fn(const char* name, CounterFn fn,
                         const void* ctx) noexcept {
  std::lock_guard lock(g_register_mu);
  const unsigned n = g_counter_count.load(std::memory_order_relaxed);
  if (n >= kMaxCounters) return false;
  g_counters[n].name = name;
  g_counters[n].value = nullptr;
  g_counters[n].fn = fn;
  g_counters[n].ctx = ctx;
  g_counter_count.store(n + 1, std::memory_order_release);
  return true;
}

void init_from_env() noexcept {
  static std::once_flag once;
  std::call_once(once, [] {
    // Arm the crash-dump writer alongside the exporter so every engine
    // constructor's init_from_env() also honors DPG_REPORT_DIR.
    dump::init_from_env();
    // Respect an earlier set_trace_enabled() override.
    int expected = 0;
    const int mode = env_flag("DPG_TRACE", false) ? 2 : 1;
    detail::g_trace_mode.compare_exchange_strong(expected, mode,
                                                 std::memory_order_relaxed);
    set_path(g_prom_path, g_prom_path_set, env_str("DPG_METRICS_PROM"));
    const char* path = env_str("DPG_METRICS_PATH");
    if (path == nullptr) return;
    set_path(g_json_path, g_json_path_set, path);
    std::atexit(dump_at_exit);
    struct sigaction sa{};
    sa.sa_sigaction = on_sigusr1;
    sa.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    // The SIGUSR2 crash-snapshot handler (obs/dump.cc) and this metrics dump
    // both walk the registries; cross-block so the two never interleave. The
    // atexit exporter is already covered by g_dump_lock's skip-if-busy.
    sigaddset(&sa.sa_mask, SIGUSR2);
    if (sigaction(SIGUSR1, &sa, &g_prev_usr1) == 0) {
      g_prev_usr1_valid = true;
    }
    const long interval_ms =
        env_long("DPG_METRICS_INTERVAL_MS", 0, 0, 86'400'000);
    if (interval_ms > 0) {
      std::thread([interval_ms] {
        const struct timespec ts{interval_ms / 1000,
                                 (interval_ms % 1000) * 1'000'000};
        for (;;) {
          struct timespec remaining = ts;
          nanosleep(&remaining, nullptr);
          dump_metrics("interval");
        }
      }).detach();
    }
  });
}

void set_metrics_path(const char* path) noexcept {
  set_path(g_json_path, g_json_path_set, path);
}

void set_prometheus_path(const char* path) noexcept {
  set_path(g_prom_path, g_prom_path_set, path);
}

std::size_t render_json(char* buf, std::size_t cap,
                        const char* reason) noexcept {
  std::size_t at = 0;
  at = fmt::put_str(buf, cap, at, "{\"type\":\"dpg_metrics\",\"reason\":\"");
  at = fmt::put_str(buf, cap, at, reason);
  at = fmt::put_str(buf, cap, at, "\",");
  at = fmt::put_json_kv(buf, cap, at, "ts_ns", monotonic_ns());
  at = fmt::put_str(buf, cap, at, ",\"counters\":{");
  const unsigned n = g_counter_count.load(std::memory_order_acquire);
  for (unsigned i = 0; i < n; ++i) {
    if (i != 0) at = fmt::put_str(buf, cap, at, ",");
    at = fmt::put_json_kv(buf, cap, at, g_counters[i].name,
                          counter_value(g_counters[i]));
  }
  at = fmt::put_str(buf, cap, at, "},\"histograms\":{");
  for (unsigned i = 0; i < static_cast<unsigned>(Hist::kCount); ++i) {
    if (i != 0) at = fmt::put_str(buf, cap, at, ",");
    at = fmt::put_str(buf, cap, at, "\"");
    at = fmt::put_str(buf, cap, at, kHistNames[i]);
    at = fmt::put_str(buf, cap, at, "\":");
    at = put_hist_json(buf, cap, at, g_hists[i]);
  }
  at = fmt::put_str(buf, cap, at, "},\"trace\":{");
  std::uint64_t events = 0;
  unsigned threads = g_thread_count.load(std::memory_order_relaxed);
  if (threads > kMaxRings) threads = kMaxRings;
  for (unsigned i = 0; i < threads; ++i) {
    const TraceRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) events += ring->pushed();
  }
  at = fmt::put_json_kv(buf, cap, at, "threads", threads);
  at = fmt::put_str(buf, cap, at, ",");
  at = fmt::put_json_kv(buf, cap, at, "events", events);
  at = fmt::put_str(buf, cap, at, "}}");
  return at + 1 < cap ? at : 0;  // 0 => truncated, caller should not emit
}

std::size_t render_prometheus(char* buf, std::size_t cap) noexcept {
  std::size_t at = 0;
  const unsigned n = g_counter_count.load(std::memory_order_acquire);
  for (unsigned i = 0; i < n; ++i) {
    at = fmt::put_str(buf, cap, at, "# TYPE ");
    at = fmt::put_str(buf, cap, at, g_counters[i].name);
    at = fmt::put_str(buf, cap, at, " counter\n");
    at = fmt::put_str(buf, cap, at, g_counters[i].name);
    at = fmt::put_str(buf, cap, at, " ");
    at = fmt::put_dec(buf, cap, at, counter_value(g_counters[i]));
    at = fmt::put_str(buf, cap, at, "\n");
  }
  static constexpr unsigned kQuantiles[] = {50, 95, 99};
  static constexpr const char* kQuantileLabels[] = {"0.5", "0.95", "0.99"};
  for (unsigned i = 0; i < static_cast<unsigned>(Hist::kCount); ++i) {
    const LatencyHistogram& h = g_hists[i];
    at = fmt::put_str(buf, cap, at, "# TYPE dpg_");
    at = fmt::put_str(buf, cap, at, kHistNames[i]);
    at = fmt::put_str(buf, cap, at, " summary\n");
    for (unsigned q = 0; q < 3; ++q) {
      at = fmt::put_str(buf, cap, at, "dpg_");
      at = fmt::put_str(buf, cap, at, kHistNames[i]);
      at = fmt::put_str(buf, cap, at, "{quantile=\"");
      at = fmt::put_str(buf, cap, at, kQuantileLabels[q]);
      at = fmt::put_str(buf, cap, at, "\"} ");
      at = fmt::put_dec(buf, cap, at, h.percentile(kQuantiles[q]));
      at = fmt::put_str(buf, cap, at, "\n");
    }
    at = fmt::put_str(buf, cap, at, "dpg_");
    at = fmt::put_str(buf, cap, at, kHistNames[i]);
    at = fmt::put_str(buf, cap, at, "_sum ");
    at = fmt::put_dec(buf, cap, at, h.sum());
    at = fmt::put_str(buf, cap, at, "\ndpg_");
    at = fmt::put_str(buf, cap, at, kHistNames[i]);
    at = fmt::put_str(buf, cap, at, "_count ");
    at = fmt::put_dec(buf, cap, at, h.count());
    at = fmt::put_str(buf, cap, at, "\n");
  }
  return at + 1 < cap ? at : 0;
}

bool dump_metrics(const char* reason) noexcept {
  const bool want_json = g_json_path_set.load(std::memory_order_acquire);
  const bool want_prom = g_prom_path_set.load(std::memory_order_acquire);
  if (!want_json && !want_prom) return false;
  // One dump at a time (also guards against handler reentrancy): a signal
  // landing mid-dump skips rather than deadlocks.
  if (g_dump_lock.test_and_set(std::memory_order_acquire)) return false;
  bool ok = true;
  if (want_json) {
    std::size_t len = render_json(g_dump_buf, sizeof g_dump_buf - 1, reason);
    if (len != 0) {
      g_dump_buf[len++] = '\n';
      ok = write_file(g_json_path, /*append=*/true, g_dump_buf, len) && ok;
    } else {
      ok = false;
    }
  }
  if (want_prom) {
    const std::size_t len = render_prometheus(g_dump_buf, sizeof g_dump_buf);
    ok = (len != 0 &&
          write_file(g_prom_path, /*append=*/false, g_dump_buf, len)) &&
         ok;
  }
  g_dump_lock.clear(std::memory_order_release);
  return ok;
}

std::size_t counter_count() noexcept {
  return g_counter_count.load(std::memory_order_acquire);
}

const char* counter_name(std::size_t i) noexcept {
  if (i >= g_counter_count.load(std::memory_order_acquire)) return nullptr;
  return g_counters[i].name;
}

std::uint64_t counter_value_at(std::size_t i) noexcept {
  if (i >= g_counter_count.load(std::memory_order_acquire)) return 0;
  return counter_value(g_counters[i]);
}

std::size_t trace_ring_count() noexcept {
  const unsigned n = g_thread_count.load(std::memory_order_relaxed);
  return n < kMaxRings ? n : kMaxRings;
}

const TraceRing* trace_ring_at(std::size_t i) noexcept {
  if (i >= kMaxRings) return nullptr;
  return g_rings[i].load(std::memory_order_acquire);
}

}  // namespace dpg::obs
