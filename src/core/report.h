// Diagnostic types produced when a dangling pointer use is detected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/backtrace.h"
#include "obs/trace.h"

namespace dpg::core {

// Site identifiers let callers tag allocation/free program points (the
// compiler substrate emits instruction ids; hand-written code can use any
// scheme, e.g. __LINE__). Zero means "unknown site".
using SiteId = std::uint32_t;

// What the dangling pointer was used for. The paper (Section 2.1): "use of a
// pointer is a read, write or free operation on that pointer".
enum class AccessKind : std::uint8_t {
  kRead,
  kWrite,
  kFree,        // free() of an already-freed object (double free)
  kInvalidFree, // free() of a pointer we never allocated
  kOverflow,    // access past a live object's last page (trailing guard)
  kUnknown,     // fault where read/write could not be classified
  kTagMismatch, // lock-and-key lane: pointer's generation tag disagrees with
                // the slot's generation word (stale access or stale free)
};

[[nodiscard]] constexpr const char* to_string(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kFree: return "double-free";
    case AccessKind::kInvalidFree: return "invalid-free";
    case AccessKind::kOverflow: return "overflow";
    case AccessKind::kUnknown: return "access";
    case AccessKind::kTagMismatch: return "tag-mismatch";
  }
  return "?";
}

struct DanglingReport {
  AccessKind kind = AccessKind::kUnknown;
  std::uintptr_t fault_address = 0;  // the dangling pointer value used
  std::uintptr_t object_base = 0;    // shadow address the program was given
  std::size_t object_size = 0;
  SiteId alloc_site = 0;
  SiteId free_site = 0;

  // Flight-recorder enrichment (DPG_TRACE=1): the faulting thread's most
  // recent events, oldest first, filled by the fault manager at dispatch so a
  // single production crash carries its own history. Empty when tracing is
  // off. The kFault event for this very report is recorded first, so it is
  // always the newest entry when tracing is on.
  static constexpr std::size_t kTraceDepth = 32;
  std::size_t trace_count = 0;
  obs::TraceEvent recent_trace[kTraceDepth] = {};

  // Raw return-address backtraces (deepest caller first) for the §4 diagnosis
  // triple: where the object was allocated, where it was freed, and where the
  // dangling use happened. Alloc/free stacks are copied out of the shadow
  // slot's ObjectRecord; the use stack comes from the faulting signal context
  // (or a normal-context walk for software-raised reports). All empty when
  // DPG_SITE_DEPTH=0. Symbolized offline by tools/dpg_report.
  static constexpr std::size_t kSiteStackDepth = obs::kMaxSiteFrames;
  static constexpr std::size_t kUseStackDepth = obs::kMaxUseFrames;
  std::size_t alloc_stack_depth = 0;
  std::size_t free_stack_depth = 0;
  std::size_t use_stack_depth = 0;
  std::uintptr_t alloc_stack[kSiteStackDepth] = {};
  std::uintptr_t free_stack[kSiteStackDepth] = {};
  std::uintptr_t use_stack[kUseStackDepth] = {};

  [[nodiscard]] std::string describe() const;
};

inline std::string DanglingReport::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "dangling %s of %p: object [%p, +%zu) allocated at site %u, "
                "freed at site %u",
                to_string(kind), reinterpret_cast<void*>(fault_address),
                reinterpret_cast<void*>(object_base), object_size, alloc_site,
                free_site);
  return buf;
}

}  // namespace dpg::core
