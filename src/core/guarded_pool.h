// GuardedPool — pool allocation integrated with page aliasing (Section 3.3).
//
// "The key benefit is that, at a pool destroy, we can release all (shadow and
//  canonical) virtual memory pages of the pool to be reused by future
//  allocations."
//
// A GuardedPoolContext holds the state the paper shares process-wide: the
// physical arena, the canonical-extent free list (inside ArenaSource), and
// the shadow-page VA free list shared across pools. Each GuardedPool is one
// poolinit/pooldestroy lifetime: destroy() purges every record the pool's
// engine created (recycling shadow VAs onto the shared list) and recycles the
// pool's canonical extents.
//
// PoolScope is the RAII marker workloads use to stand in for the compiler
// transformation: constructing one is poolinit, destruction is pooldestroy.
#pragma once

#include <cstddef>
#include <memory>

#include "alloc/pool.h"
#include "core/guarded_heap.h"
#include "core/lockandkey.h"
#include "vm/phys_arena.h"
#include "vm/va_freelist.h"

namespace dpg::core {

class GuardedPoolContext {
 public:
  explicit GuardedPoolContext(GuardConfig cfg = {},
                              std::size_t arena_window =
                                  vm::PhysArena::kDefaultWindow)
      : arena_(arena_window), source_(arena_), cfg_(cfg) {
    // The shared shadow VA list is the arena's emergency VMA-relief source.
    arena_.add_relief_source(&shadow_va_);
    // Spans it munmaps were live guard VMAs: settle them with the governor
    // so the pressure estimate does not ratchet up across pool contexts.
    shadow_va_.set_release_hook(
        +[](void* gov, std::size_t ranges) {
          static_cast<DegradationGovernor*>(gov)->add_vmas(
              -static_cast<long>(ranges));
        },
        cfg_.governor != nullptr ? cfg_.governor
                                 : &DegradationGovernor::process());
  }

  ~GuardedPoolContext() { arena_.remove_relief_source(&shadow_va_); }

  GuardedPoolContext(const GuardedPoolContext&) = delete;
  GuardedPoolContext& operator=(const GuardedPoolContext&) = delete;

  [[nodiscard]] vm::PhysArena& arena() noexcept { return arena_; }
  [[nodiscard]] alloc::ArenaSource& source() noexcept { return source_; }
  [[nodiscard]] vm::VaFreeList& shadow_freelist() noexcept { return shadow_va_; }
  [[nodiscard]] const GuardConfig& config() const noexcept { return cfg_; }

  // Shadow VA bytes currently recyclable — the §4.3 measurements read this.
  [[nodiscard]] std::size_t recyclable_shadow_bytes() const {
    return shadow_va_.bytes();
  }

 private:
  vm::PhysArena arena_;
  alloc::ArenaSource source_;
  vm::VaFreeList shadow_va_;
  GuardConfig cfg_;
};

class GuardedPool {
 public:
  // poolinit(&PP, elem_size).
  explicit GuardedPool(GuardedPoolContext& ctx, std::size_t elem_size_hint = 0)
      : pool_(ctx.source(), elem_size_hint),
        engine_(ctx.arena(), pool_, &ctx.shadow_freelist(), ctx.config()) {}

  ~GuardedPool() { destroy(); }

  GuardedPool(const GuardedPool&) = delete;
  GuardedPool& operator=(const GuardedPool&) = delete;

  // poolalloc / poolfree.
  [[nodiscard]] void* alloc(std::size_t size, SiteId site = 0) {
    return engine_.malloc(size, site);
  }
  void free(void* p, SiteId site = 0) { engine_.free(p, site); }

  // Guard-elision path for sites the static UAF analysis proved SAFE:
  // canonical pool memory, no shadow alias, no PROT_NONE at free. Lifetime
  // is still bounded by pooldestroy (the canonical extents are recycled),
  // so elided allocations cost exactly what plain pool allocation costs.
  [[nodiscard]] void* alloc_unguarded(std::size_t size, SiteId site = 0) {
    return engine_.malloc_unguarded(size, site);
  }
  void free_unguarded(void* p, SiteId site = 0) {
    engine_.free_unguarded(p, site);
  }

  // Lock-and-key lane for sites the scheme chooser classified kLockAndKey
  // (compiler/uaf_analysis.h): canonical pool memory with a generation tag
  // in the pointer, checked at every mediated load/store and at free. Same
  // lifetime contract as the other lanes — pooldestroy bounds everything.
  [[nodiscard]] void* alloc_tagged(std::size_t size, SiteId site = 0) {
    return tag_lane().alloc(size, site);
  }
  void free_tagged(void* tagged, SiteId site = 0) {
    tag_lane().free(tagged, site);
  }
  [[nodiscard]] LockAndKeyLane& tag_lane() {
    if (!lane_) {
      lane_ = std::make_unique<LockAndKeyLane>(pool_, engine_.lane_counters());
    }
    return *lane_;
  }
  [[nodiscard]] void* calloc(std::size_t count, std::size_t size,
                             SiteId site = 0) {
    return engine_.calloc(count, size, site);
  }
  [[nodiscard]] void* realloc(void* p, std::size_t new_size, SiteId site = 0) {
    return engine_.realloc(p, new_size, site);
  }
  [[nodiscard]] std::size_t size_of(const void* p) const {
    return engine_.size_of(p);
  }

  // pooldestroy: all shadow spans -> shared VA free list; all canonical
  // extents -> canonical free list. Safe because the caller (compiler or
  // PoolScope discipline) guarantees no pointers into the pool survive.
  void destroy() {
    if (destroyed_) return;
    destroyed_ = true;
    lane_.reset();  // returns recycled tag slots while the pool still lives
    engine_.release_all();
    pool_.destroy();
  }

  [[nodiscard]] GuardStats stats() const { return engine_.stats(); }
  [[nodiscard]] alloc::PoolStats pool_stats() const { return pool_.stats(); }
  [[nodiscard]] ShadowEngine& engine() noexcept { return engine_; }

 private:
  alloc::Pool pool_;
  ShadowEngine engine_;
  std::unique_ptr<LockAndKeyLane> lane_;  // lazy: most pools never tag
  bool destroyed_ = false;
};

// RAII pool lifetime marker, the hand-written equivalent of the compiler's
// poolinit/pooldestroy placement. Workload code creates a PoolScope where the
// Automatic Pool Allocation transformation would create a pool (e.g. per
// server connection); allocations inside the dynamic extent come from the
// innermost scope on the current thread.
class PoolScope {
 public:
  explicit PoolScope(GuardedPoolContext& ctx, std::size_t elem_hint = 0);
  ~PoolScope();

  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

  [[nodiscard]] GuardedPool& pool() noexcept { return pool_; }

  // Innermost active scope on this thread, or nullptr outside any scope.
  [[nodiscard]] static PoolScope* current() noexcept;

 private:
  GuardedPool pool_;
  PoolScope* parent_;
};

}  // namespace dpg::core
