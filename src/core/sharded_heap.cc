#include "core/sharded_heap.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/registry.h"

namespace dpg::core {

namespace {

std::size_t default_shards() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 8);
}

}  // namespace

ShardedHeap::ShardedHeap(vm::PhysArena& arena, GuardConfig cfg,
                         std::size_t shards)
    : source_(arena), heap_(source_) {
  const std::size_t n =
      std::clamp<std::size_t>(shards == 0 ? default_shards() : shards, 1,
                              kMaxShards);
  // All shards share the governor: if the caller didn't pin one, resolve the
  // process governor once here rather than letting each engine default to it
  // independently (same object either way; this makes the sharing explicit).
  if (cfg.governor == nullptr) cfg.governor = &DegradationGovernor::process();
  // One sampled-rung ledger across shards (the underlying heap is shared, so
  // a fast-path pointer may come back on any shard's free path).
  if (cfg.sampled_table == nullptr) cfg.sampled_table = &sampled_;
  // One Revoker across shards: a single revoked key, one pkey_alloc, and
  // exactly one pkey-fallback ladder event if it is refused.
  if (cfg.revoker == nullptr) cfg.revoker = &revoker_;
  // freed_va_budget bounds what ONE engine may hold in revoked-but-unreleased
  // spans; the kernel's vm.max_map_count is a per-process limit, so split the
  // caller's bound across shards — otherwise N shards hold N× the configured
  // VA and a wide heap walks the process straight into mprotect ENOMEM.
  if (cfg.freed_va_budget != 0) {
    cfg.freed_va_budget = std::max<std::size_t>(cfg.freed_va_budget / n,
                                                std::size_t{1} << 20);
  }
  engines_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    engines_.push_back(
        std::make_unique<ShadowEngine>(arena, heap_, &shadow_va_, cfg));
    engines_.back()->set_shard_id(static_cast<std::uint32_t>(i));
  }
  // Same arena integration as GuardedHeap: the shared shadow VA list is the
  // emergency VMA-relief source, and ranges it munmaps were guard VMAs.
  arena.add_relief_source(&shadow_va_);
  shadow_va_.set_release_hook(
      +[](void* gov, std::size_t ranges) {
        static_cast<DegradationGovernor*>(gov)->add_vmas(
            -static_cast<long>(ranges));
      },
      cfg.governor);
}

ShardedHeap::~ShardedHeap() {
  source_.arena().remove_relief_source(&shadow_va_);
  // engines_ (declared last) is destroyed first; each engine's release_all
  // drains its own remote list and returns its spans to shadow_va_.
}

std::uint32_t ShardedHeap::home_shard() const noexcept {
  // Round-robin thread pinning: the token is assigned on a thread's first
  // allocation and never changes, so a thread's allocations all carry the
  // same owner_shard and its same-thread frees take the uncontended path.
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t token =
      next.fetch_add(1, std::memory_order_relaxed);
  return token % static_cast<std::uint32_t>(engines_.size());
}

void* ShardedHeap::malloc(std::size_t size, SiteId site) {
  return engines_[home_shard()]->malloc(size, site);
}

void* ShardedHeap::calloc(std::size_t count, std::size_t size, SiteId site) {
  return engines_[home_shard()]->calloc(count, size, site);
}

void ShardedHeap::free(void* p, SiteId site) {
  if (p == nullptr) return;
  const ObjectRecord* rec =
      ShadowRegistry::global().lookup(vm::addr(p));
  const std::uint32_t home = home_shard();
  if (rec == nullptr) {
    // Degraded pointer (any shard's — the underlying heap is shared) or an
    // invalid free; the home engine owns that disposition.
    engines_[home]->free(p, site);
    return;
  }
  const std::uint32_t owner = rec->owner_shard;
  if (owner == home) {
    engines_[owner]->free(p, site);
  } else {
    // Cross-thread free: exact kLive->kFreed transition at this call site
    // (double frees trap immediately), revocation queued to the owner.
    engines_[owner]->free_remote(p, site);
  }
}

void* ShardedHeap::realloc(void* p, std::size_t new_size, SiteId site) {
  if (p == nullptr) return malloc(new_size, site);
  const ObjectRecord* rec =
      ShadowRegistry::global().lookup(vm::addr(p));
  // Route the whole realloc to the owner so the old record's free takes the
  // ordinary locked path (the replacement lands on the owner shard too —
  // acceptable: realloc implies the object migrates ownership rarely).
  const std::uint32_t idx = rec != nullptr ? rec->owner_shard : home_shard();
  return engines_[idx]->realloc(p, new_size, site);
}

bool ShardedHeap::revocation_applied(const void* p) const {
  const ObjectRecord* rec = record_of(p);
  if (rec == nullptr) return false;
  return engines_[rec->owner_shard]->revocation_applied(p);
}

std::size_t ShardedHeap::size_of(const void* p) const {
  // The registry is global, so any engine resolves any guarded pointer.
  return engines_[0]->size_of(p);
}

GuardStats ShardedHeap::stats() const {
  GuardStats total;
  for (const auto& e : engines_) total += e->stats();
  return total;
}

void ShardedHeap::flush_all() {
  // Draining a shard never queues work onto another shard (revocation is
  // shard-local), so one pass leaves every queue empty — provided no other
  // thread is concurrently freeing, which is the caller's contract for
  // "every free issued so far".
  for (auto& e : engines_) e->flush_protections();
}

}  // namespace dpg::core
