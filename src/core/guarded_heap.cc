#include "core/guarded_heap.h"

#include <sys/mman.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/fault_manager.h"
#include "obs/backtrace.h"
#include "obs/metrics.h"
#include "vm/sys.h"
#include "vm/vm_stats.h"

namespace dpg::core {

namespace {

// Site-backtrace staging: public entry points capture the caller's frames
// into these before taking the engine lock; the consumers (record install,
// the free CAS winner) copy them into the slot header. Thread-local, so a
// cross-shard free staged on thread A is consumed by A's own free_remote
// call, never by the owner shard's drain. Zero work at DPG_SITE_DEPTH=0.
struct StagedStack {
  std::uintptr_t frames[obs::kMaxSiteFrames];
  std::size_t depth = 0;
};
thread_local StagedStack t_alloc_stage;
thread_local StagedStack t_free_stage;

// noinline callees of the [[gnu::noinline]] walker: the first captured frame
// is the public entry (malloc/free/...) itself, then the application chain.
void stage_alloc_stack() noexcept {
  t_alloc_stage.depth =
      obs::capture_site_stack(t_alloc_stage.frames, obs::kMaxSiteFrames);
}

void stage_free_stack() noexcept {
  t_free_stage.depth =
      obs::capture_site_stack(t_free_stage.frames, obs::kMaxSiteFrames);
}

void consume_alloc_stage(ObjectRecord& rec) noexcept {
  rec.alloc_stack_depth = static_cast<std::uint8_t>(t_alloc_stage.depth);
  for (std::size_t i = 0; i < t_alloc_stage.depth; ++i) {
    rec.alloc_stack[i] = t_alloc_stage.frames[i];
  }
}

// Only the kLive->kFreed CAS winner calls this; release-publishing the depth
// after the frames keeps the fault handler's acquire read tear-free.
void consume_free_stage(ObjectRecord& rec) noexcept {
  for (std::size_t i = 0; i < t_free_stage.depth; ++i) {
    rec.free_stack[i] = t_free_stage.frames[i];
  }
  rec.free_stack_depth.store(static_cast<std::uint8_t>(t_free_stage.depth),
                             std::memory_order_release);
}

}  // namespace

ShadowEngine::ShadowEngine(vm::PhysArena& arena, alloc::MallocLike& under,
                           vm::VaFreeList* shadow_freelist, GuardConfig cfg)
    : arena_(arena),
      under_(under),
      shadow_freelist_(shadow_freelist),
      mapper_(arena, cfg.strategy),
      cfg_(cfg),
      gov_(cfg.governor != nullptr ? cfg.governor
                                   : &DegradationGovernor::process()),
      sampled_(cfg.sampled_table != nullptr ? cfg.sampled_table
                                            : &own_sampled_),
      revoker_(cfg.revoker != nullptr ? cfg.revoker : &own_revoker_) {
  head_.prev = &head_;
  head_.next = &head_;
  revoker_->init(cfg_.revoke_backend);
  // Normalize the batch knobs to the resolved backend: a forced per-free
  // backend must not be silently batched, and a forced batched backend needs
  // at least one flush trigger. kAuto keeps the legacy knob semantics
  // byte-for-byte; kPkey composes with whatever batching is configured.
  switch (revoker_->active()) {
    case vm::RevokeBackend::kMprotect:
      cfg_.protect_batch = 0;
      cfg_.protect_batch_bytes = 0;
      break;
    case vm::RevokeBackend::kBatched:
      if (cfg_.protect_batch <= 1 && cfg_.protect_batch_bytes == 0) {
        cfg_.protect_batch = 64;
      }
      break;
    case vm::RevokeBackend::kAuto:
    case vm::RevokeBackend::kPkey:
      break;
  }
  if (const int err = revoker_->consume_fallback_errno(); err != 0) {
    // pkey was requested but pkey_alloc refused (ENOSYS/ENOSPC/injected):
    // exactly one engine per Revoker lands here and reports the ladder
    // event. Detection stays full through the batched mprotect path.
    gov_->on_pkey_fallback(err);
    obs::record_event(obs::EventKind::kPkeyFallback,
                      static_cast<std::uintptr_t>(err), 0);
  }
  revoker_->attach_thread();
  // Magazines need every span page to be an arena alias; a trailing guard
  // page cannot come from the magazine, so the config is mutually exclusive.
  if (cfg_.magazine_slots >= 2 && !cfg_.trailing_guard_page) {
    magazine_slots_ = std::min(cfg_.magazine_slots, kMaxMagazineSlots);
    magazine_bytes_ = magazine_slots_ * vm::kPageSize;
  }
  remote_drain_threshold_ =
      std::max<std::size_t>(cfg_.protect_batch * 2, std::size_t{256});
  obs::init_from_env();  // idempotent: arms DPG_TRACE / DPG_METRICS_* knobs
  FaultManager::instance().install();
}

ShadowEngine::~ShadowEngine() { release_all(); }

void* ShadowEngine::malloc(std::size_t size, SiteId site) {
  obs::ScopedLatency lat(obs::Hist::kAllocNs);
  // Every entry path installs the thread's PKRU denial of the revoked key
  // (pure register write, no-op unless the pkey backend is active), so any
  // thread that touches the heap is guaranteed to trap on revoked spans
  // without depending on the kernel's init_pkru default.
  revoker_->attach_thread();
  stage_alloc_stack();
  std::lock_guard lock(mu_);
  return do_alloc_locked(size, site);
}

void* ShadowEngine::calloc(std::size_t count, std::size_t size, SiteId site) {
  if (count != 0 && size > std::numeric_limits<std::size_t>::max() / count) {
    return nullptr;  // multiplication would overflow: the calloc contract
  }
  const std::size_t total = count * size;
  obs::ScopedLatency lat(obs::Hist::kAllocNs);
  revoker_->attach_thread();
  stage_alloc_stack();
  std::lock_guard lock(mu_);
  void* p = do_alloc_locked(total, site);
  // Canonical blocks are recycled, so the memory may hold stale bytes.
  if (p != nullptr) std::memset(p, 0, total);
  return p;
}

void* ShadowEngine::malloc_unguarded(std::size_t size, SiteId site) {
  (void)site;  // diagnostics parity with malloc; nothing to record per object
  revoker_->attach_thread();
  std::lock_guard lock(mu_);
  void* p = alloc_canonical_locked(size);
  if (p != nullptr) {
    stats_.guards_elided.fetch_add(1, std::memory_order_relaxed);
  }
  return p;
}

void ShadowEngine::free_unguarded(void* p, SiteId site) {
  (void)site;
  if (p == nullptr) return;
  revoker_->attach_thread();
  std::lock_guard lock(mu_);
  under_.free(p);
}

void* ShadowEngine::realloc(void* p, std::size_t new_size, SiteId site) {
  if (p == nullptr) return malloc(new_size, site);
  revoker_->attach_thread();
  // One capture serves both halves of the move: the new record's alloc stack
  // and the old record's free stack are the same realloc call site.
  stage_alloc_stack();
  t_free_stage = t_alloc_stage;
  std::unique_lock lock(mu_);
  if (new_size == 0) {
    free_locked(lock, p, site);
    return nullptr;
  }
  const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
  if (rec == nullptr && !sampled_->empty()) {
    SampledTable::Entry ent;
    if (sampled_->lookup_live(vm::addr(p), &ent)) {
      // Fast-path object: move via whatever the current rung dictates; the
      // old block then takes the exact ledger free (quarantined above).
      void* fresh = do_alloc_locked(new_size, site);
      if (fresh == nullptr) return nullptr;  // old block stays valid
      std::memcpy(fresh, p, ent.size < new_size ? ent.size : new_size);
      free_locked(lock, p, site);
      return fresh;
    }
    if (sampled_->is_freed(vm::addr(p))) {
      // Stale fast-path pointer: same disposition as a double free.
      free_locked(lock, p, site);  // raises; does not return
    }
  }
  if (rec == nullptr && degraded_pointers_possible()) {
    // Pointer from a degraded allocation: move it through whatever path the
    // current mode dictates. size_of reads the allocator's own header.
    const std::size_t old_size = under_.size_of(p);
    void* fresh = do_alloc_locked(new_size, site);
    if (fresh == nullptr) return nullptr;  // old block stays valid (contract)
    std::memcpy(fresh, p, old_size < new_size ? old_size : new_size);
    degraded_free_locked(p, site);
    return fresh;
  }
  if (rec == nullptr || rec->user_shadow != vm::addr(p) ||
      rec->state.load(std::memory_order_acquire) == ObjectState::kFreed) {
    // Stale or foreign pointer: same disposition as an invalid/double free.
    free_locked(lock, p, site);  // raises; does not return
  }
  const std::size_t old_size = rec->user_size;
  void* fresh = do_alloc_locked(new_size, site);
  if (fresh == nullptr) return nullptr;  // old block stays valid (contract)
  std::memcpy(fresh, p, old_size < new_size ? old_size : new_size);
  // The old pointer is now a guarded dangling pointer (realloc's contract:
  // any use of `p` after this point is a temporal error and will trap).
  free_locked(lock, p, site);
  return fresh;
}

void* ShadowEngine::do_alloc_locked(std::size_t size, SiteId site) {
  // Piggyback remote-free draining on the allocation path: the owner shard
  // revokes cross-thread frees the next time it allocates, bounding the
  // detection-delay window without a dedicated thread. One relaxed load when
  // the list is empty.
  if (remote_head_.load(std::memory_order_relaxed) != nullptr) {
    drain_remote_locked();
  }
  switch (gov_->on_alloc()) {
    case GuardMode::kFullGuard:
      return guarded_alloc_locked(size, site);
    case GuardMode::kSampled:
      // 1-in-N winners get the full shadow alias; the rest take the ledgered
      // fast path (exact double-free detection, no VMA, no syscall).
      return gov_->sample_this_alloc() ? guarded_alloc_locked(size, site)
                                       : sampled_fast_alloc_locked(size, site);
    case GuardMode::kQuarantineOnly:
    case GuardMode::kUnguarded:
      break;
  }
  return degraded_alloc_locked(size, site);
}

// Underlying allocation with exhaustion handling: on bad_alloc the governor
// is told, the quarantine is returned to the allocator, and the request is
// retried once. nullptr = genuinely out of physical memory.
void* ShadowEngine::alloc_canonical_locked(std::size_t bytes) {
  void* p = nullptr;
  try {
    p = under_.malloc(bytes);
  } catch (const std::bad_alloc&) {
    gov_->on_arena_exhausted();
  }
  if (p == nullptr) {
    if (drain_quarantine_locked() == 0) return nullptr;
    try {
      p = under_.malloc(bytes);
    } catch (const std::bad_alloc&) {
      return nullptr;
    }
  }
  // The allocator just (re)bound this canonical address; a stale sampled-
  // ledger entry must not outlive the old binding (the emptiness gate keeps
  // this off the hot path for every run that never reached the sampled rung).
  if (p != nullptr && !sampled_->empty()) sampled_->forget(vm::addr(p));
  return p;
}

void* ShadowEngine::degraded_alloc_locked(std::size_t size, SiteId site) {
  // No shadow alias, no registry record, no new VMA: the canonical pointer
  // itself is handed out. Recognized at free time by registry miss (see
  // free_locked), which is unambiguous only because every guarded user
  // pointer lives on a shadow page.
  void* p = alloc_canonical_locked(size);
  if (p == nullptr) return nullptr;
  stats_.degraded_allocs.fetch_add(1, std::memory_order_relaxed);
  gov_->count_degraded_alloc();
  obs::record_event(obs::EventKind::kAlloc, vm::addr(p), size, site);
  return p;
}

void* ShadowEngine::sampled_fast_alloc_locked(std::size_t size, SiteId site) {
  // Sampled rung, unsampled allocation: canonical pointer out, no alias, no
  // registry record — but unlike the degraded path the ledger keeps the
  // {site, size} binding so a double free of this pointer is still exact.
  void* p = alloc_canonical_locked(size);
  if (p == nullptr) return nullptr;
  sampled_->insert(vm::addr(p), size, site);
  stats_.sampled_allocs.fetch_add(1, std::memory_order_relaxed);
  obs::record_event(obs::EventKind::kAlloc, vm::addr(p), size, site);
  return p;
}

void* ShadowEngine::fallback_alloc_locked(std::size_t size, SiteId site) {
  // A guard-path refusal just moved the ladder; re-serve through whatever
  // rung it landed on. The oracle classifies pointers by the POST-op rung,
  // so the fallback must take the same branch an ordinary allocation under
  // the new rung would (sampled rung: this allocation was not guarded, so it
  // is a fast-path object regardless of what the next sample draw says).
  return gov_->mode() == GuardMode::kSampled
             ? sampled_fast_alloc_locked(size, site)
             : degraded_alloc_locked(size, site);
}

bool ShadowEngine::degraded_pointers_possible() const noexcept {
  // A registry miss at free time can only be a degraded pointer if SOME
  // engine sharing this governor has served one: shards share the underlying
  // heap, so a degraded canonical pointer may be freed on any shard, not just
  // the one that allocated it.
  return stats_.degraded_allocs.load(std::memory_order_relaxed) != 0 ||
         gov_->counters().degraded_allocs.load(std::memory_order_relaxed) != 0;
}

void* ShadowEngine::install_record_locked(void* shadow_base,
                                          std::size_t span_len,
                                          std::size_t guard,
                                          std::uintptr_t canon_addr,
                                          std::uintptr_t first_page,
                                          std::size_t size, SiteId site) {
  // Header word: the canonical address, written through the shadow view (the
  // same physical memory, so the underlying allocator could equally read it
  // at the canonical address).
  const std::uintptr_t shadow_canon =
      vm::addr(shadow_base) + (canon_addr - first_page);
  *reinterpret_cast<std::uintptr_t*>(shadow_canon) = canon_addr;

  auto* rec = new ObjectRecord;
  rec->shadow_base = vm::addr(shadow_base);
  rec->span_length = span_len;
  rec->guard_length = guard;
  rec->user_shadow = shadow_canon + kGuardHeader;
  rec->user_size = size;
  rec->canonical = canon_addr;
  rec->alloc_site = site;
  consume_alloc_stage(*rec);
  rec->owner_shard = shard_id_;
  rec->state.store(ObjectState::kLive, std::memory_order_release);

  // Append at tail: the list stays ordered oldest-first for reclamation.
  rec->prev = head_.prev;
  rec->next = &head_;
  head_.prev->next = rec;
  head_.prev = rec;

  ShadowRegistry::global().insert(*rec);

  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  stats_.live_records.fetch_add(1, std::memory_order_relaxed);
  stats_.guarded_bytes.fetch_add(span_len, std::memory_order_relaxed);
  obs::record_event(obs::EventKind::kAlloc, rec->user_shadow, size, site);
  return reinterpret_cast<void*>(rec->user_shadow);
}

// Per-shard MAP_FIXED recycle cache (DESIGN.md §16). Parked spans are kept
// sorted by base and merged with contiguous neighbours, so the slot-sized
// spans a dying magazine generation sheds — its unclaimed runs at retirement
// plus each claimed slot as its object is later freed — reassemble into the
// full window-sized run the *next* generation claims with one MAP_FIXED
// re-alias. That closed loop is what starves the shared freelist: without it
// the tuned configuration donates slot fragments faster than any consumer
// takes them and the list's high-water trim turns into the mt_server_t8
// munmap storm (ROADMAP item 1).
//
// take_recycled_locked prefers an exact fit and otherwise splits the
// smallest larger run (prefix out, remainder stays parked — the split is
// transient because released spans coalesce right back). All consumers remap
// the returned range with mmap(MAP_FIXED), which atomically replaces
// whatever dead mapping occupies it; merged runs of mixed provenance
// (revoked aliases, anonymous guard tails) are therefore interchangeable.
// park_recycled_locked returns false when the cache is off or full, in which
// case the caller falls through to the legacy freelist/munmap disposition.
void* ShadowEngine::take_recycled_locked(std::size_t len) noexcept {
  std::size_t best = va_recycle_.size();
  for (std::size_t i = 0; i < va_recycle_.size(); ++i) {
    const std::size_t l = va_recycle_[i].length;
    if (l == len) {
      best = i;
      break;
    }
    if (l > len &&
        (best == va_recycle_.size() || l < va_recycle_[best].length)) {
      best = i;
    }
  }
  if (best == va_recycle_.size()) return nullptr;
  vm::PageRange& r = va_recycle_[best];
  void* p = reinterpret_cast<void*>(r.base);
  if (r.length == len) {
    va_recycle_.erase(va_recycle_.begin() + static_cast<std::ptrdiff_t>(best));
  } else {
    r.base += len;  // prefix out; remainder keeps its sort position
    r.length -= len;
  }
  stats_.window_recycle_hits.fetch_add(1, std::memory_order_relaxed);
  return p;
}

bool ShadowEngine::park_recycled_locked(vm::PageRange span) {
  if (!cfg_.reuse_shadow_va || cfg_.window_recycle_cap == 0) return false;
  auto it = std::lower_bound(
      va_recycle_.begin(), va_recycle_.end(), span.base,
      [](const vm::PageRange& r, std::uintptr_t b) { return r.base < b; });
  bool merged = false;
  if (it != va_recycle_.begin()) {
    auto prev = std::prev(it);
    if (prev->base + prev->length == span.base) {
      prev->length += span.length;
      // The span may bridge prev and it into one run.
      if (it != va_recycle_.end() && prev->base + prev->length == it->base) {
        prev->length += it->length;
        va_recycle_.erase(it);
      }
      merged = true;
    }
  }
  if (!merged && it != va_recycle_.end() &&
      span.base + span.length == it->base) {
    it->base = span.base;
    it->length += span.length;
    merged = true;
  }
  if (!merged) {
    if (va_recycle_.size() >= cfg_.window_recycle_cap) return false;
    va_recycle_.insert(it, span);
  }
  stats_.window_recycle_puts.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShadowEngine::drain_recycled_locked() {
  for (const vm::PageRange& span : va_recycle_) {
    if (shadow_freelist_ != nullptr) {
      shadow_freelist_->put(span);
    } else {
      arena_.unmap(reinterpret_cast<void*>(span.base), span.length);
    }
  }
  va_recycle_.clear();
}

void* ShadowEngine::magazine_claim_locked(std::uintptr_t first_page,
                                          std::size_t data_span) {
  // Windows tile the arena's *file-offset* space, so a window's slab in the
  // memfd is contiguous and one mmap aliases all of it. (The canonical VA of
  // the window base follows from the arena being one contiguous mapping.)
  const std::size_t win = magazine_bytes_;
  const std::size_t off_in_window =
      arena_.offset_of(reinterpret_cast<void*>(first_page)) % win;
  if (off_in_window + data_span > win) return nullptr;  // straddles windows
  const std::uintptr_t window_base = first_page - off_in_window;
  const std::size_t slot0 = off_in_window / vm::kPageSize;
  const std::size_t nslots = data_span / vm::kPageSize;

  auto it = magazines_.find(window_base);
  if (it != magazines_.end()) {
    Magazine& m = it->second;
    bool run_free = true;
    for (std::size_t s = slot0; s < slot0 + nslots; ++s) {
      if ((m.claimed[s / 64] >> (s % 64)) & 1u) {
        run_free = false;
        break;
      }
    }
    if (run_free) {
      for (std::size_t s = slot0; s < slot0 + nslots; ++s) {
        m.claimed[s / 64] |= std::uint64_t{1} << (s % 64);
      }
      m.free_slots -= nslots;
      stats_.magazine_hits.fetch_add(1, std::memory_order_relaxed);
      const std::uintptr_t sb = m.shadow_base + off_in_window;
      if (m.free_slots == 0) {
        // Fully carved: every page of the generation is owned by some
        // object record now, so there is nothing left to track or retire.
        magazines_.erase(it);
      }
      return reinterpret_cast<void*>(sb);
    }
    // Collision: this canonical page already claimed its slot in the current
    // generation (a second object on the same page needs a second alias).
    // Retire eagerly once the generation is mostly claimed — at that point
    // its remaining value is small and a collision means the allocator has
    // started *recycling* canonical pages through this window, so one remap
    // turns the whole reuse stream back into zero-syscall hits. A young,
    // sparsely-claimed generation instead falls back to the per-object path
    // (same cost as the paper's scheme) until a miss backstop: densely
    // packed sub-page objects would otherwise remap — and burn a fresh
    // window-sized VA — on every second allocation.
    constexpr std::uint32_t kRetireMissBackstop = 2;
    ++m.misses;
    const std::size_t claimed = magazine_slots_ - m.free_slots;
    if (claimed * 2 < magazine_slots_ && m.misses < kRetireMissBackstop) {
      return nullptr;
    }
    retire_magazine_locked(window_base, m);
    magazines_.erase(it);
    // fall through: map a fresh generation
  }

  // First touch of this window (or a fresh generation after retirement).
  // Prefer a recycled window-sized VA — the per-shard cache first, then the
  // shared list; take_exact never splits a larger span, so the magazine path
  // cannot fragment the single-span donors.
  void* fixed = take_recycled_locked(win);
  if (fixed == nullptr && cfg_.reuse_shadow_va && shadow_freelist_ != nullptr) {
    if (auto reused = shadow_freelist_->take_exact(win)) {
      fixed = reinterpret_cast<void*>(reused->base);
    }
  }
  const vm::sys::MapResult res =
      mapper_.try_alias_bulk(reinterpret_cast<void*>(window_base), win, fixed);
  if (!res.ok()) {
    if (fixed != nullptr) {
      // MAP_FIXED failure leaves the old mapping intact: still reusable.
      if (shadow_freelist_ != nullptr) {
        shadow_freelist_->put(vm::PageRange{vm::addr(fixed), win});
      } else {
        (void)park_recycled_locked(vm::PageRange{vm::addr(fixed), win});
      }
    }
    // Caller takes the per-object path, which owns failure/degradation.
    return nullptr;
  }
  stats_.magazine_maps.fetch_add(1, std::memory_order_relaxed);
  if (fixed != nullptr) {
    stats_.shadow_pages_reused.fetch_add(win / vm::kPageSize,
                                         std::memory_order_relaxed);
  } else {
    stats_.shadow_pages_mapped.fetch_add(win / vm::kPageSize,
                                         std::memory_order_relaxed);
    gov_->add_vmas(1);
  }

  Magazine m;
  m.shadow_base = vm::addr(res.ptr);
  m.free_slots = magazine_slots_;
  for (std::size_t s = slot0; s < slot0 + nslots; ++s) {
    m.claimed[s / 64] |= std::uint64_t{1} << (s % 64);
  }
  m.free_slots -= nslots;
  const std::uintptr_t sb = m.shadow_base + off_in_window;
  magazines_.emplace(window_base, m);
  if (cfg_.magazine_windows != 0 && magazines_.size() > cfg_.magazine_windows) {
    // Population cap: evict an arbitrary other generation, recycling its
    // unclaimed slot runs. Claimed slots are owned by live records and are
    // released with them, so eviction only forfeits future zero-syscall hits
    // on that window.
    auto victim = magazines_.begin();
    if (victim->first == window_base) ++victim;
    if (victim != magazines_.end()) {
      retire_magazine_locked(victim->first, victim->second);
      magazines_.erase(victim);
    }
  }
  return reinterpret_cast<void*>(sb);
}

void ShadowEngine::retire_magazine_locked(std::uintptr_t window_base,
                                          Magazine& m) {
  (void)window_base;
  if (m.free_slots == 0) return;
  // Recycle maximal runs of never-claimed slots. Safe: no pointer into these
  // pages was ever handed out, so MAP_FIXED reuse cannot mask a dangling use.
  std::size_t s = 0;
  while (s < magazine_slots_) {
    if ((m.claimed[s / 64] >> (s % 64)) & 1u) {
      ++s;
      continue;
    }
    std::size_t e = s;
    while (e < magazine_slots_ && !((m.claimed[e / 64] >> (e % 64)) & 1u)) {
      ++e;
    }
    const vm::PageRange run{m.shadow_base + s * vm::kPageSize,
                            (e - s) * vm::kPageSize};
    // A parked run waits on the per-shard cache for a same-size MAP_FIXED
    // re-alias (a whole window when the generation retired unclaimed).
    if (!park_recycled_locked(run)) {
      if (shadow_freelist_ != nullptr) {
        shadow_freelist_->put(run);
      } else {
        arena_.unmap(reinterpret_cast<void*>(run.base), run.length);
      }
    }
    stats_.magazine_slots_recycled.fetch_add(e - s,
                                             std::memory_order_relaxed);
    s = e;
  }
  m.free_slots = 0;
}

void ShadowEngine::drop_magazines_locked() {
  for (auto& [base, m] : magazines_) retire_magazine_locked(base, m);
  magazines_.clear();
}

void* ShadowEngine::guarded_alloc_locked(std::size_t size, SiteId site) {
  // "An allocation request is passed to malloc with the size incremented by
  //  sizeof(addr_t) bytes; the extra bytes at the start of the object will be
  //  used to record an address for bookkeeping purposes." (Section 3.2)
  const std::size_t total = size + kGuardHeader;
  void* canonical = alloc_canonical_locked(total);
  if (canonical == nullptr) return nullptr;
  const std::uintptr_t canon_addr = vm::addr(canonical);
  const std::uintptr_t first_page = vm::page_down(canon_addr);
  const std::size_t data_span = vm::page_up(canon_addr + total) - first_page;
  const std::size_t guard = cfg_.trailing_guard_page ? vm::kPageSize : 0;
  const std::size_t span_len = data_span + guard;

  // Magazine fast path: carve the shadow span out of the window's current
  // generation — zero syscalls on a hit. (magazine_slots_ is zero when
  // trailing_guard_page is set, so guard == 0 on this path.)
  if (magazine_slots_ != 0) {
    if (void* sb = magazine_claim_locked(first_page, data_span)) {
      return install_record_locked(sb, span_len, guard, canon_addr, first_page,
                                   size, site);
    }
  }

  void* fixed = take_recycled_locked(span_len);
  if (fixed == nullptr && cfg_.reuse_shadow_va && shadow_freelist_ != nullptr) {
    if (auto reused = shadow_freelist_->take(span_len)) {
      fixed = reinterpret_cast<void*>(reused->base);
    }
  }

  // Guard-path kernel calls, all Result-returning: any refusal rolls the
  // allocation back, drops the governor one rung, and re-serves the request
  // through the degraded path — the caller never sees the failure.
  long fresh_vmas = 0;
  vm::sys::MapResult alias{};
  if (guard == 0) {
    alias = mapper_.try_alias(reinterpret_cast<void*>(first_page), data_span,
                              fixed);
    if (alias.ok() && fixed == nullptr) fresh_vmas = 1;
  } else if (fixed == nullptr) {
    // Reserve data + guard in one anonymous PROT_NONE mapping, then place
    // the aliased data pages over its head; the tail page stays as the
    // unmapped-equivalent guard.
    const vm::sys::MapResult region = vm::sys::map(
        nullptr, span_len, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (!region.ok()) {
      alias = region;
    } else {
      alias = mapper_.try_alias(reinterpret_cast<void*>(first_page), data_span,
                                region.ptr);
      if (alias.ok()) {
        fresh_vmas = 2;  // aliased head + PROT_NONE tail
      } else {
        (void)vm::sys::unmap(region.ptr, span_len);
      }
    }
  } else {
    // Recycled range: alias the data part in place and convert the tail page
    // (whatever old mapping occupied it) into a fresh guard.
    alias = mapper_.try_alias(reinterpret_cast<void*>(first_page), data_span,
                              fixed);
    if (alias.ok()) {
      const vm::sys::IoResult g = vm::PhysArena::try_map_guard(
          static_cast<std::byte*>(alias.ptr) + data_span, guard);
      if (!g.ok()) alias = vm::sys::MapResult{nullptr, g.err};
    }
  }
  if (!alias.ok()) {
    under_.free(canonical);
    if (fixed != nullptr) {
      // MAP_FIXED failure leaves the old mapping intact: the range is still
      // reusable, so it goes back on the list rather than leaking.
      if (shadow_freelist_ != nullptr) {
        shadow_freelist_->put(vm::PageRange{vm::addr(fixed), span_len});
      } else {
        (void)park_recycled_locked(vm::PageRange{vm::addr(fixed), span_len});
      }
    }
    stats_.guard_failures.fetch_add(1, std::memory_order_relaxed);
    gov_->on_syscall_failure("shadow-alias", alias.err);
    return fallback_alloc_locked(size, site);
  }
  gov_->add_vmas(fresh_vmas);

  if (fixed != nullptr) {
    stats_.shadow_pages_reused.fetch_add(span_len / vm::kPageSize,
                                         std::memory_order_relaxed);
  } else {
    stats_.shadow_pages_mapped.fetch_add(span_len / vm::kPageSize,
                                         std::memory_order_relaxed);
  }

  return install_record_locked(alias.ptr, span_len, guard, canon_addr,
                               first_page, size, site);
}

void ShadowEngine::free(void* p, SiteId site) {
  if (p == nullptr) return;
  obs::ScopedLatency lat(obs::Hist::kFreeNs);
  revoker_->attach_thread();
  stage_free_stack();
  std::unique_lock lock(mu_);
  free_locked(lock, p, site);
}

void ShadowEngine::quarantine_locked(void* block, std::size_t bytes) {
  quarantine_.push_back(QuarantineEntry{block, bytes});
  quarantine_bytes_ += bytes;
  const std::size_t budget = gov_->quarantine_budget();
  while (quarantine_bytes_ > budget && !quarantine_.empty()) {
    const QuarantineEntry e = quarantine_.front();
    quarantine_.pop_front();
    quarantine_bytes_ -= e.bytes;
    try {
      under_.free(e.block);
    } catch (const std::logic_error&) {
      // Quarantined garbage: an invalid free absorbed in degraded mode. The
      // allocator's magic check caught it; attribution is lost, the count
      // is not.
      stats_.invalid_frees.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t ShadowEngine::drain_quarantine_locked() {
  std::size_t released = 0;
  while (!quarantine_.empty()) {
    const QuarantineEntry e = quarantine_.front();
    quarantine_.pop_front();
    released += e.bytes;
    try {
      under_.free(e.block);
    } catch (const std::logic_error&) {
      stats_.invalid_frees.fetch_add(1, std::memory_order_relaxed);
    }
  }
  quarantine_bytes_ = 0;
  return released;
}

void ShadowEngine::degraded_free_locked(void* p, SiteId site) {
  obs::record_event(obs::EventKind::kFree, vm::addr(p), 0, site);
  if (gov_->mode() == GuardMode::kUnguarded) {
    try {
      under_.free(p);
    } catch (const std::logic_error&) {
      stats_.invalid_frees.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // Delayed reuse: the block sits in FIFO quarantine so a stale pointer to it
  // dereferences stale-but-unreused memory, not a new owner's data. The size
  // comes from the allocator header; a garbage pointer yields a garbage size,
  // so clamp to keep one bad entry from flushing the whole quarantine.
  std::size_t bytes = under_.size_of(p);
  if (bytes == 0 || bytes > (std::size_t{1} << 32)) bytes = vm::kPageSize;
  stats_.quarantined_frees.fetch_add(1, std::memory_order_relaxed);
  quarantine_locked(p, bytes);
}

// Revocation of one freed record: protect the span and return the canonical
// block, or queue both for the next batched flush. No flush/budget decisions
// here — callers follow with maybe_flush_locked().
void ShadowEngine::revoke_locked(ObjectRecord* rec) {
  if (cfg_.protect_batch > 1 || cfg_.protect_batch_bytes != 0) {
    // Deferred protection: the canonical block is NOT returned yet, so the
    // physical memory cannot be reused before the span is protected.
    pending_protect_.push_back(rec);
    pending_protect_bytes_ += rec->span_length;
    return;
  }
  // Backend dispatch: PROT_NONE through the arena, or a retag to the revoked
  // protection key (vm/revoke.h) — either way the span traps from here on.
  const vm::sys::IoResult pr = revoker_->revoke(
      arena_, reinterpret_cast<void*>(rec->shadow_base), rec->span_length);
  stats_.protect_calls.fetch_add(1, std::memory_order_relaxed);
  freed_bytes_held_ += rec->span_length;
  rec->revocation_done = true;
  if (pr.ok()) {
    if (revoker_->pkey_active()) {
      stats_.pkey_revocations.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.revoked_spans.fetch_add(1, std::memory_order_relaxed);
    under_.free(reinterpret_cast<void*>(rec->canonical));
  } else {
    // Revocation refused: the shadow stays readable, so the physical block
    // must NOT be recycled (a new owner's data would leak through the stale
    // alias). Park it in quarantine instead; the record stays registered, so
    // a double free of this pointer is still caught exactly.
    stats_.guard_failures.fetch_add(1, std::memory_order_relaxed);
    gov_->on_syscall_failure("protect-none", pr.err);
    quarantine_locked(reinterpret_cast<void*>(rec->canonical),
                      rec->user_size + kGuardHeader);
  }
}

void ShadowEngine::maybe_flush_locked() {
  const bool count_full = cfg_.protect_batch > 1 &&
                          pending_protect_.size() >= cfg_.protect_batch;
  const bool bytes_full = cfg_.protect_batch_bytes != 0 &&
                          pending_protect_bytes_ >= cfg_.protect_batch_bytes;
  if (count_full || bytes_full) flush_protections_locked();
  enforce_budget_locked();
}

void ShadowEngine::free_locked(std::unique_lock<std::mutex>& lock, void* p,
                               SiteId site) {
  const std::uintptr_t user = vm::addr(p);
  if (!sampled_->empty()) {
    // Sampled-rung ledger first: it has EXACT knowledge of fast-path
    // pointers, so it must win over the best-effort degraded disposition —
    // and since ledgered (canonical) and guarded (shadow-page) addresses are
    // disjoint by construction, a hit is definitive without consulting the
    // registry at all. Probing the local sharded ledger before the global
    // table keeps the sampled rung's dominant free path off the registry's
    // reader-epoch cacheline; a miss (guarded or degraded pointer) pays one
    // hash find extra, only while the ledger is non-empty.
    SampledTable::Entry ent;
    switch (sampled_->on_free(user, site, &ent)) {
      case SampledTable::FreeResult::kMiss:
        break;
      case SampledTable::FreeResult::kFreed: {
        // First free of a fast-path object: ledger transition done; the block
        // parks in quarantine so the address cannot be rebound while the
        // freed entry could still catch a double free.
        std::size_t bytes = under_.size_of(p);
        if (bytes == 0 || bytes > (std::size_t{1} << 32)) {
          bytes = vm::kPageSize;
        }
        stats_.sampled_frees.fetch_add(1, std::memory_order_relaxed);
        obs::record_event(obs::EventKind::kFree, user, ent.size, site);
        quarantine_locked(p, bytes);
        return;
      }
      case SampledTable::FreeResult::kDoubleFree: {
        // Exact double free of an unsampled object — the rung's headline
        // guarantee. The entry carries the first free's attribution.
        stats_.double_frees.fetch_add(1, std::memory_order_relaxed);
        DanglingReport report;
        report.kind = AccessKind::kFree;
        report.fault_address = user;
        report.object_base = user;
        report.object_size = ent.size;
        report.alloc_site = ent.alloc_site;
        report.free_site = ent.free_site;
        lock.unlock();
        FaultManager::instance().raise_software(report);
        return;
      }
    }
  }
  const ObjectRecord* found = ShadowRegistry::global().lookup(user);
  if (found == nullptr && degraded_pointers_possible()) {
    // Once any engine under this governor has served a degraded allocation, a
    // registry miss is (almost surely) such a pointer coming back. Before the
    // first degraded allocation a miss is still reported as an invalid free
    // exactly as in full-guard mode — degradation never weakens a run it
    // never touched.
    degraded_free_locked(p, site);
    return;
  }
  // Objects never share a shadow page, so a page hit identifies the object;
  // still require the exact pointer, as free() of an interior pointer is an
  // error in its own right.
  if (found == nullptr || found->user_shadow != user) {
    stats_.invalid_frees.fetch_add(1, std::memory_order_relaxed);
    DanglingReport report;
    report.kind = AccessKind::kInvalidFree;
    report.fault_address = user;
    lock.unlock();  // dispatch may longjmp; never hold the lock across it
    FaultManager::instance().raise_software(report);
  }
  auto* rec = const_cast<ObjectRecord*>(found);

  // The kLive->kFreed CAS is the single admission ticket for the free path:
  // a loser — same thread, another thread on this shard, or a cross-shard
  // free_remote racing us — sees kFreed and reports a deterministic double
  // free. (The paper's formulation — the header-word read trapping on the
  // protected page — also holds here, but the record check yields a precise
  // report and stays exact while the revocation is still queued.)
  ObjectState expected = ObjectState::kLive;
  if (!rec->state.compare_exchange_strong(expected, ObjectState::kFreed,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    stats_.double_frees.fetch_add(1, std::memory_order_relaxed);
    DanglingReport report;
    report.kind = AccessKind::kFree;
    report.fault_address = user;
    report.object_base = rec->user_shadow;
    report.object_size = rec->user_size;
    report.alloc_site = rec->alloc_site;
    report.free_site = rec->free_site.load(std::memory_order_relaxed);
    // The report carries the FIRST free's stack; the second free (this call)
    // becomes the use stack at dispatch.
    copy_site_stacks(*rec, report);
    lock.unlock();
    FaultManager::instance().raise_software(report);
  }

  // Consistency check: the header word must still name the canonical address
  // (its page is readable until the revocation mprotect).
  assert(*reinterpret_cast<std::uintptr_t*>(user - kGuardHeader) ==
         rec->canonical);

  rec->free_site.store(site, std::memory_order_relaxed);
  consume_free_stage(*rec);
  stats_.frees.fetch_add(1, std::memory_order_relaxed);
  obs::record_event(obs::EventKind::kFree, user, rec->user_size, site);

  revoke_locked(rec);
  maybe_flush_locked();
}

void ShadowEngine::free_remote(void* p, SiteId site) {
  if (p == nullptr) return;
  obs::ScopedLatency lat(obs::Hist::kFreeNs);
  revoker_->attach_thread();
  stage_free_stack();
  const std::uintptr_t user = vm::addr(p);
  const ObjectRecord* found = ShadowRegistry::global().lookup(user);
  // The router (ShardedHeap) only sends pointers it resolved to a record of
  // this engine, so a miss here means the pointer went stale in between —
  // report it like any invalid free. No lock is held on this path.
  if (found == nullptr || found->user_shadow != user) {
    stats_.invalid_frees.fetch_add(1, std::memory_order_relaxed);
    DanglingReport report;
    report.kind = AccessKind::kInvalidFree;
    report.fault_address = user;
    FaultManager::instance().raise_software(report);
  }
  auto* rec = const_cast<ObjectRecord*>(found);
  ObjectState expected = ObjectState::kLive;
  if (!rec->state.compare_exchange_strong(expected, ObjectState::kFreed,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    // Exact cross-thread double free: the CAS loser raises immediately, even
    // though the winner's revocation may still be queued on the owner.
    stats_.double_frees.fetch_add(1, std::memory_order_relaxed);
    DanglingReport report;
    report.kind = AccessKind::kFree;
    report.fault_address = user;
    report.object_base = rec->user_shadow;
    report.object_size = rec->user_size;
    report.alloc_site = rec->alloc_site;
    report.free_site = rec->free_site.load(std::memory_order_relaxed);
    copy_site_stacks(*rec, report);
    FaultManager::instance().raise_software(report);
  }
  rec->free_site.store(site, std::memory_order_relaxed);
  consume_free_stage(*rec);
  stats_.frees.fetch_add(1, std::memory_order_relaxed);
  stats_.remote_frees.fetch_add(1, std::memory_order_relaxed);
  obs::record_event(obs::EventKind::kFree, user, rec->user_size, site);

  // Lock-free MPSC push; the release CAS publishes free_site and the state
  // transition to the owner's acquire exchange in drain_remote_locked.
  ObjectRecord* old = remote_head_.load(std::memory_order_relaxed);
  do {
    rec->remote_next.store(old, std::memory_order_relaxed);
  } while (!remote_head_.compare_exchange_weak(old, rec,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  // Backstop: if the owner shard is idle (not allocating), the producer that
  // crosses the threshold drains on the owner's behalf, bounding how much
  // freed-but-unrevoked memory the queue can accumulate.
  if (remote_pending_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      remote_drain_threshold_) {
    drain_remote();
  }
}

std::size_t ShadowEngine::drain_remote() {
  std::lock_guard lock(mu_);
  return drain_remote_locked();
}

std::size_t ShadowEngine::drain_remote_locked() {
  ObjectRecord* node = remote_head_.exchange(nullptr,
                                             std::memory_order_acquire);
  if (node == nullptr) return 0;
  std::size_t n = 0;
  while (node != nullptr) {
    ObjectRecord* next = node->remote_next.load(std::memory_order_relaxed);
    node->remote_next.store(nullptr, std::memory_order_relaxed);
    revoke_locked(node);
    ++n;
    node = next;
  }
  remote_pending_.fetch_sub(n, std::memory_order_relaxed);
  obs::record_event(obs::EventKind::kRemoteDrain, shard_id_, n);
  maybe_flush_locked();
  return n;
}

void ShadowEngine::flush_protections() {
  std::lock_guard lock(mu_);
  drain_remote_locked();  // routed-but-undrained frees flush too
  flush_protections_locked();
  enforce_budget_locked();
}

std::size_t ShadowEngine::pending_revocations() const {
  std::lock_guard lock(mu_);
  return pending_protect_.size() +
         remote_pending_.load(std::memory_order_relaxed);
}

std::size_t ShadowEngine::quarantine_depth_bytes() const {
  std::lock_guard lock(mu_);
  return quarantine_bytes_;
}

std::size_t ShadowEngine::magazine_count() const {
  std::lock_guard lock(mu_);
  return magazines_.size();
}

void ShadowEngine::flush_protections_locked() {
  if (pending_protect_.empty()) return;
  // Address-sort and merge adjacent spans: one mprotect per contiguous run.
  // Magazine-carved spans from the same window ARE adjacent when freed
  // together, so churny phases collapse to a handful of calls.
  std::sort(pending_protect_.begin(), pending_protect_.end(),
            [](const ObjectRecord* a, const ObjectRecord* b) {
              return a->shadow_base < b->shadow_base;
            });
  const std::size_t n = pending_protect_.size();
  std::size_t i = 0;
  while (i < n) {
    std::uintptr_t run_base = pending_protect_[i]->shadow_base;
    std::size_t run_len = pending_protect_[i]->span_length;
    std::size_t j = i + 1;
    while (j < n && pending_protect_[j]->shadow_base == run_base + run_len) {
      run_len += pending_protect_[j]->span_length;  // extends the current run
      stats_.protect_calls_saved.fetch_add(1, std::memory_order_relaxed);
      ++j;
    }
    const vm::sys::IoResult r = revoker_->revoke(
        arena_, reinterpret_cast<void*>(run_base), run_len);
    stats_.protect_calls.fetch_add(1, std::memory_order_relaxed);
    if (r.ok()) {
      if (j - i > 1) {
        stats_.revoke_coalesced_pages.fetch_add(run_len / vm::kPageSize,
                                                std::memory_order_relaxed);
      }
      if (revoker_->pkey_active()) {
        stats_.pkey_revocations.fetch_add(j - i, std::memory_order_relaxed);
      }
      stats_.revoked_spans.fetch_add(j - i, std::memory_order_relaxed);
      for (std::size_t k = i; k < j; ++k) {
        ObjectRecord* rec = pending_protect_[k];
        rec->revocation_done = true;
        under_.free(reinterpret_cast<void*>(rec->canonical));
        freed_bytes_held_ += rec->span_length;
      }
    } else {
      // The merged call was refused; fall back to per-record protection so
      // one bad span cannot leave a whole run revocable-but-unprotected.
      gov_->on_syscall_failure("protect-batch", r.err);
      for (std::size_t k = i; k < j; ++k) {
        ObjectRecord* rec = pending_protect_[k];
        const vm::sys::IoResult r2 = revoker_->revoke(
            arena_, reinterpret_cast<void*>(rec->shadow_base),
            rec->span_length);
        stats_.protect_calls.fetch_add(1, std::memory_order_relaxed);
        freed_bytes_held_ += rec->span_length;
        rec->revocation_done = true;
        if (r2.ok()) {
          if (revoker_->pkey_active()) {
            stats_.pkey_revocations.fetch_add(1, std::memory_order_relaxed);
          }
          stats_.revoked_spans.fetch_add(1, std::memory_order_relaxed);
          under_.free(reinterpret_cast<void*>(rec->canonical));
        } else {
          stats_.guard_failures.fetch_add(1, std::memory_order_relaxed);
          quarantine_locked(reinterpret_cast<void*>(rec->canonical),
                            rec->user_size + kGuardHeader);
        }
      }
    }
    i = j;
  }
  stats_.revoke_batches.fetch_add(1, std::memory_order_relaxed);
  obs::record_event(obs::EventKind::kProtectBatch,
                    pending_protect_.front()->shadow_base,
                    pending_protect_.size());
  pending_protect_.clear();
  pending_protect_bytes_ = 0;
}

void ShadowEngine::enforce_budget_locked() {
  if (cfg_.freed_va_budget == 0 || freed_bytes_held_ <= cfg_.freed_va_budget) {
    return;
  }
  // §3.4 strategy 1: recycle the oldest freed spans down to half budget.
  // Records whose revocation is still in flight (queued or on the remote
  // list) are skipped — releasing them would leave live pointers in those
  // queues.
  std::size_t target = freed_bytes_held_ - cfg_.freed_va_budget / 2;
  for (ObjectRecord* it = head_.next; it != &head_ && target > 0;) {
    ObjectRecord* next = it->next;
    if (it->revocation_done &&
        it->state.load(std::memory_order_relaxed) == ObjectState::kFreed) {
      const std::size_t len = it->span_length;
      release_record_locked(it, /*recycle_va=*/true);
      target = target > len ? target - len : 0;
    }
    it = next;
  }
}

std::size_t ShadowEngine::size_of(const void* p) const {
  const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
  return rec != nullptr ? rec->user_size : 0;
}

void ShadowEngine::unlink_locked(ObjectRecord* rec) noexcept {
  rec->prev->next = rec->next;
  rec->next->prev = rec->prev;
}

void ShadowEngine::release_record_locked(ObjectRecord* rec, bool recycle_va) {
  ShadowRegistry::global().erase(*rec);
  const vm::PageRange span{rec->shadow_base, rec->span_length};
  if (recycle_va && park_recycled_locked(span)) {
    // Parked for a same-size MAP_FIXED re-alias on this shard: no freelist
    // round trip and no munmap. The span is as dead as a freelist span —
    // every release_record_locked caller proved no pointers remain.
    obs::record_event(obs::EventKind::kVaReclaim, span.base, span.pages());
  } else if (recycle_va && shadow_freelist_ != nullptr) {
    shadow_freelist_->put(span);  // records the kVaReclaim event
  } else {
    arena_.unmap(reinterpret_cast<void*>(span.base), span.length);
    gov_->add_vmas(rec->guard_length != 0 ? -2 : -1);
    obs::record_event(obs::EventKind::kVaReclaim, span.base, span.pages());
  }
  if (rec->state.load(std::memory_order_relaxed) == ObjectState::kFreed &&
      rec->revocation_done) {
    freed_bytes_held_ -= rec->span_length;
  }
  stats_.va_reclaimed_pages.fetch_add(span.pages(), std::memory_order_relaxed);
  stats_.live_records.fetch_sub(1, std::memory_order_relaxed);
  stats_.guarded_bytes.fetch_sub(span.length, std::memory_order_relaxed);
  obs::record_event(obs::EventKind::kVaReclaim, span.base, span.pages());
  unlink_locked(rec);
  delete rec;
}

void ShadowEngine::release_all() {
  std::lock_guard lock(mu_);
  // Pooldestroy contract: callers quiesced every thread that could still
  // free into this engine, so one drain empties the remote list for good.
  drain_remote_locked();
  flush_protections_locked();  // pending canonical blocks must reach under_
  drain_quarantine_locked();
  while (head_.next != &head_) {
    release_record_locked(head_.next, /*recycle_va=*/true);
  }
  drop_magazines_locked();
  drain_recycled_locked();
}

std::size_t ShadowEngine::reclaim_freed(std::size_t bytes) {
  std::lock_guard lock(mu_);
  drain_remote_locked();
  flush_protections_locked();
  std::size_t reclaimed = 0;
  for (ObjectRecord* it = head_.next; it != &head_ && reclaimed < bytes;) {
    ObjectRecord* next = it->next;
    if (it->revocation_done &&
        it->state.load(std::memory_order_relaxed) == ObjectState::kFreed) {
      reclaimed += it->span_length;
      release_record_locked(it, /*recycle_va=*/true);
    }
    it = next;
  }
  return reclaimed;
}

std::vector<ObjectRecord*> ShadowEngine::freed_records() {
  std::lock_guard lock(mu_);
  drain_remote_locked();
  flush_protections_locked();  // external consumers expect protected spans
  std::vector<ObjectRecord*> out;
  for (ObjectRecord* it = head_.next; it != &head_; it = it->next) {
    if (it->revocation_done &&
        it->state.load(std::memory_order_relaxed) == ObjectState::kFreed) {
      out.push_back(it);
    }
  }
  return out;
}

std::vector<ObjectRecord*> ShadowEngine::live_records() {
  std::lock_guard lock(mu_);
  std::vector<ObjectRecord*> out;
  for (ObjectRecord* it = head_.next; it != &head_; it = it->next) {
    if (it->state.load(std::memory_order_relaxed) == ObjectState::kLive) {
      out.push_back(it);
    }
  }
  return out;
}

void ShadowEngine::reclaim(ObjectRecord* rec) {
  std::lock_guard lock(mu_);
  assert(rec->state.load(std::memory_order_relaxed) == ObjectState::kFreed);
  assert(rec->revocation_done);
  release_record_locked(rec, /*recycle_va=*/true);
}

const ObjectRecord* ShadowEngine::record_of(const void* p) {
  if (p == nullptr) return nullptr;
  const ObjectRecord* rec = ShadowRegistry::global().lookup(vm::addr(p));
  if (rec == nullptr || rec->user_shadow != vm::addr(p)) return nullptr;
  return rec;
}

bool ShadowEngine::revocation_applied(const void* p) const {
  const ObjectRecord* rec = record_of(p);
  if (rec == nullptr) return false;
  // revocation_done is owner-lock-protected; taking mu_ here is only correct
  // on the owning engine (ShardedHeap routes by owner_shard before calling).
  std::lock_guard lock(mu_);
  return rec->state.load(std::memory_order_acquire) == ObjectState::kFreed &&
         rec->revocation_done;
}

GuardStats ShadowEngine::stats() const {
  // Under the engine lock every writer is quiesced, so this snapshot is a
  // fully consistent cut (see the contract in stats.h) — except the lock-free
  // remote-free producers, whose counters are per-counter accurate.
  std::lock_guard lock(mu_);
  return stats_.snapshot();
}

GuardedHeap::GuardedHeap(vm::PhysArena& arena, GuardConfig cfg)
    : source_(arena), heap_(source_), engine_(arena, heap_, &shadow_va_, cfg) {
  // The shadow VA free list doubles as the arena's emergency VMA-relief
  // source: under kernel ENOMEM its held spans are coalesced and munmapped.
  arena.add_relief_source(&shadow_va_);
  // Ranges the list munmaps (relief or teardown) were live guard VMAs; keep
  // the governor's pressure estimate from ratcheting up across heap
  // lifetimes.
  shadow_va_.set_release_hook(
      +[](void* gov, std::size_t ranges) {
        static_cast<DegradationGovernor*>(gov)->add_vmas(
            -static_cast<long>(ranges));
      },
      &engine_.governor());
}

GuardedHeap::~GuardedHeap() {
  // Deregister before shadow_va_ is destroyed (members die in reverse order;
  // the dtor body runs first).
  source_.arena().remove_relief_source(&shadow_va_);
}

}  // namespace dpg::core
