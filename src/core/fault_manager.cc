#include "core/fault_manager.h"

#include <signal.h>
#include <string.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "core/registry.h"

namespace dpg::core {

namespace {

std::atomic<FaultManager::Callback> g_callback{nullptr};
std::atomic<std::uint64_t> g_detections{0};
thread_local FaultManager::Probe t_probe;

// --- async-signal-safe formatting -----------------------------------------

std::size_t put_str(char* out, std::size_t cap, std::size_t at, const char* s) {
  while (*s != '\0' && at + 1 < cap) out[at++] = *s++;
  return at;
}

std::size_t put_hex(char* out, std::size_t cap, std::size_t at,
                    std::uint64_t v) {
  char digits[18];
  int n = 0;
  do {
    const int d = static_cast<int>(v & 0xF);
    digits[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + d - 10);
    v >>= 4;
  } while (v != 0);
  at = put_str(out, cap, at, "0x");
  while (n > 0 && at + 1 < cap) out[at++] = digits[--n];
  return at;
}

std::size_t put_dec(char* out, std::size_t cap, std::size_t at,
                    std::uint64_t v) {
  char digits[21];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && at + 1 < cap) out[at++] = digits[--n];
  return at;
}

void write_report(const DanglingReport& r) {
  char buf[512];
  std::size_t at = 0;
  at = put_str(buf, sizeof buf, at, "\n=== dpguard: dangling pointer ");
  at = put_str(buf, sizeof buf, at, to_string(r.kind));
  at = put_str(buf, sizeof buf, at, " detected ===\n  pointer:    ");
  at = put_hex(buf, sizeof buf, at, r.fault_address);
  at = put_str(buf, sizeof buf, at, "\n  object:     [");
  at = put_hex(buf, sizeof buf, at, r.object_base);
  at = put_str(buf, sizeof buf, at, ", +");
  at = put_dec(buf, sizeof buf, at, r.object_size);
  at = put_str(buf, sizeof buf, at, ")\n  alloc site: ");
  at = put_dec(buf, sizeof buf, at, r.alloc_site);
  at = put_str(buf, sizeof buf, at, "\n  free site:  ");
  at = put_dec(buf, sizeof buf, at, r.free_site);
  at = put_str(buf, sizeof buf, at, "\n");
  // Best-effort: a short write here is acceptable.
  [[maybe_unused]] ssize_t rc = write(STDERR_FILENO, buf, at);
}

[[noreturn]] void dispatch(const DanglingReport& report) {
  g_detections.fetch_add(1, std::memory_order_relaxed);
  if (t_probe.armed != 0) {
    t_probe.report = report;
    siglongjmp(t_probe.env, 1);
  }
  if (FaultManager::Callback cb = g_callback.load(std::memory_order_acquire)) {
    cb(report);
  }
  write_report(report);
  abort();
}

AccessKind classify(const void* uctx) noexcept {
#if defined(__x86_64__)
  // Page-fault error code: bit 1 set => the faulting access was a write.
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  const auto err = static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_ERR]);
  return (err & 0x2) != 0 ? AccessKind::kWrite : AccessKind::kRead;
#else
  (void)uctx;
  return AccessKind::kUnknown;
#endif
}

void reraise_default(int signo) {
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(signo, &dfl, nullptr);
  // Returning re-executes the faulting instruction under SIG_DFL.
}

void on_fault(int signo, siginfo_t* info, void* uctx) {
  const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
  const ObjectRecord* rec = ShadowRegistry::global().lookup(addr);
  if (rec == nullptr) {
    reraise_default(signo);
    return;
  }
  const ObjectState state = rec->state.load(std::memory_order_acquire);
  const bool in_guard =
      rec->guard_length != 0 &&
      addr >= rec->shadow_base + rec->span_length - rec->guard_length;
  if (state != ObjectState::kFreed && !in_guard) {
    // A fault inside a live object's data pages is not ours to explain.
    reraise_default(signo);
    return;
  }
  DanglingReport report;
  // A fault in a *live* object's trailing guard page is a spatial error:
  // the access ran off the end of the object (the §6-extension guard mode).
  report.kind = state == ObjectState::kFreed ? classify(uctx)
                                             : AccessKind::kOverflow;
  report.fault_address = addr;
  report.object_base = rec->user_shadow;
  report.object_size = rec->user_size;
  report.alloc_site = rec->alloc_site;
  report.free_site = rec->free_site;
  dispatch(report);
}

}  // namespace

FaultManager& FaultManager::instance() {
  static FaultManager fm;
  return fm;
}

void FaultManager::install() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa{};
    sa.sa_sigaction = on_fault;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGSEGV, &sa, nullptr);
    sigaction(SIGBUS, &sa, nullptr);
  });
}

void FaultManager::set_callback(Callback cb) noexcept {
  g_callback.store(cb, std::memory_order_release);
}

void FaultManager::raise_software(const DanglingReport& report) {
  dispatch(report);
}

std::uint64_t FaultManager::detections() const noexcept {
  return g_detections.load(std::memory_order_relaxed);
}

FaultManager::Probe& FaultManager::thread_probe() noexcept { return t_probe; }

}  // namespace dpg::core
