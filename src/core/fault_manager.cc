#include "core/fault_manager.h"

#include <signal.h>
#include <string.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "core/registry.h"
#include "obs/fmt.h"
#include "obs/metrics.h"

namespace dpg::core {

namespace {

using obs::fmt::put_dec;
using obs::fmt::put_hex;
using obs::fmt::put_str;

std::atomic<FaultManager::Callback> g_callback{nullptr};
std::atomic<std::uint64_t> g_detections{0};
thread_local FaultManager::Probe t_probe;

void write_report(const DanglingReport& r) {
  char buf[4096];
  std::size_t at = 0;
  at = put_str(buf, sizeof buf, at, "\n=== dpguard: dangling pointer ");
  at = put_str(buf, sizeof buf, at, to_string(r.kind));
  at = put_str(buf, sizeof buf, at, " detected ===\n  pointer:    ");
  at = put_hex(buf, sizeof buf, at, r.fault_address);
  at = put_str(buf, sizeof buf, at, "\n  object:     [");
  at = put_hex(buf, sizeof buf, at, r.object_base);
  at = put_str(buf, sizeof buf, at, ", +");
  at = put_dec(buf, sizeof buf, at, r.object_size);
  at = put_str(buf, sizeof buf, at, ")\n  alloc site: ");
  at = put_dec(buf, sizeof buf, at, r.alloc_site);
  at = put_str(buf, sizeof buf, at, "\n  free site:  ");
  at = put_dec(buf, sizeof buf, at, r.free_site);
  at = put_str(buf, sizeof buf, at, "\n");
  if (r.trace_count != 0) {
    at = put_str(buf, sizeof buf, at, "  last ");
    at = put_dec(buf, sizeof buf, at, r.trace_count);
    at = put_str(buf, sizeof buf, at, " events (oldest first):\n");
    for (std::size_t i = 0; i < r.trace_count; ++i) {
      const obs::TraceEvent& e = r.recent_trace[i];
      at = put_str(buf, sizeof buf, at, "    [");
      at = put_dec(buf, sizeof buf, at, e.ns);
      at = put_str(buf, sizeof buf, at, "ns] ");
      at = put_str(buf, sizeof buf, at,
                   to_string(static_cast<obs::EventKind>(e.kind)));
      at = put_str(buf, sizeof buf, at, " addr=");
      at = put_hex(buf, sizeof buf, at, e.addr);
      at = put_str(buf, sizeof buf, at, " arg=");
      at = put_dec(buf, sizeof buf, at, e.arg);
      at = put_str(buf, sizeof buf, at, " site=");
      at = put_dec(buf, sizeof buf, at, e.site);
      at = put_str(buf, sizeof buf, at, " tid=");
      at = put_dec(buf, sizeof buf, at, e.tid);
      at = put_str(buf, sizeof buf, at, "\n");
    }
  }
  // Best-effort: a short write here is acceptable.
  [[maybe_unused]] ssize_t rc = write(STDERR_FILENO, buf, at);
  // Stats snapshot alongside the crash: registered counters + histograms as
  // one JSON line (async-signal-safe), so the report is self-diagnosing.
  char metrics[8192];
  std::size_t mlen = obs::render_json(metrics, sizeof metrics - 1, "fault");
  if (mlen != 0) {
    metrics[mlen++] = '\n';
    rc = write(STDERR_FILENO, metrics, mlen);
  }
}

[[noreturn]] void dispatch(const DanglingReport& incoming) {
  g_detections.fetch_add(1, std::memory_order_relaxed);
  // Enrich with the faulting thread's flight-recorder tail. The fault event
  // itself is recorded first so it is always the newest entry.
  obs::record_event(obs::EventKind::kFault, incoming.fault_address,
                    static_cast<std::uint64_t>(incoming.kind),
                    incoming.free_site);
  DanglingReport report = incoming;
  report.trace_count =
      obs::capture_recent(report.recent_trace, DanglingReport::kTraceDepth);
  if (t_probe.armed != 0) {
    t_probe.report = report;
    siglongjmp(t_probe.env, 1);
  }
  if (FaultManager::Callback cb = g_callback.load(std::memory_order_acquire)) {
    cb(report);
  }
  write_report(report);
  abort();
}

AccessKind classify(const void* uctx) noexcept {
#if defined(__x86_64__)
  // Page-fault error code: bit 1 set => the faulting access was a write.
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  const auto err = static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_ERR]);
  return (err & 0x2) != 0 ? AccessKind::kWrite : AccessKind::kRead;
#else
  (void)uctx;
  return AccessKind::kUnknown;
#endif
}

void reraise_default(int signo) {
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(signo, &dfl, nullptr);
  // Returning re-executes the faulting instruction under SIG_DFL.
}

void on_fault(int signo, siginfo_t* info, void* uctx) {
  const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
  const ObjectRecord* rec = ShadowRegistry::global().lookup(addr);
  if (rec == nullptr) {
    reraise_default(signo);
    return;
  }
  const ObjectState state = rec->state.load(std::memory_order_acquire);
  const bool in_guard =
      rec->guard_length != 0 &&
      addr >= rec->shadow_base + rec->span_length - rec->guard_length;
  if (state != ObjectState::kFreed && !in_guard) {
    // A fault inside a live object's data pages is not ours to explain.
    reraise_default(signo);
    return;
  }
  DanglingReport report;
  // A fault in a *live* object's trailing guard page is a spatial error:
  // the access ran off the end of the object (the §6-extension guard mode).
  report.kind = state == ObjectState::kFreed ? classify(uctx)
                                             : AccessKind::kOverflow;
  report.fault_address = addr;
  report.object_base = rec->user_shadow;
  report.object_size = rec->user_size;
  report.alloc_site = rec->alloc_site;
  report.free_site = rec->free_site;
  dispatch(report);
}

}  // namespace

FaultManager& FaultManager::instance() {
  static FaultManager fm;
  return fm;
}

void FaultManager::install() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa{};
    sa.sa_sigaction = on_fault;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGSEGV, &sa, nullptr);
    sigaction(SIGBUS, &sa, nullptr);
  });
}

void FaultManager::set_callback(Callback cb) noexcept {
  g_callback.store(cb, std::memory_order_release);
}

void FaultManager::raise_software(const DanglingReport& report) {
  dispatch(report);
}

std::uint64_t FaultManager::detections() const noexcept {
  return g_detections.load(std::memory_order_relaxed);
}

FaultManager::Probe& FaultManager::thread_probe() noexcept { return t_probe; }

}  // namespace dpg::core
