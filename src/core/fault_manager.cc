#include "core/fault_manager.h"

#include <setjmp.h>
#include <signal.h>
#include <string.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "core/registry.h"
#include "obs/backtrace.h"
#include "obs/dump.h"
#include "obs/fmt.h"
#include "obs/metrics.h"

namespace dpg::core {

namespace {

using obs::fmt::put_dec;
using obs::fmt::put_hex;
using obs::fmt::put_str;

std::atomic<FaultManager::Callback> g_callback{nullptr};
std::atomic<std::uint64_t> g_detections{0};
std::atomic<std::uint64_t> g_pkey_faults{0};
thread_local FaultManager::Probe t_probe;

// Set while the fault path runs on this thread. A second fault with the flag
// up means the handler itself faulted — recursing would just re-enter until
// the kernel gives up, so bail with a minimal async-safe note instead.
thread_local volatile sig_atomic_t t_in_fault = 0;

// Walker probe: while the use-site backtrace walk runs inside on_fault, the
// frame-pointer chain may lead anywhere (the faulting thread's registers are
// not presumed sane). A nested fault with t_walk_active up siglongjmps back
// into capture_use_stack instead of recursing; the walker's `progress`
// counter guarantees the frames gathered so far stay valid.
thread_local volatile sig_atomic_t t_walk_active = 0;
thread_local sigjmp_buf t_walk_env;

#if defined(__SANITIZE_THREAD__)
#define DPG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPG_TSAN 1
#endif
#endif
#ifndef DPG_TSAN
#define DPG_TSAN 0
#endif

// Use-site backtrace from the faulting signal context: the interrupted PC,
// then the frame-pointer chain from the interrupted RBP. The upper stack
// bound is a generous span above RSP — out-of-range frame pointers are
// stopped by the walker probe, not by exact bounds (the faulting thread's
// pthread bounds may be uncached and resolving them here is not
// async-signal-safe).
std::size_t capture_use_stack(const void* uctx, std::uintptr_t* out,
                              std::size_t max) noexcept {
#if defined(__x86_64__)
  const std::size_t depth = obs::site_depth();
  if (depth == 0 || uctx == nullptr || max == 0) return 0;
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  const auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  // volatile: these live across sigsetjmp (-Wclobbered otherwise).
  volatile auto fp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  volatile auto sp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
  constexpr std::uintptr_t kStackSpan = std::uintptr_t{64} << 20;
  volatile std::size_t progress = 0;
  out[progress] = pc;
  progress = 1;
#if DPG_TSAN
  // TSan's sigsetjmp interceptor allocates (signal-unsafe here) and its
  // siglongjmp aborts on a buf set up on the sigaltstack ("can't find
  // longjmp buf"), so the probe-protected walk cannot run under it. The
  // interrupted PC alone still names the use site; the alloc/free stacks
  // are unaffected (their walks run outside any signal).
  (void)fp;
  (void)sp;
#else
  if (sigsetjmp(t_walk_env, 1) == 0) {
    t_walk_active = 1;
    obs::walk_frame_chain(fp, sp, sp + kStackSpan, out, max, &progress);
  }
  t_walk_active = 0;
#endif
  return progress;
#else
  (void)uctx;
  (void)out;
  (void)max;
  return 0;
#endif
}


[[noreturn]] void nested_fault_bail() {
  static const char msg[] =
      "dpguard: fault inside the fault handler; minimal report, exiting\n";
  [[maybe_unused]] ssize_t rc = write(STDERR_FILENO, msg, sizeof msg - 1);
  _exit(134);  // 128 + SIGABRT: reads like the abort the full path would take
}

// write_report needs ~12 KiB of stack frames (report + metrics buffers);
// MINSIGSTKSZ would not cover them, and the whole point is surviving traps
// taken at the edge of an exhausted thread stack.
constexpr std::size_t kAltStackBytes = 256 * 1024;

// Per-thread alternate signal stack, armed on construction and torn down at
// thread exit. Deliberately raw mmap, not the vm/sys shim: an injected fault
// plan must never be able to disarm the crash path itself.
class AltStack {
 public:
  AltStack() noexcept {
    void* p = mmap(nullptr, kAltStackBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return;  // SA_ONSTACK with no stack = plain delivery
    stack_t ss{};
    ss.ss_sp = p;
    ss.ss_size = kAltStackBytes;
    if (sigaltstack(&ss, &prev_) == 0) {
      base_ = p;
    } else {
      munmap(p, kAltStackBytes);
    }
  }

  ~AltStack() {
    if (base_ == nullptr) return;
    if ((prev_.ss_flags & SS_DISABLE) != 0 || prev_.ss_sp == nullptr) {
      stack_t off{};
      off.ss_flags = SS_DISABLE;
      sigaltstack(&off, nullptr);
    } else {
      sigaltstack(&prev_, nullptr);
    }
    munmap(base_, kAltStackBytes);
  }

  AltStack(const AltStack&) = delete;
  AltStack& operator=(const AltStack&) = delete;

 private:
  void* base_ = nullptr;
  stack_t prev_{};
};

// Chain targets: whatever SIGSEGV/SIGBUS dispositions were installed before
// ours. Written once under install()'s once-flag (or reinstall_for_testing).
struct sigaction g_prev_segv{};
struct sigaction g_prev_bus{};

std::size_t put_stack(char* buf, std::size_t cap, std::size_t at,
                      const char* label, const std::uintptr_t* frames,
                      std::size_t depth) {
  if (depth == 0) return at;
  at = put_str(buf, cap, at, label);
  for (std::size_t i = 0; i < depth; ++i) {
    at = put_str(buf, cap, at, i == 0 ? "" : " ");
    at = put_hex(buf, cap, at, frames[i]);
  }
  return put_str(buf, cap, at, "\n");
}

void write_report(const DanglingReport& r, const char* dump_name) {
  char buf[4096];
  std::size_t at = 0;
  at = put_str(buf, sizeof buf, at, "\n=== dpguard: dangling pointer ");
  at = put_str(buf, sizeof buf, at, to_string(r.kind));
  at = put_str(buf, sizeof buf, at, " detected ===\n  pointer:    ");
  at = put_hex(buf, sizeof buf, at, r.fault_address);
  at = put_str(buf, sizeof buf, at, "\n  object:     [");
  at = put_hex(buf, sizeof buf, at, r.object_base);
  at = put_str(buf, sizeof buf, at, ", +");
  at = put_dec(buf, sizeof buf, at, r.object_size);
  at = put_str(buf, sizeof buf, at, ")\n  alloc site: ");
  at = put_dec(buf, sizeof buf, at, r.alloc_site);
  at = put_str(buf, sizeof buf, at, "\n  free site:  ");
  at = put_dec(buf, sizeof buf, at, r.free_site);
  at = put_str(buf, sizeof buf, at, "\n");
  at = put_stack(buf, sizeof buf, at, "  use stack:   ", r.use_stack,
                 r.use_stack_depth);
  at = put_stack(buf, sizeof buf, at, "  alloc stack: ", r.alloc_stack,
                 r.alloc_stack_depth);
  at = put_stack(buf, sizeof buf, at, "  free stack:  ", r.free_stack,
                 r.free_stack_depth);
  if (dump_name != nullptr && dump_name[0] != '\0') {
    at = put_str(buf, sizeof buf, at, "  crash dump:  ");
    at = put_str(buf, sizeof buf, at, dump_name);
    at = put_str(buf, sizeof buf, at, " (in DPG_REPORT_DIR)\n");
  }
  if (r.trace_count != 0) {
    at = put_str(buf, sizeof buf, at, "  last ");
    at = put_dec(buf, sizeof buf, at, r.trace_count);
    at = put_str(buf, sizeof buf, at, " events (oldest first):\n");
    for (std::size_t i = 0; i < r.trace_count; ++i) {
      const obs::TraceEvent& e = r.recent_trace[i];
      at = put_str(buf, sizeof buf, at, "    [");
      at = put_dec(buf, sizeof buf, at, e.ns);
      at = put_str(buf, sizeof buf, at, "ns] ");
      at = put_str(buf, sizeof buf, at,
                   to_string(static_cast<obs::EventKind>(e.kind)));
      at = put_str(buf, sizeof buf, at, " addr=");
      at = put_hex(buf, sizeof buf, at, e.addr);
      at = put_str(buf, sizeof buf, at, " arg=");
      at = put_dec(buf, sizeof buf, at, e.arg);
      at = put_str(buf, sizeof buf, at, " site=");
      at = put_dec(buf, sizeof buf, at, e.site);
      at = put_str(buf, sizeof buf, at, " tid=");
      at = put_dec(buf, sizeof buf, at, e.tid);
      at = put_str(buf, sizeof buf, at, "\n");
    }
  }
  // Best-effort: a short write here is acceptable.
  [[maybe_unused]] ssize_t rc = write(STDERR_FILENO, buf, at);
  // Stats snapshot alongside the crash: registered counters + histograms as
  // one JSON line (async-signal-safe), so the report is self-diagnosing.
  char metrics[8192];
  std::size_t mlen = obs::render_json(metrics, sizeof metrics - 1, "fault");
  if (mlen != 0) {
    metrics[mlen++] = '\n';
    rc = write(STDERR_FILENO, metrics, mlen);
  }
}

// Mirrors a DanglingReport into the obs-layer POD the dump writer persists
// (obs cannot see core types; the numeric kind values match AccessKind).
void fill_crash_report(obs::dump::CrashReport& cr, const DanglingReport& r) {
  cr = obs::dump::CrashReport{};
  cr.kind = static_cast<std::uint32_t>(r.kind);
  cr.alloc_site = r.alloc_site;
  cr.free_site = r.free_site;
  cr.fault_address = r.fault_address;
  cr.object_base = r.object_base;
  cr.object_size = r.object_size;
  cr.alloc_stack_depth = static_cast<std::uint32_t>(r.alloc_stack_depth);
  cr.free_stack_depth = static_cast<std::uint32_t>(r.free_stack_depth);
  cr.use_stack_depth = static_cast<std::uint32_t>(r.use_stack_depth);
  for (std::size_t i = 0; i < r.alloc_stack_depth; ++i) {
    cr.alloc_stack[i] = r.alloc_stack[i];
  }
  for (std::size_t i = 0; i < r.free_stack_depth; ++i) {
    cr.free_stack[i] = r.free_stack[i];
  }
  for (std::size_t i = 0; i < r.use_stack_depth; ++i) {
    cr.use_stack[i] = r.use_stack[i];
  }
  static_assert(sizeof cr.recent_trace == sizeof r.recent_trace);
  cr.trace_count = static_cast<std::uint32_t>(r.trace_count);
  memcpy(cr.recent_trace, r.recent_trace, sizeof cr.recent_trace);
}

[[noreturn]] void dispatch(const DanglingReport& incoming) {
  if (t_in_fault != 0) nested_fault_bail();
  t_in_fault = 1;
  g_detections.fetch_add(1, std::memory_order_relaxed);
  // Enrich with the faulting thread's flight-recorder tail. The fault event
  // itself is recorded first so it is always the newest entry.
  obs::record_event(obs::EventKind::kFault, incoming.fault_address,
                    static_cast<std::uint64_t>(incoming.kind),
                    incoming.free_site);
  DanglingReport report = incoming;
  report.trace_count =
      obs::capture_recent(report.recent_trace, DanglingReport::kTraceDepth);
  if (t_probe.armed != 0) {
    t_probe.report = report;
    t_in_fault = 0;  // probe recovery resumes normal execution
    siglongjmp(t_probe.env, 1);
  }
  // Software-raised reports (double free, invalid free, stale realloc) reach
  // here in normal context with no signal frame; capture the use stack from
  // the current call chain instead.
  if (report.use_stack_depth == 0) {
    report.use_stack_depth = obs::capture_site_stack(
        report.use_stack, DanglingReport::kUseStackDepth);
  }
  if (FaultManager::Callback cb = g_callback.load(std::memory_order_acquire)) {
    cb(report);
  }
  // Persist the postmortem dump before the human-readable report: the dump is
  // the artifact the fleet keeps, stderr is best-effort. `force` because this
  // path terminates the process — never yield to a concurrent snapshot.
  char dump_name[128] = {0};
  if (obs::dump::enabled()) {
    obs::dump::CrashReport cr;
    fill_crash_report(cr, report);
    obs::dump::write_crash_dump("fault", &cr, dump_name, sizeof dump_name,
                                /*force=*/true);
  }
  write_report(report, dump_name);
  abort();
}

AccessKind classify(const void* uctx) noexcept {
#if defined(__x86_64__)
  // Page-fault error code: bit 1 set => the faulting access was a write.
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  const auto err = static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_ERR]);
  return (err & 0x2) != 0 ? AccessKind::kWrite : AccessKind::kRead;
#else
  (void)uctx;
  return AccessKind::kUnknown;
#endif
}

void reraise_default(int signo) {
  struct sigaction dfl{};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(signo, &dfl, nullptr);
  // Returning re-executes the faulting instruction under SIG_DFL.
}

// A fault that is not ours goes to whoever owned the signal before install():
// SA_SIGINFO handlers get the full context, classic handlers the signo. An
// inherited SIG_IGN is honored by returning (the access re-faults, but that
// is exactly the prior owner's chosen semantics for a present handler);
// SIG_DFL falls through to reraise_default.
void chain_previous(int signo, siginfo_t* info, void* uctx) {
  const struct sigaction& prev = signo == SIGBUS ? g_prev_bus : g_prev_segv;
  if ((prev.sa_flags & SA_SIGINFO) != 0) {
    if (prev.sa_sigaction != nullptr) {
      prev.sa_sigaction(signo, info, uctx);
      return;
    }
  } else if (prev.sa_handler != SIG_DFL) {
    if (prev.sa_handler != SIG_IGN) prev.sa_handler(signo);
    return;
  }
  reraise_default(signo);
}

void on_fault(int signo, siginfo_t* info, void* uctx) {
  // A fault raised by the use-stack walker itself (garbage frame pointer):
  // abandon the walk, keep the frames already gathered. Checked before
  // anything else — the walker runs with t_in_fault still down.
  if (t_walk_active != 0) {
    t_walk_active = 0;
    siglongjmp(t_walk_env, 1);
  }
  if (t_in_fault != 0) nested_fault_bail();
  const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
  const ObjectRecord* rec = ShadowRegistry::global().lookup(addr);
  if (rec == nullptr) {
    chain_previous(signo, info, uctx);
    return;
  }
#if defined(SEGV_PKUERR)
  // MPK backend: the trap came from the protection-key check (the thread's
  // PKRU denies the revoked key), not the page-table bits. Same registry
  // resolution, same report — only the counter distinguishes the backends.
  if (signo == SIGSEGV && info->si_code == SEGV_PKUERR) {
    g_pkey_faults.fetch_add(1, std::memory_order_relaxed);
  }
#endif
  const ObjectState state = rec->state.load(std::memory_order_acquire);
  const bool in_guard =
      rec->guard_length != 0 &&
      addr >= rec->shadow_base + rec->span_length - rec->guard_length;
  if (state != ObjectState::kFreed && !in_guard) {
    // A fault inside a live object's data pages is not ours to explain.
    chain_previous(signo, info, uctx);
    return;
  }
  DanglingReport report;
  // A fault in a *live* object's trailing guard page is a spatial error:
  // the access ran off the end of the object (the §6-extension guard mode).
  report.kind = state == ObjectState::kFreed ? classify(uctx)
                                             : AccessKind::kOverflow;
  report.fault_address = addr;
  report.object_base = rec->user_shadow;
  report.object_size = rec->user_size;
  report.alloc_site = rec->alloc_site;
  report.free_site = rec->free_site;
  copy_site_stacks(*rec, report);
  report.use_stack_depth = capture_use_stack(
      uctx, report.use_stack, DanglingReport::kUseStackDepth);
  dispatch(report);
}

}  // namespace

namespace {

void install_handlers() {
  struct sigaction sa{};
  sa.sa_sigaction = on_fault;
  // SA_NODEFER keeps SIGSEGV deliverable inside the handler so a nested
  // fault reaches the reentrancy bail-out instead of a silent kernel kill;
  // SA_ONSTACK moves delivery to the per-thread sigaltstack.
  sa.sa_flags = SA_SIGINFO | SA_NODEFER | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGSEGV, &sa, &g_prev_segv);
  sigaction(SIGBUS, &sa, &g_prev_bus);
  // Installing over ourselves (reinstall after a fork, double init) must not
  // make the chain recursive.
  if ((g_prev_segv.sa_flags & SA_SIGINFO) != 0 &&
      g_prev_segv.sa_sigaction == on_fault) {
    g_prev_segv = {};
  }
  if ((g_prev_bus.sa_flags & SA_SIGINFO) != 0 &&
      g_prev_bus.sa_sigaction == on_fault) {
    g_prev_bus = {};
  }
}

}  // namespace

FaultManager& FaultManager::instance() {
  static FaultManager fm;
  return fm;
}

void FaultManager::ensure_altstack() noexcept {
  thread_local AltStack alt;
  (void)alt;
}

void FaultManager::install() {
  ensure_altstack();
  static std::once_flag once;
  std::call_once(once, [] {
    install_handlers();
    obs::register_counter("dpg_detections", &g_detections);
    obs::register_counter("dpg_pkey_faults", &g_pkey_faults);
  });
}

void FaultManager::reinstall_for_testing() {
  ensure_altstack();
  install_handlers();
}

void FaultManager::set_callback(Callback cb) noexcept {
  g_callback.store(cb, std::memory_order_release);
}

void FaultManager::raise_software(const DanglingReport& report) {
  dispatch(report);
}

std::uint64_t FaultManager::detections() const noexcept {
  return g_detections.load(std::memory_order_relaxed);
}

std::uint64_t FaultManager::pkey_faults() const noexcept {
  return g_pkey_faults.load(std::memory_order_relaxed);
}

FaultManager::Probe& FaultManager::thread_probe() noexcept { return t_probe; }

}  // namespace dpg::core
