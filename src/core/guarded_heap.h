// ShadowEngine + GuardedHeap — the paper's primary contribution (Section 3.2).
//
// Allocation: the request is passed to the underlying allocator with the size
// incremented by one word; the word before the user object records the
// canonical address. A fresh virtual page (or run) aliasing the canonical
// physical pages is created, and the caller receives the object *on the
// shadow page at the same offset within the page*. The underlying allocator
// still believes the object lives at the canonical address.
//
// Deallocation: the shadow span is mprotect(PROT_NONE)'d — every future
// read/write/free through any pointer to the object traps — and the
// *canonical* address is handed back to the underlying allocator, so the
// physical memory is reused exactly as in the original program.
//
// Shadow virtual pages are reused only when their owner proves no pointers
// remain: pool destruction (GuardedPool), budgeted reclamation (§3.4
// strategy 1), or a conservative GC pass (§3.4 strategy 2) push spans onto a
// shared VA free list, and new shadow mappings are placed over recycled
// addresses with MAP_FIXED — no munmap per object.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "alloc/alloc_iface.h"
#include "alloc/heap.h"
#include "core/degrade.h"
#include "core/registry.h"
#include "core/stats.h"
#include "vm/shadow_map.h"
#include "vm/va_freelist.h"

namespace dpg::core {

struct GuardConfig {
  vm::AliasStrategy strategy = vm::AliasStrategy::kMemfd;
  // Reuse shadow VAs from the shared free list (MAP_FIXED path). Disable to
  // model the naive never-reuse scheme.
  bool reuse_shadow_va = true;
  // §3.4 strategy 1: when the bytes held by freed-but-still-guarded spans
  // exceed this budget, the oldest freed spans are recycled (giving up
  // detection for those objects, as the paper accepts). 0 = unlimited.
  std::size_t freed_va_budget = 0;
  // Extension (paper §6 future work: combining with spatial checking): place
  // an anonymous PROT_NONE guard page after each object's shadow span, so
  // any access past the span's end traps as an overflow while the object is
  // still live. Page-granular: tail slack within the last data page is not
  // covered (the aliasing constraint pins the object's in-page offset).
  // Costs one extra virtual page per allocation, zero physical memory.
  bool trailing_guard_page = false;
  // Extension (paper §6: reducing the per-deallocation syscall cost): defer
  // protection of freed objects and apply it in address-sorted batches,
  // merging adjacent shadow spans into single mprotect calls. The underlying
  // free is deferred with it, so freed memory is never reused before it is
  // protected — soundness against *reuse* is kept; the trade is a bounded
  // window (at most protect_batch frees) during which a dangling use reads
  // stale-but-unreused data undetected. 0 = protect immediately (the
  // paper's configuration).
  std::size_t protect_batch = 0;
  // Degradation policy (core/degrade.h). nullptr = share the process-wide
  // governor; tests and benches pass their own to pin or observe the ladder.
  DegradationGovernor* governor = nullptr;
};

class ShadowEngine {
 public:
  // `shadow_freelist` may be shared across engines (the paper's free list is
  // "shared across pools"); pass nullptr to munmap spans on release instead.
  ShadowEngine(vm::PhysArena& arena, alloc::MallocLike& under,
               vm::VaFreeList* shadow_freelist, GuardConfig cfg = {});
  ~ShadowEngine();

  ShadowEngine(const ShadowEngine&) = delete;
  ShadowEngine& operator=(const ShadowEngine&) = delete;

  [[nodiscard]] void* malloc(std::size_t size, SiteId site = 0);
  void free(void* p, SiteId site = 0);
  [[nodiscard]] std::size_t size_of(const void* p) const;

  // calloc semantics: zeroed memory, overflow-checked count*size (returns
  // nullptr on overflow, like the C allocator contract).
  [[nodiscard]] void* calloc(std::size_t count, std::size_t size,
                             SiteId site = 0);
  // realloc semantics: grows/shrinks by move. The OLD pointer becomes a
  // guarded dangling pointer — the classic realloc-stale-alias bug class is
  // detected exactly like a free.
  [[nodiscard]] void* realloc(void* p, std::size_t new_size, SiteId site = 0);

  // Guard-elision fast path: serve the request straight from the underlying
  // (canonical) allocator — no shadow alias, no registry record, and the
  // matching free_unguarded issues no mprotect. Legal only for allocation
  // sites a static analysis classified SAFE (see compiler/uaf_analysis.h);
  // pointers from this path MUST be released via free_unguarded, never
  // free(). Counted in stats().guards_elided.
  [[nodiscard]] void* malloc_unguarded(std::size_t size, SiteId site = 0);
  void free_unguarded(void* p, SiteId site = 0);

  // Applies any deferred batched protections now (no-op when
  // protect_batch == 0 or nothing is pending).
  void flush_protections();

  // Releases *every* span this engine created (live and freed): purges the
  // registry and recycles the VAs. This is the pooldestroy path — legal only
  // when the caller can bound the lifetime of all pointers into the engine.
  void release_all();

  // Recycles freed spans until at least `bytes` are reclaimed (oldest first).
  // Returns bytes actually reclaimed. Used by the VA-budget strategy and GC.
  std::size_t reclaim_freed(std::size_t bytes);

  // --- conservative-GC support (advanced; see gc_scan.h) ---
  [[nodiscard]] std::vector<ObjectRecord*> freed_records();
  [[nodiscard]] std::vector<ObjectRecord*> live_records();
  void reclaim(ObjectRecord* rec);  // must be a freed record of this engine

  [[nodiscard]] GuardStats stats() const;
  // Live atomic counters for lock-free readers (metrics exporter, signal
  // dumps). See the memory-order contract in stats.h.
  [[nodiscard]] const GuardCounters& counters() const noexcept {
    return stats_;
  }
  [[nodiscard]] alloc::MallocLike& underlying() noexcept { return under_; }

  static constexpr std::size_t kGuardHeader = sizeof(std::uintptr_t);

  // The engine's governor (never null after construction).
  [[nodiscard]] DegradationGovernor& governor() noexcept { return *gov_; }

 private:
  void* do_alloc_locked(std::size_t size, SiteId site);
  void* guarded_alloc_locked(std::size_t size, SiteId site);
  void* degraded_alloc_locked(std::size_t size, SiteId site);
  void* alloc_canonical_locked(std::size_t bytes);
  void free_locked(std::unique_lock<std::mutex>& lock, void* p, SiteId site);
  void degraded_free_locked(void* p, SiteId site);
  void quarantine_locked(void* block, std::size_t bytes);
  std::size_t drain_quarantine_locked();
  void release_record_locked(ObjectRecord* rec, bool recycle_va);
  void unlink_locked(ObjectRecord* rec) noexcept;
  void flush_protections_locked();
  void enforce_budget_locked();

  vm::PhysArena& arena_;
  alloc::MallocLike& under_;
  vm::VaFreeList* shadow_freelist_;
  vm::ShadowMapper mapper_;
  GuardConfig cfg_;
  DegradationGovernor* gov_;

  // Delayed-reuse quarantine for degraded frees (and for canonical blocks
  // whose revocation mprotect was refused): the physical memory is parked,
  // not recycled, so a stale pointer reads stale-but-unreused data instead of
  // a new owner's — detection is suspended, never falsified (DESIGN.md §10).
  struct QuarantineEntry {
    void* block;
    std::size_t bytes;
  };
  std::deque<QuarantineEntry> quarantine_;
  std::size_t quarantine_bytes_ = 0;

  mutable std::mutex mu_;
  ObjectRecord head_;  // intrusive list sentinel, oldest first
  std::vector<ObjectRecord*> pending_protect_;  // batched-mode frees
  std::size_t freed_bytes_held_ = 0;
  GuardCounters stats_;
};

// GuardedHeap: drop-in malloc/free built from a SegregatedHeap inside a
// PhysArena plus a ShadowEngine. This is the "directly applicable to
// binaries" configuration (no pool allocation): just intercept malloc/free.
class GuardedHeap {
 public:
  explicit GuardedHeap(vm::PhysArena& arena, GuardConfig cfg = {});
  ~GuardedHeap();

  [[nodiscard]] void* malloc(std::size_t size, SiteId site = 0) {
    return engine_.malloc(size, site);
  }
  void free(void* p, SiteId site = 0) { engine_.free(p, site); }
  [[nodiscard]] void* calloc(std::size_t count, std::size_t size,
                             SiteId site = 0) {
    return engine_.calloc(count, size, site);
  }
  [[nodiscard]] void* realloc(void* p, std::size_t new_size, SiteId site = 0) {
    return engine_.realloc(p, new_size, site);
  }
  [[nodiscard]] std::size_t size_of(const void* p) const {
    return engine_.size_of(p);
  }

  [[nodiscard]] GuardStats stats() const { return engine_.stats(); }
  [[nodiscard]] alloc::HeapStats heap_stats() const { return heap_.stats(); }
  [[nodiscard]] ShadowEngine& engine() noexcept { return engine_; }
  [[nodiscard]] vm::VaFreeList& shadow_freelist() noexcept { return shadow_va_; }

 private:
  alloc::ArenaSource source_;
  alloc::SegregatedHeap heap_;
  vm::VaFreeList shadow_va_;
  ShadowEngine engine_;
};

}  // namespace dpg::core
