// ShadowEngine + GuardedHeap — the paper's primary contribution (Section 3.2).
//
// Allocation: the request is passed to the underlying allocator with the size
// incremented by one word; the word before the user object records the
// canonical address. A fresh virtual page (or run) aliasing the canonical
// physical pages is created, and the caller receives the object *on the
// shadow page at the same offset within the page*. The underlying allocator
// still believes the object lives at the canonical address.
//
// Deallocation: the shadow span is mprotect(PROT_NONE)'d — every future
// read/write/free through any pointer to the object traps — and the
// *canonical* address is handed back to the underlying allocator, so the
// physical memory is reused exactly as in the original program.
//
// Shadow virtual pages are reused only when their owner proves no pointers
// remain: pool destruction (GuardedPool), budgeted reclamation (§3.4
// strategy 1), or a conservative GC pass (§3.4 strategy 2) push spans onto a
// shared VA free list, and new shadow mappings are placed over recycled
// addresses with MAP_FIXED — no munmap per object.
//
// Scaling layers (DESIGN.md §11):
//
//   Slot magazines   one bulk mmap aliases a whole window of N canonical
//                    pages; objects landing in the window carve their shadow
//                    pages out of it with zero syscalls. A window slot serves
//                    one object per magazine generation (two objects on the
//                    same canonical page need two aliases), so collisions
//                    fall back to the per-object path — dense small-object
//                    packing costs what the paper's scheme cost, page-sized
//                    and marching allocations amortize to ~1/N.
//   Revocation queue freed spans accumulate (canonical reuse deferred with
//                    them), are address-sorted, coalesced into maximal runs,
//                    and revoked with one mprotect per run; flushed on batch
//                    count, on byte budget, and at pooldestroy/teardown.
//   Remote frees     cross-shard frees transition the record kLive->kFreed
//                    at the free site (double-free detection stays exact and
//                    immediate) and queue the revocation on the owning
//                    shard's lock-free MPSC list, drained under that shard's
//                    lock (see ShardedHeap, core/sharded_heap.h).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "alloc/alloc_iface.h"
#include "alloc/heap.h"
#include "core/degrade.h"
#include "core/registry.h"
#include "core/sampled.h"
#include "core/stats.h"
#include "vm/revoke.h"
#include "vm/shadow_map.h"
#include "vm/va_freelist.h"

namespace dpg::core {

struct GuardConfig {
  vm::AliasStrategy strategy = vm::AliasStrategy::kMemfd;
  // Reuse shadow VAs from the shared free list (MAP_FIXED path). Disable to
  // model the naive never-reuse scheme.
  bool reuse_shadow_va = true;
  // §3.4 strategy 1: when the bytes held by freed-but-still-guarded spans
  // exceed this budget, the oldest freed spans are recycled (giving up
  // detection for those objects, as the paper accepts). 0 = unlimited.
  std::size_t freed_va_budget = 0;
  // Extension (paper §6 future work: combining with spatial checking): place
  // an anonymous PROT_NONE guard page after each object's shadow span, so
  // any access past the span's end traps as an overflow while the object is
  // still live. Page-granular: tail slack within the last data page is not
  // covered (the aliasing constraint pins the object's in-page offset).
  // Costs one extra virtual page per allocation, zero physical memory.
  // Incompatible with magazines (the guard page must NOT alias the arena);
  // when set, allocations take the per-object path.
  bool trailing_guard_page = false;
  // Extension (paper §6: reducing the per-deallocation syscall cost): defer
  // protection of freed objects and apply it in address-sorted batches,
  // merging adjacent shadow spans into single mprotect calls. The underlying
  // free is deferred with it, so freed memory is never reused before it is
  // protected — soundness against *reuse* is kept; the trade is a bounded
  // window (at most protect_batch frees / protect_batch_bytes span bytes)
  // during which a dangling use reads stale-but-unreused data undetected.
  // Double frees stay exact throughout (the record state transition, not the
  // page protection, detects them). 0 = protect immediately (the paper's
  // configuration).
  std::size_t protect_batch = 0;
  // Byte-budget flush for the revocation queue: pending shadow-span bytes
  // above this force a flush even before protect_batch frees accumulate,
  // bounding the stale-but-unreused memory the queue can pin. 0 = no byte
  // trigger. Either trigger alone enables the queue.
  std::size_t protect_batch_bytes = 0;
  // Slot magazines: bulk-alias window size in pages (DPG_MAGAZINE_SLOTS).
  // One mmap maps `magazine_slots` contiguous canonical pages; allocations
  // whose canonical span lands on unclaimed slots of the window's current
  // magazine get their shadow pages with zero syscalls. 0 or 1 = off (the
  // paper's per-object alias). Clamped to [2, kMaxMagazineSlots].
  std::size_t magazine_slots = 0;
  // Live-generation population cap per engine. Windows tile the arena's
  // file-offset space, so a churn-heavy workload keeps first-touching new
  // windows; without a cap every partially-claimed generation (one
  // window-sized shadow mapping each) lives until release_all — unbounded
  // RSS/VMA growth that the endurance soak flags as a leak. Over the cap the
  // fresh-generation path retires another generation first (its window falls
  // back to the per-object alias until re-touched). 0 = unbounded.
  std::size_t magazine_windows = 256;
  // Degradation policy (core/degrade.h). nullptr = share the process-wide
  // governor; tests and benches pass their own to pin or observe the ladder.
  DegradationGovernor* governor = nullptr;
  // Exact double-free ledger for the sampled rung's unguarded fast path
  // (core/sampled.h). Must be shared across every engine that shares an
  // underlying heap (ShardedHeap wires its own in); nullptr = the engine
  // keeps a private table, correct for single-engine owners (GuardedHeap,
  // pools whose frees route back to the allocating pool).
  SampledTable* sampled_table = nullptr;
  // Revocation backend (vm/revoke.h). kAuto keeps the legacy behaviour (the
  // batch knobs above decide) unless DPG_REVOKE_BACKEND overrides it.
  // kMprotect forces the per-free path (batch knobs cleared), kBatched forces
  // the queue (protect_batch defaults to 64 if neither knob is set), kPkey
  // retags freed spans to the revoked protection key — composing with
  // whatever batching is configured — and falls back to kBatched when
  // pkey_alloc is refused.
  vm::RevokeBackend revoke_backend = vm::RevokeBackend::kAuto;
  // Shared Revoker (ShardedHeap passes one so all shards deny a single key
  // and pay one pkey_alloc); nullptr = the engine owns a private one.
  vm::Revoker* revoker = nullptr;
  // MAP_FIXED VA recycling: released shadow spans and retired magazine runs
  // park on a per-shard list (bounded to this many discontiguous runs)
  // instead of round-tripping through the shared VaFreeList. Parked spans
  // coalesce with contiguous neighbours, so a dying magazine generation's
  // slots reassemble into the window-sized run the next generation claims
  // with one MAP_FIXED re-alias — no freelist mutex, no trim-drain munmap
  // storm, no VMA churn. Overflow and teardown fall through to the shared
  // freelist as before. 0 = off (legacy behaviour).
  std::size_t window_recycle_cap = 0;
};

class ShadowEngine {
 public:
  // `shadow_freelist` may be shared across engines (the paper's free list is
  // "shared across pools"); pass nullptr to munmap spans on release instead.
  ShadowEngine(vm::PhysArena& arena, alloc::MallocLike& under,
               vm::VaFreeList* shadow_freelist, GuardConfig cfg = {});
  ~ShadowEngine();

  ShadowEngine(const ShadowEngine&) = delete;
  ShadowEngine& operator=(const ShadowEngine&) = delete;

  [[nodiscard]] void* malloc(std::size_t size, SiteId site = 0);
  void free(void* p, SiteId site = 0);
  [[nodiscard]] std::size_t size_of(const void* p) const;

  // calloc semantics: zeroed memory, overflow-checked count*size (returns
  // nullptr on overflow, like the C allocator contract).
  [[nodiscard]] void* calloc(std::size_t count, std::size_t size,
                             SiteId site = 0);
  // realloc semantics: grows/shrinks by move. The OLD pointer becomes a
  // guarded dangling pointer — the classic realloc-stale-alias bug class is
  // detected exactly like a free.
  [[nodiscard]] void* realloc(void* p, std::size_t new_size, SiteId site = 0);

  // Guard-elision fast path: serve the request straight from the underlying
  // (canonical) allocator — no shadow alias, no registry record, and the
  // matching free_unguarded issues no mprotect. Legal only for allocation
  // sites a static analysis classified SAFE (see compiler/uaf_analysis.h);
  // pointers from this path MUST be released via free_unguarded, never
  // free(). Counted in stats().guards_elided.
  [[nodiscard]] void* malloc_unguarded(std::size_t size, SiteId site = 0);
  void free_unguarded(void* p, SiteId site = 0);

  // Cross-shard free: callable from ANY thread, lock-free on this engine.
  // The record must be one of this engine's (rec->owner_shard routing is
  // ShardedHeap's job). Transitions kLive->kFreed via CAS right here — a
  // double free, including one racing the owner, raises immediately with an
  // exact report — then pushes the record onto the MPSC remote list; the
  // revocation mprotect and the canonical return happen when the owner (or
  // any caller, via drain_remote) next drains. Until that drain the span is
  // freed-but-unprotected: the same bounded detection-delay window as the
  // revocation queue, shrunk to zero by draining.
  void free_remote(void* p, SiteId site = 0);

  // Drains the remote-free list now (takes the engine lock; any thread may
  // call). Returns the number of remote frees revoked.
  std::size_t drain_remote();

  // Applies any deferred batched protections now (no-op when the revocation
  // queue is disabled or empty). Also drains the remote-free list first, so
  // after this call every free issued-and-routed so far is revoked.
  void flush_protections();

  // Releases *every* span this engine created (live and freed): purges the
  // registry and recycles the VAs. This is the pooldestroy path — legal only
  // when the caller can bound the lifetime of all pointers into the engine
  // (including concurrent remote frees: callers must quiesce other threads).
  void release_all();

  // Recycles freed spans until at least `bytes` are reclaimed (oldest first).
  // Returns bytes actually reclaimed. Used by the VA-budget strategy and GC.
  std::size_t reclaim_freed(std::size_t bytes);

  // --- conservative-GC support (advanced; see gc_scan.h) ---
  [[nodiscard]] std::vector<ObjectRecord*> freed_records();
  [[nodiscard]] std::vector<ObjectRecord*> live_records();
  void reclaim(ObjectRecord* rec);  // must be a freed record of this engine

  [[nodiscard]] GuardStats stats() const;
  // Live atomic counters for lock-free readers (metrics exporter, signal
  // dumps). See the memory-order contract in stats.h.
  [[nodiscard]] const GuardCounters& counters() const noexcept {
    return stats_;
  }
  // Writable counters for companion lanes (core/lockandkey.h) that account
  // against this engine. Lane writers bump relaxed atomics without the
  // engine lock: per-counter integrity holds, and the lane's counters have
  // no cross-counter invariant with the engine's own (see stats.h).
  [[nodiscard]] GuardCounters& lane_counters() noexcept { return stats_; }
  [[nodiscard]] alloc::MallocLike& underlying() noexcept { return under_; }

  static constexpr std::size_t kGuardHeader = sizeof(std::uintptr_t);
  static constexpr std::size_t kMaxMagazineSlots = 256;

  // The engine's governor (never null after construction).
  [[nodiscard]] DegradationGovernor& governor() noexcept { return *gov_; }

  // Shard identity (stamped into every record for cross-shard free routing).
  void set_shard_id(std::uint32_t id) noexcept { shard_id_ = id; }
  [[nodiscard]] std::uint32_t shard_id() const noexcept { return shard_id_; }

  // Diagnostics for tests/benches: remote frees queued but not yet drained,
  // and frees sitting in the revocation queue.
  [[nodiscard]] std::size_t remote_pending() const noexcept {
    return remote_pending_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pending_revocations() const;
  // Bytes currently parked in the delayed-reuse quarantine and live magazine
  // generations — the soak harness samples both for drift.
  [[nodiscard]] std::size_t quarantine_depth_bytes() const;
  [[nodiscard]] std::size_t magazine_count() const;

  // --- oracle introspection (src/fuzz, tests) ---
  // Resolves a pointer previously returned by malloc to its record, or
  // nullptr for degraded/unguarded/foreign pointers. Interior pointers
  // resolve to nullptr too: the fuzzer uses this to learn whether an
  // allocation ended up guarded, so only exact user pointers count.
  [[nodiscard]] static const ObjectRecord* record_of(const void* p);
  // True when `p` is a freed guarded object whose free has been fully
  // processed by the owner engine — revocation attempted, canonical block
  // returned or quarantined. While mprotect is not being fault-injected
  // this is exactly "the span is PROT_NONE: a dereference MUST trap";
  // false means the free still sits in the revocation queue or on a remote
  // list, the documented bounded window where a stale (unreused) read is
  // legal. Under an armed mprotect fault plan a refused revocation also
  // reports true with the canonical block parked in quarantine, so the
  // stale read then sees unreused bytes instead of trapping.
  [[nodiscard]] bool revocation_applied(const void* p) const;

 private:
  // One magazine generation: a bulk alias of a whole canonical window. Slots
  // are claimed (bit set) once and never reused within the generation; the
  // generation retires when fully claimed or at release_all, recycling any
  // never-claimed slots.
  struct Magazine {
    std::uintptr_t shadow_base = 0;
    std::array<std::uint64_t, kMaxMagazineSlots / 64> claimed{};
    std::size_t free_slots = 0;
    // Collisions (slot already claimed) observed against this generation;
    // past a threshold the generation retires so heavy canonical-page reuse
    // gets a fresh set of slots instead of falling back forever.
    std::uint32_t misses = 0;
  };

  void* do_alloc_locked(std::size_t size, SiteId site);
  void* guarded_alloc_locked(std::size_t size, SiteId site);
  void* degraded_alloc_locked(std::size_t size, SiteId site);
  void* sampled_fast_alloc_locked(std::size_t size, SiteId site);
  void* fallback_alloc_locked(std::size_t size, SiteId site);
  void* alloc_canonical_locked(std::size_t bytes);
  void* install_record_locked(void* shadow_base, std::size_t span_len,
                              std::size_t guard, std::uintptr_t canon_addr,
                              std::uintptr_t first_page, std::size_t size,
                              SiteId site);
  void* magazine_claim_locked(std::uintptr_t first_page, std::size_t data_span);
  void* take_recycled_locked(std::size_t len) noexcept;
  bool park_recycled_locked(vm::PageRange span);
  void drain_recycled_locked();
  void retire_magazine_locked(std::uintptr_t window_base, Magazine& m);
  void drop_magazines_locked();
  void free_locked(std::unique_lock<std::mutex>& lock, void* p, SiteId site);
  void degraded_free_locked(void* p, SiteId site);
  void quarantine_locked(void* block, std::size_t bytes);
  std::size_t drain_quarantine_locked();
  void revoke_locked(ObjectRecord* rec);
  void maybe_flush_locked();
  std::size_t drain_remote_locked();
  void release_record_locked(ObjectRecord* rec, bool recycle_va);
  void unlink_locked(ObjectRecord* rec) noexcept;
  void flush_protections_locked();
  void enforce_budget_locked();
  [[nodiscard]] bool degraded_pointers_possible() const noexcept;

  vm::PhysArena& arena_;
  alloc::MallocLike& under_;
  vm::VaFreeList* shadow_freelist_;
  vm::ShadowMapper mapper_;
  GuardConfig cfg_;
  DegradationGovernor* gov_;
  std::uint32_t shard_id_ = 0;

  // Sampled-rung fast-path ledger: the config's shared table, else private.
  SampledTable own_sampled_;
  SampledTable* sampled_;

  // Revocation backend: the config's shared Revoker, else private. Resolved
  // (and, for kPkey, the key allocated) in the constructor.
  vm::Revoker own_revoker_;
  vm::Revoker* revoker_;

  // Per-shard MAP_FIXED recycle cache (cfg_.window_recycle_cap runs max,
  // sorted by base, contiguous neighbours merged): released shadow spans and
  // retired magazine runs wait here to be re-aliased, bypassing the shared
  // freelist. Drained to the freelist (or unmapped) at release_all.
  std::vector<vm::PageRange> va_recycle_;

  // Slot magazines: canonical-window base -> current generation.
  std::size_t magazine_slots_ = 0;  // validated; 0 = off
  std::size_t magazine_bytes_ = 0;
  std::unordered_map<std::uintptr_t, Magazine> magazines_;

  // Cross-shard remote-free list (MPSC: producers CAS-push lock-free,
  // consumer exchanges the head under mu_).
  std::atomic<ObjectRecord*> remote_head_{nullptr};
  std::atomic<std::size_t> remote_pending_{0};
  std::size_t remote_drain_threshold_ = 256;

  // Delayed-reuse quarantine for degraded frees (and for canonical blocks
  // whose revocation mprotect was refused): the physical memory is parked,
  // not recycled, so a stale pointer reads stale-but-unreused data instead of
  // a new owner's — detection is suspended, never falsified (DESIGN.md §10).
  struct QuarantineEntry {
    void* block;
    std::size_t bytes;
  };
  std::deque<QuarantineEntry> quarantine_;
  std::size_t quarantine_bytes_ = 0;

  mutable std::mutex mu_;
  ObjectRecord head_;  // intrusive list sentinel, oldest first
  std::vector<ObjectRecord*> pending_protect_;  // revocation queue
  std::size_t pending_protect_bytes_ = 0;
  std::size_t freed_bytes_held_ = 0;
  GuardCounters stats_;
};

// GuardedHeap: drop-in malloc/free built from a SegregatedHeap inside a
// PhysArena plus a ShadowEngine. This is the "directly applicable to
// binaries" configuration (no pool allocation): just intercept malloc/free.
// Single-engine; the multi-core configuration is ShardedHeap
// (core/sharded_heap.h).
class GuardedHeap {
 public:
  explicit GuardedHeap(vm::PhysArena& arena, GuardConfig cfg = {});
  ~GuardedHeap();

  [[nodiscard]] void* malloc(std::size_t size, SiteId site = 0) {
    return engine_.malloc(size, site);
  }
  void free(void* p, SiteId site = 0) { engine_.free(p, site); }
  [[nodiscard]] void* calloc(std::size_t count, std::size_t size,
                             SiteId site = 0) {
    return engine_.calloc(count, size, site);
  }
  [[nodiscard]] void* realloc(void* p, std::size_t new_size, SiteId site = 0) {
    return engine_.realloc(p, new_size, site);
  }
  [[nodiscard]] std::size_t size_of(const void* p) const {
    return engine_.size_of(p);
  }

  [[nodiscard]] GuardStats stats() const { return engine_.stats(); }
  [[nodiscard]] alloc::HeapStats heap_stats() const { return heap_.stats(); }
  [[nodiscard]] ShadowEngine& engine() noexcept { return engine_; }
  [[nodiscard]] vm::VaFreeList& shadow_freelist() noexcept { return shadow_va_; }

 private:
  alloc::ArenaSource source_;
  alloc::SegregatedHeap heap_;
  vm::VaFreeList shadow_va_;
  ShadowEngine engine_;
};

}  // namespace dpg::core
