#include "core/runtime.h"

#include "obs/metrics.h"

namespace dpg::core {

Runtime& Runtime::instance(const RuntimeConfig& cfg) {
  // Leaked intentionally: the fault handler and any late frees must keep
  // working during static destruction.
  static Runtime* rt = [&cfg] {
    auto* r = new Runtime(cfg);
    r->export_counters();
    return r;
  }();
  return *rt;
}

void Runtime::export_counters() noexcept {
  const GuardCounters& c = heap_.engine().counters();
  obs::register_counter("dpg_allocations", &c.allocations);
  obs::register_counter("dpg_frees", &c.frees);
  obs::register_counter("dpg_shadow_pages_mapped", &c.shadow_pages_mapped);
  obs::register_counter("dpg_shadow_pages_reused", &c.shadow_pages_reused);
  obs::register_counter("dpg_va_reclaimed_pages", &c.va_reclaimed_pages);
  obs::register_counter("dpg_double_frees", &c.double_frees);
  obs::register_counter("dpg_invalid_frees", &c.invalid_frees);
  obs::register_counter("dpg_protect_calls", &c.protect_calls);
  obs::register_counter("dpg_protect_calls_saved", &c.protect_calls_saved);
  obs::register_counter("dpg_guards_elided", &c.guards_elided);
  obs::register_counter("dpg_heap_degraded_allocs", &c.degraded_allocs);
  obs::register_counter("dpg_quarantined_frees", &c.quarantined_frees);
  obs::register_counter("dpg_guard_failures", &c.guard_failures);
  obs::register_counter("dpg_live_records", &c.live_records);
  obs::register_counter("dpg_guarded_bytes", &c.guarded_bytes);
  // The process governor registers the dpg_degrade_* family on first use;
  // touching it here guarantees those counters exist in every export even if
  // no degradation ever occurs.
  (void)DegradationGovernor::process();
}

void* dpg_malloc(std::size_t size) { return Runtime::instance().heap().malloc(size); }

void dpg_free(void* p) { Runtime::instance().heap().free(p); }

void* dpg_calloc(std::size_t count, std::size_t size) {
  return Runtime::instance().heap().calloc(count, size);
}

void* dpg_realloc(void* p, std::size_t new_size) {
  return Runtime::instance().heap().realloc(p, new_size);
}

}  // namespace dpg::core
