#include "core/runtime.h"

namespace dpg::core {

Runtime& Runtime::instance(const RuntimeConfig& cfg) {
  // Leaked intentionally: the fault handler and any late frees must keep
  // working during static destruction.
  static Runtime* rt = new Runtime(cfg);
  return *rt;
}

void* dpg_malloc(std::size_t size) { return Runtime::instance().heap().malloc(size); }

void dpg_free(void* p) { Runtime::instance().heap().free(p); }

void* dpg_calloc(std::size_t count, std::size_t size) {
  return Runtime::instance().heap().calloc(count, size);
}

void* dpg_realloc(void* p, std::size_t new_size) {
  return Runtime::instance().heap().realloc(p, new_size);
}

}  // namespace dpg::core
