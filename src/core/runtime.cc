#include "core/runtime.h"

#include <iterator>

#include "obs/metrics.h"

namespace dpg::core {

Runtime& Runtime::instance(const RuntimeConfig& cfg) {
  // Leaked intentionally: the fault handler and any late frees must keep
  // working during static destruction.
  static Runtime* rt = [&cfg] {
    auto* r = new Runtime(cfg);
    r->export_counters();
    return r;
  }();
  return *rt;
}

namespace {

// Dump-time shard rollup for one GuardCounters field. Runs on every exporter
// path including the SIGUSR1 handler: relaxed loads and adds only.
struct ShardSumCtx {
  const ShardedHeap* heap;
  std::atomic<std::uint64_t> GuardCounters::* field;
};

std::uint64_t sum_shards(const void* ctx) noexcept {
  const auto* c = static_cast<const ShardSumCtx*>(ctx);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < c->heap->shards(); ++i) {
    total += (c->heap->engine(i).counters().*(c->field))
                 .load(std::memory_order_relaxed);
  }
  return total;
}

struct NamedField {
  const char* name;
  std::atomic<std::uint64_t> GuardCounters::* field;
};

constexpr NamedField kExported[] = {
    {"dpg_allocations", &GuardCounters::allocations},
    {"dpg_frees", &GuardCounters::frees},
    {"dpg_shadow_pages_mapped", &GuardCounters::shadow_pages_mapped},
    {"dpg_shadow_pages_reused", &GuardCounters::shadow_pages_reused},
    {"dpg_va_reclaimed_pages", &GuardCounters::va_reclaimed_pages},
    {"dpg_double_frees", &GuardCounters::double_frees},
    {"dpg_invalid_frees", &GuardCounters::invalid_frees},
    {"dpg_protect_calls", &GuardCounters::protect_calls},
    {"dpg_protect_calls_saved", &GuardCounters::protect_calls_saved},
    {"dpg_guards_elided", &GuardCounters::guards_elided},
    // Per-scheme allocation split (the chooser's three lanes). Unguarded and
    // page-guarded alias the existing lane counters under scheme-named
    // series so dashboards and .dpgcrash dumps can compare lanes directly.
    {"dpg_sites_unguarded", &GuardCounters::guards_elided},
    {"dpg_sites_tagged", &GuardCounters::tagged_allocs},
    {"dpg_sites_page_guarded", &GuardCounters::allocations},
    {"dpg_tagged_frees", &GuardCounters::tagged_frees},
    {"dpg_tag_mismatches", &GuardCounters::tag_mismatches},
    {"dpg_heap_degraded_allocs", &GuardCounters::degraded_allocs},
    {"dpg_quarantined_frees", &GuardCounters::quarantined_frees},
    {"dpg_sampled_allocs", &GuardCounters::sampled_allocs},
    {"dpg_sampled_frees", &GuardCounters::sampled_frees},
    {"dpg_guard_failures", &GuardCounters::guard_failures},
    {"dpg_magazine_maps", &GuardCounters::magazine_maps},
    {"dpg_magazine_hits", &GuardCounters::magazine_hits},
    {"dpg_magazine_slots_recycled", &GuardCounters::magazine_slots_recycled},
    {"dpg_revoke_batches", &GuardCounters::revoke_batches},
    {"dpg_revoke_coalesced_pages", &GuardCounters::revoke_coalesced_pages},
    {"dpg_revoked_spans", &GuardCounters::revoked_spans},
    {"dpg_remote_frees", &GuardCounters::remote_frees},
    {"dpg_live_records", &GuardCounters::live_records},
    {"dpg_guarded_bytes", &GuardCounters::guarded_bytes},
};

}  // namespace

void Runtime::export_counters() noexcept {
  // The ctx array is immortal alongside the Runtime singleton; the exporter
  // keeps raw pointers into it.
  static ShardSumCtx ctxs[std::size(kExported)];
  for (std::size_t i = 0; i < std::size(kExported); ++i) {
    ctxs[i] = ShardSumCtx{&heap_, kExported[i].field};
    obs::register_counter_fn(kExported[i].name, &sum_shards, &ctxs[i]);
  }
  // The process governor registers the dpg_degrade_* family on first use;
  // touching it here guarantees those counters exist in every export even if
  // no degradation ever occurs.
  (void)DegradationGovernor::process();
}

void* dpg_malloc(std::size_t size) { return Runtime::instance().heap().malloc(size); }

void dpg_free(void* p) { Runtime::instance().heap().free(p); }

void* dpg_calloc(std::size_t count, std::size_t size) {
  return Runtime::instance().heap().calloc(count, size);
}

void* dpg_realloc(void* p, std::size_t new_size) {
  return Runtime::instance().heap().realloc(p, new_size);
}

}  // namespace dpg::core
