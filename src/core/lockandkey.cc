#include "core/lockandkey.h"

#include <atomic>
#include <mutex>

#include "core/fault_manager.h"
#include "obs/metrics.h"

namespace dpg::core {

namespace {

// Aperiodic (golden-ratio) constant: no byte-shifted overlay of header
// words can reconstruct it, so an interior pointer's pseudo-header fails
// the magic check deterministically.
constexpr std::uint64_t kMagic = 0x9E3779B97F4A7C15ULL;

struct SlotHeader {
  std::uint64_t magic;
  std::uint64_t capacity;
  std::uint64_t sites;  // alloc_site | last_free_site << 32
  std::uint64_t generation;
};
static_assert(sizeof(SlotHeader) == LockAndKeyLane::kHeaderBytes);

SlotHeader* header_of(void* payload) noexcept {
  return reinterpret_cast<SlotHeader*>(static_cast<char*>(payload) -
                                       LockAndKeyLane::kHeaderBytes);
}

std::uint64_t tag_of(std::uint64_t addr) noexcept {
  return (addr >> LockAndKeyLane::kTagShift) & LockAndKeyLane::kTagMask;
}

std::atomic<std::uint64_t> g_access_mismatches{0};

DanglingReport stale_report(std::uint64_t addr, const SlotHeader* hdr) {
  DanglingReport report;
  report.kind = AccessKind::kTagMismatch;
  report.fault_address = static_cast<std::uintptr_t>(addr);
  // The stale pointer itself is the best object identity the lane has: the
  // slot's header describes the *current* generation's owner, so only the
  // size (a slot property) is copied from it. alloc/free sites stay 0 —
  // claiming another object's sites would misdirect the diagnosis.
  report.object_base = static_cast<std::uintptr_t>(addr);
  report.object_size =
      hdr != nullptr ? static_cast<std::size_t>(hdr->capacity) : 0;
  return report;
}

}  // namespace

LockAndKeyLane::LockAndKeyLane(alloc::MallocLike& under, GuardCounters& stats,
                               unsigned tag_bits)
    : under_(under),
      stats_(stats),
      tag_bits_(tag_bits < 2        ? 2
                : tag_bits > kMaxTagBits ? kMaxTagBits
                                         : tag_bits),
      max_gen_((std::uint64_t{1} << tag_bits_) - 1) {
  // Register the process-wide access-mismatch counter once (the registry
  // does not dedupe names); per-lane counters live in `stats`.
  static std::once_flag once;
  std::call_once(once, [] {
    obs::register_counter("dpg_tag_access_mismatches", &g_access_mismatches);
  });
}

LockAndKeyLane::~LockAndKeyLane() {
  // Recycled slots go back to the underlying allocator; live slots are the
  // owner's problem (a pool destroy reclaims their extents wholesale).
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [cap, list] : freelists_) {
    for (void* payload : list) {
      under_.free(static_cast<char*>(payload) - kHeaderBytes);
    }
  }
}

void* LockAndKeyLane::alloc(std::size_t size, SiteId site) {
  const std::size_t cap = size == 0 ? 8 : (size + 7) & ~std::size_t{7};
  void* payload = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = freelists_.find(cap);
    if (it != freelists_.end() && !it->second.empty()) {
      payload = it->second.back();
      it->second.pop_back();
    }
  }
  if (payload == nullptr) {
    void* block = under_.malloc(kHeaderBytes + cap);
    if (block == nullptr) return nullptr;
    payload = static_cast<char*>(block) + kHeaderBytes;
    SlotHeader* hdr = header_of(payload);
    hdr->magic = kMagic;
    hdr->capacity = cap;
    hdr->generation = 1;  // locks start at 1; 0 never a valid key
  }
  SlotHeader* hdr = header_of(payload);
  hdr->sites = site;  // last free site cleared: the slot has a new owner
  stats_.tagged_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t addr = reinterpret_cast<std::uint64_t>(payload) |
                             (hdr->generation << kTagShift);
  return reinterpret_cast<void*>(addr);
}

void LockAndKeyLane::free(void* tagged, SiteId site) {
  const auto addr = reinterpret_cast<std::uint64_t>(tagged);
  const std::uint64_t key = tag_of(addr);
  void* payload = strip(addr);
  SlotHeader* hdr = header_of(payload);
  if (key == 0 || hdr->magic != kMagic) {
    // Interior or foreign pointer: no readable slot header. Same verdict as
    // the page lane's unknown-pointer free.
    stats_.invalid_frees.fetch_add(1, std::memory_order_relaxed);
    DanglingReport report;
    report.kind = AccessKind::kInvalidFree;
    report.fault_address = static_cast<std::uintptr_t>(addr);
    report.free_site = site;
    FaultManager::instance().raise_software(report);
  }
  if (hdr->generation != key) {
    // Stale free: double free or use-after-free of the slot's previous
    // generation. One report kind — the lane cannot tell the two apart.
    stats_.tag_mismatches.fetch_add(1, std::memory_order_relaxed);
    DanglingReport report = stale_report(addr, hdr);
    report.kind = AccessKind::kTagMismatch;
    report.free_site = site;
    FaultManager::instance().raise_software(report);
  }
  hdr->sites |= static_cast<std::uint64_t>(site) << 32;
  hdr->generation = hdr->generation == max_gen_ ? 1 : hdr->generation + 1;
  stats_.tagged_frees.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  freelists_[static_cast<std::size_t>(hdr->capacity)].push_back(payload);
}

void* LockAndKeyLane::check_access(std::uint64_t addr) {
  void* payload = strip(addr);
  const SlotHeader* hdr = header_of(payload);
  if (hdr->magic == kMagic && hdr->generation == tag_of(addr)) {
    return payload;
  }
  // Key/lock disagreement (or the slot's lane is gone): a dangling use,
  // reported synchronously — the software twin of the MMU trap.
  g_access_mismatches.fetch_add(1, std::memory_order_relaxed);
  FaultManager::instance().raise_software(
      stale_report(addr, hdr->magic == kMagic ? hdr : nullptr));
}

bool LockAndKeyLane::tag_matches(std::uint64_t addr) noexcept {
  const SlotHeader* hdr = header_of(strip(addr));
  return hdr->magic == kMagic && hdr->generation == tag_of(addr);
}

std::uint64_t LockAndKeyLane::access_mismatches() noexcept {
  return g_access_mismatches.load(std::memory_order_relaxed);
}

}  // namespace dpg::core
