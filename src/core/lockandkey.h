// LockAndKeyLane — the middle detection lane between guard elision and the
// paper's page guard (DESIGN.md §14).
//
// The paper concedes an ~11x worst case on allocation-intensive workloads
// because every non-proven site pays two syscalls per object lifetime.
// DangKiller's implicit identifier checks and xTag's software pointer
// tagging (PAPERS.md) show the cheaper middle: embed a generation tag in
// the pointer's unused high bits (the *key*) and keep a per-slot generation
// word in memory (the *lock*); every load/store/free compares the two. No
// shadow alias, no mprotect, no VA burn — just one extra load and branch on
// each mediated access.
//
// Layout. Each slot is carved from the underlying (canonical) allocator
// with a 4-word header in front of the payload:
//
//     payload-32  magic          constant; interior frees and foreign
//                                pointers fail this deterministically
//     payload-24  capacity       payload bytes (freelist bin)
//     payload-16  sites          alloc_site | last_free_site << 32
//     payload-8   generation     the lock; 1..(2^tag_bits - 1), 0 skipped
//     payload     user data
//
// A returned pointer is `payload | generation << kTagShift`. Free checks
// key == lock, then bumps the lock and recycles the slot onto a per-size
// freelist — the slot (and its generation word) stays inside the lane, so
// every stale pointer into it keeps a live lock to disagree with.
//
// Precision trade (mirrored exactly by the fuzz oracle): the generation
// counter wraps after 2^tag_bits - 1 frees of one slot. A pointer stale
// across exactly a whole wrap cycle carries a matching key again and is not
// detected — the *tag reuse window*. The page-guard lane has no such
// window; the scheme chooser therefore reserves this lane for MAY-UAF
// small-object allocation-hot sites where the page guard's cost is the
// paper's conceded worst case. Objects outliving the lane (pool destroy)
// are out of scope, as for the page lane's released spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "alloc/alloc_iface.h"
#include "core/report.h"
#include "core/stats.h"

namespace dpg::core {

class LockAndKeyLane {
 public:
  static constexpr unsigned kTagShift = 48;  // x86-64 user VA is 47-bit
  static constexpr unsigned kMaxTagBits = 15;
  static constexpr unsigned kDefaultTagBits = kMaxTagBits;
  static constexpr std::uint64_t kTagMask =
      (std::uint64_t{1} << kMaxTagBits) - 1;
  static constexpr std::size_t kHeaderBytes = 4 * sizeof(std::uint64_t);

  // `under` outlives the lane. Counter bumps (tagged_allocs/tagged_frees/
  // tag_mismatches, invalid_frees) go to `stats` — pass the owning engine's
  // counters so the lane shows up in the same stats()/metrics rollups as
  // the other lanes. `tag_bits` (clamped to [2, 15]) narrows the generation
  // space; tests and fuzz cells use small widths to force wraps.
  LockAndKeyLane(alloc::MallocLike& under, GuardCounters& stats,
                 unsigned tag_bits = kDefaultTagBits);
  ~LockAndKeyLane();

  LockAndKeyLane(const LockAndKeyLane&) = delete;
  LockAndKeyLane& operator=(const LockAndKeyLane&) = delete;

  // Returns a tagged pointer (strip() before raw access), or nullptr when
  // the underlying allocator refuses.
  [[nodiscard]] void* alloc(std::size_t size, SiteId site = 0);

  // Key-vs-lock checked free. A stale key raises a kTagMismatch report and
  // a bad header (interior/foreign pointer) a kInvalidFree report through
  // FaultManager::raise_software — same disposition as a hardware trap.
  void free(void* tagged, SiteId site = 0);

  // --- static access protocol (the guarded interpreter / harness side) ---
  // The checks are static because a slot header is self-describing: the
  // mediator of a load/store knows only the pointer, not the owning lane.

  [[nodiscard]] static bool is_tagged(std::uint64_t addr) noexcept {
    return ((addr >> kTagShift) & kTagMask) != 0;
  }
  [[nodiscard]] static void* strip(std::uint64_t addr) noexcept {
    return reinterpret_cast<void*>(addr &
                                   ~(kTagMask << kTagShift));
  }

  // Load/store gate: verifies the pointer's key against the slot's lock and
  // returns the stripped payload address. On mismatch (stale pointer, or a
  // slot whose lane died) raises a kTagMismatch report — with a probe armed
  // (catch_dangling) that unwinds, otherwise the process aborts, exactly
  // like an MMU trap. `addr` must satisfy is_tagged().
  [[nodiscard]] static void* check_access(std::uint64_t addr);

  // Oracle introspection (src/fuzz): does the pointer's key currently match
  // its slot's lock? True for live objects — and, after a generation wrap,
  // for stale pointers inside the tag reuse window (the documented
  // precision hole the oracle mirrors). Never raises.
  [[nodiscard]] static bool tag_matches(std::uint64_t addr) noexcept;

  // Access-path mismatches detected by check_access (process-wide; the
  // free-path ones are in GuardStats::tag_mismatches per engine).
  [[nodiscard]] static std::uint64_t access_mismatches() noexcept;

  [[nodiscard]] unsigned tag_bits() const noexcept { return tag_bits_; }

 private:
  alloc::MallocLike& under_;
  GuardCounters& stats_;
  unsigned tag_bits_;
  std::uint64_t max_gen_;

  std::mutex mu_;
  // capacity -> recycled payload addresses (untagged). Slots never leave
  // the lane while it lives; that is what keeps stale locks checkable.
  std::map<std::size_t, std::vector<void*>> freelists_;
};

}  // namespace dpg::core
