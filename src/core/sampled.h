// SampledTable — the exact alloc/free ledger behind the governor's kSampled
// rung (core/degrade.h).
//
// On the sampled rung only 1-in-N allocations get a shadow alias; the other
// N-1 are served straight from the underlying allocator. The ladder invariant
// (DESIGN.md §10) still demands that no mode falsify detection, and the rung's
// contract additionally promises that *double frees stay exactly detected*
// even for unsampled objects: GWP-ASan pays the same cost for the same reason.
// This table is that bookkeeping — a canonical-address -> {site, size, freed}
// map populated by the sampled fast path and consulted on every registry-miss
// free. A live entry makes the free exact (marked freed, block quarantined so
// the address cannot be recycled out from under the ledger); a freed entry is
// a caught double free with the original allocation site attached; a miss
// falls through to the pre-existing degraded/invalid-free disposition.
//
// Sharing: ShardedHeap threads allocate on their home shard but may free on
// any (the underlying heap is shared), so the table must be shared across
// engines exactly like the heap is — GuardConfig::sampled_table carries the
// owner's instance down; an engine constructed without one keeps a private
// table. Sharded by address hash to keep the fast path's insert off a single
// global lock.
//
// Entries are erased when the underlying allocator hands the same canonical
// address out again (every allocation path calls forget()), so the ledger
// tracks at most the set of addresses the allocator has not yet recycled.
// A freed entry whose block leaves quarantine early (budget eviction) can
// therefore be recycled before its entry is consulted again — the same
// bounded-quarantine trade the degraded rungs already make.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/registry.h"

namespace dpg::core {

class SampledTable {
 public:
  struct Entry {
    SiteId alloc_site = 0;
    SiteId free_site = 0;
    std::size_t size = 0;
    bool freed = false;
  };

  enum class FreeResult {
    kMiss,        // address unknown to the ledger
    kFreed,       // live entry transitioned to freed (exact, silent)
    kDoubleFree,  // entry was already freed: report with entry's sites
  };

  // Fast-path allocation: (re)binds addr to a live entry.
  void insert(std::uintptr_t addr, std::size_t size, SiteId site) {
    Shard& sh = shard_of(addr);
    std::lock_guard lock(sh.mu);
    auto [it, fresh] = sh.map.insert_or_assign(
        addr, Entry{site, SiteId{0}, size, false});
    (void)it;
    if (fresh) count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Free-path lookup + state transition. On kFreed/kDoubleFree, *out holds
  // the entry as it was BEFORE this call's mutation (so a double free reports
  // the first free's site).
  FreeResult on_free(std::uintptr_t addr, SiteId site, Entry* out) {
    Shard& sh = shard_of(addr);
    std::lock_guard lock(sh.mu);
    auto it = sh.map.find(addr);
    if (it == sh.map.end()) return FreeResult::kMiss;
    *out = it->second;
    if (it->second.freed) return FreeResult::kDoubleFree;
    it->second.freed = true;
    it->second.free_site = site;
    return FreeResult::kFreed;
  }

  // True when addr has a live (not yet freed) entry; copies it to *out.
  bool lookup_live(std::uintptr_t addr, Entry* out) const {
    Shard& sh = shard_of(addr);
    std::lock_guard lock(sh.mu);
    auto it = sh.map.find(addr);
    if (it == sh.map.end() || it->second.freed) return false;
    *out = it->second;
    return true;
  }

  // True when addr has a freed entry (a pointer whose reuse is a caught
  // double free / stale realloc).
  bool is_freed(std::uintptr_t addr) const {
    Shard& sh = shard_of(addr);
    std::lock_guard lock(sh.mu);
    auto it = sh.map.find(addr);
    return it != sh.map.end() && it->second.freed;
  }

  // The underlying allocator recycled addr to a new owner: any stale entry
  // must not outlive the address binding.
  void forget(std::uintptr_t addr) {
    Shard& sh = shard_of(addr);
    std::lock_guard lock(sh.mu);
    if (sh.map.erase(addr) != 0) {
      count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Relaxed emptiness gate: lets the (overwhelmingly common) never-sampled
  // process skip the per-allocation forget() entirely.
  [[nodiscard]] bool empty() const noexcept {
    return count_.load(std::memory_order_relaxed) == 0;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uintptr_t, Entry> map;
  };

  Shard& shard_of(std::uintptr_t addr) const noexcept {
    // Page-granular mix: allocations from the same page should still spread.
    return shards_[(addr >> 4) % kShards];
  }

  mutable Shard shards_[kShards];
  std::atomic<std::size_t> count_{0};
};

}  // namespace dpg::core
