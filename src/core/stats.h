// Counters the guard layer keeps; these feed EXPERIMENTS.md and the §4.3
// address-space study (bench_addrspace).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dpg::core {

struct GuardStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t shadow_pages_mapped = 0;   // fresh virtual pages consumed
  std::uint64_t shadow_pages_reused = 0;   // satisfied from the VA free list
  std::uint64_t va_reclaimed_pages = 0;    // pages recycled (pool destroy /
                                           // budget / GC)
  std::uint64_t double_frees = 0;
  std::uint64_t invalid_frees = 0;
  std::uint64_t protect_calls = 0;        // mprotect calls actually issued
  std::uint64_t protect_calls_saved = 0;  // frees amortized by batching
  std::size_t live_records = 0;            // live + freed-but-still-guarded
  std::size_t guarded_bytes = 0;           // shadow span bytes currently held
};

}  // namespace dpg::core
