// Counters the guard layer keeps; these feed EXPERIMENTS.md, the §4.3
// address-space study (bench_addrspace), and the obs metrics exporter.
//
// Memory-order contract
// ---------------------
// `GuardCounters` is the live, atomically-updated form; `GuardStats` is a
// plain snapshot of it.
//
//   - Writers: every mutation is a relaxed atomic RMW performed while holding
//     the owning ShadowEngine's lock (exception: the cross-shard remote-free
//     entry point bumps frees/double_frees/remote_frees locklessly — those
//     are plain counters with no cross-counter invariant at that instant).
//     The lock serializes same-engine writers, so relaxed ordering is
//     sufficient for counter integrity; atomicity exists for the benefit of
//     lock-free readers and the remote-free path.
//   - Coherent reads: ShadowEngine::stats() snapshots under that same lock,
//     so the returned GuardStats is a consistent cut — cross-counter
//     invariants (e.g. protect_calls + protect_calls_saved == frees after a
//     flush) hold exactly. ShardedHeap::stats() sums per-shard snapshots;
//     each addend is coherent, the sum is coherent once remote queues are
//     drained (flush_all()).
//   - Lock-free reads: the metrics exporter, the SIGUSR1 dump, and the fault
//     path call GuardCounters::snapshot() without the lock (signal context
//     cannot take it). Each counter is then individually torn-free, but the
//     set may straddle an in-flight operation: cross-counter invariants can
//     be off by the handful of updates the concurrent mutator has made so
//     far. Diagnostics tolerate that skew; tests must use stats().
//
// False sharing: each atomic sits on its own cache line (vm::kCacheLine).
// Before padding, every malloc/free on every thread bounced the line holding
// `allocations`/`frees` between cores; with per-shard engines the counters
// are mostly shard-private, and padding keeps a reader (exporter) or the
// remote-free producer from invalidating the owner's hot line.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "vm/vm_stats.h"  // vm::kCacheLine

namespace dpg::core {

// Plain snapshot (copyable, no atomics). See the contract above for when a
// snapshot is a consistent cut versus per-counter accurate.
struct GuardStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t shadow_pages_mapped = 0;   // fresh virtual pages consumed
  std::uint64_t shadow_pages_reused = 0;   // satisfied from the VA free list
  std::uint64_t va_reclaimed_pages = 0;    // pages recycled (pool destroy /
                                           // budget / GC)
  std::uint64_t double_frees = 0;
  std::uint64_t invalid_frees = 0;
  std::uint64_t protect_calls = 0;        // mprotect calls actually issued
  std::uint64_t protect_calls_saved = 0;  // frees amortized by batching
  std::uint64_t guards_elided = 0;        // allocations served unguarded
                                           // (static analysis proved the
                                           // site SAFE; no shadow alias, no
                                           // PROT_NONE at free)
  std::uint64_t degraded_allocs = 0;      // served without a guard because
                                           // the DegradationGovernor demoted
                                           // the engine (core/degrade.h)
  std::uint64_t quarantined_frees = 0;    // degraded frees parked in the
                                           // delayed-reuse quarantine
  std::uint64_t guard_failures = 0;       // kernel refused a guard syscall
                                           // (alias mmap / revocation
                                           // mprotect); detection suspended
                                           // for the affected object
  std::uint64_t magazine_maps = 0;        // bulk alias mmaps (one per
                                           // magazine generation)
  std::uint64_t magazine_hits = 0;        // allocations carved from a live
                                           // magazine: zero syscalls
  std::uint64_t magazine_slots_recycled = 0;  // never-claimed slots returned
                                           // to the VA free list when a
                                           // generation retires
  std::uint64_t revoke_batches = 0;       // batched-revocation flushes
  std::uint64_t revoke_coalesced_pages = 0;  // pages covered by merged
                                           // revocation runs
  std::uint64_t revoked_spans = 0;        // freed records whose shadow span
                                           // reached PROT_NONE (exactness
                                           // audit: frees - quarantined
                                           // frees - pending == revoked)
  std::uint64_t remote_frees = 0;         // frees queued cross-shard onto
                                           // the owner's MPSC list
  std::uint64_t sampled_allocs = 0;       // sampled-rung allocations served
                                           // on the unguarded fast path (the
                                           // 1-in-N winners count under
                                           // allocations like any guard)
  std::uint64_t sampled_frees = 0;        // frees of those fast-path objects
                                           // resolved via the sampled ledger
                                           // (exact double-free detection
                                           // kept; block quarantined)
  std::uint64_t tagged_allocs = 0;        // lock-and-key lane allocations
                                           // (tag-in-pointer, no shadow
                                           // alias, no mprotect)
  std::uint64_t tagged_frees = 0;         // lock-and-key frees that passed
                                           // the generation check
  std::uint64_t tag_mismatches = 0;       // lock-and-key detections: pointer
                                           // tag != slot generation word
  std::uint64_t pkey_revocations = 0;     // spans revoked by retagging to the
                                           // revoked protection key (the MPK
                                           // backend; the mprotect syscall
                                           // counter stays untouched)
  std::uint64_t window_recycle_hits = 0;  // aliases placed MAP_FIXED over a
                                           // span from the per-shard recycle
                                           // cache (no freelist round trip)
  std::uint64_t window_recycle_puts = 0;  // spans parked on that cache
  std::size_t live_records = 0;            // live + freed-but-still-guarded
  std::size_t guarded_bytes = 0;           // shadow span bytes currently held

  // Shard rollup (ShardedHeap::stats): field-wise sum.
  GuardStats& operator+=(const GuardStats& o) noexcept {
    allocations += o.allocations;
    frees += o.frees;
    shadow_pages_mapped += o.shadow_pages_mapped;
    shadow_pages_reused += o.shadow_pages_reused;
    va_reclaimed_pages += o.va_reclaimed_pages;
    double_frees += o.double_frees;
    invalid_frees += o.invalid_frees;
    protect_calls += o.protect_calls;
    protect_calls_saved += o.protect_calls_saved;
    guards_elided += o.guards_elided;
    degraded_allocs += o.degraded_allocs;
    quarantined_frees += o.quarantined_frees;
    guard_failures += o.guard_failures;
    magazine_maps += o.magazine_maps;
    magazine_hits += o.magazine_hits;
    magazine_slots_recycled += o.magazine_slots_recycled;
    revoke_batches += o.revoke_batches;
    revoke_coalesced_pages += o.revoke_coalesced_pages;
    revoked_spans += o.revoked_spans;
    remote_frees += o.remote_frees;
    sampled_allocs += o.sampled_allocs;
    sampled_frees += o.sampled_frees;
    tagged_allocs += o.tagged_allocs;
    tagged_frees += o.tagged_frees;
    tag_mismatches += o.tag_mismatches;
    pkey_revocations += o.pkey_revocations;
    window_recycle_hits += o.window_recycle_hits;
    window_recycle_puts += o.window_recycle_puts;
    live_records += o.live_records;
    guarded_bytes += o.guarded_bytes;
    return *this;
  }
};

// Live counters. Field-for-field the atomic twin of GuardStats, one cache
// line per counter (see the false-sharing note above).
struct GuardCounters {
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> allocations{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> frees{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> shadow_pages_mapped{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> shadow_pages_reused{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> va_reclaimed_pages{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> double_frees{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> invalid_frees{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> protect_calls{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> protect_calls_saved{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> guards_elided{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> degraded_allocs{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> quarantined_frees{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> guard_failures{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> magazine_maps{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> magazine_hits{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> magazine_slots_recycled{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> revoke_batches{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> revoke_coalesced_pages{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> revoked_spans{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> remote_frees{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> sampled_allocs{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> sampled_frees{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> tagged_allocs{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> tagged_frees{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> tag_mismatches{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> pkey_revocations{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> window_recycle_hits{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> window_recycle_puts{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> live_records{0};
  alignas(vm::kCacheLine) std::atomic<std::uint64_t> guarded_bytes{0};

  [[nodiscard]] GuardStats snapshot() const noexcept {
    GuardStats s;
    s.allocations = allocations.load(std::memory_order_relaxed);
    s.frees = frees.load(std::memory_order_relaxed);
    s.shadow_pages_mapped = shadow_pages_mapped.load(std::memory_order_relaxed);
    s.shadow_pages_reused = shadow_pages_reused.load(std::memory_order_relaxed);
    s.va_reclaimed_pages = va_reclaimed_pages.load(std::memory_order_relaxed);
    s.double_frees = double_frees.load(std::memory_order_relaxed);
    s.invalid_frees = invalid_frees.load(std::memory_order_relaxed);
    s.protect_calls = protect_calls.load(std::memory_order_relaxed);
    s.protect_calls_saved =
        protect_calls_saved.load(std::memory_order_relaxed);
    s.guards_elided = guards_elided.load(std::memory_order_relaxed);
    s.degraded_allocs = degraded_allocs.load(std::memory_order_relaxed);
    s.quarantined_frees = quarantined_frees.load(std::memory_order_relaxed);
    s.guard_failures = guard_failures.load(std::memory_order_relaxed);
    s.magazine_maps = magazine_maps.load(std::memory_order_relaxed);
    s.magazine_hits = magazine_hits.load(std::memory_order_relaxed);
    s.magazine_slots_recycled =
        magazine_slots_recycled.load(std::memory_order_relaxed);
    s.revoke_batches = revoke_batches.load(std::memory_order_relaxed);
    s.revoke_coalesced_pages =
        revoke_coalesced_pages.load(std::memory_order_relaxed);
    s.revoked_spans = revoked_spans.load(std::memory_order_relaxed);
    s.remote_frees = remote_frees.load(std::memory_order_relaxed);
    s.sampled_allocs = sampled_allocs.load(std::memory_order_relaxed);
    s.sampled_frees = sampled_frees.load(std::memory_order_relaxed);
    s.tagged_allocs = tagged_allocs.load(std::memory_order_relaxed);
    s.tagged_frees = tagged_frees.load(std::memory_order_relaxed);
    s.tag_mismatches = tag_mismatches.load(std::memory_order_relaxed);
    s.pkey_revocations = pkey_revocations.load(std::memory_order_relaxed);
    s.window_recycle_hits =
        window_recycle_hits.load(std::memory_order_relaxed);
    s.window_recycle_puts =
        window_recycle_puts.load(std::memory_order_relaxed);
    s.live_records = static_cast<std::size_t>(
        live_records.load(std::memory_order_relaxed));
    s.guarded_bytes = static_cast<std::size_t>(
        guarded_bytes.load(std::memory_order_relaxed));
    return s;
  }
};

}  // namespace dpg::core
