// Counters the guard layer keeps; these feed EXPERIMENTS.md, the §4.3
// address-space study (bench_addrspace), and the obs metrics exporter.
//
// Memory-order contract
// ---------------------
// `GuardCounters` is the live, atomically-updated form; `GuardStats` is a
// plain snapshot of it.
//
//   - Writers: every mutation is a relaxed atomic RMW performed while holding
//     the owning ShadowEngine's lock. The lock serializes all writers, so
//     relaxed ordering is sufficient for counter integrity; atomicity exists
//     solely for the benefit of lock-free readers.
//   - Coherent reads: ShadowEngine::stats() snapshots under that same lock,
//     so the returned GuardStats is a consistent cut — cross-counter
//     invariants (e.g. protect_calls + protect_calls_saved == frees after a
//     flush) hold exactly.
//   - Lock-free reads: the metrics exporter, the SIGUSR1 dump, and the fault
//     path call GuardCounters::snapshot() without the lock (signal context
//     cannot take it). Each counter is then individually torn-free, but the
//     set may straddle an in-flight operation: cross-counter invariants can
//     be off by the handful of updates the concurrent mutator has made so
//     far. Diagnostics tolerate that skew; tests must use stats().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dpg::core {

// Plain snapshot (copyable, no atomics). See the contract above for when a
// snapshot is a consistent cut versus per-counter accurate.
struct GuardStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t shadow_pages_mapped = 0;   // fresh virtual pages consumed
  std::uint64_t shadow_pages_reused = 0;   // satisfied from the VA free list
  std::uint64_t va_reclaimed_pages = 0;    // pages recycled (pool destroy /
                                           // budget / GC)
  std::uint64_t double_frees = 0;
  std::uint64_t invalid_frees = 0;
  std::uint64_t protect_calls = 0;        // mprotect calls actually issued
  std::uint64_t protect_calls_saved = 0;  // frees amortized by batching
  std::uint64_t guards_elided = 0;        // allocations served unguarded
                                           // (static analysis proved the
                                           // site SAFE; no shadow alias, no
                                           // PROT_NONE at free)
  std::uint64_t degraded_allocs = 0;      // served without a guard because
                                           // the DegradationGovernor demoted
                                           // the engine (core/degrade.h)
  std::uint64_t quarantined_frees = 0;    // degraded frees parked in the
                                           // delayed-reuse quarantine
  std::uint64_t guard_failures = 0;       // kernel refused a guard syscall
                                           // (alias mmap / revocation
                                           // mprotect); detection suspended
                                           // for the affected object
  std::size_t live_records = 0;            // live + freed-but-still-guarded
  std::size_t guarded_bytes = 0;           // shadow span bytes currently held
};

// Live counters. Field-for-field the atomic twin of GuardStats.
struct GuardCounters {
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> shadow_pages_mapped{0};
  std::atomic<std::uint64_t> shadow_pages_reused{0};
  std::atomic<std::uint64_t> va_reclaimed_pages{0};
  std::atomic<std::uint64_t> double_frees{0};
  std::atomic<std::uint64_t> invalid_frees{0};
  std::atomic<std::uint64_t> protect_calls{0};
  std::atomic<std::uint64_t> protect_calls_saved{0};
  std::atomic<std::uint64_t> guards_elided{0};
  std::atomic<std::uint64_t> degraded_allocs{0};
  std::atomic<std::uint64_t> quarantined_frees{0};
  std::atomic<std::uint64_t> guard_failures{0};
  std::atomic<std::uint64_t> live_records{0};
  std::atomic<std::uint64_t> guarded_bytes{0};

  [[nodiscard]] GuardStats snapshot() const noexcept {
    GuardStats s;
    s.allocations = allocations.load(std::memory_order_relaxed);
    s.frees = frees.load(std::memory_order_relaxed);
    s.shadow_pages_mapped = shadow_pages_mapped.load(std::memory_order_relaxed);
    s.shadow_pages_reused = shadow_pages_reused.load(std::memory_order_relaxed);
    s.va_reclaimed_pages = va_reclaimed_pages.load(std::memory_order_relaxed);
    s.double_frees = double_frees.load(std::memory_order_relaxed);
    s.invalid_frees = invalid_frees.load(std::memory_order_relaxed);
    s.protect_calls = protect_calls.load(std::memory_order_relaxed);
    s.protect_calls_saved =
        protect_calls_saved.load(std::memory_order_relaxed);
    s.guards_elided = guards_elided.load(std::memory_order_relaxed);
    s.degraded_allocs = degraded_allocs.load(std::memory_order_relaxed);
    s.quarantined_frees = quarantined_frees.load(std::memory_order_relaxed);
    s.guard_failures = guard_failures.load(std::memory_order_relaxed);
    s.live_records = static_cast<std::size_t>(
        live_records.load(std::memory_order_relaxed));
    s.guarded_bytes = static_cast<std::size_t>(
        guarded_bytes.load(std::memory_order_relaxed));
    return s;
  }
};

}  // namespace dpg::core
