#include "core/gc_scan.h"

#include <unordered_map>

namespace dpg::core {

void ConservativeScanner::add_root(const void* base, std::size_t length) {
  roots_.push_back(Root{base, length});
}

namespace {

// Scans [base, base+length) for word-aligned values landing in `pages`,
// marking the owning record.
void scan_range(const void* base, std::size_t length,
                const std::unordered_map<std::uintptr_t, ObjectRecord*>& pages,
                std::unordered_map<ObjectRecord*, bool>& marked) {
  const auto start = vm::addr(base);
  const std::uintptr_t aligned = (start + sizeof(std::uintptr_t) - 1) &
                                 ~(sizeof(std::uintptr_t) - 1);
  const std::uintptr_t end = start + length;
  for (std::uintptr_t a = aligned; a + sizeof(std::uintptr_t) <= end;
       a += sizeof(std::uintptr_t)) {
    const std::uintptr_t word = *reinterpret_cast<const std::uintptr_t*>(a);
    const auto it = pages.find(vm::page_down(word));
    if (it != pages.end()) marked[it->second] = true;
  }
}

}  // namespace

ConservativeScanner::Result ConservativeScanner::collect(
    std::span<ShadowEngine* const> engines) {
  Result result;

  // Collect every freed span, indexed by page so interior pointers count.
  std::unordered_map<std::uintptr_t, ObjectRecord*> freed_pages;
  std::unordered_map<ObjectRecord*, ShadowEngine*> owner;
  std::unordered_map<ObjectRecord*, bool> marked;
  for (ShadowEngine* engine : engines) {
    for (ObjectRecord* rec : engine->freed_records()) {
      for (std::uintptr_t page = rec->shadow_base;
           page < rec->shadow_base + rec->span_length; page += vm::kPageSize) {
        freed_pages.emplace(page, rec);
      }
      owner.emplace(rec, engine);
      marked.emplace(rec, false);
      result.freed_candidates++;
    }
  }
  if (freed_pages.empty()) return result;

  // Mark from explicit roots.
  for (const Root& root : roots_) {
    scan_range(root.base, root.length, freed_pages, marked);
  }
  // Mark from the payloads of all live guarded objects. One pass suffices:
  // freed memory is unreadable, so a chain of references to a freed span must
  // end in live memory or a root, all of which we scan.
  for (ShadowEngine* engine : engines) {
    for (const ObjectRecord* rec : engine->live_records()) {
      scan_range(reinterpret_cast<const void*>(rec->user_shadow),
                 rec->user_size, freed_pages, marked);
    }
  }

  for (auto& [rec, is_marked] : marked) {
    if (is_marked) {
      result.retained++;
      continue;
    }
    result.bytes_reclaimed += rec->span_length;
    owner[rec]->reclaim(rec);
    result.reclaimed++;
  }
  return result;
}

}  // namespace dpg::core
