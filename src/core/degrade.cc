#include "core/degrade.h"

#include <ctime>
#include <cstdio>
#include <cstring>

#include "obs/dump.h"
#include "obs/env.h"
#include "obs/metrics.h"

namespace dpg::core {

namespace {

constexpr std::size_t kKernelDefaultMapCount = 65530;
constexpr std::uint64_t kMaxBackoff = 64;

// Reads /proc/sys/vm/max_map_count without touching the heap (this can run
// during the first allocation under the preload depth guard).
std::size_t read_max_map_count() noexcept {
  std::FILE* f = std::fopen("/proc/sys/vm/max_map_count", "re");
  if (f == nullptr) return kKernelDefaultMapCount;
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::size_t v = 0;
  for (std::size_t i = 0; i < n && buf[i] >= '0' && buf[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::size_t>(buf[i] - '0');
  }
  return v != 0 ? v : kKernelDefaultMapCount;
}

std::uint64_t now_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

DegradationGovernor::DegradationGovernor(GovernorConfig cfg) : cfg_(cfg) {
  budget_ = cfg_.vma_budget != 0 ? cfg_.vma_budget : read_max_map_count();
  high_mark_ = static_cast<std::size_t>(static_cast<double>(budget_) *
                                        cfg_.high_water);
  low_mark_ = static_cast<std::size_t>(static_cast<double>(budget_) *
                                       cfg_.low_water);
  if (high_mark_ == 0) high_mark_ = 1;
  if (cfg_.sample_rate == 0) cfg_.sample_rate = 1;
  if (cfg_.sample_rate_max < cfg_.sample_rate) {
    cfg_.sample_rate_max = cfg_.sample_rate;
  }
  sample_n_.store(cfg_.sample_rate, std::memory_order_relaxed);
  ctr_.sample_rate_effective.store(cfg_.sample_rate,
                                   std::memory_order_relaxed);
  last_transition_ns_.store(now_ns(), std::memory_order_relaxed);
}

DegradationGovernor& DegradationGovernor::process() {
  // Leaked intentionally: engines and the metrics exporter hold pointers for
  // the process lifetime (including static destruction).
  static DegradationGovernor* g = [] {
    GovernorConfig cfg;
    cfg.vma_budget = static_cast<std::size_t>(obs::env_long(
        "DPG_VMA_BUDGET", 0, 0, 1L << 40));
    cfg.recover_after = static_cast<std::uint64_t>(obs::env_long(
        "DPG_DEGRADE_RECOVER_AFTER", 4096, 0, 1L << 40));
    cfg.quarantine_bytes = static_cast<std::size_t>(obs::env_long(
        "DPG_QUARANTINE_BYTES", long{64} << 20, 0, 1L << 40));
    cfg.sample_rate = static_cast<std::size_t>(obs::env_long(
        "DPG_SAMPLE_RATE", 64, 1, 1L << 30));
    cfg.sample_rate_max = static_cast<std::size_t>(obs::env_long(
        "DPG_SAMPLE_RATE_MAX", 8192, 1, 1L << 30));
    auto* gov = new DegradationGovernor(cfg);
    const GovernorCounters& c = gov->counters();
    obs::register_counter("dpg_degrade_transitions", &c.transitions);
    obs::register_counter("dpg_degrade_mode", &c.mode);
    obs::register_counter("dpg_degrade_syscall_failures", &c.syscall_failures);
    obs::register_counter("dpg_degrade_arena_failures", &c.arena_failures);
    obs::register_counter("dpg_degrade_recoveries", &c.recoveries);
    obs::register_counter("dpg_degrade_vma_estimate", &c.vma_estimate);
    obs::register_counter("dpg_degraded_allocs", &c.degraded_allocs);
    obs::register_counter("dpg_guard_errors", &c.guard_errors);
    obs::register_counter("dpg_sample_rate_effective",
                          &c.sample_rate_effective);
    obs::register_counter("dpg_sample_widens", &c.sample_widens);
    obs::register_counter("dpg_sample_tightens", &c.sample_tightens);
    obs::register_counter("dpg_pkey_fallbacks", &c.pkey_fallbacks);
    // Per-rung residency time (ns). Computed so the current rung's gauge
    // includes the in-progress stay; relaxed loads + clock_gettime only, so
    // these are async-signal-safe like every other exporter path.
    obs::register_counter_fn(
        "dpg_rung_residency_ns_full",
        +[](const void* ctx) noexcept {
          return static_cast<const DegradationGovernor*>(ctx)->residency_ns(
              GuardMode::kFullGuard);
        },
        gov);
    obs::register_counter_fn(
        "dpg_rung_residency_ns_sampled",
        +[](const void* ctx) noexcept {
          return static_cast<const DegradationGovernor*>(ctx)->residency_ns(
              GuardMode::kSampled);
        },
        gov);
    obs::register_counter_fn(
        "dpg_rung_residency_ns_quarantine",
        +[](const void* ctx) noexcept {
          return static_cast<const DegradationGovernor*>(ctx)->residency_ns(
              GuardMode::kQuarantineOnly);
        },
        gov);
    obs::register_counter_fn(
        "dpg_rung_residency_ns_unguarded",
        +[](const void* ctx) noexcept {
          return static_cast<const DegradationGovernor*>(ctx)->residency_ns(
              GuardMode::kUnguarded);
        },
        gov);
    // Contribute the ladder history to crash dumps. The section renderer is
    // async-signal-safe: history_consistent() is lock-free and the payload
    // is plain struct copies into the writer's scratch buffer. The
    // generation-checked read guarantees hdr.current_mode agrees with the
    // newest ladder entry even when a demotion is in flight.
    obs::dump::register_section(
        obs::dump::Tag::kLadder,
        +[](void* ctx, char* buf, std::size_t cap) noexcept -> std::size_t {
          return DegradationGovernor::render_ladder_section(
              static_cast<DegradationGovernor*>(ctx), buf, cap);
        },
        gov);
    return gov;
  }();
  return *g;
}

std::size_t DegradationGovernor::render_ladder_section(
    DegradationGovernor* self, char* buf, std::size_t cap) noexcept {
  constexpr std::size_t kMax = kLadderHistory;
  LadderRecord recs[kMax];
  std::uint32_t mode_now = 0;
  const std::size_t n = self->history_consistent(recs, kMax, &mode_now);
  const std::size_t need =
      sizeof(obs::dump::LadderHeader) + n * sizeof(obs::dump::LadderEntry);
  if (need > cap) return 0;
  obs::dump::LadderHeader hdr{};
  hdr.current_mode = mode_now;
  hdr.count = static_cast<std::uint32_t>(n);
  hdr.sample_rate = static_cast<std::uint32_t>(self->sample_rate());
  std::memcpy(buf, &hdr, sizeof hdr);
  char* p = buf + sizeof hdr;
  for (std::size_t i = 0; i < n; ++i) {
    obs::dump::LadderEntry e{};
    e.monotonic_ns = recs[i].monotonic_ns;
    e.from_mode = recs[i].from_mode;
    e.to_mode = recs[i].to_mode;
    e.recovery = recs[i].recovery;
    std::memcpy(e.reason, recs[i].reason, sizeof e.reason);
    std::memcpy(p, &e, sizeof e);
    p += sizeof e;
  }
  return need;
}

void DegradationGovernor::record_ladder(GuardMode from, GuardMode to,
                                        const char* why,
                                        bool is_recovery) noexcept {
  // Fill the slot, then release-publish the head so lock-free readers never
  // see a torn entry. Callers hold transition_mu_.
  const std::uint64_t head = ladder_head_.load(std::memory_order_relaxed);
  LadderRecord& rec = ladder_[head % kLadderHistory];
  rec.monotonic_ns = now_ns();
  rec.from_mode = static_cast<std::uint32_t>(from);
  rec.to_mode = static_cast<std::uint32_t>(to);
  rec.recovery = is_recovery ? 1u : 0u;
  std::memset(rec.reason, 0, sizeof rec.reason);
  std::strncpy(rec.reason, why, sizeof rec.reason - 1);
  ladder_head_.store(head + 1, std::memory_order_release);
}

void DegradationGovernor::shift_mode(GuardMode to, const char* why,
                                     bool is_recovery) noexcept {
  std::lock_guard lock(transition_mu_);
  const GuardMode from = mode();
  if (from == to) return;
  // Settle the residency clock on the rung being left.
  const std::uint64_t now = now_ns();
  const std::uint64_t since =
      last_transition_ns_.load(std::memory_order_relaxed);
  residency_ns_[static_cast<int>(from) & 3].fetch_add(
      now > since ? now - since : 0, std::memory_order_relaxed);
  last_transition_ns_.store(now, std::memory_order_relaxed);
  // A demotion onto the sampled rung starts at the base rate; a promotion
  // from below keeps the widened N (pressure was recent — tighten under the
  // normal hysteresis before guarding 1-in-base again).
  if (to == GuardMode::kSampled &&
      static_cast<int>(to) > static_cast<int>(from)) {
    sample_n_.store(cfg_.sample_rate, std::memory_order_relaxed);
    ctr_.sample_rate_effective.store(cfg_.sample_rate,
                                     std::memory_order_relaxed);
  }
  pressure_ticks_.store(0, std::memory_order_relaxed);
  mode_.store(static_cast<int>(to), std::memory_order_relaxed);
  ctr_.mode.store(static_cast<std::uint64_t>(to), std::memory_order_relaxed);
  ctr_.transitions.fetch_add(1, std::memory_order_relaxed);
  if (is_recovery) {
    ctr_.recoveries.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A demotion restarts the recovery clock; if we had recovered before,
    // this is a relapse — require a longer clean streak next time.
    ok_streak_.store(0, std::memory_order_relaxed);
    if (ctr_.recoveries.load(std::memory_order_relaxed) != 0) {
      const std::uint64_t b = backoff_.load(std::memory_order_relaxed);
      if (b < kMaxBackoff) backoff_.store(b * 2, std::memory_order_relaxed);
    }
  }
  obs::record_event(obs::EventKind::kDegrade,
                    static_cast<std::uint64_t>(to),
                    static_cast<std::uint64_t>(from));
  record_ladder(from, to, why, is_recovery);
  std::fprintf(stderr, "dpguard: guard policy %s -> %s (%s)\n",
               to_string(from), to_string(to), why);
  // A real demotion is a fleet-visible event worth a postmortem snapshot.
  // Recoveries are routine; "forced" rungs (tests, fuzz configs) would only
  // add noise. write_crash_dump no-ops when DPG_REPORT_DIR is not armed and
  // skips (no force) when another dump is already in flight.
  if (!is_recovery && std::strcmp(why, "forced") != 0) {
    obs::dump::write_crash_dump("demotion", nullptr);
  }
}

bool DegradationGovernor::widen_sample_rate(const char* why) noexcept {
  std::lock_guard lock(transition_mu_);
  if (mode() != GuardMode::kSampled) return true;  // raced past the rung
  const std::uint64_t n = sample_n_.load(std::memory_order_relaxed);
  if (n >= cfg_.sample_rate_max) return false;  // widest already: demote
  std::uint64_t nn = n * 2;
  if (nn > cfg_.sample_rate_max) nn = cfg_.sample_rate_max;
  sample_n_.store(nn, std::memory_order_relaxed);
  ctr_.sample_rate_effective.store(nn, std::memory_order_relaxed);
  ctr_.sample_widens.fetch_add(1, std::memory_order_relaxed);
  record_ladder(GuardMode::kSampled, GuardMode::kSampled, "sample-widen",
                /*is_recovery=*/false);
  std::fprintf(stderr, "dpguard: sampled guard rate 1-in-%llu (%s)\n",
               static_cast<unsigned long long>(nn), why);
  return true;
}

bool DegradationGovernor::tighten_sample_rate(const char* why) noexcept {
  std::lock_guard lock(transition_mu_);
  if (mode() != GuardMode::kSampled) return true;
  const std::uint64_t n = sample_n_.load(std::memory_order_relaxed);
  if (n <= cfg_.sample_rate) return false;  // at base: promote instead
  std::uint64_t nn = n / 2;
  if (nn < cfg_.sample_rate) nn = cfg_.sample_rate;
  sample_n_.store(nn, std::memory_order_relaxed);
  ctr_.sample_rate_effective.store(nn, std::memory_order_relaxed);
  ctr_.sample_tightens.fetch_add(1, std::memory_order_relaxed);
  record_ladder(GuardMode::kSampled, GuardMode::kSampled, "sample-tighten",
                /*is_recovery=*/true);
  std::fprintf(stderr, "dpguard: sampled guard rate 1-in-%llu (%s)\n",
               static_cast<unsigned long long>(nn), why);
  return true;
}

std::size_t DegradationGovernor::history(LadderRecord* out,
                                         std::size_t max) const noexcept {
  const std::uint64_t head = ladder_head_.load(std::memory_order_acquire);
  std::uint64_t n = head < kLadderHistory ? head : kLadderHistory;
  if (n > max) n = max;
  // Oldest first: the surviving window is [head - n, head).
  for (std::uint64_t i = 0; i < n; ++i) {
    out[i] = ladder_[(head - n + i) % kLadderHistory];
  }
  return static_cast<std::size_t>(n);
}

std::size_t DegradationGovernor::history_consistent(
    LadderRecord* out, std::size_t max, std::uint32_t* mode_out) const noexcept {
  // shift_mode stores the rung gauge before publishing its ladder entry, so
  // a reader landing between the two would pair the *new* rung with a ring
  // that still ends on the *old* one. Retry until the copy is stable (head
  // unmoved) and the newest entry agrees with the gauge.
  std::size_t n = 0;
  std::uint32_t m = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t h1 = ladder_head_.load(std::memory_order_acquire);
    m = static_cast<std::uint32_t>(mode_.load(std::memory_order_relaxed));
    n = history(out, max);
    const std::uint64_t h2 = ladder_head_.load(std::memory_order_acquire);
    if (h1 != h2) continue;  // ring advanced mid-copy
    if (n == 0 || out[n - 1].to_mode == m) {
      if (mode_out != nullptr) *mode_out = m;
      return n;
    }
  }
  // The writer is suspended between its two stores (e.g. this very thread
  // took the dump signal mid-transition): trust the published ring over the
  // racing gauge so the section stays self-consistent.
  if (n != 0) m = out[n - 1].to_mode;
  if (mode_out != nullptr) *mode_out = m;
  return n;
}

GuardMode DegradationGovernor::on_alloc() noexcept {
  const GuardMode m = mode();
  const std::uint64_t est = ctr_.vma_estimate.load(std::memory_order_relaxed);
  if (m == GuardMode::kFullGuard) {
    if (est >= high_mark_) {
      // Proactive: slow VMA minting before the kernel starts refusing.
      shift_mode(GuardMode::kSampled, "vma-pressure", /*is_recovery=*/false);
      return GuardMode::kSampled;
    }
    return m;
  }
  if (m == GuardMode::kSampled && est >= high_mark_) {
    // Pressure persists on the sampled rung: widen N (fewer guard VMAs per
    // second) in measured steps before conceding the rung entirely.
    ok_streak_.store(0, std::memory_order_relaxed);
    const std::uint64_t t =
        pressure_ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (t >= kPressureInterval) {
      pressure_ticks_.store(0, std::memory_order_relaxed);
      if (!widen_sample_rate("vma-pressure")) {
        shift_mode(GuardMode::kQuarantineOnly, "vma-pressure",
                   /*is_recovery=*/false);
      }
    }
    return mode();
  }
  if (cfg_.recover_after == 0) return m;
  const std::uint64_t streak =
      ok_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t need =
      cfg_.recover_after * backoff_.load(std::memory_order_relaxed);
  if (streak >= need && est <= low_mark_) {
    ok_streak_.store(0, std::memory_order_relaxed);
    // On the sampled rung, relief re-tightens N first; only once back at the
    // base rate does the next clean streak retry full guarding.
    if (m == GuardMode::kSampled && tighten_sample_rate("hysteresis")) {
      return m;
    }
    shift_mode(static_cast<GuardMode>(static_cast<int>(m) - 1), "hysteresis",
               /*is_recovery=*/true);
    return mode();
  }
  return m;
}

void DegradationGovernor::on_syscall_failure(const char* what,
                                             int err) noexcept {
  (void)err;
  ctr_.syscall_failures.fetch_add(1, std::memory_order_relaxed);
  const GuardMode m = mode();
  if (m == GuardMode::kUnguarded) return;  // already at the bottom
  // The sampled rung absorbs refusals by widening N until the ceiling.
  if (m == GuardMode::kSampled && widen_sample_rate(what)) return;
  shift_mode(static_cast<GuardMode>(static_cast<int>(m) + 1), what,
             /*is_recovery=*/false);
}

void DegradationGovernor::on_pkey_fallback(int err) noexcept {
  ctr_.pkey_fallbacks.fetch_add(1, std::memory_order_relaxed);
  ctr_.syscall_failures.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(transition_mu_);
  record_ladder(mode(), mode(), "pkey-fallback", /*is_recovery=*/false);
  std::fprintf(stderr,
               "dpguard: pkey_alloc refused (errno %d); revocation falls back "
               "to batched mprotect\n",
               err);
}

void DegradationGovernor::on_arena_exhausted() noexcept {
  ctr_.arena_failures.fetch_add(1, std::memory_order_relaxed);
  // Physical exhaustion: guarding costs nothing physical beyond the header
  // word, so no rung change here — the engine drains its quarantine and
  // retries; a repeat failure surfaces as malloc returning nullptr, which is
  // the C contract the host already handles.
}

void DegradationGovernor::add_vmas(long delta) noexcept {
  if (delta >= 0) {
    ctr_.vma_estimate.fetch_add(static_cast<std::uint64_t>(delta),
                                std::memory_order_relaxed);
    return;
  }
  const auto dec = static_cast<std::uint64_t>(-delta);
  std::uint64_t cur = ctr_.vma_estimate.load(std::memory_order_relaxed);
  while (!ctr_.vma_estimate.compare_exchange_weak(
      cur, cur >= dec ? cur - dec : 0, std::memory_order_relaxed)) {
  }
}

bool DegradationGovernor::sample_this_alloc() noexcept {
  // Slot assignment is per-thread and process-global; collisions past
  // kSampleSlots threads merely share a countdown (still 1-in-N in
  // aggregate). The countdown state itself is per-governor.
  static std::atomic<std::uint32_t> next_slot{0};
  thread_local const std::uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kSampleSlots;
  SampleSlot& s = sample_slots_[slot];
  const std::uint64_t c = s.countdown.load(std::memory_order_relaxed);
  if (c == 0) {
    const std::uint64_t n = sample_n_.load(std::memory_order_relaxed);
    s.countdown.store(n > 0 ? n - 1 : 0, std::memory_order_relaxed);
    return true;
  }
  s.countdown.store(c - 1, std::memory_order_relaxed);
  return false;
}

std::uint64_t DegradationGovernor::residency_ns(GuardMode r) const noexcept {
  const int idx = static_cast<int>(r) & 3;
  std::uint64_t total = residency_ns_[idx].load(std::memory_order_relaxed);
  if (static_cast<int>(r) == mode_.load(std::memory_order_relaxed)) {
    const std::uint64_t since =
        last_transition_ns_.load(std::memory_order_relaxed);
    const std::uint64_t now = now_ns();
    if (now > since) total += now - since;
  }
  return total;
}

void DegradationGovernor::force_mode(GuardMode m) noexcept {
  shift_mode(m, "forced", static_cast<int>(m) < static_cast<int>(mode()));
}

void note_guard_error() noexcept {
  DegradationGovernor::process().count_guard_error();
}

}  // namespace dpg::core
