#include "core/degrade.h"

#include <ctime>
#include <cstdio>
#include <cstring>

#include "obs/dump.h"
#include "obs/env.h"
#include "obs/metrics.h"

namespace dpg::core {

namespace {

constexpr std::size_t kKernelDefaultMapCount = 65530;
constexpr std::uint64_t kMaxBackoff = 64;

// Reads /proc/sys/vm/max_map_count without touching the heap (this can run
// during the first allocation under the preload depth guard).
std::size_t read_max_map_count() noexcept {
  std::FILE* f = std::fopen("/proc/sys/vm/max_map_count", "re");
  if (f == nullptr) return kKernelDefaultMapCount;
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::size_t v = 0;
  for (std::size_t i = 0; i < n && buf[i] >= '0' && buf[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::size_t>(buf[i] - '0');
  }
  return v != 0 ? v : kKernelDefaultMapCount;
}

}  // namespace

DegradationGovernor::DegradationGovernor(GovernorConfig cfg) : cfg_(cfg) {
  budget_ = cfg_.vma_budget != 0 ? cfg_.vma_budget : read_max_map_count();
  high_mark_ = static_cast<std::size_t>(static_cast<double>(budget_) *
                                        cfg_.high_water);
  low_mark_ = static_cast<std::size_t>(static_cast<double>(budget_) *
                                       cfg_.low_water);
  if (high_mark_ == 0) high_mark_ = 1;
}

DegradationGovernor& DegradationGovernor::process() {
  // Leaked intentionally: engines and the metrics exporter hold pointers for
  // the process lifetime (including static destruction).
  static DegradationGovernor* g = [] {
    GovernorConfig cfg;
    cfg.vma_budget = static_cast<std::size_t>(obs::env_long(
        "DPG_VMA_BUDGET", 0, 0, 1L << 40));
    cfg.recover_after = static_cast<std::uint64_t>(obs::env_long(
        "DPG_DEGRADE_RECOVER_AFTER", 4096, 0, 1L << 40));
    cfg.quarantine_bytes = static_cast<std::size_t>(obs::env_long(
        "DPG_QUARANTINE_BYTES", long{64} << 20, 0, 1L << 40));
    auto* gov = new DegradationGovernor(cfg);
    const GovernorCounters& c = gov->counters();
    obs::register_counter("dpg_degrade_transitions", &c.transitions);
    obs::register_counter("dpg_degrade_mode", &c.mode);
    obs::register_counter("dpg_degrade_syscall_failures", &c.syscall_failures);
    obs::register_counter("dpg_degrade_arena_failures", &c.arena_failures);
    obs::register_counter("dpg_degrade_recoveries", &c.recoveries);
    obs::register_counter("dpg_degrade_vma_estimate", &c.vma_estimate);
    obs::register_counter("dpg_degraded_allocs", &c.degraded_allocs);
    obs::register_counter("dpg_guard_errors", &c.guard_errors);
    // Contribute the ladder history to crash dumps. The section renderer is
    // async-signal-safe: history() is lock-free and the payload is plain
    // struct copies into the writer's scratch buffer.
    obs::dump::register_section(
        obs::dump::Tag::kLadder,
        +[](void* ctx, char* buf, std::size_t cap) noexcept -> std::size_t {
          auto* self = static_cast<DegradationGovernor*>(ctx);
          constexpr std::size_t kMax = DegradationGovernor::kLadderHistory;
          LadderRecord recs[kMax];
          const std::size_t n = self->history(recs, kMax);
          const std::size_t need = sizeof(obs::dump::LadderHeader) +
                                   n * sizeof(obs::dump::LadderEntry);
          if (need > cap) return 0;
          obs::dump::LadderHeader hdr{};
          hdr.current_mode = static_cast<std::uint32_t>(self->mode());
          hdr.count = static_cast<std::uint32_t>(n);
          std::memcpy(buf, &hdr, sizeof hdr);
          char* p = buf + sizeof hdr;
          for (std::size_t i = 0; i < n; ++i) {
            obs::dump::LadderEntry e{};
            e.monotonic_ns = recs[i].monotonic_ns;
            e.from_mode = recs[i].from_mode;
            e.to_mode = recs[i].to_mode;
            e.recovery = recs[i].recovery;
            std::memcpy(e.reason, recs[i].reason, sizeof e.reason);
            std::memcpy(p, &e, sizeof e);
            p += sizeof e;
          }
          return need;
        },
        gov);
    return gov;
  }();
  return *g;
}

void DegradationGovernor::shift_mode(GuardMode to, const char* why,
                                     bool is_recovery) noexcept {
  std::lock_guard lock(transition_mu_);
  const GuardMode from = mode();
  if (from == to) return;
  mode_.store(static_cast<int>(to), std::memory_order_relaxed);
  ctr_.mode.store(static_cast<std::uint64_t>(to), std::memory_order_relaxed);
  ctr_.transitions.fetch_add(1, std::memory_order_relaxed);
  if (is_recovery) {
    ctr_.recoveries.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A demotion restarts the recovery clock; if we had recovered before,
    // this is a relapse — require a longer clean streak next time.
    ok_streak_.store(0, std::memory_order_relaxed);
    if (ctr_.recoveries.load(std::memory_order_relaxed) != 0) {
      const std::uint64_t b = backoff_.load(std::memory_order_relaxed);
      if (b < kMaxBackoff) backoff_.store(b * 2, std::memory_order_relaxed);
    }
  }
  obs::record_event(obs::EventKind::kDegrade,
                    static_cast<std::uint64_t>(to),
                    static_cast<std::uint64_t>(from));
  // Record the transition in the postmortem ring: fill the slot, then
  // release-publish the head so lock-free readers never see a torn entry.
  {
    const std::uint64_t head = ladder_head_.load(std::memory_order_relaxed);
    LadderRecord& rec = ladder_[head % kLadderHistory];
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    rec.monotonic_ns = static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
                       static_cast<std::uint64_t>(ts.tv_nsec);
    rec.from_mode = static_cast<std::uint32_t>(from);
    rec.to_mode = static_cast<std::uint32_t>(to);
    rec.recovery = is_recovery ? 1u : 0u;
    std::memset(rec.reason, 0, sizeof rec.reason);
    std::strncpy(rec.reason, why, sizeof rec.reason - 1);
    ladder_head_.store(head + 1, std::memory_order_release);
  }
  std::fprintf(stderr, "dpguard: guard policy %s -> %s (%s)\n",
               to_string(from), to_string(to), why);
  // A real demotion is a fleet-visible event worth a postmortem snapshot.
  // Recoveries are routine; "forced" rungs (tests, fuzz configs) would only
  // add noise. write_crash_dump no-ops when DPG_REPORT_DIR is not armed and
  // skips (no force) when another dump is already in flight.
  if (!is_recovery && std::strcmp(why, "forced") != 0) {
    obs::dump::write_crash_dump("demotion", nullptr);
  }
}

std::size_t DegradationGovernor::history(LadderRecord* out,
                                         std::size_t max) const noexcept {
  const std::uint64_t head = ladder_head_.load(std::memory_order_acquire);
  std::uint64_t n = head < kLadderHistory ? head : kLadderHistory;
  if (n > max) n = max;
  // Oldest first: the surviving window is [head - n, head).
  for (std::uint64_t i = 0; i < n; ++i) {
    out[i] = ladder_[(head - n + i) % kLadderHistory];
  }
  return static_cast<std::size_t>(n);
}

GuardMode DegradationGovernor::on_alloc() noexcept {
  const GuardMode m = mode();
  const std::uint64_t est = ctr_.vma_estimate.load(std::memory_order_relaxed);
  if (m == GuardMode::kFullGuard) {
    if (est >= high_mark_) {
      // Proactive: stop minting VMAs before the kernel starts refusing them.
      shift_mode(GuardMode::kQuarantineOnly, "vma-pressure",
                 /*is_recovery=*/false);
      return GuardMode::kQuarantineOnly;
    }
    return m;
  }
  if (cfg_.recover_after == 0) return m;
  const std::uint64_t streak =
      ok_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t need =
      cfg_.recover_after * backoff_.load(std::memory_order_relaxed);
  if (streak >= need && est <= low_mark_) {
    ok_streak_.store(0, std::memory_order_relaxed);
    shift_mode(static_cast<GuardMode>(static_cast<int>(m) - 1), "hysteresis",
               /*is_recovery=*/true);
    return mode();
  }
  return m;
}

void DegradationGovernor::on_syscall_failure(const char* what,
                                             int err) noexcept {
  (void)err;
  ctr_.syscall_failures.fetch_add(1, std::memory_order_relaxed);
  const GuardMode m = mode();
  if (m == GuardMode::kUnguarded) return;  // already at the bottom
  shift_mode(static_cast<GuardMode>(static_cast<int>(m) + 1), what,
             /*is_recovery=*/false);
}

void DegradationGovernor::on_arena_exhausted() noexcept {
  ctr_.arena_failures.fetch_add(1, std::memory_order_relaxed);
  // Physical exhaustion: guarding costs nothing physical beyond the header
  // word, so no rung change here — the engine drains its quarantine and
  // retries; a repeat failure surfaces as malloc returning nullptr, which is
  // the C contract the host already handles.
}

void DegradationGovernor::add_vmas(long delta) noexcept {
  if (delta >= 0) {
    ctr_.vma_estimate.fetch_add(static_cast<std::uint64_t>(delta),
                                std::memory_order_relaxed);
    return;
  }
  const auto dec = static_cast<std::uint64_t>(-delta);
  std::uint64_t cur = ctr_.vma_estimate.load(std::memory_order_relaxed);
  while (!ctr_.vma_estimate.compare_exchange_weak(
      cur, cur >= dec ? cur - dec : 0, std::memory_order_relaxed)) {
  }
}

void DegradationGovernor::force_mode(GuardMode m) noexcept {
  shift_mode(m, "forced", static_cast<int>(m) < static_cast<int>(mode()));
}

void note_guard_error() noexcept {
  DegradationGovernor::process().count_guard_error();
}

}  // namespace dpg::core
