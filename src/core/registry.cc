#include "core/registry.h"

#include <cassert>
#include <new>

namespace dpg::core {

namespace {

// Multiplicative hash over the page number; the low bits feed the probe.
[[nodiscard]] std::size_t hash_page(std::uintptr_t page) noexcept {
  std::uint64_t x = static_cast<std::uint64_t>(page >> vm::kPageShift);
  x *= 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(x >> 17);
}

}  // namespace

ShadowRegistry::ShadowRegistry(std::size_t initial_slots)
    : table_(make_table(initial_slots)) {}

ShadowRegistry::~ShadowRegistry() {
  Table* t = table_.load(std::memory_order_relaxed);
  delete[] t->slots;
  delete t;
}

ShadowRegistry& ShadowRegistry::global() {
  static ShadowRegistry* instance = new ShadowRegistry();  // never destroyed:
  // the SIGSEGV handler may outlive static teardown order.
  return *instance;
}

ShadowRegistry::Table* ShadowRegistry::make_table(std::size_t slot_count) {
  assert((slot_count & (slot_count - 1)) == 0);
  auto* t = new Table{};
  t->mask = slot_count - 1;
  t->slots = new Slot[slot_count];
  return t;
}

void ShadowRegistry::put(Table& t, std::uintptr_t page,
                         const ObjectRecord* rec) {
  std::size_t i = hash_page(page) & t.mask;
  for (;;) {
    const std::uintptr_t key = t.slots[i].key.load(std::memory_order_relaxed);
    if (key == page) {
      t.slots[i].value.store(rec, std::memory_order_release);
      return;
    }
    if (key == 0 || key == kTombstone) {
      if (key == 0) t.used++;
      t.live++;
      // Publish value before key so a concurrent reader that sees the key
      // also sees the value.
      t.slots[i].value.store(rec, std::memory_order_release);
      t.slots[i].key.store(page, std::memory_order_release);
      return;
    }
    i = (i + 1) & t.mask;
  }
}

void ShadowRegistry::grow_locked(std::size_t min_live) {
  Table* old = table_.load(std::memory_order_relaxed);
  std::size_t slots = old->mask + 1;
  while (slots < min_live * 4) slots *= 2;
  Table* fresh = make_table(slots);
  for (std::size_t i = 0; i <= old->mask; ++i) {
    const std::uintptr_t key = old->slots[i].key.load(std::memory_order_relaxed);
    if (key != 0 && key != kTombstone) {
      put(*fresh, key, old->slots[i].value.load(std::memory_order_relaxed));
    }
  }
  // Publish the replacement, flip the epoch, and drain the stale parity: any
  // reader still registered there predates the flip and may hold the old
  // table's pointer. Readers are lock-free leaf probes (they never block, and
  // the fault handler never takes mu_), so the spin is short and cannot
  // deadlock. Once the counter hits zero every later reader re-validated into
  // the new parity after loading table_, so the old slots are unreachable.
  table_.store(fresh, std::memory_order_seq_cst);
  const std::size_t stale = epoch_.fetch_add(1, std::memory_order_seq_cst) & 1;
  for (std::size_t s = 0; s < kReaderStripes; ++s) {
    while (readers_[s].count[stale].load(std::memory_order_seq_cst) != 0) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
  }
  delete[] old->slots;
  delete old;
}

void ShadowRegistry::insert(const ObjectRecord& rec) {
  std::lock_guard lock(mu_);
  Table* t = table_.load(std::memory_order_relaxed);
  const std::size_t pages = rec.span_length / vm::kPageSize;
  if ((t->used + pages) * 2 > t->mask + 1) {
    grow_locked(t->live + pages);
    t = table_.load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < pages; ++i) {
    put(*t, rec.shadow_base + i * vm::kPageSize, &rec);
  }
}

void ShadowRegistry::erase(const ObjectRecord& rec) {
  std::lock_guard lock(mu_);
  Table* t = table_.load(std::memory_order_relaxed);
  const std::size_t pages = rec.span_length / vm::kPageSize;
  for (std::size_t p = 0; p < pages; ++p) {
    const std::uintptr_t page = rec.shadow_base + p * vm::kPageSize;
    std::size_t i = hash_page(page) & t->mask;
    for (;;) {
      const std::uintptr_t key = t->slots[i].key.load(std::memory_order_relaxed);
      if (key == page) {
        // Tombstone the key first so readers stop matching, then clear the
        // value. A reader racing here may still return the record, which is
        // safe: erase() is only called while the record is still allocated.
        t->slots[i].key.store(kTombstone, std::memory_order_release);
        t->slots[i].value.store(nullptr, std::memory_order_release);
        t->live--;
        break;
      }
      if (key == 0) break;  // never inserted (erase is idempotent)
      i = (i + 1) & t->mask;
    }
  }
}

const ObjectRecord* ShadowRegistry::lookup(std::uintptr_t addr) const noexcept {
  // Register under the current epoch parity, then re-validate: if a rehash
  // flipped the epoch between the two loads, our registration landed in the
  // parity the rehash is (or will be) draining while we have not yet loaded
  // the table pointer — back out and re-register. Once validation passes, the
  // seq_cst total order guarantees any rehash that retires the table we are
  // about to load flips the epoch *after* our increment, so its drain loop
  // cannot miss us. Async-signal-safe: atomics only, no locks, and a nested
  // handler's lookup simply nests the counter.
  static std::atomic<std::uint32_t> next_stripe{0};
  thread_local const std::uint32_t stripe =
      next_stripe.fetch_add(1, std::memory_order_relaxed) % kReaderStripes;
  ReaderStripe& rs = readers_[stripe];
  std::size_t e;
  for (;;) {
    e = epoch_.load(std::memory_order_seq_cst) & 1;
    rs.count[e].fetch_add(1, std::memory_order_seq_cst);
    if ((epoch_.load(std::memory_order_seq_cst) & 1) == e) break;
    rs.count[e].fetch_sub(1, std::memory_order_seq_cst);
  }
  const Table* t = table_.load(std::memory_order_seq_cst);
  const std::uintptr_t page = vm::page_down(addr);
  std::size_t i = hash_page(page) & t->mask;
  const ObjectRecord* found = nullptr;
  // Bounded probe: the mutators keep load factor <= 0.5, so an unbroken run
  // longer than the table means corruption; bail out rather than spin.
  for (std::size_t n = 0; n <= t->mask; ++n) {
    const std::uintptr_t key = t->slots[i].key.load(std::memory_order_acquire);
    if (key == page) {
      found = t->slots[i].value.load(std::memory_order_acquire);
      break;
    }
    if (key == 0) break;
    i = (i + 1) & t->mask;
  }
  rs.count[e].fetch_sub(1, std::memory_order_seq_cst);
  return found;
}

std::size_t ShadowRegistry::entries() const {
  std::lock_guard lock(mu_);
  return table_.load(std::memory_order_relaxed)->live;
}

}  // namespace dpg::core
