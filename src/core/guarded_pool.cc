#include "core/guarded_pool.h"

namespace dpg::core {

namespace {
thread_local PoolScope* t_current_scope = nullptr;
}  // namespace

PoolScope::PoolScope(GuardedPoolContext& ctx, std::size_t elem_hint)
    : pool_(ctx, elem_hint), parent_(t_current_scope) {
  t_current_scope = this;
}

PoolScope::~PoolScope() {
  t_current_scope = parent_;
  // ~GuardedPool runs destroy(): every shadow and canonical page of this
  // scope becomes recyclable, exactly the paper's pooldestroy semantics.
}

PoolScope* PoolScope::current() noexcept { return t_current_scope; }

}  // namespace dpg::core
