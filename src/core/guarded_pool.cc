#include "core/guarded_pool.h"

#include "obs/metrics.h"

namespace dpg::core {

namespace {
thread_local PoolScope* t_current_scope = nullptr;
}  // namespace

PoolScope::PoolScope(GuardedPoolContext& ctx, std::size_t elem_hint)
    : pool_(ctx, elem_hint), parent_(t_current_scope) {
  t_current_scope = this;
  obs::record_event(obs::EventKind::kPoolInit, vm::addr(this), elem_hint);
}

PoolScope::~PoolScope() {
  t_current_scope = parent_;
  obs::record_event(obs::EventKind::kPoolDestroy, vm::addr(this),
                    pool_.pool_stats().allocations);
  // ~GuardedPool runs destroy(): every shadow and canonical page of this
  // scope becomes recyclable, exactly the paper's pooldestroy semantics.
}

PoolScope* PoolScope::current() noexcept { return t_current_scope; }

}  // namespace dpg::core
