// FaultManager — turns MMU traps into dangling-pointer diagnostics.
//
// "Upon deallocation, we change the permissions on the individual virtual
//  pages and rely on the memory management unit (MMU) to detect all dangling
//  pointer accesses" (Section 1). The SIGSEGV/SIGBUS handler installed here
//  resolves the fault address through the global ShadowRegistry; a hit on a
//  freed object's shadow span is a dangling use.
//
// Three dispositions:
//   - default (production): an async-signal-safe report is written to stderr
//     and the process aborts — dangling uses are treated as attacks.
//   - a registered callback (must itself be async-signal-safe) runs first.
//   - a thread-local *probe* (see catch_dangling) recovers via siglongjmp;
//     this powers in-process property tests that provoke thousands of traps.
//
// Faults that do not resolve to a freed shadow page are *chained* to whatever
// SIGSEGV/SIGBUS handler was installed before ours (a crash reporter, a
// language runtime's GC barrier), falling back to the default disposition —
// genuine crashes keep crashing, and cohabiting handlers keep working.
//
// Hardening (production posture):
//   - the handler runs on a per-thread sigaltstack (SA_ONSTACK), so a guard
//     trap taken on an exhausted thread stack still produces a report instead
//     of a silent double-fault kill;
//   - a thread-local reentrancy flag detects a fault *inside* the handler
//     (corrupt registry, faulting callback): the nested fault writes a
//     minimal message and _exits rather than recursing until the kernel
//     kills the process.
#pragma once

#include <csetjmp>
#include <csignal>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/report.h"

namespace dpg::core {

class FaultManager {
 public:
  using Callback = void (*)(const DanglingReport&);

  static FaultManager& instance();

  // Installs the SIGSEGV/SIGBUS handlers (idempotent, thread-safe) and arms
  // the calling thread's alternate signal stack. Previously-installed
  // handlers are captured as chain targets for faults that are not ours.
  void install();

  // Arms a per-thread alternate signal stack for the calling thread (RAII,
  // torn down at thread exit). install() arms the installing thread; other
  // threads that may take guard traps on deep stacks call this themselves.
  static void ensure_altstack() noexcept;

  // Test hook: re-runs handler installation regardless of the once-flag,
  // re-capturing whatever SIGSEGV/SIGBUS handlers are currently installed as
  // the new chain targets.
  void reinstall_for_testing();

  // Callback invoked (from signal context!) before aborting. nullptr resets.
  void set_callback(Callback cb) noexcept;

  // Raises a software-detected report (double free / invalid free) with the
  // same disposition as a hardware trap: probe recovery if armed, otherwise
  // callback + abort. Never returns when no probe is armed.
  [[noreturn]] void raise_software(const DanglingReport& report);

  // Total dangling uses detected (hardware + software) in this process.
  [[nodiscard]] std::uint64_t detections() const noexcept;

  // Of those, traps whose siginfo carried SEGV_PKUERR — the MPK backend's
  // protection-key denial rather than a PROT_NONE page-permission fault
  // (vm/revoke.h). Always 0 under the mprotect/batched backends.
  [[nodiscard]] std::uint64_t pkey_faults() const noexcept;

  // --- probe support (used by catch_dangling below) ---
  struct Probe {
    sigjmp_buf env;
    volatile sig_atomic_t armed = 0;
    DanglingReport report;
  };
  [[nodiscard]] Probe& thread_probe() noexcept;

 private:
  FaultManager() = default;
};

// Runs `body`; if a dangling use (trap or software-detected) occurs inside,
// unwinds back here and returns the report. Returns nullopt when `body`
// completes cleanly. Installs the fault handler on first use. Not reentrant.
//
// NOTE: recovery longjmps out of the faulting instruction, so `body` should
// be side-effect-tolerant up to the faulting point (fine for tests).
template <typename F>
std::optional<DanglingReport> catch_dangling(F&& body) {
  FaultManager& fm = FaultManager::instance();
  fm.install();
  FaultManager::Probe& probe = fm.thread_probe();
  if (sigsetjmp(probe.env, 1) != 0) {
    probe.armed = 0;
    return probe.report;
  }
  probe.armed = 1;
  std::forward<F>(body)();
  probe.armed = 0;
  return std::nullopt;
}

}  // namespace dpg::core
