// ShadowRegistry — async-signal-safe map from shadow page to object record.
//
// When the MMU traps a dangling access, the SIGSEGV handler must turn a raw
// fault address into a diagnostic: which object, how large, where allocated,
// where freed. Handlers cannot take locks, so the registry is an open-
// addressing hash table with atomic slots. Mutators (alloc/free paths)
// serialize on a mutex; the lookup path reads only a snapshot-published table
// pointer and atomic slot fields. A table that has been grown out of is freed
// as soon as every reader that might hold its pointer has drained, tracked by
// a two-epoch reader counter: lookups register under the current epoch parity
// before loading the table pointer, and a rehash publishes the replacement,
// flips the epoch, then spin-waits the stale parity's counter to zero. The
// drain is what makes churn-heavy lifetimes bounded — tombstone buildup from
// interleaved insert/erase forces periodic same-size compactions, and keeping
// every compacted-out table alive until process exit is a table-sized leak
// per compaction (first observed as linear RSS drift in the endurance soak).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "core/report.h"
#include "vm/page.h"

namespace dpg::core {

enum class ObjectState : std::uint32_t {
  kLive,
  kFreed,  // shadow pages PROT_NONE; any access is a dangling use
};

// One record per allocation. Owned by the guard engine that created it and
// linked into that engine's intrusive list so pool destruction can purge and
// recycle everything the pool produced.
struct ObjectRecord {
  std::uintptr_t shadow_base = 0;  // page-aligned base of the shadow span
  std::size_t span_length = 0;     // bytes covered incl. guard, page multiple
  std::size_t guard_length = 0;    // trailing guard bytes (0 or one page)
  std::uintptr_t user_shadow = 0;  // pointer handed to the program
  std::size_t user_size = 0;       // requested payload size
  std::uintptr_t canonical = 0;    // address the underlying allocator returned
  SiteId alloc_site = 0;
  // Atomic because a double free racing a cross-shard free reads it for the
  // report while the CAS winner writes it; relaxed is fine (diagnostic only).
  std::atomic<SiteId> free_site{0};
  // Site backtraces (DPG_SITE_DEPTH frames, see obs/backtrace.h). The alloc
  // stack is written before the record is published to the registry. The free
  // stack is written by the kLive->kFreed CAS winner only; free_stack_depth is
  // stored with release order after the frames so the fault handler's acquire
  // load never observes a depth covering unwritten frames.
  std::uint8_t alloc_stack_depth = 0;
  std::atomic<std::uint8_t> free_stack_depth{0};
  std::uintptr_t alloc_stack[obs::kMaxSiteFrames] = {};
  std::uintptr_t free_stack[obs::kMaxSiteFrames] = {};
  std::uint32_t owner_shard = 0;   // index of the ShadowEngine shard that
                                   // created the record (ShardedHeap routing)
  std::atomic<ObjectState> state{ObjectState::kLive};
  // True once the free's revocation resolved: the span reached PROT_NONE (or
  // the refused mprotect was absorbed by quarantining the canonical block).
  // Written and read only under the owner engine's lock. Records with
  // state==kFreed but !revocation_done are in flight — sitting in the
  // revocation queue or on the remote-free list — and must not be released
  // by budget reclamation or handed to the GC.
  bool revocation_done = false;

  ObjectRecord* prev = nullptr;  // intrusive owner list
  ObjectRecord* next = nullptr;

  // Cross-shard remote-free list (lock-free MPSC Treiber stack). A record is
  // pushed here at most once — the kLive->kFreed CAS in the freeing thread
  // is the unique admission ticket — and popped only by the owner shard
  // under its engine lock, so the field never races with prev/next use.
  std::atomic<ObjectRecord*> remote_next{nullptr};
};

// Copies a record's alloc/free site stacks into a report. Async-signal-safe
// (the fault handler uses it too): the free depth is acquire-loaded after the
// frames were release-published by the kLive->kFreed CAS winner, so a
// cross-thread race never yields torn frames.
inline void copy_site_stacks(const ObjectRecord& rec,
                             DanglingReport& report) noexcept {
  report.alloc_stack_depth = rec.alloc_stack_depth;
  for (std::size_t i = 0; i < report.alloc_stack_depth; ++i) {
    report.alloc_stack[i] = rec.alloc_stack[i];
  }
  report.free_stack_depth =
      rec.free_stack_depth.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < report.free_stack_depth; ++i) {
    report.free_stack[i] = rec.free_stack[i];
  }
}

class ShadowRegistry {
 public:
  explicit ShadowRegistry(std::size_t initial_slots = 1u << 14);
  ~ShadowRegistry();

  ShadowRegistry(const ShadowRegistry&) = delete;
  ShadowRegistry& operator=(const ShadowRegistry&) = delete;

  // Maps every page of rec's shadow span to &rec. The record must outlive its
  // registration.
  void insert(const ObjectRecord& rec);

  // Unmaps every page of rec's shadow span (called when the span's VA is
  // recycled at pool destruction or budget reclamation).
  void erase(const ObjectRecord& rec);

  // Async-signal-safe: resolves any address (not just page-aligned) to the
  // record whose shadow span covers it, or nullptr.
  [[nodiscard]] const ObjectRecord* lookup(std::uintptr_t addr) const noexcept;

  [[nodiscard]] std::size_t entries() const;

  // Process-wide registry used by the fault manager and all guard engines.
  static ShadowRegistry& global();

 private:
  struct Slot {
    std::atomic<std::uintptr_t> key{0};  // page base; 0 empty, 1 tombstone
    std::atomic<const ObjectRecord*> value{nullptr};
  };
  struct Table {
    std::size_t mask;         // slot count - 1 (power of two)
    std::size_t used = 0;     // live + tombstoned slots
    std::size_t live = 0;     // live slots
    Slot* slots;
  };

  static constexpr std::uintptr_t kTombstone = 1;

  static Table* make_table(std::size_t slot_count);
  void grow_locked(std::size_t min_live);
  static void put(Table& t, std::uintptr_t page, const ObjectRecord* rec);

  // Reader registration counters, striped so concurrent lookups touch
  // (mostly) private cachelines, indexed by epoch parity within each stripe.
  // All accesses are seq_cst: lookup's registration must be totally ordered
  // against the rehash's epoch flip, or the drain loop could miss a reader
  // that already holds the dying table's pointer (see lookup()/grow_locked()).
  static constexpr std::size_t kReaderStripes = 16;
  struct alignas(64) ReaderStripe {
    std::atomic<std::uint64_t> count[2] = {};
  };

  mutable std::mutex mu_;
  std::atomic<Table*> table_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable ReaderStripe readers_[kReaderStripes];
};

}  // namespace dpg::core
