// Runtime — process-wide facade and the drop-in malloc/free entry points.
//
// The paper stresses that "if reuse of address space is not important ...
// our technique can be directly applied on the binaries ... we just need to
// intercept all calls to malloc and free". dpg_malloc/dpg_free are that
// interception surface: they route through a global ShardedHeap (per-thread
// ShadowEngine shards over one arena; a single shard is exactly the classic
// GuardedHeap configuration), with no pool allocation involved. Programs
// wanting VA reuse use GuardedPool / PoolScope (or the compiler substrate)
// instead.
#pragma once

#include <cstddef>

#include "core/guarded_heap.h"
#include "core/guarded_pool.h"
#include "core/sharded_heap.h"

namespace dpg::core {

struct RuntimeConfig {
  GuardConfig guard;
  std::size_t arena_window = vm::PhysArena::kDefaultWindow;
  // Engine shards behind dpg_malloc/dpg_free (core/sharded_heap.h).
  // 0 = min(hardware_concurrency, 8).
  std::size_t shards = 0;
};

class Runtime {
 public:
  // First call fixes the configuration; later calls ignore `cfg`.
  static Runtime& instance(const RuntimeConfig& cfg = {});

  [[nodiscard]] ShardedHeap& heap() noexcept { return heap_; }
  [[nodiscard]] vm::PhysArena& arena() noexcept { return arena_; }

  // Aggregate §3.4 arithmetic: seconds until a process that consumes
  // `pages_per_second` fresh shadow pages with no reuse exhausts `va_bits`
  // of user address space (the paper's 9-hour calculation uses 2^47 and one
  // 4K page per microsecond).
  [[nodiscard]] static double seconds_until_va_exhaustion(
      double pages_per_second, unsigned va_bits = 47) noexcept {
    const double bytes = static_cast<double>(std::uintptr_t{1} << va_bits);
    return bytes / (static_cast<double>(vm::kPageSize) * pages_per_second);
  }

 private:
  explicit Runtime(const RuntimeConfig& cfg)
      : arena_(cfg.arena_window), heap_(arena_, cfg.guard, cfg.shards) {}

  // Registers the process heap's counters with the obs exporter, as dump-time
  // sums over the shards so the dpg_* series stay process-wide no matter how
  // many engines serve them (the Runtime is immortal, so the pointers stay
  // valid for any late dump).
  void export_counters() noexcept;

  vm::PhysArena arena_;
  ShardedHeap heap_;
};

// Drop-in allocation entry points backed by Runtime::instance().
[[nodiscard]] void* dpg_malloc(std::size_t size);
void dpg_free(void* p);
[[nodiscard]] void* dpg_calloc(std::size_t count, std::size_t size);
[[nodiscard]] void* dpg_realloc(void* p, std::size_t new_size);

}  // namespace dpg::core
