// ConservativeScanner — §3.4 strategy 2.
//
// "An alternative approach is to run a conservative garbage collector at the
//  same infrequent intervals ... since the actual physical memory consumption
//  is not an issue and GC only needs to ameliorate [VA exhaustion and page-
//  table pressure], we can run garbage collection quite infrequently."
//
// The scanner does exactly (and only) what the paper needs: it releases the
// virtual addresses of *freed* objects that are no longer referenced from any
// registered root range or from any live guarded object. It never moves or
// frees physical memory — the underlying allocator already reclaimed that at
// free() time. Objects whose freed shadow addresses are still stored
// somewhere stay protected, preserving detection for exactly the pointers
// that could still be used.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/guarded_heap.h"

namespace dpg::core {

class ConservativeScanner {
 public:
  // Registers a root range (e.g. a workload's global data) scanned for
  // pointer-like words on every collect().
  void add_root(const void* base, std::size_t length);
  void clear_roots() noexcept { roots_.clear(); }

  struct Result {
    std::size_t freed_candidates = 0;  // freed spans considered
    std::size_t reclaimed = 0;         // spans recycled
    std::size_t retained = 0;          // spans still referenced somewhere
    std::size_t bytes_reclaimed = 0;
  };

  // Scans roots plus the payloads of all live objects in `engines`, then
  // reclaims every freed span with no conservative referent.
  Result collect(std::span<ShadowEngine* const> engines);

 private:
  struct Root {
    const void* base;
    std::size_t length;
  };
  std::vector<Root> roots_;
};

}  // namespace dpg::core
