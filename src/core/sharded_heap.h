// ShardedHeap — per-thread ShadowEngine shards over one shared arena/heap.
//
// The single-engine GuardedHeap serializes every malloc/free on one mutex;
// on a multi-core server the lock, not the MMU work, becomes the ceiling.
// ShardedHeap keeps the paper's machinery intact and splits only the *engine*
// state (records list, magazines, revocation queue, quarantine, counters)
// across DPG_SHARDS ShadowEngines. Deliberately shared:
//
//   PhysArena + SegregatedHeap  one canonical address space and allocator —
//                               required so a degraded canonical pointer, or
//                               a block freed on a different thread than its
//                               allocator, still resolves correctly.
//   VaFreeList                  shadow VAs recycled by any shard serve all
//                               shards (the paper's shared free list).
//   DegradationGovernor         one global ladder; a syscall refusal on one
//                               shard degrades the process-wide policy, and
//                               the fault manager keeps one consistent view
//                               through the global ShadowRegistry.
//
// Routing: a thread is pinned to a home shard (round-robin token on first
// use). Allocations go to the home shard. Frees are routed by the record's
// owner_shard: same shard -> the ordinary locked path; cross-shard -> the
// owner's lock-free MPSC remote list (ShadowEngine::free_remote), drained on
// the owner's next allocation, on flush, or by the producer that crosses the
// backstop threshold. Detection guarantees under this routing are unchanged
// except for the bounded revocation delay documented in DESIGN.md §11.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/alloc_iface.h"
#include "alloc/heap.h"
#include "core/guarded_heap.h"

namespace dpg::core {

class ShardedHeap {
 public:
  static constexpr std::size_t kMaxShards = 64;

  // `shards` = 0 picks min(hardware_concurrency, 8). Clamped to
  // [1, kMaxShards].
  explicit ShardedHeap(vm::PhysArena& arena, GuardConfig cfg = {},
                       std::size_t shards = 0);
  ~ShardedHeap();

  ShardedHeap(const ShardedHeap&) = delete;
  ShardedHeap& operator=(const ShardedHeap&) = delete;

  [[nodiscard]] void* malloc(std::size_t size, SiteId site = 0);
  void free(void* p, SiteId site = 0);
  [[nodiscard]] void* calloc(std::size_t count, std::size_t size,
                             SiteId site = 0);
  [[nodiscard]] void* realloc(void* p, std::size_t new_size, SiteId site = 0);
  [[nodiscard]] std::size_t size_of(const void* p) const;

  // Rollup of per-shard snapshots. Each addend is a consistent cut of its
  // shard; after flush_all() (queues empty) cross-counter invariants hold on
  // the sum as well.
  [[nodiscard]] GuardStats stats() const;
  [[nodiscard]] alloc::HeapStats heap_stats() const { return heap_.stats(); }

  // Drains every shard's remote-free list and revocation queue: after this,
  // every free issued so far is revoked (revoked_spans catches up to frees).
  void flush_all();

  [[nodiscard]] std::size_t shards() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] ShadowEngine& engine(std::size_t i) noexcept {
    return *engines_[i];
  }
  [[nodiscard]] const ShadowEngine& engine(std::size_t i) const noexcept {
    return *engines_[i];
  }
  // The calling thread's home shard (stable for the thread's lifetime).
  [[nodiscard]] ShadowEngine& home_engine() noexcept {
    return *engines_[home_shard()];
  }
  [[nodiscard]] vm::VaFreeList& shadow_freelist() noexcept {
    return shadow_va_;
  }

  // Oracle introspection (src/fuzz): same contracts as the ShadowEngine
  // hooks; revocation_applied routes to the record's owner engine so the
  // owner-lock-protected revocation_done flag is read correctly.
  [[nodiscard]] static const ObjectRecord* record_of(const void* p) {
    return ShadowEngine::record_of(p);
  }
  [[nodiscard]] bool revocation_applied(const void* p) const;

 private:
  [[nodiscard]] std::uint32_t home_shard() const noexcept;

  alloc::ArenaSource source_;
  alloc::SegregatedHeap heap_;  // internally mutexed; shared by all shards
  vm::VaFreeList shadow_va_;
  // Sampled-rung ledger, shared like the heap: a fast-path object allocated
  // on one shard may be freed through any shard's registry-miss path.
  SampledTable sampled_;
  // One Revoker for all shards: a single revoked protection key (each
  // process gets 15 user keys at most — one per shard would exhaust them by
  // shard 16) and one pkey_alloc. Declared before engines_ so the key
  // outlives every engine's release_all.
  vm::Revoker revoker_;
  // Engines must be destroyed before the members they reference; keep last.
  std::vector<std::unique_ptr<ShadowEngine>> engines_;
};

}  // namespace dpg::core
