// DegradationGovernor — resource-exhaustion policy for the guard runtime.
//
// The paper's design spends one VMA per live object plus a PROT_NONE VMA per
// freed-but-still-guarded object, so a busy server walks straight into
// vm.max_map_count (we hit it in benches) and any mmap/mprotect refusal used
// to surface as an exception through malloc. Production-grade UAF defenses
// treat exhaustion as a first-class state with a safe fallback; this
// governor is that state machine. The host application keeps serving traffic
// no matter what the kernel refuses — detection degrades, never the server.
//
// The ladder (one-way rungs downward, hysteresis upward):
//
//   kFullGuard       every allocation gets a shadow alias; frees revoke via
//                    PROT_NONE. Full detection (the paper's mode).
//   kSampled         guard 1-in-N allocations (GWP-ASan style per-thread
//                    decrementing counter). Unsampled allocations take a
//                    fast unguarded path that still records alloc/free, so
//                    double frees stay exactly detected; dangling *uses* of
//                    unsampled objects go undetected. Under continued
//                    pressure the governor widens N (doubling up to
//                    sample_rate_max) before demoting further; hysteresis
//                    relief re-tightens N back toward the base rate before
//                    promoting to full guarding.
//   kQuarantineOnly  no new shadow aliases (no mmap, no new VMAs); frees of
//                    degraded objects enter a delayed-reuse quarantine so
//                    stale pointers dereference stale-but-unreused memory
//                    instead of a neighbour's data. Already-guarded objects
//                    keep their guarantees.
//   kUnguarded       straight passthrough to the underlying allocator —
//                    last resort when even bookkeeping-free operation is all
//                    the kernel will give us.
//
// Invariant (DESIGN.md §10): degradation may *suspend* detection, never
// falsify it — no mode ever produces a false positive, and objects guarded
// before a downgrade still trap correctly after it.
//
// Triggers down: a shim syscall failure on the guard path, arena growth
// failure (after the relief retry), or the live-VMA estimate crossing the
// high-water fraction of the budget (parsed from /proc/sys/vm/max_map_count,
// overridable via DPG_VMA_BUDGET). Recovery up: after `recover_after`
// consecutive clean allocations with the VMA estimate below the low-water
// mark, one rung is retried; each relapse doubles the required streak
// (bounded exponential backoff), so a persistently refusing kernel costs one
// probe per epoch, not a flap per request.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace dpg::core {

// Rungs are contiguous integers: the governor moves one rung at a time via
// int(m) +/- 1, and the dump/report layers print the numeric value.
enum class GuardMode : int {
  kFullGuard = 0,
  kSampled = 1,
  kQuarantineOnly = 2,
  kUnguarded = 3,
};

// One degradation-ladder transition, kept in a bounded ring for postmortem
// dumps (the kLadder section of a .dpgcrash file — see obs/dump.h). Field
// layout mirrors obs::dump::LadderEntry so the dump section is a straight
// copy. Sample-rate adjustments on the kSampled rung record here too, with
// from_mode == to_mode == kSampled and reason "sample-widen"/"sample-
// tighten" — they are policy movement worth postmortem context even though
// the rung itself does not change.
struct LadderRecord {
  std::uint64_t monotonic_ns = 0;
  std::uint32_t from_mode = 0;
  std::uint32_t to_mode = 0;
  std::uint32_t recovery = 0;  // 1 = promotion back up the ladder
  char reason[20] = {};
};

[[nodiscard]] constexpr const char* to_string(GuardMode m) noexcept {
  switch (m) {
    case GuardMode::kFullGuard: return "full-guard";
    case GuardMode::kSampled: return "sampled";
    case GuardMode::kQuarantineOnly: return "quarantine-only";
    case GuardMode::kUnguarded: return "unguarded";
  }
  return "?";
}

struct GovernorConfig {
  // Live-VMA budget. 0 = read /proc/sys/vm/max_map_count at construction
  // (DPG_VMA_BUDGET overrides for the process-wide governor); if neither is
  // available, a conservative 65530 (the kernel default) is assumed.
  std::size_t vma_budget = 0;
  double high_water = 0.85;  // degrade when estimate/budget crosses this
  double low_water = 0.50;   // recovery requires estimate below this
  // Clean allocations required before retrying one rung up. 0 disables
  // recovery (sticky degradation).
  std::uint64_t recover_after = 4096;
  // Delayed-reuse quarantine budget for degraded frees (bytes).
  std::size_t quarantine_bytes = std::size_t{64} << 20;
  // Base 1-in-N guard rate on the kSampled rung (DPG_SAMPLE_RATE for the
  // process-wide governor). Clamped to >= 1; N == 1 guards everything.
  std::size_t sample_rate = 64;
  // Ceiling for adaptive widening: pressure doubles N up to this before the
  // ladder demotes past the sampled rung.
  std::size_t sample_rate_max = 8192;
};

// Live counters, exported by the process-wide instance as dpg_degrade_* /
// dpg_guard_errors. All relaxed: diagnostics, not synchronization.
struct GovernorCounters {
  std::atomic<std::uint64_t> transitions{0};      // demotions + promotions
  std::atomic<std::uint64_t> mode{0};             // current rung (gauge)
  std::atomic<std::uint64_t> syscall_failures{0};
  std::atomic<std::uint64_t> arena_failures{0};
  std::atomic<std::uint64_t> recoveries{0};       // promotions only
  std::atomic<std::uint64_t> vma_estimate{0};     // live guard VMAs (gauge)
  std::atomic<std::uint64_t> degraded_allocs{0};  // served without a guard
  std::atomic<std::uint64_t> guard_errors{0};     // C-boundary catches
  std::atomic<std::uint64_t> sample_rate_effective{0};  // current N (gauge)
  std::atomic<std::uint64_t> sample_widens{0};    // N doublings under pressure
  std::atomic<std::uint64_t> sample_tightens{0};  // N halvings on relief
  std::atomic<std::uint64_t> pkey_fallbacks{0};   // pkey_alloc refusals that
                                                  // fell back to batched
                                                  // mprotect (vm/revoke.h)
};

class DegradationGovernor {
 public:
  explicit DegradationGovernor(GovernorConfig cfg = {});

  DegradationGovernor(const DegradationGovernor&) = delete;
  DegradationGovernor& operator=(const DegradationGovernor&) = delete;

  // Process-wide instance (env-configured, counters registered with dpg_obs).
  // Engines with no explicit governor share this one.
  static DegradationGovernor& process();

  [[nodiscard]] GuardMode mode() const noexcept {
    return static_cast<GuardMode>(mode_.load(std::memory_order_relaxed));
  }

  // Consulted once per allocation: applies the VMA-pressure check, advances
  // the recovery streak, and returns the mode this allocation must use.
  GuardMode on_alloc() noexcept;

  // A guard-path syscall was refused (post-relief): widen N when on the
  // sampled rung, otherwise drop one rung.
  void on_syscall_failure(const char* what, int err) noexcept;

  // Arena growth failed even after relief: physical exhaustion. Drops to
  // kUnguarded only if quarantined memory cannot be returned (the engine
  // drains its quarantine first and retries; this is the last-resort note).
  void on_arena_exhausted() noexcept;

  // The MPK backend's pkey_alloc was refused (ENOSYS/ENOSPC/injected) and the
  // Revoker fell back to batched mprotect. Key exhaustion is demotion-class
  // pressure worth a ladder entry, but NOT a rung change: the fallback keeps
  // full detection, so demoting would throw away guarantees the engine still
  // delivers. Records a from==to LadderRecord ("pkey-fallback") for
  // postmortem context, like the sample-rate adjustments do.
  void on_pkey_fallback(int err) noexcept;

  // Guard-VMA accounting from the engines (coarse: one per fresh shadow
  // span / trailing-guard region, minus one per munmap).
  void add_vmas(long delta) noexcept;

  // Per-allocation sampling decision for the kSampled rung: a per-thread
  // decrementing counter fires 1-in-N; the first allocation a thread makes
  // after arming is always guarded (GWP-ASan style). Only meaningful while
  // mode() is kSampled.
  [[nodiscard]] bool sample_this_alloc() noexcept;

  // Effective 1-in-N the sampled rung currently guards at (the base rate
  // until pressure widens it).
  [[nodiscard]] std::size_t sample_rate() const noexcept {
    return static_cast<std::size_t>(
        sample_n_.load(std::memory_order_relaxed));
  }

  // Accrued wall-clock on rung `r`, including the in-progress stay when `r`
  // is the current rung. Lock-free; diagnostics-grade precision.
  [[nodiscard]] std::uint64_t residency_ns(GuardMode r) const noexcept;

  [[nodiscard]] std::size_t vma_budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t quarantine_budget() const noexcept {
    return cfg_.quarantine_bytes;
  }
  [[nodiscard]] const GovernorCounters& counters() const noexcept {
    return ctr_;
  }

  // Transition-history ring capacity (matches the dump section bound).
  static constexpr std::size_t kLadderHistory = 32;

  // Copies the most recent transitions (oldest first) into out; returns the
  // count. Async-signal-safe: the head is acquire-loaded, so every copied
  // entry was fully release-published. A transition racing the copy can
  // overwrite the oldest entry mid-read — tolerable for a diagnostic ring,
  // and impossible on the terminal fault path (the process is aborting).
  std::size_t history(LadderRecord* out, std::size_t max) const noexcept;

  // Consistent snapshot for dump sections: retries until the copied ring and
  // the rung gauge agree (the newest entry's to_mode matches the mode it
  // returns), so a SIGUSR2 dump taken mid-demotion never reports a rung that
  // disagrees with its own ladder-history section. Async-signal-safe; after
  // bounded retries (a transition suspended under this very thread) it
  // trusts the published ring over the racing gauge.
  std::size_t history_consistent(LadderRecord* out, std::size_t max,
                                 std::uint32_t* mode_out) const noexcept;

  // Test/bench hook: pin the ladder to a rung (counts as a transition when
  // the rung actually changes).
  void force_mode(GuardMode m) noexcept;

  // Renders this governor's state as a kLadder dump section (LadderHeader +
  // LadderEntry[]) into buf; returns bytes written, 0 if cap is too small.
  // Async-signal-safe (history_consistent + plain copies). Shared by the
  // process governor's dump hook and harnesses that publish a private
  // governor (src/soak).
  static std::size_t render_ladder_section(DegradationGovernor* self,
                                           char* buf,
                                           std::size_t cap) noexcept;

  // Bumps the guard-error counter (C-boundary catches; see note_guard_error).
  void count_guard_error() noexcept {
    ctr_.guard_errors.fetch_add(1, std::memory_order_relaxed);
  }
  // Bumps the process-wide degraded-allocation gauge (engines report in).
  void count_degraded_alloc() noexcept {
    ctr_.degraded_allocs.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  // Pressure on the sampled rung acts once per this many allocations, so a
  // burst widens N in measured steps instead of slamming it to the ceiling.
  static constexpr std::uint64_t kPressureInterval = 64;
  static constexpr std::size_t kSampleSlots = 64;
  struct alignas(64) SampleSlot {
    std::atomic<std::uint64_t> countdown{0};
  };

  void shift_mode(GuardMode to, const char* why, bool is_recovery) noexcept;
  // Doubles / halves the effective N. Return false when already at the
  // respective bound (caller then moves a real rung instead).
  bool widen_sample_rate(const char* why) noexcept;
  bool tighten_sample_rate(const char* why) noexcept;
  void record_ladder(GuardMode from, GuardMode to, const char* why,
                     bool is_recovery) noexcept;  // callers hold transition_mu_

  GovernorConfig cfg_;
  std::size_t budget_ = 0;
  std::size_t high_mark_ = 0;
  std::size_t low_mark_ = 0;
  std::atomic<int> mode_{0};
  std::atomic<std::uint64_t> ok_streak_{0};
  std::atomic<std::uint64_t> backoff_{1};  // doubles per relapse, capped
  std::atomic<std::uint64_t> sample_n_{64};        // effective 1-in-N
  std::atomic<std::uint64_t> pressure_ticks_{0};   // sampled-rung pressure
  std::atomic<std::uint64_t> last_transition_ns_{0};
  std::atomic<std::uint64_t> residency_ns_[4] = {};
  SampleSlot sample_slots_[kSampleSlots];
  std::mutex transition_mu_;
  GovernorCounters ctr_;
  // Transition history: writers (under transition_mu_) fill the slot at
  // head % capacity, then release-publish the new head; lock-free readers
  // (the crash-dump section) acquire-load the head and copy backwards.
  LadderRecord ladder_[kLadderHistory] = {};
  std::atomic<std::uint64_t> ladder_head_{0};  // total transitions recorded
};

// Records a guard-layer error swallowed at a C boundary (LD_PRELOAD paths):
// bumps the process governor's dpg_guard_errors counter.
void note_guard_error() noexcept;

}  // namespace dpg::core
