// Memcheck-lite — the Valgrind stand-in for the Table 2 comparison.
//
// Valgrind's memcheck tracks per-byte addressability in shadow memory,
// checks every load/store against it, and delays reuse of freed blocks with
// a quarantine so that (heuristically) accesses to freed memory are flagged
// "as long as the freed memory is not reused for other allocations" (paper
// Section 5.1). We reproduce exactly that checking architecture:
//
//   - two-level shadow bitmap, 1 A-bit per byte of address space touched;
//   - every dereference through mc_ptr consults the bitmap;
//   - free() clears A-bits and parks the block in a bounded quarantine FIFO;
//     eviction really frees, after which dangling accesses go undetected —
//     the heuristic hole the paper calls out.
//
// What is NOT modelled: Valgrind's dynamic binary translation, which taxes
// *all* instructions, not just memory ops. Our stand-in is therefore a
// conservative lower bound on Valgrind's slowdown; the paper's gap
// (148%–2537% vs <=15%) only widens under real DBT. Documented in DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "core/fault_manager.h"
#include "core/report.h"

namespace dpg::baseline {

class ShadowBitmap {
 public:
  static constexpr std::size_t kChunkBytes = 1u << 16;  // address span / chunk

  void mark(std::uintptr_t addr, std::size_t len, bool addressable);
  [[nodiscard]] bool readable(std::uintptr_t addr, std::size_t len) const;

  [[nodiscard]] std::size_t shadow_bytes() const noexcept {
    return chunks_.size() * (kChunkBytes / 8);
  }

 private:
  struct Chunk {
    std::uint8_t bits[kChunkBytes / 8] = {};
  };
  std::unordered_map<std::uintptr_t, std::unique_ptr<Chunk>> chunks_;
};

struct MemcheckStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t checks = 0;
  std::uint64_t quarantine_evictions = 0;
  std::size_t quarantine_bytes = 0;
};

// Allocation + checking context (process-global like Valgrind's state).
class MemcheckContext {
 public:
  static MemcheckContext& global();

  [[nodiscard]] void* allocate(std::size_t size);
  void deallocate(void* p);
  void check(const void* p, std::size_t len, core::AccessKind kind);

  [[nodiscard]] const MemcheckStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t shadow_bytes() const noexcept {
    return bitmap_.shadow_bytes();
  }

  static constexpr std::size_t kQuarantineLimit = 16u << 20;  // like --freelist-vol

 private:
  struct Quarantined {
    void* block;
    std::size_t size;
  };
  ShadowBitmap bitmap_;
  std::deque<Quarantined> quarantine_;
  MemcheckStats stats_;
};

// Checked pointer: every dereference consults the shadow bitmap. Like the
// real memcheck, the check covers the *access width* (at most a machine
// word), not the whole pointed-to struct: a -> dereference is about to read
// or write one member, and any byte of the object answers "is this
// allocation still addressable".
template <typename T>
class mc_ptr {
 public:
  mc_ptr() = default;
  explicit mc_ptr(T* raw) : raw_(raw) {}
  mc_ptr(std::nullptr_t) {}  // NOLINT: implicit, mirrors raw pointers

  static constexpr std::size_t kCheckBytes = sizeof(T) < 8 ? sizeof(T) : 8;

  [[nodiscard]] T& operator*() const {
    MemcheckContext::global().check(raw_, kCheckBytes,
                                    core::AccessKind::kUnknown);
    return *raw_;
  }
  [[nodiscard]] T* operator->() const {
    MemcheckContext::global().check(raw_, kCheckBytes,
                                    core::AccessKind::kUnknown);
    return raw_;
  }
  [[nodiscard]] T& operator[](std::size_t i) const {
    MemcheckContext::global().check(raw_ + i, kCheckBytes,
                                    core::AccessKind::kUnknown);
    return raw_[i];
  }

  [[nodiscard]] T* raw() const noexcept { return raw_; }
  explicit operator bool() const noexcept { return raw_ != nullptr; }
  friend bool operator==(const mc_ptr& a, const mc_ptr& b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend bool operator==(const mc_ptr& a, std::nullptr_t) noexcept {
    return a.raw_ == nullptr;
  }
  [[nodiscard]] mc_ptr operator+(std::ptrdiff_t d) const noexcept {
    return mc_ptr(raw_ + d);
  }

 private:
  T* raw_ = nullptr;
};

}  // namespace dpg::baseline
