#include "baseline/efence.h"

#include <sys/mman.h>

#include <new>

#include "core/fault_manager.h"
#include "vm/vm_stats.h"

namespace dpg::baseline {

EfenceAllocator::~EfenceAllocator() {
  std::lock_guard lock(mu_);
  while (head_.next != &head_) {
    core::ObjectRecord* rec = head_.next;
    core::ShadowRegistry::global().erase(*rec);
    munmap(reinterpret_cast<void*>(rec->shadow_base), rec->span_length);
    head_.next = rec->next;
    rec->next->prev = &head_;
    delete rec;
  }
}

void* EfenceAllocator::malloc(std::size_t size, core::SiteId site) {
  if (size == 0) size = 1;
  const std::size_t span = vm::page_up(size);
  void* base = mmap(nullptr, span, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  vm::syscall_counters().mmap.fetch_add(1, std::memory_order_relaxed);
  if (base == MAP_FAILED) throw std::bad_alloc{};

  // Electric Fence places the object flush against the end of its page run
  // (to catch overruns with a guard page); we keep the placement, 8-aligned.
  const std::uintptr_t user =
      (vm::addr(base) + span - size) & ~std::uintptr_t{7};

  auto* rec = new core::ObjectRecord;
  rec->shadow_base = vm::addr(base);
  rec->span_length = span;
  rec->user_shadow = user;
  rec->user_size = size;
  rec->canonical = vm::addr(base);  // no aliasing: canonical == shadow
  rec->alloc_site = site;
  rec->state.store(core::ObjectState::kLive, std::memory_order_release);
  rec->prev = head_.prev;
  rec->next = &head_;
  head_.prev->next = rec;
  head_.prev = rec;
  core::ShadowRegistry::global().insert(*rec);
  core::FaultManager::instance().install();

  std::lock_guard lock(mu_);
  stats_.allocations++;
  stats_.mapped_bytes += span;
  return reinterpret_cast<void*>(user);
}

void EfenceAllocator::free(void* p, core::SiteId site) {
  if (p == nullptr) return;
  std::unique_lock lock(mu_);
  const core::ObjectRecord* found =
      core::ShadowRegistry::global().lookup(vm::addr(p));
  if (found == nullptr || found->user_shadow != vm::addr(p)) {
    core::DanglingReport report;
    report.kind = core::AccessKind::kInvalidFree;
    report.fault_address = vm::addr(p);
    lock.unlock();
    core::FaultManager::instance().raise_software(report);
  }
  if (found->state.load(std::memory_order_acquire) ==
      core::ObjectState::kFreed) {
    core::DanglingReport report;
    report.kind = core::AccessKind::kFree;
    report.fault_address = vm::addr(p);
    report.object_base = found->user_shadow;
    report.object_size = found->user_size;
    report.alloc_site = found->alloc_site;
    report.free_site = found->free_site;
    lock.unlock();
    core::FaultManager::instance().raise_software(report);
  }
  auto* rec = const_cast<core::ObjectRecord*>(found);
  if (mprotect(reinterpret_cast<void*>(rec->shadow_base), rec->span_length,
               PROT_NONE) != 0) {
    throw std::bad_alloc{};
  }
  vm::syscall_counters().mprotect.fetch_add(1, std::memory_order_relaxed);
  rec->free_site = site;
  rec->state.store(core::ObjectState::kFreed, std::memory_order_release);
  stats_.frees++;
  stats_.protected_bytes += rec->span_length;
  // Never unmapped, never reused: the pages (and, pre-protection, their
  // physical frames) stay pinned — the memory blow-up the paper criticizes.
}

EfenceStats EfenceAllocator::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace dpg::baseline
