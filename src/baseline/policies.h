// Allocation/access policies — one type per evaluated configuration.
//
// Every workload in src/workloads is a template over a Policy, so each
// configuration in Tables 1–3 runs literally the same application code:
//
//   NativePolicy        "native": plain malloc, raw pointers, no pools.
//   PaPolicy            "PA": pool allocation only (the PA column) — pools
//                       with bounded lifetimes, no guard, no syscalls.
//   PaDummySyscallPolicy"PA + dummy syscalls": PA plus one dummy mremap-class
//                       syscall per allocation and one dummy mprotect per
//                       deallocation, isolating syscall cost from TLB cost
//                       exactly as in the paper's methodology.
//   GuardedPolicy       "Our approach": full shadow-page remapping with pool-
//                       based VA reuse.
//   GuardedNoPoolPolicy ablation: shadow pages without any VA reuse (the
//                       debugging / binary-only mode).
//   EfencePolicy        Electric Fence: one object per virtual+physical page.
//   CapabilityPolicy    SafeC/Xu-style fat pointers + global capability store
//                       (per-access software check).
//   MemcheckPolicy      Valgrind-memcheck stand-in (per-access bitmap check).
//
// Policy concept:
//   using ptr<T>;                          // handle type (raw or checked)
//   static ptr<T> make<T>(args...);        // allocate + construct
//   static ptr<T> alloc_array<T>(n);       // allocate n T's (no construct)
//   static void dispose(ptr<T>);           // free (no destructor: workloads
//                                          //   use trivially destructible types)
//   struct Scope;                          // RAII pool lifetime (no-op when
//                                          //   the scheme has no pools)
//   static const char* name();
//   static void reset();                   // drop cross-run state where possible
//
// MMU-based policies use raw T* handles: their per-access cost is exactly
// zero instructions, which is the paper's core claim. Software baselines use
// checked handles: their per-access cost is visible in the same source code.
#pragma once

#include <sys/mman.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

#include "alloc/pool.h"
#include "baseline/capability.h"
#include "baseline/efence.h"
#include "baseline/memcheck.h"
#include "core/guarded_pool.h"
#include "core/runtime.h"
#include "vm/vm_stats.h"

namespace dpg::baseline {

// ---------------------------------------------------------------------------
// Native
// ---------------------------------------------------------------------------
struct NativePolicy {
  template <typename T>
  using ptr = T*;

  static const char* name() { return "native"; }

  template <typename T, typename... Args>
  static T* make(Args&&... args) {
    void* raw = std::malloc(sizeof(T));
    if (raw == nullptr) throw std::bad_alloc{};
    return ::new (raw) T{std::forward<Args>(args)...};
  }
  template <typename T>
  static T* alloc_array(std::size_t n) {
    void* raw = std::malloc(n * sizeof(T));
    if (raw == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(raw);
  }
  template <typename T>
  static void dispose(T* p) {
    std::free(p);
  }
  struct Scope {
    explicit Scope(std::size_t = 0) {}
  };
  static void reset() {}
};

// ---------------------------------------------------------------------------
// Pool allocation only (no guard) — thread-local scope stack over alloc::Pool.
// ---------------------------------------------------------------------------
namespace detail {

struct PaState {
  alloc::MmapSource source;
  alloc::Pool global_pool{source};  // allocations outside any scope
};
inline PaState& pa_state() {
  static PaState* s = new PaState();
  return *s;
}

struct PaScopeStack {
  static inline thread_local alloc::Pool* current = nullptr;
};

// One dummy syscall of each class, against a scratch page — the paper's
// "PA + dummy syscalls" instrumentation.
struct DummySyscalls {
  static void* scratch() {
    static void* page = mmap(nullptr, vm::kPageSize, PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    return page;
  }
  static void on_alloc() {
    // mremap to the same size: enters the kernel, changes nothing.
    void* r = mremap(scratch(), vm::kPageSize, vm::kPageSize, 0);
    (void)r;
    vm::syscall_counters().mremap.fetch_add(1, std::memory_order_relaxed);
  }
  static void on_free() {
    mprotect(scratch(), vm::kPageSize, PROT_READ | PROT_WRITE);
    vm::syscall_counters().mprotect.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace detail

template <bool kDummySyscalls>
struct PaPolicyImpl {
  template <typename T>
  using ptr = T*;

  static const char* name() {
    return kDummySyscalls ? "PA+dummy-syscalls" : "PA";
  }

  static alloc::Pool& active_pool() {
    alloc::Pool* p = detail::PaScopeStack::current;
    return p != nullptr ? *p : detail::pa_state().global_pool;
  }

  template <typename T, typename... Args>
  static T* make(Args&&... args) {
    if constexpr (kDummySyscalls) detail::DummySyscalls::on_alloc();
    void* raw = active_pool().malloc(sizeof(T));
    return ::new (raw) T{std::forward<Args>(args)...};
  }
  template <typename T>
  static T* alloc_array(std::size_t n) {
    if constexpr (kDummySyscalls) detail::DummySyscalls::on_alloc();
    return static_cast<T*>(active_pool().malloc(n * sizeof(T)));
  }
  template <typename T>
  static void dispose(T* p) {
    if (p == nullptr) return;
    if constexpr (kDummySyscalls) detail::DummySyscalls::on_free();
    // poolfree against the pool that owns the pointer: with scoped usage the
    // active pool is the owner (workloads free within the allocating scope).
    active_pool().free(p);
  }

  struct Scope {
    explicit Scope(std::size_t elem_hint = 0)
        : pool_(detail::pa_state().source, elem_hint),
          parent_(detail::PaScopeStack::current) {
      detail::PaScopeStack::current = &pool_;
    }
    ~Scope() { detail::PaScopeStack::current = parent_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    alloc::Pool pool_;
    alloc::Pool* parent_;
  };

  // Global-pool allocations: data whose points-to node escapes to globals
  // lives in a never-destroyed pool regardless of the active scope (the ftpd
  // pattern of §4.3).
  template <typename T, typename... Args>
  static T* make_outside_scope(Args&&... args) {
    if constexpr (kDummySyscalls) detail::DummySyscalls::on_alloc();
    void* raw = detail::pa_state().global_pool.malloc(sizeof(T));
    return ::new (raw) T{std::forward<Args>(args)...};
  }
  template <typename T>
  static void dispose_outside_scope(T* p) {
    if (p == nullptr) return;
    if constexpr (kDummySyscalls) detail::DummySyscalls::on_free();
    detail::pa_state().global_pool.free(p);
  }

  static void reset() {}
};

using PaPolicy = PaPolicyImpl<false>;
using PaDummySyscallPolicy = PaPolicyImpl<true>;

// ---------------------------------------------------------------------------
// Our approach — guarded pools with shared VA reuse.
// ---------------------------------------------------------------------------
namespace detail {

struct GuardedState {
  // §3.4 strategy 1 as the production default: freed spans of a long-lived
  // pool are recycled once they exceed a generous budget, bounding virtual
  // address usage AND kernel VMA count ("the page table entry is tied up for
  // each non-reusable virtual page" — the paper's second cost). 128 MiB of
  // guarded freed spans ≈ 32k pages, well inside vm.max_map_count.
  core::GuardedPoolContext ctx{core::GuardConfig{
      .freed_va_budget = std::size_t{128} << 20}};
  core::GuardedPool global_pool{ctx};  // long-lived "global pool" (§3.4)
};
inline GuardedState& guarded_state() {
  static GuardedState* s = new GuardedState();
  return *s;
}

}  // namespace detail

struct GuardedPolicy {
  template <typename T>
  using ptr = T*;

  static const char* name() { return "dpguard"; }

  static core::GuardedPool& active_pool() {
    core::PoolScope* scope = core::PoolScope::current();
    return scope != nullptr ? scope->pool() : detail::guarded_state().global_pool;
  }

  template <typename T, typename... Args>
  static T* make(Args&&... args) {
    void* raw = active_pool().alloc(sizeof(T));
    return ::new (raw) T{std::forward<Args>(args)...};
  }
  template <typename T>
  static T* alloc_array(std::size_t n) {
    return static_cast<T*>(active_pool().alloc(n * sizeof(T)));
  }
  template <typename T>
  static void dispose(T* p) {
    if (p != nullptr) active_pool().free(p);
  }

  struct Scope {
    explicit Scope(std::size_t elem_hint = 0)
        : scope_(detail::guarded_state().ctx, elem_hint) {}

   private:
    core::PoolScope scope_;
  };

  template <typename T, typename... Args>
  static T* make_outside_scope(Args&&... args) {
    void* raw = detail::guarded_state().global_pool.alloc(sizeof(T));
    return ::new (raw) T{std::forward<Args>(args)...};
  }
  template <typename T>
  static void dispose_outside_scope(T* p) {
    if (p != nullptr) detail::guarded_state().global_pool.free(p);
  }

  static core::GuardedPoolContext& context() {
    return detail::guarded_state().ctx;
  }
  static core::GuardedPool& global_pool() {
    return detail::guarded_state().global_pool;
  }
  static void reset() {}
};

// Ablation: guard without pools (no VA reuse at all) — the binary-only /
// debugging configuration.
struct GuardedNoPoolPolicy {
  template <typename T>
  using ptr = T*;

  static const char* name() { return "dpguard-nopool"; }

  static core::ShardedHeap& heap() {
    static core::Runtime& rt = core::Runtime::instance();
    return rt.heap();
  }

  template <typename T, typename... Args>
  static T* make(Args&&... args) {
    return ::new (heap().malloc(sizeof(T))) T{std::forward<Args>(args)...};
  }
  template <typename T>
  static T* alloc_array(std::size_t n) {
    return static_cast<T*>(heap().malloc(n * sizeof(T)));
  }
  template <typename T>
  static void dispose(T* p) {
    if (p != nullptr) heap().free(p);
  }
  struct Scope {
    explicit Scope(std::size_t = 0) {}
  };
  static void reset() {}
};

// ---------------------------------------------------------------------------
// Electric Fence
// ---------------------------------------------------------------------------
struct EfencePolicy {
  template <typename T>
  using ptr = T*;

  static const char* name() { return "efence"; }

  static EfenceAllocator& allocator() {
    static EfenceAllocator* a = new EfenceAllocator();
    return *a;
  }

  template <typename T, typename... Args>
  static T* make(Args&&... args) {
    return ::new (allocator().malloc(sizeof(T))) T{std::forward<Args>(args)...};
  }
  template <typename T>
  static T* alloc_array(std::size_t n) {
    return static_cast<T*>(allocator().malloc(n * sizeof(T)));
  }
  template <typename T>
  static void dispose(T* p) {
    if (p != nullptr) allocator().free(p);
  }
  struct Scope {
    explicit Scope(std::size_t = 0) {}
  };
  static void reset() {}
};

// ---------------------------------------------------------------------------
// Capability store (per-access software check, fat pointers)
// ---------------------------------------------------------------------------
struct CapabilityPolicy {
  template <typename T>
  using ptr = cap_ptr<T>;

  static const char* name() { return "capability"; }

  template <typename T, typename... Args>
  static cap_ptr<T> make(Args&&... args) {
    const CapAllocator::Allocation a = CapAllocator::allocate(sizeof(T));
    ::new (a.payload) T{std::forward<Args>(args)...};
    return cap_ptr<T>(static_cast<T*>(a.payload), a.capability);
  }
  template <typename T>
  static cap_ptr<T> alloc_array(std::size_t n) {
    return CapAllocator::alloc_array<T>(n);
  }
  template <typename T>
  static void dispose(cap_ptr<T> p) {
    if (p) CapAllocator::deallocate(p.raw());
  }
  struct Scope {
    explicit Scope(std::size_t = 0) {}
  };
  static void reset() {}
};

// ---------------------------------------------------------------------------
// Memcheck-lite (Valgrind stand-in)
// ---------------------------------------------------------------------------
struct MemcheckPolicy {
  template <typename T>
  using ptr = mc_ptr<T>;

  static const char* name() { return "memcheck-lite"; }

  template <typename T, typename... Args>
  static mc_ptr<T> make(Args&&... args) {
    void* raw = MemcheckContext::global().allocate(sizeof(T));
    ::new (raw) T{std::forward<Args>(args)...};
    return mc_ptr<T>(static_cast<T*>(raw));
  }
  template <typename T>
  static mc_ptr<T> alloc_array(std::size_t n) {
    return mc_ptr<T>(
        static_cast<T*>(MemcheckContext::global().allocate(n * sizeof(T))));
  }
  template <typename T>
  static void dispose(mc_ptr<T> p) {
    if (p) MemcheckContext::global().deallocate(p.raw());
  }
  struct Scope {
    explicit Scope(std::size_t = 0) {}
  };
  static void reset() {}
};

}  // namespace dpg::baseline
