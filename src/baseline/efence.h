// EfenceAllocator — the Electric Fence / PageHeap baseline (paper Section 5.3).
//
// "Both the tools allocate only one memory object per virtual and physical
//  page, and do not attempt to share a physical page through different
//  virtual pages. This means that even small allocations use up a page of
//  actual physical memory."
//
// Each allocation gets its own anonymous mapping (object placed at the *end*
// of the mapping, Electric Fence style, with an optional trailing guard
// page); free() protects the pages and — faithfully to EF_PROTECT_FREE —
// never reuses them. Records are registered in the shared ShadowRegistry so
// dangling uses produce the same diagnostics as dpguard, making head-to-head
// tests and the physical-memory comparison (bench_addrspace) possible.
#pragma once

#include <cstddef>
#include <mutex>

#include "core/registry.h"
#include "core/stats.h"

namespace dpg::baseline {

struct EfenceStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::size_t mapped_bytes = 0;     // == physical bytes: every page is private
  std::size_t protected_bytes = 0;  // freed, never reused
};

class EfenceAllocator {
 public:
  EfenceAllocator() = default;
  ~EfenceAllocator();

  EfenceAllocator(const EfenceAllocator&) = delete;
  EfenceAllocator& operator=(const EfenceAllocator&) = delete;

  [[nodiscard]] void* malloc(std::size_t size, core::SiteId site = 0);
  void free(void* p, core::SiteId site = 0);

  [[nodiscard]] EfenceStats stats() const;

 private:
  mutable std::mutex mu_;
  core::ObjectRecord head_{.prev = &head_, .next = &head_};
  EfenceStats stats_;
};

}  // namespace dpg::baseline
