#include "baseline/memcheck.h"

#include <malloc.h>

#include <algorithm>
#include <cstdlib>
#include <new>

namespace dpg::baseline {

void ShadowBitmap::mark(std::uintptr_t addr, std::size_t len,
                        bool addressable) {
  for (std::size_t i = 0; i < len;) {
    const std::uintptr_t a = addr + i;
    const std::uintptr_t chunk_key = a / kChunkBytes;
    auto& chunk = chunks_[chunk_key];
    if (chunk == nullptr) chunk = std::make_unique<Chunk>();
    const std::size_t in_chunk = a % kChunkBytes;
    const std::size_t n = std::min(len - i, kChunkBytes - in_chunk);
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t bit = in_chunk + b;
      if (addressable) {
        chunk->bits[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
      } else {
        chunk->bits[bit / 8] &= static_cast<std::uint8_t>(~(1u << (bit % 8)));
      }
    }
    i += n;
  }
}

bool ShadowBitmap::readable(std::uintptr_t addr, std::size_t len) const {
  for (std::size_t i = 0; i < len; ++i) {
    const std::uintptr_t a = addr + i;
    const auto it = chunks_.find(a / kChunkBytes);
    if (it == chunks_.end()) return false;
    const std::size_t bit = a % kChunkBytes;
    if ((it->second->bits[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

MemcheckContext& MemcheckContext::global() {
  static MemcheckContext* ctx = new MemcheckContext();
  return *ctx;
}

void* MemcheckContext::allocate(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  bitmap_.mark(reinterpret_cast<std::uintptr_t>(p), size, true);
  stats_.allocations++;
  return p;
}

void MemcheckContext::deallocate(void* p) {
  if (p == nullptr) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  if (!bitmap_.readable(addr, 1)) {
    // Either never allocated or already freed: memcheck reports an invalid
    // free in both cases (it cannot always distinguish them — a heuristic
    // tool's best effort).
    core::DanglingReport report;
    report.kind = core::AccessKind::kFree;
    report.fault_address = addr;
    core::FaultManager::instance().raise_software(report);
  }
  // We do not know the exact size without malloc_usable_size; track it via a
  // conservative 1-byte unmark plus quarantine bookkeeping using the usable
  // size glibc reports.
  const std::size_t size = malloc_usable_size(p);
  bitmap_.mark(addr, size, false);
  quarantine_.push_back(Quarantined{p, size});
  stats_.frees++;
  stats_.quarantine_bytes += size;
  while (stats_.quarantine_bytes > kQuarantineLimit && !quarantine_.empty()) {
    Quarantined victim = quarantine_.front();
    quarantine_.pop_front();
    stats_.quarantine_bytes -= victim.size;
    stats_.quarantine_evictions++;
    std::free(victim.block);  // after this, dangling uses go undetected
  }
}

void MemcheckContext::check(const void* p, std::size_t len,
                            core::AccessKind kind) {
  stats_.checks++;
  if (p != nullptr &&
      bitmap_.readable(reinterpret_cast<std::uintptr_t>(p), len)) {
    return;
  }
  core::DanglingReport report;
  report.kind = kind;
  report.fault_address = reinterpret_cast<std::uintptr_t>(p);
  report.object_size = len;
  core::FaultManager::instance().raise_software(report);
}

}  // namespace dpg::baseline
