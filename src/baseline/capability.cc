#include "baseline/capability.h"

#include <cstdlib>

namespace dpg::baseline {

namespace {
[[nodiscard]] std::size_t hash_cap(std::uint64_t cap, std::size_t mask) noexcept {
  return static_cast<std::size_t>((cap * 0x9E3779B97F4A7C15ull) >> 13) & mask;
}
}  // namespace

CapabilityStore::CapabilityStore(std::size_t initial_slots)
    : slots_(initial_slots, 0) {}

CapabilityStore& CapabilityStore::global() {
  static CapabilityStore store;
  return store;
}

std::uint64_t CapabilityStore::issue() {
  if ((used_ + 1) * 2 > slots_.size()) grow();
  const std::uint64_t cap = next_cap_++;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hash_cap(cap, mask);
  while (slots_[i] > 1) i = (i + 1) & mask;
  if (slots_[i] == 0) used_++;
  slots_[i] = cap;
  live_++;
  return cap;
}

bool CapabilityStore::revoke(std::uint64_t cap) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hash_cap(cap, mask);
  while (slots_[i] != 0) {
    if (slots_[i] == cap) {
      slots_[i] = 1;  // tombstone
      live_--;
      return true;
    }
    i = (i + 1) & mask;
  }
  return false;
}

bool CapabilityStore::live(std::uint64_t cap) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hash_cap(cap, mask);
  while (slots_[i] != 0) {
    if (slots_[i] == cap) return true;
    i = (i + 1) & mask;
  }
  return false;
}

void CapabilityStore::grow() {
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  used_ = 0;
  live_ = 0;
  for (std::uint64_t cap : old) {
    if (cap > 1) {
      const std::size_t mask = slots_.size() - 1;
      std::size_t i = hash_cap(cap, mask);
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = cap;
      used_++;
      live_++;
    }
  }
}

CapAllocator::Allocation CapAllocator::allocate(std::size_t size) {
  // Header holds the capability so free() can revoke it — SafeC keeps the
  // same association through its pointer metadata.
  auto* block = static_cast<std::uint64_t*>(std::malloc(size + 16));
  if (block == nullptr) throw std::bad_alloc{};
  const std::uint64_t cap = CapabilityStore::global().issue();
  block[0] = cap;
  return Allocation{block + 2, cap};
}

void CapAllocator::deallocate(void* payload) {
  if (payload == nullptr) return;
  auto* block = static_cast<std::uint64_t*>(payload) - 2;
  if (!CapabilityStore::global().revoke(block[0])) {
    core::DanglingReport report;
    report.kind = core::AccessKind::kFree;
    report.fault_address = reinterpret_cast<std::uintptr_t>(payload);
    core::FaultManager::instance().raise_software(report);
  }
  block[0] = 0;
  std::free(block);
}

}  // namespace dpg::baseline
