// Capability-store baseline — SafeC (Austin et al.) as refined by
// Fisher/Patil and Xu et al. (paper Section 5.2).
//
// "SafeC creates a unique capability (a 32-bit value) for each memory
//  allocation and puts it in a Global Capability Store (GCS). It also stores
//  this capability with the meta-data of the returned pointer. ... Before
//  every access via a pointer, its capability is checked for membership in
//  the global capability store. A free removes the capability."
//
// This is the "software checks on all individual loads and stores" point in
// the design space: every dereference costs a hash probe, and the fat
// pointer + store cost the 1.6x–4x memory overhead the paper cites. cap_ptr
// is the fat pointer; propagation with copies is automatic (it is a value
// type), exactly like SafeC's metadata propagation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fault_manager.h"
#include "core/report.h"

namespace dpg::baseline {

// Open-addressing hash set of live capabilities. Single-threaded by design
// (the workloads are single-threaded, as in the paper's runs).
class CapabilityStore {
 public:
  explicit CapabilityStore(std::size_t initial_slots = 1u << 16);

  // Issues a fresh capability for an allocation.
  [[nodiscard]] std::uint64_t issue();
  // Revokes at free; returns false if it was not live (double free).
  bool revoke(std::uint64_t cap);
  [[nodiscard]] bool live(std::uint64_t cap) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  // Bytes of metadata held — the GCS memory overhead the paper criticizes.
  [[nodiscard]] std::size_t store_bytes() const noexcept {
    return slots_.capacity() * sizeof(std::uint64_t);
  }

  static CapabilityStore& global();

 private:
  void grow();
  std::vector<std::uint64_t> slots_;  // 0 = empty, 1 = tombstone
  std::size_t live_ = 0;
  std::size_t used_ = 0;
  std::uint64_t next_cap_ = 2;
};

// Fat pointer: raw address + capability. 16 bytes, like SafeC's enhanced
// pointers. Every dereference checks the global store.
template <typename T>
class cap_ptr {
 public:
  cap_ptr() = default;
  cap_ptr(T* raw, std::uint64_t cap) : raw_(raw), cap_(cap) {}
  cap_ptr(std::nullptr_t) {}  // NOLINT: implicit, mirrors raw pointers

  [[nodiscard]] T& operator*() const {
    check(core::AccessKind::kUnknown);
    return *raw_;
  }
  [[nodiscard]] T* operator->() const {
    check(core::AccessKind::kUnknown);
    return raw_;
  }
  [[nodiscard]] T& operator[](std::size_t i) const {
    check(core::AccessKind::kUnknown);
    return raw_[i];
  }

  [[nodiscard]] T* raw() const noexcept { return raw_; }
  [[nodiscard]] std::uint64_t capability() const noexcept { return cap_; }

  explicit operator bool() const noexcept { return raw_ != nullptr; }
  friend bool operator==(const cap_ptr& a, const cap_ptr& b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend bool operator==(const cap_ptr& a, std::nullptr_t) noexcept {
    return a.raw_ == nullptr;
  }

  // Pointer adjustment keeps the capability (interior pointers share the
  // object's capability, as in SafeC).
  [[nodiscard]] cap_ptr operator+(std::ptrdiff_t d) const noexcept {
    return cap_ptr(raw_ + d, cap_);
  }

 private:
  void check(core::AccessKind kind) const {
    if (raw_ == nullptr || !CapabilityStore::global().live(cap_)) {
      core::DanglingReport report;
      report.kind = kind;
      report.fault_address = reinterpret_cast<std::uintptr_t>(raw_);
      core::FaultManager::instance().raise_software(report);
    }
  }

  T* raw_ = nullptr;
  std::uint64_t cap_ = 0;
};

// Allocation front end: plain heap underneath (the capability scheme does not
// change the allocator), header stores the capability for free()'s revoke.
class CapAllocator {
 public:
  struct Allocation {
    void* payload;
    std::uint64_t capability;
  };
  [[nodiscard]] static Allocation allocate(std::size_t size);
  static void deallocate(void* payload);

  template <typename T>
  [[nodiscard]] static cap_ptr<T> alloc_array(std::size_t n) {
    const Allocation a = allocate(n * sizeof(T));
    return cap_ptr<T>(static_cast<T*>(a.payload), a.capability);
  }
};

}  // namespace dpg::baseline
