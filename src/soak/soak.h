// Address-space endurance soak harness (DESIGN.md §15).
//
// The page-guard design trades address space for detection: every live
// guarded object is one VMA, every freed-but-guarded span one PROT_NONE VMA,
// and the recycling layers (VaFreeList, magazines, quarantine) exist to keep
// that spend bounded. A slow leak in any of them — a freelist that only
// grows, a magazine that never recycles, quarantine accounting that drifts —
// is invisible to the unit tests and fatal over a production week: the
// process walks into vm.max_map_count and the governor rides the ladder to
// unguarded permanently.
//
// run_soak() is the bounded-wall-clock version of that week: a steady-state
// allocation mix (heap churn + pool create/destroy + cross-thread frees +
// periodic revocation flushes) with transient fault injection driving at
// least one demote/recover ladder cycle, while a sampler thread records VMA
// count, VA high-water, RSS, quarantine depth, magazine population, ladder
// transitions and the effective sample rate on a fixed interval. After the
// run, a least-squares drift detector fits the lower envelope (per-bucket
// minima) of each gated series (VMA count, VA high-water, RSS) over the
// steady-state half of the run and FAILS the soak on monotonic growth. The
// envelope is what separates a leak from the recycling layers' bounded
// fill-and-trim sawtooths: a sawtooth's minima are flat, a leak's minima
// climb with it. Steady state means flat, not "grows slower than it used to".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dpg::soak {

struct SoakConfig {
  std::uint64_t seconds = 60;       // wall-clock bound for the workload
  std::uint32_t threads = 4;        // worker threads (>= 1)
  std::uint64_t interval_ms = 500;  // sampler period
  std::size_t shards = 4;           // guarded-heap shards
  // Slot-magazine depth. Each cached slot keeps its VA mapping for MAP_FIXED
  // reuse, so magazine population * depth is the soak's dominant VMA term —
  // deep production magazines would park steady state on vm.max_map_count and
  // turn the run into a ladder-thrash test instead of a drift test.
  std::size_t magazine_slots = 16;
  std::size_t protect_batch = 16;   // batched-revocation config under test
  std::size_t max_live = 512;       // live objects per worker (soft cap)
  std::uint32_t max_size = 2048;    // payload bytes per object
  bool pools = true;                // mix in pool create/use/destroy cycles
  // Inject a transient syscall-failure pulse at ~1/3 of the wall clock so the
  // governor demotes (full -> sampled, widening N), then clear it so
  // hysteresis recovers — the soak asserts >= 1 full demote/recover cycle.
  bool inject_faults = true;
  // DPG_FAULT_INJECT grammar for the pulse; "" = a built-in mmap ENOMEM plan.
  std::string fault_plan;
  std::size_t sample_rate = 0;   // base 1-in-N for the governor (0 = default)
  // Per-shard quarantine cap. The soak wants the delayed-reuse pool to reach
  // its plateau within a few sampler ticks (RSS and VMA count track it), so
  // this is far below the production default.
  std::size_t quarantine_bytes = std::size_t{8} << 20;
  // Per-shard freed-span VA budget (§3.4 strategy 1). Unbounded (the library
  // default) makes vm.max_map_count the steady-state operating point — freed
  // tombstones accumulate until the kernel refuses and every refusal rings
  // the governor. The soak bounds them so the ladder only moves when the
  // fault pulse says so.
  std::size_t freed_va_budget = std::size_t{16} << 20;
  // Raise SIGUSR2 once per sampler tick while the pulse is live (and once
  // after recovery) when a report dir is armed — exercises the
  // snapshot-under-demotion consistency path and leaves .dpgcrash artifacts.
  bool snapshots = true;
  std::uint64_t seed = 1;
  // Drift gate: samples discarded as warmup, then the relative fitted growth
  // (slope * span / mean) each gated series may show before failing.
  std::size_t warmup_samples = 6;
  double max_relative_drift = 0.10;
};

// One sampler tick. Gauges come from /proc/self (maps line count, status
// VmPeak, statm RSS) and the runtime's own accounting.
struct Sample {
  std::uint64_t t_ms = 0;            // since workload start
  double vma_count = 0;              // /proc/self/maps lines
  double va_hwm_kb = 0;              // VmPeak (address-space high water)
  double rss_kb = 0;                 // resident set
  double quarantine_bytes = 0;       // sum over shards
  double magazines = 0;              // live magazine count, sum over shards
  double freelist_ranges = 0;        // VaFreeList held ranges
  double ladder_transitions = 0;     // governor transitions counter
  double sample_rate = 0;            // effective 1-in-N
  double mode = 0;                   // current rung (numeric GuardMode)
};

// Per-series verdict from the drift detector.
struct SeriesDrift {
  std::string name;
  std::size_t samples = 0;     // post-warmup points fitted
  double first = 0;
  double last = 0;
  double mean = 0;
  double slope_per_sample = 0;  // least-squares fit
  double relative_drift = 0;    // slope * (n-1) / max(|mean|, 1)
  bool monotonic = false;       // no decreasing step and last > first
  bool gated = false;           // participates in the pass/fail verdict
  bool failed = false;
};

struct SoakResult {
  std::vector<Sample> timeline;
  std::vector<SeriesDrift> drifts;
  std::uint64_t ops = 0;           // completed workload operations
  std::uint64_t wall_ms = 0;
  std::uint64_t demotions = 0;     // ladder transitions downward
  std::uint64_t recoveries = 0;    // ladder promotions
  std::uint64_t sample_widens = 0;
  std::uint64_t sample_tightens = 0;
  std::uint64_t snapshots_written = 0;
  bool saw_demote_cycle = false;   // >= 1 demotion AND >= 1 recovery
  bool drift_failed = false;       // any gated series failed
  int final_mode = 0;              // rung at shutdown

  [[nodiscard]] bool ok(bool require_cycle) const {
    return !drift_failed && (!require_cycle || saw_demote_cycle);
  }
  // Machine-readable timeline + verdicts (the CI artifact).
  [[nodiscard]] std::string to_json() const;
};

// Least-squares drift fit over `xs` with the first `warmup` points dropped.
// Exposed for the unit tests; run_soak applies it to every series.
[[nodiscard]] SeriesDrift detect_drift(const std::string& name,
                                       const std::vector<double>& xs,
                                       std::size_t warmup,
                                       double max_relative_drift, bool gated);

[[nodiscard]] SoakResult run_soak(const SoakConfig& cfg);

}  // namespace dpg::soak
