#include "soak/soak.h"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/degrade.h"
#include "core/guarded_pool.h"
#include "core/sharded_heap.h"
#include "obs/dump.h"
#include "vm/sys.h"
#include "workloads/common.h"

namespace dpg::soak {

namespace {

using Clock = std::chrono::steady_clock;

// --- /proc/self gauges ------------------------------------------------------

double proc_vma_count() {
  std::ifstream f("/proc/self/maps");
  if (!f) return 0;
  double lines = 0;
  std::string line;
  while (std::getline(f, line)) ++lines;
  return lines;
}

double proc_va_peak_kb() {
  std::ifstream f("/proc/self/status");
  if (!f) return 0;
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmPeak:", 0) == 0) {
      return std::strtod(line.c_str() + 7, nullptr);
    }
  }
  return 0;
}

double proc_rss_kb() {
  std::ifstream f("/proc/self/statm");
  if (!f) return 0;
  std::uint64_t size = 0, rss = 0;
  f >> size >> rss;
  return static_cast<double>(rss) *
         (static_cast<double>(sysconf(_SC_PAGESIZE)) / 1024.0);
}

// Cross-thread free mailbox: workers hand a slice of their frees to the next
// lane, driving the registry-miss router and the remote-free lists the way a
// producer/consumer server does.
struct Mailbox {
  std::mutex mu;
  std::vector<std::pair<void*, std::uint32_t>> items;  // ptr, site
};

struct WorkerStats {
  std::uint64_t ops = 0;
};

// The soak runs its own governor (never the process-wide one), so its ladder
// must be published to the dump writer explicitly or SIGUSR2 snapshots carry
// no rung. Sections cannot be unregistered, so register once against this
// clearable pointer instead of the stack-scoped governor.
std::atomic<core::DegradationGovernor*> g_dump_gov{nullptr};

void publish_governor(core::DegradationGovernor* gov) {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::dump::register_section(
        obs::dump::Tag::kLadder,
        +[](void*, char* buf, std::size_t cap) noexcept -> std::size_t {
          auto* g = g_dump_gov.load(std::memory_order_acquire);
          return g != nullptr ? core::DegradationGovernor::
                                    render_ladder_section(g, buf, cap)
                              : 0;
        },
        nullptr);
  });
  g_dump_gov.store(gov, std::memory_order_release);
}

}  // namespace

SeriesDrift detect_drift(const std::string& name,
                         const std::vector<double>& xs, std::size_t warmup,
                         double max_relative_drift, bool gated) {
  SeriesDrift d;
  d.name = name;
  d.gated = gated;
  if (xs.size() <= warmup + 1) return d;  // not enough signal: never fails
  const std::size_t n = xs.size() - warmup;
  const double* p = xs.data() + warmup;
  d.samples = n;
  d.first = p[0];
  d.last = p[n - 1];
  double sum = 0;
  bool decreased = false;
  for (std::size_t i = 0; i < n; ++i) {
    sum += p[i];
    if (i != 0 && p[i] < p[i - 1] - 1e-9) decreased = true;
  }
  d.mean = sum / static_cast<double>(n);
  // Least-squares slope over sample index (the interval is uniform).
  double sxx = 0, sxy = 0;
  const double xbar = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - xbar;
    sxx += dx * dx;
    sxy += dx * (p[i] - d.mean);
  }
  d.slope_per_sample = sxx != 0 ? sxy / sxx : 0;
  d.relative_drift = d.slope_per_sample * static_cast<double>(n - 1) /
                     std::max(std::fabs(d.mean), 1.0);
  d.monotonic = !decreased && d.last > d.first;
  // Monotonic growth is the leak signature: a fitted rise that never gives
  // anything back and exceeds the tolerance over the measured window.
  d.failed = gated && d.relative_drift > max_relative_drift &&
             d.slope_per_sample > 0 && d.last > d.first;
  return d;
}

SoakResult run_soak(const SoakConfig& cfg) {
  SoakResult res;
  const std::uint32_t threads = std::max<std::uint32_t>(cfg.threads, 1);
  const std::uint64_t interval_ms = std::max<std::uint64_t>(cfg.interval_ms, 50);

  core::GovernorConfig gcfg;
  if (cfg.sample_rate != 0) gcfg.sample_rate = cfg.sample_rate;
  if (cfg.quarantine_bytes != 0) gcfg.quarantine_bytes = cfg.quarantine_bytes;
  core::DegradationGovernor gov(gcfg);
  publish_governor(&gov);

  core::GuardConfig gc;
  gc.governor = &gov;
  gc.magazine_slots = cfg.magazine_slots;
  gc.protect_batch = cfg.protect_batch;
  gc.freed_va_budget = cfg.freed_va_budget;

  vm::PhysArena arena;
  core::ShardedHeap heap(arena, gc, cfg.shards);
  // Pool churn shares the governor but owns its arena/freelist — the
  // create/destroy cycle is what feeds the VaFreeList trim path.
  core::GuardedPoolContext pool_ctx(gc);
  // Each held freelist range is one PROT_NONE VMA (shadow aliases map
  // distinct phys offsets, so the kernel never merges them) whose resident
  // pages stay charged to RSS until a trim munmaps them. At the production
  // limit the fill-trim sawtooth takes tens of seconds, so a short run's
  // drift window sees only the rising edge and reads the (bounded) cycle as
  // a leak. A tight limit puts several full cycles inside the fit window:
  // the fitted slope of a sawtooth is ~0, a real leak still climbs.
  heap.shadow_freelist().set_trim_limit(2048);
  pool_ctx.shadow_freelist().set_trim_limit(2048);

  std::vector<Mailbox> mail(threads);
  std::vector<WorkerStats> wstats(threads);
  std::atomic<bool> stop{false};

  const auto t0 = Clock::now();
  auto elapsed_ms = [&t0] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              t0)
            .count());
  };
  const std::uint64_t wall_ms = cfg.seconds * 1000;

  // --- workers --------------------------------------------------------------
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      workloads::Rng rng(cfg.seed * 0x9E3779B97F4A7C15ull + t + 1);
      std::vector<std::pair<void*, std::uint32_t>> live;
      live.reserve(cfg.max_live);
      WorkerStats& ws = wstats[t];
      const std::uint32_t base_site = (t + 1) * 100000;
      std::uint64_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++iter;
        // Drain the mailbox first: frees other lanes routed to us.
        if ((iter & 63) == 0) {
          std::vector<std::pair<void*, std::uint32_t>> in;
          {
            std::lock_guard lk(mail[t].mu);
            in.swap(mail[t].items);
          }
          for (auto& [p, site] : in) {
            heap.free(p, site);
            ++ws.ops;
          }
        }
        const std::uint64_t roll = rng.below(100);
        if (roll < 45 || live.size() < cfg.max_live / 4) {
          if (live.size() < cfg.max_live) {
            const std::uint32_t size =
                static_cast<std::uint32_t>(1 + rng.below(cfg.max_size));
            const std::uint32_t site =
                base_site + static_cast<std::uint32_t>(rng.below(64));
            void* p = heap.malloc(size, site);
            if (p != nullptr) {
              std::memset(p, 0x5a, size);
              live.emplace_back(p, site);
            }
            ++ws.ops;
          }
        } else if (roll < 75) {
          if (!live.empty()) {
            const std::size_t i = rng.below(live.size());
            auto [p, site] = live[i];
            live[i] = live.back();
            live.pop_back();
            if (threads > 1 && rng.below(8) == 0) {
              // Cross-thread free: park it in the next lane's mailbox.
              std::lock_guard lk(mail[(t + 1) % threads].mu);
              mail[(t + 1) % threads].items.emplace_back(p, site);
            } else {
              heap.free(p, site);
              ++ws.ops;
            }
          }
        } else if (roll < 82) {
          if (!live.empty()) {
            const std::size_t i = rng.below(live.size());
            const std::uint32_t size =
                static_cast<std::uint32_t>(1 + rng.below(cfg.max_size));
            void* np = heap.realloc(live[i].first, size, live[i].second);
            if (np != nullptr) live[i].first = np;
            ++ws.ops;
          }
        } else if (roll < 92) {
          if (!live.empty()) {
            // Touch a live object: keeps RSS honest about what churn costs.
            auto [p, site] = live[rng.below(live.size())];
            *static_cast<volatile unsigned char*>(p) = 0x5a;
          }
        } else if (roll < 97 && cfg.pools) {
          // One pool generation: burst-allocate, free half, destroy — the
          // paper's pool lifecycle, which stresses VA recycling hardest.
          core::GuardedPool pool(pool_ctx);
          std::vector<void*> objs;
          const std::size_t burst = 16 + rng.below(48);
          for (std::size_t i = 0; i < burst; ++i) {
            void* p = pool.alloc(1 + rng.below(cfg.max_size),
                                 base_site + 90000);
            if (p != nullptr) objs.push_back(p);
          }
          for (std::size_t i = 0; i < objs.size(); i += 2) {
            pool.free(objs[i], base_site + 90000);
          }
          pool.destroy();
          ws.ops += burst;
        }
        // Deterministic revocation cadence: batched PROT_NONE revocations and
        // quarantine evictions must keep pace with the churn, or the gauges
        // never plateau and the drift gate reads recycling lag as a leak.
        if ((iter & 511) == 0) heap.flush_all();
        if ((iter & 255) == 0 && elapsed_ms() >= wall_ms) break;
      }
      for (auto& [p, site] : live) heap.free(p, site);
    });
  }

  // --- fault-pulse driver ---------------------------------------------------
  // One transient pulse at ~1/3 of the wall clock: the governor must demote
  // (full -> sampled, widening under continued refusals) and, once the pulse
  // clears, recover rung by rung. Real incidents are transient; the soak
  // asserts the ladder's round trip, not just the way down.
  std::thread pulser;
  if (cfg.inject_faults) {
    pulser = std::thread([&] {
      const std::uint64_t pulse_at = wall_ms / 3;
      const std::uint64_t pulse_len = std::min<std::uint64_t>(
          std::max<std::uint64_t>(wall_ms / 20, 250), 3000);
      while (!stop.load(std::memory_order_relaxed) &&
             elapsed_ms() < pulse_at) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (stop.load(std::memory_order_relaxed)) return;
      const char* plan = cfg.fault_plan.empty()
                             ? "mmap:errno=ENOMEM:every=3"
                             : cfg.fault_plan.c_str();
      vm::sys::set_fault_plan(plan);
      const std::uint64_t until = elapsed_ms() + pulse_len;
      while (!stop.load(std::memory_order_relaxed) && elapsed_ms() < until) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      vm::sys::clear_fault_plan();
    });
  }

  // --- sampler (this thread) ------------------------------------------------
  auto take_sample = [&] {
    Sample s;
    s.t_ms = elapsed_ms();
    s.vma_count = proc_vma_count();
    s.va_hwm_kb = proc_va_peak_kb();
    s.rss_kb = proc_rss_kb();
    double quarantine = 0, mags = 0;
    for (std::size_t i = 0; i < heap.shards(); ++i) {
      quarantine +=
          static_cast<double>(heap.engine(i).quarantine_depth_bytes());
      mags += static_cast<double>(heap.engine(i).magazine_count());
    }
    s.quarantine_bytes = quarantine;
    s.magazines = mags;
    s.freelist_ranges = static_cast<double>(heap.shadow_freelist().ranges() +
                                            pool_ctx.shadow_freelist().ranges());
    const auto& c = gov.counters();
    s.ladder_transitions =
        static_cast<double>(c.transitions.load(std::memory_order_relaxed));
    s.sample_rate = static_cast<double>(gov.sample_rate());
    s.mode = static_cast<double>(static_cast<int>(gov.mode()));
    res.timeline.push_back(s);
  };

  take_sample();
  std::uint64_t last_transitions = 0;
  while (elapsed_ms() < wall_ms) {
    const std::uint64_t remain = wall_ms - elapsed_ms();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(interval_ms, remain)));
    take_sample();
    // Snapshot the runtime mid-churn (and mid-demotion, when the pulse lands
    // between two ticks): SIGUSR2 must always produce a dump whose rung
    // gauge agrees with its own ladder section.
    const auto transitions =
        static_cast<std::uint64_t>(res.timeline.back().ladder_transitions);
    if (cfg.snapshots && obs::dump::enabled() &&
        transitions != last_transitions) {
      std::raise(SIGUSR2);
      ++res.snapshots_written;
    }
    last_transitions = transitions;
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  if (pulser.joinable()) pulser.join();
  vm::sys::clear_fault_plan();  // belt and braces: never leak a live plan
  heap.flush_all();
  take_sample();

  res.wall_ms = elapsed_ms();
  for (const auto& ws : wstats) res.ops += ws.ops;
  const auto& c = gov.counters();
  const std::uint64_t transitions =
      c.transitions.load(std::memory_order_relaxed);
  res.recoveries = c.recoveries.load(std::memory_order_relaxed);
  res.demotions = transitions - res.recoveries;
  res.sample_widens = c.sample_widens.load(std::memory_order_relaxed);
  res.sample_tightens = c.sample_tightens.load(std::memory_order_relaxed);
  res.saw_demote_cycle = res.demotions >= 1 && res.recoveries >= 1;
  res.final_mode = static_cast<int>(gov.mode());

  // --- drift gate -----------------------------------------------------------
  // Gated series must be flat once the run reaches steady state. Two
  // legitimate non-leak shapes must pass: the one-time step when the fault
  // pulse lands (quarantine parks, degraded spans), and the bounded sawtooth
  // of the recycling layers (freelist fill/trim, freed-VA budget eviction,
  // quarantine fill/evict) whose period can approach the run length. So the
  // gate fits the LOWER ENVELOPE (per-bucket minima) of the LAST HALF of the
  // samples: a step has already happened by then, a sawtooth's minima are
  // flat, and a leak's minima climb with it.
  const std::size_t n = res.timeline.size();
  const std::size_t gate_warmup = std::max(cfg.warmup_samples, n / 2);
  auto series = [&](auto field) {
    std::vector<double> xs;
    xs.reserve(n);
    for (const Sample& s : res.timeline) xs.push_back(s.*field);
    return xs;
  };
  struct Def {
    const char* name;
    double Sample::* field;
    bool gated;
  };
  const Def defs[] = {
      {"vma_count", &Sample::vma_count, true},
      {"va_hwm_kb", &Sample::va_hwm_kb, true},
      {"rss_kb", &Sample::rss_kb, true},
      {"quarantine_bytes", &Sample::quarantine_bytes, false},
      {"magazines", &Sample::magazines, false},
      {"freelist_ranges", &Sample::freelist_ranges, false},
  };
  for (const Def& d : defs) {
    std::vector<double> xs = series(d.field);
    SeriesDrift sd;
    if (d.gated) {
      std::vector<double> tail(xs.begin() + std::min(gate_warmup, xs.size()),
                               xs.end());
      const std::size_t bucket = std::max<std::size_t>(2, tail.size() / 8);
      std::vector<double> env;
      for (std::size_t i = 0; i < tail.size(); i += bucket) {
        double m = tail[i];
        for (std::size_t j = i; j < std::min(tail.size(), i + bucket); ++j) {
          m = std::min(m, tail[j]);
        }
        env.push_back(m);
      }
      sd = detect_drift(d.name, env, 0, cfg.max_relative_drift, true);
    } else {
      sd = detect_drift(d.name, xs, cfg.warmup_samples,
                        cfg.max_relative_drift, false);
    }
    res.drift_failed = res.drift_failed || sd.failed;
    res.drifts.push_back(std::move(sd));
  }
  publish_governor(nullptr);  // gov is about to go out of scope
  return res;
}

std::string SoakResult::to_json() const {
  std::ostringstream o;
  o << "{\"wall_ms\":" << wall_ms << ",\"ops\":" << ops
    << ",\"demotions\":" << demotions << ",\"recoveries\":" << recoveries
    << ",\"sample_widens\":" << sample_widens
    << ",\"sample_tightens\":" << sample_tightens
    << ",\"snapshots\":" << snapshots_written
    << ",\"saw_demote_cycle\":" << (saw_demote_cycle ? "true" : "false")
    << ",\"drift_failed\":" << (drift_failed ? "true" : "false")
    << ",\"final_mode\":" << final_mode << ",\"drifts\":[";
  for (std::size_t i = 0; i < drifts.size(); ++i) {
    const SeriesDrift& d = drifts[i];
    o << (i != 0 ? "," : "") << "{\"name\":\"" << d.name
      << "\",\"samples\":" << d.samples << ",\"first\":" << d.first
      << ",\"last\":" << d.last << ",\"mean\":" << d.mean
      << ",\"slope_per_sample\":" << d.slope_per_sample
      << ",\"relative_drift\":" << d.relative_drift
      << ",\"monotonic\":" << (d.monotonic ? "true" : "false")
      << ",\"gated\":" << (d.gated ? "true" : "false")
      << ",\"failed\":" << (d.failed ? "true" : "false") << "}";
  }
  o << "],\"timeline\":[";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const Sample& s = timeline[i];
    o << (i != 0 ? "," : "") << "{\"t_ms\":" << s.t_ms
      << ",\"vma_count\":" << s.vma_count << ",\"va_hwm_kb\":" << s.va_hwm_kb
      << ",\"rss_kb\":" << s.rss_kb
      << ",\"quarantine_bytes\":" << s.quarantine_bytes
      << ",\"magazines\":" << s.magazines
      << ",\"freelist_ranges\":" << s.freelist_ranges
      << ",\"ladder_transitions\":" << s.ladder_transitions
      << ",\"sample_rate\":" << s.sample_rate << ",\"mode\":" << s.mode
      << "}";
  }
  o << "]}";
  return o.str();
}

}  // namespace dpg::soak
