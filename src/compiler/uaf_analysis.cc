#include "compiler/uaf_analysis.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <tuple>

namespace dpg::compiler {

namespace {

// Lattice bits per points-to node. Absent node == bottom (no objects yet).
constexpr std::uint8_t kLiveBit = 1;
constexpr std::uint8_t kFreedBit = 2;

// Where the freed-ness of a node came from: the free instruction itself and,
// when it was applied through a callee summary, the call site in the caller.
struct FreeOrigin {
  int fn = -1;
  int instr = -1;
  std::uint32_t site = 0;
  int call_fn = -1;
  int call_instr = -1;

  [[nodiscard]] bool valid() const noexcept { return fn >= 0; }
  [[nodiscard]] std::tuple<int, int> key() const noexcept {
    return {fn, instr};
  }
};

// Deterministic merge (smallest location wins) so the fixpoint converges.
void merge_origin(FreeOrigin& dst, const FreeOrigin& src) {
  if (!src.valid()) return;
  if (!dst.valid() || src.key() < dst.key()) dst = src;
}

struct NodeState {
  std::uint8_t bits = 0;
  FreeOrigin origin;  // meaningful when kFreedBit is set
};

using State = std::map<int, NodeState>;  // node root -> abstract state

bool join_into(State& dst, const State& src) {
  bool changed = false;
  for (const auto& [node, st] : src) {
    NodeState& d = dst[node];
    if ((d.bits | st.bits) != d.bits) {
      d.bits |= st.bits;
      changed = true;
    }
    const FreeOrigin before = d.origin;
    merge_origin(d.origin, st.origin);
    if (d.origin.key() != before.key()) changed = true;
  }
  return changed;
}

struct Loc {
  int fn = -1;
  int instr = -1;
};

}  // namespace

const char* finding_kind_name(FindingKind kind) {
  return kind == FindingKind::kUseAfterFree ? "use-after-free" : "double-free";
}

const char* certainty_name(Certainty certainty) {
  return certainty == Certainty::kMust ? "MUST" : "MAY";
}

const char* pair_class_name(PairClass cls) {
  switch (cls) {
    case PairClass::kSafe: return "SAFE";
    case PairClass::kMayUaf: return "MAY-UAF";
    case PairClass::kMustUaf: return "MUST-UAF";
    case PairClass::kDoubleFree: return "DOUBLE-FREE";
  }
  return "?";
}

class UafAnalysis::Impl {
 public:
  Impl(const Module& module, const PointsToAnalysis& pta)
      : module_(module), pta_(pta) {
    for (const int n : pta_.heap_nodes()) heap_nodes_.insert(n);
    index_sites();
    const std::size_t nfun = module_.functions.size();
    entry_.resize(nfun);
    summary_.resize(nfun);

    // Interprocedural fixpoint: entry states and may-free summaries only
    // grow, every transfer is monotone, so iteration terminates.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t f = 0; f < nfun; ++f) {
        changed |= analyze(static_cast<int>(f), /*report=*/false);
      }
    }
    for (std::size_t f = 0; f < nfun; ++f) {
      analyze(static_cast<int>(f), /*report=*/true);
    }
  }

  std::vector<Finding> findings_;
  std::map<std::uint32_t, int> site_node_;

  void build_pairs(std::vector<SitePair>& pairs, std::set<int>& unsafe) {
    for (const Finding& f : findings_) unsafe.insert(f.node);

    // All (alloc, free) pairs sharing a node, default SAFE.
    std::map<std::pair<std::uint32_t, std::uint32_t>, PairClass> cls;
    for (const auto& [free_site, node] : free_site_node_) {
      for (const std::uint32_t alloc : pta_.sites_of(node)) {
        cls.emplace(std::make_pair(alloc, free_site), PairClass::kSafe);
      }
    }
    const auto upgrade = [&](std::uint32_t alloc, std::uint32_t free_site,
                             PairClass c) {
      auto it = cls.find({alloc, free_site});
      if (it != cls.end() && static_cast<int>(c) > static_cast<int>(it->second)) {
        it->second = c;
      }
    };
    for (const Finding& f : findings_) {
      PairClass c = PairClass::kMayUaf;
      if (f.kind == FindingKind::kDoubleFree) {
        c = PairClass::kDoubleFree;
      } else if (f.certainty == Certainty::kMust) {
        c = PairClass::kMustUaf;
      }
      for (const std::uint32_t alloc : pta_.sites_of(f.node)) {
        if (f.free_site != 0) {
          upgrade(alloc, f.free_site, c);
        } else {
          for (const auto& [fs, node] : free_site_node_) {
            if (node == f.node) upgrade(alloc, fs, c);
          }
        }
      }
    }
    pairs.reserve(cls.size());
    for (const auto& [key, c] : cls) {
      pairs.push_back(SitePair{key.first, key.second, c});
    }
  }

 private:
  void index_sites() {
    for (std::size_t f = 0; f < module_.functions.size(); ++f) {
      const Function& fn = module_.functions[f];
      for (std::size_t i = 0; i < fn.body.size(); ++i) {
        const Instr& ins = fn.body[i];
        switch (ins.op) {
          case Op::kMalloc:
          case Op::kPoolAlloc: {
            site_loc_[ins.site] = Loc{static_cast<int>(f), static_cast<int>(i)};
            const int node = pta_.node_of_site(ins.site);
            if (node >= 0) site_node_[ins.site] = node;
            break;
          }
          case Op::kFree:
          case Op::kPoolFree: {
            site_loc_[ins.site] = Loc{static_cast<int>(f), static_cast<int>(i)};
            const int ptr_reg = ins.op == Op::kFree ? ins.a : ins.b;
            const int node = node_of_reg(static_cast<int>(f), ptr_reg);
            if (node >= 0) {
              site_node_[ins.site] = node;
              free_site_node_[ins.site] = node;
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }

  [[nodiscard]] int node_of_reg(int fn_index, int reg) const {
    if (reg < 0) return -1;
    const int node = pta_.pointee_node(pta_.var_element(fn_index, reg));
    if (node < 0) return -1;
    const int root = pta_.find(node);
    return heap_nodes_.count(root) != 0 ? root : -1;
  }

  void successors(const Instr& ins, std::size_t i, std::size_t body_size,
                  int out[2], int& n) const {
    n = 0;
    switch (ins.op) {
      case Op::kRet:
        break;
      case Op::kBr:
        out[n++] = ins.target;
        break;
      case Op::kCbr:
        out[n++] = ins.target;
        if (ins.target2 != ins.target) out[n++] = ins.target2;
        break;
      default:
        if (i + 1 < body_size) out[n++] = static_cast<int>(i + 1);
        break;
    }
  }

  void add_finding(FindingKind kind, Certainty certainty, int f, int i,
                   int node, const FreeOrigin& origin,
                   std::uint32_t use_site) {
    if (!reported_.insert(std::make_tuple(f, i, node, static_cast<int>(kind)))
             .second) {
      return;
    }
    Finding finding;
    finding.kind = kind;
    finding.certainty = certainty;
    finding.fn = f;
    finding.instr = i;
    finding.node = node;
    finding.free_site = origin.site;
    const auto& sites = pta_.sites_of(node);
    finding.alloc_sites.assign(sites.begin(), sites.end());

    // Witness: alloc -> [call] -> free -> use.
    if (!finding.alloc_sites.empty()) {
      const std::uint32_t alloc = finding.alloc_sites.front();
      const auto it = site_loc_.find(alloc);
      if (it != site_loc_.end()) {
        finding.witness.push_back(
            WitnessStep{it->second.fn, it->second.instr, alloc, "alloc"});
      }
    }
    if (origin.call_fn >= 0) {
      finding.witness.push_back(
          WitnessStep{origin.call_fn, origin.call_instr, 0, "call"});
    }
    if (origin.valid()) {
      finding.witness.push_back(
          WitnessStep{origin.fn, origin.instr, origin.site, "free"});
    }
    finding.witness.push_back(WitnessStep{
        f, i, use_site, kind == FindingKind::kDoubleFree ? "free" : "use"});
    findings_.push_back(std::move(finding));
  }

  // One intraprocedural pass to its fixpoint. Returns true when a callee's
  // entry state or this function's summary grew (outer loop re-runs).
  bool analyze(int f, bool report) {
    const Function& fn = module_.functions[static_cast<std::size_t>(f)];
    if (fn.body.empty()) return false;
    bool grew = false;

    std::vector<State> in(fn.body.size());
    in[0] = entry_[static_cast<std::size_t>(f)];
    std::deque<int> worklist{0};
    std::vector<bool> queued(fn.body.size(), false);
    std::vector<bool> reached(fn.body.size(), false);
    queued[0] = true;

    while (!worklist.empty()) {
      const int i = worklist.front();
      worklist.pop_front();
      queued[static_cast<std::size_t>(i)] = false;
      reached[static_cast<std::size_t>(i)] = true;
      const Instr& ins = fn.body[static_cast<std::size_t>(i)];
      State out = in[static_cast<std::size_t>(i)];
      transfer(f, i, ins, out, grew);
      int succ[2];
      int nsucc = 0;
      successors(ins, static_cast<std::size_t>(i), fn.body.size(), succ, nsucc);
      for (int s = 0; s < nsucc; ++s) {
        const auto target = static_cast<std::size_t>(succ[s]);
        const bool joined = join_into(in[target], out);
        if ((joined || !reached[target]) && !queued[target]) {
          queued[target] = true;
          worklist.push_back(succ[s]);
        }
      }
    }

    // Findings are collected only after the in-states converged, so the
    // MUST/MAY split reflects the final joins, not a partial first visit.
    if (report) {
      for (std::size_t i = 0; i < fn.body.size(); ++i) {
        if (reached[i]) collect(f, static_cast<int>(i), fn.body[i], in[i]);
      }
    }
    return grew;
  }

  void collect(int f, int i, const Instr& ins, const State& state) {
    switch (ins.op) {
      case Op::kFree:
      case Op::kPoolFree: {
        const int node = node_of_reg(f, ins.op == Op::kFree ? ins.a : ins.b);
        if (node < 0) break;
        const auto it = state.find(node);
        if (it == state.end() || (it->second.bits & kFreedBit) == 0) break;
        add_finding(FindingKind::kDoubleFree,
                    it->second.bits == kFreedBit ? Certainty::kMust
                                                 : Certainty::kMay,
                    f, i, node, it->second.origin, ins.site);
        break;
      }
      case Op::kGetField:
      case Op::kGetFieldV:
      case Op::kSetField:
      case Op::kSetFieldV: {
        const int node = node_of_reg(f, ins.a);
        if (node < 0) break;
        const auto it = state.find(node);
        if (it == state.end() || (it->second.bits & kFreedBit) == 0) break;
        add_finding(FindingKind::kUseAfterFree,
                    it->second.bits == kFreedBit ? Certainty::kMust
                                                 : Certainty::kMay,
                    f, i, node, it->second.origin, /*use_site=*/0);
        break;
      }
      default:
        break;
    }
  }

  void transfer(int f, int i, const Instr& ins, State& state, bool& grew) {
    switch (ins.op) {
      case Op::kMalloc:
      case Op::kPoolAlloc: {
        // Strong update: the node now models its most recent objects.
        const int node = pta_.node_of_site(ins.site);
        if (node >= 0) state[pta_.find(node)] = NodeState{kLiveBit, {}};
        break;
      }
      case Op::kFree:
      case Op::kPoolFree: {
        const int ptr_reg = ins.op == Op::kFree ? ins.a : ins.b;
        const int node = node_of_reg(f, ptr_reg);
        if (node < 0) break;
        FreeOrigin origin;
        origin.fn = f;
        origin.instr = i;
        origin.site = ins.site;
        state[node] = NodeState{kFreedBit, origin};
        auto [it, inserted] =
            summary_[static_cast<std::size_t>(f)].emplace(node, origin);
        if (inserted) {
          grew = true;
        } else {
          const FreeOrigin prev = it->second;
          merge_origin(it->second, origin);
          if (it->second.key() != prev.key()) grew = true;
        }
        break;
      }
      case Op::kCall: {
        const auto cit = module_.function_index.find(ins.callee);
        if (cit == module_.function_index.end()) break;
        const std::size_t callee = static_cast<std::size_t>(cit->second);
        // Context-insensitive: the callee's entry state is the join over
        // every call site's state.
        if (join_into(entry_[callee], state)) grew = true;
        // Apply the callee's may-free summary strongly (see header).
        for (const auto& [node, origin] : summary_[callee]) {
          FreeOrigin via = origin;
          if (via.call_fn < 0) {
            via.call_fn = f;
            via.call_instr = i;
          }
          state[node] = NodeState{kFreedBit, via};
        }
        // And fold it into this function's transitive summary.
        auto& own = summary_[static_cast<std::size_t>(f)];
        for (const auto& [node, origin] : summary_[callee]) {
          auto [it, inserted] = own.emplace(node, origin);
          if (inserted) {
            grew = true;
          } else {
            const FreeOrigin prev = it->second;
            merge_origin(it->second, origin);
            if (it->second.key() != prev.key()) grew = true;
          }
        }
        break;
      }
      default:
        break;  // arithmetic, copies, branches, pool init/destroy: no effect
    }
  }

  const Module& module_;
  const PointsToAnalysis& pta_;
  std::set<int> heap_nodes_;
  std::map<std::uint32_t, Loc> site_loc_;
  std::map<std::uint32_t, int> free_site_node_;
  std::vector<State> entry_;                         // per function
  std::vector<std::map<int, FreeOrigin>> summary_;   // per function: may-free
  std::set<std::tuple<int, int, int, int>> reported_;
};

UafAnalysis::UafAnalysis(const Module& module, const PointsToAnalysis& pta) {
  Impl impl(module, pta);
  impl.build_pairs(pairs_, unsafe_nodes_);  // reads impl.findings_: move after
  findings_ = std::move(impl.findings_);
  site_node_ = std::move(impl.site_node_);
  // Stable report order: by function, then instruction, then kind.
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              return std::make_tuple(a.fn, a.instr, static_cast<int>(a.kind)) <
                     std::make_tuple(b.fn, b.instr, static_cast<int>(b.kind));
            });
  choose_schemes(module, pta);
}

namespace {

// Syntactic loop bodies: a branch at index i whose target t <= i closes a
// loop; every instruction in [t, i] is loop body. Coarse (no dominator
// check) but one-sided — it only ever *adds* hotness, and hotness only picks
// between two sound lanes.
std::vector<std::pair<int, int>> loop_ranges(const Function& fn) {
  std::vector<std::pair<int, int>> ranges;
  for (std::size_t i = 0; i < fn.body.size(); ++i) {
    const Instr& ins = fn.body[i];
    if (ins.op != Op::kBr && ins.op != Op::kCbr) continue;
    for (const int t : {ins.target, ins.target2}) {
      if (t >= 0 && t <= static_cast<int>(i)) {
        ranges.emplace_back(t, static_cast<int>(i));
      }
    }
  }
  return ranges;
}

bool in_ranges(const std::vector<std::pair<int, int>>& ranges, int i) {
  for (const auto& [lo, hi] : ranges) {
    if (i >= lo && i <= hi) return true;
  }
  return false;
}

}  // namespace

// The scheme chooser (DESIGN.md §14). Static allocation-hotness heuristic:
// a site is hot when its instruction sits inside a syntactic loop, or its
// function is (transitively) called from inside one. Object size comes from
// the same per-function constant propagation the pool transformation uses
// for element-size hints; a size the propagation cannot pin stays unknown
// and disqualifies the tag lane.
void UafAnalysis::choose_schemes(const Module& module,
                                 const PointsToAnalysis& pta) {
  const std::size_t nfun = module.functions.size();
  std::vector<std::vector<std::pair<int, int>>> loops(nfun);
  for (std::size_t f = 0; f < nfun; ++f) {
    loops[f] = loop_ranges(module.functions[f]);
  }

  // Transitive hot-function closure, seeded by calls inside loop bodies.
  std::vector<bool> hot_fn(nfun, false);
  std::deque<int> work;
  for (std::size_t f = 0; f < nfun; ++f) {
    const Function& fn = module.functions[f];
    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      const Instr& ins = fn.body[i];
      if (ins.op != Op::kCall || !in_ranges(loops[f], static_cast<int>(i))) {
        continue;
      }
      const auto it = module.function_index.find(ins.callee);
      if (it != module.function_index.end() && !hot_fn[it->second]) {
        hot_fn[it->second] = true;
        work.push_back(it->second);
      }
    }
  }
  while (!work.empty()) {
    const int f = work.front();
    work.pop_front();
    for (const Instr& ins : module.functions[static_cast<std::size_t>(f)].body) {
      if (ins.op != Op::kCall) continue;
      const auto it = module.function_index.find(ins.callee);
      if (it != module.function_index.end() && !hot_fn[it->second]) {
        hot_fn[it->second] = true;
        work.push_back(it->second);
      }
    }
  }

  // Per-alloc-site: const-inferred byte size and hotness.
  std::map<std::uint32_t, std::int64_t> site_size;  // -1 = unknown
  std::map<std::uint32_t, bool> site_hot;
  for (std::size_t f = 0; f < nfun; ++f) {
    const Function& fn = module.functions[f];
    std::map<int, std::int64_t> constants;
    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      const Instr& ins = fn.body[i];
      if (ins.op == Op::kMalloc || ins.op == Op::kPoolAlloc) {
        const int size_reg = ins.op == Op::kMalloc ? ins.a : ins.b;
        const auto it = constants.find(size_reg);
        site_size[ins.site] =
            it != constants.end() && it->second > 0 ? it->second * 8 : -1;
        site_hot[ins.site] =
            hot_fn[f] || in_ranges(loops[f], static_cast<int>(i));
      }
      if (ins.op == Op::kConst) {
        constants[ins.dst] = ins.imm;
      } else if (ins.dst >= 0) {
        constants.erase(ins.dst);
      }
    }
  }

  // Aggregate to node granularity (the scheme is a node-level property).
  struct Agg {
    std::int64_t max_size = 0;
    bool all_known = true;
    bool any_alloc = false;
    bool hot = false;
    PairClass worst = PairClass::kSafe;
  };
  std::map<int, Agg> agg;
  for (const auto& [site, node] : site_node_) {
    Agg& a = agg[node];
    const auto sz = site_size.find(site);
    if (sz == site_size.end()) continue;  // free site: no size/hot data
    a.any_alloc = true;
    if (sz->second < 0) {
      a.all_known = false;
    } else if (sz->second > a.max_size) {
      a.max_size = sz->second;
    }
    if (site_hot[site]) a.hot = true;
  }
  for (const SitePair& pair : pairs_) {
    const auto it = site_node_.find(pair.alloc_site);
    if (it == site_node_.end()) continue;
    Agg& a = agg[it->second];
    if (static_cast<int>(pair.cls) > static_cast<int>(a.worst)) {
      a.worst = pair.cls;
    }
  }

  for (const auto& [site, node] : site_node_) {
    const Agg& a = agg[node];
    SchemeDecision d;
    d.size_bytes = a.any_alloc && a.all_known ? a.max_size : -1;
    d.hot = a.hot;
    if (node_safe(node)) {
      d.scheme = SiteScheme::kUnguarded;
      d.cls = PairClass::kSafe;
    } else {
      // A finding with no surviving pair (e.g. free-only node) still means
      // unsafe: clamp the class to at least MAY.
      d.cls = static_cast<int>(a.worst) < static_cast<int>(PairClass::kMayUaf)
                  ? PairClass::kMayUaf
                  : a.worst;
      const bool small = d.size_bytes > 0 && d.size_bytes <= kTagLaneMaxBytes;
      d.scheme = d.cls == PairClass::kMayUaf && small && d.hot
                     ? SiteScheme::kLockAndKey
                     : SiteScheme::kPageGuard;
    }
    site_scheme_[site] = d;
  }
  (void)pta;
}

SchemeDecision UafAnalysis::scheme_of(std::uint32_t site) const {
  const auto it = site_scheme_.find(site);
  return it != site_scheme_.end() ? it->second : SchemeDecision{};
}

bool UafAnalysis::node_safe(int node) const {
  return node >= 0 && unsafe_nodes_.count(node) == 0;
}

bool UafAnalysis::site_safe(std::uint32_t site) const {
  const auto it = site_node_.find(site);
  return it != site_node_.end() && node_safe(it->second);
}

namespace {

const char* fn_name(const Module& module, int fn) {
  if (fn < 0 || fn >= static_cast<int>(module.functions.size())) return "?";
  return module.functions[static_cast<std::size_t>(fn)].name.c_str();
}

}  // namespace

std::string Finding::describe(const Module& module) const {
  std::ostringstream os;
  os << certainty_name(certainty) << '-'
     << (kind == FindingKind::kDoubleFree ? "DOUBLE-FREE" : "UAF") << ": "
     << fn_name(module, fn) << '[' << instr << ']';
  os << (kind == FindingKind::kDoubleFree ? " frees memory already freed"
                                          : " uses memory freed");
  if (free_site != 0) os << " at site " << free_site;
  if (!alloc_sites.empty()) {
    os << "; allocated at site" << (alloc_sites.size() > 1 ? "s" : "");
    for (std::size_t i = 0; i < alloc_sites.size(); ++i) {
      os << (i == 0 ? " " : ", ") << alloc_sites[i];
    }
  }
  os << "\n  witness:";
  for (const WitnessStep& step : witness) {
    os << ' ' << step.role << '=' << fn_name(module, step.fn) << '['
       << step.instr << ']';
    if (step.site != 0) os << "#site" << step.site;
    if (&step != &witness.back()) os << " ->";
  }
  return os.str();
}

std::string Finding::to_json(const Module& module) const {
  std::ostringstream os;
  os << "{\"kind\":\"" << finding_kind_name(kind) << "\",\"certainty\":\""
     << (certainty == Certainty::kMust ? "must" : "may") << "\",\"function\":\""
     << fn_name(module, fn) << "\",\"instr\":" << instr
     << ",\"node\":" << node << ",\"free_site\":" << free_site
     << ",\"alloc_sites\":[";
  for (std::size_t i = 0; i < alloc_sites.size(); ++i) {
    os << (i == 0 ? "" : ",") << alloc_sites[i];
  }
  os << "],\"witness\":[";
  for (std::size_t i = 0; i < witness.size(); ++i) {
    const WitnessStep& step = witness[i];
    os << (i == 0 ? "" : ",") << "{\"role\":\"" << step.role
       << "\",\"function\":\"" << fn_name(module, step.fn)
       << "\",\"instr\":" << step.instr << ",\"site\":" << step.site << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace dpg::compiler
