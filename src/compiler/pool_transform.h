// The Automatic Pool Allocation transformation over PIR.
//
// Mirrors the rewriting the paper describes on its running example
// (Figure 1 -> Figure 2):
//   - poolinit/pooldestroy inserted in each pool's home function (entry /
//     every return);
//   - functions through which a pool's data flows gain trailing pool-
//     descriptor parameters, and every call site passes them;
//   - malloc/free sites become poolalloc/poolfree on the owning descriptor.
//
// "Note that explicit deallocation via poolfree can return freed memory to
//  its pool ... Thus dangling pointers to the freed memory in the original
//  program continue to exist in the transformed program" — the transformation
//  itself detects nothing; it only bounds pool lifetimes. Detection comes
//  from executing the transformed program on the guarded runtime (interp.h).
#pragma once

#include "compiler/escape.h"
#include "compiler/ir.h"
#include "compiler/points_to.h"

namespace dpg::compiler {

struct TransformResult {
  Module module;          // the transformed program
  EscapeResult placement; // which pools exist, where they live, who uses them
};

// Full pipeline: points-to -> escape/pool placement -> rewrite.
[[nodiscard]] TransformResult pool_allocate(const Module& input);

}  // namespace dpg::compiler
