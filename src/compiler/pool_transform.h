// The Automatic Pool Allocation transformation over PIR.
//
// Mirrors the rewriting the paper describes on its running example
// (Figure 1 -> Figure 2):
//   - poolinit/pooldestroy inserted in each pool's home function (entry /
//     every return);
//   - functions through which a pool's data flows gain trailing pool-
//     descriptor parameters, and every call site passes them;
//   - malloc/free sites become poolalloc/poolfree on the owning descriptor.
//
// "Note that explicit deallocation via poolfree can return freed memory to
//  its pool ... Thus dangling pointers to the freed memory in the original
//  program continue to exist in the transformed program" — the transformation
//  itself detects nothing; it only bounds pool lifetimes. Detection comes
//  from executing the transformed program on the guarded runtime (interp.h).
#pragma once

#include "compiler/escape.h"
#include "compiler/ir.h"
#include "compiler/points_to.h"

namespace dpg::compiler {

struct TransformResult {
  Module module;          // the transformed program (carries the SiteSafety
                          // guard-elision table, see ir.h / uaf_analysis.h)
  EscapeResult placement; // which pools exist, where they live, who uses them
};

// Full pipeline: points-to -> escape/pool placement -> UAF classification ->
// rewrite. The returned module's site_safety table marks every site whose
// points-to node the static analysis proved temporally safe; the guarded
// interpreter serves those sites unguarded (no shadow mmap / mprotect).
[[nodiscard]] TransformResult pool_allocate(const Module& input);

}  // namespace dpg::compiler
