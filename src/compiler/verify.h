// Module well-formedness verifier.
//
// The transformation rewrites instruction streams, renumbers branch targets,
// and appends parameters — exactly the kind of surgery that silently breaks
// IR. verify_module() checks the structural invariants every pass must
// preserve; the interpreter runs it by default so malformed modules fail
// loudly instead of executing garbage.
#pragma once

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace dpg::compiler {

// Returns human-readable diagnostics; empty means well-formed.
//
// Checked invariants:
//   - function_index maps every function name to its position, no duplicates
//   - parameters name existing registers, no duplicate parameter names
//   - every operand/destination register index is within the register file
//   - branch targets land inside the function body
//   - calls name existing functions with matching arity
//   - site ids on malloc/free/poolalloc/poolfree are unique module-wide
//   - pool instructions carry their required operands
//   - when a guard-elision table (Module::site_safety) is present: every
//     entry names an existing site exactly once, every alloc/free site has
//     an entry, and elision is uniform per points-to node and per pool, so
//     elided sites never reach the poolfree of a guarded pool
[[nodiscard]] std::vector<std::string> verify_module(const Module& module);

}  // namespace dpg::compiler
