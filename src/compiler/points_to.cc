#include "compiler/points_to.h"

#include <cassert>

namespace dpg::compiler {

const std::set<std::uint32_t> PointsToAnalysis::kEmptySites;

PointsToAnalysis::PointsToAnalysis(const Module& module) {
  // Lay out elements: per-function registers, per-function return values,
  // globals. Memory-node and contents elements are created on demand.
  for (const Function& fn : module.functions) {
    fn_var_base_.push_back(static_cast<int>(parent_.size()));
    for (int r = 0; r < fn.num_regs(); ++r) fresh();
    fn_ret_.push_back(fresh());
  }
  for (std::size_t g = 0; g < module.globals.size(); ++g) {
    global_base_.push_back(fresh());
  }
  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    constrain_function(module, static_cast<int>(f));
  }
}

int PointsToAnalysis::fresh() {
  const int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  pointee_.push_back(-1);
  return id;
}

int PointsToAnalysis::find(int element) const {
  // Pure walk — no compression. A compressing find under `const` would be a
  // data race for concurrent readers; the chains are short because every
  // union during construction ran through find_mut's path halving.
  while (parent_[element] != element) element = parent_[element];
  return element;
}

int PointsToAnalysis::find_mut(int element) {
  while (parent_[element] != element) {
    parent_[element] = parent_[parent_[element]];  // path halving
    element = parent_[element];
  }
  return element;
}

int PointsToAnalysis::pointee_of(int element) {
  const int root = find_mut(element);
  if (pointee_[root] < 0) pointee_[root] = fresh();
  return find_mut(pointee_[root]);
}

void PointsToAnalysis::unite(int a, int b) {
  a = find_mut(a);
  b = find_mut(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  if (rank_[a] == rank_[b]) rank_[a]++;
  parent_[b] = a;

  // Merge metadata.
  if (const auto it = info_.find(b); it != info_.end()) {
    Info& dst = info_[a];
    dst.is_heap |= it->second.is_heap;
    dst.sites.insert(it->second.sites.begin(), it->second.sites.end());
    info_.erase(b);
  }
  // Recursively unify pointees (Steensgaard's conditional join).
  const int pa = pointee_[a];
  const int pb = pointee_[b];
  if (pb >= 0) {
    if (pa >= 0) {
      unite(pa, pb);
    } else {
      pointee_[a] = pb;
    }
  }
}

void PointsToAnalysis::constrain_function(const Module& module, int fn_index) {
  const Function& fn = module.functions[static_cast<std::size_t>(fn_index)];
  const auto var = [&](int reg) { return fn_var_base_[fn_index] + reg; };

  for (const Instr& ins : fn.body) {
    switch (ins.op) {
      case Op::kCopy:
        unite(var(ins.dst), var(ins.a));
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
        // Pointer arithmetic keeps aliasing with both operands (conservative:
        // PIR has no pointer/int distinction, like C after casts — the paper
        // stresses "we allow arbitrary casts including casts from pointers to
        // integers and back").
        unite(var(ins.dst), var(ins.a));
        unite(var(ins.dst), var(ins.b));
        break;
      case Op::kMalloc: {
        const int node = pointee_of(var(ins.dst));
        Info& info = info_[find(node)];
        info.is_heap = true;
        info.sites.insert(ins.site);
        site_element_.emplace(ins.site, node);
        break;
      }
      case Op::kGetField:
      case Op::kGetFieldV: {
        // dst may point to whatever the object's fields point to (the
        // analysis is field-insensitive, so a register index changes
        // nothing).
        const int node = pointee_of(var(ins.a));
        unite(pointee_of(var(ins.dst)), pointee_of(node));
        break;
      }
      case Op::kSetField: {
        const int node = pointee_of(var(ins.a));
        unite(pointee_of(var(ins.b)), pointee_of(node));
        break;
      }
      case Op::kSetFieldV: {
        const int node = pointee_of(var(ins.a));
        unite(pointee_of(var(ins.c)), pointee_of(node));
        break;
      }
      case Op::kLoadG:
        unite(var(ins.dst), global_element(static_cast<int>(ins.imm)));
        break;
      case Op::kStoreG:
        unite(global_element(static_cast<int>(ins.imm)), var(ins.a));
        break;
      case Op::kCall: {
        const Function* callee = module.find(ins.callee);
        if (callee == nullptr) break;  // external: no constraints
        const auto cit = module.function_index.find(ins.callee);
        const int callee_index = cit->second;
        const std::size_t nparams = callee->params.size();
        for (std::size_t i = 0; i < ins.args.size() && i < nparams; ++i) {
          unite(var(ins.args[i]),
                fn_var_base_[callee_index] + static_cast<int>(i));
        }
        if (ins.dst >= 0) unite(var(ins.dst), fn_ret_[callee_index]);
        break;
      }
      case Op::kRet:
        if (ins.a >= 0) unite(fn_ret_[fn_index], var(ins.a));
        break;
      default:
        break;  // kConst, kFree, kBr, kCbr, kOut, kCmp*, pool ops: no pointer flow
    }
  }
}

int PointsToAnalysis::var_element(int fn_index, int reg) const {
  return fn_var_base_[static_cast<std::size_t>(fn_index)] + reg;
}

int PointsToAnalysis::ret_element(int fn_index) const {
  return fn_ret_[static_cast<std::size_t>(fn_index)];
}

int PointsToAnalysis::global_element(int global_index) const {
  return global_base_[static_cast<std::size_t>(global_index)];
}

int PointsToAnalysis::node_of_site(std::uint32_t site) const {
  const auto it = site_element_.find(site);
  return it == site_element_.end() ? -1 : find(it->second);
}

int PointsToAnalysis::pointee_node(int element) const {
  const int root = find(element);
  return pointee_[static_cast<std::size_t>(root)] < 0
             ? -1
             : find(pointee_[static_cast<std::size_t>(root)]);
}

std::vector<int> PointsToAnalysis::heap_nodes() const {
  std::vector<int> nodes;
  for (const auto& [root, info] : info_) {
    if (info.is_heap && find(root) == root) nodes.push_back(root);
  }
  return nodes;
}

const std::set<std::uint32_t>& PointsToAnalysis::sites_of(int node) const {
  const auto it = info_.find(find(node));
  return it == info_.end() ? kEmptySites : it->second.sites;
}

bool PointsToAnalysis::reachable_from_global(int node) const {
  const int target = find(node);
  std::set<int> reachable;
  for (const int g : global_base_) collect_reachable(g, reachable);
  return reachable.count(target) > 0;
}

void PointsToAnalysis::collect_reachable(int element, std::set<int>& out) const {
  // Each root has at most one pointee, so reachability is a chain walk;
  // the visited check breaks points-to cycles (e.g. linked lists).
  int cur = find(element);
  std::set<int> visited;
  while (visited.insert(cur).second) {
    if (const auto it = info_.find(cur); it != info_.end() && it->second.is_heap) {
      out.insert(cur);
    }
    const int next = pointee_[static_cast<std::size_t>(cur)];
    if (next < 0) break;
    cur = find(next);
  }
}

}  // namespace dpg::compiler
