#include "compiler/verify.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dpg::compiler {

namespace {

class Verifier {
 public:
  explicit Verifier(const Module& module) : module_(module) {}

  std::vector<std::string> run() {
    check_function_index();
    std::set<std::uint32_t> sites;
    for (const Function& fn : module_.functions) {
      check_function(fn, sites);
    }
    check_site_safety();
    check_site_scheme();
    return std::move(diagnostics_);
  }

 private:
  void fail(const std::string& where, const std::string& what) {
    diagnostics_.push_back(where + ": " + what);
  }

  void check_function_index() {
    std::unordered_set<std::string> names;
    for (std::size_t i = 0; i < module_.functions.size(); ++i) {
      const std::string& name = module_.functions[i].name;
      if (!names.insert(name).second) {
        fail(name, "duplicate function name");
      }
      const auto it = module_.function_index.find(name);
      if (it == module_.function_index.end()) {
        fail(name, "missing from function_index");
      } else if (it->second != static_cast<int>(i)) {
        fail(name, "function_index points at the wrong slot");
      }
    }
  }

  void check_function(const Function& fn, std::set<std::uint32_t>& sites) {
    const int nregs = fn.num_regs();
    std::unordered_set<std::string> param_names;
    for (const std::string& param : fn.params) {
      if (!param_names.insert(param).second) {
        fail(fn.name, "duplicate parameter '" + param + "'");
      }
      bool found = false;
      for (const std::string& reg : fn.reg_names) found |= reg == param;
      if (!found) fail(fn.name, "parameter '" + param + "' has no register");
    }

    const auto reg_ok = [nregs](int r) { return r >= 0 && r < nregs; };
    const auto target_ok = [&fn](int t) {
      return t >= 0 && t < static_cast<int>(fn.body.size());
    };

    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      const Instr& ins = fn.body[i];
      std::ostringstream where;
      where << fn.name << "[" << i << "]";

      const auto need_dst = [&] {
        if (!reg_ok(ins.dst)) fail(where.str(), "bad destination register");
      };
      const auto need_a = [&] {
        if (!reg_ok(ins.a)) fail(where.str(), "bad operand a");
      };
      const auto need_b = [&] {
        if (!reg_ok(ins.b)) fail(where.str(), "bad operand b");
      };
      const auto need_site = [&] {
        if (ins.site == 0) {
          fail(where.str(), "allocation/free site id missing");
        } else if (!sites.insert(ins.site).second) {
          fail(where.str(), "duplicate site id");
        }
      };

      switch (ins.op) {
        case Op::kConst:
          need_dst();
          break;
        case Op::kCopy:
          need_dst();
          need_a();
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kCmpLt:
        case Op::kCmpEq:
          need_dst();
          need_a();
          need_b();
          break;
        case Op::kMalloc:
          need_dst();
          need_a();
          need_site();
          break;
        case Op::kFree:
          need_a();
          need_site();
          break;
        case Op::kGetField:
          need_dst();
          need_a();
          break;
        case Op::kSetField:
          need_a();
          need_b();
          break;
        case Op::kGetFieldV:
          need_dst();
          need_a();
          need_b();
          break;
        case Op::kSetFieldV:
          need_a();
          need_b();
          if (!reg_ok(ins.c)) fail(where.str(), "bad operand c");
          break;
        case Op::kLoadG:
          need_dst();
          check_global(where.str(), ins.imm);
          break;
        case Op::kStoreG:
          need_a();
          check_global(where.str(), ins.imm);
          break;
        case Op::kCall: {
          const auto it = module_.function_index.find(ins.callee);
          if (it == module_.function_index.end()) {
            fail(where.str(), "call to unknown function '" + ins.callee + "'");
          } else {
            const Function& callee =
                module_.functions[static_cast<std::size_t>(it->second)];
            if (callee.params.size() != ins.args.size()) {
              fail(where.str(), "arity mismatch calling '" + ins.callee + "'");
            }
          }
          for (const int arg : ins.args) {
            if (!reg_ok(arg)) fail(where.str(), "bad call argument register");
          }
          if (ins.dst >= 0 && !reg_ok(ins.dst)) {
            fail(where.str(), "bad call destination");
          }
          break;
        }
        case Op::kRet:
          if (ins.a >= 0 && !reg_ok(ins.a)) {
            fail(where.str(), "bad return operand");
          }
          break;
        case Op::kBr:
          if (!target_ok(ins.target)) fail(where.str(), "branch target out of range");
          break;
        case Op::kCbr:
          need_a();
          if (!target_ok(ins.target)) fail(where.str(), "cbr target out of range");
          if (!target_ok(ins.target2)) fail(where.str(), "cbr fallthrough out of range");
          break;
        case Op::kOut:
          need_a();
          break;
        case Op::kPoolInit:
          need_dst();
          break;
        case Op::kPoolDestroy:
          need_a();
          break;
        case Op::kPoolAlloc:
          need_dst();
          need_a();
          need_b();
          need_site();
          break;
        case Op::kPoolFree:
          need_a();
          need_b();
          need_site();
          break;
      }
    }
  }

  // The guard-elision contract must survive IR surgery: every table entry
  // names a real site, no site appears twice, every alloc/free site is
  // covered, and elision is uniform per points-to node and per pool — so an
  // elided (canonical, unguarded) pointer can never reach the poolfree of a
  // guarded pool, nor a guarded (shadow) pointer an elided free.
  void check_site_safety() {
    if (module_.site_safety.empty()) return;  // contract absent: all guarded

    std::unordered_map<std::uint32_t, Op> site_ops;
    for (const Function& fn : module_.functions) {
      for (const Instr& ins : fn.body) {
        if (ins.op == Op::kMalloc || ins.op == Op::kFree ||
            ins.op == Op::kPoolAlloc || ins.op == Op::kPoolFree) {
          site_ops.emplace(ins.site, ins.op);
        }
      }
    }

    std::set<std::uint32_t> seen;
    std::unordered_map<int, bool> node_elided;
    std::unordered_map<int, bool> pool_elided;
    for (const SiteSafetyEntry& entry : module_.site_safety) {
      std::ostringstream where;
      where << "site_safety[site " << entry.site << "]";
      if (!seen.insert(entry.site).second) {
        fail(where.str(), "duplicate site entry");
        continue;
      }
      const auto op_it = site_ops.find(entry.site);
      if (op_it == site_ops.end()) {
        fail(where.str(), "site does not exist in the module");
        continue;
      }
      const bool is_free_op =
          op_it->second == Op::kFree || op_it->second == Op::kPoolFree;
      if (entry.is_free != is_free_op) {
        fail(where.str(), "alloc/free kind disagrees with the instruction");
      }
      if (entry.node >= 0) {
        const auto [it, inserted] = node_elided.emplace(entry.node, entry.elided);
        if (!inserted && it->second != entry.elided) {
          fail(where.str(), "node mixes elided and guarded sites");
        }
      } else if (entry.elided) {
        fail(where.str(), "elided site has no points-to node");
      }
      if (entry.pool >= 0) {
        const auto [it, inserted] = pool_elided.emplace(entry.pool, entry.elided);
        if (!inserted && it->second != entry.elided) {
          fail(where.str(),
               "pool mixes elided and guarded sites (elided site would reach "
               "a guarded pool)");
        }
      }
    }
    for (const auto& [site, op] : site_ops) {
      if (seen.count(site) == 0) {
        std::ostringstream where;
        where << "site_safety[site " << site << "]";
        fail(where.str(), "alloc/free site missing from the safety table");
      }
    }
  }

  // The scheme-selection contract (DESIGN.md §14) gets the same scrutiny as
  // the elision table, plus cross-table consistency: a table whose version
  // the runtime does not speak is rejected wholesale; every entry names a
  // real site exactly once with the right alloc/free kind; the scheme is
  // uniform per points-to node and per pool (a tagged pointer must never
  // reach a page-guard free and vice versa); and when a SiteSafety table is
  // present, kUnguarded must coincide exactly with `elided` — in particular
  // the lock-and-key lane on a SAFE-elided site is rejected.
  void check_site_scheme() {
    if (module_.site_scheme.empty()) return;  // contract absent: page guard
    if (module_.site_scheme_version != kSiteSchemeVersion) {
      std::ostringstream where;
      where << "site_scheme[version " << module_.site_scheme_version << "]";
      fail(where.str(), "unsupported site_scheme table version");
      return;
    }

    std::unordered_map<std::uint32_t, Op> site_ops;
    for (const Function& fn : module_.functions) {
      for (const Instr& ins : fn.body) {
        if (ins.op == Op::kMalloc || ins.op == Op::kFree ||
            ins.op == Op::kPoolAlloc || ins.op == Op::kPoolFree) {
          site_ops.emplace(ins.site, ins.op);
        }
      }
    }

    std::set<std::uint32_t> seen;
    std::unordered_map<int, SiteScheme> node_scheme;
    std::unordered_map<int, SiteScheme> pool_scheme;
    for (const SiteSchemeEntry& entry : module_.site_scheme) {
      std::ostringstream where;
      where << "site_scheme[site " << entry.site << "]";
      if (!seen.insert(entry.site).second) {
        fail(where.str(), "conflicting duplicate site entry");
        continue;
      }
      const auto op_it = site_ops.find(entry.site);
      if (op_it == site_ops.end()) {
        fail(where.str(), "site does not exist in the module");
        continue;
      }
      const bool is_free_op =
          op_it->second == Op::kFree || op_it->second == Op::kPoolFree;
      if (entry.is_free != is_free_op) {
        fail(where.str(), "alloc/free kind disagrees with the instruction");
      }
      if (const SiteSafetyEntry* safety = module_.safety_of(entry.site)) {
        const bool unguarded = entry.scheme == SiteScheme::kUnguarded;
        if (safety->elided && !unguarded) {
          fail(where.str(),
               entry.scheme == SiteScheme::kLockAndKey
                   ? "lock-and-key lane on a SAFE-elided site"
                   : "page guard on a SAFE-elided site");
        } else if (!safety->elided && unguarded) {
          fail(where.str(), "unguarded scheme on a site not proven SAFE");
        }
      }
      if (entry.node >= 0) {
        const auto [it, inserted] = node_scheme.emplace(entry.node, entry.scheme);
        if (!inserted && it->second != entry.scheme) {
          fail(where.str(), "node mixes detection schemes");
        }
      } else if (entry.scheme != SiteScheme::kPageGuard) {
        fail(where.str(), "non-page-guard site has no points-to node");
      }
      if (entry.pool >= 0) {
        const auto [it, inserted] = pool_scheme.emplace(entry.pool, entry.scheme);
        if (!inserted && it->second != entry.scheme) {
          fail(where.str(),
               "pool mixes detection schemes (a tagged pointer would reach a "
               "page-guard free)");
        }
      }
    }
    for (const auto& [site, op] : site_ops) {
      if (seen.count(site) == 0) {
        std::ostringstream where;
        where << "site_scheme[site " << site << "]";
        fail(where.str(), "alloc/free site missing from the scheme table");
      }
    }
  }

  void check_global(const std::string& where, std::int64_t index) {
    if (index < 0 || index >= static_cast<std::int64_t>(module_.globals.size())) {
      fail(where, "global index out of range");
    }
  }

  const Module& module_;
  std::vector<std::string> diagnostics_;
};

}  // namespace

std::vector<std::string> verify_module(const Module& module) {
  return Verifier(module).run();
}

}  // namespace dpg::compiler
