// PIR interpreter — executes (transformed or raw) modules on a chosen
// allocation backend.
//
// This closes the paper's loop in-process: parse a C-like program, run
// Automatic Pool Allocation on it, then *execute* it against the guarded
// runtime. A dangling dereference in the program (e.g. Figure 1's
// p->next->val) becomes a real MMU trap, caught and reported by the fault
// manager; after a pooldestroy the pool's virtual pages really do return to
// the shared free list.
//
// Backends:
//   kNative  — std::malloc/std::free, raw accesses. For well-behaved
//              programs only (a dangling access is genuine UB here, exactly
//              like running the original binary).
//   kGuarded — every allocation guarded. kPoolInit/kPoolDestroy manage
//              GuardedPools; plain malloc/free (untransformed programs, or
//              sites the transformation left alone) go to a long-lived
//              global pool, modelling the paper's "directly applied on the
//              binaries" mode.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "compiler/ir.h"
#include "core/guarded_pool.h"

namespace dpg::compiler {

enum class Backend { kNative, kGuarded };

struct InterpOptions {
  Backend backend = Backend::kGuarded;
  std::uint64_t max_steps = 200'000'000;
  int max_depth = 500;
  bool verify = true;  // run verify_module() up front; throw on diagnostics
  // Honor the module's SiteSafety guard-elision table: sites the static UAF
  // analysis proved SAFE allocate straight from the canonical heap (no
  // shadow alias, no PROT_NONE at free). Disable to force full guarding,
  // e.g. to measure the elision win or distrust an external table.
  bool honor_safety = true;
  // Honor the module's SiteScheme table: sites the scheme chooser assigned
  // kLockAndKey allocate from the tag lane (generation key in the pointer's
  // high bits, checked at every mediated load/store/free). Disable to route
  // every non-elided site through the page-guard lane — the all-page-guard
  // half of an A/B run (pirc --scheme=guard).
  bool honor_schemes = true;
  // Degradation-ladder A/B knobs (pirc --rung / --sample-rate). forced_rung
  // pins a private governor to one rung for the interpreter's lifetime
  // (core::GuardMode numbering: 0 full-guard, 1 sampled, 2 quarantine-only,
  // 3 unguarded; -1 = adaptive process default). sample_rate fixes the
  // sampled rung's 1-in-N; 0 keeps the governor default (or DPG_SAMPLE_RATE).
  // Setting either knob gives the run its own governor, so A/B comparisons
  // do not perturb — or inherit pressure from — the process-wide ladder.
  int forced_rung = -1;
  std::size_t sample_rate = 0;
};

struct InterpResult {
  std::vector<std::uint64_t> output;  // values emitted by `out`
  std::uint64_t steps = 0;
};

class InterpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Interpreter {
 public:
  explicit Interpreter(const Module& module, InterpOptions options = {});
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Runs `main` (binding `args` to its leading parameters). May be called
  // multiple times; guarded state persists across runs like a live process.
  [[nodiscard]] InterpResult run(const std::vector<std::uint64_t>& args = {});

  // Guarded-backend introspection for tests and benches.
  [[nodiscard]] core::GuardedPoolContext* context() noexcept { return ctx_.get(); }
  [[nodiscard]] std::size_t live_pools() const noexcept;

  // The private governor created for the --rung/--sample-rate knobs, or
  // nullptr when the run rides the adaptive process-wide ladder.
  [[nodiscard]] core::DegradationGovernor* governor() noexcept {
    return governor_.get();
  }

  // Allocations served unguarded under the elision contract, accumulated
  // across the interpreter's lifetime (pool destruction does not reset it).
  [[nodiscard]] std::uint64_t guards_elided() const noexcept {
    return guards_elided_;
  }

  // Allocations served by the lock-and-key lane (scheme kLockAndKey),
  // accumulated across the interpreter's lifetime.
  [[nodiscard]] std::uint64_t tag_lane_allocs() const noexcept {
    return tag_lane_allocs_;
  }

 private:
  std::uint64_t call(const Function& fn, const std::vector<std::uint64_t>& args,
                     int depth);
  [[nodiscard]] std::uint64_t mem_alloc(core::GuardedPool* pool,
                                        std::uint64_t fields,
                                        std::uint32_t site);
  void mem_free(core::GuardedPool* pool, std::uint64_t addr, std::uint32_t site);
  [[nodiscard]] core::GuardedPool* pool_from_handle(std::uint64_t handle,
                                                    const char* what);

  Module module_;  // owned copy: callers may pass temporaries
  InterpOptions opts_;
  // Declared before ctx_: the context's VA-release hook points at the
  // governor, so the governor must be destroyed after the context.
  std::unique_ptr<core::DegradationGovernor> governor_;
  std::unique_ptr<core::GuardedPoolContext> ctx_;
  std::unique_ptr<core::GuardedPool> global_pool_;
  std::vector<std::unique_ptr<core::GuardedPool>> pools_;
  std::vector<std::uint64_t> globals_;
  std::unordered_set<std::uint64_t> native_live_;
  std::unordered_set<std::uint32_t> elided_sites_;  // from module_.site_safety
  std::unordered_set<std::uint32_t> tagged_sites_;  // from module_.site_scheme
  std::uint64_t guards_elided_ = 0;
  std::uint64_t tag_lane_allocs_ = 0;
  std::uint64_t steps_ = 0;
  std::vector<std::uint64_t> output_;
};

}  // namespace dpg::compiler
