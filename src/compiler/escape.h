// Escape analysis + pool placement.
//
// "The transformation first identifies points-to graph nodes that do not
//  escape a function using a traditional escape analysis (reachability
//  analysis from function arguments, globals and return values) and creates
//  pools for those nodes at the function entry and destroys them at the
//  function exit." (paper Section 2.2)
//
// Placement over the call graph: a heap node's pool home is the deepest
// function F such that (a) the node does not escape F's boundary (params,
// return value, globals), and (b) every function using the node is reachable
// from F, so the poolinit/pooldestroy pair in F brackets every use. Recursive
// functions (non-trivial SCCs) cannot host a pool — it would be re-created
// per activation — so homes are restricted to trivial SCCs, and nodes that
// escape everything live in a main-scoped "global" pool (the long-lived-pool
// case Section 3.4 discusses).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "compiler/points_to.h"

namespace dpg::compiler {

struct PoolPlacement {
  int node = -1;                      // points-to node root
  std::set<std::uint32_t> sites;      // malloc sites in the pool
  int home_function = -1;             // index of poolinit/pooldestroy owner
  bool global_lifetime = false;       // escaped to globals / lives in main
  std::set<int> users;                // functions needing the pool descriptor
};

struct EscapeResult {
  std::vector<PoolPlacement> pools;           // one per heap node
  std::map<int, int> node_to_pool;            // node root -> pools index

  [[nodiscard]] const PoolPlacement* pool_of_node(int node) const {
    const auto it = node_to_pool.find(node);
    return it == node_to_pool.end() ? nullptr : &pools[static_cast<std::size_t>(it->second)];
  }
};

// Requires a function named "main" to exist (the fallback home).
[[nodiscard]] EscapeResult place_pools(const Module& module,
                                       const PointsToAnalysis& pta);

}  // namespace dpg::compiler
