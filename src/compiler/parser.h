// Parser for PIR's textual form.
//
// Grammar (line-oriented; '#' comments):
//
//   module   := (global | func)*
//   global   := "global" IDENT
//   func     := "func" IDENT "(" params? ")" "{" line* "}"
//   line     := LABEL ":" | instr
//   instr    := IDENT "=" rhs | "free" IDENT | "setfield" IDENT "," NUM "," IDENT
//             | "storeg" IDENT "," IDENT | "ret" IDENT? | "br" LABEL
//             | "cbr" IDENT "," LABEL "," LABEL | "out" IDENT
//             | "call" IDENT "(" args? ")"            (call ignoring result)
//   rhs      := "const" NUM | "copy" IDENT | "add" IDENT "," IDENT
//             | "sub" IDENT "," IDENT | "mul" IDENT "," IDENT
//             | "lt" IDENT "," IDENT | "eq" IDENT "," IDENT
//             | "malloc" IDENT | "getfield" IDENT "," NUM | "loadg" IDENT
//             | "call" IDENT "(" args? ")"
//
// Registers are created on first mention. Labels resolve to instruction
// indices in a second pass. Site ids are assigned globally in program order.
#pragma once

#include <stdexcept>
#include <string>

#include "compiler/ir.h"

namespace dpg::compiler {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

[[nodiscard]] Module parse_module(const std::string& source);

}  // namespace dpg::compiler
