#include "compiler/pool_transform.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "compiler/uaf_analysis.h"

namespace dpg::compiler {

namespace {

// Which pools each function must have a descriptor register for: users of the
// pool (minus the home, which creates it) closed over call paths, so that a
// function calling a descriptor-needing callee can thread the descriptor.
std::vector<std::set<int>> compute_needs(const Module& module,
                                         const EscapeResult& placement) {
  const int nfun = static_cast<int>(module.functions.size());
  std::vector<std::set<int>> need(static_cast<std::size_t>(nfun));
  for (std::size_t p = 0; p < placement.pools.size(); ++p) {
    for (const int user : placement.pools[p].users) {
      if (user != placement.pools[p].home_function) {
        need[static_cast<std::size_t>(user)].insert(static_cast<int>(p));
      }
    }
  }
  // Fixpoint: caller needs whatever a callee needs, unless the caller is the
  // pool's home (it has the descriptor as a local).
  bool changed = true;
  while (changed) {
    changed = false;
    for (int f = 0; f < nfun; ++f) {
      for (const Instr& ins : module.functions[static_cast<std::size_t>(f)].body) {
        if (ins.op != Op::kCall) continue;
        const auto it = module.function_index.find(ins.callee);
        if (it == module.function_index.end()) continue;
        for (const int p : need[static_cast<std::size_t>(it->second)]) {
          if (placement.pools[static_cast<std::size_t>(p)].home_function == f) continue;
          if (need[static_cast<std::size_t>(f)].insert(p).second) changed = true;
        }
      }
    }
  }
  return need;
}

// Element-size inference: when every malloc site of a pool allocates a
// constant field count, poolinit receives sizeof(elem) as its hint (the
// paper's Figure 2: poolinit(&PP, sizeof(struct s))). Returns bytes, or 0
// when sites disagree or sizes are dynamic.
std::vector<std::int64_t> infer_elem_sizes(const Module& module,
                                           const EscapeResult& placement) {
  // site -> constant byte size (or -1 when not constant)
  std::map<std::uint32_t, std::int64_t> site_size;
  for (const Function& fn : module.functions) {
    // Track registers holding known constants, invalidated on reassignment.
    std::map<int, std::int64_t> constants;
    for (const Instr& ins : fn.body) {
      if (ins.op == Op::kMalloc) {
        const auto it = constants.find(ins.a);
        site_size[ins.site] = it != constants.end() ? it->second * 8 : -1;
      }
      if (ins.dst >= 0) {
        if (ins.op == Op::kConst) {
          constants[ins.dst] = ins.imm;
        } else {
          constants.erase(ins.dst);
        }
      }
    }
  }
  std::vector<std::int64_t> hints(placement.pools.size(), 0);
  for (std::size_t p = 0; p < placement.pools.size(); ++p) {
    std::int64_t hint = 0;
    bool uniform = true;
    for (const std::uint32_t site : placement.pools[p].sites) {
      const auto it = site_size.find(site);
      const std::int64_t size = it != site_size.end() ? it->second : -1;
      if (size <= 0 || (hint != 0 && hint != size)) {
        uniform = false;
        break;
      }
      hint = size;
    }
    hints[p] = uniform ? hint : 0;
  }
  return hints;
}

// The compiler->runtime guard-elision contract: one table row per alloc/free
// site of the input program (site ids survive the rewrite untouched). A site
// is elided exactly when the UAF analysis found its whole points-to node free
// of temporal errors; since pools partition by node, elision is automatically
// uniform per pool — the invariant verify_module re-checks after surgery.
std::vector<SiteSafetyEntry> build_site_safety(const Module& input,
                                               const PointsToAnalysis& pta,
                                               const EscapeResult& placement,
                                               const UafAnalysis& uaf) {
  std::vector<SiteSafetyEntry> table;
  const auto pool_of = [&](int node) {
    const auto it = placement.node_to_pool.find(node);
    return it == placement.node_to_pool.end() ? -1 : it->second;
  };
  for (std::size_t f = 0; f < input.functions.size(); ++f) {
    for (const Instr& ins : input.functions[f].body) {
      SiteSafetyEntry entry;
      switch (ins.op) {
        case Op::kMalloc:
        case Op::kPoolAlloc:
          entry.node = pta.node_of_site(ins.site);
          break;
        case Op::kFree:
        case Op::kPoolFree: {
          const int ptr_reg = ins.op == Op::kFree ? ins.a : ins.b;
          const int element = pta.var_element(static_cast<int>(f), ptr_reg);
          entry.node = pta.pointee_node(element);
          entry.is_free = true;
          break;
        }
        default:
          continue;
      }
      entry.site = ins.site;
      entry.pool = entry.node >= 0 ? pool_of(entry.node) : -1;
      entry.elided = uaf.node_safe(entry.node);
      table.push_back(entry);
    }
  }
  return table;
}

// The compiler->runtime scheme-selection contract (DESIGN.md §14): one row
// per alloc/free site, carrying the chooser's lane plus rationale. Node and
// pool attribution mirror build_site_safety exactly; because the chooser
// decides per node, the table is automatically uniform per node and pool —
// verify_module re-checks both that and consistency against SiteSafety
// (kUnguarded iff elided).
std::vector<SiteSchemeEntry> build_site_scheme(const Module& input,
                                               const PointsToAnalysis& pta,
                                               const EscapeResult& placement,
                                               const UafAnalysis& uaf) {
  std::vector<SiteSchemeEntry> table;
  const auto pool_of = [&](int node) {
    const auto it = placement.node_to_pool.find(node);
    return it == placement.node_to_pool.end() ? -1 : it->second;
  };
  for (std::size_t f = 0; f < input.functions.size(); ++f) {
    for (const Instr& ins : input.functions[f].body) {
      SiteSchemeEntry entry;
      switch (ins.op) {
        case Op::kMalloc:
        case Op::kPoolAlloc:
          entry.node = pta.node_of_site(ins.site);
          break;
        case Op::kFree:
        case Op::kPoolFree: {
          const int ptr_reg = ins.op == Op::kFree ? ins.a : ins.b;
          const int element = pta.var_element(static_cast<int>(f), ptr_reg);
          entry.node = pta.pointee_node(element);
          entry.is_free = true;
          break;
        }
        default:
          continue;
      }
      entry.site = ins.site;
      entry.pool = entry.node >= 0 ? pool_of(entry.node) : -1;
      const SchemeDecision d = uaf.scheme_of(ins.site);
      // kUnguarded is derived from the same node_safe() call the safety
      // table uses, so "scheme == kUnguarded iff elided" holds by
      // construction; a site the chooser could not attribute stays on the
      // exact lane.
      const bool elided = uaf.node_safe(entry.node);
      entry.scheme = elided                                 ? SiteScheme::kUnguarded
                     : d.scheme == SiteScheme::kUnguarded   ? SiteScheme::kPageGuard
                                                            : d.scheme;
      entry.pair_class = static_cast<std::uint8_t>(d.cls);
      entry.size_bytes = d.size_bytes;
      entry.hot = d.hot;
      table.push_back(entry);
    }
  }
  return table;
}

}  // namespace

TransformResult pool_allocate(const Module& input) {
  const PointsToAnalysis pta(input);
  EscapeResult placement = place_pools(input, pta);
  const std::vector<std::set<int>> need = compute_needs(input, placement);
  const std::vector<std::int64_t> elem_hints = infer_elem_sizes(input, placement);
  const UafAnalysis uaf(input, pta);

  Module out;
  out.globals = input.globals;
  out.site_safety = build_site_safety(input, pta, placement, uaf);
  out.site_scheme_version = kSiteSchemeVersion;
  out.site_scheme = build_site_scheme(input, pta, placement, uaf);

  const int nfun = static_cast<int>(input.functions.size());
  for (int f = 0; f < nfun; ++f) {
    const Function& fn = input.functions[static_cast<std::size_t>(f)];
    Function nfn;
    nfn.name = fn.name;
    nfn.params = fn.params;
    nfn.reg_names = fn.reg_names;

    // Pool descriptor registers: extra trailing params for needed pools,
    // fresh locals for homed pools.
    std::map<int, int> pool_reg;  // pool index -> register
    for (const int p : need[static_cast<std::size_t>(f)]) {
      const std::string name = "__pool" + std::to_string(p);
      pool_reg[p] = static_cast<int>(nfn.reg_names.size());
      nfn.reg_names.push_back(name);
      nfn.params.push_back(name);
    }
    // NOTE: extra params must be *trailing*, and parser laid params out as
    // the first registers. The interpreter binds call arguments by parameter
    // order, looking the registers up by name, so appending names is enough.
    std::vector<int> homed;  // pool indices created here
    for (std::size_t p = 0; p < placement.pools.size(); ++p) {
      if (placement.pools[p].home_function == f) {
        const std::string name = "__pool" + std::to_string(p);
        pool_reg[static_cast<int>(p)] = static_cast<int>(nfn.reg_names.size());
        nfn.reg_names.push_back(name);
        homed.push_back(static_cast<int>(p));
      }
    }

    const auto pool_reg_of_site = [&](std::uint32_t site) -> int {
      const int node = pta.node_of_site(site);
      const PoolPlacement* pool = placement.pool_of_node(node);
      if (pool == nullptr) return -1;
      const auto it = placement.node_to_pool.find(node);
      const auto rit = pool_reg.find(it->second);
      return rit == pool_reg.end() ? -1 : rit->second;
    };
    const auto pool_reg_of_ptr = [&](int reg) -> int {
      const int node = pta.pointee_node(pta.var_element(f, reg));
      if (node < 0) return -1;
      const auto it = placement.node_to_pool.find(pta.find(node));
      if (it == placement.node_to_pool.end()) return -1;
      const auto rit = pool_reg.find(it->second);
      return rit == pool_reg.end() ? -1 : rit->second;
    };

    // Plan the rewrite: poolinits go into a one-shot preamble (never a branch
    // target, so loop back-edges to old instruction 0 cannot re-init);
    // pooldestroys are inserted *before* every ret, and branch targets map to
    // the start of an instruction's insertion block so a jump straight to a
    // ret still runs the destroys.
    std::vector<Instr> preamble;
    for (const int p : homed) {
      Instr init;
      init.op = Op::kPoolInit;
      init.dst = pool_reg[p];
      init.imm = elem_hints[static_cast<std::size_t>(p)];  // sizeof(elem) or 0
      preamble.push_back(init);
    }
    std::vector<std::vector<Instr>> before(fn.body.size());
    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      if (fn.body[i].op != Op::kRet) continue;
      for (auto it = homed.rbegin(); it != homed.rend(); ++it) {
        Instr destroy;
        destroy.op = Op::kPoolDestroy;
        destroy.a = pool_reg[*it];
        before[i].push_back(destroy);
      }
    }

    std::vector<int> new_index(fn.body.size());  // -> start of before-block
    int cursor = static_cast<int>(preamble.size());
    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      new_index[i] = cursor;
      cursor += static_cast<int>(before[i].size()) + 1;
    }

    for (Instr& pre : preamble) nfn.body.push_back(pre);
    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      for (Instr& pre : before[i]) nfn.body.push_back(pre);
      Instr ins = fn.body[i];
      switch (ins.op) {
        case Op::kMalloc: {
          const int preg = pool_reg_of_site(ins.site);
          if (preg >= 0) {
            ins.op = Op::kPoolAlloc;
            ins.b = ins.a;  // size register
            ins.a = preg;
          }
          break;
        }
        case Op::kFree: {
          const int preg = pool_reg_of_ptr(ins.a);
          if (preg >= 0) {
            ins.op = Op::kPoolFree;
            ins.b = ins.a;  // pointer register
            ins.a = preg;
          }
          break;
        }
        case Op::kCall: {
          const auto it = input.function_index.find(ins.callee);
          if (it != input.function_index.end()) {
            // Append descriptors for each pool the callee needs, in pool-
            // index order (matching the parameter order appended above).
            for (const int p : need[static_cast<std::size_t>(it->second)]) {
              const auto rit = pool_reg.find(p);
              if (rit == pool_reg.end()) {
                throw std::logic_error("pool_allocate: caller " + fn.name +
                                       " lacks descriptor for callee " +
                                       ins.callee);
              }
              ins.args.push_back(rit->second);
            }
          }
          break;
        }
        case Op::kBr:
          ins.target = new_index[static_cast<std::size_t>(ins.target)];
          break;
        case Op::kCbr:
          ins.target = new_index[static_cast<std::size_t>(ins.target)];
          ins.target2 = new_index[static_cast<std::size_t>(ins.target2)];
          break;
        default:
          break;
      }
      nfn.body.push_back(std::move(ins));
    }

    out.function_index.emplace(nfn.name, static_cast<int>(out.functions.size()));
    out.functions.push_back(std::move(nfn));
  }

  return TransformResult{std::move(out), std::move(placement)};
}

}  // namespace dpg::compiler
