// Steensgaard-style unification points-to analysis over PIR.
//
// Automatic Pool Allocation consumes a points-to graph whose nodes partition
// the heap ("each node in the points-to graph represents a set of memory
// objects of the original program", paper Section 2.2). We compute that
// partition with a unification-based (near-linear, context-insensitive,
// field-insensitive) analysis — the same family as the DSA graphs the real
// transformation uses, simplified exactly the way the paper says escape
// analysis may be: "much simpler, but can be less precise, than that required
// for static detection of dangling pointer references".
//
// Model: every analysis element carries at most one points-to edge. Variables
// point to memory nodes; a memory node's edge describes what its fields may
// point to. Unifying two elements recursively unifies their pointees, so a
// single pass over all instructions reaches the fixed point.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/ir.h"

namespace dpg::compiler {

class PointsToAnalysis {
 public:
  explicit PointsToAnalysis(const Module& module);

  // --- element handles -----------------------------------------------------
  [[nodiscard]] int var_element(int fn_index, int reg) const;
  [[nodiscard]] int ret_element(int fn_index) const;
  [[nodiscard]] int global_element(int global_index) const;

  // Root element of the memory node an alloc site belongs to (or -1).
  [[nodiscard]] int node_of_site(std::uint32_t site) const;

  // Root of the memory node a pointer variable points to, or -1 when the
  // variable was never given a pointee.
  [[nodiscard]] int pointee_node(int element) const;

  // --- node queries ----------------------------------------------------------
  [[nodiscard]] std::vector<int> heap_nodes() const;
  [[nodiscard]] const std::set<std::uint32_t>& sites_of(int node) const;
  [[nodiscard]] bool reachable_from_global(int node) const;

  // Heap nodes reachable from a seed element through points-to edges
  // (includes nodes behind arbitrarily many field indirections).
  void collect_reachable(int element, std::set<int>& out) const;

  // Pure root lookup: no path compression, so const queries are safe from
  // any number of threads once construction finished. All unions (and their
  // path-halving) happen during construction via find_mut().
  [[nodiscard]] int find(int element) const;

 private:
  int fresh();
  int find_mut(int element);  // path-halving variant, construction only
  int pointee_of(int element);
  void unite(int a, int b);
  void constrain_function(const Module& module, int fn_index);

  struct Info {
    bool is_heap = false;
    std::set<std::uint32_t> sites;
  };

  // Union-find state.
  std::vector<int> parent_;
  std::vector<int> rank_;
  std::vector<int> pointee_;  // -1 = none; meaningful at roots
  std::unordered_map<int, Info> info_;  // root -> metadata (moved on union)

  // Element id layout.
  std::vector<int> fn_var_base_;  // per function: first register element id
  std::vector<int> fn_ret_;       // per function: return-value element id
  std::vector<int> global_base_;  // per global: element id
  std::unordered_map<std::uint32_t, int> site_element_;

  static const std::set<std::uint32_t> kEmptySites;
};

}  // namespace dpg::compiler
