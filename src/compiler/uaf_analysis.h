// Static use-after-free / double-free analysis over PIR.
//
// The paper's cost model moves all protection work into malloc/free; CAMP and
// ShadowBound (PAPERS.md) show the next step: use compiler analysis to prove
// allocation sites temporally safe and *remove* their protection work
// entirely. This pass is that analysis for PIR. It serves two masters:
//
//   1. Diagnostics: `pirc --lint` reports every potential dangling use at
//      compile time, each finding carrying a witness path (alloc site ->
//      free site -> use, as function/instruction/site-id steps).
//   2. The guard-elision contract: sites whose points-to node has *no*
//      finding are classified SAFE; the pool transformation records that in
//      the module's SiteSafety table, and the guarded interpreter then
//      allocates those sites straight from the canonical heap — no shadow
//      alias mmap at malloc, no PROT_NONE mprotect at free.
//
// Abstraction (documented precisely because elision trusts it):
//   - Granularity is the points-to *node* (Steensgaard partition), i.e. a set
//     of objects. The per-node lattice is {bottom, LIVE, FREED, UNKNOWN} with
//     UNKNOWN = may-live-or-freed.
//   - Flow-sensitive intraprocedural: states propagate over the instruction
//     CFG and join (bitwise-or) at merge points to a fixpoint.
//   - Context-insensitive interprocedural: each function gets one entry state
//     (join over all call sites) and one summary (the set of nodes it may
//     transitively free). A call applies the callee's summary as a *strong*
//     update (node -> FREED): a free that may happen is treated as having
//     happened. This is what lets the paper's Figure 1/2 dangling dereference
//     be reported MUST rather than MAY, at the price of possible false
//     MUST claims when a callee frees only on some paths.
//   - malloc is a strong update to LIVE (the node models its most recent
//     objects). A loop that frees then reallocates therefore re-arms the
//     node; a loop that frees without reallocating leaves UNKNOWN at the
//     back-edge join, so loop-carried dangling uses surface as MAY findings.
//
// Consequences worth knowing: MUST means "freed in every abstract state the
// analysis can construct", a node-granular claim — unification merges, e.g.,
// a list head with its elements, so a MUST finding can name a concrete object
// that is still live. SAFE, by contrast, is the claim elision relies on: no
// instruction ever observes the node with its freed bit set, under an
// analysis whose joins only ever *add* freed-ness. The one deliberate hole is
// the strong LIVE update at allocation sites (an aliased pre-malloc pointer
// could be laundered); that is the same trade CAMP/ShadowBound accept, and
// unclassified sites always stay guarded.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "compiler/ir.h"
#include "compiler/points_to.h"

namespace dpg::compiler {

enum class FindingKind : std::uint8_t { kUseAfterFree, kDoubleFree };
enum class Certainty : std::uint8_t { kMay, kMust };

// (alloc-site, free-site) pair classification, most severe finding wins
// (kSafe < kMayUaf < kMustUaf < kDoubleFree).
enum class PairClass : std::uint8_t { kSafe, kMayUaf, kMustUaf, kDoubleFree };

struct WitnessStep {
  int fn = -1;              // function index
  int instr = -1;           // instruction index within the function
  std::uint32_t site = 0;   // alloc/free site id (0 for use/call steps)
  const char* role = "";    // "alloc" | "free" | "call" | "use"
};

struct Finding {
  FindingKind kind = FindingKind::kUseAfterFree;
  Certainty certainty = Certainty::kMay;
  int fn = -1;                            // offending instruction's function
  int instr = -1;                         // offending instruction's index
  int node = -1;                          // points-to node root
  std::uint32_t free_site = 0;            // the free the pointer dangles from
  std::vector<std::uint32_t> alloc_sites; // the node's allocation sites
  std::vector<WitnessStep> witness;       // alloc -> [call] -> free -> use

  // "MUST-UAF: f[3] getfield of node freed at site 4 (g[17]); alloc site 2"
  [[nodiscard]] std::string describe(const Module& module) const;
  // One-line JSON object (machine-readable lint output).
  [[nodiscard]] std::string to_json(const Module& module) const;
};

struct SitePair {
  std::uint32_t alloc_site = 0;
  std::uint32_t free_site = 0;
  PairClass cls = PairClass::kSafe;
};

// Scheme-selection verdict for one points-to node (DESIGN.md §14): which
// detection lane the chooser assigns, plus the rationale `pirc --lint`
// surfaces. Policy (cheapest lane whose guarantee suffices):
//   SAFE node                              -> kUnguarded
//   MAY-UAF + small const size + alloc-hot -> kLockAndKey
//   everything else (MUST/DOUBLE-FREE, unknown or large size, cold)
//                                          -> kPageGuard
// MUST/DOUBLE-FREE nodes keep the page guard because the lock-and-key lane
// has a precision hole (tag reuse after generation wrap) that the exact lane
// does not; a site the analysis *expects* to fault deserves the exact lane.
struct SchemeDecision {
  SiteScheme scheme = SiteScheme::kPageGuard;
  PairClass cls = PairClass::kSafe;  // worst (alloc,free) class over the node
  std::int64_t size_bytes = -1;      // max const-inferred alloc size; -1 unknown
  bool hot = false;                  // allocation inside a loop / hot callee
};

// Largest const-inferable object the lock-and-key lane will take: beyond
// this the per-object page-guard cost amortizes and exactness wins.
inline constexpr std::int64_t kTagLaneMaxBytes = 256;

[[nodiscard]] const char* finding_kind_name(FindingKind kind);
[[nodiscard]] const char* certainty_name(Certainty certainty);
[[nodiscard]] const char* pair_class_name(PairClass cls);

class UafAnalysis {
 public:
  // `pta` must outlive the analysis and have been built from `module`.
  UafAnalysis(const Module& module, const PointsToAnalysis& pta);

  [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
    return findings_;
  }

  // Every (alloc-site, free-site) pair sharing a points-to node, classified.
  [[nodiscard]] const std::vector<SitePair>& pairs() const noexcept {
    return pairs_;
  }

  // True when no finding involves the node: the elision contract.
  [[nodiscard]] bool node_safe(int node) const;

  // Convenience for the transformation: alloc/free site -> safe?
  [[nodiscard]] bool site_safe(std::uint32_t site) const;

  [[nodiscard]] const std::set<int>& unsafe_nodes() const noexcept {
    return unsafe_nodes_;
  }

  // The scheme chooser's verdict per site (alloc and free sites both carry
  // their node's decision — the scheme is a node-level property). Sites the
  // points-to analysis could not attribute are absent; callers keep them on
  // the page guard.
  [[nodiscard]] const std::map<std::uint32_t, SchemeDecision>& site_schemes()
      const noexcept {
    return site_scheme_;
  }
  // Decision for one site; kPageGuard default for unattributed sites.
  [[nodiscard]] SchemeDecision scheme_of(std::uint32_t site) const;

 private:
  class Impl;
  void choose_schemes(const Module& module, const PointsToAnalysis& pta);

  std::vector<Finding> findings_;
  std::vector<SitePair> pairs_;
  std::set<int> unsafe_nodes_;
  std::map<std::uint32_t, int> site_node_;  // alloc+free site -> node root
  std::map<std::uint32_t, SchemeDecision> site_scheme_;
};

}  // namespace dpg::compiler
