// PIR — a miniature pointer intermediate representation.
//
// The paper applies the (LLVM-based) Automatic Pool Allocation transformation
// to C programs. Reimplementing LLVM is out of scope; what the runtime needs
// from the compiler is a *contract* — pools whose lifetimes bound all
// pointers into them. PIR is the smallest IR rich enough to reproduce that
// pipeline end-to-end: points-to analysis -> escape analysis -> pool
// placement -> transformed program executing on the guarded runtime. The
// paper's running example (Figure 1/2) is expressible directly, dangling
// dereference included.
//
// Shape: non-SSA register machine. Heap objects are records of 8-byte word
// fields. Direct calls only (no function pointers), which keeps the call
// graph static, as Automatic Pool Allocation's DSA would anyway resolve for
// these programs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dpg::compiler {

enum class Op : std::uint8_t {
  kConst,     // r = const imm
  kCopy,      // r = copy a
  kAdd,       // r = add a, b
  kSub,       // r = sub a, b
  kMul,       // r = mul a, b
  kCmpLt,     // r = lt a, b      (1 or 0)
  kCmpEq,     // r = eq a, b
  kMalloc,    // r = malloc n     (n fields of 8 bytes; n from register a)
  kFree,      // free a
  kGetField,  // r = getfield a, imm
  kSetField,  // setfield a, imm, b
  kGetFieldV, // r = getfieldv a, b      (field index from register b)
  kSetFieldV, // setfieldv a, b, c       (object a, index b, value c)
  kLoadG,     // r = loadg global#imm
  kStoreG,    // storeg global#imm, a
  kCall,      // r = call callee(args...)   (r optional)
  kRet,       // ret [a]
  kBr,        // br target
  kCbr,       // cbr a, target, target2
  kOut,       // out a            (append to program output)
  // Inserted by the pool transformation:
  kPoolInit,     // r = poolinit            (fresh pool descriptor)
  kPoolDestroy,  // pooldestroy a
  kPoolAlloc,    // r = poolalloc a, n      (pool in a, n fields from b)
  kPoolFree,     // poolfree a, b           (pool in a, pointer in b)
};

struct Instr {
  Op op{};
  int dst = -1;          // destination register, -1 if none
  int a = -1;            // operand registers
  int b = -1;
  int c = -1;            // third operand (kSetFieldV value)
  std::int64_t imm = 0;  // constant / field index / global index
  int target = -1;       // branch target (instruction index)
  int target2 = -1;
  std::string callee;    // kCall
  std::vector<int> args; // kCall argument registers
  std::uint32_t site = 0;  // unique site id (malloc/free diagnostics)
};

struct Function {
  std::string name;
  std::vector<std::string> params;       // first registers are the params
  std::vector<std::string> reg_names;    // index -> name
  std::vector<Instr> body;

  [[nodiscard]] int num_regs() const { return static_cast<int>(reg_names.size()); }
};

// One row of the compiler->runtime guard-elision contract. The UAF analysis
// (uaf_analysis.h) classifies every points-to node; the pool transformation
// records one entry per alloc/free site of the transformed module. `elided`
// means the static analysis proved the site's node free of temporal errors,
// so the runtime may serve it from the canonical heap directly: no shadow
// alias mmap at allocation, no PROT_NONE mprotect at free. Elision is a
// per-node (hence per-pool) all-or-nothing property — verify_module rejects
// tables where a guarded and an elided site share a node or a pool, which is
// what guarantees an elided (canonical) pointer never reaches the guarded
// poolfree path and vice versa.
struct SiteSafetyEntry {
  std::uint32_t site = 0;
  int node = -1;        // points-to node root the site belongs to
  int pool = -1;        // pool index from placement; -1 = default/global pool
  bool is_free = false; // free/poolfree site (else alloc site)
  bool elided = false;  // SAFE-classified: runtime skips guarding entirely
};

// Detection scheme the analyzer assigns to a site (DESIGN.md §14). Three
// lanes, cheapest sufficient one wins:
//   kUnguarded   proven SAFE — canonical heap, no check at all.
//   kLockAndKey  software lock-and-key: a generation tag in the pointer's
//                high bits is checked against a per-slot generation word on
//                every PIR load/store and free. No shadow alias, no
//                mprotect; precision trade = the tag-reuse window after the
//                per-slot generation counter wraps.
//   kPageGuard   the paper's page-granularity MMU guard — exact, expensive.
enum class SiteScheme : std::uint8_t {
  kUnguarded = 0,
  kLockAndKey = 1,
  kPageGuard = 2,
};

[[nodiscard]] constexpr const char* site_scheme_name(SiteScheme s) {
  switch (s) {
    case SiteScheme::kUnguarded: return "UNGUARDED";
    case SiteScheme::kLockAndKey: return "LOCK-AND-KEY";
    case SiteScheme::kPageGuard: return "PAGE-GUARD";
  }
  return "?";
}

// Version of the SiteScheme table contract. Bump when entry semantics
// change; verify_module rejects tables whose stored version differs, so a
// stale producer can never smuggle a misread table past the runtime.
inline constexpr std::uint32_t kSiteSchemeVersion = 1;

// One row of the compiler->runtime scheme-selection contract, emitted by the
// pool transformation next to SiteSafety. Like elision, the scheme is a
// per-node (hence per-pool) all-or-nothing property — verify_module rejects
// tables where two sites of one node or pool disagree, which guarantees a
// tagged pointer never reaches the page-guard free path and vice versa. The
// rationale fields record *why* the chooser picked the scheme (surfaced by
// `pirc --lint`).
struct SiteSchemeEntry {
  std::uint32_t site = 0;
  int node = -1;        // points-to node root the site belongs to
  int pool = -1;        // pool index from placement; -1 = default/global pool
  bool is_free = false; // free/poolfree site (else alloc site)
  SiteScheme scheme = SiteScheme::kPageGuard;
  // Chooser rationale: worst (alloc,free) pair class over the node (numeric
  // uaf_analysis PairClass), const-inferred object size (-1 = unknown), and
  // whether any allocation of the node sits inside a loop.
  std::uint8_t pair_class = 0;
  std::int64_t size_bytes = -1;
  bool hot = false;
};

struct Module {
  std::vector<std::string> globals;  // named module-level word slots
  std::vector<Function> functions;
  std::unordered_map<std::string, int> function_index;

  // Guard-elision contract; empty = everything guarded (the default for
  // hand-written or untransformed modules).
  std::vector<SiteSafetyEntry> site_safety;

  // Scheme-selection contract; empty = every guarded site uses the page
  // guard (the pre-scheme-table behaviour). When non-empty,
  // site_scheme_version must equal kSiteSchemeVersion (verify_module).
  std::uint32_t site_scheme_version = 0;
  std::vector<SiteSchemeEntry> site_scheme;

  [[nodiscard]] const SiteSafetyEntry* safety_of(std::uint32_t site) const {
    for (const SiteSafetyEntry& entry : site_safety) {
      if (entry.site == site) return &entry;
    }
    return nullptr;
  }

  [[nodiscard]] const SiteSchemeEntry* scheme_of(std::uint32_t site) const {
    for (const SiteSchemeEntry& entry : site_scheme) {
      if (entry.site == site) return &entry;
    }
    return nullptr;
  }

  [[nodiscard]] const Function* find(const std::string& name) const {
    const auto it = function_index.find(name);
    return it == function_index.end() ? nullptr : &functions[it->second];
  }
  [[nodiscard]] Function* find(const std::string& name) {
    const auto it = function_index.find(name);
    return it == function_index.end() ? nullptr : &functions[it->second];
  }

  [[nodiscard]] int global_index(const std::string& name) const {
    for (std::size_t i = 0; i < globals.size(); ++i) {
      if (globals[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  // Pretty-printer (tests compare transformed programs against expectations).
  [[nodiscard]] std::string dump() const;
};

}  // namespace dpg::compiler
