#include "compiler/parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

namespace dpg::compiler {

namespace {

struct Tokenizer {
  std::string text;
  std::size_t pos = 0;
  int line = 1;

  void skip_space() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '#') {
        while (pos < text.size() && text[pos] != '\n') pos++;
      } else if (c == '\n') {
        line++;
        pos++;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        pos++;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool eof() {
    skip_space();
    return pos >= text.size();
  }

  [[nodiscard]] char peek() {
    skip_space();
    return pos < text.size() ? text[pos] : '\0';
  }

  char take() {
    skip_space();
    return text[pos++];
  }

  void expect(char c) {
    if (peek() != c) {
      throw ParseError(line, std::string("expected '") + c + "'");
    }
    pos++;
  }

  [[nodiscard]] bool accept(char c) {
    if (peek() == c) {
      pos++;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string ident() {
    skip_space();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '_')) {
      pos++;
    }
    if (start == pos) throw ParseError(line, "expected identifier");
    return text.substr(start, pos - start);
  }

  [[nodiscard]] std::int64_t number() {
    skip_space();
    bool negative = false;
    if (pos < text.size() && text[pos] == '-') {
      negative = true;
      pos++;
    }
    std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
      pos++;
    }
    if (start == pos) throw ParseError(line, "expected number");
    const std::int64_t v = std::stoll(text.substr(start, pos - start));
    return negative ? -v : v;
  }
};

class FunctionParser {
 public:
  FunctionParser(Tokenizer& tok, Module& module) : tok_(tok), module_(module) {}

  Function parse(std::uint32_t& next_site) {
    fn_.name = tok_.ident();
    tok_.expect('(');
    if (!tok_.accept(')')) {
      do {
        const std::string p = tok_.ident();
        fn_.params.push_back(p);
        reg_of(p);
      } while (tok_.accept(','));
      tok_.expect(')');
    }
    tok_.expect('{');
    while (!tok_.accept('}')) {
      parse_line(next_site);
    }
    resolve_labels();
    return std::move(fn_);
  }

 private:
  int reg_of(const std::string& name) {
    const auto it = regs_.find(name);
    if (it != regs_.end()) return it->second;
    const int idx = static_cast<int>(fn_.reg_names.size());
    fn_.reg_names.push_back(name);
    regs_.emplace(name, idx);
    return idx;
  }

  void parse_call_tail(Instr& ins) {
    ins.op = Op::kCall;
    ins.callee = tok_.ident();
    tok_.expect('(');
    if (!tok_.accept(')')) {
      do {
        ins.args.push_back(reg_of(tok_.ident()));
      } while (tok_.accept(','));
      tok_.expect(')');
    }
  }

  void parse_line(std::uint32_t& next_site) {
    const std::string word = tok_.ident();
    if (tok_.accept(':')) {
      labels_[word] = static_cast<int>(fn_.body.size());
      return;
    }

    Instr ins;
    if (word == "free") {
      ins.op = Op::kFree;
      ins.a = reg_of(tok_.ident());
      ins.site = next_site++;
    } else if (word == "setfield") {
      ins.op = Op::kSetField;
      ins.a = reg_of(tok_.ident());
      tok_.expect(',');
      ins.imm = tok_.number();
      tok_.expect(',');
      ins.b = reg_of(tok_.ident());
    } else if (word == "setfieldv") {
      ins.op = Op::kSetFieldV;
      ins.a = reg_of(tok_.ident());
      tok_.expect(',');
      ins.b = reg_of(tok_.ident());
      tok_.expect(',');
      ins.c = reg_of(tok_.ident());
    } else if (word == "storeg") {
      ins.op = Op::kStoreG;
      const std::string g = tok_.ident();
      ins.imm = module_.global_index(g);
      if (ins.imm < 0) throw ParseError(tok_.line, "unknown global " + g);
      tok_.expect(',');
      ins.a = reg_of(tok_.ident());
    } else if (word == "ret") {
      ins.op = Op::kRet;
      // Optional operand: next token is an identifier on the same construct.
      if (tok_.peek() != '}' && tok_.peek() != '\0') {
        // Peek: "ret x" vs "ret" followed by another statement. Disambiguate
        // by trying an identifier and checking whether it begins a statement
        // keyword or label. Keep it simple: an explicit "void" keyword is not
        // needed because PIR requires "ret" operands to be pre-declared
        // registers; we accept an identifier only if it is already a register.
        const std::size_t save = tok_.pos;
        const int save_line = tok_.line;
        std::string maybe;
        try {
          maybe = tok_.ident();
        } catch (const ParseError&) {
          maybe.clear();
        }
        if (!maybe.empty() && regs_.count(maybe) > 0 && tok_.peek() != ':' &&
            tok_.peek() != '=') {
          ins.a = regs_[maybe];
        } else {
          tok_.pos = save;
          tok_.line = save_line;
        }
      }
    } else if (word == "br") {
      ins.op = Op::kBr;
      pending_.push_back({static_cast<int>(fn_.body.size()), tok_.ident(), false});
    } else if (word == "cbr") {
      ins.op = Op::kCbr;
      ins.a = reg_of(tok_.ident());
      tok_.expect(',');
      pending_.push_back({static_cast<int>(fn_.body.size()), tok_.ident(), false});
      tok_.expect(',');
      pending_.push_back({static_cast<int>(fn_.body.size()), tok_.ident(), true});
    } else if (word == "out") {
      ins.op = Op::kOut;
      ins.a = reg_of(tok_.ident());
    } else if (word == "call") {
      parse_call_tail(ins);
    } else {
      // Assignment: word is the destination register.
      tok_.expect('=');
      ins.dst = reg_of(word);
      const std::string op = tok_.ident();
      if (op == "const") {
        ins.op = Op::kConst;
        ins.imm = tok_.number();
      } else if (op == "copy") {
        ins.op = Op::kCopy;
        ins.a = reg_of(tok_.ident());
      } else if (op == "add" || op == "sub" || op == "mul" || op == "lt" ||
                 op == "eq") {
        ins.op = op == "add"   ? Op::kAdd
                 : op == "sub" ? Op::kSub
                 : op == "mul" ? Op::kMul
                 : op == "lt"  ? Op::kCmpLt
                               : Op::kCmpEq;
        ins.a = reg_of(tok_.ident());
        tok_.expect(',');
        ins.b = reg_of(tok_.ident());
      } else if (op == "malloc") {
        ins.op = Op::kMalloc;
        // Accept a literal field count by materializing it into a hidden
        // register just before the malloc (a plain "malloc 2" would otherwise
        // silently read register "2", default value zero).
        tok_.skip_space();
        if (tok_.pos < tok_.text.size() &&
            std::isdigit(static_cast<unsigned char>(tok_.text[tok_.pos])) != 0) {
          const std::int64_t n = tok_.number();
          Instr cst;
          cst.op = Op::kConst;
          cst.dst = reg_of("__imm" + std::to_string(fn_.body.size()));
          cst.imm = n;
          fn_.body.push_back(cst);
          ins.a = cst.dst;
        } else {
          ins.a = reg_of(tok_.ident());
        }
        ins.site = next_site++;
      } else if (op == "getfield") {
        ins.op = Op::kGetField;
        ins.a = reg_of(tok_.ident());
        tok_.expect(',');
        ins.imm = tok_.number();
      } else if (op == "getfieldv") {
        ins.op = Op::kGetFieldV;
        ins.a = reg_of(tok_.ident());
        tok_.expect(',');
        ins.b = reg_of(tok_.ident());
      } else if (op == "loadg") {
        ins.op = Op::kLoadG;
        const std::string g = tok_.ident();
        ins.imm = module_.global_index(g);
        if (ins.imm < 0) throw ParseError(tok_.line, "unknown global " + g);
      } else if (op == "call") {
        parse_call_tail(ins);
      } else {
        throw ParseError(tok_.line, "unknown operation '" + op + "'");
      }
    }
    fn_.body.push_back(std::move(ins));
  }

  void resolve_labels() {
    for (const Pending& p : pending_) {
      const auto it = labels_.find(p.label);
      if (it == labels_.end()) {
        throw ParseError(0, "undefined label '" + p.label + "' in " + fn_.name);
      }
      if (p.second_target) {
        fn_.body[p.instr].target2 = it->second;
      } else {
        fn_.body[p.instr].target = it->second;
      }
    }
  }

  struct Pending {
    int instr;
    std::string label;
    bool second_target;
  };

  Tokenizer& tok_;
  Module& module_;
  Function fn_;
  std::unordered_map<std::string, int> regs_;
  std::unordered_map<std::string, int> labels_;
  std::vector<Pending> pending_;
};

}  // namespace

std::string Module::dump() const {
  std::ostringstream os;
  for (const std::string& g : globals) os << "global " << g << "\n";
  for (const Function& fn : functions) {
    os << "func " << fn.name << "(";
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      os << (i != 0 ? ", " : "") << fn.params[i];
    }
    os << ") {\n";
    const auto reg = [&fn](int r) {
      return r >= 0 ? fn.reg_names[static_cast<std::size_t>(r)]
                    : std::string("<none>");
    };
    for (std::size_t i = 0; i < fn.body.size(); ++i) {
      const Instr& ins = fn.body[i];
      os << "  [" << i << "] ";
      switch (ins.op) {
        case Op::kConst: os << reg(ins.dst) << " = const " << ins.imm; break;
        case Op::kCopy: os << reg(ins.dst) << " = copy " << reg(ins.a); break;
        case Op::kAdd: os << reg(ins.dst) << " = add " << reg(ins.a) << ", " << reg(ins.b); break;
        case Op::kSub: os << reg(ins.dst) << " = sub " << reg(ins.a) << ", " << reg(ins.b); break;
        case Op::kMul: os << reg(ins.dst) << " = mul " << reg(ins.a) << ", " << reg(ins.b); break;
        case Op::kCmpLt: os << reg(ins.dst) << " = lt " << reg(ins.a) << ", " << reg(ins.b); break;
        case Op::kCmpEq: os << reg(ins.dst) << " = eq " << reg(ins.a) << ", " << reg(ins.b); break;
        case Op::kMalloc: os << reg(ins.dst) << " = malloc " << reg(ins.a) << "  # site " << ins.site; break;
        case Op::kFree: os << "free " << reg(ins.a) << "  # site " << ins.site; break;
        case Op::kGetField: os << reg(ins.dst) << " = getfield " << reg(ins.a) << ", " << ins.imm; break;
        case Op::kSetField: os << "setfield " << reg(ins.a) << ", " << ins.imm << ", " << reg(ins.b); break;
        case Op::kGetFieldV: os << reg(ins.dst) << " = getfieldv " << reg(ins.a) << ", " << reg(ins.b); break;
        case Op::kSetFieldV: os << "setfieldv " << reg(ins.a) << ", " << reg(ins.b) << ", " << reg(ins.c); break;
        case Op::kLoadG: os << reg(ins.dst) << " = loadg #" << ins.imm; break;
        case Op::kStoreG: os << "storeg #" << ins.imm << ", " << reg(ins.a); break;
        case Op::kCall: {
          if (ins.dst >= 0) os << reg(ins.dst) << " = ";
          os << "call " << ins.callee << "(";
          for (std::size_t a = 0; a < ins.args.size(); ++a) {
            os << (a != 0 ? ", " : "") << reg(ins.args[a]);
          }
          os << ")";
          break;
        }
        case Op::kRet:
          os << "ret";
          if (ins.a >= 0) os << " " << reg(ins.a);
          break;
        case Op::kBr: os << "br [" << ins.target << "]"; break;
        case Op::kCbr:
          os << "cbr " << reg(ins.a) << ", [" << ins.target << "], ["
             << ins.target2 << "]";
          break;
        case Op::kOut: os << "out " << reg(ins.a); break;
        case Op::kPoolInit:
          os << reg(ins.dst) << " = poolinit";
          if (ins.imm > 0) os << " elem=" << ins.imm;
          break;
        case Op::kPoolDestroy: os << "pooldestroy " << reg(ins.a); break;
        case Op::kPoolAlloc:
          os << reg(ins.dst) << " = poolalloc " << reg(ins.a) << ", "
             << reg(ins.b) << "  # site " << ins.site;
          break;
        case Op::kPoolFree:
          os << "poolfree " << reg(ins.a) << ", " << reg(ins.b) << "  # site "
             << ins.site;
          break;
      }
      os << "\n";
    }
    os << "}\n";
  }
  return os.str();
}

Module parse_module(const std::string& source) {
  Tokenizer tok{source};
  Module module;
  std::uint32_t next_site = 1;
  while (!tok.eof()) {
    const std::string word = tok.ident();
    if (word == "global") {
      module.globals.push_back(tok.ident());
    } else if (word == "func") {
      FunctionParser fp(tok, module);
      Function fn = fp.parse(next_site);
      module.function_index.emplace(fn.name,
                                    static_cast<int>(module.functions.size()));
      module.functions.push_back(std::move(fn));
    } else {
      throw ParseError(tok.line, "expected 'global' or 'func', got '" + word + "'");
    }
  }
  return module;
}

}  // namespace dpg::compiler
