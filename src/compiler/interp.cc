#include "compiler/interp.h"

#include <cstdlib>
#include <cstring>

#include "compiler/verify.h"
#include "core/lockandkey.h"

namespace dpg::compiler {

namespace {

// Mediated-access gate for the lock-and-key lane. A tagged base pointer is
// verified against its slot's generation word before the dereference — a
// stale key raises kTagMismatch, the software twin of the page lane's MMU
// trap. Untagged pointers (page lane, elided, native) pass through raw, so
// their dangling accesses still fault exactly as before.
std::uint64_t* deref(std::uint64_t base) {
  if (core::LockAndKeyLane::is_tagged(base)) {
    return static_cast<std::uint64_t*>(
        core::LockAndKeyLane::check_access(base));
  }
  return reinterpret_cast<std::uint64_t*>(base);
}

}  // namespace

Interpreter::Interpreter(const Module& module, InterpOptions options)
    : module_(module), opts_(options) {
  if (opts_.verify) {
    const std::vector<std::string> problems = verify_module(module_);
    if (!problems.empty()) {
      throw InterpError("malformed module: " + problems.front() + " (+" +
                        std::to_string(problems.size() - 1) + " more)");
    }
  }
  globals_.assign(module_.globals.size(), 0);
  if (opts_.backend == Backend::kGuarded) {
    core::GuardConfig cfg;
    if (opts_.forced_rung >= 0 || opts_.sample_rate != 0) {
      // A/B rung pinning: a private governor keeps the run isolated from
      // process-wide ladder state in both directions.
      core::GovernorConfig gov_cfg;
      // recover_after = 0 disables upward hysteresis, so a pinned rung never
      // drifts. With --sample-rate alone the ladder stays adaptive.
      if (opts_.forced_rung >= 0) gov_cfg.recover_after = 0;
      if (opts_.sample_rate != 0) {
        gov_cfg.sample_rate = opts_.sample_rate;
        if (gov_cfg.sample_rate_max < opts_.sample_rate) {
          gov_cfg.sample_rate_max = opts_.sample_rate;
        }
      }
      governor_ = std::make_unique<core::DegradationGovernor>(gov_cfg);
      if (opts_.forced_rung >= 0) {
        governor_->force_mode(
            static_cast<core::GuardMode>(opts_.forced_rung));
      }
      cfg.governor = governor_.get();
    }
    ctx_ = std::make_unique<core::GuardedPoolContext>(cfg);
    global_pool_ = std::make_unique<core::GuardedPool>(*ctx_);
    // The guard-elision contract: sites the static UAF analysis proved SAFE
    // bypass the shadow engine entirely. The verifier (run above by default)
    // has already checked the table is per-node/per-pool consistent, so
    // elided pointers and guarded pointers never cross paths.
    if (opts_.honor_safety) {
      for (const SiteSafetyEntry& entry : module_.site_safety) {
        if (entry.elided) elided_sites_.insert(entry.site);
      }
    }
    // The scheme chooser's middle lane: kLockAndKey sites allocate tagged.
    // The verifier guarantees scheme uniformity per node/pool, so a tagged
    // pointer never reaches a page-guard free site or vice versa.
    if (opts_.honor_schemes) {
      for (const SiteSchemeEntry& entry : module_.site_scheme) {
        if (entry.scheme == SiteScheme::kLockAndKey) {
          tagged_sites_.insert(entry.site);
        }
      }
    }
  }
}

Interpreter::~Interpreter() {
  if (opts_.backend == Backend::kNative) {
    for (const std::uint64_t addr : native_live_) {
      std::free(reinterpret_cast<void*>(addr));
    }
  }
}

std::size_t Interpreter::live_pools() const noexcept {
  std::size_t n = 0;
  for (const auto& pool : pools_) {
    if (pool != nullptr) n++;
  }
  return n;
}

InterpResult Interpreter::run(const std::vector<std::uint64_t>& args) {
  const Function* main_fn = module_.find("main");
  if (main_fn == nullptr) throw InterpError("module has no 'main'");
  steps_ = 0;
  output_.clear();
  call(*main_fn, args, 0);
  return InterpResult{output_, steps_};
}

std::uint64_t Interpreter::mem_alloc(core::GuardedPool* pool,
                                     std::uint64_t fields, std::uint32_t site) {
  const std::size_t bytes = static_cast<std::size_t>(fields ? fields : 1) * 8;
  if (opts_.backend == Backend::kNative) {
    void* p = std::malloc(bytes);
    if (p == nullptr) throw InterpError("native malloc failed");
    std::memset(p, 0, bytes);
    native_live_.insert(vm::addr(p));
    return vm::addr(p);
  }
  core::GuardedPool* target = pool != nullptr ? pool : global_pool_.get();
  if (elided_sites_.count(site) != 0) {
    // SAFE-classified site: canonical pool memory, no shadow alias. Still
    // zeroed (recycled canonical blocks hold stale bytes) and still bounded
    // by the pool's lifetime.
    void* p = target->alloc_unguarded(bytes, site);
    guards_elided_++;
    std::memset(p, 0, bytes);
    return vm::addr(p);
  }
  if (tagged_sites_.count(site) != 0) {
    // Lock-and-key site: the returned value carries the generation key in
    // its high bits; raw memory is reached through strip().
    void* p = target->alloc_tagged(bytes, site);
    tag_lane_allocs_++;
    std::memset(core::LockAndKeyLane::strip(vm::addr(p)), 0, bytes);
    return vm::addr(p);
  }
  void* p = target->alloc(bytes, site);
  std::memset(p, 0, bytes);
  return vm::addr(p);
}

void Interpreter::mem_free(core::GuardedPool* pool, std::uint64_t addr,
                           std::uint32_t site) {
  if (opts_.backend == Backend::kNative) {
    if (native_live_.erase(addr) == 0) {
      throw InterpError("native free of unknown pointer");
    }
    std::free(reinterpret_cast<void*>(addr));
    return;
  }
  core::GuardedPool* target = pool != nullptr ? pool : global_pool_.get();
  if (elided_sites_.count(site) != 0) {
    // Elision is per points-to node, so a pointer reaching an elided free
    // site was allocated unguarded (verify_module enforces the pairing).
    target->free_unguarded(reinterpret_cast<void*>(addr), site);
    return;
  }
  if (tagged_sites_.count(site) != 0) {
    // Key-vs-lock checked free: a stale key (double free / free of the
    // slot's previous generation) raises kTagMismatch synchronously.
    target->free_tagged(reinterpret_cast<void*>(addr), site);
    return;
  }
  target->free(reinterpret_cast<void*>(addr), site);
}

core::GuardedPool* Interpreter::pool_from_handle(std::uint64_t handle,
                                                 const char* what) {
  if (handle == 0 || handle > pools_.size()) {
    throw InterpError(std::string(what) + ": bad pool descriptor");
  }
  core::GuardedPool* pool = pools_[static_cast<std::size_t>(handle - 1)].get();
  if (pool == nullptr) {
    throw InterpError(std::string(what) + ": pool already destroyed");
  }
  return pool;
}

std::uint64_t Interpreter::call(const Function& fn,
                                const std::vector<std::uint64_t>& args,
                                int depth) {
  if (depth > opts_.max_depth) throw InterpError("call depth exceeded");
  std::vector<std::uint64_t> regs(static_cast<std::size_t>(fn.num_regs()), 0);

  // Bind arguments by parameter *name* (the pool transformation appends
  // parameters whose registers are not at the front of the register file).
  for (std::size_t i = 0; i < fn.params.size() && i < args.size(); ++i) {
    for (std::size_t r = 0; r < fn.reg_names.size(); ++r) {
      if (fn.reg_names[r] == fn.params[i]) {
        regs[r] = args[i];
        break;
      }
    }
  }

  std::size_t pc = 0;
  while (pc < fn.body.size()) {
    if (++steps_ > opts_.max_steps) throw InterpError("step budget exceeded");
    const Instr& ins = fn.body[pc];
    switch (ins.op) {
      case Op::kConst:
        regs[static_cast<std::size_t>(ins.dst)] = static_cast<std::uint64_t>(ins.imm);
        break;
      case Op::kCopy:
        regs[static_cast<std::size_t>(ins.dst)] = regs[static_cast<std::size_t>(ins.a)];
        break;
      case Op::kAdd:
        regs[static_cast<std::size_t>(ins.dst)] =
            regs[static_cast<std::size_t>(ins.a)] + regs[static_cast<std::size_t>(ins.b)];
        break;
      case Op::kSub:
        regs[static_cast<std::size_t>(ins.dst)] =
            regs[static_cast<std::size_t>(ins.a)] - regs[static_cast<std::size_t>(ins.b)];
        break;
      case Op::kMul:
        regs[static_cast<std::size_t>(ins.dst)] =
            regs[static_cast<std::size_t>(ins.a)] * regs[static_cast<std::size_t>(ins.b)];
        break;
      case Op::kCmpLt:
        regs[static_cast<std::size_t>(ins.dst)] =
            regs[static_cast<std::size_t>(ins.a)] < regs[static_cast<std::size_t>(ins.b)] ? 1 : 0;
        break;
      case Op::kCmpEq:
        regs[static_cast<std::size_t>(ins.dst)] =
            regs[static_cast<std::size_t>(ins.a)] == regs[static_cast<std::size_t>(ins.b)] ? 1 : 0;
        break;
      case Op::kMalloc:
        regs[static_cast<std::size_t>(ins.dst)] =
            mem_alloc(nullptr, regs[static_cast<std::size_t>(ins.a)], ins.site);
        break;
      case Op::kFree:
        mem_free(nullptr, regs[static_cast<std::size_t>(ins.a)], ins.site);
        break;
      case Op::kGetField: {
        // Mediated load: tagged pointers pass the generation check first;
        // untagged dangling pointers are a genuine MMU trap, resolved by the
        // fault manager.
        const std::uint64_t* obj = deref(regs[static_cast<std::size_t>(ins.a)]);
        regs[static_cast<std::size_t>(ins.dst)] = obj[ins.imm];
        break;
      }
      case Op::kSetField: {
        std::uint64_t* obj = deref(regs[static_cast<std::size_t>(ins.a)]);
        obj[ins.imm] = regs[static_cast<std::size_t>(ins.b)];
        break;
      }
      case Op::kGetFieldV: {
        const std::uint64_t* obj = deref(regs[static_cast<std::size_t>(ins.a)]);
        regs[static_cast<std::size_t>(ins.dst)] =
            obj[regs[static_cast<std::size_t>(ins.b)]];
        break;
      }
      case Op::kSetFieldV: {
        std::uint64_t* obj = deref(regs[static_cast<std::size_t>(ins.a)]);
        obj[regs[static_cast<std::size_t>(ins.b)]] =
            regs[static_cast<std::size_t>(ins.c)];
        break;
      }
      case Op::kLoadG:
        regs[static_cast<std::size_t>(ins.dst)] = globals_[static_cast<std::size_t>(ins.imm)];
        break;
      case Op::kStoreG:
        globals_[static_cast<std::size_t>(ins.imm)] = regs[static_cast<std::size_t>(ins.a)];
        break;
      case Op::kCall: {
        const Function* callee = module_.find(ins.callee);
        if (callee == nullptr) {
          throw InterpError("call to unknown function " + ins.callee);
        }
        std::vector<std::uint64_t> call_args;
        call_args.reserve(ins.args.size());
        for (const int a : ins.args) {
          call_args.push_back(regs[static_cast<std::size_t>(a)]);
        }
        const std::uint64_t ret = call(*callee, call_args, depth + 1);
        if (ins.dst >= 0) regs[static_cast<std::size_t>(ins.dst)] = ret;
        break;
      }
      case Op::kRet:
        return ins.a >= 0 ? regs[static_cast<std::size_t>(ins.a)] : 0;
      case Op::kBr:
        pc = static_cast<std::size_t>(ins.target);
        continue;
      case Op::kCbr:
        pc = regs[static_cast<std::size_t>(ins.a)] != 0
                 ? static_cast<std::size_t>(ins.target)
                 : static_cast<std::size_t>(ins.target2);
        continue;
      case Op::kOut:
        output_.push_back(regs[static_cast<std::size_t>(ins.a)]);
        break;
      case Op::kPoolInit: {
        if (opts_.backend == Backend::kNative) {
          regs[static_cast<std::size_t>(ins.dst)] = 0;  // pools degrade to malloc
          break;
        }
        pools_.push_back(std::make_unique<core::GuardedPool>(
            *ctx_, static_cast<std::size_t>(ins.imm > 0 ? ins.imm : 0)));
        regs[static_cast<std::size_t>(ins.dst)] = pools_.size();
        break;
      }
      case Op::kPoolDestroy: {
        if (opts_.backend == Backend::kNative) break;
        const std::uint64_t handle = regs[static_cast<std::size_t>(ins.a)];
        core::GuardedPool* pool = pool_from_handle(handle, "pooldestroy");
        pool->destroy();
        pools_[static_cast<std::size_t>(handle - 1)].reset();
        break;
      }
      case Op::kPoolAlloc: {
        core::GuardedPool* pool =
            opts_.backend == Backend::kNative
                ? nullptr
                : pool_from_handle(regs[static_cast<std::size_t>(ins.a)], "poolalloc");
        regs[static_cast<std::size_t>(ins.dst)] =
            mem_alloc(pool, regs[static_cast<std::size_t>(ins.b)], ins.site);
        break;
      }
      case Op::kPoolFree: {
        core::GuardedPool* pool =
            opts_.backend == Backend::kNative
                ? nullptr
                : pool_from_handle(regs[static_cast<std::size_t>(ins.a)], "poolfree");
        mem_free(pool, regs[static_cast<std::size_t>(ins.b)], ins.site);
        break;
      }
    }
    pc++;
  }
  return 0;  // fell off the end: implicit ret 0
}

}  // namespace dpg::compiler
