#include "compiler/escape.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace dpg::compiler {

namespace {

// Call graph with Tarjan SCC condensation. Direct calls only (PIR has no
// function pointers).
struct CallGraph {
  std::vector<std::vector<int>> callees;   // per function
  std::vector<int> scc_of;                 // function -> SCC id
  std::vector<std::vector<int>> scc_members;
  std::vector<std::set<int>> scc_succ;     // condensed DAG edges
  std::vector<bool> scc_trivial;           // single function, no self loop

  explicit CallGraph(const Module& module) {
    const int n = static_cast<int>(module.functions.size());
    callees.resize(static_cast<std::size_t>(n));
    std::vector<std::set<int>> edge_set(static_cast<std::size_t>(n));
    for (int f = 0; f < n; ++f) {
      for (const Instr& ins : module.functions[static_cast<std::size_t>(f)].body) {
        if (ins.op == Op::kCall) {
          const auto it = module.function_index.find(ins.callee);
          if (it != module.function_index.end()) edge_set[static_cast<std::size_t>(f)].insert(it->second);
        }
      }
      callees[static_cast<std::size_t>(f)].assign(edge_set[static_cast<std::size_t>(f)].begin(),
                                                  edge_set[static_cast<std::size_t>(f)].end());
    }
    tarjan(n);
    condense(n);
  }

  void tarjan(int n) {
    scc_of.assign(static_cast<std::size_t>(n), -1);
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> stack;
    int next_index = 0;
    int next_scc = 0;

    std::function<void(int)> strongconnect = [&](int v) {
      index[static_cast<std::size_t>(v)] = low[static_cast<std::size_t>(v)] = next_index++;
      stack.push_back(v);
      on_stack[static_cast<std::size_t>(v)] = true;
      for (const int w : callees[static_cast<std::size_t>(v)]) {
        if (index[static_cast<std::size_t>(w)] < 0) {
          strongconnect(w);
          low[static_cast<std::size_t>(v)] =
              std::min(low[static_cast<std::size_t>(v)], low[static_cast<std::size_t>(w)]);
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(v)] =
              std::min(low[static_cast<std::size_t>(v)], index[static_cast<std::size_t>(w)]);
        }
      }
      if (low[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
        scc_members.emplace_back();
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          scc_of[static_cast<std::size_t>(w)] = next_scc;
          scc_members.back().push_back(w);
          if (w == v) break;
        }
        next_scc++;
      }
    };
    for (int v = 0; v < n; ++v) {
      if (index[static_cast<std::size_t>(v)] < 0) strongconnect(v);
    }
  }

  void condense(int n) {
    scc_succ.resize(scc_members.size());
    scc_trivial.assign(scc_members.size(), true);
    for (int f = 0; f < n; ++f) {
      for (const int callee : callees[static_cast<std::size_t>(f)]) {
        const int a = scc_of[static_cast<std::size_t>(f)];
        const int b = scc_of[static_cast<std::size_t>(callee)];
        if (a != b) {
          scc_succ[static_cast<std::size_t>(a)].insert(b);
        } else {
          scc_trivial[static_cast<std::size_t>(a)] = false;  // cycle
        }
      }
    }
    for (std::size_t s = 0; s < scc_members.size(); ++s) {
      if (scc_members[s].size() > 1) scc_trivial[s] = false;
    }
  }

  // SCCs reachable from `scc` (inclusive).
  [[nodiscard]] std::set<int> descendants(int scc) const {
    std::set<int> out;
    std::vector<int> work{scc};
    while (!work.empty()) {
      const int s = work.back();
      work.pop_back();
      if (!out.insert(s).second) continue;
      for (const int t : scc_succ[static_cast<std::size_t>(s)]) work.push_back(t);
    }
    return out;
  }
};

// Call-graph depth of each function from main (for picking the deepest home).
std::vector<int> depths_from_main(const Module& module, const CallGraph& cg,
                                  int main_index) {
  std::vector<int> depth(module.functions.size(), -1);
  std::vector<int> work{main_index};
  depth[static_cast<std::size_t>(main_index)] = 0;
  while (!work.empty()) {
    const int f = work.back();
    work.pop_back();
    for (const int callee : cg.callees[static_cast<std::size_t>(f)]) {
      if (depth[static_cast<std::size_t>(callee)] < 0) {
        depth[static_cast<std::size_t>(callee)] = depth[static_cast<std::size_t>(f)] + 1;
        work.push_back(callee);
      }
    }
  }
  return depth;
}

}  // namespace

EscapeResult place_pools(const Module& module, const PointsToAnalysis& pta) {
  const auto main_it = module.function_index.find("main");
  if (main_it == module.function_index.end()) {
    throw std::invalid_argument("place_pools: module has no 'main'");
  }
  const int main_index = main_it->second;

  const CallGraph cg(module);
  const std::vector<int> depth = depths_from_main(module, cg, main_index);
  const int nfun = static_cast<int>(module.functions.size());

  // Heap nodes each function's own registers can reach.
  std::vector<std::set<int>> own_uses(static_cast<std::size_t>(nfun));
  for (int f = 0; f < nfun; ++f) {
    const Function& fn = module.functions[static_cast<std::size_t>(f)];
    for (int r = 0; r < fn.num_regs(); ++r) {
      pta.collect_reachable(pta.var_element(f, r), own_uses[static_cast<std::size_t>(f)]);
    }
  }

  // Heap nodes escaping each function's boundary: params + return + globals.
  std::vector<std::set<int>> boundary(static_cast<std::size_t>(nfun));
  for (int f = 0; f < nfun; ++f) {
    const Function& fn = module.functions[static_cast<std::size_t>(f)];
    auto& escaped = boundary[static_cast<std::size_t>(f)];
    for (std::size_t p = 0; p < fn.params.size(); ++p) {
      pta.collect_reachable(pta.var_element(f, static_cast<int>(p)), escaped);
    }
    pta.collect_reachable(pta.ret_element(f), escaped);
    for (std::size_t g = 0; g < module.globals.size(); ++g) {
      pta.collect_reachable(pta.global_element(static_cast<int>(g)), escaped);
    }
  }

  EscapeResult result;
  for (const int node : pta.heap_nodes()) {
    PoolPlacement placement;
    placement.node = node;
    placement.sites = pta.sites_of(node);

    // Users: every function whose registers can reach the node.
    std::set<int> user_sccs;
    for (int f = 0; f < nfun; ++f) {
      if (own_uses[static_cast<std::size_t>(f)].count(node) > 0) {
        placement.users.insert(f);
        user_sccs.insert(cg.scc_of[static_cast<std::size_t>(f)]);
      }
    }

    // Candidate homes: trivial-SCC users, not escaping their boundary,
    // whose call subtree covers every user.
    int best = -1;
    for (const int f : placement.users) {
      if (depth[static_cast<std::size_t>(f)] < 0) continue;  // unreachable from main
      if (!cg.scc_trivial[static_cast<std::size_t>(cg.scc_of[static_cast<std::size_t>(f)])]) continue;
      if (boundary[static_cast<std::size_t>(f)].count(node) > 0) continue;
      const std::set<int> covered = cg.descendants(cg.scc_of[static_cast<std::size_t>(f)]);
      const bool covers_all = std::all_of(
          user_sccs.begin(), user_sccs.end(),
          [&covered](int s) { return covered.count(s) > 0; });
      if (!covers_all) continue;
      if (best < 0 || depth[static_cast<std::size_t>(f)] > depth[static_cast<std::size_t>(best)]) {
        best = f;
      }
    }

    if (best < 0) {
      placement.home_function = main_index;
      placement.global_lifetime = true;
      placement.users.insert(main_index);
    } else {
      placement.home_function = best;
    }

    result.node_to_pool.emplace(node, static_cast<int>(result.pools.size()));
    result.pools.push_back(std::move(placement));
  }
  return result;
}

}  // namespace dpg::compiler
