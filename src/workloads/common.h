// Shared workload infrastructure.
//
// Every workload is a class template over an allocation/access Policy
// (src/baseline/policies.h) and returns a checksum, so tests can assert that
// all policies execute identical computation and benches can validate runs.
//
// Conventions the workloads follow (so every policy is used correctly):
//   - pointer fields and handles use P::ptr<T>;
//   - objects are trivially destructible; dispose() frees without dtors;
//   - frees happen while the allocating P::Scope is still the innermost one
//     (the pool policies free into the active pool, as the real transformed
//     programs free into the owning pool);
//   - "global" allocations (state outliving every scope) use make_global.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

namespace dpg::workloads {

// Deterministic xorshift64* RNG: workloads must behave identically across
// policies and runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed != 0 ? seed : 1) {}

  std::uint64_t next() noexcept {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  // Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }
  double unit() noexcept {  // [0, 1)
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

// FNV-1a accumulation for checksums.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  return h * 0x100000001B3ull;
}

// make_global<T> fallback: policies without an explicit global-allocation
// path use the ordinary make.
template <typename P, typename T, typename... Args>
auto make_global(Args&&... args) {
  if constexpr (requires { P::template make_outside_scope<T>(args...); }) {
    return P::template make_outside_scope<T>(std::forward<Args>(args)...);
  } else {
    return P::template make<T>(std::forward<Args>(args)...);
  }
}

template <typename P, typename Ptr>
void dispose_global(Ptr p) {
  if constexpr (requires { P::dispose_outside_scope(p); }) {
    P::dispose_outside_scope(p);
  } else {
    P::dispose(p);
  }
}

// Bulk copy into a policy buffer. MMU-based policies (raw pointers) use
// memcpy like real code would — per-access cost is zero, and memcpy is
// robust against 4K-aliasing between source and destination. Checked-pointer
// policies copy element-wise so every store pays their per-access check,
// which is precisely their cost model.
template <typename Ptr>
void policy_copy(Ptr dst, const char* src, std::size_t n) {
  if constexpr (std::is_pointer_v<Ptr>) {
    std::memcpy(dst, src, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

// Stand-in for the per-connection fork/exec + socket work of the paper's
// fork-per-connection servers: the measured response times there include
// process creation and kernel I/O, which dwarf a handful of syscalls. We
// model it as a deterministic pass over a "process image" (touch + checksum)
// — identical under every policy, so it shifts ratios, not correctness.
inline std::uint64_t simulate_process_spawn(std::uint64_t salt = 0) {
  constexpr std::size_t kImageBytes = 2 * 1024 * 1024;
  static std::uint64_t image[kImageBytes / 8];
  std::uint64_t h = 0x9E3779B97F4A7C15ull ^ salt;
  for (std::size_t i = 0; i < kImageBytes / 8; ++i) {
    image[i] ^= h;
    h = mix(h, image[i]);
  }
  return h;
}

}  // namespace dpg::workloads
