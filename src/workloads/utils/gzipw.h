// gzip-like workload: a real LZ77 compressor with a hash-chain match finder
// plus an order-0 entropy coder (canonical prefix lengths). Allocation-light
// (the window tables and output buffer, allocated once), access- and
// compute-heavy — the profile under which the paper observes pool allocation
// can even *speed up* gzip via better locality.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/common.h"

namespace dpg::workloads::utils {

template <typename P>
class Gzip {
 public:
  static constexpr const char* kName = "gzip";

  struct Params {
    std::size_t input_bytes = 2 * 1024 * 1024;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope;
    const std::string input = make_input(params.input_bytes);

    // Worst case: every byte a literal token (2 bytes each).
    ByteBuf out = P::template alloc_array<unsigned char>(2 * input.size() + 16);
    const std::size_t compressed = deflate(input, out);

    // Order-0 frequency pass over the compressed stream (the Huffman stage's
    // dominant memory behaviour), then package-merge-free code lengths via
    // sorted halving — enough to produce a deterministic "encoded size".
    U64Buf freq = P::template alloc_array<std::uint64_t>(256);
    for (int i = 0; i < 256; ++i) freq[static_cast<std::size_t>(i)] = 0;
    for (std::size_t i = 0; i < compressed; ++i) {
      freq[static_cast<std::size_t>(out[i])]++;
    }
    std::uint64_t entropy_bits = 0;
    for (int s = 0; s < 256; ++s) {
      const std::uint64_t f = freq[static_cast<std::size_t>(s)];
      if (f == 0) continue;
      // ceil(log2(compressed / f)) as an integer code length proxy.
      std::uint64_t ratio = compressed / f;
      std::uint64_t bits = 1;
      while (ratio > 1) {
        ratio >>= 1;
        bits++;
      }
      entropy_bits += f * (bits < 15 ? bits : 15);
    }

    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, compressed);
    h = mix(h, entropy_bits);
    for (std::size_t i = 0; i < compressed; i += 97) {
      h = mix(h, static_cast<std::uint64_t>(out[i]));
    }
    P::dispose(freq);
    P::dispose(out);
    return h;
  }

 private:
  using ByteBuf = typename P::template ptr<unsigned char>;
  using U32Buf = typename P::template ptr<std::uint32_t>;
  using U64Buf = typename P::template ptr<std::uint64_t>;

  static constexpr std::size_t kWindow = 1u << 15;
  static constexpr std::size_t kHashBits = 15;
  static constexpr std::size_t kMinMatch = 4;
  static constexpr std::size_t kMaxMatch = 258;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  static std::string make_input(std::size_t bytes) {
    // English-ish text with long-range repetition so LZ77 has real work.
    static constexpr const char* kPhrases[] = {
        "the protocol negotiates a shared secret ",
        "dangling pointers are a temporal memory error ",
        "pages are protected on deallocation ",
        "the server forks a process per connection ",
        "virtual addresses are cheap on 64-bit systems ",
    };
    std::string text;
    text.reserve(bytes);
    Rng rng(0x6219);
    while (text.size() < bytes) {
      text += kPhrases[rng.below(5)];
      if (rng.below(7) == 0) {
        text += "0x";
        for (int i = 0; i < 8; ++i) {
          text += static_cast<char>("0123456789abcdef"[rng.below(16)]);
        }
        text += ' ';
      }
    }
    text.resize(bytes);
    return text;
  }

  static std::uint32_t hash4(const std::string& in, std::size_t i) {
    const std::uint32_t v = static_cast<std::uint32_t>(
        static_cast<unsigned char>(in[i]) |
        (static_cast<unsigned char>(in[i + 1]) << 8) |
        (static_cast<unsigned char>(in[i + 2]) << 16) |
        (static_cast<unsigned char>(in[i + 3]) << 24));
    return (v * 2654435761u) >> (32 - kHashBits);
  }

  // Token stream: literal = 0x00 len byte? We use a simple byte-oriented
  // format: 0x00 <byte> literal; 0x01 <len16> <dist16> match.
  static std::size_t deflate(const std::string& in, ByteBuf& out) {
    U32Buf head = P::template alloc_array<std::uint32_t>(1u << kHashBits);
    U32Buf prev = P::template alloc_array<std::uint32_t>(kWindow);
    for (std::size_t i = 0; i < (1u << kHashBits); ++i) head[i] = kNil;
    for (std::size_t i = 0; i < kWindow; ++i) prev[i] = kNil;

    std::size_t o = 0;
    std::size_t i = 0;
    const std::size_t n = in.size();
    while (i < n) {
      std::size_t best_len = 0;
      std::size_t best_dist = 0;
      if (i + kMinMatch <= n) {
        const std::uint32_t hsh = hash4(in, i);
        std::uint32_t cand = head[hsh];
        int chain = 32;
        while (cand != kNil && chain-- > 0 && i - cand <= kWindow) {
          std::size_t len = 0;
          const std::size_t cap = n - i < kMaxMatch ? n - i : kMaxMatch;
          while (len < cap && in[cand + len] == in[i + len]) len++;
          if (len > best_len) {
            best_len = len;
            best_dist = i - cand;
          }
          cand = prev[cand % kWindow];
        }
        // Insert current position into the chain.
        prev[i % kWindow] = head[hsh];
        head[hsh] = static_cast<std::uint32_t>(i);
      }
      if (best_len >= kMinMatch) {
        out[o++] = 0x01;
        out[o++] = static_cast<unsigned char>(best_len & 0xFF);
        out[o++] = static_cast<unsigned char>(best_len >> 8);
        out[o++] = static_cast<unsigned char>(best_dist & 0xFF);
        out[o++] = static_cast<unsigned char>(best_dist >> 8);
        // Insert skipped positions sparsely (gzip's lazy behaviour, cheap).
        for (std::size_t k = 1; k < best_len && i + k + kMinMatch <= n; k += 4) {
          const std::uint32_t hsh2 = hash4(in, i + k);
          prev[(i + k) % kWindow] = head[hsh2];
          head[hsh2] = static_cast<std::uint32_t>(i + k);
        }
        i += best_len;
      } else {
        out[o++] = 0x00;
        out[o++] = static_cast<unsigned char>(in[i]);
        i++;
      }
    }
    P::dispose(prev);
    P::dispose(head);
    return o;
  }
};

}  // namespace dpg::workloads::utils
