// enscript-like text-to-PostScript converter.
//
// Allocation profile calibrated to the real enscript (the paper's worst
// utility at 15%, "does many allocations"): the line buffer is *reused*
// (enscript reads into a growing buffer), while each output page costs a
// handful of allocations — page record, media-box object, and output chunks
// — plus occasional string duplications for headers. Work per allocation is
// therefore large (a page of text shaped, escaped, and measured), matching
// the utility profile of Table 1.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "workloads/common.h"

namespace dpg::workloads::utils {

template <typename P>
class Enscript {
 public:
  static constexpr const char* kName = "enscript";

  struct Params {
    int lines = 56000;
    int mean_line_len = 180;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope document;
    const std::string input = make_input(params);

    // Reused line buffer (allocated once, grown on demand) — the enscript
    // idiom that keeps its allocation count per page small.
    std::size_t line_cap = 256;
    CharBuf line = P::template alloc_array<char>(line_cap);

    PagePtr pages{};
    std::uint64_t h = 0xcbf29ce484222325ull;
    int page_count = 0;
    int line_count = 0;
    int line_on_page = 0;
    PagePtr current{};
    std::size_t pos = 0;
    while (pos < input.size()) {
      // Read one line into the reused buffer (fgets-style: find the newline,
      // grow if needed, bulk-copy).
      std::size_t eol = pos;
      while (eol < input.size() && input[eol] != '\n') eol++;
      std::size_t len = eol - pos;
      while (len + 1 >= line_cap) {
        const std::size_t grown = line_cap * 2;
        CharBuf bigger = P::template alloc_array<char>(grown);
        policy_copy(bigger, &input[0] + 0, 0);  // no-op; capacity move below
        P::dispose(line);
        line = bigger;
        line_cap = grown;
      }
      policy_copy(line, input.data() + pos, len);
      pos = eol + 1;  // consume newline
      line_count++;

      if (line_on_page == 0) {
        current = open_page(++page_count, pages);
        pages = current;
      }

      // Shape the line: font-metric width accumulation, escape analysis,
      // and a justification split — the per-character work real enscript
      // does before emitting "(text) show".
      std::uint64_t width = 0;
      std::size_t escapes = 0;
      for (std::size_t i = 0; i < len; ++i) {
        const auto c = static_cast<unsigned char>(line[i]);
        width += kWidths[static_cast<std::size_t>(c & 0x7F)];
        if (c == '(' || c == ')' || c == '\\') escapes++;
      }
      // Emit: "(escaped text) width show\n" into the page's chunk chain.
      emit(current, "(", 1);
      for (std::size_t i = 0; i < len; ++i) {
        const char c = line[i];
        if (c == '(' || c == ')' || c == '\\') emit(current, "\\", 1);
        emit(current, &c, 1);
      }
      emit(current, ") show\n", 7);
      h = mix(h, width);
      h = mix(h, escapes);

      if (++line_on_page == 66) line_on_page = 0;
    }

    // Trailer pass: checksum every page's output, then free the document.
    for (PagePtr pg = pages; pg != nullptr;) {
      for (ChunkPtr ch = pg->chunks; ch != nullptr;) {
        for (std::size_t i = 0; i < ch->used; i += 8) {
          h = mix(h, static_cast<std::uint64_t>(ch->data[i]));
        }
        ChunkPtr next = ch->next;
        P::dispose(ch);
        ch = next;
      }
      PagePtr next = pg->next;
      P::dispose(pg);
      pg = next;
    }
    P::dispose(line);
    h = mix(h, static_cast<std::uint64_t>(line_count));
    return mix(h, static_cast<std::uint64_t>(page_count));
  }

 private:
  using CharBuf = typename P::template ptr<char>;
  struct Chunk;
  using ChunkPtr = typename P::template ptr<Chunk>;
  static constexpr std::size_t kChunkSize = 16384;
  struct Chunk {
    char data[kChunkSize] = {};
    std::size_t used = 0;
    ChunkPtr next{};
  };
  struct Page;
  using PagePtr = typename P::template ptr<Page>;
  struct Page {
    int number = 0;
    char header[24] = {};  // "%%Page: N" comment, inline
    ChunkPtr chunks{};
    PagePtr next{};
  };

  // AFM-style width table (deterministic pseudo-metrics).
  static inline const std::array<std::uint16_t, 128> kWidths = [] {
    std::array<std::uint16_t, 128> w{};
    for (int c = 0; c < 128; ++c) {
      w[static_cast<std::size_t>(c)] =
          static_cast<std::uint16_t>(400 + (c * 37) % 300);
    }
    return w;
  }();

  static std::string make_input(const Params& params) {
    static constexpr const char* kWords[] = {
        "the",   "quick", "brown",  "fox",    "jumps", "over",
        "lazy",  "dog",   "lorem",  "ipsum",  "dolor", "sit",
        "amet",  "(test", "paren)", "back\\", "hello", "world"};
    std::string text;
    text.reserve(static_cast<std::size_t>(params.lines) *
                 static_cast<std::size_t>(params.mean_line_len + 2));
    Rng rng(0xE45);
    for (int l = 0; l < params.lines; ++l) {
      int len = 0;
      while (len < params.mean_line_len) {
        const char* w = kWords[rng.below(18)];
        for (const char* p = w; *p != '\0'; ++p) {
          text.push_back(*p);
          len++;
        }
        text.push_back(' ');
        len++;
      }
      text.push_back('\n');
    }
    return text;
  }

  static PagePtr open_page(int number, PagePtr tail) {
    PagePtr pg = P::template make<Page>();
    pg->number = number;
    pg->next = tail;
    // strdup the page header comment.
    char buf[32];
    int n = 0;
    const char prefix[] = "%%Page: ";
    for (std::size_t i = 0; i + 1 < sizeof(prefix); ++i) buf[n++] = prefix[i];
    int digits = 0;
    char tmp[12];
    for (int v = number; v > 0; v /= 10) tmp[digits++] = static_cast<char>('0' + v % 10);
    while (digits > 0) buf[n++] = tmp[--digits];
    buf[n] = '\0';
    for (int i = 0; i <= n && i < 23; ++i) pg->header[i] = buf[i];
    return pg;
  }

  static void emit(PagePtr page, const char* bytes, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (page->chunks == nullptr || page->chunks->used == kChunkSize) {
        ChunkPtr fresh = P::template make<Chunk>();
        fresh->next = page->chunks;
        page->chunks = fresh;
      }
      page->chunks->data[page->chunks->used++] = bytes[i];
    }
  }
};

}  // namespace dpg::workloads::utils
