// patch-like workload, structured like GNU patch: the input file is read
// into one large buffer with a line-index array; each hunk allocates a small
// hunk record + replacement text, is located by index scan with context
// verification (including fuzz backoff), and applied by splicing the line
// index. The patched file is rendered out at the end. Allocation: a handful
// per hunk; work: index memmoves + byte comparisons — the low-allocation,
// access-heavy utility profile (paper overhead: ~1%).
#pragma once

#include <cstdint>
#include <type_traits>

#include "workloads/common.h"

namespace dpg::workloads::utils {

template <typename P>
class Patch {
 public:
  static constexpr const char* kName = "patch";

  struct Params {
    int original_lines = 150000;
    int hunks = 700;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope;
    Rng rng(0x9A7C);

    // "Read" the original file: one text buffer + one line index.
    const std::size_t n0 = static_cast<std::size_t>(params.original_lines);
    const std::size_t text_bytes = n0 * kLineLen;
    CharBuf text = P::template alloc_array<char>(text_bytes);
    for (std::size_t i = 0; i < text_bytes; ++i) {
      text[i] = static_cast<char>('!' + (i * 31 + (i / kLineLen)) % 90);
    }
    // Index entries point into `text` or into per-hunk replacement buffers.
    std::size_t count = n0;
    std::size_t index_cap = n0 * 2;
    LineRefBuf index = P::template alloc_array<LineRef>(index_cap);
    for (std::size_t i = 0; i < n0; ++i) {
      index[i] = LineRef{text + static_cast<std::ptrdiff_t>(i * kLineLen),
                         kLineLen};
    }

    HunkPtr hunks{};
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (int k = 0; k < params.hunks; ++k) {
      // Build the hunk: one record with the replacement text inline (patch
      // reads each hunk into a single buffer).
      HunkPtr hunk = P::template make<Hunk>();
      hunk->insert_lines = 1 + rng.below(4);
      hunk->delete_lines = 1 + rng.below(3);
      for (std::size_t i = 0; i < hunk->insert_lines * kLineLen; ++i) {
        hunk->text[i] = static_cast<char>('A' + (i + static_cast<std::size_t>(k)) % 26);
      }
      hunk->next = hunks;
      hunks = hunk;

      // Locate: target line plus fuzzy context search (patch scans nearby
      // lines comparing context bytes until it matches).
      const std::size_t target = rng.below(count > 16 ? count - 16 : 1);
      std::size_t at = target;
      for (int fuzz = 0; fuzz < 8; ++fuzz) {
        const std::size_t probe = target + static_cast<std::size_t>(fuzz);
        std::uint64_t ctx = 0;
        for (int c = 0; c < 2 && probe + static_cast<std::size_t>(c) < count; ++c) {
          const LineRef& ref = index[probe + static_cast<std::size_t>(c)];
          for (std::size_t i = 0; i < ref.length; i += 4) {
            ctx = mix(ctx, static_cast<std::uint64_t>(ref.start[i]));
          }
        }
        h = mix(h, ctx);
        at = probe;  // deterministic workload: last probe "matches"
      }

      // Apply: splice the index (delete then insert) with memmove-style
      // shifting — the dominant cost of patching large files.
      const std::size_t del =
          hunk->delete_lines < count - at ? hunk->delete_lines : count - at;
      const std::size_t ins = hunk->insert_lines;
      if (count - del + ins > index_cap) break;  // defensive; never hit
      if (ins >= del) {
        const std::size_t grow = ins - del;
        for (std::size_t i = count; i > at + del; --i) {
          index[i - 1 + grow] = index[i - 1];
        }
      } else {
        const std::size_t shrink = del - ins;
        for (std::size_t i = at + del; i < count; ++i) {
          index[i - shrink] = index[i];
        }
      }
      for (std::size_t i = 0; i < ins; ++i) {
        // Interior pointer into the hunk record's inline text: share the
        // record's policy pointer via arithmetic on a char view.
        index[at + i] = LineRef{hunk_text_line(hunk, i), kLineLen};
      }
      count = count - del + ins;
    }

    // Render the patched file (patch writes the output file once).
    for (std::size_t ln = 0; ln < count; ++ln) {
      const LineRef& ref = index[ln];
      for (std::size_t i = 0; i < ref.length; i += 8) {
        h = mix(h, static_cast<std::uint64_t>(ref.start[i]));
      }
    }
    h = mix(h, static_cast<std::uint64_t>(count));

    for (HunkPtr hk = hunks; hk != nullptr;) {
      HunkPtr next = hk->next;
      P::dispose(hk);
      hk = next;
    }
    P::dispose(index);
    P::dispose(text);
    return h;
  }

 private:
  static constexpr std::size_t kLineLen = 72;
  using CharBuf = typename P::template ptr<char>;
  struct LineRef {
    // Policy pointer, not a raw char*: line reads stay visible to the
    // software-checking baselines (interior pointers share the allocation's
    // capability, as in SafeC).
    CharBuf start{};
    std::size_t length = 0;
  };
  using LineRefBuf = typename P::template ptr<LineRef>;
  struct Hunk;
  using HunkPtr = typename P::template ptr<Hunk>;
  struct Hunk {
    std::size_t insert_lines = 0;
    std::size_t delete_lines = 0;
    char text[4 * kLineLen] = {};  // replacement lines, inline
    HunkPtr next{};
  };

  // A CharBuf view of line `i` of the hunk's inline text. For checked
  // policies this stays within the hunk allocation's capability.
  static CharBuf hunk_text_line(HunkPtr hunk, std::size_t i) {
    if constexpr (std::is_pointer_v<HunkPtr>) {
      return hunk->text + i * kLineLen;
    } else if constexpr (requires { hunk.capability(); }) {
      // Fat pointer: rebase to the text member, keeping the capability.
      return CharBuf(&hunk->text[0] + i * kLineLen, hunk.capability());
    } else {
      // Shadow-bitmap pointer: address-based, no per-object metadata.
      return CharBuf(&hunk->text[0] + i * kLineLen);
    }
  }
};

}  // namespace dpg::workloads::utils
