// less-like pager. The paper applied the approach to "two interactive
// applications netkit-telnetd and unix utility less and did not notice any
// perceptible difference in the response time" (§4.1). The workload: load a
// file into a buffer + line index (a handful of allocations), then service a
// session of interactive commands — paging, jumping, and substring searches
// — which are pure memory accesses over the indexed text.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/common.h"

namespace dpg::workloads::utils {

template <typename P>
class Less {
 public:
  static constexpr const char* kName = "less";

  struct Params {
    int file_lines = 30000;
    int commands = 400;  // keystrokes/searches in the session
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope session;
    const std::string file = make_file(params.file_lines);

    // "Open" the file: one text buffer + a line index (like real less's
    // linebuf + position table).
    CharBuf text = P::template alloc_array<char>(file.size());
    policy_copy(text, file.data(), file.size());
    std::size_t line_count = 1;
    for (const char ch : file) line_count += ch == '\n' ? 1 : 0;
    OffsetBuf index = P::template alloc_array<std::size_t>(line_count + 1);
    std::size_t ln = 0;
    index[ln++] = 0;
    for (std::size_t i = 0; i < file.size(); ++i) {
      if (file[i] == '\n') index[ln++] = i + 1;
    }
    index[ln] = file.size();
    const std::size_t lines = ln - 1;

    // The session: page, jump, search. Searches allocate a small pattern
    // buffer (the only per-command allocation, like less's cmdbuf).
    std::uint64_t h = 0xcbf29ce484222325ull;
    Rng rng(0x1E55);
    std::size_t top = 0;  // first visible line
    for (int cmd = 0; cmd < params.commands; ++cmd) {
      const std::uint64_t action = rng.below(10);
      if (action < 4) {
        // Space: render the next page (24 lines of byte accesses).
        for (int row = 0; row < 24 && top + static_cast<std::size_t>(row) < lines; ++row) {
          const std::size_t line = top + static_cast<std::size_t>(row);
          for (std::size_t i = index[line]; i < index[line + 1]; i += 4) {
            h = mix(h, static_cast<std::uint64_t>(text[i]));
          }
        }
        top = top + 24 < lines ? top + 24 : 0;
      } else if (action < 6) {
        // G: jump to a random line (index arithmetic only).
        top = rng.below(lines);
        h = mix(h, top);
      } else {
        // /pattern: substring search from the current position, wrapping.
        CharBuf pattern = P::template alloc_array<char>(8);
        const std::size_t plen = 3 + rng.below(4);
        for (std::size_t i = 0; i < plen; ++i) {
          pattern[i] = static_cast<char>('a' + rng.below(26));
        }
        std::size_t found = lines;  // sentinel: not found
        for (std::size_t probe = 0; probe < lines && found == lines; ++probe) {
          const std::size_t line = (top + probe) % lines;
          const std::size_t begin = index[line];
          const std::size_t end = index[line + 1];
          for (std::size_t i = begin; i + plen <= end; ++i) {
            bool match = true;
            for (std::size_t k = 0; match && k < plen; ++k) {
              match = text[i + k] == pattern[k];
            }
            if (match) {
              found = line;
              break;
            }
          }
        }
        if (found != lines) top = found;
        h = mix(h, found);
        P::dispose(pattern);
      }
    }

    P::dispose(index);
    P::dispose(text);
    return mix(h, static_cast<std::uint64_t>(lines));
  }

 private:
  using CharBuf = typename P::template ptr<char>;
  using OffsetBuf = typename P::template ptr<std::size_t>;

  static std::string make_file(int lines) {
    static constexpr const char* kWords[] = {
        "kernel", "module", "buffer", "signal", "daemon", "socket",
        "thread", "packet", "mmap",   "fault",  "page",   "alias"};
    std::string text;
    Rng rng(0xF11E);
    for (int l = 0; l < lines; ++l) {
      const int words = 6 + static_cast<int>(rng.below(8));
      for (int w = 0; w < words; ++w) {
        text += kWords[rng.below(12)];
        text += ' ';
      }
      text += '\n';
    }
    return text;
  }
};

}  // namespace dpg::workloads::utils
