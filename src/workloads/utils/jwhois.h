// jwhois-like whois client: parse a configuration mapping domain patterns to
// whois servers, then resolve a batch of queries. Modest allocation (config
// records + one query record per lookup), lots of string matching.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/common.h"

namespace dpg::workloads::utils {

template <typename P>
class Jwhois {
 public:
  static constexpr const char* kName = "jwhois";

  struct Params {
    int config_entries = 1200;
    int queries = 2500;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope;
    Rng rng(0x3012);

    // Parse the "config file" into allocated entries.
    EntryPtr config{};
    for (int i = 0; i < params.config_entries; ++i) {
      EntryPtr e = P::template make<Entry>();
      fill_name(e->pattern, 12 + rng.below(8), rng);
      e->pattern_len = 0;
      while (e->pattern[e->pattern_len] != '\0') e->pattern_len++;
      fill_name(e->server, 8 + rng.below(12), rng);
      e->next = config;
      config = e;
    }

    std::uint64_t h = 0xcbf29ce484222325ull;
    QueryPtr query = P::template make<Query>();  // reused request record
    for (int q = 0; q < params.queries; ++q) {
      fill_name(query->domain, 20 + rng.below(10), rng);

      // jwhois matches each config pattern against the query with shell-style
      // wildcards ('?' any char, '.' literal-or-wildcard here) and picks the
      // longest match — a backtracking scan over every entry per query.
      EntryPtr best{};
      std::size_t best_len = 0;
      std::size_t qlen = 0;
      while (query->domain[qlen] != '\0') qlen++;
      for (EntryPtr e = config; e != nullptr; e = e->next) {
        const std::size_t plen = e->pattern_len;
        if (plen > qlen || plen <= best_len) continue;
        // Try the pattern at every alignment (suffix preferred): the
        // backtracking cost real glob matching pays.
        bool match = false;
        for (std::size_t off = qlen - plen + 1; off-- > 0 && !match;) {
          bool here = true;
          for (std::size_t i = 0; here && i < plen; ++i) {
            const char pc = e->pattern[i];
            const char qc = query->domain[off + i];
            here = pc == qc || pc == '.';
          }
          match = here;
        }
        if (match) {
          best = e;
          best_len = plen;
        }
      }
      if (best != nullptr) {
        for (std::size_t i = 0; best->server[i] != '\0'; ++i) {
          h = mix(h, static_cast<std::uint64_t>(best->server[i]));
        }
      } else {
        h = mix(h, 0x404);
      }
    }
    P::dispose(query);

    for (EntryPtr e = config; e != nullptr;) {
      EntryPtr next = e->next;
      P::dispose(e);
      e = next;
    }
    return h;
  }

 private:
  struct Entry;
  using EntryPtr = typename P::template ptr<Entry>;
  struct Entry {
    char pattern[24] = {};
    std::size_t pattern_len = 0;
    char server[32] = {};
    EntryPtr next{};
  };
  struct Query;
  using QueryPtr = typename P::template ptr<Query>;
  struct Query {
    char domain[32] = {};
  };

  template <typename Arr>
  static void fill_name(Arr& out, std::size_t len, Rng& rng) {
    std::size_t i = 0;
    for (; i < len; ++i) {
      out[i] = static_cast<char>(rng.below(4) == 0 ? '.' : 'a' + rng.below(26));
    }
    out[i] = '\0';
  }
};

}  // namespace dpg::workloads::utils
