// Olden tsp: closest-point-heuristic travelling salesman. Random cities are
// organized into a balanced binary tree by recursive spatial partitioning;
// tours are solved per subtree and merged bottom-up into a cyclic
// doubly-linked list threaded through the same nodes (Olden's signature
// trick: tree pointers and tour pointers share the node).
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Tsp {
 public:
  static constexpr const char* kName = "tsp";

  struct Params {
    int cities = 1024;    // power of two keeps the tree balanced
    int improve_rounds = 100;  // or-opt refinement passes over the tour
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(City));
    Rng rng(0x757);
    CityPtr tree = build(params.cities, 0.0, 1.0, 0.0, 1.0, rng, true);
    CityPtr tour = solve(tree);
    for (int r = 0; r < params.improve_rounds; ++r) or_opt(tour);

    // Tour length (scaled to integer) + node count as checksum.
    std::uint64_t length_milli = 0;
    std::uint64_t count = 0;
    CityPtr c = tour;
    do {
      length_milli += static_cast<std::uint64_t>(dist(c, c->next) * 1000.0);
      count++;
      c = c->next;
    } while (c != tour);

    std::uint64_t checksum = mix(0xcbf29ce484222325ull, length_milli);
    checksum = mix(checksum, count);
    tear_down(tree);
    return checksum;
  }

 private:
  struct City;
  using CityPtr = typename P::template ptr<City>;
  struct City {
    double x = 0;
    double y = 0;
    CityPtr left{};
    CityPtr right{};
    CityPtr next{};  // cyclic tour links
    CityPtr prev{};
  };

  static double dist(CityPtr a, CityPtr b) {
    const double dx = a->x - b->x;
    const double dy = a->y - b->y;
    // Squared-distance order is what the heuristic needs; take a cheap
    // Newton sqrt for tour-length reporting stability.
    const double d2 = dx * dx + dy * dy;
    double r = d2 > 0 ? d2 : 0;
    double guess = r > 1 ? r : 1;
    for (int i = 0; i < 20; ++i) guess = 0.5 * (guess + r / guess);
    return guess;
  }

  // Recursive spatial median build (splitting alternately in x and y).
  static CityPtr build(int n, double x0, double x1, double y0, double y1,
                       Rng& rng, bool split_x) {
    if (n == 0) return CityPtr{};
    CityPtr node = P::template make<City>();
    if (split_x) {
      const double mid = (x0 + x1) / 2;
      node->x = mid;
      node->y = y0 + rng.unit() * (y1 - y0);
      node->left = build((n - 1) / 2, x0, mid, y0, y1, rng, false);
      node->right = build(n - 1 - (n - 1) / 2, mid, x1, y0, y1, rng, false);
    } else {
      const double mid = (y0 + y1) / 2;
      node->y = mid;
      node->x = x0 + rng.unit() * (x1 - x0);
      node->left = build((n - 1) / 2, x0, x1, y0, mid, rng, true);
      node->right = build(n - 1 - (n - 1) / 2, x0, x1, mid, y1, rng, true);
    }
    return node;
  }

  // Returns some node on the cyclic tour covering the subtree.
  static CityPtr solve(CityPtr tree) {
    if (tree == nullptr) return CityPtr{};
    CityPtr left = solve(tree->left);
    CityPtr right = solve(tree->right);

    // Self-loop for the root city.
    tree->next = tree;
    tree->prev = tree;
    CityPtr tour = splice(left, tree);
    tour = splice(tour, right);
    return tour;
  }

  // Merges tour `b` into tour `a` at the cheapest insertion point found by a
  // bounded scan (the closest-point flavour of the heuristic). Either may be
  // null/empty.
  static CityPtr splice(CityPtr a, CityPtr b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    // Find the edge (u, u->next) of `a` closest to b's head.
    CityPtr best = a;
    double best_cost = 1e308;
    CityPtr u = a;
    do {
      const double cost = dist(u, b) + dist(b->prev, u->next) - dist(u, u->next);
      if (cost < best_cost) {
        best_cost = cost;
        best = u;
      }
      u = u->next;
    } while (u != a);

    // Insert the whole cycle b between best and best->next.
    CityPtr b_tail = b->prev;
    CityPtr after = best->next;
    best->next = b;
    b->prev = best;
    b_tail->next = after;
    after->prev = b_tail;
    return a;
  }

  // Or-opt: relocate single cities between their neighbours when it
  // shortens the tour (the iterative-improvement phase of TSP heuristics).
  static void or_opt(CityPtr tour) {
    CityPtr c = tour;
    do {
      CityPtr a = c->prev;
      CityPtr b = c->next;
      CityPtr d = b->next;
      // Cost of moving c between b and d.
      const double now = dist(a, c) + dist(c, b) + dist(b, d);
      const double then = dist(a, b) + dist(b, c) + dist(c, d);
      if (then + 1e-12 < now) {
        // unlink c; relink after b
        a->next = b;
        b->prev = a;
        c->prev = b;
        c->next = d;
        b->next = c;
        d->prev = c;
      }
      c = c->next;
    } while (c != tour);
  }

  static void tear_down(CityPtr node) {
    if (node == nullptr) return;
    tear_down(node->left);
    tear_down(node->right);
    P::dispose(node);
  }
};

}  // namespace dpg::workloads::olden
