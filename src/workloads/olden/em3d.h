// Olden em3d: electromagnetic wave propagation on a bipartite graph.
// E-nodes depend on H-nodes and vice versa; each iteration updates every
// node's value from its dependencies. Allocation up front (nodes + per-node
// dependency arrays), then pure pointer-chasing compute.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Em3d {
 public:
  static constexpr const char* kName = "em3d";

  struct Params {
    int nodes_per_side = 256;
    int degree = 8;
    int iterations = 6000;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(Node));
    Rng rng(0xE3D);

    NodePtr e_list = build_side(params, rng);
    NodePtr h_list = build_side(params, rng);
    wire(e_list, h_list, params, rng);
    wire(h_list, e_list, params, rng);

    for (int it = 0; it < params.iterations; ++it) {
      compute(e_list, params.degree);
      compute(h_list, params.degree);
    }

    std::uint64_t checksum = 0xcbf29ce484222325ull;
    for (NodePtr n = e_list; n != nullptr; n = n->next) {
      checksum = mix(checksum, n->value);
    }
    tear_down(e_list, params.degree);
    tear_down(h_list, params.degree);
    return checksum;
  }

 private:
  struct Node;
  using NodePtr = typename P::template ptr<Node>;
  using NodePtrArray = typename P::template ptr<NodePtr>;
  using CoeffArray = typename P::template ptr<std::uint64_t>;
  struct Node {
    std::uint64_t value = 0;
    NodePtr next{};
    NodePtrArray from{};   // dependency nodes (degree entries)
    CoeffArray coeffs{};   // per-dependency coefficients
  };

  static NodePtr build_side(const Params& params, Rng& rng) {
    NodePtr head{};
    for (int i = 0; i < params.nodes_per_side; ++i) {
      NodePtr node = P::template make<Node>();
      node->value = rng.next() % 1000;
      node->next = head;
      head = node;
    }
    return head;
  }

  static void wire(NodePtr side, NodePtr other, const Params& params, Rng& rng) {
    // Collect the other side into a temporary table for random wiring.
    const std::size_t n = static_cast<std::size_t>(params.nodes_per_side);
    NodePtrArray table = P::template alloc_array<NodePtr>(n);
    std::size_t count = 0;
    for (NodePtr it = other; it != nullptr; it = it->next) table[count++] = it;

    for (NodePtr node = side; node != nullptr; node = node->next) {
      node->from = P::template alloc_array<NodePtr>(
          static_cast<std::size_t>(params.degree));
      node->coeffs = P::template alloc_array<std::uint64_t>(
          static_cast<std::size_t>(params.degree));
      for (int d = 0; d < params.degree; ++d) {
        node->from[static_cast<std::size_t>(d)] = table[rng.below(count)];
        node->coeffs[static_cast<std::size_t>(d)] = 1 + rng.below(7);
      }
    }
    P::dispose(table);
  }

  static void compute(NodePtr side, int degree) {
    for (NodePtr node = side; node != nullptr; node = node->next) {
      std::uint64_t v = node->value;
      for (int d = 0; d < degree; ++d) {
        v -= node->coeffs[static_cast<std::size_t>(d)] *
             node->from[static_cast<std::size_t>(d)]->value;
      }
      node->value = v;
    }
  }

  static void tear_down(NodePtr head, int degree) {
    (void)degree;
    while (head != nullptr) {
      NodePtr next = head->next;
      P::dispose(head->from);
      P::dispose(head->coeffs);
      P::dispose(head);
      head = next;
    }
  }
};

}  // namespace dpg::workloads::olden
