// Olden bisort: bitonic sort over a complete binary tree of values.
// Allocation: one malloc per tree node up front (and a full teardown);
// computation: many pointer-chasing passes with value compare-exchanges —
// the classic Olden mix the paper reports a 3.2x–11x range on.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Bisort {
 public:
  static constexpr const char* kName = "bisort";

  struct Params {
    int levels = 15;  // 2^levels - 1 nodes
    int rounds = 8;   // sort ascending then descending per round
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(Node));
    Rng rng(0xB150C7);
    NodePtr root = rand_tree(params.levels, rng);
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    std::uint64_t spr = rng.next() % kValueRange;
    for (int r = 0; r < params.rounds; ++r) {
      spr = bisort(root, spr, /*dir=*/false);
      checksum = mix(checksum, inorder_hash(root));
      spr = bisort(root, spr, /*dir=*/true);
      checksum = mix(checksum, inorder_hash(root));
    }
    tear_down(root);
    return checksum;
  }

  // For tests: returns true iff the tree's in-order sequence is sorted
  // ascending after a dir=false sort.
  static bool sorts_correctly(int levels) {
    typename P::Scope scope(sizeof(Node));
    Rng rng(0x5EED);
    NodePtr root = rand_tree(levels, rng);
    bisort(root, rng.next() % kValueRange, false);
    std::uint64_t prev = 0;
    const bool ok = check_sorted(root, prev);
    tear_down(root);
    return ok;
  }

 private:
  static constexpr std::uint64_t kValueRange = 1u << 20;

  struct Node;
  using NodePtr = typename P::template ptr<Node>;
  struct Node {
    std::uint64_t value = 0;
    NodePtr left{};
    NodePtr right{};
  };

  static NodePtr rand_tree(int level, Rng& rng) {
    if (level == 0) return NodePtr{};
    NodePtr node = P::template make<Node>();
    node->value = rng.next() % kValueRange;
    node->left = rand_tree(level - 1, rng);
    node->right = rand_tree(level - 1, rng);
    return node;
  }

  // Compare-exchange mirrored in-order positions of two equal-shape
  // subtrees: the first stage of a bitonic merge over the tree layout
  // [inorder(left), root, inorder(right), spare].
  static void pairwise(NodePtr a, NodePtr b, bool dir) {
    if (a == nullptr) return;
    if ((a->value > b->value) != dir) {
      const std::uint64_t t = a->value;
      a->value = b->value;
      b->value = t;
    }
    pairwise(a->left, b->left, dir);
    pairwise(a->right, b->right, dir);
  }

  // Bitonic merge: the subtree plus spare holds a bitonic sequence; after
  // the half-distance compare-exchange stage, both halves (left subtree +
  // root value, right subtree + spare) merge recursively. (Olden's original
  // fuses the pairwise stage into a single root-to-leaf walk with subtree
  // pointer swaps; this form is the textbook network with identical data
  // layout and O(log n) extra pointer hops per merge level.)
  static std::uint64_t bimerge(NodePtr root, std::uint64_t spr_val, bool dir) {
    if ((root->value > spr_val) != dir) {
      const std::uint64_t t = root->value;
      root->value = spr_val;
      spr_val = t;
    }
    if (root->left != nullptr) {
      pairwise(root->left, root->right, dir);
      root->value = bimerge(root->left, root->value, dir);
      spr_val = bimerge(root->right, spr_val, dir);
    }
    return spr_val;
  }

  static std::uint64_t bisort(NodePtr root, std::uint64_t spr_val, bool dir) {
    if (root->left == nullptr) {
      if ((root->value > spr_val) != dir) {
        const std::uint64_t v = spr_val;
        spr_val = root->value;
        root->value = v;
      }
    } else {
      root->value = bisort(root->left, root->value, dir);
      spr_val = bisort(root->right, spr_val, !dir);
      spr_val = bimerge(root, spr_val, dir);
    }
    return spr_val;
  }

  static std::uint64_t inorder_hash(NodePtr node) {
    if (node == nullptr) return 0;
    std::uint64_t h = inorder_hash(node->left);
    h = mix(h, node->value);
    return mix(h, inorder_hash(node->right));
  }

  static bool check_sorted(NodePtr node, std::uint64_t& prev) {
    if (node == nullptr) return true;
    if (!check_sorted(node->left, prev)) return false;
    if (node->value < prev) return false;
    prev = node->value;
    return check_sorted(node->right, prev);
  }

  static void tear_down(NodePtr node) {
    if (node == nullptr) return;
    tear_down(node->left);
    tear_down(node->right);
    P::dispose(node);
  }
};

}  // namespace dpg::workloads::olden
