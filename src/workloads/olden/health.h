// Olden health: Colombian health-care simulation. A 4-ary tree of villages;
// every time step each village generates patients (malloc), treats some,
// and transfers the rest up the hierarchy through waiting lists (list-cell
// malloc/free churn). The highest allocation *rate* of the suite — a
// worst-case for syscall-per-allocation schemes, as Table 3 shows.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Health {
 public:
  static constexpr const char* kName = "health";

  struct Params {
    int levels = 5;      // 4-ary village tree depth
    int time_steps = 60;
    int seed = 0x0EA17;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(Patient));
    Rng rng(static_cast<std::uint64_t>(params.seed));
    VillagePtr top = build(params.levels, 1, rng);
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    for (int t = 0; t < params.time_steps; ++t) {
      sim(top, rng);
    }
    checksum = mix(checksum, stats_hash(top));
    tear_down(top);
    return checksum;
  }

 private:
  struct Patient;
  struct ListCell;
  struct Village;
  using PatientPtr = typename P::template ptr<Patient>;
  using CellPtr = typename P::template ptr<ListCell>;
  using VillagePtr = typename P::template ptr<Village>;
  using HistBuf = typename P::template ptr<std::uint64_t>;

  struct Patient {
    std::uint64_t id = 0;
    std::uint64_t hosps_visited = 0;
    std::uint64_t time_waited = 0;
    std::uint64_t remaining = 0;  // treatment time left
  };
  struct ListCell {
    PatientPtr patient{};
    CellPtr next{};
  };
  struct Village {
    VillagePtr child[4] = {};
    CellPtr waiting{};    // waiting for a free slot
    CellPtr assess{};     // under treatment
    HistBuf history{};    // per-step epidemiological records
    std::uint64_t free_personnel = 0;
    std::uint64_t label = 0;
    std::uint64_t treated = 0;
    std::uint64_t escalated = 0;
    std::uint64_t hist_hash = 0;
  };
  static constexpr std::size_t kHistory = 1024;

  static VillagePtr build(int level, std::uint64_t label, Rng& rng) {
    if (level == 0) return VillagePtr{};
    VillagePtr v = P::template make<Village>();
    v->label = label;
    v->free_personnel = 2 + rng.below(3);
    v->history = P::template alloc_array<std::uint64_t>(kHistory);
    for (std::size_t i = 0; i < kHistory; ++i) v->history[i] = label + i;
    for (int c = 0; c < 4; ++c) {
      v->child[c] = build(level - 1, label * 4 + static_cast<std::uint64_t>(c), rng);
    }
    return v;
  }

  static void push(CellPtr& list, PatientPtr p) {
    CellPtr cell = P::template make<ListCell>();
    cell->patient = p;
    cell->next = list;
    list = cell;
  }

  // Removes the head cell, returning its patient.
  static PatientPtr pop(CellPtr& list) {
    CellPtr cell = list;
    PatientPtr p = cell->patient;
    list = cell->next;
    P::dispose(cell);
    return p;
  }

  // One simulation step, bottom-up: leaves generate patients; patients whose
  // treatment ends are freed; villages without capacity escalate patients to
  // the parent's waiting list (returned via the out-list).
  static CellPtr sim(VillagePtr v, Rng& rng) {
    if (v == nullptr) return CellPtr{};

    // Collect escalations from children into our waiting list.
    for (int c = 0; c < 4; ++c) {
      CellPtr up = sim(v->child[c], rng);
      while (up != nullptr) {
        CellPtr next = up->next;
        up->next = v->waiting;
        v->waiting = up;
        up = next;
      }
    }

    // Per-step bookkeeping: update and rescan the village's records (the
    // statistics gathering the Olden original folds into each step).
    std::uint64_t hh = v->hist_hash;
    for (std::size_t i = 0; i < kHistory; ++i) hh = mix(hh, v->history[i]);
    v->history[static_cast<std::size_t>(hh % kHistory)] = hh;
    v->hist_hash = hh;

    // Leaf villages generate new patients with some probability.
    const bool is_leaf = v->child[0] == nullptr;
    if (is_leaf && rng.below(100) < 65) {
      PatientPtr p = P::template make<Patient>();
      p->id = rng.next();
      p->remaining = 1 + rng.below(4);
      push(v->waiting, p);
    }

    // Treat: advance everyone in assessment; discharge finished patients.
    CellPtr* link = &v->assess;
    while (*link != nullptr) {
      CellPtr cell = *link;
      PatientPtr p = cell->patient;
      if (--p->remaining == 0) {
        *link = cell->next;
        v->treated++;
        v->free_personnel++;
        P::dispose(cell);
        P::dispose(p);
      } else {
        link = &cell->next;
      }
    }

    // Admit from the waiting list while there is capacity; escalate ~30% of
    // the remainder to the parent.
    CellPtr escalate{};
    while (v->waiting != nullptr) {
      PatientPtr p = pop(v->waiting);
      if (v->free_personnel > 0) {
        v->free_personnel--;
        p->hosps_visited++;
        push(v->assess, p);
      } else if (rng.below(100) < 30) {
        p->time_waited++;
        push(escalate, p);
        v->escalated++;
      } else {
        p->time_waited++;
        push(v->waiting, p);
        break;  // keep the rest waiting this step
      }
    }
    return escalate;
  }

  static std::uint64_t stats_hash(VillagePtr v) {
    if (v == nullptr) return 0;
    std::uint64_t h = mix(v->treated, v->escalated);
    h = mix(h, v->hist_hash);
    for (int c = 0; c < 4; ++c) h = mix(h, stats_hash(v->child[c]));
    return h;
  }

  static void drain(CellPtr list) {
    while (list != nullptr) {
      CellPtr next = list->next;
      P::dispose(list->patient);
      P::dispose(list);
      list = next;
    }
  }

  static void tear_down(VillagePtr v) {
    if (v == nullptr) return;
    for (int c = 0; c < 4; ++c) tear_down(v->child[c]);
    drain(v->waiting);
    drain(v->assess);
    P::dispose(v->history);
    P::dispose(v);
  }
};

}  // namespace dpg::workloads::olden
