// Olden perimeter: build a region quadtree over a synthetic binary image and
// compute the perimeter of the black region. Allocation: adaptive quadtree
// nodes; computation: recursive neighbor probes from the root per leaf edge.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Perimeter {
 public:
  static constexpr const char* kName = "perimeter";

  struct Params {
    int depth = 9;     // image is 2^depth x 2^depth
    int analyses = 40; // perimeter passes over the same tree
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(Quad));
    const std::uint64_t size = std::uint64_t{1} << params.depth;
    QuadPtr root = build(0, 0, size, params.depth, size);
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    for (int a = 0; a < params.analyses; ++a) {
      checksum = mix(checksum, walk(root, root, 0, 0, size, size));
    }
    tear_down(root);
    return checksum;
  }

 private:
  enum Color : std::uint64_t { kWhite = 0, kBlack = 1, kGrey = 2 };

  struct Quad;
  using QuadPtr = typename P::template ptr<Quad>;
  struct Quad {
    std::uint64_t color = kWhite;
    QuadPtr child[4] = {};  // nw, ne, sw, se
  };

  // The image: a disc centred in the square (deterministic, scale-free).
  static bool black_pixel(std::uint64_t x, std::uint64_t y, std::uint64_t size) {
    const double cx = static_cast<double>(size) / 2.0;
    const double r = static_cast<double>(size) * 0.37;
    const double dx = static_cast<double>(x) + 0.5 - cx;
    const double dy = static_cast<double>(y) + 0.5 - cx;
    return dx * dx + dy * dy <= r * r;
  }

  // Is the cell uniformly black/white? Checked on the corners + centre first
  // and resolved exactly at depth 0.
  static QuadPtr build(std::uint64_t x, std::uint64_t y, std::uint64_t size,
                       int depth, std::uint64_t image) {
    QuadPtr q = P::template make<Quad>();
    if (depth == 0 || uniform(x, y, size, image)) {
      q->color = black_pixel(x + size / 2, y + size / 2, image) ? kBlack
                                                                : kWhite;
      return q;
    }
    q->color = kGrey;
    const std::uint64_t h = size / 2;
    q->child[0] = build(x, y, h, depth - 1, image);
    q->child[1] = build(x + h, y, h, depth - 1, image);
    q->child[2] = build(x, y + h, h, depth - 1, image);
    q->child[3] = build(x + h, y + h, h, depth - 1, image);
    return q;
  }

  static bool uniform(std::uint64_t x, std::uint64_t y, std::uint64_t size,
                      std::uint64_t image) {
    if (size <= 1) return true;
    const bool first = black_pixel(x, y, image);
    const std::uint64_t step = size > 8 ? size / 8 : 1;
    for (std::uint64_t dy = 0; dy < size; dy += step) {
      for (std::uint64_t dx = 0; dx < size; dx += step) {
        if (black_pixel(x + dx, y + dy, image) != first) return false;
      }
    }
    return true;
  }

  // Color of the image at (x, y) via quadtree descent — Olden's neighbor
  // probes are tree navigations like this one.
  static std::uint64_t color_at(QuadPtr root, std::uint64_t x, std::uint64_t y,
                                std::uint64_t size) {
    QuadPtr q = root;
    std::uint64_t qx = 0;
    std::uint64_t qy = 0;
    std::uint64_t qsize = size;
    while (q->color == kGrey) {
      const std::uint64_t h = qsize / 2;
      const bool east = x >= qx + h;
      const bool south = y >= qy + h;
      q = q->child[(south ? 2 : 0) + (east ? 1 : 0)];
      if (east) qx += h;
      if (south) qy += h;
      qsize = h;
    }
    return q->color;
  }

  // Sums border contributions of every black leaf: an edge counts when the
  // neighboring pixel row/column (or the image border) is white.
  static std::uint64_t walk(QuadPtr root, QuadPtr q, std::uint64_t x,
                            std::uint64_t y, std::uint64_t size,
                            std::uint64_t image) {
    if (q->color == kGrey) {
      const std::uint64_t h = size / 2;
      return walk(root, q->child[0], x, y, h, image) +
             walk(root, q->child[1], x + h, y, h, image) +
             walk(root, q->child[2], x, y + h, h, image) +
             walk(root, q->child[3], x + h, y + h, h, image);
    }
    if (q->color == kWhite) return 0;
    std::uint64_t edges = 0;
    for (std::uint64_t i = 0; i < size; ++i) {
      // north
      if (y == 0 || color_at(root, x + i, y - 1, image) == kWhite) edges++;
      // south
      if (y + size >= image || color_at(root, x + i, y + size, image) == kWhite) edges++;
      // west
      if (x == 0 || color_at(root, x - 1, y + i, image) == kWhite) edges++;
      // east
      if (x + size >= image || color_at(root, x + size, y + i, image) == kWhite) edges++;
    }
    return edges;
  }

  static void tear_down(QuadPtr q) {
    if (q == nullptr) return;
    for (int c = 0; c < 4; ++c) tear_down(q->child[c]);
    P::dispose(q);
  }
};

}  // namespace dpg::workloads::olden
