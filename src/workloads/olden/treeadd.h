// Olden treeadd: build a complete binary tree, sum it recursively, tear it
// down. The simplest allocation-intensive kernel: one malloc per node, one
// free per node, pointer-chasing sums in between.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class TreeAdd {
 public:
  static constexpr const char* kName = "treeadd";

  struct Params {
    int levels = 15;  // 2^levels - 1 nodes (bounded by vm.max_map_count)
    int passes = 2000;  // sum traversals per tree (stands in for Olden's much\n                       // larger tree, which vm.max_map_count disallows)
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(Node));
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    NodePtr root = build(params.levels, 1);
    for (int pass = 0; pass < params.passes; ++pass) {
      checksum = mix(checksum, sum(root));
    }
    tear_down(root);
    return checksum;
  }

 private:
  struct Node;
  using NodePtr = typename P::template ptr<Node>;
  struct Node {
    NodePtr left{};
    NodePtr right{};
    std::uint64_t value = 0;
  };

  static NodePtr build(int level, std::uint64_t value) {
    if (level == 0) return NodePtr{};
    NodePtr node = P::template make<Node>();
    node->value = value;
    node->left = build(level - 1, value * 2);
    node->right = build(level - 1, value * 2 + 1);
    return node;
  }

  static std::uint64_t sum(NodePtr node) {
    if (node == nullptr) return 0;
    return node->value + sum(node->left) + sum(node->right);
  }

  static void tear_down(NodePtr node) {
    if (node == nullptr) return;
    tear_down(node->left);
    tear_down(node->right);
    P::dispose(node);
  }
};

}  // namespace dpg::workloads::olden
