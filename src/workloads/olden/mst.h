// Olden mst: minimum spanning tree over a dense random graph whose adjacency
// is stored in per-vertex chained hash tables (Olden's signature structure).
// Allocation: vertices + hash buckets + chain entries; computation: Prim's
// "blue rule" sweeps doing hash lookups — pointer chasing galore.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Mst {
 public:
  static constexpr const char* kName = "mst";

  struct Params {
    int vertices = 512;
    int degree = 24;  // edges stored per vertex (plus a connecting ring)
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(HashEntry));
    Rng rng(0x357);
    const std::size_t n = static_cast<std::size_t>(params.vertices);

    VertexPtr vertices = P::template alloc_array<Vertex>(n);
    for (std::size_t i = 0; i < n; ++i) {
      Vertex& v = vertices[i];
      v = Vertex{};
      v.buckets = P::template alloc_array<EntryPtr>(kBuckets);
      for (std::size_t b = 0; b < kBuckets; ++b) v.buckets[b] = EntryPtr{};
    }
    // Ring edges guarantee connectivity; then random extra edges.
    for (std::size_t i = 0; i < n; ++i) {
      add_edge(vertices, i, (i + 1) % n, 1 + rng.below(1u << 16));
      for (int d = 0; d < params.degree; ++d) {
        const std::size_t j = rng.below(n);
        if (j != i) add_edge(vertices, i, j, 1 + rng.below(1u << 16));
      }
    }

    // Prim with the "blue rule": repeatedly add the cheapest fringe vertex.
    std::uint64_t total = 0;
    vertices[0].in_tree = 1;
    for (std::size_t added = 1; added < n; ++added) {
      relax(vertices, n);
      std::size_t best = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (vertices[i].in_tree == 0 && vertices[i].dist != kInf &&
            (best == n || vertices[i].dist < vertices[best].dist)) {
          best = i;
        }
      }
      if (best == n) break;  // disconnected (cannot happen with the ring)
      vertices[best].in_tree = 1;
      total += vertices[best].dist;
    }

    std::uint64_t checksum = mix(0xcbf29ce484222325ull, total);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        EntryPtr e = vertices[i].buckets[b];
        while (e != nullptr) {
          EntryPtr next = e->next;
          P::dispose(e);
          e = next;
        }
      }
      P::dispose(vertices[i].buckets);
    }
    P::dispose(vertices);
    return checksum;
  }

 private:
  static constexpr std::size_t kBuckets = 16;
  static constexpr std::uint64_t kInf = ~std::uint64_t{0};

  struct HashEntry;
  using EntryPtr = typename P::template ptr<HashEntry>;
  struct HashEntry {
    std::uint64_t key = 0;  // destination vertex index
    std::uint64_t weight = 0;
    EntryPtr next{};
  };
  struct Vertex;
  using VertexPtr = typename P::template ptr<Vertex>;
  using BucketArray = typename P::template ptr<EntryPtr>;
  struct Vertex {
    BucketArray buckets{};
    std::uint64_t dist = kInf;
    std::uint64_t in_tree = 0;
  };

  static void add_edge(VertexPtr vertices, std::size_t from, std::size_t to,
                       std::uint64_t weight) {
    insert(vertices[from], to, weight);
    insert(vertices[to], from, weight);
  }

  static void insert(Vertex& v, std::size_t key, std::uint64_t weight) {
    const std::size_t b = key % kBuckets;
    for (EntryPtr e = v.buckets[b]; e != nullptr; e = e->next) {
      if (e->key == key) return;  // keep first weight
    }
    EntryPtr entry = P::template make<HashEntry>();
    entry->key = key;
    entry->weight = weight;
    entry->next = v.buckets[b];
    v.buckets[b] = entry;
  }

  // For every fringe vertex, recompute its cheapest edge into the tree by
  // probing its hash table for tree members (the Olden access pattern).
  static void relax(VertexPtr vertices, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      Vertex& v = vertices[i];
      if (v.in_tree != 0) continue;
      std::uint64_t best = kInf;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        for (EntryPtr e = v.buckets[b]; e != nullptr; e = e->next) {
          if (vertices[e->key].in_tree != 0 && e->weight < best) {
            best = e->weight;
          }
        }
      }
      v.dist = best;
    }
  }
};

}  // namespace dpg::workloads::olden
