// Olden bh: Barnes–Hut hierarchical N-body simulation. Every time step
// rebuilds the octree from scratch (allocation churn), computes centres of
// mass bottom-up, then traverses the tree per body with the opening-angle
// criterion to accumulate forces. The largest and most pointer-intensive
// Olden benchmark.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Bh {
 public:
  static constexpr const char* kName = "bh";

  struct Params {
    int bodies = 256;
    int steps = 4;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(Cell));
    Rng rng(0xB4);
    const std::size_t n = static_cast<std::size_t>(params.bodies);

    BodyArray bodies = P::template alloc_array<Body>(n);
    for (std::size_t i = 0; i < n; ++i) {
      Body b{};
      b.mass = 1.0 + rng.unit();
      for (int d = 0; d < 3; ++d) {
        b.pos[d] = rng.unit();
        b.vel[d] = (rng.unit() - 0.5) * 0.1;
      }
      bodies[i] = b;
    }

    for (int step = 0; step < params.steps; ++step) {
      // Build the octree over the unit cube (expanded to hold strays).
      CellPtr root = P::template make<Cell>();
      root->half = 2.0;
      root->center[0] = root->center[1] = root->center[2] = 0.5;
      for (std::size_t i = 0; i < n; ++i) insert(root, bodies, i);
      summarize(root, bodies);

      // Forces + leapfrog update.
      for (std::size_t i = 0; i < n; ++i) {
        double acc[3] = {0, 0, 0};
        gravity(root, bodies, i, acc);
        Body& b = bodies[i];
        for (int d = 0; d < 3; ++d) {
          b.vel[d] += acc[d] * kDt;
          b.pos[d] += b.vel[d] * kDt;
        }
      }
      tear_down(root);
    }

    std::uint64_t checksum = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
      for (int d = 0; d < 3; ++d) {
        checksum = mix(checksum,
                       static_cast<std::uint64_t>(
                           (bodies[i].pos[d] + 10.0) * 1e6));
      }
    }
    P::dispose(bodies);
    return checksum;
  }

 private:
  static constexpr double kDt = 0.005;
  static constexpr double kTheta = 0.6;  // opening angle
  static constexpr double kSoft = 1e-4;  // softening

  struct Body {
    double mass = 0;
    double pos[3] = {};
    double vel[3] = {};
  };
  struct Cell;
  using CellPtr = typename P::template ptr<Cell>;
  using BodyArray = typename P::template ptr<Body>;
  struct Cell {
    double center[3] = {};
    double half = 0;             // half-extent of the cube
    double mass = 0;             // total mass (after summarize)
    double com[3] = {};          // centre of mass
    std::int64_t body = -1;      // leaf: index into bodies (-1 = none)
    CellPtr child[8] = {};
  };

  static int octant(const Cell& c, const Body& b) {
    int o = 0;
    if (b.pos[0] >= c.center[0]) o |= 1;
    if (b.pos[1] >= c.center[1]) o |= 2;
    if (b.pos[2] >= c.center[2]) o |= 4;
    return o;
  }

  static CellPtr make_child(const Cell& parent, int o) {
    CellPtr c = P::template make<Cell>();
    c->half = parent.half / 2;
    for (int d = 0; d < 3; ++d) {
      const bool hi = (o >> d) & 1;
      c->center[d] = parent.center[d] + (hi ? c->half : -c->half);
    }
    return c;
  }

  static void insert(CellPtr cell, BodyArray bodies, std::size_t idx) {
    for (;;) {
      const bool has_children = cell->child[0] != nullptr ||
                                cell->child[1] != nullptr ||
                                cell->child[2] != nullptr ||
                                cell->child[3] != nullptr ||
                                cell->child[4] != nullptr ||
                                cell->child[5] != nullptr ||
                                cell->child[6] != nullptr ||
                                cell->child[7] != nullptr;
      if (!has_children && cell->body < 0) {
        cell->body = static_cast<std::int64_t>(idx);
        return;
      }
      if (!has_children) {
        // Split: push the resident body down one level.
        const std::size_t resident = static_cast<std::size_t>(cell->body);
        cell->body = -1;
        if (cell->half < 1e-9) {
          // Degenerate co-located bodies: keep the newcomer here.
          cell->body = static_cast<std::int64_t>(idx);
          return;
        }
        const int ro = octant(*cell, bodies[resident]);
        cell->child[ro] = make_child(*cell, ro);
        cell->child[ro]->body = static_cast<std::int64_t>(resident);
      }
      const int o = octant(*cell, bodies[idx]);
      if (cell->child[o] == nullptr) cell->child[o] = make_child(*cell, o);
      cell = cell->child[o];
    }
  }

  static void summarize(CellPtr cell, BodyArray bodies) {
    double m = 0;
    double com[3] = {0, 0, 0};
    if (cell->body >= 0) {
      const Body& b = bodies[static_cast<std::size_t>(cell->body)];
      m = b.mass;
      for (int d = 0; d < 3; ++d) com[d] = b.pos[d] * b.mass;
    }
    for (int c = 0; c < 8; ++c) {
      if (cell->child[c] == nullptr) continue;
      summarize(cell->child[c], bodies);
      m += cell->child[c]->mass;
      for (int d = 0; d < 3; ++d) {
        com[d] += cell->child[c]->com[d] * cell->child[c]->mass;
      }
    }
    cell->mass = m;
    for (int d = 0; d < 3; ++d) cell->com[d] = m > 0 ? com[d] / m : 0;
  }

  static void gravity(CellPtr cell, BodyArray bodies, std::size_t idx,
                      double* acc) {
    const Body& b = bodies[idx];
    if (cell->mass <= 0) return;
    // Opening test: s/d < theta -> treat as a point mass.
    double dr2 = kSoft;
    for (int d = 0; d < 3; ++d) {
      const double dd = cell->com[d] - b.pos[d];
      dr2 += dd * dd;
    }
    const double s = 2 * cell->half;
    const bool is_leaf_body = cell->body >= 0;
    if (is_leaf_body) {
      if (static_cast<std::size_t>(cell->body) != idx) {
        point_force(cell->com, cell->mass, b, dr2, acc);
      }
      // fall through to children (a split cell may hold body + children is
      // impossible here: body >= 0 implies no children by construction)
      return;
    }
    if (s * s < kTheta * kTheta * dr2) {
      point_force(cell->com, cell->mass, b, dr2, acc);
      return;
    }
    for (int c = 0; c < 8; ++c) {
      if (cell->child[c] != nullptr) gravity(cell->child[c], bodies, idx, acc);
    }
  }

  static void point_force(const double* from, double mass, const Body& b,
                          double d2, double* acc) {
    // acc += mass * dr / d^3, with 1/sqrt via Newton (double precision).
    double y = 1.0 / d2;  // seed for 1/sqrt(d2): iterate y = y(1.5 - 0.5 d2 y^2)
    // Normalize the seed into convergence range.
    while (d2 * y * y > 4.0) y *= 0.5;
    while (d2 * y * y < 0.25) y *= 2.0;
    for (int i = 0; i < 30; ++i) y = y * (1.5 - 0.5 * d2 * y * y);
    const double inv3 = y * y * y;
    for (int d = 0; d < 3; ++d) {
      acc[d] += mass * (from[d] - b.pos[d]) * inv3;
    }
  }

  static void tear_down(CellPtr cell) {
    if (cell == nullptr) return;
    for (int c = 0; c < 8; ++c) tear_down(cell->child[c]);
    P::dispose(cell);
  }
};

}  // namespace dpg::workloads::olden
