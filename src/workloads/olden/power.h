// Olden power: power-system pricing optimization over a fixed four-level
// tree (root -> feeders -> laterals -> branches -> leaves). Allocation is a
// one-time tree build; computation is repeated two-phase sweeps (demands
// flow up, prices flow down) to a fixed point — access-heavy, alloc-light,
// the Olden member closest to "server-like" behaviour.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::olden {

template <typename P>
class Power {
 public:
  static constexpr const char* kName = "power";

  struct Params {
    int feeders = 8;
    int laterals = 12;  // per feeder
    int branches = 6;   // per lateral
    int leaves = 8;     // per branch
    int iterations = 3000;
  };

  static std::uint64_t run(const Params& params) {
    typename P::Scope scope(sizeof(Branch));
    Rng rng(0x70D3);

    // Build: per-feeder lateral lists.
    FeederArray feeder_heads =
        P::template alloc_array<LateralPtr>(static_cast<std::size_t>(params.feeders));
    for (int f = 0; f < params.feeders; ++f) {
      LateralPtr head{};
      for (int l = 0; l < params.laterals; ++l) {
        LateralPtr lat = P::template make<Lateral>();
        lat->next = head;
        BranchPtr bhead{};
        for (int b = 0; b < params.branches; ++b) {
          BranchPtr br = P::template make<Branch>();
          br->next = bhead;
          br->leaves =
              P::template alloc_array<Leaf>(static_cast<std::size_t>(params.leaves));
          br->num_leaves = static_cast<std::uint64_t>(params.leaves);
          for (int v = 0; v < params.leaves; ++v) {
            br->leaves[static_cast<std::size_t>(v)] =
                Leaf{1000 + rng.below(1000), 0};
          }
          bhead = br;
        }
        lat->branches = bhead;
        head = lat;
      }
      feeder_heads[static_cast<std::size_t>(f)] = head;
    }

    // Optimize: demand up, price down, until the price drift settles.
    std::uint64_t price = 10000;
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    for (int it = 0; it < params.iterations; ++it) {
      std::uint64_t total_demand = 0;
      for (int f = 0; f < params.feeders; ++f) {
        total_demand +=
            feeder_demand(feeder_heads[static_cast<std::size_t>(f)], price);
      }
      // Price adjusts toward a target load (damped integer dynamics).
      const std::uint64_t target = 48ull * static_cast<std::uint64_t>(
          params.feeders * params.laterals * params.branches * params.leaves);
      if (total_demand > target) {
        price += (total_demand - target) / 64 + 1;
      } else if (price > (target - total_demand) / 64 + 1) {
        price -= (target - total_demand) / 64 + 1;
      }
      checksum = mix(checksum, total_demand);
    }
    checksum = mix(checksum, price);

    // Teardown.
    for (int f = 0; f < params.feeders; ++f) {
      LateralPtr lat = feeder_heads[static_cast<std::size_t>(f)];
      while (lat != nullptr) {
        LateralPtr lnext = lat->next;
        BranchPtr br = lat->branches;
        while (br != nullptr) {
          BranchPtr bnext = br->next;
          P::dispose(br->leaves);
          P::dispose(br);
          br = bnext;
        }
        P::dispose(lat);
        lat = lnext;
      }
    }
    P::dispose(feeder_heads);
    return checksum;
  }

 private:
  struct Leaf {
    std::uint64_t base_demand = 0;
    std::uint64_t drawn = 0;
  };
  struct Branch;
  using BranchPtr = typename P::template ptr<Branch>;
  using LeafArray = typename P::template ptr<Leaf>;
  struct Branch {
    LeafArray leaves{};
    std::uint64_t num_leaves = 0;
    BranchPtr next{};
  };
  struct Lateral;
  using LateralPtr = typename P::template ptr<Lateral>;
  struct Lateral {
    BranchPtr branches{};
    LateralPtr next{};
  };
  using FeederArray = typename P::template ptr<LateralPtr>;

  // Demand each leaf draws is its base demand scaled down by price; sums
  // propagate up branch -> lateral -> feeder.
  static std::uint64_t feeder_demand(LateralPtr head, std::uint64_t price) {
    std::uint64_t demand = 0;
    for (LateralPtr lat = head; lat != nullptr; lat = lat->next) {
      for (BranchPtr br = lat->branches; br != nullptr; br = br->next) {
        std::uint64_t branch_demand = 0;
        for (std::uint64_t v = 0; v < br->num_leaves; ++v) {
          Leaf& leaf = br->leaves[static_cast<std::size_t>(v)];
          leaf.drawn = leaf.base_demand * 100 / (100 + price / 128);
          branch_demand += leaf.drawn;
        }
        demand += branch_demand;
      }
    }
    return demand;
  }
};

}  // namespace dpg::workloads::olden
