// netkit-tftpd-like workload. The paper (§4.3): "in case of tftpd every
// command from the client (e.g., get filename) forks off a new process" —
// so every *command* is a PoolScope here. Block-oriented transfer with one
// packet buffer per command.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/common.h"

namespace dpg::workloads::servers {

template <typename P>
class Tftpd {
 public:
  static constexpr const char* kName = "tftpd";

  struct Params {
    int commands = 250;
    int files = 16;
    std::size_t mean_file_bytes = 192 * 1024;
  };

  static std::uint64_t run(const Params& params) {
    const std::vector<std::string> store = make_store(params);
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    Rng rng(0x7F7D);
    for (int c = 0; c < params.commands; ++c) {
      typename P::Scope command;  // fork per command
      checksum = mix(checksum, simulate_process_spawn(rng.below(4)));
      const std::string& file = store[rng.below(store.size())];
      checksum = mix(checksum, transfer(file, rng));
    }
    return checksum;
  }

 private:
  using CharBuf = typename P::template ptr<char>;
  static constexpr std::size_t kBlock = 512;  // TFTP DATA block size

  static std::vector<std::string> make_store(const Params& params) {
    std::vector<std::string> store;
    Rng rng(0x57F);
    for (int f = 0; f < params.files; ++f) {
      const std::size_t len =
          params.mean_file_bytes / 2 + rng.below(params.mean_file_bytes);
      std::string body(len, '\0');
      for (std::size_t i = 0; i < len; ++i) {
        body[i] = static_cast<char>('0' + (i * 13 + f) % 64);
      }
      store.push_back(std::move(body));
    }
    return store;
  }

  static std::uint64_t transfer(const std::string& file, Rng& rng) {
    // RRQ parse: filename + mode copied into a request buffer.
    CharBuf request = P::template alloc_array<char>(128);
    const char rrq[] = "GET somefile octet";
    for (std::size_t i = 0; i < sizeof(rrq); ++i) request[i] = rrq[i];

    CharBuf packet = P::template alloc_array<char>(kBlock + 4);
    std::uint64_t h = 0;
    std::uint16_t block_no = 0;
    for (std::size_t off = 0; off < file.size(); off += kBlock) {
      block_no++;
      packet[0] = 0;
      packet[1] = 3;  // DATA
      packet[2] = static_cast<char>(block_no >> 8);
      packet[3] = static_cast<char>(block_no & 0xFF);
      const std::size_t n =
          file.size() - off < kBlock ? file.size() - off : kBlock;
      policy_copy(packet + 4, file.data() + off, n);
      for (std::size_t i = 0; i < n + 4; i += 16) {
        h = mix(h, static_cast<std::uint64_t>(packet[i]));
      }
      // Simulated ACK wait: nothing allocated.
      h = mix(h, rng.below(3));
    }
    P::dispose(packet);
    P::dispose(request);
    return h;
  }
};

}  // namespace dpg::workloads::servers
