// wu-ftpd-like FTP server workload.
//
// Models the two behaviours §4.3 measures on the real wu-ftpd:
//   - fb_realpath(): "first creates a pool, allocates some memory out of the
//     pool, does some computation, frees the memory, and finally destroys the
//     pool" — an inner PoolScope whose pages recycle immediately;
//   - "for each ftp command there are 5-6 allocations from global pools, so
//     that virtual memory usage increases at the rate of 5-6 pages per
//     command" — modelled with make_global allocations that stay live until
//     the session (process) ends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/common.h"

namespace dpg::workloads::servers {

template <typename P>
class Ftpd {
 public:
  static constexpr const char* kName = "ftpd";
  static constexpr int kGlobalAllocsPerCommand = 6;

  struct Params {
    int sessions = 30;
    int commands_per_session = 20;
    std::size_t file_bytes = 1024 * 1024;
  };

  static std::uint64_t run(const Params& params) {
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    Rng rng(0xF7D);
    for (int s = 0; s < params.sessions; ++s) {
      typename P::Scope session;  // forked per-connection process
      checksum = mix(checksum, simulate_process_spawn(rng.below(5)));
      checksum = mix(checksum, handle_session(params, rng));
    }
    return checksum;
  }

 private:
  using CharBuf = typename P::template ptr<char>;
  struct LogEntry;
  using LogPtr = typename P::template ptr<LogEntry>;
  struct LogEntry {
    std::uint64_t tag = 0;
    LogPtr next{};
  };

  static std::uint64_t handle_session(const Params& params, Rng& rng) {
    std::uint64_t h = 0;
    // Global-pool state accumulated over the session (never freed while the
    // process lives — the paper's 5-6 pages/command growth).
    LogPtr global_log{};

    static constexpr const char* kCommands[] = {"CWD",  "LIST", "RETR",
                                                "SIZE", "PWD",  "STOR"};
    for (int c = 0; c < params.commands_per_session; ++c) {
      const char* cmd = kCommands[rng.below(6)];

      // Command-argument copies in the session pool.
      CharBuf arg = P::template alloc_array<char>(128);
      std::size_t arg_len = 0;
      for (const char* p = cmd; *p != '\0'; ++p) arg[arg_len++] = *p;
      arg[arg_len++] = ' ';
      for (int i = 0; i < 12; ++i) {
        arg[arg_len++] = static_cast<char>('a' + rng.below(26));
      }
      arg[arg_len] = '\0';

      // fb_realpath: its own short-lived pool.
      h = mix(h, fb_realpath(arg, arg_len));

      // The global-pool allocations per command.
      for (int g = 0; g < kGlobalAllocsPerCommand; ++g) {
        LogPtr entry = make_global<P, LogEntry>();
        entry->tag = mix(static_cast<std::uint64_t>(c), rng.next());
        entry->next = global_log;
        global_log = entry;
      }

      // Data transfer for RETR/STOR: the session streams the whole file
      // through a 1 KiB buffer (fill + checksum every byte, like a real
      // send loop reading disk blocks).
      if (cmd[0] == 'R' || cmd[0] == 'S') {
        CharBuf xfer = P::template alloc_array<char>(1024);
        char block[1024];  // the "disk block" read() fills
        for (std::size_t sent = 0; sent < params.file_bytes; sent += 1024) {
          for (std::size_t i = 0; i < 1024; ++i) {
            block[i] = static_cast<char>('A' + (sent + i) % 23);
          }
          policy_copy(xfer, block, 1024);
          for (std::size_t i = 0; i < 1024; i += 8) {
            h = mix(h, static_cast<std::uint64_t>(xfer[i]));
          }
        }
        P::dispose(xfer);
      }
      P::dispose(arg);
    }

    // Session (process) exit: the OS reclaims everything; we must release
    // the global entries explicitly since our process lives on.
    while (global_log != nullptr) {
      LogPtr next = global_log->next;
      h = mix(h, global_log->tag);
      dispose_global<P>(global_log);
      global_log = next;
    }
    return h;
  }

  // Resolves symlinks in a synthetic path — a pool-scoped scratch
  // computation, exactly the wu-ftpd fb_realpath pattern the paper found
  // benefits from pool allocation.
  static std::uint64_t fb_realpath(const CharBuf& path, std::size_t len) {
    typename P::Scope scratch;
    CharBuf resolved = P::template alloc_array<char>(512);
    std::size_t out = 0;
    for (std::size_t i = 0; i < len && out < 511; ++i) {
      const char ch = path[i];
      if (ch == ' ') {
        resolved[out++] = '/';
      } else {
        resolved[out++] = ch;
      }
      // "symlink" expansion: vowels double.
      if ((ch == 'a' || ch == 'e' || ch == 'o') && out < 511) {
        resolved[out++] = ch;
      }
    }
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < out; ++i) {
      h = mix(h, static_cast<std::uint64_t>(resolved[i]));
    }
    P::dispose(resolved);
    return h;
  }
};

}  // namespace dpg::workloads::servers
