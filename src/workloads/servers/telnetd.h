// netkit-telnetd-like workload. The paper (§4.3): "telnetd performs 45 small
// allocations (and deallocations) before giving control to the shell in each
// session (process). It does not do any more (de)allocations and just waits
// for the session to end. Using our approach we just use 45 virtual pages
// for each session." We reproduce exactly that: 45 setup allocations per
// session, then a pure-access echo/line-discipline loop.
#pragma once

#include <cstdint>

#include "workloads/common.h"

namespace dpg::workloads::servers {

template <typename P>
class Telnetd {
 public:
  static constexpr const char* kName = "telnetd";
  static constexpr int kSetupAllocations = 45;

  struct Params {
    int sessions = 30;
    int keystrokes = 400000;  // terminal bytes processed per session
  };

  static std::uint64_t run(const Params& params) {
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    Rng rng(0x73);
    for (int s = 0; s < params.sessions; ++s) {
      typename P::Scope session;  // forked per-connection process
      checksum = mix(checksum, simulate_process_spawn(rng.below(9)));
      checksum = mix(checksum, handle_session(params, rng));
    }
    return checksum;
  }

 private:
  struct Block;
  using BlockPtr = typename P::template ptr<Block>;
  struct Block {
    char data[48] = {};
    BlockPtr next{};
  };

  static std::uint64_t handle_session(const Params& params, Rng& rng) {
    // The 45 small setup allocations (terminal state, option tables,
    // environment, pty buffers, ...), chained so teardown must chase them.
    BlockPtr state{};
    for (int i = 0; i < kSetupAllocations; ++i) {
      BlockPtr b = P::template make<Block>();
      for (int k = 0; k < 48; ++k) {
        b->data[k] = static_cast<char>('A' + (i + k) % 26);
      }
      b->next = state;
      state = b;
    }

    // Session body: telnet option negotiation + echo processing — memory
    // accesses only, no allocation (the paper's observed pattern).
    std::uint64_t h = 0;
    for (int k = 0; k < params.keystrokes; ++k) {
      const std::uint64_t ch = rng.below(128);
      BlockPtr b = state;
      // Each keystroke consults a few state blocks (line discipline tables).
      for (int depth = 0; depth < 4 && b != nullptr; ++depth) {
        h = mix(h, static_cast<std::uint64_t>(
                       b->data[static_cast<int>(ch % 48)]));
        b = b->next;
      }
      if (ch == 0x7F) h = mix(h, 0xDE1);  // IAC-ish special case
    }

    // Session end: the 45 deallocations.
    while (state != nullptr) {
      BlockPtr next = state->next;
      P::dispose(state);
      state = next;
    }
    return h;
  }
};

}  // namespace dpg::workloads::servers
